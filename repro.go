// Package repro is a from-scratch Go implementation of cost-based
// reformulation query answering for RDF, reproducing Bursztyn, Goasdoué
// and Manolescu, "Optimizing Reformulation-based Query Answering in RDF"
// (EDBT 2015 / INRIA RR-8646).
//
// An RDF database is a set of triples whose RDF Schema constraints
// (subclass, subproperty, domain, range) make some triples implicit.
// Answering a SPARQL Basic Graph Pattern query must account for those
// implicit triples. This library answers such queries by *reformulation*:
// the query is rewritten, using the constraints, into a Join of Unions of
// Conjunctive Queries (JUCQ) whose direct evaluation over the raw triples
// returns the complete answer — and, this being the paper's contribution,
// the JUCQ is *chosen by a cost model* from the space of cover-based
// reformulations, which contains the classic UCQ reformulation and the
// SCQ (join of per-triple unions) reformulation as its two extremes.
//
// # Quick start
//
//	st := repro.NewStore()
//	st.MustAdd(rdf.NewTriple(book, rdf.SubClassOf, publication))
//	st.MustAdd(rdf.NewTriple(doi1, rdf.Type, book))
//	st.Freeze()
//	a := st.NewAnswerer(repro.PostgresLike, repro.Options{})
//	res, err := a.Query(`SELECT ?x WHERE { ?x rdf:type <`+publication.Value+`> }`, repro.GCov)
//
// See examples/ for complete programs, DESIGN.md for the system inventory
// and EXPERIMENTS.md for the reproduction of the paper's evaluation.
package repro

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/dict"
	"repro/internal/engine"
	"repro/internal/feedback"
	"repro/internal/ntriples"
	"repro/internal/plancache"
	"repro/internal/rdf"
	"repro/internal/saturate"
	"repro/internal/schema"
	"repro/internal/sparql"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/turtle"
)

// Strategy selects how a query is answered; see the constants.
type Strategy = core.Strategy

// The five answering strategies of the paper's experimental comparison.
const (
	// Saturation precomputes all implicit triples (call Store.Saturate
	// first) and evaluates queries directly.
	Saturation = core.Saturation
	// UCQ evaluates the classic single union-of-CQs reformulation.
	UCQ = core.UCQ
	// SCQ evaluates the join of per-triple unions.
	SCQ = core.SCQ
	// ECov evaluates the best cover found by exhaustive search.
	ECov = core.ECov
	// GCov evaluates the best cover found by the greedy search — the
	// paper's recommended strategy.
	GCov = core.GCov
)

// Profile is an engine personality: resource limits and operator
// repertoire. The three RDBMS-like profiles reproduce the paper's DB2,
// PostgreSQL and MySQL behaviours; Native is unconstrained.
type Profile = engine.Profile

// The built-in engine profiles.
var (
	DB2Like      = engine.DB2Like
	PostgresLike = engine.PostgresLike
	MySQLLike    = engine.MySQLLike
	Native       = engine.Native
)

// Typed evaluation failures (use errors.Is).
var (
	ErrPlanTooComplex = engine.ErrPlanTooComplex
	ErrMemoryBudget   = engine.ErrMemoryBudget
	ErrWorkBudget     = engine.ErrWorkBudget
	// ErrCanceled is returned by QueryContext and friends when the
	// caller's context is canceled or its deadline expires before the
	// answer is complete. The evaluation stops early and the pinned
	// storage snapshot is released.
	ErrCanceled = engine.ErrCanceled
)

// StrategyNames returns the valid strategy names, in the paper's order.
func StrategyNames() []string {
	var names []string
	for _, s := range core.Strategies() {
		names = append(names, string(s))
	}
	return names
}

// StrategyByName looks up an answering strategy by its name
// ("saturation", "ucq", "scq", "ecov" or "gcov"); ok is false for an
// unknown name.
func StrategyByName(name string) (Strategy, bool) {
	for _, s := range core.Strategies() {
		if string(s) == name {
			return s, true
		}
	}
	return "", false
}

// ProfileNames returns the valid engine-profile names.
func ProfileNames() []string {
	return []string{Native.Name, PostgresLike.Name, DB2Like.Name, MySQLLike.Name}
}

// ProfileByName looks up a built-in engine profile by its name ("native",
// "postgreslike", "db2like" or "mysqllike"); ok is false for an unknown
// name.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range []Profile{Native, PostgresLike, DB2Like, MySQLLike} {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Report describes how a query was answered (chosen cover, search effort,
// estimated cost, engine metrics).
type Report = core.Report

// CostParams are the calibrated constants of the paper's cost model.
type CostParams = cost.Params

// Trace is a span of the query-lifecycle trace: a named, timed node
// carrying counters, whose children cover the parse, optimize,
// reformulate and evaluate stages of every query answered while the
// trace is attached (Options.Trace). Render writes the tree as an
// indented EXPLAIN ANALYZE-style report; MarshalJSON exports it. A nil
// *Trace disables tracing at zero cost.
type Trace = trace.Span

// NewTrace starts a trace with a root span of the given name. Attach it
// via Options.Trace, answer queries, call End, then Render or marshal.
func NewTrace(name string) *Trace { return trace.New(name) }

// Options tunes an Answerer.
type Options struct {
	// CostParams overrides the cost-model constants; zero value uses
	// defaults (or calibration when Calibrate is set).
	CostParams CostParams
	// Calibrate runs the calibration micro-queries against this store
	// and engine profile to fit CostParams, as the paper does per RDBMS.
	Calibrate bool
	// UseEngineCost guides the cover search with the engine's internal
	// estimate instead of the paper's cost model (the Figure 9
	// alternative).
	UseEngineCost bool
	// MaxCovers bounds the exhaustive search (0 = default).
	MaxCovers int
	// SearchBudget bounds optimization wall-clock time (0 = none).
	SearchBudget time.Duration
	// Parallelism is the worker count for evaluation and cover pricing;
	// 0 uses all CPUs, 1 runs serially. Results are identical either way.
	Parallelism int
	// NoSharedScan disables the engine's shared-scan layer (pattern-scan
	// memo, merged member scans, cross-member planning memos) — an
	// ablation knob; answers and metrics are identical either way, only
	// evaluation time changes.
	NoSharedScan bool
	// NoFactorized disables the factorized answer representation
	// (union-of-products relations expanded lazily at the client
	// boundary) — an ablation knob; expanded answers and metrics are
	// identical either way, only the stored footprint of cross-product
	// results changes.
	NoFactorized bool
	// Trace, when non-nil, records every query's lifecycle (parse,
	// optimize, reformulate, evaluate, with per-operator counters) as
	// children of the given root span. nil disables tracing at zero cost.
	Trace *Trace
	// PlanCache, when non-nil, caches answering artifacts across queries:
	// a repeated query (up to variable renaming and atom reordering) skips
	// the optimize and reformulate stages. Answers are identical with and
	// without the cache; store mutations invalidate affected entries.
	PlanCache *PlanCache
	// Feedback, when non-nil, closes the estimate→observe→recalibrate
	// loop: observed cardinalities and timings from every successful
	// evaluation refine the cost model's correction factors online, and
	// cached plans whose estimates drifted are re-priced. Feedback only
	// perturbs estimates, never evaluation — answers are identical with
	// and without it. Share one loop per store + engine profile.
	Feedback *FeedbackLoop
}

// FeedbackLoop is the adaptive cost model's shared state: per-pattern
// cardinality correction factors and online-fitted cost coefficients,
// learned by comparing the optimizer's estimates against the engine's
// observed counters after each evaluation. Attach one via
// Options.Feedback; Snapshot exposes drift metrics.
type FeedbackLoop = feedback.Loop

// FeedbackStats is a snapshot of a FeedbackLoop's observation, drift
// and estimation-error statistics; see FeedbackLoop.Snapshot.
type FeedbackStats = feedback.Stats

// NewFeedbackLoop returns a feedback loop with default tuning. Attach
// it via Options.Feedback.
func NewFeedbackLoop() *FeedbackLoop { return feedback.New(feedback.Config{}) }

// PlanCache is a bounded, concurrent cache of answering artifacts (chosen
// cover, per-fragment reformulations, fragment statistics) keyed by a
// canonical query signature that is invariant under variable renaming and
// atom reordering. Share one cache across the Answerers of a store to
// skip the optimize and reformulate stages for repeated queries; entries
// are stamped with the store's mutation version and the schema's content
// stamp, so a Store.Add or Remove invalidates affected plans and the next
// answer always reflects the current data.
type PlanCache = plancache.Cache

// PlanCacheStats is a snapshot of a PlanCache's hit/miss/invalidation
// counters; see PlanCache.Snapshot.
type PlanCacheStats = plancache.Stats

// NewPlanCache returns a plan cache holding up to capacity entries
// (a default capacity if capacity <= 0). Attach it via Options.PlanCache.
func NewPlanCache(capacity int) *PlanCache { return plancache.New(capacity) }

// ErrFrozen is returned when a schema triple is added after Freeze.
var ErrFrozen = errors.New("repro: cannot change the schema after Freeze (rebuild the store)")

// Store is an RDF database: data triples plus RDFS constraints.
// Populate it with Add/LoadNTriples, call Freeze, then create Answerers.
// Data triples may still be added after Freeze (the saturated store, if
// built, is maintained incrementally); schema changes require a rebuild.
type Store struct {
	dict    *dict.Dict
	vocab   schema.Vocab
	sch     *schema.Schema
	closed  *schema.Closed
	pending []storage.Triple
	orders  []storage.Order

	raw      *storage.Store
	rawStats *stats.Stats
	sat      *saturate.Maintained
	satStats *stats.Stats
	frozen   bool
}

// StoreOption configures a Store at creation.
type StoreOption func(*Store)

// WithAllIndexes maintains all six permutation indexes (the paper's
// layout) instead of the minimal three.
func WithAllIndexes() StoreOption {
	return func(s *Store) { s.orders = storage.AllOrders }
}

// NewStore returns an empty store.
func NewStore(opts ...StoreOption) *Store {
	d := dict.New()
	s := &Store{
		dict:   d,
		vocab:  schema.EncodeVocab(d),
		orders: storage.DefaultOrders,
	}
	s.sch = schema.New(s.vocab)
	for _, o := range opts {
		o(s)
	}
	return s
}

// Add inserts one triple (schema or data). Schema triples are accepted
// only before Freeze.
func (s *Store) Add(t rdf.Triple) error {
	if err := t.Validate(); err != nil {
		return err
	}
	sub, p, o := s.dict.EncodeTriple(t)
	if s.sch.Vocab().IsConstraintProperty(p) {
		if s.frozen {
			return ErrFrozen
		}
		s.sch.AddTriple(sub, p, o)
		return nil
	}
	tr := storage.Triple{S: sub, P: p, O: o}
	if !s.frozen {
		s.pending = append(s.pending, tr)
		return nil
	}
	s.raw.Add(tr)
	if s.sat != nil {
		s.sat.Add(tr)
	}
	return nil
}

// Remove retracts one data triple, reporting whether it was present. The
// saturated twin, if built, shrinks by every consequence that is no
// longer derivable (delete-and-rederive). Constraint triples cannot be
// retracted after Freeze.
func (s *Store) Remove(t rdf.Triple) (bool, error) {
	if err := t.Validate(); err != nil {
		return false, err
	}
	sub, p, o := s.dict.EncodeTriple(t)
	if s.sch.Vocab().IsConstraintProperty(p) {
		return false, ErrFrozen
	}
	tr := storage.Triple{S: sub, P: p, O: o}
	if !s.frozen {
		for i, pend := range s.pending {
			if pend == tr {
				s.pending = append(s.pending[:i], s.pending[i+1:]...)
				return true, nil
			}
		}
		return false, nil
	}
	removed := s.raw.Remove(tr)
	if removed && s.sat != nil {
		s.sat.Remove(tr)
	}
	return removed, nil
}

// MustAdd is Add, panicking on error; for statically known triples.
func (s *Store) MustAdd(t rdf.Triple) {
	if err := s.Add(t); err != nil {
		panic(err)
	}
}

// AddAll inserts every triple.
func (s *Store) AddAll(ts []rdf.Triple) error {
	for _, t := range ts {
		if err := s.Add(t); err != nil {
			return err
		}
	}
	return nil
}

// LoadNTriples reads N-Triples from r, returning the number of
// statements loaded.
func (s *Store) LoadNTriples(r io.Reader) (int, error) {
	rd := ntriples.NewReader(r)
	n := 0
	for {
		t, err := rd.Read()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		if err := s.Add(t); err != nil {
			return n, err
		}
		n++
	}
}

// LoadTurtle reads Turtle from r (prefixes, 'a', ';' and ','
// abbreviations), returning the number of triples loaded.
func (s *Store) LoadTurtle(r io.Reader) (int, error) {
	rd := turtle.NewReader(r)
	n := 0
	for {
		t, err := rd.Read()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		if err := s.Add(t); err != nil {
			return n, err
		}
		n++
	}
}

// Freeze closes the schema, loads the closed constraint triples next to
// the data, builds the indexes and collects statistics. It is idempotent.
func (s *Store) Freeze() {
	if s.frozen {
		return
	}
	s.closed = s.sch.Close()
	b := storage.NewBuilder(s.orders...)
	for _, t := range s.pending {
		b.Add(t)
	}
	for _, c := range s.closed.ConstraintTriples() {
		b.Add(storage.Triple{S: c[0], P: c[1], O: c[2]})
	}
	s.raw = b.Build()
	s.rawStats = stats.Collect(s.raw, s.vocab)
	s.pending = nil
	s.frozen = true
}

// Saturate builds the saturated store next to the raw one, enabling the
// Saturation strategy. It returns the number of implicit triples added.
// Freeze is called implicitly.
func (s *Store) Saturate() int {
	s.Freeze()
	if s.sat != nil {
		return s.sat.Store().Len() - s.raw.Len()
	}
	s.sat = saturate.NewMaintainedFrom(s.raw.Each, s.closed, s.orders...)
	s.satStats = stats.Collect(s.sat.Store(), s.vocab)
	return s.sat.Store().Len() - s.raw.Len()
}

// Compact merges the mutable delta of the raw store (and of the
// saturated twin, if built) into its frozen block-columnar base. Safe to
// call concurrently with readers and queries: in-flight evaluations keep
// answering against the snapshot they pinned. A no-op before Freeze.
func (s *Store) Compact() {
	if !s.frozen {
		return
	}
	s.raw.Compact()
	if s.sat != nil {
		s.sat.Store().Compact()
	}
}

// NumTriples returns the number of distinct triples (data plus closed
// constraints) in the raw store; before Freeze it counts pending data.
func (s *Store) NumTriples() int {
	if !s.frozen {
		return len(s.pending)
	}
	return s.raw.Len()
}

// NumImplicit returns the number of implicit triples the saturation
// added, or 0 if Saturate has not run.
func (s *Store) NumImplicit() int {
	if s.sat == nil {
		return 0
	}
	return s.sat.Store().Len() - s.raw.Len()
}

// NewAnswerer builds a query answerer over this store with the given
// engine profile. Freeze is called implicitly.
func (s *Store) NewAnswerer(p Profile, opts Options) *Answerer {
	s.Freeze()
	raw := engine.New(s.raw, s.rawStats, p)
	var sat *engine.Engine
	if s.sat != nil {
		sat = engine.New(s.sat.Store(), s.satStats, p)
	}
	params := opts.CostParams
	if opts.Calibrate {
		params = core.Calibrate(raw)
	}
	source := core.OwnModel
	if opts.UseEngineCost {
		source = core.EngineInternal
	}
	inner := core.NewAnswerer(s.closed, raw, sat, core.Options{
		Params:       params,
		Source:       source,
		MaxCovers:    opts.MaxCovers,
		SearchBudget: opts.SearchBudget,
		Parallelism:  opts.Parallelism,
		NoSharedScan: opts.NoSharedScan,
		NoFactorized: opts.NoFactorized,
		Trace:        opts.Trace,
		PlanCache:    opts.PlanCache,
		Feedback:     opts.Feedback,
	})
	return &Answerer{store: s, inner: inner, profile: p, params: params, trace: opts.Trace}
}

// Answerer answers SPARQL BGP queries over one store through one engine
// profile.
type Answerer struct {
	store   *Store
	inner   *core.Answerer
	profile Profile
	params  CostParams
	trace   *Trace
}

// Profile returns the engine profile.
func (a *Answerer) Profile() Profile { return a.profile }

// WithTrace returns a copy of the Answerer whose queries record their
// lifecycle as children of tr (nil detaches tracing). The copy shares
// the store, the engines and the plan cache with the receiver; use it to
// give each run its own span tree without rebuilding the answerer.
func (a *Answerer) WithTrace(tr *Trace) *Answerer {
	cp := *a
	cp.trace = tr
	cp.inner = a.inner.WithTrace(tr)
	return &cp
}

// Params returns the cost-model constants in use.
func (a *Answerer) Params() CostParams { return a.params }

// Result is an answer set at the surface level. Answers may be held
// factorized (as a union of cross-products of column groups); NumRows,
// Each and Boolean never expand the product, Rows expands it on first
// call.
type Result struct {
	// Vars names the columns (the SELECT variables, in order); empty for
	// ASK queries.
	Vars []string
	// Report describes how the answer was computed.
	Report Report

	rel  *engine.Relation
	dict *dict.Dict
	rows [][]rdf.Term // decoded expansion, built lazily by Rows
}

// NumRows returns the number of answers without expanding a factorized
// result.
func (r *Result) NumRows() int {
	if r.rel == nil {
		return len(r.rows)
	}
	return r.rel.Len()
}

// Rows expands and decodes the full answer set; Rows()[i][j] is the
// value of Vars[j]. For an ASK query, a true answer is a single empty
// row. The expansion is cached, so repeated calls are cheap — but on a
// large cross-product result it materializes every row; prefer Each to
// stream.
func (r *Result) Rows() [][]rdf.Term {
	if r.rows == nil && r.rel != nil {
		rows := make([][]rdf.Term, 0, r.rel.Len())
		r.Each(func(row []rdf.Term) bool {
			rows = append(rows, row)
			return true
		})
		r.rows = rows
	}
	return r.rows
}

// Each streams the decoded answers in their canonical order, expanding a
// factorized result one row at a time; f returning false stops the
// iteration. Each row slice is freshly allocated and may be retained.
func (r *Result) Each(f func(row []rdf.Term) bool) {
	if r.rows != nil || r.rel == nil {
		for _, row := range r.rows {
			if !f(row) {
				return
			}
		}
		return
	}
	r.rel.Each(func(ids []dict.ID) bool {
		out := make([]rdf.Term, len(ids))
		for i, id := range ids {
			out[i] = r.dict.Term(id)
		}
		return f(out)
	})
}

// StoredBytes estimates the bytes held by the answer representation —
// for a factorized result, the component columns rather than the
// expanded product. Divide by NumRows for bytes per answer.
func (r *Result) StoredBytes() int64 {
	if r.rel == nil {
		return 0
	}
	return r.rel.StoredBytes()
}

// Boolean interprets the result as an ASK answer: true when the BGP has
// at least one match.
func (r *Result) Boolean() bool { return r.NumRows() > 0 }

// Query parses and answers a SPARQL BGP query.
func (a *Answerer) Query(text string, strategy Strategy) (*Result, error) {
	return a.QueryContext(context.Background(), text, strategy)
}

// QueryContext is Query under a context: when ctx is canceled or its
// deadline expires, the cover search and the evaluation stop early and
// the error matches ErrCanceled (errors.Is). An uncancelable context
// (context.Background) costs nothing over Query.
func (a *Answerer) QueryContext(ctx context.Context, text string, strategy Strategy) (*Result, error) {
	var parseSp *Trace
	if a.trace != nil {
		parseSp = a.trace.Child("parse")
	}
	q, err := sparql.Parse(text)
	parseSp.End()
	if err != nil {
		return nil, err
	}
	return a.QueryParsedContext(ctx, q, strategy)
}

// QueryParsed answers an already parsed query.
func (a *Answerer) QueryParsed(q *sparql.Query, strategy Strategy) (*Result, error) {
	return a.QueryParsedContext(context.Background(), q, strategy)
}

// QueryParsedContext is QueryParsed under a context; see QueryContext.
func (a *Answerer) QueryParsedContext(ctx context.Context, q *sparql.Query, strategy Strategy) (*Result, error) {
	var encSp *Trace
	if a.trace != nil {
		encSp = a.trace.Child("encode")
	}
	enc, err := sparql.Encode(q, a.store.dict)
	encSp.End()
	if err != nil {
		return nil, err
	}
	ans, err := a.inner.AnswerContext(ctx, enc.CQ, strategy)
	if err != nil {
		return nil, fmt.Errorf("answering %q with %s: %w", q.String(), strategy, err)
	}
	return a.decode(q, ans)
}

// Explain runs only the optimization stage: it reports the cover the
// strategy would evaluate and the search effort, without touching the
// data. Saturation has no optimization stage and returns a zero report.
func (a *Answerer) Explain(text string, strategy Strategy) (Report, error) {
	q, err := sparql.Parse(text)
	if err != nil {
		return Report{}, err
	}
	enc, err := sparql.Encode(q, a.store.dict)
	if err != nil {
		return Report{}, err
	}
	if strategy == Saturation {
		return Report{Strategy: Saturation}, nil
	}
	_, rep, err := a.inner.ChooseCover(enc.CQ, strategy)
	return rep, err
}

// ExplainPlan returns the engine's physical-plan description for the
// reformulation the strategy would evaluate — the EXPLAIN counterpart of
// Query. Saturation has no reformulation plan and returns a short note.
func (a *Answerer) ExplainPlan(text string, strategy Strategy) (string, error) {
	q, err := sparql.Parse(text)
	if err != nil {
		return "", err
	}
	enc, err := sparql.Encode(q, a.store.dict)
	if err != nil {
		return "", err
	}
	if strategy == Saturation {
		return "saturation-based answering: direct evaluation against the saturated store\n", nil
	}
	c, _, err := a.inner.ChooseCover(enc.CQ, strategy)
	if err != nil {
		return "", err
	}
	name := func(id dict.ID) string {
		term := a.store.dict.Term(id)
		if term.IsIRI() {
			// Compact display: the part after the last / or #.
			v := term.Value
			for i := len(v) - 1; i >= 0; i-- {
				if v[i] == '/' || v[i] == '#' {
					return v[i+1:]
				}
			}
			return v
		}
		return term.Canonical()
	}
	return a.inner.ExplainPlan(enc.CQ, c, name)
}

func (a *Answerer) decode(q *sparql.Query, ans *core.Answer) (*Result, error) {
	res := &Result{Report: ans.Report, rel: ans.Rel, dict: a.store.dict}
	for _, v := range q.Select {
		res.Vars = append(res.Vars, string(v))
	}
	return res, nil
}

// EncodeQuery exposes the dictionary-encoded form of a query — used by
// the benchmark harness; applications should not need it.
func (a *Answerer) EncodeQuery(q *sparql.Query) (bgp.CQ, error) {
	enc, err := sparql.Encode(q, a.store.dict)
	return enc.CQ, err
}
