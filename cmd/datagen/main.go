// Datagen emits the synthetic LUBM-like or DBLP-like datasets of this
// reproduction as N-Triples on stdout (schema first, then data), so they
// can be loaded by rdfcli or by external tools.
//
// Triples stream straight to the writer as the generators emit them, so
// memory stays flat however large the requested scale is.
//
// Usage:
//
//	datagen -workload lubm -universities 2 > lubm2.nt
//	datagen -workload lubm -scale medium > lubm_medium.nt
//	datagen -workload dblp -publications 50000 > dblp.nt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/benchkit"
	"repro/internal/dblp"
	"repro/internal/lubm"
	"repro/internal/ntriples"
	"repro/internal/rdf"
)

func main() {
	workload := flag.String("workload", "lubm", "workload to generate: lubm or dblp")
	universities := flag.Int("universities", 1, "lubm: number of universities")
	pubs := flag.Int("publications", 20000, "dblp: number of publication records")
	seed := flag.Int64("seed", 42, "generator seed")
	tiny := flag.Bool("tiny", false, "lubm: use the scaled-down test profile")
	scale := flag.String("scale", "", "use a benchkit scale preset (tiny, small or medium) for the sizes; overrides -universities/-publications/-tiny so datasets match BENCH runs")
	flag.Parse()

	if *scale != "" {
		sc := benchkit.ScaleByName(*scale)
		*universities = sc.LUBMUnivs
		*pubs = sc.DBLPPubs
		*tiny = sc.Name == "tiny"
	}

	out := bufio.NewWriterSize(os.Stdout, 1<<20)
	w := ntriples.NewWriter(out)
	n := 0
	emit := func(t rdf.Triple) {
		if err := w.Write(t); err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		n++
	}

	switch *workload {
	case "lubm":
		for _, t := range lubm.Ontology() {
			emit(t)
		}
		cfg := lubm.Default()
		if *tiny {
			cfg = lubm.Tiny()
		}
		lubm.Generate(*universities, *seed, cfg, emit)
	case "dblp":
		for _, t := range dblp.Ontology() {
			emit(t)
		}
		dblp.Generate(*pubs, *seed, emit)
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown workload %q (want lubm or dblp)\n", *workload)
		os.Exit(2)
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	if err := out.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "datagen: wrote %d triples\n", n)
}
