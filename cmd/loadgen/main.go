// Loadgen drives a running rdfserver with a mixed LUBM query workload
// and reports throughput and latency percentiles.
//
// Usage:
//
//	loadgen -url http://127.0.0.1:8080 -duration 10s -concurrency 16
//	loadgen -url ... -queries Q03,Q05 -strategy ucq -qps 200    # open loop
//	loadgen -url ... -mutators 2 -json                          # mixed read/write
//	loadgen -url ... -minqps 50 -maxp99 250                     # CI gate: exit 1 on miss
//
// The closed loop (default) measures capacity: each worker issues its
// next query as soon as the previous answer returns. With -qps the open
// loop offers load on a fixed schedule instead, measuring latency at
// that rate. -minqps / -maxp99 turn the run into a pass/fail gate for
// smoke scripts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/loadgen"
	"repro/internal/lubm"
)

func main() {
	url := flag.String("url", "", "server base URL, e.g. http://127.0.0.1:8080 (required)")
	queries := flag.String("queries", "Q03,Q05,Q08", "comma-separated LUBM query names to mix round-robin")
	queryText := flag.String("query", "", "raw SPARQL text to drive instead of -queries")
	strategy := flag.String("strategy", "", "strategy override sent with every query (empty = server default)")
	duration := flag.Duration("duration", 5*time.Second, "how long to drive load")
	concurrency := flag.Int("concurrency", 8, "worker count")
	qps := flag.Float64("qps", 0, "open-loop target QPS (0 = closed loop)")
	mutators := flag.Int("mutators", 0, "concurrent clients adding/removing noise triples via /update")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request client timeout")
	jsonOut := flag.Bool("json", false, "emit the result as JSON on stdout")
	minQPS := flag.Float64("minqps", 0, "exit 1 if measured QPS falls below this")
	maxP99 := flag.Float64("maxp99", 0, "exit 1 if p99 latency (ms) exceeds this")
	flag.Parse()

	if *url == "" {
		fmt.Fprintln(os.Stderr, "loadgen: -url is required")
		os.Exit(2)
	}

	var work []loadgen.Query
	if *queryText != "" {
		work = []loadgen.Query{{Name: "adhoc", Text: *queryText, Strategy: *strategy}}
	} else {
		byName := make(map[string]string)
		for _, q := range lubm.Queries() {
			byName[q.Name] = q.Text
		}
		for _, name := range strings.Split(*queries, ",") {
			name = strings.TrimSpace(name)
			text, ok := byName[name]
			if !ok {
				fmt.Fprintf(os.Stderr, "loadgen: unknown LUBM query %q (valid: Q01..Q%02d)\n", name, len(byName))
				os.Exit(2)
			}
			work = append(work, loadgen.Query{Name: name, Text: text, Strategy: *strategy})
		}
	}

	res, err := loadgen.Run(loadgen.Config{
		URL:         *url,
		Queries:     work,
		Duration:    *duration,
		Concurrency: *concurrency,
		TargetQPS:   *qps,
		Mutators:    *mutators,
		Timeout:     *timeout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}

	if *jsonOut {
		out, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		fmt.Printf("%s\n", out)
	} else {
		fmt.Printf("requests %d  answered %d  rejected %d  failed %d  dropped %d  mutations %d\n",
			res.Requests, res.Answered, res.Rejected, res.Failed, res.Dropped, res.Mutations)
		fmt.Printf("duration %v  qps %.1f\n", res.Duration.Round(time.Millisecond), res.QPS)
		fmt.Printf("latency ms: p50 %.2f  p95 %.2f  p99 %.2f  max %.2f\n",
			res.Latency.P50, res.Latency.P95, res.Latency.P99, res.Latency.Max)
	}

	bad := false
	if *minQPS > 0 && res.QPS < *minQPS {
		fmt.Fprintf(os.Stderr, "loadgen: QPS %.1f below -minqps %.1f\n", res.QPS, *minQPS)
		bad = true
	}
	if *maxP99 > 0 && res.Latency.P99 > *maxP99 {
		fmt.Fprintf(os.Stderr, "loadgen: p99 %.2fms above -maxp99 %.2fms\n", res.Latency.P99, *maxP99)
		bad = true
	}
	if res.Failed > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d requests failed\n", res.Failed)
		bad = true
	}
	if bad {
		os.Exit(1)
	}
}
