// Rdfserver serves a repro.Store as an HTTP/JSON query service: each
// request pins a storage snapshot, shares one global plan cache, runs
// under a per-request deadline and is admission-controlled (429 beyond
// -maxinflight concurrently evaluating queries).
//
// Usage:
//
//	rdfserver -data lubm.nt                         # serve N-Triples files
//	rdfserver -lubm 1 -addr :9090 -cache 512        # self-generate LUBM(1)
//	rdfserver -lubm 1 -addr 127.0.0.1:0             # ephemeral port, printed
//
// The server announces "rdfserver listening on <host:port>" on stdout
// once ready, so scripts can bind :0 and parse the assigned port. SIGINT
// or SIGTERM drains in-flight requests before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/lubm"
	"repro/internal/rdf"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
	data := flag.String("data", "", "comma-separated N-Triples files to load")
	lubmUnivs := flag.Int("lubm", 0, "instead of -data, self-generate an LUBM dataset with N universities")
	saturate := flag.Bool("saturate", false, "saturate the store at startup (required for strategy=saturation requests)")
	cacheCap := flag.Int("cache", 256, "shared plan-cache capacity in entries")
	parallelism := flag.Int("parallel", 0, "evaluation worker count per query (0 = all CPUs, 1 = sequential)")
	maxInflight := flag.Int("maxinflight", 0, "max concurrently evaluating queries, 429 beyond (0 = 4 x GOMAXPROCS)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request deadline")
	maxTimeout := flag.Duration("maxtimeout", 0, "cap on the deadline a request may ask for (0 = 4 x -timeout)")
	profile := flag.String("profile", "", "default engine profile for requests that name none (default native)")
	strategy := flag.String("strategy", "", "default strategy for requests that name none (default gcov)")
	maxResponse := flag.Int64("maxresponse", 0, "max encoded response size in bytes, 413 beyond (0 = unlimited)")
	flag.Parse()

	if (*data == "") == (*lubmUnivs <= 0) {
		fmt.Fprintln(os.Stderr, "rdfserver: provide exactly one of -data or -lubm N")
		os.Exit(2)
	}
	if *profile != "" {
		if _, ok := repro.ProfileByName(*profile); !ok {
			fmt.Fprintf(os.Stderr, "rdfserver: unknown profile %q (valid: %s)\n", *profile, strings.Join(repro.ProfileNames(), ", "))
			os.Exit(2)
		}
	}
	if *strategy != "" {
		if _, ok := repro.StrategyByName(*strategy); !ok {
			fmt.Fprintf(os.Stderr, "rdfserver: unknown strategy %q (valid: %s)\n", *strategy, strings.Join(repro.StrategyNames(), ", "))
			os.Exit(2)
		}
	}

	st := repro.NewStore()
	start := time.Now()
	if *data != "" {
		total := 0
		for _, path := range strings.Split(*data, ",") {
			f, err := os.Open(path)
			if err != nil {
				fatal(err)
			}
			n, err := st.LoadNTriples(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fatal(err)
			}
			total += n
		}
		fmt.Fprintf(os.Stderr, "loaded %d triples in %v (store: %d)\n", total, time.Since(start).Round(time.Millisecond), st.NumTriples())
	} else {
		emit := func(t rdf.Triple) { st.MustAdd(t) }
		for _, t := range lubm.Ontology() {
			emit(t)
		}
		lubm.Generate(*lubmUnivs, 42, lubm.Default(), emit)
		fmt.Fprintf(os.Stderr, "generated LUBM(%d): %d triples in %v\n", *lubmUnivs, st.NumTriples(), time.Since(start).Round(time.Millisecond))
	}
	st.Freeze()
	if *saturate {
		start = time.Now()
		added := st.Saturate()
		fmt.Fprintf(os.Stderr, "saturated: +%d implicit triples in %v\n", added, time.Since(start).Round(time.Millisecond))
	}

	s, err := server.New(server.Config{
		Store:            st,
		Options:          repro.Options{Parallelism: *parallelism},
		CacheCap:         *cacheCap,
		MaxInflight:      *maxInflight,
		DefaultTimeout:   *timeout,
		MaxTimeout:       *maxTimeout,
		DefaultProfile:   *profile,
		DefaultStrategy:  *strategy,
		MaxResponseBytes: *maxResponse,
	})
	if err != nil {
		fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	// Announced on stdout (everything else reports on stderr) so scripts
	// can bind :0 and parse the kernel-assigned port from this line.
	fmt.Printf("rdfserver listening on %s\n", ln.Addr())

	hs := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "rdfserver: draining in-flight requests")
	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rdfserver:", err)
	os.Exit(1)
}
