// Benchall regenerates every table and figure of the paper's evaluation
// (Section 5) as text reports: Tables 1–4 and Figures 4–10, plus the
// design-choice ablations of DESIGN.md.
//
// Usage:
//
//	benchall                     # everything, at the default (small) scale
//	benchall -scale medium       # the paper-like scale (slow)
//	benchall -table 2            # only Table 2
//	benchall -figure 4           # only Figure 4
//	benchall -ablations          # only the ablation benches
//	benchall -parallel           # only the parallelism sweep
//	benchall -cache              # only the plan-cache sweep (cold/warm/mutate)
//	benchall -sharedscan         # only the shared-scan on/off sweep
//	benchall -feedback           # only the adaptive-cost warm-up sweep (gated)
//	benchall -feedbackjson -     # the same sweep, JSON on stdout
//	benchall -loadjson - -loadscales tiny,small,medium
//	                             # only the bulk-load scale sweep, JSON on stdout
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/benchkit"
	"repro/internal/core"
	"repro/internal/engine"
)

// writeLoadSweep measures bulk load throughput and resident bytes per
// triple across the named scales (flat vs compressed block-columnar)
// and writes the result as JSON — the load data scripts/bench.sh embeds
// into the committed BENCH_*.json files.
func writeLoadSweep(names []string, par int, path string) error {
	sweep, err := benchkit.MeasureLoadScales(names, par)
	if err != nil {
		return err
	}
	if path == "-" {
		if err := sweep.WriteText(os.Stderr); err != nil {
			return err
		}
		return sweep.WriteJSON(os.Stdout)
	}
	if err := sweep.WriteText(os.Stderr); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := sweep.WriteJSON(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// writeServeSweep stands up an in-process rdfserver over the LUBM store
// and drives it with the load generator, writing per-point throughput
// and latency percentiles as JSON — the serve data scripts/bench.sh
// embeds into the committed BENCH_*.json files.
func writeServeSweep(sc benchkit.Scale, dur time.Duration, path string) error {
	sweep, err := benchkit.MeasureServe(sc, benchkit.ServeOptions{Duration: dur})
	if err != nil {
		return err
	}
	if err := sweep.WriteText(os.Stderr); err != nil {
		return err
	}
	if path == "-" {
		return sweep.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := sweep.WriteJSON(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// runFeedbackSweep runs the adaptive-cost warm-up sweep and enforces
// its acceptance gate: the mean relative cardinality estimation error
// must shrink at least 2x over the sweep (unless it ends near-exact),
// and the answers must match a feedback-free baseline exactly.
func runFeedbackSweep(sc benchkit.Scale, epochs int, jsonPath string) error {
	rep, err := benchkit.MeasureFeedback(sc, epochs)
	if err != nil {
		return err
	}
	if err := rep.WriteText(os.Stderr); err != nil {
		return err
	}
	if jsonPath != "" {
		if jsonPath == "-" {
			if err := rep.WriteJSON(os.Stdout); err != nil {
				return err
			}
		} else {
			f, err := os.Create(jsonPath)
			if err != nil {
				return err
			}
			werr := rep.WriteJSON(f)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				return werr
			}
		}
	}
	if !rep.AnswersIdentical {
		return fmt.Errorf("feedback changed answers — the loop must stay advisory")
	}
	if rep.CardImprovement < 2 && rep.FinalCardErr >= 0.02 {
		return fmt.Errorf("cardinality error improved only %.2fx (final %.4f), want >= 2x",
			rep.CardImprovement, rep.FinalCardErr)
	}
	return nil
}

// runFactorizedSweep runs the factorized-answer sweep on LUBM and
// enforces its acceptance gate: the expanded answers and engine metrics
// must be strictly identical to the flat baseline (FactorizedSweep
// fails otherwise), and at least one cross-product query must store its
// answers at least 2x smaller than flat.
func runFactorizedSweep(sc benchkit.Scale, jsonPath string) error {
	db, err := benchkit.BuildLUBM(sc)
	if err != nil {
		return err
	}
	outs, err := db.FactorizedSweep(os.Stderr, 3)
	if err != nil {
		return err
	}
	if jsonPath != "" {
		data, err := json.MarshalIndent(struct {
			Queries []benchkit.FactorizedOutcome `json:"queries"`
		}{outs}, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if jsonPath == "-" {
			if _, err := os.Stdout.Write(data); err != nil {
				return err
			}
		} else if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
			return err
		}
	}
	best := 0.0
	for _, o := range outs {
		if o.CompressionRatio > best {
			best = o.CompressionRatio
		}
	}
	if best < 2 {
		return fmt.Errorf("no cross-product query compressed at least 2x (best %.2fx)", best)
	}
	return nil
}

// writeStageSweep answers a representative LUBM query set with every
// reformulation strategy under tracing and writes the per-stage
// breakdown as JSON — the stage data scripts/bench.sh embeds into the
// committed BENCH_*.json files.
func writeStageSweep(sc benchkit.Scale, path string) error {
	db, err := benchkit.BuildLUBM(sc)
	if err != nil {
		return err
	}
	prof := engine.PostgresLike
	a := db.Answerer(prof, core.Options{})
	rep := db.StageSweep(a, prof.Name,
		[]string{"Q01", "Q05", "Q09", "Q13"},
		[]core.Strategy{core.UCQ, core.SCQ, core.ECov, core.GCov})
	if path == "-" {
		return rep.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := rep.WriteJSON(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

func main() {
	scale := flag.String("scale", "small", "dataset scale: tiny, small or medium")
	table := flag.Int("table", 0, "regenerate only this table (1-4)")
	figure := flag.Int("figure", 0, "regenerate only this figure (4-10)")
	ablations := flag.Bool("ablations", false, "run only the ablation benches")
	parallel := flag.Bool("parallel", false, "run only the parallelism sweep")
	cacheSweep := flag.Bool("cache", false, "run only the plan-cache sweep (cold vs warm vs mutate-then-requery)")
	sharedScan := flag.Bool("sharedscan", false, "run only the shared-scan on/off sweep")
	stageJSON := flag.String("stagejson", "", "run the traced stage sweep and write its JSON to this file ('-' = stdout), then exit")
	serveJSON := flag.String("servejson", "", "run the HTTP serve throughput sweep and write its JSON to this file ('-' = stdout), then exit")
	serveDur := flag.Duration("serveduration", 2*time.Second, "per-point duration for -servejson")
	loadJSON := flag.String("loadjson", "", "run the bulk-load scale sweep and write its JSON to this file ('-' = stdout), then exit")
	loadScales := flag.String("loadscales", "tiny,small,medium", "comma-separated scales for -loadjson")
	loadPar := flag.Int("loadpar", 0, "loader parallelism for -loadjson (0 = GOMAXPROCS)")
	factSweep := flag.Bool("factorized", false, "run only the factorized-answer sweep (fails unless answers are byte-identical to flat and one query compresses 2x)")
	factJSON := flag.String("factjson", "", "run the factorized-answer sweep and write its JSON to this file ('-' = stdout), then exit")
	fbSweep := flag.Bool("feedback", false, "run only the feedback warm-up sweep (fails if the estimation error does not shrink 2x)")
	fbJSON := flag.String("feedbackjson", "", "run the feedback warm-up sweep and write its JSON to this file ('-' = stdout), then exit")
	fbEpochs := flag.Int("feedbackepochs", 4, "workload passes for the feedback sweep")
	flag.Parse()

	sc := benchkit.ScaleByName(*scale)
	out := os.Stdout

	if *factSweep || *factJSON != "" {
		if err := runFactorizedSweep(sc, *factJSON); err != nil {
			fmt.Fprintf(os.Stderr, "benchall: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *fbSweep || *fbJSON != "" {
		if err := runFeedbackSweep(sc, *fbEpochs, *fbJSON); err != nil {
			fmt.Fprintf(os.Stderr, "benchall: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *loadJSON != "" {
		names := strings.Split(*loadScales, ",")
		if err := writeLoadSweep(names, *loadPar, *loadJSON); err != nil {
			fmt.Fprintf(os.Stderr, "benchall: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *serveJSON != "" {
		if err := writeServeSweep(sc, *serveDur, *serveJSON); err != nil {
			fmt.Fprintf(os.Stderr, "benchall: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *stageJSON != "" {
		if err := writeStageSweep(sc, *stageJSON); err != nil {
			fmt.Fprintf(os.Stderr, "benchall: %v\n", err)
			os.Exit(1)
		}
		return
	}

	all := *table == 0 && *figure == 0 && !*ablations && !*parallel && !*cacheSweep && !*sharedScan
	section := func(title string, f func() error) {
		fmt.Fprintf(out, "\n==== %s ====\n", title)
		start := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(out, "error: %v\n", err)
			return
		}
		fmt.Fprintf(out, "(%.1fs)\n", time.Since(start).Seconds())
	}

	fmt.Fprintf(out, "Reproduction of Bursztyn, Goasdoué, Manolescu: Optimizing Reformulation-based Query Answering in RDF (EDBT 2015)\n")
	fmt.Fprintf(out, "scale=%s\n", sc.Name)

	lubmDB, err := benchkit.BuildLUBM(sc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchall: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(out, "LUBM: %d triples (raw incl. closed constraints), %d saturated\n", lubmDB.Raw.Len(), lubmDB.Sat.Len())

	if all || *table == 1 {
		section("Table 1: characteristics of the motivating query q1 (our Q01)", func() error {
			return lubmDB.TripleCharacteristics(out, "Q01")
		})
	}
	if all || *table == 2 {
		section("Table 2: all cover-based reformulations of q1 (our Q01), Postgres-like", func() error {
			return lubmDB.CoverSweep(out, "Q01", engine.PostgresLike)
		})
	}
	if all || *table == 3 {
		section("Table 3: characteristics of the motivating query q2 (our Q02)", func() error {
			return lubmDB.TripleCharacteristics(out, "Q02")
		})
	}

	var dblpDB *benchkit.Database
	needDBLP := all || *table == 4 || *figure == 6 || *figure == 8
	if needDBLP {
		dblpDB, err = benchkit.BuildDBLP(sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchall: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(out, "DBLP: %d triples (raw incl. closed constraints), %d saturated\n", dblpDB.Raw.Len(), dblpDB.Sat.Len())
	}

	if all || *table == 4 {
		section("Table 4: query characteristics (|q_ref| and answer counts)", func() error {
			if err := lubmDB.QueryCharacteristics(out); err != nil {
				return err
			}
			fmt.Fprintln(out)
			return dblpDB.QueryCharacteristics(out)
		})
	}

	if all || *figure == 4 || *figure == 5 {
		name := "Figure 4: LUBM query answering through UCQ, SCQ, ECov and GCov (3 engine profiles)"
		if *figure == 5 {
			name = "Figure 5: as Figure 4 at a larger scale (pass -scale medium)"
		}
		section(name, func() error {
			return lubmDB.StrategyMatrix(out, engine.Profiles())
		})
	}
	if all || *figure == 6 {
		section("Figure 6: DBLP query answering through UCQ, SCQ, ECov and GCov", func() error {
			return dblpDB.StrategyMatrix(out, engine.Profiles())
		})
	}
	if all || *figure == 7 {
		section("Figure 7: LUBM covers explored and optimizer running times", func() error {
			return lubmDB.SearchEffort(out)
		})
	}
	if all || *figure == 8 {
		section("Figure 8: DBLP covers explored and optimizer running times", func() error {
			return dblpDB.SearchEffort(out)
		})
	}
	if all || *figure == 9 {
		section("Figure 9: cost model comparison (our model vs engine-internal estimate)", func() error {
			return lubmDB.CostSourceComparison(out)
		})
	}
	if all || *figure == 10 {
		section("Figure 10: reformulation vs saturation-based query answering", func() error {
			return lubmDB.SaturationComparison(out)
		})
	}

	if all || *ablations {
		section("Ablation A1: index layout (3 vs 6 permutations)", func() error {
			return lubmDB.AblationIndexSet(out, "Q01", "Q09", "Q23")
		})
		section("Ablation A2: greedy join ordering inside member CQs", func() error {
			return lubmDB.AblationJoinOrdering(out, "Q01", "Q09", "Q19")
		})
		section("Ablation A3: GCov redundant-fragment elimination", func() error {
			return lubmDB.AblationGCovRedundancy(out, "Q01", "Q09", "Q23", "Q28")
		})
		section("Ablation A4: arm-join algorithm on SCQ plans", func() error {
			return lubmDB.AblationArmJoin(out, "Q05", "Q13", "Q25")
		})
		section("Ablation A5: factorized vs materialized reformulation", func() error {
			return lubmDB.AblationFactorizedReformulation(out, "Q01", "Q09", "Q13", "Q24")
		})
	}

	if all || *parallel {
		section(fmt.Sprintf("Parallelism sweep: GCov JUCQ on the native profile (GOMAXPROCS=%d)", runtime.GOMAXPROCS(0)), func() error {
			return lubmDB.ParallelismSweep(out, []int{1, 2, 4, runtime.GOMAXPROCS(0)}, 3)
		})
	}

	if all || *cacheSweep {
		section("Plan cache: cold vs warm (cached) vs mutate-then-requery", func() error {
			return lubmDB.CacheSweep(out, []string{"Q01", "Q05", "Q09", "Q13"}, 3)
		})
	}

	if all || *sharedScan {
		section("Shared scans: snapshot + scan memo + merged members, on vs off (UCQ)", func() error {
			return lubmDB.SharedScanSweep(out, []string{"Q01", "Q05", "Q09", "Q13"}, core.UCQ, 3)
		})
	}
}
