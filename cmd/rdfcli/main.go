// Rdfcli loads an RDF database from N-Triples files and answers SPARQL
// BGP queries with any of the five strategies of the reproduction,
// printing the answers and a report of how they were computed.
//
// Usage:
//
//	rdfcli -data lubm.nt -strategy gcov -query 'SELECT ?x WHERE { ... }'
//	rdfcli -data lubm.nt -strategy ucq -queryfile q.sparql -profile db2like
//	rdfcli -data lubm.nt -explain -query '...'   # optimizer output only
//	rdfcli -data lubm.nt -trace -query '...'     # EXPLAIN ANALYZE-style span tree
//	rdfcli -data lubm.nt -cache 256 -repeat 5 -query '...'  # plan-cache warm-up
//	rdfcli -data lubm.nt -feedback -repeat 5 -trace -query '...'
//	                                             # adaptive cost model: the trace
//	                                             # shows est_* next to observed counters
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/rdf"
)

func main() {
	data := flag.String("data", "", "comma-separated N-Triples files to load")
	queryText := flag.String("query", "", "SPARQL BGP query text")
	queryFile := flag.String("queryfile", "", "file containing the query")
	strategy := flag.String("strategy", "gcov", "saturation, ucq, scq, ecov or gcov")
	profile := flag.String("profile", "native", "engine profile: native, postgreslike, db2like or mysqllike")
	explain := flag.Bool("explain", false, "show the chosen cover and estimated cost without evaluating")
	calibrate := flag.Bool("calibrate", false, "calibrate the cost model on this store before answering")
	maxRows := flag.Int("maxrows", 20, "answers to print (0 = all)")
	traceFlag := flag.Bool("trace", false, "print the query-lifecycle span tree and counters after the answers")
	traceJSON := flag.Bool("tracejson", false, "with -trace, emit only the span tree as JSON on stdout (suppresses the answer table)")
	parallelism := flag.Int("parallel", 0, "evaluation worker count (0 = all CPUs, 1 = sequential)")
	noSharedScan := flag.Bool("nosharedscan", false, "disable the shared-scan layer (pattern-scan memo + merged member scans + cross-member planning memos)")
	noFactorized := flag.Bool("nofactorized", false, "disable the factorized answer representation (always hold expanded answer rows)")
	cacheCap := flag.Int("cache", 0, "plan-cache capacity in entries (0 = cache off)")
	repeat := flag.Int("repeat", 1, "answer the query N times (with -cache, runs after the first hit the cache)")
	feedbackFlag := flag.Bool("feedback", false, "feed observed cardinalities and timings back into the cost model (pairs well with -repeat and -trace)")
	flag.Parse()

	if *data == "" {
		fmt.Fprintln(os.Stderr, "rdfcli: -data is required")
		os.Exit(2)
	}
	text := *queryText
	if *queryFile != "" {
		b, err := os.ReadFile(*queryFile)
		if err != nil {
			fatal(err)
		}
		text = string(b)
	}
	if text == "" {
		fmt.Fprintln(os.Stderr, "rdfcli: provide -query or -queryfile")
		os.Exit(2)
	}
	// Validate the name-valued flags before the (possibly long) load, and
	// reject unknown names outright — a typo like -strategy gcv must not
	// silently answer with some other strategy.
	strat, ok := repro.StrategyByName(*strategy)
	if !ok {
		fmt.Fprintf(os.Stderr, "rdfcli: unknown strategy %q (valid: %s)\n", *strategy, strings.Join(repro.StrategyNames(), ", "))
		os.Exit(2)
	}
	prof, ok := repro.ProfileByName(*profile)
	if !ok {
		fmt.Fprintf(os.Stderr, "rdfcli: unknown profile %q (valid: %s)\n", *profile, strings.Join(repro.ProfileNames(), ", "))
		os.Exit(2)
	}

	st := repro.NewStore()
	start := time.Now()
	total := 0
	for _, path := range strings.Split(*data, ",") {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		n, err := st.LoadNTriples(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		total += n
	}
	st.Freeze()
	fmt.Fprintf(os.Stderr, "loaded %d triples in %v (store: %d)\n", total, time.Since(start).Round(time.Millisecond), st.NumTriples())

	if strat == repro.Saturation {
		start = time.Now()
		added := st.Saturate()
		fmt.Fprintf(os.Stderr, "saturated: +%d implicit triples in %v\n", added, time.Since(start).Round(time.Millisecond))
	}

	var tr *repro.Trace
	if *traceFlag {
		tr = repro.NewTrace("query")
	}
	var pc *repro.PlanCache
	if *cacheCap > 0 {
		pc = repro.NewPlanCache(*cacheCap)
	}
	var fb *repro.FeedbackLoop
	if *feedbackFlag {
		fb = repro.NewFeedbackLoop()
	}
	a := st.NewAnswerer(prof, repro.Options{
		Calibrate:    *calibrate,
		Parallelism:  *parallelism,
		NoSharedScan: *noSharedScan,
		NoFactorized: *noFactorized,
		Trace:        tr,
		PlanCache:    pc,
		Feedback:     fb,
	})

	if *explain {
		rep, err := a.Explain(text, strat)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("strategy:        %s\n", rep.Strategy)
		fmt.Printf("cover:           %v\n", rep.Cover)
		fmt.Printf("fragment |q_ref|: %v (total %d)\n", rep.FragmentCQs, rep.TotalCQs)
		fmt.Printf("estimated cost:  %.4g\n", rep.EstimatedCost)
		fmt.Printf("covers explored: %d (exhaustive: %v)\n", rep.CoversExplored, rep.Exhaustive)
		fmt.Printf("optimize time:   %v\n", rep.OptimizeTime)
		if plan, err := a.ExplainPlan(text, strat); err == nil {
			fmt.Printf("\n%s", plan)
		}
		return
	}

	res, err := a.Query(text, strat)
	if err != nil {
		fatal(err)
	}
	// Repeated-query mode: re-answer the same query; with -cache, every run
	// after the first is served from the plan cache (optimize and
	// reformulate skipped), which the per-run lines make visible.
	if *repeat > 1 {
		report := func(i int, rep repro.Report) {
			fmt.Fprintf(os.Stderr, "run %d: optimize=%v evaluate=%v cached=%v\n",
				i+1, rep.OptimizeTime.Round(time.Microsecond),
				rep.EvalTime.Round(time.Microsecond), rep.Cached)
		}
		report(0, res.Report)
		for i := 1; i < *repeat; i++ {
			// Each run gets its own span tree — without this every run's
			// spans pile into one shared root and the rendered trace shows
			// the accumulation of all runs instead of one run's lifecycle.
			// The last run's tree is the one rendered below.
			ai := a
			if *traceFlag {
				tr = repro.NewTrace("query")
				ai = a.WithTrace(tr)
			}
			ri, err := ai.Query(text, strat)
			if err != nil {
				fatal(err)
			}
			if ri.NumRows() != res.NumRows() {
				fatal(fmt.Errorf("run %d returned %d rows, run 1 returned %d", i+1, ri.NumRows(), res.NumRows()))
			}
			report(i, ri.Report)
		}
		if pc != nil {
			cs := pc.Snapshot()
			fmt.Fprintf(os.Stderr, "plan cache: %d hits / %d lookups (%.0f%% hit rate), %d invalidations, %d re-prices\n",
				cs.Hits, cs.Lookups(), 100*cs.HitRate(), cs.Invalidations, cs.Reprices)
		}
	}
	if fb != nil {
		fs := fb.Snapshot()
		fmt.Fprintf(os.Stderr, "feedback: %d observations, %d drift events, mean card err %.4f, mean cost err %.4f\n",
			fs.Observations, fs.DriftEvents, fs.MeanCardError, fs.MeanCostError)
	}
	// With -tracejson, stdout carries only the span-tree JSON so it can
	// be piped into tooling; the row count still reports on stderr.
	// Answers stream through the result cursor: a truncated print of a
	// huge (possibly factorized) answer set never expands past -maxrows.
	if !(*traceFlag && *traceJSON) {
		fmt.Printf("%s\n", strings.Join(res.Vars, "\t"))
		i := 0
		res.Each(func(row []rdf.Term) bool {
			if *maxRows > 0 && i >= *maxRows {
				fmt.Printf("... (%d more rows)\n", res.NumRows()-i)
				return false
			}
			parts := make([]string, len(row))
			for j, term := range row {
				parts[j] = term.Canonical()
			}
			fmt.Println(strings.Join(parts, "\t"))
			i++
			return true
		})
	}
	rep := res.Report
	fmt.Fprintf(os.Stderr, "\n%d rows (%d stored bytes); strategy=%s cover=%v |q_ref|=%d optimize=%v evaluate=%v\n",
		res.NumRows(), res.StoredBytes(), rep.Strategy, rep.Cover, rep.TotalCQs,
		rep.OptimizeTime.Round(time.Microsecond), rep.EvalTime.Round(time.Microsecond))

	if tr != nil {
		tr.End()
		if *traceJSON {
			data, err := json.MarshalIndent(tr, "", "  ")
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%s\n", data)
			return
		}
		fmt.Fprintln(os.Stderr)
		if err := tr.Render(os.Stderr); err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "\ncounters:")
		if err := tr.Registry().WriteJSON(os.Stderr); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rdfcli:", err)
	os.Exit(1)
}
