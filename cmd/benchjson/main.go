// Benchjson converts `go test -bench` output into a small JSON report:
// one entry per benchmark (name, ns/op, B/op, allocs/op, plus any custom
// b.ReportMetric units such as hit-rate) and runner metadata (go version,
// GOMAXPROCS, CPU count). scripts/bench.sh uses it
// to write the committed BENCH_<date>.json files; the metadata matters
// because the parallel benchmarks only separate from their serial
// baselines on a multi-core runner.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

type result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Extra holds custom b.ReportMetric units (e.g. the plan-cache
	// benchmark's "hit-rate") keyed by unit name.
	Extra map[string]float64 `json:"extra,omitempty"`
}

type report struct {
	Go         string   `json:"go"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	CPUs       int      `json:"cpus"`
	Scale      string   `json:"scale,omitempty"`
	Benchmarks []result `json:"benchmarks"`
	// Stages embeds the traced per-stage breakdown produced by
	// `benchall -stagejson` (see -stages), verbatim.
	Stages json.RawMessage `json:"stages,omitempty"`
	// Load embeds the bulk-load scale sweep produced by
	// `benchall -loadjson` (see -load), verbatim.
	Load json.RawMessage `json:"load,omitempty"`
	// Serve embeds the HTTP serve throughput sweep produced by
	// `benchall -servejson` (see -serve), verbatim.
	Serve json.RawMessage `json:"serve,omitempty"`
	// Feedback embeds the adaptive-cost warm-up sweep produced by
	// `benchall -feedbackjson` (see -feedback), verbatim.
	Feedback json.RawMessage `json:"feedback,omitempty"`
	// Factorized embeds the factorized-answer sweep produced by
	// `benchall -factjson` (see -factorized), verbatim: bytes/answer
	// under the factorized and flat representations per query.
	Factorized json.RawMessage `json:"factorized,omitempty"`
}

func main() {
	in := flag.String("in", "", "benchmark output to parse (default stdin)")
	out := flag.String("out", "", "JSON file to write (default stdout)")
	stages := flag.String("stages", "", "stage-breakdown JSON file (from benchall -stagejson) to embed")
	load := flag.String("load", "", "bulk-load sweep JSON file (from benchall -loadjson) to embed")
	serve := flag.String("serve", "", "serve throughput JSON file (from benchall -servejson) to embed")
	fbPath := flag.String("feedback", "", "feedback warm-up sweep JSON file (from benchall -feedbackjson) to embed")
	factPath := flag.String("factorized", "", "factorized-answer sweep JSON file (from benchall -factjson) to embed")
	flag.Parse()

	src := os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		src = f
	}

	rep := report{
		Go:         runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPUs:       runtime.NumCPU(),
		Scale:      os.Getenv("REPRO_BENCH_SCALE"),
		Benchmarks: []result{},
	}
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			rep.Benchmarks = append(rep.Benchmarks, r)
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}

	if *stages != "" {
		raw, err := os.ReadFile(*stages)
		if err != nil {
			fatal(err)
		}
		if !json.Valid(raw) {
			fatal(fmt.Errorf("%s: not valid JSON", *stages))
		}
		rep.Stages = json.RawMessage(raw)
	}

	if *load != "" {
		raw, err := os.ReadFile(*load)
		if err != nil {
			fatal(err)
		}
		if !json.Valid(raw) {
			fatal(fmt.Errorf("%s: not valid JSON", *load))
		}
		rep.Load = json.RawMessage(raw)
	}

	if *serve != "" {
		raw, err := os.ReadFile(*serve)
		if err != nil {
			fatal(err)
		}
		if !json.Valid(raw) {
			fatal(fmt.Errorf("%s: not valid JSON", *serve))
		}
		rep.Serve = json.RawMessage(raw)
	}

	if *fbPath != "" {
		raw, err := os.ReadFile(*fbPath)
		if err != nil {
			fatal(err)
		}
		if !json.Valid(raw) {
			fatal(fmt.Errorf("%s: not valid JSON", *fbPath))
		}
		rep.Feedback = json.RawMessage(raw)
	}

	if *factPath != "" {
		raw, err := os.ReadFile(*factPath)
		if err != nil {
			fatal(err)
		}
		if !json.Valid(raw) {
			fatal(fmt.Errorf("%s: not valid JSON", *factPath))
		}
		rep.Factorized = json.RawMessage(raw)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		if _, err := os.Stdout.Write(data); err != nil {
			fatal(err)
		}
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
}

// parseLine parses one `go test -bench` result line:
//
//	BenchmarkName-8   123   456.7 ns/op   89 B/op   10 allocs/op
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: fields[0], Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
			seen = true
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		default:
			if r.Extra == nil {
				r.Extra = make(map[string]float64)
			}
			r.Extra[fields[i+1]] = v
		}
	}
	return r, seen
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
