// Lint runs the repository's static-analysis suite (internal/lint) over
// the module containing the working directory and prints findings in
// the go vet format. It exits 1 when there are findings, 2 on driver
// errors, and 0 on a clean run.
//
// Usage:
//
//	go run ./cmd/lint ./...
//	go run ./cmd/lint -run deferunlock,tracezero ./internal/...
//	go run ./cmd/lint -json ./... | jq .file
//	go run ./cmd/lint -jsonfile lint.json ./...
//
// Packages load and analyze in parallel on a bounded worker pool
// (-workers, default GOMAXPROCS). Full-suite runs also report stale
// //lint:ignore directives — suppressions whose analyzer no longer
// fires at that line; subset runs (-run/-analyzers) cannot judge
// staleness and skip the check.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	analyzers := flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	runFilter := flag.String("run", "", "alias of -analyzers")
	list := flag.Bool("list", false, "list the analyzers and exit")
	jsonOut := flag.Bool("json", false, "print one JSON object per finding instead of vet format")
	jsonFile := flag.String("jsonfile", "", "also write the findings as JSONL to this file (CI artifact)")
	workers := flag.Int("workers", 0, "package load/analysis parallelism (0 = GOMAXPROCS)")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	selected := lint.All()
	subset := false
	if names := pickFilter(*analyzers, *runFilter); names != "" {
		subset = true
		var unknown []string
		selected, unknown = lint.ByName(strings.Split(names, ","))
		if len(unknown) > 0 {
			fmt.Fprintf(os.Stderr, "lint: unknown analyzers: %s\n", strings.Join(unknown, ", "))
			os.Exit(2)
		}
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "lint: %v\n", err)
		os.Exit(2)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lint: %v\n", err)
		os.Exit(2)
	}
	loader.Workers = *workers

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lint: %v\n", err)
		os.Exit(2)
	}

	// Stale-directive reporting needs the full suite: under a subset, a
	// silent directive may simply name an analyzer that did not run.
	diags := lint.RunWith(pkgs, selected, lint.Options{
		Workers:     *workers,
		ReportStale: !subset,
	})

	lines := lint.Format(diags, root)
	if *jsonOut {
		lines = lint.FormatJSON(diags, root)
	}
	for _, line := range lines {
		fmt.Println(line)
	}
	if *jsonFile != "" {
		text := strings.Join(lint.FormatJSON(diags, root), "\n")
		if len(diags) > 0 {
			text += "\n"
		}
		if err := os.WriteFile(*jsonFile, []byte(text), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "lint: writing %s: %v\n", *jsonFile, err)
			os.Exit(2)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// pickFilter merges the -analyzers and -run spellings; both set rejects
// ambiguity unless they agree.
func pickFilter(a, r string) string {
	switch {
	case a == "":
		return r
	case r == "" || r == a:
		return a
	default:
		fmt.Fprintln(os.Stderr, "lint: -analyzers and -run disagree; pass one")
		os.Exit(2)
		return ""
	}
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}
