// Lint runs the repository's static-analysis suite (internal/lint) over
// the module containing the working directory and prints findings in
// the go vet format. It exits 1 when there are findings, 2 on driver
// errors, and 0 on a clean run.
//
// Usage:
//
//	go run ./cmd/lint ./...
//	go run ./cmd/lint -analyzers panicfree,droppederr ./internal/...
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	analyzers := flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	selected := lint.All()
	if *analyzers != "" {
		var unknown []string
		selected, unknown = lint.ByName(strings.Split(*analyzers, ","))
		if len(unknown) > 0 {
			fmt.Fprintf(os.Stderr, "lint: unknown analyzers: %s\n", strings.Join(unknown, ", "))
			os.Exit(2)
		}
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "lint: %v\n", err)
		os.Exit(2)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lint: %v\n", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lint: %v\n", err)
		os.Exit(2)
	}

	diags := lint.Run(pkgs, selected)
	for _, line := range lint.Format(diags, root) {
		fmt.Println(line)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "lint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}
