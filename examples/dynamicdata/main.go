// Dynamicdata demonstrates the update-robustness argument of the paper's
// introduction: reformulation reasons at query time and needs no
// maintenance when triples arrive, while saturation must derive and store
// the consequences of every insertion. The example interleaves batches of
// insertions with queries and accounts for both sides' work.
//
// Run with: go run ./examples/dynamicdata
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/lubm"
	"repro/internal/rdf"
)

func main() {
	// Start from a modest base so update costs dominate.
	st := repro.NewStore()
	if err := st.AddAll(lubm.Ontology()); err != nil {
		log.Fatal(err)
	}
	lubm.Generate(1, 42, lubm.Tiny(), func(t rdf.Triple) { st.MustAdd(t) })
	st.Freeze()
	st.Saturate() // the saturated twin is maintained incrementally from here on

	a := st.NewAnswerer(repro.Native, repro.Options{})
	query := `
		PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
		SELECT ?x WHERE {
			?x rdf:type ub:Person .
			?x ub:memberOf <http://www.Department0.University0.edu> .
		}`

	fmt.Printf("base store: %d triples (+%d implicit in the saturated twin)\n\n",
		st.NumTriples(), st.NumImplicit())

	dept := rdf.NewIRI("http://www.Department0.University0.edu")
	var updateTime, reformTime, satQueryTime time.Duration
	const batches = 20
	const perBatch = 50

	for b := 0; b < batches; b++ {
		// A batch of new graduate students joining Department0. Each
		// insertion triggers incremental saturation maintenance
		// (memberOf's domain types them as Person, the class hierarchy
		// propagates, and so on).
		start := time.Now()
		for i := 0; i < perBatch; i++ {
			s := rdf.NewIRI(fmt.Sprintf("http://www.Department0.University0.edu/NewStudent%d_%d", b, i))
			st.MustAdd(rdf.NewTriple(s, rdf.Type, lubm.Class("GraduateStudent")))
			st.MustAdd(rdf.NewTriple(s, lubm.Prop("memberOf"), dept))
		}
		updateTime += time.Since(start)

		// Query through reformulation (no maintenance needed) …
		start = time.Now()
		refRes, err := a.Query(query, repro.GCov)
		if err != nil {
			log.Fatal(err)
		}
		reformTime += time.Since(start)

		// … and through the (incrementally maintained) saturation.
		start = time.Now()
		satRes, err := a.Query(query, repro.Saturation)
		if err != nil {
			log.Fatal(err)
		}
		satQueryTime += time.Since(start)

		if refRes.NumRows() != satRes.NumRows() {
			log.Fatalf("batch %d: reformulation sees %d rows, saturation %d",
				b, refRes.NumRows(), satRes.NumRows())
		}
	}

	fmt.Printf("after %d batches of %d students:\n", batches, perBatch)
	fmt.Printf("  store now: %d triples (+%d implicit)\n", st.NumTriples(), st.NumImplicit())
	fmt.Printf("  insertion + saturation maintenance: %v\n", updateTime.Round(time.Microsecond))
	fmt.Printf("  %d reformulated queries (GCov):      %v\n", batches, reformTime.Round(time.Microsecond))
	fmt.Printf("  %d saturated queries:                %v\n", batches, satQueryTime.Round(time.Microsecond))

	// Retractions are the expensive direction for saturation: every
	// deleted triple's consequences must be checked for rederivability
	// (delete-and-rederive), while reformulation again needs nothing.
	start := time.Now()
	removedTriples := 0
	for b := 0; b < batches; b++ {
		for i := 0; i < perBatch; i++ {
			s := rdf.NewIRI(fmt.Sprintf("http://www.Department0.University0.edu/NewStudent%d_%d", b, i))
			for _, tr := range []rdf.Triple{
				rdf.NewTriple(s, rdf.Type, lubm.Class("GraduateStudent")),
				rdf.NewTriple(s, lubm.Prop("memberOf"), dept),
			} {
				ok, err := st.Remove(tr)
				if err != nil {
					log.Fatal(err)
				}
				if ok {
					removedTriples++
				}
			}
		}
	}
	removalTime := time.Since(start)

	refAfter, err := a.Query(query, repro.GCov)
	if err != nil {
		log.Fatal(err)
	}
	satAfter, err := a.Query(query, repro.Saturation)
	if err != nil {
		log.Fatal(err)
	}
	if refAfter.NumRows() != satAfter.NumRows() {
		log.Fatalf("after retraction: reformulation sees %d rows, saturation %d",
			refAfter.NumRows(), satAfter.NumRows())
	}
	fmt.Printf("\nretracted all %d inserted triples (delete-and-rederive): %v\n",
		removedTriples, removalTime.Round(time.Microsecond))
	fmt.Printf("  store back to: %d triples (+%d implicit); both strategies agree on %d rows\n",
		st.NumTriples(), st.NumImplicit(), refAfter.NumRows())
	fmt.Println("\nreformulation pays at query time; saturation pays at update time —")
	fmt.Println("the trade-off the paper's Section 5.3 quantifies at scale.")
}
