// University answers analytic queries over a generated LUBM-style
// university dataset and compares all five answering strategies on each —
// a miniature of the paper's Figures 4 and 10, runnable in seconds.
//
// Run with: go run ./examples/university [-universities 1]
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"repro"
	"repro/internal/lubm"
	"repro/internal/rdf"
)

func main() {
	nUniv := flag.Int("universities", 1, "number of universities to generate")
	flag.Parse()

	st := repro.NewStore()
	if err := st.AddAll(lubm.Ontology()); err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	lubm.Generate(*nUniv, 42, lubm.Default(), func(t rdf.Triple) { st.MustAdd(t) })
	st.Freeze()
	fmt.Printf("generated %d triples in %v\n", st.NumTriples(), time.Since(start).Round(time.Millisecond))

	start = time.Now()
	added := st.Saturate()
	fmt.Printf("saturation: +%d implicit triples in %v\n\n", added, time.Since(start).Round(time.Millisecond))

	// A Postgres-like engine with a calibrated cost model, exactly the
	// paper's setup.
	a := st.NewAnswerer(repro.PostgresLike, repro.Options{Calibrate: true})
	fmt.Printf("calibrated cost model: %s\n\n", a.Params())

	queries := []struct {
		label string
		text  string
	}{
		{"people in Department0 (Person subtree + memberOf hierarchy)", `
			PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
			SELECT ?x WHERE {
				?x rdf:type ub:Person .
				?x ub:memberOf <http://www.Department0.University0.edu> .
			}`},
		{"the paper's motivating query q1 (type variable + two selective triples)", `
			PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
			SELECT ?x ?y WHERE {
				?x rdf:type ?y .
				?x ub:degreeFrom <http://www.University0.edu> .
				?x ub:memberOf <http://www.Department0.University0.edu> .
			}`},
		{"students taking a course their advisor teaches", `
			PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
			SELECT ?x ?y ?z WHERE {
				?x rdf:type ub:Student .
				?y rdf:type ub:Faculty .
				?z rdf:type ub:Course .
				?x ub:advisor ?y .
				?y ub:teacherOf ?z .
				?x ub:takesCourse ?z .
			}`},
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "query\tstrategy\trows\t|q_ref|\tcover\toptimize\tevaluate\n")
	for qi, q := range queries {
		for _, s := range []repro.Strategy{repro.UCQ, repro.SCQ, repro.ECov, repro.GCov, repro.Saturation} {
			res, err := a.Query(q.text, s)
			if err != nil {
				kind := "failed"
				if errors.Is(err, repro.ErrPlanTooComplex) {
					kind = "plan too complex (the paper's missing bar)"
				}
				fmt.Fprintf(tw, "#%d\t%s\t-\t-\t-\t-\t%s\n", qi+1, s, kind)
				continue
			}
			rep := res.Report
			fmt.Fprintf(tw, "#%d\t%s\t%d\t%d\t%v\t%v\t%v\n",
				qi+1, s, res.NumRows(), rep.TotalCQs, rep.Cover,
				rep.OptimizeTime.Round(10*time.Microsecond),
				rep.EvalTime.Round(10*time.Microsecond))
		}
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nqueries:")
	for qi, q := range queries {
		fmt.Printf("  #%d: %s\n", qi+1, q.label)
	}
}
