// Bibliography explores a DBLP-style dataset and looks *inside* the
// optimizer: for one query it prints every cover of the search space with
// its estimated cost and the actual evaluation time, showing how well the
// paper's cost model ranks the alternatives (the question behind the
// paper's Figure 9).
//
// Run with: go run ./examples/bibliography
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"repro"
	"repro/internal/dblp"
	"repro/internal/rdf"
)

func main() {
	st := repro.NewStore()
	if err := st.AddAll(dblp.Ontology()); err != nil {
		log.Fatal(err)
	}
	dblp.Generate(8000, 7, func(t rdf.Triple) { st.MustAdd(t) })
	st.Freeze()
	fmt.Printf("bibliography: %d triples\n\n", st.NumTriples())

	a := st.NewAnswerer(repro.PostgresLike, repro.Options{Calibrate: true})

	// Records by one prolific author, with their types and venues. The
	// creator and publishedIn hierarchies (author/editor ⊑ creator,
	// journal/booktitle ⊑ publishedIn) make every atom reformulate.
	query := `
		PREFIX dblp: <http://dblp.example.org/schema#>
		SELECT ?x ?kind ?venue WHERE {
			?x rdf:type ?kind .
			?x dblp:creator <http://dblp.example.org/rec/person/p0> .
			?x dblp:publishedIn ?venue .
		}`

	// What would each strategy do?
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "strategy\tcover\testimated cost\tcovers explored\trows\tevaluate\n")
	for _, s := range []repro.Strategy{repro.UCQ, repro.SCQ, repro.ECov, repro.GCov} {
		rep, err := a.Explain(query, s)
		if err != nil {
			log.Fatal(err)
		}
		res, err := a.Query(query, s)
		if err != nil {
			fmt.Fprintf(tw, "%s\t%v\t%.3g\t%d\tFAILED\t%v\n", s, rep.Cover, rep.EstimatedCost, rep.CoversExplored, err)
			continue
		}
		fmt.Fprintf(tw, "%s\t%v\t%.3g\t%d\t%d\t%v\n",
			s, rep.Cover, rep.EstimatedCost, rep.CoversExplored,
			res.NumRows(), res.Report.EvalTime.Round(10*time.Microsecond))
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}

	// Show a couple of answers decoded back to surface terms.
	res, err := a.Query(query, repro.GCov)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsample answers (%d total):\n", res.NumRows())
	for i, row := range res.Rows() {
		if i >= 5 {
			break
		}
		fmt.Printf("  %s is a %s published in %s\n",
			shorten(row[0]), shorten(row[1]), shorten(row[2]))
	}
}

func shorten(t rdf.Term) string {
	s := t.Value
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' || s[i] == '#' {
			return s[i+1:]
		}
	}
	return s
}
