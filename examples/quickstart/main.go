// Quickstart walks through the paper's running example (Examples 1–4 and
// Figure 3): the book graph, its RDFS constraints, the incompleteness of
// plain evaluation, and reformulation-based answering with the
// cost-chosen JUCQ.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/rdf"
)

func iri(local string) rdf.Term { return rdf.NewIRI("http://example.org/" + local) }

func main() {
	st := repro.NewStore()

	// Example 2: the RDFS constraints.
	//   books are publications
	//   writing something means being an author
	//   books are written by people
	st.MustAdd(rdf.NewTriple(iri("Book"), rdf.SubClassOf, iri("Publication")))
	st.MustAdd(rdf.NewTriple(iri("writtenBy"), rdf.SubPropertyOf, iri("hasAuthor")))
	st.MustAdd(rdf.NewTriple(iri("writtenBy"), rdf.Domain, iri("Book")))
	st.MustAdd(rdf.NewTriple(iri("writtenBy"), rdf.Range, iri("Person")))

	// Example 1: the data about one book.
	doi1 := iri("doi1")
	author := rdf.NewBlank("b1")
	st.MustAdd(rdf.NewTriple(doi1, rdf.Type, iri("Book")))
	st.MustAdd(rdf.NewTriple(doi1, iri("writtenBy"), author))
	st.MustAdd(rdf.NewTriple(doi1, iri("hasTitle"), rdf.NewLiteral("Game of Thrones")))
	st.MustAdd(rdf.NewTriple(author, iri("hasName"), rdf.NewLiteral("George R. R. Martin")))
	st.MustAdd(rdf.NewTriple(doi1, iri("publishedIn"), rdf.NewLiteral("1996")))
	st.Freeze()

	a := st.NewAnswerer(repro.Native, repro.Options{})

	// Example 3: the names of authors of things somehow connected to
	// "1996". The hasAuthor edge is *implicit* (writtenBy ⊑ hasAuthor),
	// so answering requires reasoning.
	q := `
		PREFIX ex: <http://example.org/>
		SELECT ?name WHERE {
			?x ex:hasAuthor ?author .
			?author ex:hasName ?name .
			?x ?p "1996" .
		}`

	res, err := a.Query(q, repro.GCov)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Who wrote the thing connected to 1996?")
	for _, row := range res.Rows() {
		fmt.Printf("  -> %s\n", row[0].Value)
	}
	fmt.Printf("(cover %v, %d member CQs, optimize %v, evaluate %v)\n\n",
		res.Report.Cover, res.Report.TotalCQs, res.Report.OptimizeTime, res.Report.EvalTime)

	// Example 4: all resources and the classes they belong to — the
	// reformulation enumerates the schema's classes and their
	// constraints. doi1 is a Publication only implicitly.
	q2 := `
		PREFIX ex: <http://example.org/>
		SELECT ?x ?class WHERE { ?x rdf:type ?class . }`
	res2, err := a.Query(q2, repro.UCQ)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("All class memberships (via a %d-member UCQ reformulation):\n", res2.Report.TotalCQs)
	for _, row := range res2.Rows() {
		fmt.Printf("  %s rdf:type %s\n", row[0].Value, row[1].Value)
	}

	// The same answers are available by saturating instead — the
	// trade-off the paper's Section 5.3 studies.
	st.Saturate()
	sat := st.NewAnswerer(repro.Native, repro.Options{})
	res3, err := sat.Query(q2, repro.Saturation)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSaturation added %d implicit triples and agrees: %d rows both ways.\n",
		st.NumImplicit(), res3.NumRows())
	if res3.NumRows() != res2.NumRows() {
		log.Fatalf("BUG: saturation (%d rows) and reformulation (%d rows) disagree",
			res3.NumRows(), res2.NumRows())
	}
}
