package storage

import (
	"math/rand"
	"testing"

	"repro/internal/dict"
)

func randomTriples(rng *rand.Rand, n int, maxID dict.ID) []Triple {
	ts := make([]Triple, n)
	for i := range ts {
		ts[i] = Triple{
			S: dict.ID(rng.Intn(int(maxID)) + 1),
			P: dict.ID(rng.Intn(8) + 1), // few properties, like real RDF
			O: dict.ID(rng.Intn(int(maxID)) + 1),
		}
	}
	return ts
}

func buildStore(ts []Triple, orders ...Order) *Store {
	b := NewBuilder(orders...)
	for _, t := range ts {
		b.Add(t)
	}
	return b.Build()
}

// linearScan is the specification for Scan/Count.
func linearScan(ts []Triple, p Pattern) map[Triple]int {
	set := make(map[Triple]struct{})
	for _, t := range ts {
		set[t] = struct{}{}
	}
	out := make(map[Triple]int)
	for t := range set {
		if p.Matches(t) {
			out[t]++
		}
	}
	return out
}

func allPatterns(t Triple) []Pattern {
	var ps []Pattern
	for mask := 0; mask < 8; mask++ {
		p := Pattern{}
		if mask&1 != 0 {
			p.S = t.S
		}
		if mask&2 != 0 {
			p.P = t.P
		}
		if mask&4 != 0 {
			p.O = t.O
		}
		ps = append(ps, p)
	}
	return ps
}

func checkAgainstLinear(t *testing.T, st *Store, data []Triple, pats []Pattern) {
	t.Helper()
	for _, p := range pats {
		want := linearScan(data, p)
		got := make(map[Triple]int)
		st.Scan(p, func(tr Triple) bool {
			got[tr]++
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("pattern %+v: got %d triples, want %d", p, len(got), len(want))
		}
		for tr, n := range got {
			if n != 1 {
				t.Fatalf("pattern %+v: triple %v returned %d times", p, tr, n)
			}
			if _, ok := want[tr]; !ok {
				t.Fatalf("pattern %+v: unexpected triple %v", p, tr)
			}
		}
		if c := st.Count(p); c != len(want) {
			t.Fatalf("pattern %+v: Count = %d, want %d", p, c, len(want))
		}
	}
}

// Scans must agree with a linear filter for every pattern shape, for both
// the default (3-index) and full (6-index) configurations.
func TestScanMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := randomTriples(rng, 500, 40)
	var pats []Pattern
	for i := 0; i < 30; i++ {
		pats = append(pats, allPatterns(data[rng.Intn(len(data))])...)
	}
	for _, orders := range [][]Order{DefaultOrders, AllOrders, {OrderSPO}} {
		st := buildStore(data, orders...)
		checkAgainstLinear(t, st, data, pats)
	}
}

func TestBuildDeduplicates(t *testing.T) {
	tr := Triple{S: 1, P: 2, O: 3}
	st := buildStore([]Triple{tr, tr, tr})
	if st.Len() != 1 {
		t.Errorf("Len = %d, want 1", st.Len())
	}
}

func TestContains(t *testing.T) {
	st := buildStore([]Triple{{S: 1, P: 2, O: 3}})
	if !st.Contains(Triple{S: 1, P: 2, O: 3}) {
		t.Error("Contains missed a present triple")
	}
	if st.Contains(Triple{S: 1, P: 2, O: 4}) {
		t.Error("Contains found an absent triple")
	}
}

func TestAddAndCompact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	data := randomTriples(rng, 200, 30)
	st := buildStore(data[:100])
	for _, tr := range data[100:] {
		st.Add(tr)
	}
	// Before compaction: scans must see the delta.
	var pats []Pattern
	for i := 0; i < 20; i++ {
		pats = append(pats, allPatterns(data[100+rng.Intn(100)])...)
	}
	checkAgainstLinear(t, st, data, pats)

	st.Compact()
	checkAgainstLinear(t, st, data, pats)

	want := linearScan(data, Pattern{})
	if st.Len() != len(want) {
		t.Errorf("Len after compact = %d, want %d", st.Len(), len(want))
	}
}

func TestAddReportsNew(t *testing.T) {
	st := buildStore([]Triple{{S: 1, P: 2, O: 3}})
	if st.Add(Triple{S: 1, P: 2, O: 3}) {
		t.Error("Add reported insertion of an existing triple")
	}
	if !st.Add(Triple{S: 9, P: 9, O: 9}) {
		t.Error("Add failed to insert a new triple")
	}
	if st.Add(Triple{S: 9, P: 9, O: 9}) {
		t.Error("Add reported insertion of a delta duplicate")
	}
	if st.Len() != 2 {
		t.Errorf("Len = %d, want 2", st.Len())
	}
}

// Random interleavings of Add, Remove and Compact must always agree with
// a reference set.
func TestAddRemoveCompactProperty(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		base := randomTriples(rng, 100, 15)
		st := buildStore(base)
		ref := linearScan(base, Pattern{})

		pool := randomTriples(rng, 100, 15)
		for step := 0; step < 200; step++ {
			switch rng.Intn(5) {
			case 0, 1: // add
				tr := pool[rng.Intn(len(pool))]
				_, had := ref[tr]
				if got := st.Add(tr); got == had {
					t.Fatalf("seed %d step %d: Add(%v) reported %v, had=%v", seed, step, tr, got, had)
				}
				ref[tr] = 1
			case 2, 3: // remove
				tr := pool[rng.Intn(len(pool))]
				_, had := ref[tr]
				if got := st.Remove(tr); got != had {
					t.Fatalf("seed %d step %d: Remove(%v) reported %v, had=%v", seed, step, tr, got, had)
				}
				delete(ref, tr)
			default:
				st.Compact()
			}
			if st.Len() != len(ref) {
				t.Fatalf("seed %d step %d: Len=%d, want %d", seed, step, st.Len(), len(ref))
			}
		}
		// Final full comparison over every pattern shape of a few triples.
		var pats []Pattern
		for i := 0; i < 10; i++ {
			pats = append(pats, allPatterns(pool[rng.Intn(len(pool))])...)
		}
		data := make([]Triple, 0, len(ref))
		for tr := range ref {
			data = append(data, tr)
		}
		checkAgainstLinear(t, st, data, pats)
	}
}

func TestRemoveThenReAdd(t *testing.T) {
	tr := Triple{S: 1, P: 2, O: 3}
	st := buildStore([]Triple{tr})
	if !st.Remove(tr) || st.Contains(tr) {
		t.Fatal("remove failed")
	}
	if !st.Add(tr) || !st.Contains(tr) {
		t.Fatal("re-add after tombstone failed")
	}
	if st.Len() != 1 {
		t.Fatalf("Len = %d", st.Len())
	}
	st.Compact()
	if !st.Contains(tr) || st.Len() != 1 {
		t.Fatal("compact lost the resurrected triple")
	}
}

func TestRemoveFromDelta(t *testing.T) {
	st := buildStore(nil)
	tr := Triple{S: 1, P: 2, O: 3}
	st.Add(tr)
	if !st.Remove(tr) {
		t.Fatal("remove from delta failed")
	}
	if st.Len() != 0 || st.Contains(tr) {
		t.Fatal("delta removal left residue")
	}
}

func TestScanEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	st := buildStore(randomTriples(rng, 100, 10))
	n := 0
	st.Scan(Pattern{}, func(Triple) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Errorf("visited %d triples after early stop, want 5", n)
	}
}

func TestTriplesSortedSPO(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	st := buildStore(randomTriples(rng, 300, 20))
	ts := st.Triples()
	for i := 1; i < len(ts); i++ {
		a, b := ts[i-1], ts[i]
		if a.S > b.S || (a.S == b.S && a.P > b.P) || (a.S == b.S && a.P == b.P && a.O > b.O) {
			t.Fatalf("Triples not in SPO order at %d: %v then %v", i, a, b)
		}
		if a == b {
			t.Fatalf("duplicate triple in Triples(): %v", a)
		}
	}
}

func TestOrderString(t *testing.T) {
	names := map[Order]string{
		OrderSPO: "SPO", OrderPOS: "POS", OrderOSP: "OSP",
		OrderSOP: "SOP", OrderPSO: "PSO", OrderOPS: "OPS",
	}
	for o, want := range names {
		if o.String() != want {
			t.Errorf("Order %d String = %q, want %q", o, o.String(), want)
		}
	}
}

func TestEmptyStore(t *testing.T) {
	st := NewBuilder().Build()
	if st.Len() != 0 {
		t.Error("empty store has nonzero Len")
	}
	if st.Count(Pattern{S: 1}) != 0 {
		t.Error("empty store Count nonzero")
	}
	st.Scan(Pattern{}, func(Triple) bool {
		t.Error("empty store Scan yielded a triple")
		return false
	})
}

func TestPatternMatches(t *testing.T) {
	tr := Triple{S: 1, P: 2, O: 3}
	if !(Pattern{}).Matches(tr) {
		t.Error("wildcard pattern should match")
	}
	if !(Pattern{S: 1, O: 3}).Matches(tr) {
		t.Error("partial pattern should match")
	}
	if (Pattern{S: 2}).Matches(tr) {
		t.Error("mismatched pattern should not match")
	}
}
