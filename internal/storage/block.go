// The compressed block-columnar frozen representation. A frozen
// permutation index is a sequence of independently-decodable compressed
// blocks (see encode.go) plus an in-memory fence-key directory — the
// first triple key and global offset of every block — over which range
// lookups binary-search without touching the payload: the fences narrow
// any bound-prefix pattern to at most two boundary blocks, and only
// those are decoded.
//
// Decoded blocks come out of a size-class pool of ref-counted triple
// buffers (the mbuf idiom: explicit retain/release, zero-copy views)
// shared process-wide, so steady-state query traffic re-decodes hot
// blocks into recycled memory instead of allocating. A frozenView is
// the cursor layer on top: it caches decoded blocks and materialized
// multi-block spans for its lifetime, is shared by every snapshot of
// one store generation, and returns everything to the pool when the
// last holder releases it.
package storage

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/dict"
)

const (
	// defaultBlockTriples is the target triple count per block. At the
	// observed ~2.5 bytes/triple this makes blocks a few KB: big enough
	// to amortize fence-directory overhead, small enough that a point
	// lookup decodes little.
	defaultBlockTriples = 1024

	// minBufClass is the smallest pooled decode-buffer capacity;
	// numBufClasses size classes double from there (256 .. 64Ki
	// triples). Larger requests are served unpooled.
	minBufClass   = 256
	numBufClasses = 9

	// maxSpanTriples bounds one materialized multi-block range. A range
	// wider than this is declined (Range reports ok=false) and the
	// caller streams through Scan instead — the flat representation
	// hands such ranges out as free subslices, but materializing them
	// from blocks would cost O(range) memory per call.
	maxSpanTriples = 1 << 16

	// maxCachedSpans bounds the per-view span cache; beyond it spans are
	// materialized into unpooled buffers owned by the caller alone.
	maxCachedSpans = 256

	// maxCachedBlocks bounds the per-view decoded-block cache; beyond
	// it blocks decode transiently through the pool. It caps the
	// decoded residency of one store generation at roughly
	// maxCachedBlocks × blockTriples × 24 bytes per order.
	maxCachedBlocks = 512
)

// fblock is one compressed block plus its fence-directory entry.
type fblock struct {
	first [3]dict.ID // (S,P,O) of the block's first triple — the fence key
	off   int        // global position of the first triple in the index
	n     int        // triples in the block
	data  []byte     // compressed payload
}

// frozenIndex is one immutable compressed permutation index.
type frozenIndex struct {
	order     Order
	perm      [3]int
	blocks    []fblock
	n         int // total triples
	dataBytes int // compressed payload bytes across blocks
}

// blockOf returns the index of the block containing global position pos.
func (fi *frozenIndex) blockOf(pos int) int {
	// First block whose off exceeds pos, minus one.
	return sort.Search(len(fi.blocks), func(i int) bool { return fi.blocks[i].off > pos }) - 1
}

// blockBuf is a pooled, ref-counted decode buffer (the mbuf idiom).
// The triples slice is a zero-copy view for as long as the holder's
// reference is live; release returns the buffer to its size class once
// the last reference drops.
type blockBuf struct {
	ts    []Triple
	refs  atomic.Int32
	class int8 // pool size class, -1 for unpooled
}

func (b *blockBuf) retain() { b.refs.Add(1) }

// release drops one reference; the last release returns the buffer to
// the pool. The holder must not touch b.ts afterwards.
func (b *blockBuf) release() {
	if b.refs.Add(-1) != 0 {
		return
	}
	if b.class >= 0 {
		decodePool.classes[b.class].Put(b)
	}
}

// bufPool hands out decode buffers by size class.
type bufPool struct {
	classes [numBufClasses]sync.Pool
}

var decodePool bufPool

// classFor returns the smallest size class with capacity ≥ n, or -1.
func classFor(n int) int {
	c, size := 0, minBufClass
	for c < numBufClasses {
		if n <= size {
			return c
		}
		c++
		size <<= 1
	}
	return -1
}

// get returns a buffer with len n and one reference.
func (p *bufPool) get(n int) *blockBuf {
	c := classFor(n)
	if c < 0 {
		b := &blockBuf{ts: make([]Triple, n), class: -1}
		b.refs.Store(1)
		return b
	}
	if v := p.classes[c].Get(); v != nil {
		b := v.(*blockBuf)
		b.ts = b.ts[:n]
		b.refs.Store(1)
		return b
	}
	b := &blockBuf{ts: make([]Triple, n, minBufClass<<c), class: int8(c)}
	b.refs.Store(1)
	return b
}

// spanKey identifies one materialized global range of a frozen index.
type spanKey struct{ lo, hi int }

// frozenView is the read cursor over one frozen index: it lazily decodes
// blocks into pooled buffers and caches them (and materialized
// multi-block spans) for its lifetime. One view is shared by the owning
// store and every snapshot of that store generation — the view is
// ref-counted, and the last release (store compaction replacing the
// generation, or the last snapshot done with it) returns every cached
// buffer to the pool. All methods are safe for concurrent lock-free use.
//
// The caches below are keyed purely by position within one immutable
// frozenIndex — a view never outlives its generation, so entries cannot
// go stale; the versionstamp discipline is satisfied structurally, which
// is what the suppressions on the span map record.
//
//lint:cache blockview
type frozenView struct {
	fi   *frozenIndex
	refs atomic.Int32

	// dec caches decoded blocks, installed by CAS; nCached bounds it.
	dec     []atomic.Pointer[blockBuf]
	nCached atomic.Int32

	// spans caches materialized multi-block ranges.
	mu    sync.Mutex
	spans map[spanKey][]Triple
	bufs  []*blockBuf // pooled backings of cached spans
}

func newFrozenView(fi *frozenIndex) *frozenView {
	v := &frozenView{fi: fi, dec: make([]atomic.Pointer[blockBuf], len(fi.blocks))}
	v.refs.Store(1)
	return v
}

func (v *frozenView) retain() { v.refs.Add(1) }

// release drops one reference; the last holder's release returns every
// cached block and span buffer to the pool. The caller must guarantee
// that no reads through its reference are still in flight — the engine
// releases its snapshot only after joining all evaluation workers.
func (v *frozenView) release() {
	if v.refs.Add(-1) != 0 {
		return
	}
	for i := range v.dec {
		if b := v.dec[i].Swap(nil); b != nil {
			b.release()
		}
	}
	v.mu.Lock()
	bufs := v.bufs
	v.bufs = nil
	v.spans = nil
	v.mu.Unlock()
	for _, b := range bufs {
		b.release()
	}
}

// acquire returns the decoded triples of block i. cached=true means the
// block is cached on the view and stays valid until the view's release;
// cached=false hands the caller a transient pooled buffer it must
// release via buf.release() when done (buf is nil iff cached).
func (v *frozenView) acquire(i int) (ts []Triple, buf *blockBuf, cached bool) {
	if b := v.dec[i].Load(); b != nil {
		return b.ts, nil, true
	}
	fb := &v.fi.blocks[i]
	b := decodePool.get(fb.n)
	decodeBlockInto(b.ts, fb.data, v.fi.perm)
	if v.nCached.Load() < maxCachedBlocks && v.dec[i].CompareAndSwap(nil, b) {
		v.nCached.Add(1)
		return b.ts, nil, true
	}
	if w := v.dec[i].Load(); w != nil { // lost the race: use the winner
		b.release()
		return w.ts, nil, true
	}
	return b.ts, b, false
}

// keyAt returns the (S,P,O) key of the triple at global position pos.
func (v *frozenView) keyAt(pos int) [3]dict.ID {
	i := v.fi.blockOf(pos)
	ts, buf, cached := v.acquire(i)
	k := key(ts[pos-v.fi.blocks[i].off])
	if !cached {
		buf.release()
	}
	return k
}

// lowerBound returns the first global position whose key satisfies pred,
// which must be monotone in index order. The fence directory narrows the
// search to one candidate block; only that block is decoded.
func (v *frozenView) lowerBound(pred func([3]dict.ID) bool) int {
	blocks := v.fi.blocks
	fb := sort.Search(len(blocks), func(i int) bool { return pred(blocks[i].first) })
	if fb == 0 {
		return 0
	}
	b := fb - 1
	ts, buf, cached := v.acquire(b)
	in := sort.Search(len(ts), func(j int) bool { return pred(key(ts[j])) })
	if !cached {
		buf.release()
	}
	return blocks[b].off + in
}

// searchRange returns the [lo, hi) global range of triples matching the
// bound prefix of the pattern — the frozen counterpart of searchRange on
// a flat index, at the cost of decoding at most two boundary blocks.
func (v *frozenView) searchRange(p Pattern) (int, int) {
	perm := v.fi.perm
	want, prefix := prefixOf(perm, p)
	if prefix == 0 {
		return 0, v.fi.n
	}
	lo := v.lowerBound(func(k [3]dict.ID) bool { return cmpPrefix(k, want, perm, prefix) >= 0 })
	hi := v.lowerBound(func(k [3]dict.ID) bool { return cmpPrefix(k, want, perm, prefix) > 0 })
	return lo, hi
}

// searchPos returns the first position in [lo, hi) whose key satisfies
// pred (monotone over the range), binary-searching with point decodes.
func (v *frozenView) searchPos(lo, hi int, pred func([3]dict.ID) bool) int {
	return lo + sort.Search(hi-lo, func(j int) bool { return pred(v.keyAt(lo + j)) })
}

// iterate streams the triples of the global range [lo, hi) to f in index
// order, stopping early if f returns false. Blocks already cached on the
// view are walked in place; others decode transiently into one pooled
// buffer that is reused block after block, so a full-index scan holds
// O(block) decoded memory, not O(index).
func (v *frozenView) iterate(lo, hi int, f func(Triple) bool) {
	if lo >= hi {
		return
	}
	for i := v.fi.blockOf(lo); i < len(v.fi.blocks) && v.fi.blocks[i].off < hi; i++ {
		fb := &v.fi.blocks[i]
		ts, buf, cached := v.acquire(i)
		a, b := 0, fb.n
		if fb.off < lo {
			a = lo - fb.off
		}
		if fb.off+fb.n > hi {
			b = hi - fb.off
		}
		for _, t := range ts[a:b] {
			if !f(t) {
				if !cached {
					buf.release()
				}
				return
			}
		}
		if !cached {
			buf.release()
		}
	}
}

// slice materializes the global range [lo, hi) as one contiguous triple
// slice, valid until the view's release. A range within a single block
// is a zero-copy view of the cached decoded block; a multi-block range
// is assembled once into a pooled span buffer and cached under its
// (lo, hi) key. ok=false means the range is too wide to materialize
// (maxSpanTriples) — callers fall back to streaming.
func (v *frozenView) slice(lo, hi int) (ts []Triple, ok bool) {
	if lo >= hi {
		return nil, true
	}
	b0 := v.fi.blockOf(lo)
	fb0 := &v.fi.blocks[b0]
	if hi <= fb0.off+fb0.n {
		ts, buf, cached := v.acquire(b0)
		if cached {
			return ts[lo-fb0.off : hi-fb0.off : hi-fb0.off], true
		}
		// Block cache full: copy the range out so the transient buffer
		// can go back to the pool, and cache the copy as a span.
		out := v.copySpan(lo, hi, ts[lo-fb0.off:hi-fb0.off])
		buf.release()
		return out, true
	}
	if hi-lo > maxSpanTriples {
		return nil, false
	}
	v.mu.Lock()
	//lint:ignore versionstamp span cache keyed by position in one immutable frozenIndex; the view dies with its store generation, so entries cannot span versions
	if s, hit := v.spans[spanKey{lo, hi}]; hit {
		v.mu.Unlock()
		return s, true
	}
	v.mu.Unlock()
	out := v.materialize(lo, hi)
	return out, true
}

// copySpan installs a copy of src as the cached span for [lo, hi).
func (v *frozenView) copySpan(lo, hi int, src []Triple) []Triple {
	v.mu.Lock()
	defer v.mu.Unlock()
	//lint:ignore versionstamp span cache keyed by position in one immutable frozenIndex (see slice)
	if s, hit := v.spans[spanKey{lo, hi}]; hit {
		return s
	}
	out := v.newSpanLocked(hi - lo)
	copy(out, src)
	v.putSpanLocked(spanKey{lo, hi}, out)
	return out
}

// materialize assembles the multi-block range [lo, hi): interior blocks
// decode straight into the span buffer, boundary blocks decode through
// acquire and copy their overlap.
func (v *frozenView) materialize(lo, hi int) []Triple {
	v.mu.Lock()
	out := v.newSpanLocked(hi - lo)
	v.mu.Unlock()
	w := 0
	for i := v.fi.blockOf(lo); i < len(v.fi.blocks) && v.fi.blocks[i].off < hi; i++ {
		fb := &v.fi.blocks[i]
		if fb.off >= lo && fb.off+fb.n <= hi {
			decodeBlockInto(out[w:w+fb.n], fb.data, v.fi.perm)
			w += fb.n
			continue
		}
		ts, buf, cached := v.acquire(i)
		a, b := 0, fb.n
		if fb.off < lo {
			a = lo - fb.off
		}
		if fb.off+fb.n > hi {
			b = hi - fb.off
		}
		w += copy(out[w:], ts[a:b])
		if !cached {
			buf.release()
		}
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	//lint:ignore versionstamp span cache keyed by position in one immutable frozenIndex (see slice)
	if s, hit := v.spans[spanKey{lo, hi}]; hit {
		return s // a concurrent materialization of the same range won
	}
	v.putSpanLocked(spanKey{lo, hi}, out)
	return out
}

// newSpanLocked allocates a span buffer of n triples: pooled while the
// span cache has room (the view retains the backing and releases it with
// the cache), plain otherwise.
func (v *frozenView) newSpanLocked(n int) []Triple {
	if v.spans != nil && len(v.spans) >= maxCachedSpans {
		return make([]Triple, n)
	}
	b := decodePool.get(n)
	v.bufs = append(v.bufs, b)
	return b.ts
}

// putSpanLocked caches a materialized span while there is room.
func (v *frozenView) putSpanLocked(k spanKey, s []Triple) {
	if v.spans == nil {
		v.spans = make(map[spanKey][]Triple, 16)
	}
	if len(v.spans) >= maxCachedSpans {
		return
	}
	//lint:ignore versionstamp span cache keyed by position in one immutable frozenIndex (see slice)
	v.spans[k] = s
}

// prefixOf returns the bound values of the pattern and the length of its
// bound prefix under perm (how many leading sort positions are bound).
func prefixOf(perm [3]int, p Pattern) (want [3]dict.ID, prefix int) {
	want = [3]dict.ID{p.S, p.P, p.O}
	for prefix < 3 && want[perm[prefix]] != dict.None {
		prefix++
	}
	return want, prefix
}

// cmpPrefix compares a triple key against the bound prefix of a pattern:
// -1 below, 0 inside, +1 above the matching range.
func cmpPrefix(k, want [3]dict.ID, perm [3]int, prefix int) int {
	for i := 0; i < prefix; i++ {
		pos := perm[i]
		if k[pos] < want[pos] {
			return -1
		}
		if k[pos] > want[pos] {
			return 1
		}
	}
	return 0
}

// frozenBuilder encodes a sorted triple stream into a frozenIndex
// without materializing the flat slice — the streaming encoder the
// merge-based compaction feeds. Blocks are cut every blockTriples.
type frozenBuilder struct {
	order        Order
	perm         [3]int
	blockTriples int
	arena        []byte
	starts       []int // arena offset where each block's payload begins
	firsts       [][3]dict.ID
	counts       []int
	buf          []Triple
	n            int
}

func newFrozenBuilder(order Order, blockTriples int) *frozenBuilder {
	if blockTriples <= 0 {
		blockTriples = defaultBlockTriples
	}
	return &frozenBuilder{
		order:        order,
		perm:         order.perm(),
		blockTriples: blockTriples,
		buf:          make([]Triple, 0, blockTriples),
	}
}

func (fb *frozenBuilder) add(t Triple) {
	fb.buf = append(fb.buf, t)
	if len(fb.buf) == fb.blockTriples {
		fb.flush()
	}
}

func (fb *frozenBuilder) flush() {
	if len(fb.buf) == 0 {
		return
	}
	fb.starts = append(fb.starts, len(fb.arena))
	fb.firsts = append(fb.firsts, key(fb.buf[0]))
	fb.counts = append(fb.counts, len(fb.buf))
	fb.arena = encodeBlock(fb.arena, fb.buf, fb.perm)
	fb.n += len(fb.buf)
	fb.buf = fb.buf[:0]
}

// finish seals the index. The arena was built by append, so the block
// payload subslices are carved out only now, when it stops moving.
func (fb *frozenBuilder) finish() *frozenIndex {
	fb.flush()
	fi := &frozenIndex{
		order:     fb.order,
		perm:      fb.perm,
		blocks:    make([]fblock, len(fb.starts)),
		n:         fb.n,
		dataBytes: len(fb.arena),
	}
	off := 0
	for i, start := range fb.starts {
		end := len(fb.arena)
		if i+1 < len(fb.starts) {
			end = fb.starts[i+1]
		}
		fi.blocks[i] = fblock{
			first: fb.firsts[i],
			off:   off,
			n:     fb.counts[i],
			data:  fb.arena[start:end:end],
		}
		off += fb.counts[i]
	}
	return fi
}
