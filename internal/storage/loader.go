// The parallel sort-merge bulk loader. Builder.Build sorts every
// permutation index concurrently on a bounded worker gate; large inputs
// sort chunk-wise and k-way merge, so a multi-core loader is limited by
// the merge bandwidth rather than one serial sort. Compact folds the
// mutation delta by merging sorted runs — the existing sorted index
// (flat or frozen, streamed block by block), the tombstone filter, and
// the freshly sorted delta — instead of re-sorting the world, so
// write-heavy workloads pay O(n + d) per index, not O(n log n).
package storage

import (
	"runtime"
	"sync"
)

// Compression selects the frozen representation of a store's sorted
// indexes.
type Compression uint8

const (
	// CompressionAuto (the default) compresses stores with at least
	// compressMinTriples triples and keeps smaller ones flat.
	CompressionAuto Compression = iota
	// CompressionOn always builds the compressed block-columnar form.
	CompressionOn
	// CompressionOff always keeps flat sorted []Triple indexes.
	CompressionOff
)

const (
	// compressMinTriples is the CompressionAuto threshold: below it the
	// flat representation's zero-copy ranges beat compression's memory
	// savings.
	compressMinTriples = 4096

	// sortChunkTriples is the chunk size of the parallel sort: chunks
	// sort independently and k-way merge.
	sortChunkTriples = 1 << 16

	// parallelSortMin is the input size below which sorting is serial —
	// goroutine and merge overhead dominates under it.
	parallelSortMin = 1 << 15
)

// gate bounds the loader's concurrency: leaf work units (chunk sorts,
// merges, block encodes) run inside do, so however many index builds are
// in flight, at most cap(g) of them burn a CPU at once.
type gate chan struct{}

func (g gate) do(f func()) {
	g <- struct{}{}
	defer func() { <-g }()
	f()
}

// WithParallelism sets the loader's worker count: 0 (the default) means
// GOMAXPROCS, 1 forces the serial build. It returns the builder.
func (b *Builder) WithParallelism(n int) *Builder {
	b.par = n
	return b
}

// WithCompression selects the frozen representation (CompressionAuto by
// default). It returns the builder.
func (b *Builder) WithCompression(c Compression) *Builder {
	b.compress = c
	return b
}

// WithBlockSize sets the compressed block's target triple count (the
// default is defaultBlockTriples); tests use small blocks to exercise
// many boundaries. It returns the builder.
func (b *Builder) WithBlockSize(n int) *Builder {
	b.blockTriples = n
	return b
}

// Build sorts, deduplicates and indexes the triples, consuming the
// builder. Per-order sorts run concurrently on a bounded worker gate;
// large inputs sort chunk-wise and k-way merge. Depending on the
// compression policy the sorted indexes are kept flat or encoded into
// the compressed block-columnar form.
func (b *Builder) Build() *Store {
	par := b.par
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	bt := b.blockTriples
	if bt <= 0 {
		bt = defaultBlockTriples
	}
	s := &Store{orders: b.orders, compress: b.compress, blockTriples: bt, par: par}
	g := make(gate, par)

	base := b.triples
	b.triples = nil
	base = sortTriples(base, OrderSPO.perm(), g)
	base = dedupSorted(base)
	//lint:ignore lockguard construction: s is not shared until Build returns
	s.n = len(base)
	compressed := wantCompressed(b.compress, len(base))

	var wg sync.WaitGroup
	for _, o := range b.orders {
		if o == OrderSPO {
			continue
		}
		wg.Add(1)
		go func(o Order) {
			defer wg.Done()
			var cp []Triple
			g.do(func() {
				cp = make([]Triple, len(base))
				copy(cp, base)
			})
			cp = sortTriples(cp, o.perm(), g)
			s.installBuilt(o, cp, compressed, bt, g)
		}(o)
	}
	if hasOrder(b.orders, OrderSPO) {
		s.installBuilt(OrderSPO, base, compressed, bt, g)
	}
	wg.Wait()
	for _, o := range b.orders {
		if fz := s.frozen[o]; fz != nil {
			//lint:ignore lockguard construction: s is not shared until Build returns
			s.views[o] = newFrozenView(fz)
		}
	}
	return s
}

// installBuilt stores one sorted index in the representation the policy
// chose. Distinct orders write distinct array slots, so the concurrent
// per-order builders in Build never contend.
func (s *Store) installBuilt(o Order, ts []Triple, compressed bool, blockTriples int, g gate) {
	if compressed {
		//lint:ignore lockguard construction: s is not shared until Build returns
		s.frozen[o] = buildFrozenIndex(ts, o, blockTriples, g)
		return
	}
	//lint:ignore lockguard construction: s is not shared until Build returns
	s.indexes[o] = ts
}

// wantCompressed applies the compression policy for a store of n triples.
func wantCompressed(c Compression, n int) bool {
	switch c {
	case CompressionOn:
		return true
	case CompressionOff:
		return false
	default:
		return n >= compressMinTriples
	}
}

// sortTriples sorts ts by perm. Small inputs sort serially in place;
// large ones split into chunks sorted concurrently under the gate and
// k-way merged into a fresh slice, which is returned.
func sortTriples(ts []Triple, perm [3]int, g gate) []Triple {
	nch := (len(ts) + sortChunkTriples - 1) / sortChunkTriples
	if len(ts) < parallelSortMin || cap(g) <= 1 || nch < 2 {
		g.do(func() { sortByOrder(ts, perm) })
		return ts
	}
	chunks := make([][]Triple, nch)
	var wg sync.WaitGroup
	for i := range chunks {
		lo := i * sortChunkTriples
		hi := min(lo+sortChunkTriples, len(ts))
		chunks[i] = ts[lo:hi]
		wg.Add(1)
		go func(c []Triple) {
			defer wg.Done()
			g.do(func() { sortByOrder(c, perm) })
		}(chunks[i])
	}
	wg.Wait()
	var dst []Triple
	g.do(func() { dst = kwayMerge(chunks, perm, make([]Triple, 0, len(ts))) })
	return dst
}

// kwayMerge merges sorted chunks into dst (appended and returned) with a
// hand-rolled binary heap over the chunk heads. Ties between equal
// triples break by chunk index, so the output is deterministic — and
// since duplicates are identical values, byte-identical to a serial sort
// of the concatenation.
func kwayMerge(chunks [][]Triple, perm [3]int, dst []Triple) []Triple {
	pos := make([]int, len(chunks))
	h := make([]int, 0, len(chunks))
	lessChunk := func(a, b int) bool {
		ta, tb := chunks[a][pos[a]], chunks[b][pos[b]]
		if ta != tb {
			return less(perm, ta, tb)
		}
		return a < b
	}
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < len(h) && lessChunk(h[l], h[small]) {
				small = l
			}
			if r < len(h) && lessChunk(h[r], h[small]) {
				small = r
			}
			if small == i {
				return
			}
			h[i], h[small] = h[small], h[i]
			i = small
		}
	}
	for i := range chunks {
		if len(chunks[i]) > 0 {
			h = append(h, i)
		}
	}
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(i)
	}
	for len(h) > 0 {
		c := h[0]
		dst = append(dst, chunks[c][pos[c]])
		pos[c]++
		if pos[c] == len(chunks[c]) {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		}
		if len(h) > 0 {
			siftDown(0)
		}
	}
	return dst
}

// buildFrozenIndex encodes a sorted index into its compressed form.
// Blocks are self-contained, so they encode concurrently: each worker
// encodes a strided share of the blocks under one gate token.
func buildFrozenIndex(ts []Triple, order Order, blockTriples int, g gate) *frozenIndex {
	perm := order.perm()
	nb := (len(ts) + blockTriples - 1) / blockTriples
	fi := &frozenIndex{order: order, perm: perm, blocks: make([]fblock, nb), n: len(ts)}
	workers := min(cap(g), nb)
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g.do(func() {
				for i := w; i < nb; i += workers {
					lo := i * blockTriples
					hi := min(lo+blockTriples, len(ts))
					chunk := ts[lo:hi]
					fi.blocks[i] = fblock{
						first: key(chunk[0]),
						off:   lo,
						n:     hi - lo,
						data:  encodeBlock(nil, chunk, perm),
					}
				}
			})
		}(w)
	}
	wg.Wait()
	for i := range fi.blocks {
		fi.dataBytes += len(fi.blocks[i].data)
	}
	return fi
}

// compactLocked folds the delta into the sorted indexes and drops
// tombstoned triples; the caller holds the write lock. Each index is
// rebuilt by a linear merge of sorted runs — the existing index
// (streamed block by block when frozen, never fully decoded), the
// tombstone filter, and the sorted delta — and re-encoded or kept flat
// per the compression policy. Orders rebuild concurrently under the
// loader gate.
func (s *Store) compactLocked() {
	if len(s.delta) == 0 && len(s.deleted) == 0 {
		return
	}
	newN := s.n + len(s.delta) - len(s.deleted)
	compressed := wantCompressed(s.compress, newN)
	bt := s.blockTriples
	par := s.par
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	g := make(gate, par)

	type rebuilt struct {
		flat []Triple
		fz   *frozenIndex
	}
	out := make([]rebuilt, len(s.orders))
	var wg sync.WaitGroup
	for i, o := range s.orders {
		// Capture the inputs outside the goroutine: the write lock is
		// held for the whole rebuild (wg.Wait below), so the snapshot of
		// fields taken here is stable.
		flat, fz, deleted, delta := s.indexes[o], s.frozen[o], s.deleted, s.delta
		wg.Add(1)
		go func(i int, o Order) {
			defer wg.Done()
			g.do(func() {
				perm := o.perm()
				d := make([]Triple, len(delta))
				copy(d, delta)
				sortByOrder(d, perm)
				if compressed {
					fb := newFrozenBuilder(o, bt)
					mergeRuns(flat, fz, deleted, d, perm, fb.add)
					out[i].fz = fb.finish()
				} else {
					merged := make([]Triple, 0, newN)
					mergeRuns(flat, fz, deleted, d, perm, func(t Triple) { merged = append(merged, t) })
					out[i].flat = merged
				}
			})
		}(i, o)
	}
	wg.Wait()
	for i, o := range s.orders {
		if v := s.views[o]; v != nil {
			v.release() // snapshots of the old generation keep their own refs
			s.views[o] = nil
		}
		s.indexes[o], s.frozen[o] = out[i].flat, out[i].fz
		if out[i].fz != nil {
			s.views[o] = newFrozenView(out[i].fz)
		}
	}
	s.n = newN
	s.delta = nil
	s.present = nil
	s.deleted = nil
	// The visible triple set is unchanged, but the physical layout the
	// zero-copy readers (Triples, snapshots) may be holding is not; a
	// bump keeps version-stamped consumers maximally conservative.
	s.version.Add(1)
}

// mergeRuns merges one sorted index (flat or frozen — exactly one is
// non-nil unless the store is empty) with a sorted delta, dropping
// tombstoned triples, and emits the merged run in order. Delta triples
// are never already present in the index (Add checks) and tombstones
// only name index entries, so the merge sees no equal pairs.
func mergeRuns(flat []Triple, fz *frozenIndex, deleted map[Triple]struct{}, d []Triple, perm [3]int, emit func(Triple)) {
	i := 0
	step := func(t Triple) {
		if _, dead := deleted[t]; dead {
			return
		}
		for i < len(d) && less(perm, d[i], t) {
			emit(d[i])
			i++
		}
		emit(t)
	}
	if fz != nil {
		for bi := range fz.blocks {
			fb := &fz.blocks[bi]
			buf := decodePool.get(fb.n)
			decodeBlockInto(buf.ts, fb.data, fz.perm)
			for _, t := range buf.ts {
				step(t)
			}
			buf.release()
		}
	} else {
		for _, t := range flat {
			step(t)
		}
	}
	for ; i < len(d); i++ {
		emit(d[i])
	}
}
