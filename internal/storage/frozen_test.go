package storage

import (
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/dict"
)

// buildPair builds the same triple set twice — flat and compressed with
// deliberately tiny blocks so every lookup crosses block boundaries —
// and applies an identical mutation mix to both, so the pair carries the
// same delta and tombstones over different physical representations.
func buildPair(t *testing.T, rng *rand.Rand, n int, maxID dict.ID, orders ...Order) (flat, comp *Store, data []Triple) {
	t.Helper()
	data = randomTriples(rng, n, maxID)
	mk := func(c Compression) *Store {
		b := NewBuilder(orders...).WithCompression(c).WithBlockSize(16).WithParallelism(4)
		for _, tr := range data {
			b.Add(tr)
		}
		return b.Build()
	}
	flat, comp = mk(CompressionOff), mk(CompressionOn)
	if len(comp.frozen) > 0 && comp.frozen[comp.orders[0]] == nil {
		t.Fatalf("CompressionOn store is not frozen")
	}
	return flat, comp, data
}

// mutatePair applies the same adds and removes to both stores.
func mutatePair(flat, comp *Store, rng *rand.Rand, data []Triple, maxID dict.ID) {
	for i := 0; i < len(data)/5; i++ {
		victim := data[rng.Intn(len(data))]
		flat.Remove(victim)
		comp.Remove(victim)
	}
	for i := 0; i < len(data)/5; i++ {
		add := Triple{
			S: dict.ID(rng.Intn(int(maxID)) + 1),
			P: dict.ID(rng.Intn(8) + 1),
			O: dict.ID(rng.Intn(int(maxID)) + 1),
		}
		flat.Add(add)
		comp.Add(add)
	}
}

// probePatterns derives a deterministic mix of pattern shapes from the
// data: every bound-position combination, plus misses.
func probePatterns(rng *rand.Rand, data []Triple, k int) []Pattern {
	var ps []Pattern
	for i := 0; i < k; i++ {
		ps = append(ps, allPatterns(data[rng.Intn(len(data))])...)
	}
	ps = append(ps, Pattern{S: math.MaxUint32}, Pattern{P: math.MaxUint32, O: 1})
	return ps
}

func TestFrozenDifferentialStore(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, orders := range [][]Order{nil, AllOrders} {
		flat, comp, data := buildPair(t, rng, 600, 50, orders...)
		mutatePair(flat, comp, rng, data, 50)
		if flat.Len() != comp.Len() {
			t.Fatalf("len: flat %d, compressed %d", flat.Len(), comp.Len())
		}
		for _, p := range probePatterns(rng, data, 40) {
			want := collectScan(flat.Scan, p)
			got := collectScan(comp.Scan, p)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("orders %v pattern %+v: compressed scan %v, flat scan %v", orders, p, got, want)
			}
			if cf, cc := flat.Count(p), comp.Count(p); cf != cc {
				t.Fatalf("pattern %+v: compressed count %d, flat count %d", p, cc, cf)
			}
		}
		for _, tr := range data[:80] {
			if flat.Contains(tr) != comp.Contains(tr) {
				t.Fatalf("contains(%v): flat %v, compressed %v", tr, flat.Contains(tr), comp.Contains(tr))
			}
		}
	}
}

func TestFrozenDifferentialSnapshot(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, withMutations := range []bool{false, true} {
		flat, comp, data := buildPair(t, rng, 600, 50)
		if withMutations {
			mutatePair(flat, comp, rng, data, 50)
		}
		fs, cs := flat.Snapshot(), comp.Snapshot()
		for _, p := range probePatterns(rng, data, 40) {
			want := collectScan(fs.Scan, p)
			got := collectScan(cs.Scan, p)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("mut=%v pattern %+v: compressed snapshot scan %v, flat %v", withMutations, p, got, want)
			}
			if cf, cc := fs.Count(p), cs.Count(p); cf != cc {
				t.Fatalf("pattern %+v: snapshot count flat %d, compressed %d", p, cf, cc)
			}
			fr, fok := fs.Range(p)
			cr, cok := cs.Range(p)
			if fok && cok {
				if !reflect.DeepEqual(append([]Triple{}, fr...), append([]Triple{}, cr...)) {
					t.Fatalf("pattern %+v: range content differs (flat %d triples, compressed %d)", p, len(fr), len(cr))
				}
			}
			// Whatever each representation answered, replaying the range
			// through ScanRange must equal Scan — the engine's contract.
			if cok {
				viaRange := collectScan(func(p Pattern, f func(Triple) bool) { cs.ScanRange(cr, p, f) }, p)
				if !reflect.DeepEqual(viaRange, want) {
					t.Fatalf("pattern %+v: compressed ScanRange(Range()) %v, want %v", p, viaRange, want)
				}
			}
		}
		fs.Release()
		cs.Release()
	}
}

func TestFrozenDifferentialMultiRange(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	flat, comp, data := buildPair(t, rng, 900, 60)
	fs, cs := flat.Snapshot(), comp.Snapshot()
	defer fs.Release()
	defer cs.Release()

	families := []struct {
		g    Pattern
		vpos int
	}{
		{Pattern{}, 0},                           // vary S over the SPO index
		{Pattern{P: data[0].P}, 2},               // vary O over the POS index
		{Pattern{S: data[1].S, P: data[1].P}, 2}, // fully bound members
		{Pattern{O: data[2].O}, 0},               // vary S over the OSP index
		{Pattern{P: data[3].P}, 0},               // wrong vpos: both must decline
	}
	for fi, fam := range families {
		var consts []dict.ID
		for i := 0; i < 12; i++ {
			consts = append(consts, dict.ID(rng.Intn(60)+1))
		}
		consts = append(consts, consts[len(consts)-1]) // equal repeat
		sortIDs(consts)
		fr, fok := fs.MultiRange(fam.g, fam.vpos, consts, nil)
		cr, cok := cs.MultiRange(fam.g, fam.vpos, consts, nil)
		if fok != cok {
			t.Fatalf("family %d: flat ok=%v, compressed ok=%v", fi, fok, cok)
		}
		if !fok {
			continue
		}
		if len(fr) != len(cr) {
			t.Fatalf("family %d: %d vs %d ranges", fi, len(fr), len(cr))
		}
		for i := range fr {
			if !reflect.DeepEqual(append([]Triple{}, fr[i]...), append([]Triple{}, cr[i]...)) {
				t.Fatalf("family %d range %d: flat %v, compressed %v", fi, i, fr[i], cr[i])
			}
		}
	}
}

func sortIDs(ids []dict.ID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// TestFrozenSnapshotIsolationAcrossCompact pins a snapshot of a frozen
// store, mutates and compacts the store (which replaces the whole frozen
// generation), and checks the snapshot still answers from the old
// generation, byte-identically to a flat snapshot taken at the same
// point.
func TestFrozenSnapshotIsolationAcrossCompact(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	flat, comp, data := buildPair(t, rng, 600, 50)
	mutatePair(flat, comp, rng, data, 50)
	fs, cs := flat.Snapshot(), comp.Snapshot()
	defer fs.Release()
	defer cs.Release()

	// Mutate past the snapshot and fold everything — the compressed
	// store re-encodes every block, the flat one re-sorts.
	mutatePair(flat, comp, rng, data, 50)
	flat.Compact()
	comp.Compact()
	mutatePair(flat, comp, rng, data, 50)

	for _, p := range probePatterns(rng, data, 30) {
		want := collectScan(fs.Scan, p)
		got := collectScan(cs.Scan, p)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("pattern %+v after compact: snapshot scan %v, want %v", p, got, want)
		}
	}
	// And the live stores agree with each other post-compaction.
	for _, p := range probePatterns(rng, data, 30) {
		if !reflect.DeepEqual(collectScan(comp.Scan, p), collectScan(flat.Scan, p)) {
			t.Fatalf("pattern %+v: live stores disagree after compact", p)
		}
	}
}

// TestFrozenCompactTransitionsRepresentation checks CompressionAuto
// crossing the threshold on Compact: a store built small (flat) that
// grows past compressMinTriples becomes frozen on the next Compact, with
// identical contents.
func TestFrozenCompactTransitionsRepresentation(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	b := NewBuilder()
	data := randomTriples(rng, compressMinTriples/2, 4000)
	for _, tr := range data {
		b.Add(tr)
	}
	s := b.Build()
	if s.frozen[OrderSPO] != nil {
		t.Fatalf("small store should be flat under CompressionAuto")
	}
	var added []Triple
	for i := 0; len(added) < compressMinTriples; i++ {
		tr := Triple{
			S: dict.ID(rng.Intn(4000) + 1),
			P: dict.ID(rng.Intn(8) + 1),
			O: dict.ID(rng.Intn(4000) + 1),
		}
		if s.Add(tr) {
			added = append(added, tr)
		}
	}
	s.Compact()
	if s.frozen[OrderSPO] == nil {
		t.Fatalf("store with %d triples should be frozen after Compact", s.Len())
	}
	for _, tr := range added {
		if !s.Contains(tr) {
			t.Fatalf("lost %v across the flat→frozen transition", tr)
		}
	}
	checkAgainstLinear(t, s, append(append([]Triple{}, data...), added...),
		probePatterns(rng, data, 20))
}

// TestLoaderParallelismEquivalence proves the chunked parallel sort and
// block encode produce byte-identical indexes to the serial path.
func TestLoaderParallelismEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := randomTriples(rng, parallelSortMin+3000, 2000)
	mk := func(par int) *Store {
		b := NewBuilder(AllOrders...).WithCompression(CompressionOn).WithParallelism(par)
		for _, tr := range data {
			b.Add(tr)
		}
		return b.Build()
	}
	serial, parallel := mk(1), mk(8)
	for _, o := range AllOrders {
		a, b := serial.frozen[o], parallel.frozen[o]
		if a.n != b.n || len(a.blocks) != len(b.blocks) || a.dataBytes != b.dataBytes {
			t.Fatalf("order %v: shape differs (%d/%d blocks, %d/%d bytes)", o, len(a.blocks), len(b.blocks), a.dataBytes, b.dataBytes)
		}
		for i := range a.blocks {
			if !reflect.DeepEqual(a.blocks[i].data, b.blocks[i].data) ||
				a.blocks[i].first != b.blocks[i].first ||
				a.blocks[i].off != b.blocks[i].off {
				t.Fatalf("order %v block %d differs between par=1 and par=8", o, i)
			}
		}
	}
}

// TestEncodeBlockRoundTrip exercises the varint/delta/RLE encoder on
// edge shapes: single triples, maximal IDs, long runs, descending
// second-column restarts, and exact block-boundary sizes.
func TestEncodeBlockRoundTrip(t *testing.T) {
	cases := [][]Triple{
		{{S: 1, P: 1, O: 1}},
		{{S: math.MaxUint32, P: math.MaxUint32, O: math.MaxUint32}},
		{{S: 1, P: 1, O: 1}, {S: 1, P: 1, O: math.MaxUint32}, {S: 1, P: 2, O: 1}, {S: math.MaxUint32, P: 1, O: 5}},
		// One long run with the third column restarting downward.
		{{S: 7, P: 1, O: 900}, {S: 7, P: 2, O: 3}, {S: 7, P: 3, O: 2}, {S: 7, P: 3, O: 1000}},
	}
	rng := rand.New(rand.NewSource(3))
	big := randomTriples(rng, 1024, 30)
	sortByOrder(big, OrderSPO.perm())
	big = dedupSorted(big)
	cases = append(cases, big)

	for _, perm := range [][3]int{OrderSPO.perm(), OrderPOS.perm(), OrderOSP.perm()} {
		for ci, ts := range cases {
			in := append([]Triple{}, ts...)
			sortByOrder(in, perm)
			data := encodeBlock(nil, in, perm)
			out := make([]Triple, len(in))
			if n := decodeBlockInto(out, data, perm); n != len(in) {
				t.Fatalf("case %d perm %v: decoded %d of %d", ci, perm, n, len(in))
			}
			if !reflect.DeepEqual(out, in) {
				t.Fatalf("case %d perm %v: round trip mismatch", ci, perm)
			}
		}
	}
}

func TestUvarintRoundTrip(t *testing.T) {
	vals := []uint32{0, 1, 127, 128, 16383, 16384, 1<<21 - 1, 1 << 21, math.MaxUint32}
	var buf []byte
	for _, v := range vals {
		buf = appendUvarint(buf, v)
	}
	pos := 0
	for _, want := range vals {
		var got uint32
		got, pos = readUvarint(buf, pos)
		if got != want {
			t.Fatalf("uvarint round trip: got %d, want %d", got, want)
		}
	}
	if pos != len(buf) {
		t.Fatalf("trailing bytes: %d of %d consumed", pos, len(buf))
	}
}

// TestBlockBufPool checks the ref-count contract: a buffer with live
// references never returns to the pool, and release is balanced.
func TestBlockBufPool(t *testing.T) {
	b := decodePool.get(100)
	if len(b.ts) != 100 {
		t.Fatalf("got len %d, want 100", len(b.ts))
	}
	if b.class < 0 {
		t.Fatalf("100-triple request should be pooled")
	}
	b.retain()
	b.release()
	if got := b.refs.Load(); got != 1 {
		t.Fatalf("refs after retain+release: %d, want 1", got)
	}
	b.release() // returns to pool

	huge := decodePool.get(minBufClass<<numBufClasses + 1)
	if huge.class != -1 {
		t.Fatalf("oversized request should be unpooled")
	}
	huge.release()
}

// TestFrozenViewRelease checks that releasing the last reference drops
// the cached blocks and spans.
func TestFrozenViewRelease(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	_, comp, data := buildPair(t, rng, 400, 40)
	sn := comp.Snapshot()
	for _, tr := range data[:20] {
		sn.Scan(Pattern{S: tr.S}, func(Triple) bool { return true })
		sn.Range(Pattern{P: tr.P})
	}
	v := sn.frozen[OrderSPO]
	if v == nil {
		t.Fatalf("no frozen view on compressed snapshot")
	}
	sn.Release()
	sn.Release() // idempotent
	if got := v.refs.Load(); got != 1 {
		t.Fatalf("view refs after snapshot release: %d, want 1 (the store's)", got)
	}
}

// TestFrozenRangeDeclinesWideSpans builds a store wider than the span
// cap and checks Range declines the unbounded pattern while Scan still
// streams it, so the engine's fallback path stays correct.
func TestFrozenRangeDeclinesWideSpans(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	b := NewBuilder().WithCompression(CompressionOn)
	seen := 0
	for seen < maxSpanTriples+500 {
		b.Add(Triple{
			S: dict.ID(rng.Intn(1 << 20)),
			P: dict.ID(rng.Intn(8) + 1),
			O: dict.ID(rng.Intn(1 << 20)),
		})
		seen++
	}
	s := b.Build()
	sn := s.Snapshot()
	defer sn.Release()
	if _, ok := sn.Range(Pattern{}); ok {
		t.Fatalf("Range should decline a %d-triple span", s.Len())
	}
	n := 0
	sn.Scan(Pattern{}, func(Triple) bool { n++; return true })
	if n != s.Len() {
		t.Fatalf("Scan streamed %d of %d", n, s.Len())
	}
}

// TestEachMatchesTriples checks the streaming iterator: same order and
// contents as Triples, early stop honored, on both representations.
func TestEachMatchesTriples(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	flat, comp, data := buildPair(t, rng, 500, 40)
	mutatePair(flat, comp, rng, data, 40)
	for _, s := range []*Store{flat, comp} {
		want := s.Triples()
		var got []Triple
		s.Each(func(tr Triple) bool { got = append(got, tr); return true })
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Each != Triples (%d vs %d triples)", len(got), len(want))
		}
		n := 0
		s.Each(func(Triple) bool { n++; return n < 10 })
		if n != 10 {
			t.Fatalf("early stop: visited %d, want 10", n)
		}
	}
}

// TestFootprint sanity-checks the resident-size report: the compressed
// form of a realistic store must be substantially smaller than flat.
func TestFootprint(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	flat, comp, _ := buildPair(t, rng, 5000, 400)
	ff, cf := flat.Footprint(), comp.Footprint()
	if ff.Compressed || !cf.Compressed {
		t.Fatalf("footprint representation flags wrong: flat=%+v compressed=%+v", ff, cf)
	}
	if ff.Triples != cf.Triples {
		t.Fatalf("triple counts differ: %d vs %d", ff.Triples, cf.Triples)
	}
	if ff.FlatBytes == 0 || cf.BlockBytes == 0 || cf.Blocks == 0 {
		t.Fatalf("zero sizes: flat=%+v compressed=%+v", ff, cf)
	}
	// Tiny 16-triple test blocks carry heavy directory overhead; compare
	// payload alone, which must beat 24 bytes/triple/order comfortably.
	if cf.BlockBytes*3 > ff.FlatBytes {
		t.Fatalf("compression too weak: %d block bytes vs %d flat", cf.BlockBytes, ff.FlatBytes)
	}
}

// TestFrozenConcurrentScansRaceLoader is the -race stress test: snapshot
// scans and live-store reads race Add/Remove/Compact — the bulk-loader
// path that swaps whole frozen generations — on a compressed store.
func TestFrozenConcurrentScansRaceLoader(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	data := randomTriples(rng, 3000, 200)
	b := NewBuilder().WithCompression(CompressionOn).WithBlockSize(64)
	for _, tr := range data {
		b.Add(tr)
	}
	s := b.Build()

	const readers = 4
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(readers)
	for r := 0; r < readers; r++ {
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-done:
					return
				default:
				}
				sn := s.Snapshot()
				p := allPatterns(data[rng.Intn(len(data))])[rng.Intn(8)]
				n := 0
				sn.Scan(p, func(Triple) bool { n++; return true })
				if c := sn.Count(p); c != n {
					t.Errorf("snapshot count %d != scanned %d", c, n)
				}
				if sub, ok := sn.Range(p); ok {
					for range sub {
					}
				}
				sn.Release()
			}
		}(int64(r))
	}
	wrng := rand.New(rand.NewSource(202))
	for i := 0; i < 200; i++ {
		switch i % 10 {
		case 9:
			s.Compact()
		case 8:
			s.Remove(data[wrng.Intn(len(data))])
		default:
			s.Add(Triple{
				S: dict.ID(wrng.Intn(200) + 1),
				P: dict.ID(wrng.Intn(8) + 1),
				O: dict.ID(wrng.Intn(200) + 1),
			})
		}
	}
	close(done)
	wg.Wait()
}
