// Block encoding for the compressed frozen representation: one block
// holds a fixed target number of consecutive triples of one permutation
// index, encoded column-wise in the index's sort order.
//
// The leading sort column is run-length encoded (its value repeats for
// long stretches of a sorted index — every triple of one subject in SPO,
// of one property in POS), the second column is delta-coded within the
// run (it is non-decreasing there), and the third column is delta-coded
// while the second column holds still and stored raw when it moves. All
// values and deltas are unsigned LEB128 varints, so dense dictionary IDs
// cost one or two bytes instead of twelve per triple. Every block is
// self-contained — deltas never cross a block boundary — which is what
// lets blocks decode independently and encode in parallel.
package storage

import "repro/internal/dict"

// appendUvarint appends v in unsigned LEB128.
func appendUvarint(dst []byte, v uint32) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// readUvarint decodes one unsigned LEB128 value at pos, returning the
// value and the position after it. The encoder above is the only
// producer, so the input is trusted; a truncated buffer fails loudly via
// the bounds check.
func readUvarint(data []byte, pos int) (uint32, int) {
	var v uint32
	var shift uint
	for {
		b := data[pos]
		pos++
		v |= uint32(b&0x7f) << shift
		if b < 0x80 {
			return v, pos
		}
		shift += 7
	}
}

// encodeBlock appends the encoding of ts — sorted under perm — to dst
// and returns the extended buffer. The layout is a sequence of runs:
//
//	uvarint(k0 − prev run's k0)   leading-column value, delta-coded
//	uvarint(run length)
//	per triple of the run:
//	    uvarint(k1 − prev k1 in run)            second column
//	    if that delta is zero:  uvarint(k2 − prev k2)
//	    else:                   uvarint(k2)     third column restarts
//
// At the start of a block the previous run value is zero, and at the
// start of a run the previous k1/k2 are zero, so the first occurrences
// encode their raw values under the same rule — no special cases, and no
// state crosses block boundaries.
func encodeBlock(dst []byte, ts []Triple, perm [3]int) []byte {
	var prevRun uint32
	i := 0
	for i < len(ts) {
		k0 := uint32(key(ts[i])[perm[0]])
		j := i
		for j < len(ts) && uint32(key(ts[j])[perm[0]]) == k0 {
			j++
		}
		dst = appendUvarint(dst, k0-prevRun)
		dst = appendUvarint(dst, uint32(j-i))
		prevRun = k0
		var prevK1, prevK2 uint32
		for ; i < j; i++ {
			k := key(ts[i])
			k1, k2 := uint32(k[perm[1]]), uint32(k[perm[2]])
			d1 := k1 - prevK1
			dst = appendUvarint(dst, d1)
			if d1 == 0 {
				dst = appendUvarint(dst, k2-prevK2)
			} else {
				dst = appendUvarint(dst, k2)
			}
			prevK1, prevK2 = k1, k2
		}
	}
	return dst
}

// decodeBlockInto decodes a block payload into dst, which must have room
// for exactly the block's triple count, and returns the number written.
func decodeBlockInto(dst []Triple, data []byte, perm [3]int) int {
	var runVal uint32
	pos := 0
	w := 0
	for pos < len(data) {
		var d0, runLen uint32
		d0, pos = readUvarint(data, pos)
		runLen, pos = readUvarint(data, pos)
		runVal += d0
		var k1, k2 uint32
		for r := uint32(0); r < runLen; r++ {
			var d1 uint32
			d1, pos = readUvarint(data, pos)
			k1 += d1
			if d1 == 0 {
				var d2 uint32
				d2, pos = readUvarint(data, pos)
				k2 += d2
			} else {
				k2, pos = readUvarint(data, pos)
			}
			var k [3]dict.ID
			k[perm[0]] = dict.ID(runVal)
			k[perm[1]] = dict.ID(k1)
			k[perm[2]] = dict.ID(k2)
			dst[w] = Triple{S: k[0], P: k[1], O: k[2]}
			w++
		}
	}
	return w
}
