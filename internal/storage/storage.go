// Package storage implements the Triples(s, p, o) table of the paper's
// experimental setting (Section 5.1): dictionary-encoded triples held in
// sorted arrays, one per index order, so that every triple-pattern shape
// can be answered by a binary-searched range scan.
//
// The paper indexes the table by all six permutations of (s, p, o); three
// of them (SPO, POS, OSP) already give a sorted prefix for every
// combination of bound positions, so the store defaults to those three and
// can be configured with all six (the difference is benchmarked by the
// index-set ablation).
package storage

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/dict"
)

// Triple is a dictionary-encoded RDF triple.
type Triple struct {
	S, P, O dict.ID
}

// Pattern is a triple pattern over encoded values; dict.None (0) in a
// position means "any value".
type Pattern struct {
	S, P, O dict.ID
}

// Matches reports whether the triple matches the pattern.
func (p Pattern) Matches(t Triple) bool {
	return (p.S == dict.None || p.S == t.S) &&
		(p.P == dict.None || p.P == t.P) &&
		(p.O == dict.None || p.O == t.O)
}

// Order is a permutation of the three triple positions.
type Order uint8

// The six index orders. OrderSPO sorts by subject, then property, then
// object, and so on.
const (
	OrderSPO Order = iota
	OrderPOS
	OrderOSP
	OrderSOP
	OrderPSO
	OrderOPS
	numOrders
)

// String returns the order's conventional name.
func (o Order) String() string {
	switch o {
	case OrderSPO:
		return "SPO"
	case OrderPOS:
		return "POS"
	case OrderOSP:
		return "OSP"
	case OrderSOP:
		return "SOP"
	case OrderPSO:
		return "PSO"
	case OrderOPS:
		return "OPS"
	default:
		return fmt.Sprintf("Order(%d)", uint8(o))
	}
}

// perm returns the position permutation of the order: perm[0] is the most
// significant sort position (0=S, 1=P, 2=O).
func (o Order) perm() [3]int {
	switch o {
	case OrderSPO:
		return [3]int{0, 1, 2}
	case OrderPOS:
		return [3]int{1, 2, 0}
	case OrderOSP:
		return [3]int{2, 0, 1}
	case OrderSOP:
		return [3]int{0, 2, 1}
	case OrderPSO:
		return [3]int{1, 0, 2}
	case OrderOPS:
		return [3]int{2, 1, 0}
	default:
		//lint:ignore panicfree unreachable enum default: Order has exactly the six cases above
		panic("storage: invalid order")
	}
}

// DefaultOrders is the minimal complete index set: a sorted prefix exists
// for every combination of bound pattern positions.
var DefaultOrders = []Order{OrderSPO, OrderPOS, OrderOSP}

// AllOrders is the paper's full six-permutation index set.
var AllOrders = []Order{OrderSPO, OrderPOS, OrderOSP, OrderSOP, OrderPSO, OrderOPS}

func key(t Triple) [3]dict.ID { return [3]dict.ID{t.S, t.P, t.O} }

func less(order [3]int, a, b Triple) bool {
	ka, kb := key(a), key(b)
	for _, pos := range order {
		if ka[pos] != kb[pos] {
			return ka[pos] < kb[pos]
		}
	}
	return false
}

// Store is a triple table built in bulk plus a small mutable delta for
// incremental additions and removals (used by the dynamic-data scenarios;
// bulk loads should go through the Builder). All methods are safe for
// concurrent use: reads share an RWMutex read lock, mutations take the
// write lock. Scan callbacks run under the read lock and must not call
// mutating store methods.
//
// Every state change bumps a monotonic version counter (see Version);
// consumers such as the statistics memo and the plan cache stamp derived
// artifacts with the version they were computed against and discard them
// when it moves.
type Store struct {
	version atomic.Uint64 // bumped on every state change

	mu      sync.RWMutex
	orders  []Order
	indexes [numOrders][]Triple // nil for unused orders
	delta   []Triple            // unsorted recent additions
	present map[Triple]struct{} // set semantics for Add
	deleted map[Triple]struct{} // tombstones for Remove
	n       int
}

// Version returns the store's mutation counter: it increases on every
// Add, Remove, Compact or Freeze that changes state, and never decreases.
// Two equal Version values bracket a window with identical store contents,
// which is what makes version-stamped caches sound.
func (s *Store) Version() uint64 { return s.version.Load() }

// Builder accumulates triples for bulk loading.
type Builder struct {
	orders  []Order
	triples []Triple
}

// NewBuilder returns a builder using the given index orders (or
// DefaultOrders when orders is empty).
func NewBuilder(orders ...Order) *Builder {
	if len(orders) == 0 {
		orders = DefaultOrders
	}
	return &Builder{orders: orders}
}

// Add appends a triple; duplicates are eliminated at Build time.
func (b *Builder) Add(t Triple) { b.triples = append(b.triples, t) }

// Len returns the number of triples added so far (duplicates included).
func (b *Builder) Len() int { return len(b.triples) }

// Build sorts, deduplicates and indexes the triples, consuming the builder.
func (b *Builder) Build() *Store {
	s := &Store{orders: b.orders}
	base := b.triples
	b.triples = nil
	sortByOrder(base, OrderSPO.perm())
	base = dedupSorted(base)
	//lint:ignore lockguard construction: s is not shared until Build returns
	s.n = len(base)
	for _, o := range b.orders {
		if o == OrderSPO {
			//lint:ignore lockguard construction: s is not shared until Build returns
			s.indexes[o] = base
			continue
		}
		cp := make([]Triple, len(base))
		copy(cp, base)
		sortByOrder(cp, o.perm())
		//lint:ignore lockguard construction: s is not shared until Build returns
		s.indexes[o] = cp
	}
	if !hasOrder(b.orders, OrderSPO) {
		// base was sorted in SPO for dedup; re-sort it into the first
		// requested order and store it there.
		first := b.orders[0]
		sortByOrder(base, first.perm())
		//lint:ignore lockguard construction: s is not shared until Build returns
		s.indexes[first] = base
	}
	return s
}

func hasOrder(orders []Order, o Order) bool {
	for _, x := range orders {
		if x == o {
			return true
		}
	}
	return false
}

func sortByOrder(ts []Triple, perm [3]int) {
	sort.Slice(ts, func(i, j int) bool { return less(perm, ts[i], ts[j]) })
}

func dedupSorted(ts []Triple) []Triple {
	if len(ts) == 0 {
		return ts
	}
	w := 1
	for i := 1; i < len(ts); i++ {
		if ts[i] != ts[i-1] {
			ts[w] = ts[i]
			w++
		}
	}
	return ts[:w]
}

// Len returns the number of distinct triples in the store.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.n + len(s.delta) - len(s.deleted)
}

// Orders returns the index orders the store maintains.
func (s *Store) Orders() []Order { return s.orders }

// Add inserts one triple incrementally, reporting whether it was new.
// Added triples live in an unsorted delta that every scan also consults;
// call Compact to fold the delta into the sorted indexes.
func (s *Store) Add(t Triple) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.deleted[t]; ok {
		delete(s.deleted, t) // resurrect the tombstoned sorted entry
		s.version.Add(1)
		return true
	}
	if s.containsLocked(t) {
		return false
	}
	if s.present == nil {
		s.present = make(map[Triple]struct{})
	}
	s.present[t] = struct{}{}
	s.delta = append(s.delta, t)
	s.version.Add(1)
	return true
}

// Remove deletes one triple incrementally, reporting whether it was
// present. Removals from the sorted indexes are tombstoned until the next
// Compact; removals from the recent delta are immediate.
func (s *Store) Remove(t Triple) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.containsLocked(t) {
		return false
	}
	if _, ok := s.present[t]; ok {
		delete(s.present, t)
		for i, d := range s.delta {
			if d == t {
				s.delta = append(s.delta[:i], s.delta[i+1:]...)
				break
			}
		}
		s.version.Add(1)
		return true
	}
	if s.deleted == nil {
		s.deleted = make(map[Triple]struct{})
	}
	s.deleted[t] = struct{}{}
	s.version.Add(1)
	return true
}

// Compact merges the delta into the sorted indexes and drops tombstoned
// triples.
func (s *Store) Compact() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.compactLocked()
}

// Freeze folds any pending delta into the sorted indexes, marking the end
// of a load phase. It is Compact under the lifecycle name the higher
// layers use, and like every mutation it advances the version counter
// when it changes state.
func (s *Store) Freeze() { s.Compact() }

// compactLocked does the work of Compact; the caller holds the write lock.
func (s *Store) compactLocked() {
	if len(s.delta) == 0 && len(s.deleted) == 0 {
		return
	}
	rebuilt := make(map[Order][]Triple, len(s.orders))
	for _, o := range s.orders {
		src := s.indexes[o]
		merged := make([]Triple, 0, len(src)+len(s.delta))
		for _, t := range src {
			if _, dead := s.deleted[t]; !dead {
				merged = append(merged, t)
			}
		}
		merged = append(merged, s.delta...)
		sortByOrder(merged, o.perm())
		rebuilt[o] = merged
	}
	for o, idx := range rebuilt {
		s.indexes[o] = idx
	}
	s.n = s.n + len(s.delta) - len(s.deleted)
	s.delta = nil
	s.present = nil
	s.deleted = nil
	// The visible triple set is unchanged, but the physical layout the
	// zero-copy readers (Triples) may be holding is not; a bump keeps
	// version-stamped consumers maximally conservative.
	s.version.Add(1)
}

// Contains reports whether the triple is in the store.
func (s *Store) Contains(t Triple) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.containsLocked(t)
}

// containsLocked reports membership; the caller holds the lock (read or
// write).
func (s *Store) containsLocked(t Triple) bool {
	if _, dead := s.deleted[t]; dead {
		return false
	}
	if _, ok := s.present[t]; ok {
		return true
	}
	idx, perm := s.indexFor(Pattern{S: t.S, P: t.P, O: t.O})
	lo, hi := searchRange(idx, perm, Pattern{S: t.S, P: t.P, O: t.O})
	return hi > lo
}

// indexFor picks an index whose sort prefix covers the bound positions of
// the pattern, so the matching triples form one contiguous range.
func (s *Store) indexFor(p Pattern) ([]Triple, [3]int) {
	//lint:ignore lockguard read-only borrow: every indexFor caller holds mu; pickIndex only reads through the pointer
	return pickIndex(s.orders, &s.indexes, p)
}

// pickIndex implements indexFor for both Store and Snapshot: it returns
// the first index whose sort prefix covers the bound positions of the
// pattern, falling back to the first index (with a residual filter at
// scan time) when no order covers them — possible with a custom order
// set.
func pickIndex(orders []Order, indexes *[numOrders][]Triple, p Pattern) ([]Triple, [3]int) {
	bound := [3]bool{p.S != dict.None, p.P != dict.None, p.O != dict.None}
	nBound := 0
	for _, b := range bound {
		if b {
			nBound++
		}
	}
	for _, o := range orders {
		perm := o.perm()
		ok := true
		for i := 0; i < nBound; i++ {
			if !bound[perm[i]] {
				ok = false
				break
			}
		}
		if ok {
			return indexes[o], perm
		}
	}
	return indexes[orders[0]], orders[0].perm()
}

// searchRange returns the [lo, hi) range of triples matching the bound
// prefix of the pattern under the given permutation.
func searchRange(idx []Triple, perm [3]int, p Pattern) (int, int) {
	want := [3]dict.ID{p.S, p.P, p.O}
	prefix := 0
	for prefix < 3 && want[perm[prefix]] != dict.None {
		prefix++
	}
	if prefix == 0 {
		return 0, len(idx)
	}
	cmp := func(t Triple) int { // -1 below, 0 inside, +1 above the prefix
		k := key(t)
		for i := 0; i < prefix; i++ {
			pos := perm[i]
			if k[pos] < want[pos] {
				return -1
			}
			if k[pos] > want[pos] {
				return 1
			}
		}
		return 0
	}
	lo := sort.Search(len(idx), func(i int) bool { return cmp(idx[i]) >= 0 })
	hi := sort.Search(len(idx), func(i int) bool { return cmp(idx[i]) > 0 })
	return lo, hi
}

// Scan calls f for every triple matching the pattern, stopping early if f
// returns false. The sorted range is zero-copy; the delta is filtered.
//
// Legacy locking contract: f runs under the store's read lock, must not
// call mutating store methods (Add, Remove, Compact, Freeze, Triples),
// and must not re-enter Scan/Count/Contains on the same store — nesting
// read locks deadlocks as soon as a writer queues between the two
// acquisitions. New read paths (the query engine since the snapshot
// refactor) should capture a Snapshot and scan through it instead:
// snapshot scans hold no lock, nest freely, and see a stable view.
func (s *Store) Scan(p Pattern, f func(Triple) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	idx, perm := s.indexFor(p)
	lo, hi := searchRange(idx, perm, p)
	for _, t := range idx[lo:hi] {
		if !p.Matches(t) { // residual filter; no-op for covering indexes
			continue
		}
		if len(s.deleted) > 0 {
			if _, dead := s.deleted[t]; dead {
				continue
			}
		}
		if !f(t) {
			return
		}
	}
	for _, t := range s.delta {
		if p.Matches(t) {
			if !f(t) {
				return
			}
		}
	}
}

// Count returns the number of triples matching the pattern. For patterns
// whose bound positions are a sort prefix of some index this is two binary
// searches, which is what makes statistics collection cheap.
func (s *Store) Count(p Pattern) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	idx, perm := s.indexFor(p)
	lo, hi := searchRange(idx, perm, p)
	n := 0
	if coversBound(perm, p) {
		n = hi - lo
	} else {
		for _, t := range idx[lo:hi] {
			if p.Matches(t) {
				n++
			}
		}
	}
	// Tombstones always refer to sorted entries, so matching ones were
	// counted above and must be subtracted.
	for t := range s.deleted {
		if p.Matches(t) {
			n--
		}
	}
	for _, t := range s.delta {
		if p.Matches(t) {
			n++
		}
	}
	return n
}

func coversBound(perm [3]int, p Pattern) bool {
	bound := [3]bool{p.S != dict.None, p.P != dict.None, p.O != dict.None}
	nBound := 0
	for _, b := range bound {
		if b {
			nBound++
		}
	}
	for i := 0; i < nBound; i++ {
		if !bound[perm[i]] {
			return false
		}
	}
	return true
}

// Triples returns all triples in SPO order (delta compacted first). The
// returned slice is a snapshot: later mutations build fresh index slices
// and never write through it.
func (s *Store) Triples() []Triple {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.compactLocked()
	if idx := s.indexes[OrderSPO]; idx != nil {
		return idx
	}
	// Custom order sets may lack SPO; return a sorted copy.
	src := s.indexes[s.orders[0]]
	cp := make([]Triple, len(src))
	copy(cp, src)
	sortByOrder(cp, OrderSPO.perm())
	return cp
}
