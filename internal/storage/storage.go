// Package storage implements the Triples(s, p, o) table of the paper's
// experimental setting (Section 5.1): dictionary-encoded triples held in
// sorted indexes, one per index order, so that every triple-pattern shape
// can be answered by a binary-searched range scan.
//
// The paper indexes the table by all six permutations of (s, p, o); three
// of them (SPO, POS, OSP) already give a sorted prefix for every
// combination of bound positions, so the store defaults to those three and
// can be configured with all six (the difference is benchmarked by the
// index-set ablation).
//
// A sorted index has two physical representations: a flat []Triple, whose
// ranges are free zero-copy subslices, and the compressed block-columnar
// frozen form (block.go/encode.go) that cuts resident bytes per triple by
// roughly an order of magnitude at larger scales. The Compression policy
// on the Builder picks between them; every read path works identically
// over both and produces byte-identical answers.
package storage

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/dict"
)

// Triple is a dictionary-encoded RDF triple.
type Triple struct {
	S, P, O dict.ID
}

// Pattern is a triple pattern over encoded values; dict.None (0) in a
// position means "any value".
type Pattern struct {
	S, P, O dict.ID
}

// Matches reports whether the triple matches the pattern.
func (p Pattern) Matches(t Triple) bool {
	return (p.S == dict.None || p.S == t.S) &&
		(p.P == dict.None || p.P == t.P) &&
		(p.O == dict.None || p.O == t.O)
}

// Order is a permutation of the three triple positions.
type Order uint8

// The six index orders. OrderSPO sorts by subject, then property, then
// object, and so on.
const (
	OrderSPO Order = iota
	OrderPOS
	OrderOSP
	OrderSOP
	OrderPSO
	OrderOPS
	numOrders
)

// String returns the order's conventional name.
func (o Order) String() string {
	switch o {
	case OrderSPO:
		return "SPO"
	case OrderPOS:
		return "POS"
	case OrderOSP:
		return "OSP"
	case OrderSOP:
		return "SOP"
	case OrderPSO:
		return "PSO"
	case OrderOPS:
		return "OPS"
	default:
		return fmt.Sprintf("Order(%d)", uint8(o))
	}
}

// perm returns the position permutation of the order: perm[0] is the most
// significant sort position (0=S, 1=P, 2=O).
func (o Order) perm() [3]int {
	switch o {
	case OrderSPO:
		return [3]int{0, 1, 2}
	case OrderPOS:
		return [3]int{1, 2, 0}
	case OrderOSP:
		return [3]int{2, 0, 1}
	case OrderSOP:
		return [3]int{0, 2, 1}
	case OrderPSO:
		return [3]int{1, 0, 2}
	case OrderOPS:
		return [3]int{2, 1, 0}
	default:
		//lint:ignore panicfree unreachable enum default: Order has exactly the six cases above
		panic("storage: invalid order")
	}
}

// DefaultOrders is the minimal complete index set: a sorted prefix exists
// for every combination of bound pattern positions.
var DefaultOrders = []Order{OrderSPO, OrderPOS, OrderOSP}

// AllOrders is the paper's full six-permutation index set.
var AllOrders = []Order{OrderSPO, OrderPOS, OrderOSP, OrderSOP, OrderPSO, OrderOPS}

func key(t Triple) [3]dict.ID { return [3]dict.ID{t.S, t.P, t.O} }

func less(order [3]int, a, b Triple) bool {
	ka, kb := key(a), key(b)
	for _, pos := range order {
		if ka[pos] != kb[pos] {
			return ka[pos] < kb[pos]
		}
	}
	return false
}

// Store is a triple table built in bulk plus a small mutable delta for
// incremental additions and removals (used by the dynamic-data scenarios;
// bulk loads should go through the Builder). All methods are safe for
// concurrent use: reads share an RWMutex read lock, mutations take the
// write lock. Scan callbacks run under the read lock and must not call
// mutating store methods.
//
// Each sorted index lives in exactly one of two slots: indexes[o] (flat)
// or frozen[o] (compressed block-columnar, read through the ref-counted
// views[o] cursor shared with every snapshot of the current generation).
// Mutations always install fresh indexes and fresh views — old
// generations stay valid for the snapshots still holding them.
//
// Every state change bumps a monotonic version counter (see Version);
// consumers such as the statistics memo and the plan cache stamp derived
// artifacts with the version they were computed against and discard them
// when it moves.
type Store struct {
	version atomic.Uint64 // bumped on every state change

	mu      sync.RWMutex
	orders  []Order
	indexes [numOrders][]Triple     // flat representation; nil when frozen or unused
	frozen  [numOrders]*frozenIndex // compressed representation; nil when flat or unused
	views   [numOrders]*frozenView  // current-generation cursors over frozen
	delta   []Triple                // unsorted recent additions
	present map[Triple]struct{}     // set semantics for Add
	deleted map[Triple]struct{}     // tombstones for Remove
	n       int

	compress     Compression // policy applied on Build and every Compact
	blockTriples int         // target triples per compressed block
	par          int         // loader parallelism (0 = GOMAXPROCS)
}

// Version returns the store's mutation counter: it increases on every
// Add, Remove, Compact or Freeze that changes state, and never decreases.
// Two equal Version values bracket a window with identical store contents,
// which is what makes version-stamped caches sound.
func (s *Store) Version() uint64 { return s.version.Load() }

// Builder accumulates triples for bulk loading.
type Builder struct {
	orders  []Order
	triples []Triple

	par          int         // see WithParallelism
	compress     Compression // see WithCompression
	blockTriples int         // see WithBlockSize
}

// NewBuilder returns a builder using the given index orders (or
// DefaultOrders when orders is empty).
func NewBuilder(orders ...Order) *Builder {
	if len(orders) == 0 {
		orders = DefaultOrders
	}
	return &Builder{orders: orders}
}

// Add appends a triple; duplicates are eliminated at Build time.
func (b *Builder) Add(t Triple) { b.triples = append(b.triples, t) }

// Len returns the number of triples added so far (duplicates included).
func (b *Builder) Len() int { return len(b.triples) }

func hasOrder(orders []Order, o Order) bool {
	for _, x := range orders {
		if x == o {
			return true
		}
	}
	return false
}

func sortByOrder(ts []Triple, perm [3]int) {
	sort.Slice(ts, func(i, j int) bool { return less(perm, ts[i], ts[j]) })
}

func dedupSorted(ts []Triple) []Triple {
	if len(ts) == 0 {
		return ts
	}
	w := 1
	for i := 1; i < len(ts); i++ {
		if ts[i] != ts[i-1] {
			ts[w] = ts[i]
			w++
		}
	}
	return ts[:w]
}

// Len returns the number of distinct triples in the store.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.n + len(s.delta) - len(s.deleted)
}

// Orders returns the index orders the store maintains.
func (s *Store) Orders() []Order { return s.orders }

// Add inserts one triple incrementally, reporting whether it was new.
// Added triples live in an unsorted delta that every scan also consults;
// call Compact to fold the delta into the sorted indexes.
func (s *Store) Add(t Triple) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.deleted[t]; ok {
		delete(s.deleted, t) // resurrect the tombstoned sorted entry
		s.version.Add(1)
		return true
	}
	if s.containsLocked(t) {
		return false
	}
	if s.present == nil {
		s.present = make(map[Triple]struct{})
	}
	s.present[t] = struct{}{}
	s.delta = append(s.delta, t)
	s.version.Add(1)
	return true
}

// Remove deletes one triple incrementally, reporting whether it was
// present. Removals from the sorted indexes are tombstoned until the next
// Compact; removals from the recent delta are immediate.
func (s *Store) Remove(t Triple) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.containsLocked(t) {
		return false
	}
	if _, ok := s.present[t]; ok {
		delete(s.present, t)
		for i, d := range s.delta {
			if d == t {
				s.delta = append(s.delta[:i], s.delta[i+1:]...)
				break
			}
		}
		s.version.Add(1)
		return true
	}
	if s.deleted == nil {
		s.deleted = make(map[Triple]struct{})
	}
	s.deleted[t] = struct{}{}
	s.version.Add(1)
	return true
}

// Compact merges the delta into the sorted indexes and drops tombstoned
// triples (see compactLocked in loader.go for the merge strategy).
func (s *Store) Compact() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.compactLocked()
}

// Freeze folds any pending delta into the sorted indexes, marking the end
// of a load phase. It is Compact under the lifecycle name the higher
// layers use, and like every mutation it advances the version counter
// when it changes state.
func (s *Store) Freeze() { s.Compact() }

// Contains reports whether the triple is in the store.
func (s *Store) Contains(t Triple) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.containsLocked(t)
}

// containsLocked reports membership; the caller holds the lock (read or
// write).
func (s *Store) containsLocked(t Triple) bool {
	if _, dead := s.deleted[t]; dead {
		return false
	}
	if _, ok := s.present[t]; ok {
		return true
	}
	p := Pattern{S: t.S, P: t.P, O: t.O}
	o := pickOrder(s.orders, p)
	if v := s.views[o]; v != nil {
		lo, hi := v.searchRange(p)
		return hi > lo
	}
	lo, hi := searchRange(s.indexes[o], o.perm(), p)
	return hi > lo
}

// pickOrder returns the first order whose sort prefix covers the bound
// positions of the pattern, so the matching triples form one contiguous
// range; it falls back to the first order (with a residual filter at scan
// time) when no order covers them — possible with a custom order set.
func pickOrder(orders []Order, p Pattern) Order {
	bound := [3]bool{p.S != dict.None, p.P != dict.None, p.O != dict.None}
	nBound := 0
	for _, b := range bound {
		if b {
			nBound++
		}
	}
	for _, o := range orders {
		perm := o.perm()
		ok := true
		for i := 0; i < nBound; i++ {
			if !bound[perm[i]] {
				ok = false
				break
			}
		}
		if ok {
			return o
		}
	}
	return orders[0]
}

// searchRange returns the [lo, hi) range of triples matching the bound
// prefix of the pattern under the given permutation. The frozen
// counterpart is frozenView.searchRange.
func searchRange(idx []Triple, perm [3]int, p Pattern) (int, int) {
	want, prefix := prefixOf(perm, p)
	if prefix == 0 {
		return 0, len(idx)
	}
	lo := sort.Search(len(idx), func(i int) bool { return cmpPrefix(key(idx[i]), want, perm, prefix) >= 0 })
	hi := sort.Search(len(idx), func(i int) bool { return cmpPrefix(key(idx[i]), want, perm, prefix) > 0 })
	return lo, hi
}

// Scan calls f for every triple matching the pattern, stopping early if f
// returns false. The sorted range streams zero-copy (flat) or block by
// block (frozen); the delta is filtered.
//
// Legacy locking contract: f runs under the store's read lock, must not
// call mutating store methods (Add, Remove, Compact, Freeze, Triples),
// and must not re-enter Scan/Count/Contains on the same store — nesting
// read locks deadlocks as soon as a writer queues between the two
// acquisitions. New read paths (the query engine since the snapshot
// refactor) should capture a Snapshot and scan through it instead:
// snapshot scans hold no lock, nest freely, and see a stable view.
func (s *Store) Scan(p Pattern, f func(Triple) bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	o := pickOrder(s.orders, p)
	stopped := false
	visit := func(t Triple) bool {
		if !p.Matches(t) { // residual filter; no-op for covering indexes
			return true
		}
		if len(s.deleted) > 0 {
			if _, dead := s.deleted[t]; dead {
				return true
			}
		}
		if !f(t) {
			stopped = true
			return false
		}
		return true
	}
	if v := s.views[o]; v != nil {
		lo, hi := v.searchRange(p)
		v.iterate(lo, hi, visit)
	} else {
		idx := s.indexes[o]
		lo, hi := searchRange(idx, o.perm(), p)
		for _, t := range idx[lo:hi] {
			if !visit(t) {
				break
			}
		}
	}
	if stopped {
		return
	}
	for _, t := range s.delta {
		if p.Matches(t) {
			if !f(t) {
				return
			}
		}
	}
}

// Count returns the number of triples matching the pattern. For patterns
// whose bound positions are a sort prefix of some index this is two binary
// searches — on a frozen index the fence-key directory narrows them to at
// most two boundary-block decodes, never a full decode — which is what
// makes statistics collection cheap.
func (s *Store) Count(p Pattern) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	o := pickOrder(s.orders, p)
	perm := o.perm()
	n := 0
	if v := s.views[o]; v != nil {
		lo, hi := v.searchRange(p)
		if coversBound(perm, p) {
			n = hi - lo
		} else {
			v.iterate(lo, hi, func(t Triple) bool {
				if p.Matches(t) {
					n++
				}
				return true
			})
		}
	} else {
		idx := s.indexes[o]
		lo, hi := searchRange(idx, perm, p)
		if coversBound(perm, p) {
			n = hi - lo
		} else {
			for _, t := range idx[lo:hi] {
				if p.Matches(t) {
					n++
				}
			}
		}
	}
	// Tombstones always refer to sorted entries, so matching ones were
	// counted above and must be subtracted.
	for t := range s.deleted {
		if p.Matches(t) {
			n--
		}
	}
	for _, t := range s.delta {
		if p.Matches(t) {
			n++
		}
	}
	return n
}

func coversBound(perm [3]int, p Pattern) bool {
	bound := [3]bool{p.S != dict.None, p.P != dict.None, p.O != dict.None}
	nBound := 0
	for _, b := range bound {
		if b {
			nBound++
		}
	}
	for i := 0; i < nBound; i++ {
		if !bound[perm[i]] {
			return false
		}
	}
	return true
}

// Triples returns all triples in SPO order (delta compacted first). It
// materializes an O(store) slice on a frozen store or a custom order set;
// callers that only iterate should use Each, which streams block by block
// and allocates nothing on the flat path.
func (s *Store) Triples() []Triple {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.compactLocked()
	ts, sorted := s.spoTriplesLocked()
	if !sorted {
		sortByOrder(ts, OrderSPO.perm())
	}
	return ts
}

// spoTriplesLocked returns the compacted store's triples, flat. sorted
// reports whether they are already in SPO order; when false the slice is
// a private copy the caller may sort in place. The flat-SPO case shares
// the index zero-copy: later mutations build fresh index slices and never
// write through it.
func (s *Store) spoTriplesLocked() (ts []Triple, sorted bool) {
	if idx := s.indexes[OrderSPO]; idx != nil {
		return idx, true
	}
	if v := s.views[OrderSPO]; v != nil {
		cp := make([]Triple, 0, s.n)
		v.iterate(0, s.n, func(t Triple) bool { cp = append(cp, t); return true })
		return cp, true
	}
	// Custom order sets may lack SPO entirely; copy out the first order.
	first := s.orders[0]
	if v := s.views[first]; v != nil {
		cp := make([]Triple, 0, s.n)
		v.iterate(0, s.n, func(t Triple) bool { cp = append(cp, t); return true })
		return cp, false
	}
	src := s.indexes[first]
	cp := make([]Triple, len(src))
	copy(cp, src)
	return cp, false
}

// Each calls f for every triple in the store in SPO order (delta
// compacted first), stopping early if f returns false. Unlike Triples it
// never materializes the store: the flat representation iterates the
// index in place and the frozen one streams block by block, so a full
// pass holds O(block) decoded memory. f runs without the store lock —
// the captured index generation is immutable — and may call any store
// method.
func (s *Store) Each(f func(Triple) bool) {
	s.mu.Lock()
	s.compactLocked()
	flat := s.indexes[OrderSPO]
	view := s.views[OrderSPO]
	if flat == nil && view == nil {
		// Custom order set without SPO: fall back to the sorted copy.
		ts, sorted := s.spoTriplesLocked()
		if !sorted {
			sortByOrder(ts, OrderSPO.perm())
		}
		s.mu.Unlock()
		for _, t := range ts {
			if !f(t) {
				return
			}
		}
		return
	}
	n := s.n
	if view != nil {
		view.retain()
	}
	s.mu.Unlock()
	if view != nil {
		defer view.release()
		view.iterate(0, n, f)
		return
	}
	for _, t := range flat {
		if !f(t) {
			return
		}
	}
}

// Footprint describes the resident cost of the store's current index
// representation (excluding the transient delta and tombstone sets).
type Footprint struct {
	Triples    int  // distinct triples in the sorted indexes
	Orders     int  // index orders maintained
	Compressed bool // true when the indexes are block-columnar

	FlatBytes  int // flat []Triple index bytes (24 per triple per order)
	BlockBytes int // compressed block payload bytes across orders
	DirBytes   int // fence-key directory bytes across orders
	Blocks     int // compressed blocks across orders
}

// IndexBytes returns the total resident index bytes.
func (f Footprint) IndexBytes() int { return f.FlatBytes + f.BlockBytes + f.DirBytes }

// BytesPerTriple returns resident index bytes divided by triple count,
// summed over all maintained orders.
func (f Footprint) BytesPerTriple() float64 {
	if f.Triples == 0 {
		return 0
	}
	return float64(f.IndexBytes()) / float64(f.Triples)
}

// fblockDirBytes approximates the in-memory size of one fence-directory
// entry: the fence key (12), off and n (16), and the payload slice
// header (24), padded.
const fblockDirBytes = 56

// Footprint reports the store's resident index cost.
func (s *Store) Footprint() Footprint {
	s.mu.RLock()
	defer s.mu.RUnlock()
	fp := Footprint{Triples: s.n, Orders: len(s.orders)}
	for _, o := range s.orders {
		if fz := s.frozen[o]; fz != nil {
			fp.Compressed = true
			fp.BlockBytes += fz.dataBytes
			fp.DirBytes += len(fz.blocks) * fblockDirBytes
			fp.Blocks += len(fz.blocks)
			continue
		}
		fp.FlatBytes += len(s.indexes[o]) * 24
	}
	return fp
}
