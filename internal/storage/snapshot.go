// Snapshot is the lock-free read path of the store: an immutable,
// version-stamped view captured once per query, over which arbitrarily
// deep scan nesting is safe (no lock is held while reading) and range
// lookups can hand out sorted subslices directly instead of driving a
// per-triple callback under a mutex.
//
// The paper's setting evaluates reformulations with hundreds to
// thousands of near-identical member CQs, each of which re-scans the
// same triple table; a relational backend amortizes that with shared
// scans and MVCC snapshots. Snapshot is this reproduction's equivalent:
// the engine pins one Snapshot at the top of an evaluation and every
// bind-join, statistics probe and shard worker reads through it.
//
// Over the compressed frozen representation a snapshot reads through the
// store generation's shared frozenView cursors (retained at capture):
// Scan streams blocks, Range hands out lazily-decoded cached views with
// the same zero-copy stability contract as flat subslices, and the
// optional Release returns the cached decode buffers to the pool early.
package storage

import (
	"sort"
	"sync/atomic"

	"repro/internal/dict"
)

// Snapshot is an immutable view of a Store at one mutation version.
// The sorted indexes are shared zero-copy with the store (mutations
// always install fresh index slices and views, never write through old
// ones); the small delta and tombstone sets are copied at capture time
// because Add and Remove update them in place. All methods are safe for
// concurrent use by any number of goroutines without synchronization,
// and — unlike Store.Scan callbacks — may be nested freely and may run
// concurrently with store mutations.
type Snapshot struct {
	version  uint64
	orders   []Order
	indexes  [numOrders][]Triple
	frozen   [numOrders]*frozenView // retained cursors; nil for flat or unused orders
	delta    []Triple               // additions not yet compacted, in insertion order
	deleted  map[Triple]struct{}    // tombstoned sorted entries
	n        int
	released atomic.Bool
}

// Snapshot captures an immutable view of the store's current contents.
// The capture cost is one read-lock acquisition plus a copy of the
// (typically empty) delta and tombstone sets; on a frozen store it is a
// handful of pointer copies and view retains.
func (s *Store) Snapshot() *Snapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sn := &Snapshot{
		version: s.version.Load(),
		orders:  s.orders,
		indexes: s.indexes,
		n:       s.n + len(s.delta) - len(s.deleted),
	}
	for _, o := range s.orders {
		if v := s.views[o]; v != nil {
			v.retain()
			sn.frozen[o] = v
		}
	}
	if len(s.delta) > 0 {
		sn.delta = append([]Triple(nil), s.delta...)
	}
	if len(s.deleted) > 0 {
		sn.deleted = make(map[Triple]struct{}, len(s.deleted))
		for t := range s.deleted {
			sn.deleted[t] = struct{}{}
		}
	}
	return sn
}

// Release drops the snapshot's references on the frozen-generation
// cursors, letting their cached decode buffers return to the pool as
// soon as the store has moved past the generation too. Calling it is
// optional — an unreleased snapshot is reclaimed by the garbage
// collector like any value, the pool just recycles less — but the
// engine releases at the end of every evaluation, after all workers have
// joined and every borrowed range subslice has been dropped. Any reads
// through the snapshot after Release are invalid. Release is idempotent.
func (sn *Snapshot) Release() {
	if sn.released.Swap(true) {
		return
	}
	for _, v := range sn.frozen {
		if v != nil {
			v.release()
		}
	}
}

// Released reports whether Release has run — observability for the
// engine's release-on-every-exit-path guarantee (the cancellation tests
// assert it), not a synchronization primitive.
func (sn *Snapshot) Released() bool { return sn.released.Load() }

// Version returns the store mutation version the snapshot was captured
// at. Two snapshots with equal versions have identical contents, which
// is what lets version-stamped artifacts (statistics memos, plan-cache
// entries) validated against a snapshot agree with validation against
// the live store.
func (sn *Snapshot) Version() uint64 { return sn.version }

// Len returns the number of distinct triples visible in the snapshot.
func (sn *Snapshot) Len() int { return sn.n }

// Orders returns the index orders the snapshot carries.
func (sn *Snapshot) Orders() []Order { return sn.orders }

// Contains reports whether the triple is visible in the snapshot.
func (sn *Snapshot) Contains(t Triple) bool {
	if _, dead := sn.deleted[t]; dead {
		return false
	}
	for _, d := range sn.delta {
		if d == t {
			return true
		}
	}
	p := Pattern{S: t.S, P: t.P, O: t.O}
	o := pickOrder(sn.orders, p)
	if v := sn.frozen[o]; v != nil {
		lo, hi := v.searchRange(p)
		return hi > lo
	}
	lo, hi := searchRange(sn.indexes[o], o.perm(), p)
	return hi > lo
}

// Scan calls f for every triple matching the pattern, stopping early if
// f returns false, in exactly the order Store.Scan would produce: the
// sorted range first, then matching delta triples in insertion order.
// No lock is held; f may nest further snapshot reads and may run
// concurrently with store mutations. On a frozen index the range streams
// block by block, holding O(block) decoded memory however wide it is.
func (sn *Snapshot) Scan(p Pattern, f func(Triple) bool) {
	o := pickOrder(sn.orders, p)
	if v := sn.frozen[o]; v != nil {
		lo, hi := v.searchRange(p)
		stopped := false
		v.iterate(lo, hi, func(t Triple) bool {
			if !p.Matches(t) { // residual filter; no-op for covering indexes
				return true
			}
			if len(sn.deleted) > 0 {
				if _, dead := sn.deleted[t]; dead {
					return true
				}
			}
			if !f(t) {
				stopped = true
				return false
			}
			return true
		})
		if stopped {
			return
		}
		for _, t := range sn.delta {
			if p.Matches(t) {
				if !f(t) {
					return
				}
			}
		}
		return
	}
	idx := sn.indexes[o]
	lo, hi := searchRange(idx, o.perm(), p)
	sn.ScanRange(idx[lo:hi], p, f)
}

// ScanRange replays a sorted subrange previously located by Range or
// MultiRange through the snapshot's residual filter, tombstones and
// delta — producing exactly the triple sequence Scan(p) would, given
// that sub is the sorted range Scan would have binary-searched.
func (sn *Snapshot) ScanRange(sub []Triple, p Pattern, f func(Triple) bool) {
	for _, t := range sub {
		if !p.Matches(t) { // residual filter; no-op for covering indexes
			continue
		}
		if len(sn.deleted) > 0 {
			if _, dead := sn.deleted[t]; dead {
				continue
			}
		}
		if !f(t) {
			return
		}
	}
	for _, t := range sn.delta {
		if p.Matches(t) {
			if !f(t) {
				return
			}
		}
	}
}

// Range returns the triples matching p as a sorted subslice, when the
// subslice alone is provably the exact answer: the pattern's bound
// positions are a sort prefix of the chosen index (no residual filter),
// no tombstones exist, and no delta triple matches. ok=false means the
// caller must fall back to Scan.
//
// On a flat index the subslice is zero-copy into the shared index. On a
// frozen index it is a view of a lazily-decoded block (or a materialized
// multi-block span) cached on the generation's cursor — equally stable
// for the snapshot's lifetime, so callers (the engine's bind-joins and
// scanCache) treat both identically; a range wider than the
// materialization cap is declined (ok=false) and streams through Scan
// instead. On a frozen store with the default index set, every pattern
// shape narrower than the cap takes the ok path.
func (sn *Snapshot) Range(p Pattern) (ts []Triple, ok bool) {
	o := pickOrder(sn.orders, p)
	perm := o.perm()
	if !coversBound(perm, p) {
		return nil, false
	}
	if len(sn.deleted) > 0 {
		return nil, false
	}
	for _, t := range sn.delta {
		if p.Matches(t) {
			return nil, false
		}
	}
	if v := sn.frozen[o]; v != nil {
		lo, hi := v.searchRange(p)
		return v.slice(lo, hi)
	}
	idx := sn.indexes[o]
	lo, hi := searchRange(idx, perm, p)
	return idx[lo:hi:hi], true
}

// Count returns the number of triples matching the pattern, exactly as
// Store.Count would, without taking any lock. Covered patterns on a
// frozen index count through the fence-key directory — at most two
// boundary blocks decode, never the range.
func (sn *Snapshot) Count(p Pattern) int {
	o := pickOrder(sn.orders, p)
	perm := o.perm()
	n := 0
	if v := sn.frozen[o]; v != nil {
		lo, hi := v.searchRange(p)
		if coversBound(perm, p) {
			n = hi - lo
		} else {
			v.iterate(lo, hi, func(t Triple) bool {
				if p.Matches(t) {
					n++
				}
				return true
			})
		}
	} else {
		idx := sn.indexes[o]
		lo, hi := searchRange(idx, perm, p)
		if coversBound(perm, p) {
			n = hi - lo
		} else {
			for _, t := range idx[lo:hi] {
				if p.Matches(t) {
					n++
				}
			}
		}
	}
	for t := range sn.deleted {
		if p.Matches(t) {
			n--
		}
	}
	for _, t := range sn.delta {
		if p.Matches(t) {
			n++
		}
	}
	return n
}

// MultiRange locates the sorted subranges of a family of patterns that
// differ only in one constant — the shape a merged-member UCQ scan has:
// g is the generalized pattern (the varying position left unbound), vpos
// is the varying position (0=S, 1=P, 2=O) and consts are the constants,
// in ascending order (equal repeats allowed). One pass narrows the
// covering range of g left to right, so the whole family costs two
// binary searches on the full index plus two per constant on the
// remaining (ever-shrinking) range, instead of a full index lookup per
// member. On a frozen index the narrowing binary searches probe through
// the fence directory with point decodes, and each member's subrange
// materializes through the generation cursor exactly as Range would.
//
// ok=false means the index layout does not support a shared pass for
// this shape (the varying position is not the next sort position after
// g's bound prefix, a residual filter would be needed, the chosen index
// differs from the one per-pattern scans would use, consts are not
// sorted, or a member range exceeds the frozen materialization cap);
// callers then fall back to per-pattern scans. ranges[i] is the sorted
// range for g with vpos bound to consts[i] — exactly the subslice Range
// would return for that pattern, so it must be replayed through
// ScanRange to apply tombstones and delta.
//
// dst, when non-nil, is reused as the backing for the returned ranges
// slice (the per-range subslice headers are copied out by value, so a
// caller looping over families may pass the previous result).
func (sn *Snapshot) MultiRange(g Pattern, vpos int, consts []dict.ID, dst [][]Triple) (ranges [][]Triple, ok bool) {
	if vpos < 0 || vpos > 2 || len(consts) == 0 {
		return nil, false
	}
	o := pickOrder(sn.orders, g)
	perm := o.perm()
	if !coversBound(perm, g) {
		return nil, false
	}
	prefix := boundCount(g)
	if prefix >= 3 || perm[prefix] != vpos {
		return nil, false
	}
	// The member patterns must scan the same index in the same order,
	// or the shared subranges would enumerate triples in a different
	// sequence than per-member scans. A fully bound member pattern is
	// exempt: its range holds at most one triple.
	if prefix+1 < 3 {
		m := withPos(g, vpos, consts[0])
		if mo := pickOrder(sn.orders, m); mo.perm() != perm {
			return nil, false
		}
	}
	if cap(dst) >= len(consts) {
		ranges = dst[:len(consts)]
	} else {
		ranges = make([][]Triple, len(consts))
	}
	if v := sn.frozen[o]; v != nil {
		lo, hi := v.searchRange(g)
		cursor := lo
		for i, c := range consts {
			if i > 0 {
				if c < consts[i-1] {
					return nil, false
				}
				if c == consts[i-1] {
					ranges[i] = ranges[i-1]
					continue
				}
			}
			l := v.searchPos(cursor, hi, func(k [3]dict.ID) bool { return k[vpos] >= c })
			h := v.searchPos(l, hi, func(k [3]dict.ID) bool { return k[vpos] > c })
			sub, subOK := v.slice(l, h)
			if !subOK {
				return nil, false
			}
			ranges[i] = sub
			cursor = h
		}
		return ranges, true
	}
	idx := sn.indexes[o]
	lo, hi := searchRange(idx, perm, g)
	cursor := lo
	for i, c := range consts {
		if i > 0 {
			if c < consts[i-1] {
				return nil, false
			}
			if c == consts[i-1] {
				ranges[i] = ranges[i-1]
				continue
			}
		}
		sub := idx[cursor:hi]
		l := sort.Search(len(sub), func(j int) bool { return key(sub[j])[vpos] >= c })
		h := sort.Search(len(sub), func(j int) bool { return key(sub[j])[vpos] > c })
		ranges[i] = sub[l:h:h]
		cursor += h
	}
	return ranges, true
}

// boundCount returns the number of bound positions of the pattern.
func boundCount(p Pattern) int {
	n := 0
	if p.S != dict.None {
		n++
	}
	if p.P != dict.None {
		n++
	}
	if p.O != dict.None {
		n++
	}
	return n
}

// withPos returns p with position pos (0=S, 1=P, 2=O) set to id.
func withPos(p Pattern, pos int, id dict.ID) Pattern {
	switch pos {
	case 0:
		p.S = id
	case 1:
		p.P = id
	default:
		p.O = id
	}
	return p
}
