// Snapshot is the lock-free read path of the store: an immutable,
// version-stamped view captured once per query, over which arbitrarily
// deep scan nesting is safe (no lock is held while reading) and range
// lookups can hand out sorted subslices directly instead of driving a
// per-triple callback under a mutex.
//
// The paper's setting evaluates reformulations with hundreds to
// thousands of near-identical member CQs, each of which re-scans the
// same triple table; a relational backend amortizes that with shared
// scans and MVCC snapshots. Snapshot is this reproduction's equivalent:
// the engine pins one Snapshot at the top of an evaluation and every
// bind-join, statistics probe and shard worker reads through it.
package storage

import (
	"sort"

	"repro/internal/dict"
)

// Snapshot is an immutable view of a Store at one mutation version.
// The sorted indexes are shared zero-copy with the store (mutations
// always install fresh index slices, never write through old ones);
// the small delta and tombstone sets are copied at capture time because
// Add and Remove update them in place. All methods are safe for
// concurrent use by any number of goroutines without synchronization,
// and — unlike Store.Scan callbacks — may be nested freely and may run
// concurrently with store mutations.
type Snapshot struct {
	version uint64
	orders  []Order
	indexes [numOrders][]Triple
	delta   []Triple            // additions not yet compacted, in insertion order
	deleted map[Triple]struct{} // tombstoned sorted entries
	n       int
}

// Snapshot captures an immutable view of the store's current contents.
// The capture cost is one read-lock acquisition plus a copy of the
// (typically empty) delta and tombstone sets; on a frozen store it is a
// handful of pointer copies.
func (s *Store) Snapshot() *Snapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sn := &Snapshot{
		version: s.version.Load(),
		orders:  s.orders,
		indexes: s.indexes,
		n:       s.n + len(s.delta) - len(s.deleted),
	}
	if len(s.delta) > 0 {
		sn.delta = append([]Triple(nil), s.delta...)
	}
	if len(s.deleted) > 0 {
		sn.deleted = make(map[Triple]struct{}, len(s.deleted))
		for t := range s.deleted {
			sn.deleted[t] = struct{}{}
		}
	}
	return sn
}

// Version returns the store mutation version the snapshot was captured
// at. Two snapshots with equal versions have identical contents, which
// is what lets version-stamped artifacts (statistics memos, plan-cache
// entries) validated against a snapshot agree with validation against
// the live store.
func (sn *Snapshot) Version() uint64 { return sn.version }

// Len returns the number of distinct triples visible in the snapshot.
func (sn *Snapshot) Len() int { return sn.n }

// Orders returns the index orders the snapshot carries.
func (sn *Snapshot) Orders() []Order { return sn.orders }

// indexFor picks an index whose sort prefix covers the bound positions
// of the pattern (see Store.indexFor).
func (sn *Snapshot) indexFor(p Pattern) ([]Triple, [3]int) {
	return pickIndex(sn.orders, &sn.indexes, p)
}

// Contains reports whether the triple is visible in the snapshot.
func (sn *Snapshot) Contains(t Triple) bool {
	if _, dead := sn.deleted[t]; dead {
		return false
	}
	for _, d := range sn.delta {
		if d == t {
			return true
		}
	}
	p := Pattern{S: t.S, P: t.P, O: t.O}
	idx, perm := sn.indexFor(p)
	lo, hi := searchRange(idx, perm, p)
	return hi > lo
}

// Scan calls f for every triple matching the pattern, stopping early if
// f returns false, in exactly the order Store.Scan would produce: the
// sorted range first, then matching delta triples in insertion order.
// No lock is held; f may nest further snapshot reads and may run
// concurrently with store mutations.
func (sn *Snapshot) Scan(p Pattern, f func(Triple) bool) {
	idx, perm := sn.indexFor(p)
	lo, hi := searchRange(idx, perm, p)
	sn.ScanRange(idx[lo:hi], p, f)
}

// ScanRange replays a sorted subrange previously located by Range or
// MultiRange through the snapshot's residual filter, tombstones and
// delta — producing exactly the triple sequence Scan(p) would, given
// that sub is the sorted range Scan would have binary-searched.
func (sn *Snapshot) ScanRange(sub []Triple, p Pattern, f func(Triple) bool) {
	for _, t := range sub {
		if !p.Matches(t) { // residual filter; no-op for covering indexes
			continue
		}
		if len(sn.deleted) > 0 {
			if _, dead := sn.deleted[t]; dead {
				continue
			}
		}
		if !f(t) {
			return
		}
	}
	for _, t := range sn.delta {
		if p.Matches(t) {
			if !f(t) {
				return
			}
		}
	}
}

// Range returns the triples matching p as a zero-copy sorted subslice,
// when the subslice alone is provably the exact answer: the pattern's
// bound positions are a sort prefix of the chosen index (no residual
// filter), no tombstones exist, and no delta triple matches. ok=false
// means the caller must fall back to Scan; on a frozen store with the
// default index set, every pattern shape takes the ok path.
func (sn *Snapshot) Range(p Pattern) (ts []Triple, ok bool) {
	idx, perm := sn.indexFor(p)
	if !coversBound(perm, p) {
		return nil, false
	}
	if len(sn.deleted) > 0 {
		return nil, false
	}
	for _, t := range sn.delta {
		if p.Matches(t) {
			return nil, false
		}
	}
	lo, hi := searchRange(idx, perm, p)
	return idx[lo:hi:hi], true
}

// Count returns the number of triples matching the pattern, exactly as
// Store.Count would, without taking any lock.
func (sn *Snapshot) Count(p Pattern) int {
	idx, perm := sn.indexFor(p)
	lo, hi := searchRange(idx, perm, p)
	n := 0
	if coversBound(perm, p) {
		n = hi - lo
	} else {
		for _, t := range idx[lo:hi] {
			if p.Matches(t) {
				n++
			}
		}
	}
	for t := range sn.deleted {
		if p.Matches(t) {
			n--
		}
	}
	for _, t := range sn.delta {
		if p.Matches(t) {
			n++
		}
	}
	return n
}

// MultiRange locates the sorted subranges of a family of patterns that
// differ only in one constant — the shape a merged-member UCQ scan has:
// g is the generalized pattern (the varying position left unbound), vpos
// is the varying position (0=S, 1=P, 2=O) and consts are the constants,
// in ascending order (equal repeats allowed). One pass narrows the
// covering range of g left to right, so the whole family costs two
// binary searches on the full index plus two per constant on the
// remaining (ever-shrinking) range, instead of a full index lookup per
// member.
//
// ok=false means the index layout does not support a shared pass for
// this shape (the varying position is not the next sort position after
// g's bound prefix, a residual filter would be needed, the chosen index
// differs from the one per-pattern scans would use, or consts are not
// sorted); callers then fall back to per-pattern scans. ranges[i] is the
// sorted range for g with vpos bound to consts[i] — exactly the
// subslice Range would return for that pattern, so it must be replayed
// through ScanRange to apply tombstones and delta.
//
// dst, when non-nil, is reused as the backing for the returned ranges
// slice (the per-range subslice headers are copied out by value, so a
// caller looping over families may pass the previous result).
func (sn *Snapshot) MultiRange(g Pattern, vpos int, consts []dict.ID, dst [][]Triple) (ranges [][]Triple, ok bool) {
	if vpos < 0 || vpos > 2 || len(consts) == 0 {
		return nil, false
	}
	idx, perm := sn.indexFor(g)
	if !coversBound(perm, g) {
		return nil, false
	}
	prefix := boundCount(g)
	if prefix >= 3 || perm[prefix] != vpos {
		return nil, false
	}
	// The member patterns must scan the same index in the same order,
	// or the shared subranges would enumerate triples in a different
	// sequence than per-member scans. A fully bound member pattern is
	// exempt: its range holds at most one triple.
	if prefix+1 < 3 {
		m := withPos(g, vpos, consts[0])
		if _, mperm := sn.indexFor(m); mperm != perm {
			return nil, false
		}
	}
	lo, hi := searchRange(idx, perm, g)
	if cap(dst) >= len(consts) {
		ranges = dst[:len(consts)]
	} else {
		ranges = make([][]Triple, len(consts))
	}
	cursor := lo
	for i, c := range consts {
		if i > 0 {
			if c < consts[i-1] {
				return nil, false
			}
			if c == consts[i-1] {
				ranges[i] = ranges[i-1]
				continue
			}
		}
		sub := idx[cursor:hi]
		l := sort.Search(len(sub), func(j int) bool { return key(sub[j])[vpos] >= c })
		h := sort.Search(len(sub), func(j int) bool { return key(sub[j])[vpos] > c })
		ranges[i] = sub[l:h:h]
		cursor += h
	}
	return ranges, true
}

// boundCount returns the number of bound positions of the pattern.
func boundCount(p Pattern) int {
	n := 0
	if p.S != dict.None {
		n++
	}
	if p.P != dict.None {
		n++
	}
	if p.O != dict.None {
		n++
	}
	return n
}

// withPos returns p with position pos (0=S, 1=P, 2=O) set to id.
func withPos(p Pattern, pos int, id dict.ID) Pattern {
	switch pos {
	case 0:
		p.S = id
	case 1:
		p.P = id
	default:
		p.O = id
	}
	return p
}
