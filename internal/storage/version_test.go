package storage

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/dict"
)

// Every successful mutation must advance the version; no-op mutations must
// leave it alone; and the counter must never move backwards.
func TestVersionMonotonic(t *testing.T) {
	st := buildStore([]Triple{{S: 1, P: 2, O: 3}})
	last := st.Version()

	bump := func(name string, changed bool, f func() bool) {
		t.Helper()
		got := f()
		v := st.Version()
		if got != changed {
			t.Fatalf("%s reported %v, want %v", name, got, changed)
		}
		if changed && v <= last {
			t.Fatalf("%s: version %d did not advance past %d", name, v, last)
		}
		if !changed && v != last {
			t.Fatalf("%s: no-op moved version %d -> %d", name, last, v)
		}
		last = v
	}

	bump("Add(new)", true, func() bool { return st.Add(Triple{S: 4, P: 5, O: 6}) })
	bump("Add(dup delta)", false, func() bool { return st.Add(Triple{S: 4, P: 5, O: 6}) })
	bump("Add(dup base)", false, func() bool { return st.Add(Triple{S: 1, P: 2, O: 3}) })
	bump("Remove(delta)", true, func() bool { return st.Remove(Triple{S: 4, P: 5, O: 6}) })
	bump("Remove(absent)", false, func() bool { return st.Remove(Triple{S: 4, P: 5, O: 6}) })
	bump("Remove(base)", true, func() bool { return st.Remove(Triple{S: 1, P: 2, O: 3}) })
	bump("Add(resurrect)", true, func() bool { return st.Add(Triple{S: 1, P: 2, O: 3}) })

	// Compact with pending state must advance; an idle Compact must not.
	st.Add(Triple{S: 7, P: 8, O: 9})
	last = st.Version()
	st.Compact()
	if v := st.Version(); v <= last {
		t.Fatalf("Compact with pending delta did not advance version (%d -> %d)", last, v)
	}
	last = st.Version()
	st.Compact()
	if v := st.Version(); v != last {
		t.Fatalf("idle Compact moved version %d -> %d", last, v)
	}
	st.Add(Triple{S: 10, P: 11, O: 12})
	last = st.Version()
	st.Freeze()
	if v := st.Version(); v <= last {
		t.Fatalf("Freeze with pending delta did not advance version (%d -> %d)", last, v)
	}
}

// Add after Freeze: the incremental path must keep working once the load
// phase ended, and scans must see the late additions.
func TestAddAfterFreeze(t *testing.T) {
	st := buildStore([]Triple{{S: 1, P: 2, O: 3}})
	st.Add(Triple{S: 4, P: 2, O: 5})
	st.Freeze()
	v := st.Version()
	if !st.Add(Triple{S: 6, P: 2, O: 7}) {
		t.Fatal("Add after Freeze rejected a new triple")
	}
	if st.Version() <= v {
		t.Fatal("Add after Freeze did not advance the version")
	}
	if got := st.Count(Pattern{P: 2}); got != 3 {
		t.Fatalf("Count after post-freeze Add = %d, want 3", got)
	}
	seen := 0
	st.Scan(Pattern{P: 2}, func(Triple) bool { seen++; return true })
	if seen != 3 {
		t.Fatalf("Scan after post-freeze Add saw %d triples, want 3", seen)
	}
}

// Remove must handle both physical homes of a triple: a delta entry is
// dropped immediately, a base (sorted-index) entry is tombstoned until the
// next compaction — and both must be invisible to reads either way.
func TestRemoveDeltaVersusBase(t *testing.T) {
	base := Triple{S: 1, P: 2, O: 3}
	st := buildStore([]Triple{base})
	delta := Triple{S: 4, P: 2, O: 5}
	st.Add(delta)

	if !st.Remove(delta) {
		t.Fatal("Remove(delta triple) failed")
	}
	if st.Contains(delta) || st.Count(Pattern{P: 2}) != 1 {
		t.Fatal("removed delta triple still visible")
	}

	if !st.Remove(base) {
		t.Fatal("Remove(base triple) failed")
	}
	if st.Contains(base) || st.Count(Pattern{P: 2}) != 0 {
		t.Fatal("removed base triple still visible")
	}
	st.Scan(Pattern{}, func(tr Triple) bool {
		t.Fatalf("Scan yielded removed triple %v", tr)
		return false
	})
	st.Compact()
	if st.Len() != 0 || st.Contains(base) {
		t.Fatal("compaction resurrected a removed base triple")
	}
}

// Scans, counts and version reads must be able to race a mutator; run
// under -race this is the store's concurrency contract. Values are
// checked only for sanity (counts are moving targets mid-mutation), plus
// the invariant that the version counter never decreases.
func TestScanRacingMutator(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	st := buildStore(randomTriples(rng, 300, 20))

	stop := make(chan struct{})
	mutatorDone := make(chan struct{})
	var wg sync.WaitGroup
	go func() { // mutator
		defer close(mutatorDone)
		mrng := rand.New(rand.NewSource(1))
		pool := randomTriples(mrng, 100, 20)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			tr := pool[mrng.Intn(len(pool))]
			switch i % 3 {
			case 0:
				st.Add(tr)
			case 1:
				st.Remove(tr)
			default:
				st.Compact()
			}
		}
	}()

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) { // readers
			defer wg.Done()
			rrng := rand.New(rand.NewSource(seed))
			lastV := uint64(0)
			for i := 0; i < 400; i++ {
				p := Pattern{P: dict.ID(rrng.Intn(8) + 1)}
				n := 0
				st.Scan(p, func(Triple) bool { n++; return true })
				if c := st.Count(p); c < 0 {
					t.Errorf("negative Count %d", c)
				}
				if v := st.Version(); v < lastV {
					t.Errorf("version went backwards: %d after %d", v, lastV)
				} else {
					lastV = v
				}
				st.Contains(Triple{S: 1, P: 1, O: 1})
				_ = st.Len()
			}
		}(int64(r))
	}
	wg.Wait()
	close(stop)
	<-mutatorDone
}
