package storage

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/dict"
)

// collectScan materializes a Scan into a slice, preserving order.
func collectScan(scan func(Pattern, func(Triple) bool), p Pattern) []Triple {
	var out []Triple
	scan(p, func(t Triple) bool {
		out = append(out, t)
		return true
	})
	return out
}

// mutate applies a deterministic mix of adds and removes so the store
// carries both a delta and tombstones.
func mutate(s *Store, rng *rand.Rand, ts []Triple) {
	for i := 0; i < len(ts)/4; i++ {
		s.Remove(ts[rng.Intn(len(ts))])
	}
	for i := 0; i < len(ts)/4; i++ {
		s.Add(Triple{
			S: dict.ID(rng.Intn(40) + 1),
			P: dict.ID(rng.Intn(8) + 1),
			O: dict.ID(rng.Intn(40) + 1),
		})
	}
}

func TestSnapshotMatchesStore(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ts := randomTriples(rng, 300, 40)
	for _, orders := range [][]Order{nil, AllOrders} {
		s := buildStore(ts, orders...)
		mutate(s, rng, ts)

		sn := s.Snapshot()
		if sn.Version() != s.Version() {
			t.Fatalf("snapshot version %d, store version %d", sn.Version(), s.Version())
		}
		if sn.Len() != s.Len() {
			t.Fatalf("snapshot len %d, store len %d", sn.Len(), s.Len())
		}
		for _, probe := range ts[:50] {
			for _, p := range allPatterns(probe) {
				want := collectScan(s.Scan, p)
				got := collectScan(sn.Scan, p)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("orders %v pattern %+v: snapshot scan %v, store scan %v", orders, p, got, want)
				}
				if sn.Count(p) != s.Count(p) {
					t.Fatalf("pattern %+v: snapshot count %d, store count %d", p, sn.Count(p), s.Count(p))
				}
			}
			if sn.Contains(probe) != s.Contains(probe) {
				t.Fatalf("contains(%v) disagrees", probe)
			}
		}
	}
}

func TestSnapshotIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	ts := randomTriples(rng, 200, 30)
	s := buildStore(ts)
	sn := s.Snapshot()
	version := sn.Version()

	// Scans and counts captured before the mutations, over a pattern
	// broad enough to see every change.
	all := Pattern{}
	wantScan := collectScan(sn.Scan, all)
	wantLen := sn.Len()

	// Mutate heavily after the capture: adds, removes, and a compaction
	// (which rebuilds every index slice the snapshot shares).
	mutate(s, rng, ts)
	s.Compact()
	mutate(s, rng, ts)

	if sn.Version() != version {
		t.Fatalf("snapshot version moved: %d -> %d", version, sn.Version())
	}
	if got := collectScan(sn.Scan, all); !reflect.DeepEqual(got, wantScan) {
		t.Fatalf("snapshot scan changed after store mutation")
	}
	if sn.Len() != wantLen {
		t.Fatalf("snapshot len changed after store mutation: %d -> %d", wantLen, sn.Len())
	}
	if s.Version() == version {
		t.Fatalf("store version did not move despite mutations")
	}

	// A fresh snapshot sees the new state.
	sn2 := s.Snapshot()
	if sn2.Version() != s.Version() {
		t.Fatalf("fresh snapshot version %d, store version %d", sn2.Version(), s.Version())
	}
	if got, want := collectScan(sn2.Scan, all), collectScan(s.Scan, all); !reflect.DeepEqual(got, want) {
		t.Fatalf("fresh snapshot disagrees with store")
	}
}

func TestSnapshotRange(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ts := randomTriples(rng, 300, 40)

	// Frozen store: every pattern shape must take the exact-range path
	// under the default complete index set.
	s := buildStore(ts)
	sn := s.Snapshot()
	for _, probe := range ts[:50] {
		for _, p := range allPatterns(probe) {
			got, ok := sn.Range(p)
			if !ok {
				t.Fatalf("frozen store: Range(%+v) not exact", p)
			}
			want := collectScan(sn.Scan, p)
			if len(got) != len(want) {
				t.Fatalf("Range(%+v): %d triples, Scan has %d", p, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("Range(%+v)[%d] = %v, Scan gives %v", p, i, got[i], want[i])
				}
			}
			// ScanRange over the exact range replays the same sequence.
			var replay []Triple
			sn.ScanRange(got, p, func(tr Triple) bool { replay = append(replay, tr); return true })
			if !reflect.DeepEqual(replay, want) {
				t.Fatalf("ScanRange(%+v) diverges from Scan", p)
			}
		}
	}

	// With a delta, Range must refuse patterns the delta matches.
	added := Triple{S: 1, P: 1, O: 1}
	s.Add(added)
	sn = s.Snapshot()
	if _, ok := sn.Range(Pattern{}); ok {
		t.Fatalf("Range claimed exactness over a live delta")
	}
	// With tombstones, Range must refuse everything.
	s.Compact()
	s.Remove(ts[0])
	sn = s.Snapshot()
	if _, ok := sn.Range(Pattern{S: ts[1].S}); ok {
		t.Fatalf("Range claimed exactness over tombstones")
	}
}

func TestSnapshotMultiRange(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	ts := randomTriples(rng, 400, 30)
	for _, frozen := range []bool{true, false} {
		s := buildStore(ts)
		if !frozen {
			mutate(s, rng, ts)
		}
		sn := s.Snapshot()

		// Family: fixed property, varying object — the reformulated-UCQ
		// shape (members differ in one class/property constant).
		prop := dict.ID(3)
		objSet := map[dict.ID]struct{}{}
		for _, tr := range ts {
			if tr.P == prop {
				objSet[tr.O] = struct{}{}
			}
		}
		var consts []dict.ID
		for o := range objSet {
			consts = append(consts, o)
		}
		consts = append(consts, 9999) // an absent constant: empty range
		sort.Slice(consts, func(i, j int) bool { return consts[i] < consts[j] })
		if len(consts) < 3 {
			t.Fatalf("workload too small: %d distinct objects", len(consts))
		}

		g := Pattern{P: prop}
		ranges, ok := sn.MultiRange(g, 2, consts, nil)
		if !ok {
			t.Fatalf("MultiRange refused the canonical POS family")
		}
		// Reusing the previous result as dst must yield the same ranges.
		orig := append([][]Triple(nil), ranges...)
		reused, ok := sn.MultiRange(g, 2, consts, ranges)
		if !ok || !reflect.DeepEqual(reused, orig) {
			t.Fatalf("MultiRange with reused dst diverges")
		}
		for i, c := range consts {
			member := Pattern{P: prop, O: c}
			want := collectScan(sn.Scan, member)
			var got []Triple
			sn.ScanRange(ranges[i], member, func(tr Triple) bool { got = append(got, tr); return true })
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("frozen=%v const %d: merged range gives %v, Scan gives %v", frozen, c, got, want)
			}
		}

		// Unsorted constants are refused.
		if len(consts) >= 2 {
			if _, ok := sn.MultiRange(g, 2, []dict.ID{consts[1], consts[0]}, nil); ok && consts[0] != consts[1] {
				t.Fatalf("MultiRange accepted unsorted constants")
			}
		}
		// A varying position that is not the next sort position is refused:
		// under POS, with P bound the next position is O, not S.
		if _, ok := sn.MultiRange(g, 0, consts, nil); ok {
			t.Fatalf("MultiRange accepted a non-prefix varying position")
		}
	}
}

func TestSnapshotMultiRangeDuplicateConsts(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	ts := randomTriples(rng, 200, 20)
	sn := buildStore(ts).Snapshot()
	c := ts[0].O
	ranges, ok := sn.MultiRange(Pattern{P: ts[0].P}, 2, []dict.ID{c, c}, nil)
	if !ok {
		t.Fatalf("MultiRange refused duplicate constants")
	}
	if len(ranges) != 2 || len(ranges[0]) != len(ranges[1]) {
		t.Fatalf("duplicate constants got different ranges")
	}
}
