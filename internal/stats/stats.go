// Package stats collects the data statistics the cost model of the paper's
// Section 4.1 relies on, and derives cardinality estimates for triple
// patterns and conjunctive queries.
//
// Per-pattern counts (|q_{t}| in the paper's notation) are *exact*: the
// storage layer answers any bound-prefix pattern count with two binary
// searches, so looking the number up is cheaper than maintaining an
// approximate histogram would be. Join-result cardinalities are estimated
// with the classic value-set-containment assumption, using per-property
// distinct-subject and distinct-object counts gathered in a single pass at
// load time.
package stats

import (
	"sync"

	"repro/internal/bgp"
	"repro/internal/dict"
	"repro/internal/schema"
	"repro/internal/storage"
)

// PropStat holds the per-property statistics gathered at collection time.
type PropStat struct {
	Count     int // triples with this property
	DistinctS int // distinct subjects among them
	DistinctO int // distinct objects among them
}

// Stats provides cardinality information for one store.
//
//lint:cache statsmemo
type Stats struct {
	store *storage.Store
	vocab schema.Vocab
	total int
	props map[dict.ID]PropStat

	mu          sync.Mutex
	memo        map[storage.Pattern]int
	memoVersion uint64 // store.Version() the memo contents were computed at
}

// Collect scans the store once and returns its statistics. vocab supplies
// the rdf:type ID used to recognize class-membership patterns.
func Collect(store *storage.Store, vocab schema.Vocab) *Stats {
	st := &Stats{
		store: store,
		vocab: vocab,
		total: store.Len(),
		props: make(map[dict.ID]PropStat),
		memo:  make(map[storage.Pattern]int),
	}
	// One map-based pass over the store; the number of distinct properties
	// in RDF datasets is small, so per-property sets stay cheap.
	byProp := make(map[dict.ID]*PropStat)
	subjSets := make(map[dict.ID]map[dict.ID]struct{})
	objSets := make(map[dict.ID]map[dict.ID]struct{})
	store.Each(func(t storage.Triple) bool {
		ps := byProp[t.P]
		if ps == nil {
			ps = &PropStat{}
			byProp[t.P] = ps
			subjSets[t.P] = make(map[dict.ID]struct{})
			objSets[t.P] = make(map[dict.ID]struct{})
		}
		ps.Count++
		subjSets[t.P][t.S] = struct{}{}
		objSets[t.P][t.O] = struct{}{}
		return true
	})
	for p, ps := range byProp {
		ps.DistinctS = len(subjSets[p])
		ps.DistinctO = len(objSets[p])
		st.props[p] = *ps
	}
	// Read the version after the pass: Each() above may have compacted
	// the store (bumping it), and the memo starts empty either way.
	//lint:ignore lockguard construction: st is not shared until Collect returns
	st.memoVersion = store.Version()
	return st
}

// Total returns the number of triples in the store at collection time.
func (st *Stats) Total() int { return st.total }

// Property returns the per-property statistics (zero value if unseen).
//
//lint:ignore versionstamp props is a collection-time estimate frozen at Collect; only the exact-count pattern memo is version-validated
func (st *Stats) Property(p dict.ID) PropStat { return st.props[p] }

// EachProperty calls f for every property with its statistics, in
// unspecified order, stopping early if f returns false.
func (st *Stats) EachProperty(f func(dict.ID, PropStat) bool) {
	for p, ps := range st.props {
		if !f(p, ps) {
			return
		}
	}
}

// maxPatternMemo bounds the pattern-count memo. Stats live for the whole
// process (one instance per store), while the distinct patterns a
// long-running workload asks about are unbounded — every fresh constant
// in a query coins a fresh pattern — so an uncapped memo is a slow leak.
// When the cap is hit the memo is reset wholesale: counts are cheap to
// recompute (two binary searches in storage), so a dumb reset beats the
// bookkeeping of an eviction policy here.
const maxPatternMemo = 1 << 16

// CountSource is the read surface the statistics need from the storage
// layer: exact pattern counts stamped with a mutation version. Both the
// live *storage.Store and a pinned *storage.Snapshot satisfy it, so the
// engine can price plans against the same immutable view it evaluates —
// a probe through a snapshot takes no lock and cannot deadlock inside a
// scan callback.
type CountSource interface {
	Count(storage.Pattern) int
	Version() uint64
}

// PatternCount returns the exact number of triples matching the pattern
// in the live store, memoized. See PatternCountOn.
func (st *Stats) PatternCount(p storage.Pattern) int {
	return st.PatternCountOn(st.store, p)
}

// PatternCountOn returns the exact number of triples matching the
// pattern in src (the live store or a pinned snapshot), memoized. Safe
// for concurrent use. The memo is bounded by maxPatternMemo and reset
// on overflow, so arbitrarily many distinct patterns cannot grow it
// without limit.
//
// The memo is stamped with the source's mutation version: a count is
// served from the memo only when the memo stamp equals src.Version(),
// and a version change discards every cached count, so the cost model
// never prices covers against statistics from a different store state.
// A count is cached only if src.Version() is unchanged on both sides of
// the Count call — always true for a snapshot, and for the live store
// it means a concurrent mutation mid-count conservatively leaves the
// memo alone.
func (st *Stats) PatternCountOn(src CountSource, p storage.Pattern) int {
	v := src.Version()
	st.mu.Lock()
	if st.memoVersion != v {
		st.memo = make(map[storage.Pattern]int, 1024)
		st.memoVersion = v
	}
	n, ok := st.memo[p]
	st.mu.Unlock()
	if ok {
		return n
	}
	n = src.Count(p)
	st.mu.Lock()
	if st.memoVersion == v && src.Version() == v {
		if len(st.memo) >= maxPatternMemo {
			st.memo = make(map[storage.Pattern]int, 1024)
		}
		st.memo[p] = n
	}
	st.mu.Unlock()
	return n
}

// AtomCard returns the (estimated) number of triples matching the atom
// in the live store. See AtomCardOn.
func (st *Stats) AtomCard(a bgp.Atom) float64 {
	return st.AtomCardOn(st.store, a)
}

// AtomCardOn returns the (estimated) number of triples matching the atom
// in src (the live store or a pinned snapshot). Constant positions are
// looked up exactly; an atom with the same variable in two positions gets
// the matching-pair count discounted by the corresponding distinct count.
func (st *Stats) AtomCardOn(src CountSource, a bgp.Atom) float64 {
	pat := storage.Pattern{}
	if !a.S.Var {
		pat.S = a.S.Const()
	}
	if !a.P.Var {
		pat.P = a.P.Const()
	}
	if !a.O.Var {
		pat.O = a.O.Const()
	}
	card := float64(st.PatternCountOn(src, pat))
	// Repeated-variable discount: positions forced equal keep roughly a
	// 1/distinct fraction of the unconstrained matches. Every extra
	// occurrence of one variable adds an equality, whichever pair of
	// positions repeats (S=O, S=P, P=O — or all three at once).
	occ := make(map[uint32]int, 3)
	for _, t := range a.Positions() {
		if t.Var {
			occ[t.ID]++
		}
	}
	for v, n := range occ {
		if n < 2 {
			continue
		}
		d := st.distinctForOn(src, a, v)
		if d <= 1 {
			continue
		}
		for i := 1; i < n; i++ {
			card /= d
		}
	}
	return card
}

// DistinctForVar estimates the number of distinct values variable v takes
// in matches of atom a; planners use it to discount bound variables.
func (st *Stats) DistinctForVar(a bgp.Atom, v uint32) float64 {
	return st.distinctForOn(st.store, a, v)
}

// DistinctForVarOn is DistinctForVar reading pattern counts through src.
func (st *Stats) DistinctForVarOn(src CountSource, a bgp.Atom, v uint32) float64 {
	return st.distinctForOn(src, a, v)
}

// distinctFor estimates the number of distinct values variable v takes in
// matches of atom a.
func (st *Stats) distinctFor(a bgp.Atom, v uint32) float64 {
	return st.distinctForOn(st.store, a, v)
}

// distinctForOn estimates the number of distinct values variable v takes
// in matches of atom a, with exact counts read through src.
func (st *Stats) distinctForOn(src CountSource, a bgp.Atom, v uint32) float64 {
	card := st.atomCardIgnoringRepeatsOn(src, a)
	// Property-position variable: few distinct properties overall.
	if a.P.Var && a.P.ID == v {
		if n := len(st.props); n > 0 {
			return minf(float64(n), card)
		}
		return maxf(card, 1)
	}
	if !a.P.Var {
		p := a.P.Const()
		//lint:ignore versionstamp props is a collection-time estimate frozen at Collect; distinct-value heuristics tolerate staleness, exact counts go through the version-checked memo
		ps := st.props[p]
		if a.S.Var && a.S.ID == v {
			if !a.O.Var {
				// (?, p, o): subjects are distinct per (s,p,o) triple.
				return maxf(card, 1)
			}
			return clampDistinct(float64(ps.DistinctS), card)
		}
		if a.O.Var && a.O.ID == v {
			if !a.S.Var {
				return maxf(card, 1)
			}
			return clampDistinct(float64(ps.DistinctO), card)
		}
	}
	// Variable property with a subject/object variable: fall back to the
	// atom cardinality (each row may carry a fresh value).
	return maxf(card, 1)
}

func (st *Stats) atomCardIgnoringRepeatsOn(src CountSource, a bgp.Atom) float64 {
	pat := storage.Pattern{}
	if !a.S.Var {
		pat.S = a.S.Const()
	}
	if !a.P.Var {
		pat.P = a.P.Const()
	}
	if !a.O.Var {
		pat.O = a.O.Const()
	}
	return float64(st.PatternCountOn(src, pat))
}

func clampDistinct(d, card float64) float64 {
	if d < 1 {
		d = 1
	}
	return minf(d, maxf(card, 1))
}

// CQCard estimates the result cardinality of a conjunctive query using
// per-atom counts and value-set containment for join selectivities: each
// equijoin on a variable v between a new atom and the partial result
// divides the cross-product by the larger distinct-count of v.
func (st *Stats) CQCard(q bgp.CQ) float64 {
	slots := make([][]bgp.Atom, len(q.Atoms))
	for i, a := range q.Atoms {
		slots[i] = []bgp.Atom{a}
	}
	return st.JoinOfUnionsCard(slots)
}

// JoinOfUnionsCard estimates the result cardinality of a join of unions of
// atoms: slot i stands for the relation ∪_{a ∈ slots[i]} matches(a), and
// the slots are joined on the variables they share. This is the shape a
// reformulated cover fragment has (every expansion alternative of an atom
// keeps the atom's original variables), and it also prices a whole UCQ
// reformulation without materializing its (possibly hundreds of thousands
// of) member CQs: Σ_CQ |CQ| ≈ |join of the slot unions|.
func (st *Stats) JoinOfUnionsCard(slots [][]bgp.Atom) float64 {
	if len(slots) == 0 {
		return 0
	}
	seen := make(map[uint32]float64) // var -> smallest distinct seen so far
	card := 1.0
	var buf []uint32
	for _, alts := range slots {
		var slotCard float64
		distinct := make(map[uint32]float64)
		for _, a := range alts {
			slotCard += st.AtomCard(a)
			buf = a.Vars(buf[:0])
			handled := make(map[uint32]bool, len(buf))
			for _, v := range buf {
				if handled[v] {
					continue
				}
				handled[v] = true
				distinct[v] += st.distinctFor(a, v)
			}
		}
		card *= slotCard
		for v, d := range distinct {
			d = clampDistinct(d, slotCard)
			if prev, ok := seen[v]; ok {
				if m := maxf(prev, d); m > 1 {
					card /= m
				}
				seen[v] = minf(prev, d)
			} else {
				seen[v] = d
			}
		}
		if card <= 0 {
			return 0
		}
	}
	return card
}

// CQScanTuples returns Σ_{t ∈ q} |q_{t}|: the total number of tuples the
// engine retrieves to evaluate the query's atoms — the quantity the
// paper's scan- and join-cost formulas are linear in.
func (st *Stats) CQScanTuples(q bgp.CQ) float64 {
	var sum float64
	for _, a := range q.Atoms {
		sum += st.AtomCard(a)
	}
	return sum
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
