package stats_test

import (
	"sync"
	"testing"

	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/testkit"
)

// PatternCount memoizes under a mutex and is documented safe for
// concurrent use: hammer one Stats from many goroutines over an
// overlapping pattern set and check every answer matches a serial
// recomputation. Run with -race.
func TestPatternCountConcurrent(t *testing.T) {
	e := testkit.Random(1, 200)
	store := e.RawStore()
	st := stats.Collect(store, e.Vocab)

	triples := store.Triples()
	patterns := make([]storage.Pattern, 0, 64)
	for i := 0; i < len(triples) && len(patterns) < 64; i += 7 {
		tr := triples[i]
		patterns = append(patterns,
			storage.Pattern{P: tr.P},
			storage.Pattern{S: tr.S},
			storage.Pattern{P: tr.P, O: tr.O},
		)
	}

	want := make([]int, len(patterns))
	for i, p := range patterns {
		want[i] = store.Count(p)
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				for i, p := range patterns {
					if got := st.PatternCount(p); got != want[i] {
						t.Errorf("worker %d: PatternCount(%v) = %d, want %d", w, p, got, want[i])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
