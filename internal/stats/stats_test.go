package stats_test

import (
	"math/rand"
	"testing"

	"repro/internal/bgp"
	"repro/internal/dict"
	"repro/internal/naive"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/testkit"
)

func collect(e *testkit.Example) (*storage.Store, *stats.Stats) {
	st := e.RawStore()
	return st, stats.Collect(st, e.Vocab)
}

func TestPropertyStats(t *testing.T) {
	e := testkit.Paper()
	_, s := collect(e)
	writtenBy := e.ID("writtenBy")
	ps := s.Property(writtenBy)
	if ps.Count != 1 || ps.DistinctS != 1 || ps.DistinctO != 1 {
		t.Errorf("writtenBy stats = %+v", ps)
	}
	if s.Property(dict.ID(9999)).Count != 0 {
		t.Error("unknown property should have zero stats")
	}
	if s.Total() < len(e.Data) {
		t.Errorf("Total = %d, want >= %d", s.Total(), len(e.Data))
	}
}

func TestPatternCountExact(t *testing.T) {
	rngSeed := int64(3)
	e := testkit.Random(rngSeed, 80)
	st, s := collect(e)
	// Exhaustive check against direct store counts over random patterns.
	rng := rand.New(rand.NewSource(99))
	triples := st.Triples()
	for i := 0; i < 50; i++ {
		tr := triples[rng.Intn(len(triples))]
		pats := []storage.Pattern{
			{},
			{P: tr.P},
			{S: tr.S},
			{S: tr.S, P: tr.P},
			{P: tr.P, O: tr.O},
			{S: tr.S, P: tr.P, O: tr.O},
		}
		for _, p := range pats {
			if got, want := s.PatternCount(p), st.Count(p); got != want {
				t.Fatalf("PatternCount(%+v) = %d, want %d", p, got, want)
			}
			// Memoized second call must agree.
			if got2 := s.PatternCount(p); got2 != st.Count(p) {
				t.Fatalf("memoized PatternCount changed: %d", got2)
			}
		}
	}
}

// AtomCard with all-constant or single-variable atoms is exact.
func TestAtomCardExactCases(t *testing.T) {
	e := testkit.Paper()
	st, s := collect(e)
	writtenBy := e.ID("writtenBy")
	atom := bgp.Atom{S: bgp.V(0), P: bgp.C(writtenBy), O: bgp.V(1)}
	if got := s.AtomCard(atom); got != float64(st.Count(storage.Pattern{P: writtenBy})) {
		t.Errorf("AtomCard = %v", got)
	}
	all := bgp.Atom{S: bgp.V(0), P: bgp.V(1), O: bgp.V(2)}
	if got := s.AtomCard(all); got != float64(st.Len()) {
		t.Errorf("AtomCard(???) = %v, want %d", got, st.Len())
	}
}

// The CQ cardinality estimate must be within a reasonable factor of the
// true result size on single-join queries over random data — it is an
// estimate, so only order-of-magnitude sanity is asserted.
func TestCQCardSanity(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		e := testkit.Random(seed, 120)
		st, s := collect(e)
		rng := rand.New(rand.NewSource(seed + 42))
		for i := 0; i < 5; i++ {
			q := testkit.RandomQuery(e, rng)
			truth := float64(len(naive.EvalCQ(st, q)))
			est := s.CQCard(q)
			if est < 0 {
				t.Fatalf("negative estimate for %s", q)
			}
			// Estimates must not be absurd: within 100x when the truth
			// is nonzero (the projection-free estimate can exceed the
			// deduplicated answer count).
			if truth > 0 && (est > truth*100+100) {
				t.Errorf("seed %d: estimate %v vs truth %v for %s", seed, est, truth, q)
			}
		}
	}
}

func TestCQScanTuples(t *testing.T) {
	e := testkit.Paper()
	_, s := collect(e)
	q := bgp.CQ{Atoms: []bgp.Atom{
		{S: bgp.V(0), P: bgp.C(e.ID("writtenBy")), O: bgp.V(1)},
		{S: bgp.V(0), P: bgp.C(e.ID("hasTitle")), O: bgp.V(2)},
	}}
	want := s.AtomCard(q.Atoms[0]) + s.AtomCard(q.Atoms[1])
	if got := s.CQScanTuples(q); got != want {
		t.Errorf("CQScanTuples = %v, want %v", got, want)
	}
}

// JoinOfUnionsCard with singleton slots must equal CQCard.
func TestJoinOfUnionsConsistentWithCQCard(t *testing.T) {
	e := testkit.Random(5, 100)
	_, s := collect(e)
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 10; i++ {
		q := testkit.RandomQuery(e, rng)
		slots := make([][]bgp.Atom, len(q.Atoms))
		for j, a := range q.Atoms {
			slots[j] = []bgp.Atom{a}
		}
		if got, want := s.JoinOfUnionsCard(slots), s.CQCard(q); got != want {
			t.Errorf("JoinOfUnionsCard = %v, CQCard = %v for %s", got, want, q)
		}
	}
}

// A union slot's cardinality must dominate each member's.
func TestJoinOfUnionsMonotone(t *testing.T) {
	e := testkit.Paper()
	_, s := collect(e)
	a1 := bgp.Atom{S: bgp.V(0), P: bgp.C(e.ID("writtenBy")), O: bgp.V(1)}
	a2 := bgp.Atom{S: bgp.V(0), P: bgp.C(e.ID("hasTitle")), O: bgp.V(1)}
	single := s.JoinOfUnionsCard([][]bgp.Atom{{a1}})
	union := s.JoinOfUnionsCard([][]bgp.Atom{{a1, a2}})
	if union < single {
		t.Errorf("union slot card %v < member card %v", union, single)
	}
}

func TestDistinctForVar(t *testing.T) {
	e := testkit.Paper()
	_, s := collect(e)
	writtenBy := e.ID("writtenBy")
	atom := bgp.Atom{S: bgp.V(0), P: bgp.C(writtenBy), O: bgp.V(1)}
	if d := s.DistinctForVar(atom, 0); d != 1 {
		t.Errorf("distinct subjects of writtenBy = %v, want 1", d)
	}
	if d := s.DistinctForVar(atom, 1); d != 1 {
		t.Errorf("distinct objects of writtenBy = %v, want 1", d)
	}
}

func TestEachProperty(t *testing.T) {
	e := testkit.Paper()
	_, s := collect(e)
	n := 0
	s.EachProperty(func(dict.ID, stats.PropStat) bool { n++; return true })
	if n == 0 {
		t.Error("EachProperty visited nothing")
	}
	first := 0
	s.EachProperty(func(dict.ID, stats.PropStat) bool { first++; return false })
	if first != 1 {
		t.Error("EachProperty ignored early stop")
	}
}
