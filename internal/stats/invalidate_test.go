package stats

import (
	"testing"

	"repro/internal/bgp"
	"repro/internal/dict"
	"repro/internal/schema"
	"repro/internal/storage"
)

// Regression test for the stale-statistics bug: PatternCount memoized
// counts with no invalidation, so after a Store.Add or Remove the cost
// model kept pricing covers against pre-mutation counts. The memo is now
// stamped with the store version and must track every mutation.
func TestPatternCountInvalidatedByMutation(t *testing.T) {
	d := dict.New()
	vocab := schema.EncodeVocab(d)
	b := storage.NewBuilder()
	p := dict.ID(2_000_000)
	for i := 0; i < 5; i++ {
		b.Add(storage.Triple{S: dict.ID(i + 1), P: p, O: dict.ID(i + 100)})
	}
	store := b.Build()
	st := Collect(store, vocab)
	pat := storage.Pattern{P: p}

	if got := st.PatternCount(pat); got != 5 {
		t.Fatalf("initial PatternCount = %d, want 5", got)
	}
	// Prime the memo, then mutate. Pre-fix, the second lookup served the
	// memoized 5.
	extra := storage.Triple{S: 99, P: p, O: 999}
	if !store.Add(extra) {
		t.Fatal("Add failed")
	}
	if got := st.PatternCount(pat); got != 6 {
		t.Fatalf("PatternCount after Add = %d, want 6 (stale memo served)", got)
	}
	if !store.Remove(extra) {
		t.Fatal("Remove failed")
	}
	if got := st.PatternCount(pat); got != 5 {
		t.Fatalf("PatternCount after Remove = %d, want 5 (stale memo served)", got)
	}
	// A removal of a base (pre-build) triple goes through the tombstone
	// path; it must invalidate just the same.
	if !store.Remove(storage.Triple{S: 1, P: p, O: 100}) {
		t.Fatal("Remove of base triple failed")
	}
	if got := st.PatternCount(pat); got != 4 {
		t.Fatalf("PatternCount after base Remove = %d, want 4", got)
	}
}

// Mutate-then-reprice: the derived cardinality estimates (what the cost
// model actually consumes) must reflect mutations too, since they sit on
// top of PatternCount.
func TestAtomCardTracksMutation(t *testing.T) {
	d := dict.New()
	vocab := schema.EncodeVocab(d)
	b := storage.NewBuilder()
	p := dict.ID(2_000_000)
	b.Add(storage.Triple{S: 1, P: p, O: 10})
	b.Add(storage.Triple{S: 2, P: p, O: 20})
	store := b.Build()
	st := Collect(store, vocab)

	atom := bgp.Atom{S: bgp.V(0), P: bgp.C(p), O: bgp.V(1)}
	if got := st.AtomCard(atom); got != 2 {
		t.Fatalf("AtomCard = %v, want 2", got)
	}
	store.Add(storage.Triple{S: 3, P: p, O: 30})
	if got := st.AtomCard(atom); got != 3 {
		t.Fatalf("AtomCard after Add = %v, want 3 (stale memo served)", got)
	}
}

// The repeated-variable discount must apply to all three repeat shapes,
// not only S==O.
func TestAtomCardRepeatedVariableShapes(t *testing.T) {
	d := dict.New()
	vocab := schema.EncodeVocab(d)
	b := storage.NewBuilder()
	p := dict.ID(2_000_000)
	// 4 triples with property p: 2 distinct subjects, 4 distinct objects.
	b.Add(storage.Triple{S: 1, P: p, O: 10})
	b.Add(storage.Triple{S: 1, P: p, O: 11})
	b.Add(storage.Triple{S: 2, P: p, O: 12})
	b.Add(storage.Triple{S: 2, P: p, O: 13})
	// A few triples with other properties so the property position has
	// more than one distinct value.
	b.Add(storage.Triple{S: 5, P: 2_000_001, O: 14})
	b.Add(storage.Triple{S: 6, P: 2_000_002, O: 15})
	store := b.Build()
	st := Collect(store, vocab)

	total := float64(store.Len())

	// S == O, property bound: 4 matches discounted by distinct subjects (2).
	so := bgp.Atom{S: bgp.V(7), P: bgp.C(p), O: bgp.V(7)}
	if got, want := st.AtomCard(so), 4.0/2.0; got != want {
		t.Errorf("S==O AtomCard = %v, want %v", got, want)
	}

	// S == P, nothing bound: total matches discounted by the distinct
	// count the property position contributes (3 distinct properties).
	sp := bgp.Atom{S: bgp.V(7), P: bgp.V(7), O: bgp.V(8)}
	dSP := st.DistinctForVar(bgp.Atom{S: bgp.V(7), P: bgp.V(7), O: bgp.V(8)}, 7)
	if dSP <= 1 {
		t.Fatalf("precondition: distinct for the S==P variable is %v, want > 1", dSP)
	}
	if got, want := st.AtomCard(sp), total/dSP; got != want {
		t.Errorf("S==P AtomCard = %v, want %v (pre-fix: undiscounted %v)", got, want, total)
	}

	// P == O, nothing bound.
	po := bgp.Atom{S: bgp.V(8), P: bgp.V(7), O: bgp.V(7)}
	dPO := st.DistinctForVar(po, 7)
	if dPO <= 1 {
		t.Fatalf("precondition: distinct for the P==O variable is %v, want > 1", dPO)
	}
	if got, want := st.AtomCard(po), total/dPO; got != want {
		t.Errorf("P==O AtomCard = %v, want %v (pre-fix: undiscounted %v)", got, want, total)
	}

	// All three equal: two equalities, so two discount factors.
	all := bgp.Atom{S: bgp.V(7), P: bgp.V(7), O: bgp.V(7)}
	dAll := st.DistinctForVar(all, 7)
	if got, want := st.AtomCard(all), total/(dAll*dAll); dAll > 1 && got != want {
		t.Errorf("S==P==O AtomCard = %v, want %v", got, want)
	}
}
