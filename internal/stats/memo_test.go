package stats

import (
	"testing"

	"repro/internal/dict"
	"repro/internal/schema"
	"repro/internal/storage"
)

// The pattern-count memo must stay bounded under a workload that asks
// about arbitrarily many distinct patterns, and keep returning correct
// counts across the reset.
func TestPatternMemoBounded(t *testing.T) {
	d := dict.New()
	vocab := schema.EncodeVocab(d)
	b := storage.NewBuilder()
	b.Add(storage.Triple{S: 1_000_001, P: 1_000_002, O: 1_000_003})
	st := Collect(b.Build(), vocab)

	// Synthetic many-pattern workload: every probe coins a fresh pattern.
	const extra = 500
	for i := 0; i < maxPatternMemo+extra; i++ {
		st.PatternCount(storage.Pattern{S: dict.ID(i + 1)})
	}

	st.mu.Lock()
	size := len(st.memo)
	st.mu.Unlock()
	if size > maxPatternMemo {
		t.Fatalf("memo grew to %d entries, cap is %d", size, maxPatternMemo)
	}
	if size == 0 {
		t.Fatal("memo empty: reset must still admit fresh entries")
	}
	if size != extra {
		t.Errorf("memo holds %d entries after overflow, want %d (reset-on-overflow)", size, extra)
	}

	// Counts stay correct across the reset, both fresh and re-memoized.
	for i := 0; i < 2; i++ {
		if got := st.PatternCount(storage.Pattern{S: 1_000_001}); got != 1 {
			t.Fatalf("PatternCount after reset (probe %d) = %d, want 1", i, got)
		}
	}
}
