package lubm

import (
	"fmt"

	"repro/internal/sparql"
)

// QuerySpec is one benchmark query: a name and its SPARQL text.
type QuerySpec struct {
	Name string
	Text string
	// Comment describes the query's role in the experiment design.
	Comment string
}

const prolog = "PREFIX ub: <" + Namespace + ">\n"

// Constants every generated dataset contains (nUniv >= 1).
const (
	univ0 = "<http://www.University0.edu>"
	dept0 = "<http://www.Department0.University0.edu>"
	prof0 = "<http://www.Department0.University0.edu/FullProfessor0>"
	gcrs0 = "<http://www.Department0.University0.edu/GraduateCourse0>"
)

// Queries returns the 28 LUBM benchmark queries. Q01 and Q02 are the
// paper's two motivating-example queries (Section 3) verbatim; the rest
// are designed to the paper's stated criteria (Section 5.1): intuitive
// meaning, a wide spread of result cardinalities, a wide spread of
// reformulation sizes (1 … hundreds of thousands of union members,
// Table 4's range), and no redundant triples.
func Queries() []QuerySpec {
	return []QuerySpec{
		{
			Name: "Q01",
			Text: prolog + `SELECT ?x ?y WHERE {
				?x rdf:type ?y .
				?x ub:degreeFrom ` + univ0 + ` .
				?x ub:memberOf ` + dept0 + ` .
			}`,
			Comment: "motivating example 1: type variable grouped with two selective triples; |q_ref| in the thousands",
		},
		{
			Name: "Q02",
			Text: prolog + `SELECT ?x ?u ?y ?v ?z WHERE {
				?x rdf:type ?u .
				?y rdf:type ?v .
				?x ub:mastersDegreeFrom ` + univ0 + ` .
				?y ub:doctoralDegreeFrom ` + univ0 + ` .
				?x ub:memberOf ?z .
				?y ub:memberOf ?z .
			}`,
			Comment: "motivating example 2: two type variables; |q_ref| in the hundreds of thousands — UCQ infeasible on every engine",
		},
		{
			Name: "Q03",
			Text: prolog + `SELECT ?x WHERE {
				?x rdf:type ub:GraduateStudent .
				?x ub:takesCourse ` + gcrs0 + ` .
			}`,
			Comment: "LUBM query 1 analogue: tiny reformulation, selective",
		},
		{
			Name: "Q04",
			Text: prolog + `SELECT ?x ?n ?e ?t WHERE {
				?x rdf:type ub:Professor .
				?x ub:worksFor ` + dept0 + ` .
				?x ub:name ?n .
				?x ub:emailAddress ?e .
				?x ub:telephone ?t .
			}`,
			Comment: "LUBM query 4 analogue: professor subtree × worksFor hierarchy",
		},
		{
			Name: "Q05",
			Text: prolog + `SELECT ?x WHERE {
				?x rdf:type ub:Person .
				?x ub:memberOf ` + dept0 + ` .
			}`,
			Comment: "LUBM query 5 analogue: the widest class × the memberOf hierarchy",
		},
		{
			Name: "Q06",
			Text: prolog + `SELECT ?x WHERE {
				?x rdf:type ub:Student .
			}`,
			Comment: "LUBM query 6: single wide-class atom, very large result",
		},
		{
			Name: "Q07",
			Text: prolog + `SELECT ?x ?y WHERE {
				?x rdf:type ub:Student .
				?x ub:takesCourse ?y .
				` + prof0 + ` ub:teacherOf ?y .
			}`,
			Comment: "LUBM query 7 analogue: selective teacher anchors the join",
		},
		{
			Name: "Q08",
			Text: prolog + `SELECT ?x ?y ?e WHERE {
				?x rdf:type ub:Student .
				?x ub:memberOf ?y .
				?y ub:subOrganizationOf ` + univ0 + ` .
				?x ub:emailAddress ?e .
			}`,
			Comment: "LUBM query 8 analogue: students across one university's departments",
		},
		{
			Name: "Q09",
			Text: prolog + `SELECT ?x ?y ?v ?z WHERE {
				?x rdf:type ub:Student .
				?y rdf:type ?v .
				?z rdf:type ub:GraduateCourse .
				?x ub:advisor ?y .
				?y ub:teacherOf ?z .
				?x ub:takesCourse ?z .
			}`,
			Comment: "LUBM query 9 modified as the paper modified its queries — no redundant triples: the advisor's type is a distinguished variable (advisor's range would make a Professor atom redundant), and the class atoms sit strictly below the domain/range classes; reformulations multiply across the Student subtree and the type variable",
		},
		{
			Name: "Q10",
			Text: prolog + `SELECT ?x WHERE {
				?x ub:takesCourse ` + gcrs0 + ` .
			}`,
			Comment: "LUBM query 10 analogue: single selective atom, |q_ref| = 1",
		},
		{
			Name: "Q11",
			Text: prolog + `SELECT ?x WHERE {
				?x rdf:type ub:ResearchGroup .
				?x ub:subOrganizationOf ?y .
				?y ub:subOrganizationOf ` + univ0 + ` .
			}`,
			Comment: "LUBM query 11 analogue: organization chain (RDFS keeps one hop explicit)",
		},
		{
			Name: "Q12",
			Text: prolog + `SELECT ?x ?y WHERE {
				?x ub:headOf ?y .
				?y ub:subOrganizationOf ` + univ0 + ` .
				?x ub:emailAddress ?e .
			}`,
			Comment: "LUBM query 12 analogue: chairs of one university's departments (the Department type atom would be redundant: headOf's range implies it)",
		},
		{
			Name: "Q13",
			Text: prolog + `SELECT ?x ?y WHERE {
				?x rdf:type ?y .
				?x ub:memberOf ` + dept0 + ` .
			}`,
			Comment: "type variable over one department's members; mid-size reformulation",
		},
		{
			Name: "Q14",
			Text: prolog + `SELECT ?x WHERE {
				?x rdf:type ub:UndergraduateStudent .
			}`,
			Comment: "LUBM query 14: leaf class, |q_ref| = 1, huge result",
		},
		{
			Name: "Q15",
			Text: prolog + `SELECT ?x ?y WHERE {
				?x rdf:type ?y .
				?x ub:worksFor ` + dept0 + ` .
			}`,
			Comment: "type variable over one department's staff",
		},
		{
			Name: "Q16",
			Text: prolog + `SELECT ?x WHERE {
				?x rdf:type ub:Employee .
				?x ub:degreeFrom ` + univ0 + ` .
			}`,
			Comment: "employee subtree × degree hierarchy",
		},
		{
			Name: "Q17",
			Text: prolog + `SELECT ?x WHERE {
				?x rdf:type ub:Article .
				?x ub:publicationAuthor ` + prof0 + ` .
			}`,
			Comment: "LUBM query 17 analogue: article subtree, selective author (Publication itself would be redundant: publicationAuthor's domain implies it)",
		},
		{
			Name: "Q18",
			Text: prolog + `SELECT ?x ?y ?a WHERE {
				?x rdf:type ?y .
				?x ub:publicationAuthor ?a .
				?a ub:memberOf ` + dept0 + ` .
			}`,
			Comment: "type variable over publications of one department's members",
		},
		{
			Name: "Q19",
			Text: prolog + `SELECT ?x ?y WHERE {
				?x ub:advisor ?y .
				?y ub:worksFor ?z .
				?z ub:subOrganizationOf ` + univ0 + ` .
				?x ub:takesCourse ?c .
				?y ub:teacherOf ?c .
			}`,
			Comment: "five-triple chain: advisees taking their advisor's course at one university",
		},
		{
			Name: "Q20",
			Text: prolog + `SELECT ?x WHERE {
				?x ub:degreeFrom ` + univ0 + ` .
			}`,
			Comment: "degree hierarchy alone: four-member union, large result",
		},
		{
			Name: "Q21",
			Text: prolog + `SELECT ?x ?y WHERE {
				?x rdf:type ?y .
				?x ub:doctoralDegreeFrom ` + univ0 + ` .
			}`,
			Comment: "type variable anchored by a selective degree triple",
		},
		{
			Name: "Q22",
			Text: prolog + `SELECT ?x ?y WHERE {
				?x rdf:type ub:GraduateStudent .
				?x ub:memberOf ?y .
				?y rdf:type ub:Department .
			}`,
			Comment: "graduate students with their departments",
		},
		{
			Name: "Q23",
			Text: prolog + `SELECT ?x ?u ?z WHERE {
				?x rdf:type ?u .
				?x ub:degreeFrom ` + univ0 + ` .
				?x ub:memberOf ?z .
				?z ub:subOrganizationOf ` + univ0 + ` .
			}`,
			Comment: "Q01 widened: unselective memberOf; thousands of members × 4 atoms",
		},
		{
			Name: "Q24",
			Text: prolog + `SELECT ?x ?u ?y ?v WHERE {
				?x rdf:type ?u .
				?y rdf:type ?v .
				?x ub:advisor ?y .
				?x ub:memberOf ` + dept0 + ` .
			}`,
			Comment: "two type variables: tens of thousands of members — UCQ exceeds the DB2-like plan limit",
		},
		{
			Name: "Q25",
			Text: prolog + `SELECT ?x ?u ?y WHERE {
				?x rdf:type ?u .
				?x ub:takesCourse ?y .
				?y rdf:type ub:GraduateCourse .
			}`,
			Comment: "type variable over graduate-course takers",
		},
		{
			Name: "Q26",
			Text: prolog + `SELECT ?p ?y WHERE {
				` + prof0 + ` ?p ?y .
			}`,
			Comment: "property variable: everything about one professor",
		},
		{
			Name: "Q27",
			Text: prolog + `SELECT ?x ?p WHERE {
				?x ?p ` + dept0 + ` .
			}`,
			Comment: "property variable with constant object: everything pointing at one department",
		},
		{
			Name: "Q28",
			Text: prolog + `SELECT ?x ?u ?y ?v WHERE {
				?x rdf:type ?u .
				?y rdf:type ?v .
				?x ub:memberOf ?z .
				?y ub:memberOf ?z .
				?x ub:advisor ?y .
			}`,
			Comment: "two type variables joined twice: hundreds of thousands of members — UCQ infeasible everywhere, like the paper's Q28",
		},
	}
}

// ParseAll parses every query, reporting the first failure with the
// query's name; the texts are static, so an error always indicates a
// workload-definition bug.
func ParseAll(specs []QuerySpec) ([]*sparql.Query, error) {
	out := make([]*sparql.Query, len(specs))
	for i, s := range specs {
		q, err := sparql.Parse(s.Text)
		if err != nil {
			return nil, fmt.Errorf("lubm: parsing %s: %w", s.Name, err)
		}
		out[i] = q
	}
	return out, nil
}
