// Package lubm provides the Lehigh University Benchmark substitute of this
// reproduction: the Univ-Bench ontology restricted to its RDF Schema
// content (the same restriction the database fragment of RDF applies to
// the original OWL ontology), a deterministic data generator following the
// published LUBM cardinality profile, and the 28 BGP queries of the
// paper's LUBM experiments, including the two motivating-example queries
// of Section 3.
package lubm

import (
	"repro/internal/rdf"
)

// Namespace is the Univ-Bench ontology namespace.
const Namespace = "http://swat.cse.lehigh.edu/onto/univ-bench.owl#"

// Class returns the IRI of a Univ-Bench class.
func Class(name string) rdf.Term { return rdf.NewIRI(Namespace + name) }

// Prop returns the IRI of a Univ-Bench property.
func Prop(name string) rdf.Term { return rdf.NewIRI(Namespace + name) }

// The class hierarchy: sub ⊑ super pairs of the Univ-Bench ontology's
// RDFS fragment.
var subClasses = [][2]string{
	{"University", "Organization"},
	{"College", "Organization"},
	{"Department", "Organization"},
	{"Institute", "Organization"},
	{"Program", "Organization"},
	{"ResearchGroup", "Organization"},

	{"Employee", "Person"},
	{"Faculty", "Employee"},
	{"Professor", "Faculty"},
	{"FullProfessor", "Professor"},
	{"AssociateProfessor", "Professor"},
	{"AssistantProfessor", "Professor"},
	{"VisitingProfessor", "Professor"},
	{"Chair", "Professor"},
	{"Dean", "Professor"},
	{"Lecturer", "Faculty"},
	{"PostDoc", "Faculty"},
	{"AdministrativeStaff", "Employee"},
	{"ClericalStaff", "AdministrativeStaff"},
	{"SystemsStaff", "AdministrativeStaff"},

	{"Student", "Person"},
	{"UndergraduateStudent", "Student"},
	{"GraduateStudent", "Student"},
	{"ResearchAssistant", "GraduateStudent"},
	{"TeachingAssistant", "GraduateStudent"},
	{"Director", "Person"},

	{"Article", "Publication"},
	{"ConferencePaper", "Article"},
	{"JournalArticle", "Article"},
	{"TechnicalReport", "Article"},
	{"Book", "Publication"},
	{"Manual", "Publication"},
	{"Software", "Publication"},
	{"Specification", "Publication"},
	{"UnofficialPublication", "Publication"},

	{"Course", "Work"},
	{"GraduateCourse", "Course"},
	{"Research", "Work"},
}

// The property hierarchy: sub ⊑ super pairs.
var subProperties = [][2]string{
	{"worksFor", "memberOf"},
	{"headOf", "worksFor"},
	{"doctoralDegreeFrom", "degreeFrom"},
	{"mastersDegreeFrom", "degreeFrom"},
	{"undergraduateDegreeFrom", "degreeFrom"},
}

// Domain and range constraints (property, class). As in Univ-Bench,
// memberOf and takesCourse carry no domain or range of their own (only
// their subproperties do), and advisor's domain is Person — which is why
// pairing those properties with class atoms in the benchmark queries does
// not create redundant triples (the paper's Section 5.1 criterion).
var domains = [][2]string{
	{"worksFor", "Employee"},
	{"headOf", "Chair"},
	{"degreeFrom", "Person"},
	{"doctoralDegreeFrom", "Faculty"},
	{"teacherOf", "Faculty"},
	{"teachingAssistantOf", "TeachingAssistant"},
	{"advisor", "Person"},
	{"publicationAuthor", "Publication"},
	{"researchProject", "ResearchGroup"},
	{"subOrganizationOf", "Organization"},
	{"orgPublication", "Organization"},
	{"softwareVersion", "Software"},
	{"researchInterest", "Faculty"},
}

var ranges = [][2]string{
	{"worksFor", "Organization"},
	{"headOf", "Department"},
	{"degreeFrom", "University"},
	{"teacherOf", "Course"},
	{"teachingAssistantOf", "Course"},
	{"advisor", "Professor"},
	{"publicationAuthor", "Person"},
	{"researchProject", "Research"},
	{"subOrganizationOf", "Organization"},
	{"orgPublication", "Publication"},
}

// Ontology returns the RDFS constraint triples of the Univ-Bench schema.
func Ontology() []rdf.Triple {
	var out []rdf.Triple
	for _, sc := range subClasses {
		out = append(out, rdf.NewTriple(Class(sc[0]), rdf.SubClassOf, Class(sc[1])))
	}
	for _, sp := range subProperties {
		out = append(out, rdf.NewTriple(Prop(sp[0]), rdf.SubPropertyOf, Prop(sp[1])))
	}
	for _, d := range domains {
		out = append(out, rdf.NewTriple(Prop(d[0]), rdf.Domain, Class(d[1])))
	}
	for _, r := range ranges {
		out = append(out, rdf.NewTriple(Prop(r[0]), rdf.Range, Class(r[1])))
	}
	return out
}
