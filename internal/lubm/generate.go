package lubm

import (
	"fmt"
	"math/rand"

	"repro/internal/rdf"
)

// Config sets the generator's cardinality profile. Default mirrors the
// published LUBM (UBA 1.7) profile; Tiny scales it down for unit tests.
type Config struct {
	DeptsMin, DeptsMax           int // departments per university
	FullProfMin, FullProfMax     int
	AssocProfMin, AssocProfMax   int
	AssistProfMin, AssistProfMax int
	LecturerMin, LecturerMax     int
	UndergradRatioMin            int // undergraduates per faculty member
	UndergradRatioMax            int
	GradRatioMin, GradRatioMax   int
	CoursesPerFaculty            int // courses (and graduate courses) taught
	UndergradCoursesMin          int // courses an undergraduate takes
	UndergradCoursesMax          int
	GradCoursesMin               int
	GradCoursesMax               int
	PubsFullMin, PubsFullMax     int
	PubsOtherMin, PubsOtherMax   int
	GroupsMin, GroupsMax         int
	AdvisedUndergradFraction     int // one in N undergraduates has an advisor
	ResearchAssistantFraction    int // one in N graduate students
	TeachingAssistantFraction    int // one in N graduate students
}

// Default returns the LUBM-like profile (one university ≈ 10^5 triples,
// matching the original generator's density).
func Default() Config {
	return Config{
		DeptsMin: 15, DeptsMax: 25,
		FullProfMin: 7, FullProfMax: 10,
		AssocProfMin: 10, AssocProfMax: 14,
		AssistProfMin: 8, AssistProfMax: 11,
		LecturerMin: 5, LecturerMax: 7,
		UndergradRatioMin: 8, UndergradRatioMax: 14,
		GradRatioMin: 3, GradRatioMax: 4,
		CoursesPerFaculty:   2,
		UndergradCoursesMin: 2, UndergradCoursesMax: 4,
		GradCoursesMin: 1, GradCoursesMax: 3,
		PubsFullMin: 15, PubsFullMax: 20,
		PubsOtherMin: 5, PubsOtherMax: 10,
		GroupsMin: 10, GroupsMax: 20,
		AdvisedUndergradFraction:  5,
		ResearchAssistantFraction: 5,
		TeachingAssistantFraction: 4,
	}
}

// Tiny returns a scaled-down profile for unit tests (one university ≈
// 4,000 triples) that still exercises every class and property.
func Tiny() Config {
	return Config{
		DeptsMin: 2, DeptsMax: 3,
		FullProfMin: 2, FullProfMax: 3,
		AssocProfMin: 2, AssocProfMax: 3,
		AssistProfMin: 2, AssistProfMax: 3,
		LecturerMin: 1, LecturerMax: 2,
		UndergradRatioMin: 2, UndergradRatioMax: 3,
		GradRatioMin: 1, GradRatioMax: 2,
		CoursesPerFaculty:   1,
		UndergradCoursesMin: 1, UndergradCoursesMax: 2,
		GradCoursesMin: 1, GradCoursesMax: 2,
		PubsFullMin: 1, PubsFullMax: 3,
		PubsOtherMin: 0, PubsOtherMax: 2,
		GroupsMin: 1, GroupsMax: 3,
		AdvisedUndergradFraction:  3,
		ResearchAssistantFraction: 3,
		TeachingAssistantFraction: 3,
	}
}

// UniversityIRI returns the IRI of university n.
func UniversityIRI(n int) rdf.Term {
	return rdf.NewIRI(fmt.Sprintf("http://www.University%d.edu", n))
}

// DepartmentIRI returns the IRI of department d of university u.
func DepartmentIRI(u, d int) rdf.Term {
	return rdf.NewIRI(fmt.Sprintf("http://www.Department%d.University%d.edu", d, u))
}

// memberIRI returns the IRI of an entity inside a department.
func memberIRI(u, d int, kind string, n int) rdf.Term {
	return rdf.NewIRI(fmt.Sprintf("http://www.Department%d.University%d.edu/%s%d", d, u, kind, n))
}

// Generate emits the data triples of nUniv universities to emit,
// deterministically for a given seed. The triple stream follows the LUBM
// generator's structure: department organization, faculty with degrees
// and courses, students with enrollments and advisors, publications with
// authors, and research groups.
func Generate(nUniv int, seed int64, cfg Config, emit func(rdf.Triple)) {
	rng := rand.New(rand.NewSource(seed))
	between := func(lo, hi int) int {
		if hi <= lo {
			return lo
		}
		return lo + rng.Intn(hi-lo+1)
	}
	t := func(s, p, o rdf.Term) { emit(rdf.NewTriple(s, p, o)) }
	typ := func(s rdf.Term, class string) { t(s, rdf.Type, Class(class)) }
	lit := func(s rdf.Term, prop, val string) { t(s, Prop(prop), rdf.NewLiteral(val)) }

	randUniv := func() rdf.Term { return UniversityIRI(rng.Intn(nUniv * 5)) } // degrees may come from unseen universities

	for u := 0; u < nUniv; u++ {
		univ := UniversityIRI(u)
		typ(univ, "University")
		lit(univ, "name", fmt.Sprintf("University%d", u))

		nDepts := between(cfg.DeptsMin, cfg.DeptsMax)
		for d := 0; d < nDepts; d++ {
			dept := DepartmentIRI(u, d)
			typ(dept, "Department")
			t(dept, Prop("subOrganizationOf"), univ)
			lit(dept, "name", fmt.Sprintf("Department%d", d))

			// Faculty roster.
			type facultyMember struct {
				iri  rdf.Term
				rank string
			}
			var faculty []facultyMember
			addFaculty := func(kind string, n int) {
				for i := 0; i < n; i++ {
					f := memberIRI(u, d, kind, i)
					faculty = append(faculty, facultyMember{f, kind})
				}
			}
			addFaculty("FullProfessor", between(cfg.FullProfMin, cfg.FullProfMax))
			addFaculty("AssociateProfessor", between(cfg.AssocProfMin, cfg.AssocProfMax))
			addFaculty("AssistantProfessor", between(cfg.AssistProfMin, cfg.AssistProfMax))
			addFaculty("Lecturer", between(cfg.LecturerMin, cfg.LecturerMax))

			// Courses: every faculty member teaches CoursesPerFaculty
			// undergraduate courses and one graduate course.
			nCourses := len(faculty) * cfg.CoursesPerFaculty
			nGradCourses := len(faculty)
			course := func(i int) rdf.Term { return memberIRI(u, d, "Course", i) }
			gradCourse := func(i int) rdf.Term { return memberIRI(u, d, "GraduateCourse", i) }
			for i := 0; i < nCourses; i++ {
				typ(course(i), "Course")
			}
			for i := 0; i < nGradCourses; i++ {
				typ(gradCourse(i), "GraduateCourse")
			}

			professors := faculty[:0:0]
			for fi, f := range faculty {
				typ(f.iri, f.rank)
				if f.rank != "Lecturer" {
					professors = append(professors, f)
				}
				t(f.iri, Prop("worksFor"), dept)
				t(f.iri, Prop("undergraduateDegreeFrom"), randUniv())
				t(f.iri, Prop("mastersDegreeFrom"), randUniv())
				t(f.iri, Prop("doctoralDegreeFrom"), randUniv())
				lit(f.iri, "name", fmt.Sprintf("%s%d", f.rank, fi))
				lit(f.iri, "emailAddress", fmt.Sprintf("%s%d@Department%d.University%d.edu", f.rank, fi, d, u))
				lit(f.iri, "telephone", fmt.Sprintf("xxx-%04d", rng.Intn(10000)))
				lit(f.iri, "researchInterest", fmt.Sprintf("Research%d", rng.Intn(30)))
				for c := 0; c < cfg.CoursesPerFaculty; c++ {
					t(f.iri, Prop("teacherOf"), course((fi*cfg.CoursesPerFaculty+c)%nCourses))
				}
				t(f.iri, Prop("teacherOf"), gradCourse(fi%nGradCourses))
			}
			// The department head is the first full professor.
			t(faculty[0].iri, Prop("headOf"), dept)

			// Publications: authored by faculty, co-authored by a later
			// graduate student when available (emitted after students).
			type pub struct {
				iri    rdf.Term
				author rdf.Term
			}
			var pubs []pub
			pubCount := 0
			for fi, f := range faculty {
				lo, hi := cfg.PubsOtherMin, cfg.PubsOtherMax
				if f.rank == "FullProfessor" {
					lo, hi = cfg.PubsFullMin, cfg.PubsFullMax
				}
				n := between(lo, hi)
				for i := 0; i < n; i++ {
					p := memberIRI(u, d, "Publication", pubCount)
					pubCount++
					pubs = append(pubs, pub{p, f.iri})
					kind := [...]string{"JournalArticle", "ConferencePaper", "TechnicalReport", "Book"}[rng.Intn(4)]
					typ(p, kind)
					t(p, Prop("publicationAuthor"), f.iri)
					lit(p, "name", fmt.Sprintf("Publication%d.%d", fi, i))
				}
			}

			// Students.
			nUndergrad := len(faculty) * between(cfg.UndergradRatioMin, cfg.UndergradRatioMax)
			nGrad := len(faculty) * between(cfg.GradRatioMin, cfg.GradRatioMax)
			for i := 0; i < nUndergrad; i++ {
				s := memberIRI(u, d, "UndergraduateStudent", i)
				typ(s, "UndergraduateStudent")
				t(s, Prop("memberOf"), dept)
				lit(s, "name", fmt.Sprintf("UndergraduateStudent%d", i))
				lit(s, "telephone", fmt.Sprintf("xxx-%04d", rng.Intn(10000)))
				for c, n := 0, between(cfg.UndergradCoursesMin, cfg.UndergradCoursesMax); c < n; c++ {
					t(s, Prop("takesCourse"), course(rng.Intn(nCourses)))
				}
				if cfg.AdvisedUndergradFraction > 0 && i%cfg.AdvisedUndergradFraction == 0 {
					t(s, Prop("advisor"), professors[rng.Intn(len(professors))].iri)
				}
			}
			for i := 0; i < nGrad; i++ {
				s := memberIRI(u, d, "GraduateStudent", i)
				typ(s, "GraduateStudent")
				t(s, Prop("memberOf"), dept)
				t(s, Prop("undergraduateDegreeFrom"), randUniv())
				lit(s, "name", fmt.Sprintf("GraduateStudent%d", i))
				lit(s, "emailAddress", fmt.Sprintf("GraduateStudent%d@Department%d.University%d.edu", i, d, u))
				t(s, Prop("advisor"), professors[rng.Intn(len(professors))].iri)
				for c, n := 0, between(cfg.GradCoursesMin, cfg.GradCoursesMax); c < n; c++ {
					t(s, Prop("takesCourse"), gradCourse(rng.Intn(nGradCourses)))
				}
				if cfg.ResearchAssistantFraction > 0 && i%cfg.ResearchAssistantFraction == 0 {
					typ(s, "ResearchAssistant")
				}
				if cfg.TeachingAssistantFraction > 0 && i%cfg.TeachingAssistantFraction == 1 {
					typ(s, "TeachingAssistant")
					t(s, Prop("teachingAssistantOf"), course(rng.Intn(nCourses)))
				}
				// Some graduate students co-author a publication.
				if len(pubs) > 0 && i%3 == 0 {
					t(pubs[rng.Intn(len(pubs))].iri, Prop("publicationAuthor"), s)
				}
			}

			// Research groups.
			for g, n := 0, between(cfg.GroupsMin, cfg.GroupsMax); g < n; g++ {
				grp := memberIRI(u, d, "ResearchGroup", g)
				typ(grp, "ResearchGroup")
				t(grp, Prop("subOrganizationOf"), dept)
			}
		}
	}
}

// CountTriples returns how many triples Generate emits for the
// parameters, without storing them.
func CountTriples(nUniv int, seed int64, cfg Config) int {
	n := 0
	Generate(nUniv, seed, cfg, func(rdf.Triple) { n++ })
	return n
}
