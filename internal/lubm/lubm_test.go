package lubm

import (
	"testing"

	"repro/internal/rdf"
	"repro/internal/sparql"
)

func TestOntologyWellFormed(t *testing.T) {
	seen := make(map[rdf.Triple]bool)
	for _, tr := range Ontology() {
		if err := tr.Validate(); err != nil {
			t.Errorf("invalid ontology triple %v: %v", tr, err)
		}
		if !rdf.IsSchemaTriple(tr) {
			t.Errorf("non-constraint triple in ontology: %v", tr)
		}
		if seen[tr] {
			t.Errorf("duplicate ontology triple %v", tr)
		}
		seen[tr] = true
	}
	if len(seen) < 50 {
		t.Errorf("ontology suspiciously small: %d constraints", len(seen))
	}
}

func TestOntologyHierarchyAnchors(t *testing.T) {
	// Spot-check the constraints the motivating queries rely on.
	want := []rdf.Triple{
		rdf.NewTriple(Prop("doctoralDegreeFrom"), rdf.SubPropertyOf, Prop("degreeFrom")),
		rdf.NewTriple(Prop("mastersDegreeFrom"), rdf.SubPropertyOf, Prop("degreeFrom")),
		rdf.NewTriple(Prop("worksFor"), rdf.SubPropertyOf, Prop("memberOf")),
		rdf.NewTriple(Prop("headOf"), rdf.SubPropertyOf, Prop("worksFor")),
		rdf.NewTriple(Class("GraduateStudent"), rdf.SubClassOf, Class("Student")),
		rdf.NewTriple(Class("FullProfessor"), rdf.SubClassOf, Class("Professor")),
	}
	have := make(map[rdf.Triple]bool)
	for _, tr := range Ontology() {
		have[tr] = true
	}
	for _, tr := range want {
		if !have[tr] {
			t.Errorf("ontology missing %v", tr)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	count := func() []rdf.Triple {
		var out []rdf.Triple
		Generate(1, 7, Tiny(), func(tr rdf.Triple) { out = append(out, tr) })
		return out
	}
	a, b := count(), count()
	if len(a) != len(b) {
		t.Fatalf("non-deterministic sizes: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic triple at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	n1 := CountTriples(1, 1, Tiny())
	n2 := CountTriples(1, 2, Tiny())
	if n1 == 0 || n2 == 0 {
		t.Fatal("empty generation")
	}
	// Sizes are random draws; at least the streams should not be byte-
	// identical for different seeds.
	var a, b []rdf.Triple
	Generate(1, 1, Tiny(), func(tr rdf.Triple) { a = append(a, tr) })
	Generate(1, 2, Tiny(), func(tr rdf.Triple) { b = append(b, tr) })
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical datasets")
	}
}

func TestGenerateValidTriples(t *testing.T) {
	n := 0
	Generate(1, 42, Tiny(), func(tr rdf.Triple) {
		n++
		if err := tr.Validate(); err != nil {
			t.Fatalf("invalid generated triple %v: %v", tr, err)
		}
		if rdf.IsSchemaTriple(tr) {
			t.Fatalf("generator emitted a constraint triple: %v", tr)
		}
	})
	if n < 1000 {
		t.Errorf("tiny profile generated only %d triples", n)
	}
}

// The query constants must exist in any generated dataset (nUniv >= 1).
func TestQueryConstantsExist(t *testing.T) {
	subjects := make(map[string]bool)
	objects := make(map[string]bool)
	Generate(1, 42, Tiny(), func(tr rdf.Triple) {
		subjects[tr.S.Value] = true
		if tr.O.IsIRI() {
			objects[tr.O.Value] = true
		}
	})
	for _, iri := range []string{
		"http://www.University0.edu",
		"http://www.Department0.University0.edu",
		"http://www.Department0.University0.edu/FullProfessor0",
		"http://www.Department0.University0.edu/GraduateCourse0",
	} {
		if !subjects[iri] && !objects[iri] {
			t.Errorf("query constant %s absent from generated data", iri)
		}
	}
}

func TestScalingWithUniversities(t *testing.T) {
	one := CountTriples(1, 42, Tiny())
	three := CountTriples(3, 42, Tiny())
	if three < 2*one {
		t.Errorf("3 universities (%d triples) should be at least twice 1 (%d)", three, one)
	}
}

func TestQueriesParse(t *testing.T) {
	specs := Queries()
	if len(specs) != 28 {
		t.Fatalf("got %d queries, want 28", len(specs))
	}
	names := make(map[string]bool)
	for _, s := range specs {
		if names[s.Name] {
			t.Errorf("duplicate query name %s", s.Name)
		}
		names[s.Name] = true
		q, err := sparql.Parse(s.Text)
		if err != nil {
			t.Errorf("%s does not parse: %v", s.Name, err)
			continue
		}
		if len(q.Where) == 0 {
			t.Errorf("%s has no patterns", s.Name)
		}
		if s.Comment == "" {
			t.Errorf("%s has no design comment", s.Name)
		}
	}
	// ParseAll must succeed on the full set.
	got, err := ParseAll(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 28 {
		t.Errorf("ParseAll returned %d queries", len(got))
	}
}

// The motivating queries must have the shapes the paper describes.
func TestMotivatingQueryShapes(t *testing.T) {
	qs, err := ParseAll(Queries())
	if err != nil {
		t.Fatal(err)
	}
	if len(qs[0].Where) != 3 {
		t.Errorf("Q01 has %d triples, want 3", len(qs[0].Where))
	}
	if len(qs[1].Where) != 6 {
		t.Errorf("Q02 has %d triples, want 6", len(qs[1].Where))
	}
}
