// Package testkit provides shared fixtures for the test suites: the
// paper's running example (the book graph of Examples 1–4 and Figure 3),
// and seeded random generators of schemas, data and queries for the
// property-based tests that check reformulation against saturation.
package testkit

import (
	"fmt"
	"math/rand"

	"repro/internal/bgp"
	"repro/internal/dict"
	"repro/internal/rdf"
	"repro/internal/schema"
	"repro/internal/storage"
)

// Example is an encoded RDF database: dictionary, closed schema, the data
// triples (not saturated) and the *direct* (asserted, non-closed)
// constraint triples.
type Example struct {
	Dict        *dict.Dict
	Vocab       schema.Vocab
	Schema      *schema.Schema
	Closed      *schema.Closed
	Data        []storage.Triple
	Constraints []storage.Triple
}

// AddSubClass asserts sub ⊑ super in both the schema and the constraint
// triple record.
func (e *Example) AddSubClass(sub, super dict.ID) {
	e.Schema.AddSubClass(sub, super)
	e.Constraints = append(e.Constraints, storage.Triple{S: sub, P: e.Vocab.SubClassOf, O: super})
}

// AddSubProperty asserts sub ⊑ super between properties.
func (e *Example) AddSubProperty(sub, super dict.ID) {
	e.Schema.AddSubProperty(sub, super)
	e.Constraints = append(e.Constraints, storage.Triple{S: sub, P: e.Vocab.SubPropertyOf, O: super})
}

// AddDomain asserts p rdfs:domain c.
func (e *Example) AddDomain(p, c dict.ID) {
	e.Schema.AddDomain(p, c)
	e.Constraints = append(e.Constraints, storage.Triple{S: p, P: e.Vocab.Domain, O: c})
}

// AddRange asserts p rdfs:range c.
func (e *Example) AddRange(p, c dict.ID) {
	e.Schema.AddRange(p, c)
	e.Constraints = append(e.Constraints, storage.Triple{S: p, P: e.Vocab.Range, O: c})
}

// RawStore builds the non-saturated store: data triples plus the closed
// constraint triples (so schema-level atoms are answerable), which is the
// layout reformulation-based answering runs against.
func (e *Example) RawStore(orders ...storage.Order) *storage.Store {
	b := storage.NewBuilder(orders...)
	for _, t := range e.Data {
		b.Add(t)
	}
	for _, c := range e.Closed.ConstraintTriples() {
		b.Add(storage.Triple{S: c[0], P: c[1], O: c[2]})
	}
	return b.Build()
}

// SaturatedStore builds the saturated store by a brute-force fixpoint over
// the immediate RDF entailment rules on the *direct* constraint triples.
// It is deliberately independent of the schema-closure and saturate
// packages, so it serves as a differential reference for both.
func (e *Example) SaturatedStore(orders ...storage.Order) *storage.Store {
	v := e.Vocab
	set := make(map[storage.Triple]struct{})
	for _, t := range e.Data {
		set[t] = struct{}{}
	}
	for _, t := range e.Constraints {
		set[t] = struct{}{}
	}
	for changed := true; changed; {
		changed = false
		var derived []storage.Triple
		for a := range set {
			for b := range set {
				for _, d := range immediate(v, a, b) {
					if _, ok := set[d]; !ok {
						derived = append(derived, d)
					}
				}
			}
		}
		for _, d := range derived {
			if _, ok := set[d]; !ok {
				set[d] = struct{}{}
				changed = true
			}
		}
	}
	b := storage.NewBuilder(orders...)
	for t := range set {
		b.Add(t)
	}
	return b.Build()
}

// immediate applies every immediate entailment rule of the DB fragment to
// the ordered pair (a, b) of triples, returning the derived triples.
func immediate(v schema.Vocab, a, b storage.Triple) []storage.Triple {
	var out []storage.Triple
	// Transitivity of the inclusion orders.
	if a.P == v.SubClassOf && b.P == v.SubClassOf && a.O == b.S && a.S != b.O {
		out = append(out, storage.Triple{S: a.S, P: v.SubClassOf, O: b.O})
	}
	if a.P == v.SubPropertyOf && b.P == v.SubPropertyOf && a.O == b.S && a.S != b.O {
		out = append(out, storage.Triple{S: a.S, P: v.SubPropertyOf, O: b.O})
	}
	// Domain/range propagation through the hierarchies.
	if a.P == v.SubPropertyOf && b.P == v.Domain && a.O == b.S {
		out = append(out, storage.Triple{S: a.S, P: v.Domain, O: b.O})
	}
	if a.P == v.SubPropertyOf && b.P == v.Range && a.O == b.S {
		out = append(out, storage.Triple{S: a.S, P: v.Range, O: b.O})
	}
	if a.P == v.Domain && b.P == v.SubClassOf && a.O == b.S {
		out = append(out, storage.Triple{S: a.S, P: v.Domain, O: b.O})
	}
	if a.P == v.Range && b.P == v.SubClassOf && a.O == b.S {
		out = append(out, storage.Triple{S: a.S, P: v.Range, O: b.O})
	}
	// Data-level rules.
	if a.P == v.SubClassOf && b.P == v.Type && b.O == a.S {
		out = append(out, storage.Triple{S: b.S, P: v.Type, O: a.O})
	}
	if a.P == v.SubPropertyOf && b.P == a.S {
		out = append(out, storage.Triple{S: b.S, P: a.O, O: b.O})
	}
	if a.P == v.Domain && b.P == a.S {
		out = append(out, storage.Triple{S: b.S, P: v.Type, O: a.O})
	}
	if a.P == v.Range && b.P == a.S {
		out = append(out, storage.Triple{S: b.O, P: v.Type, O: a.O})
	}
	return out
}

// ID encodes an IRI in the example's namespace and returns its code.
func (e *Example) ID(local string) dict.ID {
	return e.Dict.Encode(rdf.NewIRI("http://example.org/" + local))
}

// Paper builds the paper's book example: the graph of Figure 3 with the
// constraints of Example 2 (Book ⊑ Publication, writtenBy ⊑ hasAuthor,
// writtenBy has domain Book and range Person).
func Paper() *Example {
	d := dict.New()
	vocab := schema.EncodeVocab(d)
	sch := schema.New(vocab)
	e := &Example{Dict: d, Vocab: vocab, Schema: sch}

	book := e.ID("Book")
	publication := e.ID("Publication")
	person := e.ID("Person")
	writtenBy := e.ID("writtenBy")
	hasAuthor := e.ID("hasAuthor")
	hasTitle := e.ID("hasTitle")
	hasName := e.ID("hasName")
	publishedIn := e.ID("publishedIn")

	e.AddSubClass(book, publication)
	e.AddSubProperty(writtenBy, hasAuthor)
	e.AddDomain(writtenBy, book)
	e.AddRange(writtenBy, person)
	e.Closed = sch.Close()

	doi1 := e.ID("doi1")
	b1 := d.Encode(rdf.NewBlank("b1"))
	title := d.Encode(rdf.NewLiteral("Game of Thrones"))
	name := d.Encode(rdf.NewLiteral("George R. R. Martin"))
	year := d.Encode(rdf.NewLiteral("1996"))

	e.Data = []storage.Triple{
		{S: doi1, P: vocab.Type, O: book},
		{S: doi1, P: writtenBy, O: b1},
		{S: doi1, P: hasTitle, O: title},
		{S: b1, P: hasName, O: name},
		{S: doi1, P: publishedIn, O: year},
	}
	return e
}

// Random builds a seeded random database: a random RDFS schema over a
// small vocabulary and random data triples. The same seed always yields
// the same database.
func Random(seed int64, nData int) *Example {
	rng := rand.New(rand.NewSource(seed))
	d := dict.New()
	vocab := schema.EncodeVocab(d)
	sch := schema.New(vocab)
	e := &Example{Dict: d, Vocab: vocab, Schema: sch}

	nClasses := 3 + rng.Intn(5)
	nProps := 2 + rng.Intn(4)
	nRes := 5 + rng.Intn(15)
	classes := make([]dict.ID, nClasses)
	props := make([]dict.ID, nProps)
	resources := make([]dict.ID, nRes)
	for i := range classes {
		classes[i] = e.ID(fmt.Sprintf("C%d", i))
	}
	for i := range props {
		props[i] = e.ID(fmt.Sprintf("p%d", i))
	}
	for i := range resources {
		resources[i] = e.ID(fmt.Sprintf("r%d", i))
	}

	// Random constraints. Subclass/subproperty edges go from lower to
	// higher indexes so the hierarchy is acyclic (the closure tolerates
	// cycles, but acyclic schemas are the realistic case); a few tests
	// add cycles explicitly.
	for i := 0; i < nClasses; i++ {
		for j := i + 1; j < nClasses; j++ {
			if rng.Float64() < 0.3 {
				e.AddSubClass(classes[i], classes[j])
			}
		}
	}
	for i := 0; i < nProps; i++ {
		for j := i + 1; j < nProps; j++ {
			if rng.Float64() < 0.3 {
				e.AddSubProperty(props[i], props[j])
			}
		}
	}
	for _, p := range props {
		if rng.Float64() < 0.5 {
			e.AddDomain(p, classes[rng.Intn(nClasses)])
		}
		if rng.Float64() < 0.5 {
			e.AddRange(p, classes[rng.Intn(nClasses)])
		}
	}
	e.Closed = sch.Close()

	for i := 0; i < nData; i++ {
		if rng.Float64() < 0.3 {
			e.Data = append(e.Data, storage.Triple{
				S: resources[rng.Intn(nRes)],
				P: vocab.Type,
				O: classes[rng.Intn(nClasses)],
			})
		} else {
			e.Data = append(e.Data, storage.Triple{
				S: resources[rng.Intn(nRes)],
				P: props[rng.Intn(nProps)],
				O: resources[rng.Intn(nRes)],
			})
		}
	}
	return e
}

// RandomQuery generates a random BGP query over the example's vocabulary:
// 1–4 atoms that chain on shared variables, with constants drawn from the
// example's classes, properties and resources. The head is a random
// non-empty subset of the body variables.
func RandomQuery(e *Example, rng *rand.Rand) bgp.CQ {
	nAtoms := 1 + rng.Intn(4)
	nVars := uint32(1 + rng.Intn(4))
	randVar := func() bgp.Term { return bgp.V(rng.Uint32() % nVars) }
	randRes := func() bgp.Term { return bgp.C(e.ID(fmt.Sprintf("r%d", rng.Intn(10)))) }
	randClass := func() bgp.Term {
		cs := e.Closed.Classes()
		if len(cs) == 0 {
			return randRes()
		}
		return bgp.C(cs[rng.Intn(len(cs))])
	}
	randProp := func() bgp.Term {
		ps := e.Closed.Properties()
		if len(ps) == 0 {
			return randRes()
		}
		return bgp.C(ps[rng.Intn(len(ps))])
	}

	q := bgp.CQ{}
	for i := 0; i < nAtoms; i++ {
		var a bgp.Atom
		// Subject: variable-biased.
		if rng.Float64() < 0.7 {
			a.S = randVar()
		} else {
			a.S = randRes()
		}
		switch rng.Intn(4) {
		case 0: // type atom with class constant or class variable
			a.P = bgp.C(e.Vocab.Type)
			if rng.Float64() < 0.6 {
				a.O = randClass()
			} else {
				a.O = randVar()
			}
		case 1: // property variable
			a.P = randVar()
			a.O = randVar()
		default: // data property atom
			a.P = randProp()
			if rng.Float64() < 0.7 {
				a.O = randVar()
			} else {
				a.O = randRes()
			}
		}
		q.Atoms = append(q.Atoms, a)
	}
	vars := q.VarSet()
	for v := range vars {
		if len(q.Head) == 0 || rng.Float64() < 0.5 {
			q.Head = append(q.Head, bgp.V(v))
		}
	}
	if len(q.Head) == 0 {
		q.Head = append(q.Head, bgp.V(0))
		q.Atoms = append(q.Atoms, bgp.Atom{S: bgp.V(0), P: randProp(), O: randVar()})
	}
	return q
}
