// Package bgp defines the dictionary-encoded query algebra shared by the
// reformulation, cover-enumeration, cost-estimation and evaluation layers:
//
//   - CQ: a conjunctive query (SPARQL Basic Graph Pattern) whose atoms are
//     triple patterns over dictionary IDs and variables;
//   - UCQ: a union of CQs with positionally compatible heads;
//   - JUCQ: a join of UCQs (Definition 3.1 of the paper), the reformulation
//     language this reproduction optimizes over.
//
// Variables are small dense integers scoped to one query. Reformulation may
// bind a head variable to a constant (Example 4 of the paper: q(x, Book)),
// so CQ heads are Terms (variable or constant), while the variable *names*
// of a UCQ's columns are carried by UCQ.Vars.
package bgp

import (
	"fmt"
	"strings"

	"repro/internal/dict"
)

// Term is one position of a triple pattern or query head: either a
// variable (Var true, ID is the variable number) or a constant
// (Var false, ID is a dictionary code).
type Term struct {
	Var bool
	ID  uint32
}

// V returns a variable term.
func V(v uint32) Term { return Term{Var: true, ID: v} }

// C returns a constant term for a dictionary ID.
func C(id dict.ID) Term { return Term{Var: false, ID: uint32(id)} }

// Const returns the dictionary ID of a constant term; it panics on a
// variable, which always indicates a caller bug.
func (t Term) Const() dict.ID {
	if t.Var {
		//lint:ignore panicfree documented invariant accessor: callers must test Var first, so this is unreachable outside a caller bug
		panic("bgp: Const called on a variable term")
	}
	return dict.ID(t.ID)
}

// String renders the term for debugging: ?v3 or #42.
func (t Term) String() string {
	if t.Var {
		return fmt.Sprintf("?v%d", t.ID)
	}
	return fmt.Sprintf("#%d", t.ID)
}

// Atom is a triple pattern (s, p, o) over Terms.
type Atom struct {
	S, P, O Term
}

// Positions returns the three terms in subject, property, object order.
func (a Atom) Positions() [3]Term { return [3]Term{a.S, a.P, a.O} }

// Vars appends the variables of the atom to dst and returns it; a variable
// occurring twice is appended twice.
func (a Atom) Vars(dst []uint32) []uint32 {
	for _, t := range a.Positions() {
		if t.Var {
			dst = append(dst, t.ID)
		}
	}
	return dst
}

// HasVar reports whether variable v occurs in the atom.
func (a Atom) HasVar(v uint32) bool {
	return a.S.Var && a.S.ID == v || a.P.Var && a.P.ID == v || a.O.Var && a.O.ID == v
}

// SharesVar reports whether the two atoms share at least one variable —
// the "joins with" relation used by query covers (Definition 3.3).
func (a Atom) SharesVar(b Atom) bool {
	for _, t := range a.Positions() {
		if t.Var && b.HasVar(t.ID) {
			return true
		}
	}
	return false
}

// Subst returns the atom with every occurrence of variable v replaced by
// term repl.
func (a Atom) Subst(v uint32, repl Term) Atom {
	sub := func(t Term) Term {
		if t.Var && t.ID == v {
			return repl
		}
		return t
	}
	return Atom{S: sub(a.S), P: sub(a.P), O: sub(a.O)}
}

// String renders the atom for debugging.
func (a Atom) String() string {
	return a.S.String() + " " + a.P.String() + " " + a.O.String()
}

// CQ is a conjunctive query: head terms over body atoms. Head entries are
// usually variables; reformulation can turn them into constants.
type CQ struct {
	Head  []Term
	Atoms []Atom
}

// MaxVar returns the largest variable number occurring in the query
// (head or body), and ok=false if the query has no variables.
func (q CQ) MaxVar() (max uint32, ok bool) {
	consider := func(t Term) {
		if t.Var && (!ok || t.ID > max) {
			max, ok = t.ID, true
		}
	}
	for _, t := range q.Head {
		consider(t)
	}
	for _, a := range q.Atoms {
		consider(a.S)
		consider(a.P)
		consider(a.O)
	}
	return max, ok
}

// VarSet returns the set of variables occurring in the body.
func (q CQ) VarSet() map[uint32]struct{} {
	set := make(map[uint32]struct{})
	var buf []uint32
	for _, a := range q.Atoms {
		buf = a.Vars(buf[:0])
		for _, v := range buf {
			set[v] = struct{}{}
		}
	}
	return set
}

// Subst returns a copy of the query with variable v replaced by repl in
// the head and every atom.
func (q CQ) Subst(v uint32, repl Term) CQ {
	out := CQ{Head: make([]Term, len(q.Head)), Atoms: make([]Atom, len(q.Atoms))}
	for i, t := range q.Head {
		if t.Var && t.ID == v {
			out.Head[i] = repl
		} else {
			out.Head[i] = t
		}
	}
	for i, a := range q.Atoms {
		out.Atoms[i] = a.Subst(v, repl)
	}
	return out
}

// Clone returns a deep copy of the query.
func (q CQ) Clone() CQ {
	out := CQ{Head: make([]Term, len(q.Head)), Atoms: make([]Atom, len(q.Atoms))}
	copy(out.Head, q.Head)
	copy(out.Atoms, q.Atoms)
	return out
}

// Key returns a canonical string for the query with variables renamed in
// order of first appearance, so two CQs equal up to variable renaming get
// the same key. Used for duplicate elimination in reformulation outputs.
func (q CQ) Key() string {
	rename := make(map[uint32]int)
	var b strings.Builder
	writeTerm := func(t Term) {
		if t.Var {
			n, ok := rename[t.ID]
			if !ok {
				n = len(rename)
				rename[t.ID] = n
			}
			fmt.Fprintf(&b, "?%d", n)
		} else {
			fmt.Fprintf(&b, "#%d", t.ID)
		}
		b.WriteByte(' ')
	}
	for _, t := range q.Head {
		writeTerm(t)
	}
	b.WriteByte('|')
	for _, a := range q.Atoms {
		writeTerm(a.S)
		writeTerm(a.P)
		writeTerm(a.O)
		b.WriteByte('.')
	}
	return b.String()
}

// canonMaxStates bounds the branch-and-bound frontier of CanonicalKey.
// Keeping every tie would be exponential in pathological symmetric queries;
// truncating the frontier can only make the chosen atom order suboptimal,
// never unsound (see CanonicalKey), so a small cap is safe.
const canonMaxStates = 256

// canonState is one partial atom ordering during canonicalization: which
// atoms were already emitted and the variable numbering they induced.
type canonState struct {
	mask   uint64
	rename map[uint32]int
}

// CanonicalKey returns a canonical string for the query that is invariant
// under variable renaming AND body-atom reordering, strengthening Key
// (which renames but is order-sensitive). Two CQs with equal canonical
// keys are isomorphic: every emitted key is the faithful rendering of the
// query under *some* atom permutation and first-appearance renaming, so
// equal keys always denote equal queries — the frontier cap above only
// risks two isomorphic queries picking different permutations (a missed
// match, e.g. a spurious cache miss), never a false match.
//
// The key is built greedily: the head is rendered first (pinning the head
// variables' canonical numbers), then at each step the unused atom whose
// rendering under the current numbering is lexicographically smallest is
// emitted, branching on ties. Queries with more than 64 atoms fall back
// to Key (the cover layer never sees them; see cover.MaxAtoms).
func (q CQ) CanonicalKey() string {
	if len(q.Atoms) > 64 {
		return q.Key()
	}
	base := make(map[uint32]int)
	var b strings.Builder
	for _, t := range q.Head {
		if t.Var {
			n, ok := base[t.ID]
			if !ok {
				n = len(base)
				base[t.ID] = n
			}
			fmt.Fprintf(&b, "?%d", n)
		} else {
			fmt.Fprintf(&b, "#%d", t.ID)
		}
		b.WriteByte(' ')
	}
	b.WriteByte('|')
	states := []canonState{{mask: 0, rename: base}}
	n := len(q.Atoms)
	for step := 0; step < n; step++ {
		var best string
		var next []canonState
		for _, st := range states {
			for i := 0; i < n; i++ {
				if st.mask&(1<<uint(i)) != 0 {
					continue
				}
				s, fresh := renderCanonAtom(q.Atoms[i], st.rename)
				if len(next) > 0 && s > best {
					continue
				}
				if len(next) == 0 || s < best {
					best = s
					next = next[:0]
				}
				r2 := make(map[uint32]int, len(st.rename)+len(fresh))
				for k, v := range st.rename {
					r2[k] = v
				}
				for _, v := range fresh {
					r2[v] = len(r2)
				}
				next = append(next, canonState{mask: st.mask | 1<<uint(i), rename: r2})
			}
		}
		b.WriteString(best)
		b.WriteByte('.')
		states = dedupCanonStates(next)
		if len(states) > canonMaxStates {
			states = states[:canonMaxStates]
		}
	}
	return b.String()
}

// renderCanonAtom renders the atom under the given variable numbering,
// numbering unseen variables on from len(rename) in order of appearance.
// It returns the rendering and the unseen variables in appearance order
// (so the caller can extend the numbering if it keeps this candidate).
func renderCanonAtom(a Atom, rename map[uint32]int) (string, []uint32) {
	var b strings.Builder
	var fresh []uint32
	for _, t := range a.Positions() {
		if !t.Var {
			fmt.Fprintf(&b, "#%d ", t.ID)
			continue
		}
		idx, ok := rename[t.ID]
		if !ok {
			idx = -1
			for j, v := range fresh {
				if v == t.ID {
					idx = len(rename) + j
					break
				}
			}
			if idx < 0 {
				idx = len(rename) + len(fresh)
				fresh = append(fresh, t.ID)
			}
		}
		fmt.Fprintf(&b, "?%d ", idx)
	}
	return b.String(), fresh
}

// dedupCanonStates drops states that are equivalent for every future
// rendering decision: same emitted-atom set and same induced numbering.
func dedupCanonStates(states []canonState) []canonState {
	if len(states) < 2 {
		return states
	}
	seen := make(map[string]struct{}, len(states))
	out := states[:0]
	for _, st := range states {
		inv := make([]uint32, len(st.rename))
		for v, i := range st.rename {
			inv[i] = v
		}
		var k strings.Builder
		fmt.Fprintf(&k, "%x|", st.mask)
		for _, v := range inv {
			fmt.Fprintf(&k, "%d,", v)
		}
		if _, dup := seen[k.String()]; dup {
			continue
		}
		seen[k.String()] = struct{}{}
		out = append(out, st)
	}
	return out
}

// String renders the query for debugging.
func (q CQ) String() string {
	var b strings.Builder
	b.WriteString("q(")
	for i, t := range q.Head {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	b.WriteString(") :- ")
	for i, a := range q.Atoms {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	return b.String()
}

// UCQ is a union of conjunctive queries. Vars names the head columns: for
// every member CQ, Head[i] produces the value of variable Vars[i]. All
// member heads have len(Vars) entries.
type UCQ struct {
	Vars []uint32
	CQs  []CQ
}

// Arity returns the number of head columns.
func (u UCQ) Arity() int { return len(u.Vars) }

// Validate checks the positional head invariant, returning a descriptive
// error on the first violation.
func (u UCQ) Validate() error {
	for i, q := range u.CQs {
		if len(q.Head) != len(u.Vars) {
			return fmt.Errorf("bgp: UCQ member %d has arity %d, want %d", i, len(q.Head), len(u.Vars))
		}
	}
	return nil
}

// JUCQ is a join of UCQs: the arms are joined on the variables they share
// (by name, via each arm's Vars), and the result is projected on Head.
// A JUCQ with a single arm is a plain UCQ; a JUCQ whose arms are all
// single-atom UCQ reformulations is the SCQ of Thomazo et al. that the
// paper generalizes.
type JUCQ struct {
	Head []uint32
	Arms []UCQ
}

// Validate checks that every head variable is produced by some arm.
func (j JUCQ) Validate() error {
	produced := make(map[uint32]struct{})
	for _, arm := range j.Arms {
		if err := arm.Validate(); err != nil {
			return err
		}
		for _, v := range arm.Vars {
			produced[v] = struct{}{}
		}
	}
	for _, v := range j.Head {
		if _, ok := produced[v]; !ok {
			return fmt.Errorf("bgp: JUCQ head variable ?v%d is not produced by any arm", v)
		}
	}
	return nil
}
