package bgp

import (
	"testing"
	"testing/quick"

	"repro/internal/dict"
)

func TestTermConstructors(t *testing.T) {
	v := V(3)
	if !v.Var || v.ID != 3 {
		t.Errorf("V(3) = %+v", v)
	}
	c := C(dict.ID(9))
	if c.Var || c.Const() != 9 {
		t.Errorf("C(9) = %+v", c)
	}
	defer func() {
		if recover() == nil {
			t.Error("Const on a variable did not panic")
		}
	}()
	v.Const()
}

func TestTermString(t *testing.T) {
	if V(2).String() != "?v2" || C(7).String() != "#7" {
		t.Errorf("String: %q %q", V(2).String(), C(7).String())
	}
}

func TestAtomVarsAndSharing(t *testing.T) {
	a := Atom{S: V(0), P: C(1), O: V(2)}
	b := Atom{S: V(2), P: C(3), O: V(4)}
	c := Atom{S: V(5), P: C(1), O: C(6)}

	if got := a.Vars(nil); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("Vars = %v", got)
	}
	if !a.HasVar(0) || a.HasVar(1) {
		t.Error("HasVar wrong")
	}
	if !a.SharesVar(b) {
		t.Error("a and b share ?v2")
	}
	if a.SharesVar(c) {
		t.Error("a and c share only a constant, not a variable")
	}
}

func TestAtomVarsRepeated(t *testing.T) {
	a := Atom{S: V(1), P: C(2), O: V(1)}
	if got := a.Vars(nil); len(got) != 2 {
		t.Errorf("repeated variable should appear twice: %v", got)
	}
}

func TestSubst(t *testing.T) {
	a := Atom{S: V(0), P: V(1), O: V(0)}
	got := a.Subst(0, C(9))
	want := Atom{S: C(9), P: V(1), O: C(9)}
	if got != want {
		t.Errorf("Subst = %v, want %v", got, want)
	}
	// Original unchanged.
	if a.S != V(0) {
		t.Error("Subst mutated the receiver")
	}
}

func TestCQSubstAndClone(t *testing.T) {
	q := CQ{
		Head:  []Term{V(0), V(1)},
		Atoms: []Atom{{S: V(0), P: C(5), O: V(1)}},
	}
	sub := q.Subst(1, C(7))
	if sub.Head[1] != C(7) || sub.Atoms[0].O != C(7) {
		t.Errorf("CQ.Subst = %v", sub)
	}
	if q.Head[1] != V(1) {
		t.Error("CQ.Subst mutated the receiver")
	}
	cl := q.Clone()
	cl.Atoms[0].S = C(99)
	if q.Atoms[0].S == C(99) {
		t.Error("Clone shares atom storage")
	}
}

func TestMaxVar(t *testing.T) {
	q := CQ{Head: []Term{V(2)}, Atoms: []Atom{{S: V(0), P: C(1), O: V(7)}}}
	if max, ok := q.MaxVar(); !ok || max != 7 {
		t.Errorf("MaxVar = %d, %v", max, ok)
	}
	empty := CQ{Head: []Term{C(1)}, Atoms: []Atom{{S: C(1), P: C(2), O: C(3)}}}
	if _, ok := empty.MaxVar(); ok {
		t.Error("MaxVar on variable-free query should report !ok")
	}
}

func TestVarSet(t *testing.T) {
	q := CQ{Atoms: []Atom{
		{S: V(0), P: C(1), O: V(2)},
		{S: V(2), P: V(3), O: C(4)},
	}}
	set := q.VarSet()
	for _, v := range []uint32{0, 2, 3} {
		if _, ok := set[v]; !ok {
			t.Errorf("VarSet missing %d", v)
		}
	}
	if len(set) != 3 {
		t.Errorf("VarSet = %v", set)
	}
}

// Key must be invariant under variable renaming and sensitive to
// structure.
func TestKeyRenamingInvariance(t *testing.T) {
	q1 := CQ{Head: []Term{V(0)}, Atoms: []Atom{{S: V(0), P: C(1), O: V(5)}}}
	q2 := CQ{Head: []Term{V(9)}, Atoms: []Atom{{S: V(9), P: C(1), O: V(3)}}}
	if q1.Key() != q2.Key() {
		t.Error("keys differ under pure renaming")
	}
	q3 := CQ{Head: []Term{V(0)}, Atoms: []Atom{{S: V(5), P: C(1), O: V(0)}}}
	if q1.Key() == q3.Key() {
		t.Error("structurally different queries share a key")
	}
}

func TestKeyQuick(t *testing.T) {
	// Renaming all variables by +k must preserve the key.
	f := func(a, b, c uint8, shift uint8) bool {
		k := uint32(shift) + 1
		q := CQ{
			Head:  []Term{V(uint32(a))},
			Atoms: []Atom{{S: V(uint32(a)), P: V(uint32(b)), O: V(uint32(c))}},
		}
		renamed := CQ{
			Head:  []Term{V(uint32(a) + k)},
			Atoms: []Atom{{S: V(uint32(a) + k), P: V(uint32(b) + k), O: V(uint32(c) + k)}},
		}
		return q.Key() == renamed.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUCQValidate(t *testing.T) {
	good := UCQ{Vars: []uint32{0}, CQs: []CQ{{Head: []Term{V(0)}, Atoms: []Atom{{S: V(0), P: C(1), O: V(2)}}}}}
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
	bad := UCQ{Vars: []uint32{0, 1}, CQs: good.CQs}
	if bad.Validate() == nil {
		t.Error("arity mismatch accepted")
	}
	if good.Arity() != 1 {
		t.Error("Arity wrong")
	}
}

func TestJUCQValidate(t *testing.T) {
	arm := UCQ{Vars: []uint32{0}, CQs: []CQ{{Head: []Term{V(0)}, Atoms: []Atom{{S: V(0), P: C(1), O: V(2)}}}}}
	good := JUCQ{Head: []uint32{0}, Arms: []UCQ{arm}}
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
	bad := JUCQ{Head: []uint32{7}, Arms: []UCQ{arm}}
	if bad.Validate() == nil {
		t.Error("unproduced head variable accepted")
	}
}

func TestCQString(t *testing.T) {
	q := CQ{Head: []Term{V(0)}, Atoms: []Atom{{S: V(0), P: C(1), O: C(2)}}}
	if q.String() != "q(?v0) :- ?v0 #1 #2" {
		t.Errorf("String = %q", q.String())
	}
}
