package bgp

import (
	"math/rand"
	"testing"

	"repro/internal/dict"
)

// permuted returns q with its atoms reordered by perm and every variable v
// renamed to off+v (head and body), i.e. an isomorphic copy.
func permuted(q CQ, perm []int, off uint32) CQ {
	ren := func(t Term) Term {
		if t.Var {
			return V(t.ID + off)
		}
		return t
	}
	out := CQ{Head: make([]Term, len(q.Head)), Atoms: make([]Atom, len(q.Atoms))}
	for i, t := range q.Head {
		out.Head[i] = ren(t)
	}
	for i, p := range perm {
		a := q.Atoms[p]
		out.Atoms[i] = Atom{S: ren(a.S), P: ren(a.P), O: ren(a.O)}
	}
	return out
}

func TestCanonicalKeyInvariance(t *testing.T) {
	// q(x) :- (x, 10, y), (y, 11, z), (z, 12, #5)
	q := CQ{
		Head: []Term{V(0)},
		Atoms: []Atom{
			{S: V(0), P: C(10), O: V(1)},
			{S: V(1), P: C(11), O: V(2)},
			{S: V(2), P: C(12), O: C(5)},
		},
	}
	want := q.CanonicalKey()
	perms := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for _, perm := range perms {
		for _, off := range []uint32{0, 7, 100} {
			p := permuted(q, perm, off)
			if got := p.CanonicalKey(); got != want {
				t.Errorf("perm %v off %d: key %q != %q", perm, off, got, want)
			}
			// Key is renaming-invariant but order-sensitive; make sure the
			// canonical key is doing strictly more than Key here.
			if perm[0] != 0 && p.Key() == q.Key() {
				t.Errorf("perm %v: raw Key unexpectedly order-invariant", perm)
			}
		}
	}
}

func TestCanonicalKeyDistinguishesQueries(t *testing.T) {
	a := CQ{Head: []Term{V(0)}, Atoms: []Atom{{S: V(0), P: C(10), O: V(1)}}}
	b := CQ{Head: []Term{V(0)}, Atoms: []Atom{{S: V(0), P: C(11), O: V(1)}}}
	if a.CanonicalKey() == b.CanonicalKey() {
		t.Fatal("different properties got the same canonical key")
	}
	// Same body, different head projection.
	c := CQ{Head: []Term{V(1)}, Atoms: a.Atoms}
	if a.CanonicalKey() == c.CanonicalKey() {
		t.Fatal("different heads got the same canonical key")
	}
	// Chain vs star: same atom count, same property multiset.
	chain := CQ{Head: []Term{V(0)}, Atoms: []Atom{
		{S: V(0), P: C(10), O: V(1)},
		{S: V(1), P: C(10), O: V(2)},
	}}
	star := CQ{Head: []Term{V(0)}, Atoms: []Atom{
		{S: V(0), P: C(10), O: V(1)},
		{S: V(0), P: C(10), O: V(2)},
	}}
	if chain.CanonicalKey() == star.CanonicalKey() {
		t.Fatal("chain and star shapes got the same canonical key")
	}
}

// TestCanonicalKeySymmetricTies exercises the tie-branching: in a symmetric
// star every body atom renders identically at step one, so a greedy
// no-backtracking canonicalization could diverge between permutations.
func TestCanonicalKeySymmetricTies(t *testing.T) {
	mk := func(perm []int, off uint32) CQ {
		q := CQ{Head: []Term{V(0)}, Atoms: []Atom{
			{S: V(0), P: C(10), O: V(1)},
			{S: V(0), P: C(10), O: V(2)},
			{S: V(0), P: C(10), O: V(3)},
			{S: V(1), P: C(11), O: V(2)},
		}}
		return permuted(q, perm, off)
	}
	want := mk([]int{0, 1, 2, 3}, 0).CanonicalKey()
	perms := [][]int{{3, 2, 1, 0}, {1, 3, 0, 2}, {2, 0, 3, 1}, {0, 3, 1, 2}}
	for _, perm := range perms {
		if got := mk(perm, 20).CanonicalKey(); got != want {
			t.Errorf("perm %v: key %q != %q", perm, got, want)
		}
	}
}

func TestCanonicalKeyRandomizedIsomorphism(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		nAtoms := 1 + rng.Intn(5)
		nVars := uint32(1 + rng.Intn(4))
		term := func() Term {
			if rng.Intn(2) == 0 {
				return V(uint32(rng.Intn(int(nVars))))
			}
			return C(dict.ID(rng.Intn(5) + 10))
		}
		q := CQ{Head: []Term{V(0)}}
		for i := 0; i < nAtoms; i++ {
			q.Atoms = append(q.Atoms, Atom{S: term(), P: term(), O: term()})
		}
		perm := rng.Perm(nAtoms)
		iso := permuted(q, perm, uint32(rng.Intn(50)))
		if q.CanonicalKey() != iso.CanonicalKey() {
			t.Fatalf("trial %d: isomorphic queries diverged\n  q=%v\n  iso=%v", trial, q, iso)
		}
	}
}

func TestCanonicalKeyFallsBackPastMaxAtoms(t *testing.T) {
	q := CQ{Head: []Term{V(0)}}
	for i := 0; i < 65; i++ {
		q.Atoms = append(q.Atoms, Atom{S: V(0), P: C(dict.ID(i + 1)), O: V(uint32(i + 1))})
	}
	if q.CanonicalKey() != q.Key() {
		t.Fatal("queries past 64 atoms must fall back to Key")
	}
}
