package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// Render writes the span tree as an indented EXPLAIN ANALYZE-style
// report: one line per span with its duration and attributes, children
// indented under their parent. Rendering a nil span writes nothing.
//
//	query                            1.282ms
//	  optimize                       411µs    strategy=gcov covers_explored=5
//	  evaluate                       729µs    arms=2 rows_out=208
//	    arm[0]                       312µs    members=12 rows_out=845
func (s *Span) Render(w io.Writer) error {
	if s == nil {
		return nil
	}
	width := s.nameWidth(0)
	return s.render(w, 0, width)
}

// nameWidth returns the widest indent+name of the subtree, for column
// alignment.
func (s *Span) nameWidth(depth int) int {
	width := 2*depth + len(s.name)
	for _, c := range s.Children() {
		if cw := c.nameWidth(depth + 1); cw > width {
			width = cw
		}
	}
	return width
}

func (s *Span) render(w io.Writer, depth, width int) error {
	indent := strings.Repeat("  ", depth)
	line := fmt.Sprintf("%s%-*s  %-9s", indent, width-len(indent), s.name, formatDur(s.Duration()))
	for _, a := range s.Attrs() {
		switch {
		case a.IsStr:
			line += fmt.Sprintf(" %s=%s", a.Key, a.Str)
		case a.IsFloat:
			line += fmt.Sprintf(" %s=%.4g", a.Key, a.Float)
		default:
			line += fmt.Sprintf(" %s=%d", a.Key, a.Int)
		}
	}
	if _, err := fmt.Fprintf(w, "%s\n", strings.TrimRight(line, " ")); err != nil {
		return err
	}
	for _, c := range s.Children() {
		if err := c.render(w, depth+1, width); err != nil {
			return err
		}
	}
	return nil
}

// formatDur renders a duration at a precision that keeps trace lines
// readable: sub-microsecond noise is dropped once a span reaches the
// microsecond range.
func formatDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	case d >= time.Microsecond:
		return d.Round(100 * time.Nanosecond).String()
	default:
		return d.String()
	}
}

// spanJSON is the export shape of one span.
type spanJSON struct {
	Name     string             `json:"name"`
	Ns       int64              `json:"ns"`
	Counters map[string]int64   `json:"counters,omitempty"`
	Labels   map[string]string  `json:"labels,omitempty"`
	Floats   map[string]float64 `json:"floats,omitempty"`
	Children []json.RawMessage  `json:"children,omitempty"`
}

// MarshalJSON exports the span tree: per span its name, duration in
// nanoseconds, numeric attributes as "counters", string attributes as
// "labels", float attributes (optimizer estimates) as "floats", and
// children in creation order.
func (s *Span) MarshalJSON() ([]byte, error) {
	if s == nil {
		return []byte("null"), nil
	}
	out := spanJSON{Name: s.Name(), Ns: s.Duration().Nanoseconds()}
	for _, a := range s.Attrs() {
		switch {
		case a.IsStr:
			if out.Labels == nil {
				out.Labels = make(map[string]string)
			}
			out.Labels[a.Key] = a.Str
		case a.IsFloat:
			if out.Floats == nil {
				out.Floats = make(map[string]float64)
			}
			out.Floats[a.Key] = a.Float
		default:
			if out.Counters == nil {
				out.Counters = make(map[string]int64)
			}
			out.Counters[a.Key] = a.Int
		}
	}
	for _, c := range s.Children() {
		raw, err := c.MarshalJSON()
		if err != nil {
			return nil, err
		}
		out.Children = append(out.Children, raw)
	}
	return json.Marshal(out)
}

// WriteJSON writes the registry's counters as one JSON object with
// sorted keys (encoding/json sorts map keys), followed by a newline.
// A nil registry writes an empty object.
func (r *Registry) WriteJSON(w io.Writer) error {
	snap := r.Snapshot()
	if snap == nil {
		snap = map[string]int64{}
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}
