package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTree(t *testing.T) {
	root := New("query")
	opt := root.Child("optimize")
	opt.SetStr("strategy", "gcov")
	opt.SetInt("covers_explored", 5)
	opt.AddInt("memo_hits", 2)
	opt.AddInt("memo_hits", 3)
	opt.End()
	ev := root.Child("evaluate")
	arm := ev.Child("arm[0]")
	arm.SetInt("rows_out", 7)
	arm.End()
	ev.End()
	root.End()

	if got := len(root.Children()); got != 2 {
		t.Fatalf("root has %d children, want 2", got)
	}
	if root.Find("arm[0]") == nil {
		t.Fatal("Find(arm[0]) = nil")
	}
	if v, ok := opt.IntAttr("memo_hits"); !ok || v != 5 {
		t.Errorf("memo_hits = %d, %v; want 5, true", v, ok)
	}
	if v, ok := opt.IntAttr("covers_explored"); !ok || v != 5 {
		t.Errorf("covers_explored = %d, %v; want 5, true", v, ok)
	}
	opt.SetInt("covers_explored", 9)
	if v, _ := opt.IntAttr("covers_explored"); v != 9 {
		t.Errorf("SetInt overwrite: covers_explored = %d, want 9", v)
	}
	if root.Duration() <= 0 {
		t.Error("root duration not recorded")
	}
}

func TestEndIsIdempotent(t *testing.T) {
	s := New("x")
	time.Sleep(time.Millisecond)
	s.End()
	d := s.Duration()
	time.Sleep(2 * time.Millisecond)
	s.End()
	if s.Duration() != d {
		t.Errorf("second End changed duration: %v -> %v", d, s.Duration())
	}
}

// Every method must be a no-op on a nil span, nil registry and nil
// counter: that is the disabled-trace contract the hot path relies on.
func TestNilSafety(t *testing.T) {
	var s *Span
	c := s.Child("x")
	if c != nil {
		t.Fatal("nil.Child returned a live span")
	}
	s.End()
	s.SetInt("k", 1)
	s.AddInt("k", 1)
	s.SetStr("k", "v")
	if s.Registry() != nil {
		t.Error("nil.Registry() != nil")
	}
	s.Counter("n").Add(3)
	if s.Counter("n").Value() != 0 {
		t.Error("nil counter accumulated")
	}
	if s.Name() != "" || s.Duration() != 0 || s.Attrs() != nil || s.Children() != nil || s.Find("x") != nil {
		t.Error("nil span accessors not zero")
	}
	if _, ok := s.IntAttr("k"); ok {
		t.Error("nil.IntAttr found an attribute")
	}
	var buf bytes.Buffer
	if err := s.Render(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil.Render wrote %q, err %v", buf.String(), err)
	}
	var r *Registry
	if r.Counter("x") != nil || r.Snapshot() != nil || r.Names() != nil {
		t.Error("nil registry not inert")
	}
	if err := r.WriteJSON(&buf); err != nil {
		t.Errorf("nil registry WriteJSON: %v", err)
	}
}

// The disabled trace must be allocation-free: this is the contract the
// engine's JUCQ hot path builds on (the bench.sh tracealloc check
// verifies the same property end to end on a full evaluation).
func TestDisabledTraceAllocFree(t *testing.T) {
	var s *Span
	allocs := testing.AllocsPerRun(1000, func() {
		c := s.Child("arm")
		c.SetInt("rows", 1)
		c.AddInt("rows", 1)
		c.Counter("rows").Add(1)
		c.End()
		s.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled trace allocates: %.1f allocs/op, want 0", allocs)
	}
}

func TestConcurrentSpansAndCounters(t *testing.T) {
	root := New("query")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c := root.Child("shard")
				c.AddInt("rows", 1)
				c.End()
				root.AddInt("total", 1)
				root.Counter("rows").Add(1)
			}
		}()
	}
	wg.Wait()
	if got := len(root.Children()); got != 800 {
		t.Errorf("children = %d, want 800", got)
	}
	if v, _ := root.IntAttr("total"); v != 800 {
		t.Errorf("total attr = %d, want 800", v)
	}
	if got := root.Counter("rows").Value(); got != 800 {
		t.Errorf("rows counter = %d, want 800", got)
	}
}

func TestRender(t *testing.T) {
	root := New("query")
	opt := root.Child("optimize")
	opt.SetStr("strategy", "gcov")
	opt.SetInt("covers_explored", 5)
	opt.End()
	root.End()
	var buf bytes.Buffer
	if err := root.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("rendered %d lines, want 2:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "query") {
		t.Errorf("line 0 = %q, want query first", lines[0])
	}
	if !strings.HasPrefix(lines[1], "  optimize") {
		t.Errorf("line 1 = %q, want indented optimize", lines[1])
	}
	if !strings.Contains(lines[1], "strategy=gcov") || !strings.Contains(lines[1], "covers_explored=5") {
		t.Errorf("line 1 missing attrs: %q", lines[1])
	}
}

func TestJSONExport(t *testing.T) {
	root := New("query")
	ev := root.Child("evaluate")
	ev.SetInt("rows_out", 3)
	ev.SetStr("profile", "native")
	ev.End()
	root.End()
	root.Counter("engine.evals").Add(1)

	data, err := json.Marshal(root)
	if err != nil {
		t.Fatal(err)
	}
	var got spanJSON
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Name != "query" || len(got.Children) != 1 {
		t.Errorf("span JSON = %+v", got)
	}
	var child spanJSON
	if err := json.Unmarshal(got.Children[0], &child); err != nil {
		t.Fatal(err)
	}
	if child.Counters["rows_out"] != 3 || child.Labels["profile"] != "native" {
		t.Errorf("child JSON = %+v", child)
	}

	var buf bytes.Buffer
	if err := root.Registry().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap map[string]int64
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap["engine.evals"] != 1 {
		t.Errorf("registry JSON = %v", snap)
	}
}

func TestFloatAttrs(t *testing.T) {
	root := New("query")
	ev := root.Child("evaluate")
	ev.SetFloat("est_rows", 1234.5)
	ev.SetFloat("est_rows", 99.25) // overwrite
	ev.SetInt("rows_out", 80)
	ev.SetInt("est_rows", 7) // distinct kind, same key: must not clobber the float
	ev.End()
	root.End()

	if v, ok := ev.FloatAttr("est_rows"); !ok || v != 99.25 {
		t.Errorf("FloatAttr(est_rows) = %v, %v; want 99.25, true", v, ok)
	}
	if v, ok := ev.IntAttr("est_rows"); !ok || v != 7 {
		t.Errorf("IntAttr(est_rows) = %v, %v; want 7, true", v, ok)
	}
	if _, ok := ev.FloatAttr("rows_out"); ok {
		t.Error("FloatAttr must not see int attrs")
	}

	var buf bytes.Buffer
	if err := root.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "est_rows=99.25") {
		t.Errorf("render missing float attr:\n%s", buf.String())
	}

	data, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	var got spanJSON
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Floats["est_rows"] != 99.25 || got.Counters["rows_out"] != 80 {
		t.Errorf("float JSON = %+v", got)
	}

	// nil safety
	var nilSpan *Span
	nilSpan.SetFloat("x", 1)
	if _, ok := nilSpan.FloatAttr("x"); ok {
		t.Error("nil span FloatAttr must report absent")
	}
}
