// Package trace is the query-lifecycle tracing and metrics subsystem:
// a tree of timed spans covering parse → reformulate → cover search →
// evaluation, plus a registry of named atomic counters, both exportable
// as an indented EXPLAIN ANALYZE-style report or as JSON.
//
// The design goal is that tracing *off* is free on the hot path. A nil
// *Span is a disabled trace: every method is a nil-safe no-op that
// returns immediately, so instrumented code threads spans
// unconditionally and pays exactly one nil check (and zero allocations)
// per instrumentation point when tracing is off. Call sites that would
// have to format a span name or stringify an attribute guard that work
// behind an explicit nil check so the formatting cost is also only paid
// when tracing is on.
//
// A trace is created with New, which roots the span tree and attaches a
// fresh counter Registry shared by every descendant span. Spans are safe
// for concurrent use: parallel arm and shard workers may create children
// of one parent and set attributes on their own spans concurrently.
package trace

import (
	"sync"
	"time"
)

// Attr is one key/value annotation of a span: an operator counter
// (rows in/out, dedup hits, covers explored, ...), a string label
// (strategy, join algorithm), or a float measurement (estimated
// cardinalities and costs from the optimizer).
type Attr struct {
	Key string
	// Int is the value of a numeric attribute (IsStr and IsFloat false).
	Int int64
	// Str is the value of a string attribute (IsStr true).
	Str   string
	IsStr bool
	// Float is the value of a float attribute (IsFloat true).
	Float   float64
	IsFloat bool
}

// Span is one timed node of a query-lifecycle trace. The zero of the
// type is not used directly: create roots with New and descendants with
// Child. A nil *Span disables the whole subtree — see the package
// comment.
type Span struct {
	name  string
	start time.Time
	reg   *Registry

	mu       sync.Mutex
	dur      time.Duration
	ended    bool
	attrs    []Attr
	children []*Span
}

// New starts a root span with a fresh counter registry.
func New(name string) *Span {
	return &Span{name: name, start: time.Now(), reg: NewRegistry()}
}

// Child starts a sub-span. It returns nil (the disabled trace) when s is
// nil, so instrumentation chains without checks. The child shares the
// root's counter registry.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now(), reg: s.reg}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End records the span's duration. The first call wins; later calls
// (and calls on nil) are no-ops, so deferred Ends are safe next to
// explicit ones on early-return paths.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.dur = time.Since(s.start)
		s.ended = true
	}
	s.mu.Unlock()
}

// SetInt sets (or overwrites) a numeric attribute.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.setIntLocked(key, v, false)
	s.mu.Unlock()
}

// AddInt accumulates into a numeric attribute, creating it at v. Safe
// for concurrent accumulation from several workers.
func (s *Span) AddInt(key string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.setIntLocked(key, v, true)
	s.mu.Unlock()
}

func (s *Span) setIntLocked(key string, v int64, add bool) {
	for i := range s.attrs {
		if s.attrs[i].Key == key && !s.attrs[i].IsStr && !s.attrs[i].IsFloat {
			if add {
				s.attrs[i].Int += v
			} else {
				s.attrs[i].Int = v
			}
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Int: v})
}

// SetStr sets (or overwrites) a string attribute.
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	for i := range s.attrs {
		if s.attrs[i].Key == key && s.attrs[i].IsStr {
			s.attrs[i].Str = v
			s.mu.Unlock()
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Str: v, IsStr: true})
	s.mu.Unlock()
}

// SetFloat sets (or overwrites) a float attribute. Floats carry the
// optimizer's estimates (cardinalities, priced costs) next to the
// observed integer counters, so a rendered trace shows estimated vs
// actual side by side.
func (s *Span) SetFloat(key string, v float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	for i := range s.attrs {
		if s.attrs[i].Key == key && s.attrs[i].IsFloat {
			s.attrs[i].Float = v
			s.mu.Unlock()
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Float: v, IsFloat: true})
	s.mu.Unlock()
}

// Registry returns the counter registry shared by the span tree, or nil
// for a disabled trace (a nil Registry is itself a no-op sink).
func (s *Span) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// Counter returns the named counter of the tree's registry (nil, a
// no-op, for a disabled trace).
func (s *Span) Counter(name string) *Counter {
	return s.Registry().Counter(name)
}

// Name returns the span's name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the recorded duration: the End-to-start interval, or
// the live elapsed time for a span not yet ended (0 on nil).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		return time.Since(s.start)
	}
	return s.dur
}

// Attrs returns a snapshot of the span's attributes in insertion order.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// Children returns a snapshot of the sub-spans in creation order.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Find returns the first span named name in a depth-first walk of the
// subtree rooted at s (including s itself), or nil.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	if s.name == name {
		return s
	}
	for _, c := range s.Children() {
		if hit := c.Find(name); hit != nil {
			return hit
		}
	}
	return nil
}

// IntAttr returns the value of a numeric attribute (0, false when the
// span is nil or the attribute is absent).
func (s *Span) IntAttr(key string) (int64, bool) {
	for _, a := range s.Attrs() {
		if a.Key == key && !a.IsStr && !a.IsFloat {
			return a.Int, true
		}
	}
	return 0, false
}

// FloatAttr returns the value of a float attribute (0, false when the
// span is nil or the attribute is absent).
func (s *Span) FloatAttr(key string) (float64, bool) {
	for _, a := range s.Attrs() {
		if a.Key == key && a.IsFloat {
			return a.Float, true
		}
	}
	return 0, false
}
