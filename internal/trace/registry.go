package trace

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a named atomic counter. A nil *Counter (from a disabled
// trace's registry) absorbs Add calls and reads as 0, so counter
// handles thread through instrumented code the same way spans do.
type Counter struct {
	v atomic.Int64
}

// Add adds n to the counter (no-op on nil).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Registry is a set of named atomic counters, created once per trace
// and shared by every span of the tree. A nil *Registry is the disabled
// registry: Counter returns nil and Snapshot returns nothing.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{counters: make(map[string]*Counter)}
}

// Counter returns the counter registered under name, creating it on
// first use. Safe for concurrent use; nil registries return nil.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	r.mu.Unlock()
	return c
}

// Snapshot returns the current value of every counter, keyed by name.
func (r *Registry) Snapshot() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	r.mu.Unlock()
	return out
}

// Names returns the registered counter names, sorted, so exports are
// deterministic.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	r.mu.Unlock()
	sort.Strings(names)
	return names
}
