package core_test

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/plancache"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/testkit"
	"repro/internal/trace"
)

// cachedAnswerer builds an answerer over the Paper fixture with the given
// plan cache, returning the answerer and its (mutable) raw store.
func cachedAnswerer(e *testkit.Example, pc *plancache.Cache, opts core.Options) (*core.Answerer, *storage.Store) {
	raw := e.RawStore()
	opts.PlanCache = pc
	eng := engine.New(raw, stats.Collect(raw, e.Vocab), engine.Native)
	return core.NewAnswerer(e.Closed, eng, nil, opts), raw
}

// renameAndReorder returns an isomorphic copy of q: variables shifted by
// off, atoms rotated by one.
func renameAndReorder(q bgp.CQ, off uint32) bgp.CQ {
	ren := func(t bgp.Term) bgp.Term {
		if t.Var {
			return bgp.V(t.ID + off)
		}
		return t
	}
	out := bgp.CQ{Head: make([]bgp.Term, len(q.Head))}
	for i, t := range q.Head {
		out.Head[i] = ren(t)
	}
	for i := range q.Atoms {
		a := q.Atoms[(i+1)%len(q.Atoms)]
		out.Atoms = append(out.Atoms, bgp.Atom{S: ren(a.S), P: ren(a.P), O: ren(a.O)})
	}
	return out
}

// paperQuery is Example 3's first two atoms: authors and their names.
func paperQuery(e *testkit.Example) bgp.CQ {
	return bgp.CQ{
		Head: []bgp.Term{bgp.V(0), bgp.V(2)},
		Atoms: []bgp.Atom{
			{S: bgp.V(0), P: bgp.C(e.ID("hasAuthor")), O: bgp.V(1)},
			{S: bgp.V(1), P: bgp.C(e.ID("hasName")), O: bgp.V(2)},
		},
	}
}

// A repeated query that differs only by variable renaming and atom order
// must be answered from the cache, skipping the optimize and reformulate
// stages, with rows identical to an uncached answerer's.
func TestCacheHitAcrossRenaming(t *testing.T) {
	e := testkit.Paper()
	pc := plancache.New(0)
	a, _ := cachedAnswerer(e, pc, core.Options{})
	plain, _ := cachedAnswerer(e, nil, core.Options{})
	q := paperQuery(e)

	cold, err := a.Answer(q, core.GCov)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Report.Cached {
		t.Fatal("first answer reported Cached")
	}

	q2 := renameAndReorder(q, 40)
	root := trace.New("query")
	warm, err := a.WithTrace(root).Answer(q2, core.GCov)
	if err != nil {
		t.Fatal(err)
	}
	root.End()
	if !warm.Report.Cached {
		t.Fatal("renamed+reordered repeat was not answered from the cache")
	}
	// Byte-identical relations: the cached plan replays the original
	// query's arms, whose columns correspond positionally.
	if !reflect.DeepEqual(cold.Rel.Rows, warm.Rel.Rows) {
		t.Fatalf("cached rows differ:\n got %v\nwant %v", warm.Rel.Rows, cold.Rel.Rows)
	}
	uncached, err := plain.Answer(q2, core.GCov)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(uncached.Rel.Rows, warm.Rel.Rows) {
		t.Fatalf("cached answer differs from uncached:\n got %v\nwant %v", warm.Rel.Rows, uncached.Rel.Rows)
	}

	// The trace must show the skipped stages: no optimize or reformulate
	// child, an evaluate child marked cached, and a hit counter.
	for _, child := range root.Children() {
		if child.Name() == "optimize" || child.Name() == "reformulate" {
			t.Errorf("cached answer still ran the %q stage", child.Name())
		}
	}
	if got := root.Counter("plancache.hits").Value(); got != 1 {
		t.Errorf("plancache.hits = %d, want 1", got)
	}
	if got := root.Counter("search.covers_priced").Value(); got != 0 {
		t.Errorf("cached answer priced %d covers, want 0", got)
	}
	if st := pc.Snapshot(); st.Hits != 1 || st.Misses != 1 {
		t.Errorf("cache counters = %+v, want 1 hit / 1 miss", st)
	}

	// The report must replay the optimizer's findings.
	if !reflect.DeepEqual(warm.Report.Cover, cold.Report.Cover) ||
		warm.Report.TotalCQs != cold.Report.TotalCQs ||
		warm.Report.EstimatedCost != cold.Report.EstimatedCost {
		t.Errorf("cached report diverges: %+v vs %+v", warm.Report, cold.Report)
	}
}

// After a Store.Add or Remove the next answer must reflect the new data:
// the store version moved, so the entry is invalidated, and the fresh
// statistics price the new plan.
func TestCacheInvalidatedByMutation(t *testing.T) {
	e := testkit.Paper()
	pc := plancache.New(0)
	a, raw := cachedAnswerer(e, pc, core.Options{})
	q := bgp.CQ{
		Head:  []bgp.Term{bgp.V(0), bgp.V(1)},
		Atoms: []bgp.Atom{{S: bgp.V(0), P: bgp.C(e.ID("hasAuthor")), O: bgp.V(1)}},
	}
	first, err := a.Answer(q, core.GCov)
	if err != nil {
		t.Fatal(err)
	}

	// New triple matching the query directly.
	extra := storage.Triple{S: 900_001, P: e.ID("hasAuthor"), O: 900_002}
	if !raw.Add(extra) {
		t.Fatal("Add failed")
	}
	root := trace.New("query")
	second, err := a.WithTrace(root).Answer(q, core.GCov)
	if err != nil {
		t.Fatal(err)
	}
	if second.Report.Cached {
		t.Fatal("post-mutation answer served from the cache")
	}
	if got, want := len(second.Rel.Rows), len(first.Rel.Rows)+1; got != want {
		t.Fatalf("post-Add answer has %d rows, want %d", got, want)
	}
	found := false
	for _, row := range second.Rel.Rows {
		if row[0] == extra.S && row[1] == extra.O {
			found = true
		}
	}
	if !found {
		t.Fatal("post-Add answer misses the new triple")
	}
	if got := root.Counter("plancache.invalidations").Value(); got != 1 {
		t.Errorf("plancache.invalidations = %d, want 1", got)
	}

	// Remove restores the original content; the re-installed entry must be
	// invalidated again (version moved even though content matches an old
	// state) and the answer must drop the row.
	if !raw.Remove(extra) {
		t.Fatal("Remove failed")
	}
	third, err := a.Answer(q, core.GCov)
	if err != nil {
		t.Fatal(err)
	}
	if third.Report.Cached {
		t.Fatal("post-Remove answer served from the cache")
	}
	if !reflect.DeepEqual(third.Rel.Rows, first.Rel.Rows) {
		t.Fatalf("post-Remove answer differs from the original:\n got %v\nwant %v", third.Rel.Rows, first.Rel.Rows)
	}

	// Steady state again: the repeat is a hit.
	fourth, err := a.Answer(q, core.GCov)
	if err != nil {
		t.Fatal(err)
	}
	if !fourth.Report.Cached {
		t.Fatal("steady-state repeat missed the cache")
	}
}

// Concurrent cached readers against a concurrent mutator, under -race:
// every answer must be either the pre-Add or the post-Add relation (never
// a torn mix), and once the mutator is done the cached and uncached
// answers must be byte-identical again.
func TestCacheConcurrentReadersAndMutator(t *testing.T) {
	e := testkit.Paper()
	pc := plancache.New(0)
	a, raw := cachedAnswerer(e, pc, core.Options{})
	plain, _ := cachedAnswerer(e, nil, core.Options{})
	q := bgp.CQ{
		Head:  []bgp.Term{bgp.V(0), bgp.V(1)},
		Atoms: []bgp.Atom{{S: bgp.V(0), P: bgp.C(e.ID("hasAuthor")), O: bgp.V(1)}},
	}
	before, err := a.Answer(q, core.GCov)
	if err != nil {
		t.Fatal(err)
	}
	extra := storage.Triple{S: 900_001, P: e.ID("hasAuthor"), O: 900_002}
	withExtra, err := func() (*core.Answer, error) {
		raw.Add(extra)
		defer raw.Remove(extra)
		return a.Answer(q, core.GCov)
	}()
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	mutatorDone := make(chan struct{})
	go func() {
		defer close(mutatorDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				// Leave the store in its original state.
				raw.Remove(extra)
				return
			default:
			}
			if i%2 == 0 {
				raw.Add(extra)
			} else {
				raw.Remove(extra)
			}
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				qi := renameAndReorder(q, uint32(1+(i%5)))
				ans, err := a.Answer(qi, core.GCov)
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if !reflect.DeepEqual(ans.Rel.Rows, before.Rel.Rows) &&
					!reflect.DeepEqual(ans.Rel.Rows, withExtra.Rel.Rows) {
					t.Errorf("worker %d: torn answer with %d rows", w, len(ans.Rel.Rows))
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-mutatorDone

	// Quiescent again: cached and uncached answers agree byte-for-byte.
	final, err := a.Answer(q, core.GCov)
	if err != nil {
		t.Fatal(err)
	}
	uncached, err := plain.Answer(q, core.GCov)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(final.Rel.Rows, uncached.Rel.Rows) {
		t.Fatalf("post-quiescence divergence:\n cached %v\n plain %v", final.Rel.Rows, uncached.Rel.Rows)
	}
	if !reflect.DeepEqual(final.Rel.Rows, before.Rel.Rows) {
		t.Fatalf("store content not restored:\n got %v\nwant %v", final.Rel.Rows, before.Rel.Rows)
	}
}

// Entries are validated against a store version stamp; pinned snapshots
// expose the same counter, so a Get keyed on Snapshot().Version() must
// classify entries exactly as one keyed on Store.Version() — Hit while
// the store is unchanged, Stale as soon as it mutates.
func TestCacheValidationAgreesWithSnapshotVersion(t *testing.T) {
	b := storage.NewBuilder()
	b.Add(storage.Triple{S: 1, P: 2, O: 3})
	raw := b.Build()
	pc := plancache.New(0)
	const stamp = 7
	put := func() {
		pc.Put(&plancache.Entry{Key: "k", StoreVersion: raw.Version(), SchemaStamp: stamp})
	}

	put()
	if sv, snv := raw.Version(), raw.Snapshot().Version(); sv != snv {
		t.Fatalf("snapshot version %d, store version %d", snv, sv)
	}
	if _, out := pc.Get("k", raw.Version(), stamp); out != plancache.Hit {
		t.Fatalf("store-version Get = %v, want Hit", out)
	}
	if _, out := pc.Get("k", raw.Snapshot().Version(), stamp); out != plancache.Hit {
		t.Fatalf("snapshot-version Get = %v, want Hit", out)
	}

	// Mutation moves both versions together; a stale Get drops the entry,
	// so reinstall between the two probes.
	raw.Add(storage.Triple{S: 4, P: 5, O: 6})
	if _, out := pc.Get("k", raw.Snapshot().Version(), stamp); out != plancache.Stale {
		t.Fatalf("post-Add snapshot-version Get = %v, want Stale", out)
	}
	put()
	if _, out := pc.Get("k", raw.Version(), stamp); out != plancache.Hit {
		t.Fatalf("reinstalled store-version Get = %v, want Hit", out)
	}
	raw.Remove(storage.Triple{S: 4, P: 5, O: 6})
	if _, out := pc.Get("k", raw.Version(), stamp); out != plancache.Stale {
		t.Fatalf("post-Remove store-version Get = %v, want Stale", out)
	}
}

// Results for every strategy must be unchanged by the cache, both on the
// install pass and the hit pass.
func TestCachePreservesAllStrategies(t *testing.T) {
	e := testkit.Paper()
	pc := plancache.New(0)
	a, _ := cachedAnswerer(e, pc, core.Options{})
	plain, _ := cachedAnswerer(e, nil, core.Options{})
	q := paperQuery(e)
	for _, strat := range []core.Strategy{core.UCQ, core.SCQ, core.ECov, core.GCov} {
		want, err := plain.Answer(q, strat)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		for pass := 0; pass < 2; pass++ {
			got, err := a.Answer(q, strat)
			if err != nil {
				t.Fatalf("%s pass %d: %v", strat, pass, err)
			}
			if got.Report.Cached != (pass == 1) {
				t.Errorf("%s pass %d: Cached = %v", strat, pass, got.Report.Cached)
			}
			if !reflect.DeepEqual(got.Rel.Rows, want.Rel.Rows) {
				t.Errorf("%s pass %d: rows differ", strat, pass)
			}
		}
	}
	// Four strategies, two passes each: 4 misses then 4 hits, and the
	// strategies must not collide on one signature.
	if st := pc.Snapshot(); st.Hits != 4 || st.Misses != 4 {
		t.Errorf("cache counters = %+v, want 4 hits / 4 misses", st)
	}
}
