package core_test

import (
	"bytes"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/naive"
	"repro/internal/stats"
	"repro/internal/testkit"
	"repro/internal/trace"
)

// Answering with Options.Trace attached must record the optimize,
// reformulate and evaluate stages — and leave the answer identical to
// an untraced run.
func TestAnswerRecordsLifecycleTrace(t *testing.T) {
	e := testkit.Random(2, 60)
	rng := rand.New(rand.NewSource(42))
	var q = testkit.RandomQuery(e, rng)
	for !coverableQuery(q) {
		q = testkit.RandomQuery(e, rng)
	}

	plain := answererFor(e, engine.Native, core.Options{Parallelism: 1})
	want, err := plain.Answer(q, core.GCov)
	if err != nil {
		t.Fatal(err)
	}

	root := trace.New("query")
	traced := answererFor(e, engine.Native, core.Options{Parallelism: 1, Trace: root})
	got, err := traced.Answer(q, core.GCov)
	root.End()
	if err != nil {
		t.Fatal(err)
	}
	if !naive.Equal(relRows(got.Rel), relRows(want.Rel)) {
		t.Fatal("traced answer differs from untraced")
	}

	opt := root.Find("optimize")
	if opt == nil {
		t.Fatal("no optimize span recorded")
	}
	if v, ok := opt.IntAttr("covers_explored"); !ok || v != int64(got.Report.CoversExplored) {
		t.Errorf("optimize covers_explored = %d, %v; want %d", v, ok, got.Report.CoversExplored)
	}
	if v, ok := opt.IntAttr("gcov_rounds"); !ok || v <= 0 {
		t.Errorf("optimize gcov_rounds = %d, %v; want > 0", v, ok)
	}
	ref := root.Find("reformulate")
	if ref == nil {
		t.Fatal("no reformulate span recorded")
	}
	if got := len(ref.Children()); got != len(want.Report.Cover) {
		t.Errorf("reformulate has %d fragment spans, want %d", got, len(want.Report.Cover))
	}
	ev := root.Find("evaluate")
	if ev == nil {
		t.Fatal("no evaluate span recorded")
	}
	if v, ok := ev.IntAttr("rows_out"); !ok || v != int64(want.Rel.Len()) {
		t.Errorf("evaluate rows_out = %d, %v; want %d", v, ok, want.Rel.Len())
	}
	if got := root.Counter("engine.evals").Value(); got != 1 {
		t.Errorf("engine.evals counter = %d, want 1", got)
	}

	var buf bytes.Buffer
	if err := root.Render(&buf); err != nil {
		t.Fatal(err)
	}
	for _, needle := range []string{"optimize", "reformulate", "evaluate", "strategy=gcov"} {
		if !strings.Contains(buf.String(), needle) {
			t.Errorf("rendered trace missing %q:\n%s", needle, buf.String())
		}
	}
}

// WithTrace must attach the trace to a copy: the original answerer stays
// untraced, so harnesses can attach a fresh root per run.
func TestWithTraceDoesNotMutateOriginal(t *testing.T) {
	e := testkit.Random(2, 40)
	rng := rand.New(rand.NewSource(7))
	var q = testkit.RandomQuery(e, rng)
	for !coverableQuery(q) {
		q = testkit.RandomQuery(e, rng)
	}
	a := answererFor(e, engine.Native, core.Options{Parallelism: 1})
	root := trace.New("query")
	if _, err := a.WithTrace(root).Answer(q, core.GCov); err != nil {
		t.Fatal(err)
	}
	before := len(root.Children())
	if before == 0 {
		t.Fatal("traced copy recorded nothing")
	}
	if _, err := a.Answer(q, core.GCov); err != nil {
		t.Fatal(err)
	}
	if got := len(root.Children()); got != before {
		t.Errorf("answering through the original grew the trace: %d -> %d spans", before, got)
	}
}

// An ECov search aborted mid-stream (budget expiry with a parallel
// pricing pool) must wind its worker pool down completely: no goroutine
// may outlive ChooseCover.
func TestECovAbortLeaksNoGoroutines(t *testing.T) {
	e := testkit.Random(6, 50)
	rng := rand.New(rand.NewSource(11))
	var q = testkit.RandomQuery(e, rng)
	for !coverableQuery(q) || len(q.Atoms) < 3 {
		q = testkit.RandomQuery(e, rng)
	}
	baseline := runtime.NumGoroutine()
	// A 1ns budget expires on the first enumerated cover, mid-stream.
	a := answererFor(e, engine.Native, core.Options{Parallelism: 8, SearchBudget: time.Nanosecond})
	for i := 0; i < 20; i++ {
		c, rep, err := a.ChooseCover(q, core.ECov)
		if err != nil {
			t.Fatal(err)
		}
		if c == nil {
			t.Fatal("aborted search returned no cover")
		}
		if rep.Exhaustive {
			t.Fatal("a 1ns-budget search cannot be exhaustive")
		}
	}
	// The pool shuts down via close/join, so workers exit promptly; poll
	// briefly to absorb scheduler lag.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Calibrate pins parallelism 1 on a private copy: the caller's engine
// must keep its configured worker count.
func TestCalibrateLeavesCallerParallelismIntact(t *testing.T) {
	e := testkit.Random(1, 60)
	raw := e.RawStore()
	eng := engine.New(raw, stats.Collect(raw, e.Vocab), engine.PostgresLike).WithParallelism(6)
	if got := eng.Parallelism(); got != 6 {
		t.Fatalf("precondition: parallelism = %d, want 6", got)
	}
	_ = core.Calibrate(eng)
	if got := eng.Parallelism(); got != 6 {
		t.Errorf("Calibrate changed the caller's parallelism: %d, want 6", got)
	}
}
