package core_test

import (
	"context"
	"errors"
	"testing"

	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/naive"
	"repro/internal/plancache"
	"repro/internal/testkit"
)

// A context canceled before AnswerContext is called must surface the
// typed engine.ErrCanceled for every strategy — whether the cancellation
// is caught in the cover search or at evaluation admission.
func TestAnswerContextPreCanceled(t *testing.T) {
	e := testkit.Paper()
	a := answererFor(e, engine.Native, core.Options{})
	q := paperQuery(e)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, strat := range core.Strategies() {
		_, err := a.AnswerContext(ctx, q, strat)
		if !errors.Is(err, engine.ErrCanceled) {
			t.Errorf("%s: err = %v, want %v", strat, err, engine.ErrCanceled)
		}
	}
}

// AnswerContext with an uncancelable context must return exactly the
// same answer set as Answer — the cancellation seam is off-path.
func TestAnswerContextBackgroundIdentical(t *testing.T) {
	e := testkit.Random(31, 120)
	a := answererFor(e, engine.Native, core.Options{})
	q := bgp.CQ{
		Head:  []bgp.Term{bgp.V(0), bgp.V(1)},
		Atoms: []bgp.Atom{{S: bgp.V(0), P: bgp.C(e.Vocab.Type), O: bgp.V(1)}},
	}
	plain, err := a.Answer(q, core.GCov)
	if err != nil {
		t.Fatal(err)
	}
	ctxd, err := a.AnswerContext(context.Background(), q, core.GCov)
	if err != nil {
		t.Fatal(err)
	}
	if !naive.Equal(relRows(ctxd.Rel), relRows(plain.Rel)) {
		t.Errorf("AnswerContext rows differ from Answer rows")
	}
}

// Cancellation through the plan-cache path: a canceled context must fail
// the cache-hit (evaluate only) path too, and a subsequent uncanceled
// call must still answer correctly — the canceled attempt must not have
// poisoned the cache.
func TestAnswerContextCanceledWithPlanCache(t *testing.T) {
	e := testkit.Paper()
	a := answererFor(e, engine.Native, core.Options{PlanCache: plancache.New(0)})
	q := paperQuery(e)

	// Warm the cache.
	want, err := a.AnswerContext(context.Background(), q, core.GCov)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := a.AnswerContext(ctx, q, core.GCov); !errors.Is(err, engine.ErrCanceled) {
		t.Fatalf("cache-hit path: err = %v, want %v", err, engine.ErrCanceled)
	}

	got, err := a.AnswerContext(context.Background(), q, core.GCov)
	if err != nil {
		t.Fatal(err)
	}
	if !naive.Equal(relRows(got.Rel), relRows(want.Rel)) {
		t.Errorf("answer after canceled attempt differs from the original")
	}
}
