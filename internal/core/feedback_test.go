package core_test

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/engine"
	"repro/internal/feedback"
	"repro/internal/naive"
	"repro/internal/plancache"
	"repro/internal/testkit"
)

// collectQueries gathers up to n coverable random queries from the
// fixture, deterministically per seed.
func collectQueries(e *testkit.Example, n int, seed int64) []bgp.CQ {
	rng := rand.New(rand.NewSource(seed))
	var out []bgp.CQ
	for tries := 0; tries < 20*n && len(out) < n; tries++ {
		q := testkit.RandomQuery(e, rng)
		if coverableQuery(q) {
			out = append(out, q)
		}
	}
	return out
}

// Feedback is strictly advisory: answers must be identical with the loop
// on and off, across every strategy. The fixed-cover strategies (UCQ,
// SCQ, Saturation) must match row for row in order — feedback cannot
// change their cover, so evaluation is bit-for-bit the same. The search
// strategies (ECov, GCov) may legitimately pick a different cover once
// corrections move the estimates, which permutes row order but never the
// answer set (Theorem 3.1) — those compare canonically sorted.
func TestFeedbackAnswersIdentical(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		e := testkit.Random(seed, 60)
		off := answererFor(e, engine.Native, core.Options{})
		on := answererFor(e, engine.Native, core.Options{Feedback: feedback.New(feedback.Config{})})
		for _, q := range collectQueries(e, 3, seed+7000) {
			// Several rounds so the loop actually learns between answers.
			for round := 0; round < 3; round++ {
				for _, strat := range core.Strategies() {
					want, err := off.Answer(q, strat)
					if err != nil {
						t.Fatalf("seed %d %s off: %v", seed, strat, err)
					}
					got, err := on.Answer(q, strat)
					if err != nil {
						t.Fatalf("seed %d %s on: %v", seed, strat, err)
					}
					switch strat {
					case core.ECov, core.GCov:
						if !naive.Equal(relRows(got.Rel), relRows(want.Rel)) {
							t.Errorf("seed %d round %d: %s answer set differs with feedback on", seed, round, strat)
						}
					default:
						if !reflect.DeepEqual(got.Rel.Rows, want.Rel.Rows) {
							t.Errorf("seed %d round %d: %s rows differ with feedback on", seed, round, strat)
						}
					}
				}
			}
		}
	}
}

// On a skewed workload the statistics-only estimates are persistently
// off; repeating the workload must shrink the mean relative cardinality
// error as the correction factors converge.
func TestFeedbackConvergesOnSkewedWorkload(t *testing.T) {
	e := testkit.Random(3, 160)
	fb := feedback.New(feedback.Config{})
	a := answererFor(e, engine.Native, core.Options{Feedback: fb})
	qs := collectQueries(e, 5, 99)
	if len(qs) == 0 {
		t.Skip("no coverable queries in fixture")
	}

	// Warm-up epoch: first pass over the workload.
	for _, q := range qs {
		if _, err := a.Answer(q, core.GCov); err != nil {
			t.Fatal(err)
		}
	}
	s0 := fb.Snapshot()
	if s0.CardErrorCount == 0 {
		t.Fatal("warm-up recorded no cardinality errors")
	}
	firstMean := s0.CardErrorSum / float64(s0.CardErrorCount)

	// Converged epochs: several more passes.
	for round := 0; round < 4; round++ {
		for _, q := range qs {
			if _, err := a.Answer(q, core.GCov); err != nil {
				t.Fatal(err)
			}
		}
	}
	s1 := fb.Snapshot()
	if s1.Observations <= s0.Observations {
		t.Fatal("later epochs recorded no observations")
	}
	lateMean := (s1.CardErrorSum - s0.CardErrorSum) / float64(s1.CardErrorCount-s0.CardErrorCount)

	if math.IsNaN(lateMean) || math.IsNaN(firstMean) {
		t.Fatalf("NaN error means (first %v, late %v; stats %+v)", firstMean, lateMean, s1)
	}
	// Convergence: the post-warm-up error must not exceed the first
	// epoch's, and unless the first epoch was already near-exact it must
	// shrink materially.
	if lateMean > firstMean+1e-9 {
		t.Errorf("mean card error grew after warm-up: %v -> %v", firstMean, lateMean)
	}
	if firstMean > 0.1 && lateMean > firstMean*0.75 {
		t.Errorf("mean card error barely converged: %v -> %v", firstMean, lateMean)
	}
}

// A plan-cache hit after a feedback drift event must observe the current
// correction-factor version: the entry is re-priced (visible in the
// cache's Reprices counter) and replayed estimates come from the raw
// stats under the new factors rather than the values priced at insert.
func TestFeedbackRepricesCachedPlans(t *testing.T) {
	e := testkit.Paper()
	fb := feedback.New(feedback.Config{})
	pc := plancache.New(0)
	a, _ := cachedAnswerer(e, pc, core.Options{Feedback: fb})
	q := paperQuery(e)

	cold, err := a.Answer(q, core.GCov)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Report.Cached {
		t.Fatal("first answer reported Cached")
	}
	// Drive observations until the estimates drift (the tiny fixture's
	// statistics are crude, so this happens on the first answer or two).
	for i := 0; i < 6 && fb.Version() == 0; i++ {
		if _, err := a.Answer(q, core.GCov); err != nil {
			t.Fatal(err)
		}
	}
	if fb.Version() == 0 {
		t.Skip("fixture estimates too accurate to drift")
	}

	warm, err := a.Answer(q, core.GCov)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Report.Cached {
		t.Fatal("repeat answer not served from the cache")
	}
	if got := pc.Snapshot().Reprices; got == 0 {
		t.Error("hit after drift did not re-price the entry")
	}
	// Stats accounting: a re-price is not a put, and the only put is the
	// cold answer's insert.
	if st := pc.Snapshot(); st.Puts != 1 {
		t.Errorf("puts = %d, want 1 (re-prices are counted separately)", st.Puts)
	}
	// The answer itself is unchanged by re-pricing.
	if !reflect.DeepEqual(warm.Rel.Rows, cold.Rel.Rows) {
		t.Error("re-priced hit changed the answer rows")
	}
}

// Cancellation mid-query must never leave torn feedback state: failed
// evaluations record nothing, and concurrent successes keep every
// factor and blended constant finite. Run with -race.
func TestFeedbackCancellationNoTornState(t *testing.T) {
	e := testkit.Random(17, 140)
	fb := feedback.New(feedback.Config{})
	a := answererFor(e, engine.Native, core.Options{Feedback: fb, Parallelism: 2})
	qs := collectQueries(e, 4, 17)
	if len(qs) == 0 {
		t.Skip("no coverable queries in fixture")
	}

	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				q := qs[(w+i)%len(qs)]
				if w%2 == 0 {
					// Deadline somewhere between "immediately" and "after
					// evaluation started", so many cancel mid-flight.
					ctx, cancel := context.WithTimeout(context.Background(), time.Duration(i%3)*50*time.Microsecond)
					_, _ = a.AnswerContext(ctx, q, core.GCov)
					cancel()
				} else if _, err := a.Answer(q, core.GCov); err != nil {
					t.Errorf("uncancelled answer failed: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	s := fb.Snapshot()
	if s.Observations == 0 {
		t.Fatal("no successful observations recorded")
	}
	if math.IsNaN(s.MeanCardError) || math.IsNaN(s.MeanCostError) {
		t.Errorf("torn error stats: %+v", s)
	}
	p := fb.Params(cost.DefaultParams)
	for _, v := range []float64{p.CDB, p.CT, p.CJ, p.CM, p.CL, p.CK} {
		if !(v > 0) || math.IsInf(v, 0) {
			t.Errorf("blended constant %v not positive and finite after cancellations", v)
		}
	}
}
