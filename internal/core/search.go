package core

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bgp"
	"repro/internal/cost"
	"repro/internal/cover"
	"repro/internal/engine"
	"repro/internal/feedback"
	"repro/internal/reformulate"
	"repro/internal/trace"
)

// searcher carries the per-query state of a cover search: the sharing
// graph, memoized fragment reformulations and statistics, and memoized
// cover costs. Fragment information is shared across all covers the
// search prices, which is what keeps ECov affordable on spaces of
// thousands of covers. The memos are safe for concurrent use so that
// cover pricing can run on a bounded worker pool (par > 1): ECov prices
// enumerated covers as they stream out of the enumeration, GCov prices
// the develop moves of one round concurrently, and both reduce their
// results deterministically, so the chosen cover is independent of the
// worker count.
type searcher struct {
	a     *Answerer
	q     bgp.CQ
	g     *cover.Graph
	final float64 // raw estimated |q| — the JUCQ result size for the model
	par   int     // pricing worker count; <= 1 searches sequentially

	// Adaptive-pricing snapshot, taken once per query so every cover of
	// one search is priced under the same corrections (a concurrent
	// Observe mid-search cannot skew the comparison). All zero/identity
	// when the answerer has no feedback loop.
	fb        *feedback.Loop
	params    cost.Params // effective constants (blended when fb != nil)
	storeV    uint64      // store version the estimates describe
	scanF     float64     // global scanned-tuples correction factor
	finalKey  string      // canonical key of the whole query
	finalCorr float64     // corrected final-cardinality estimate

	start  time.Time
	budget time.Duration
	// done, when non-nil, is the caller context's cancellation signal:
	// a done context expires the search exactly like the wall-clock
	// budget (the anytime searches stop at their next check), and
	// chooseCover then reports the typed cancellation error.
	done <-chan struct{}

	// Search-effort counters, reported on the optimize trace span by
	// recordSpan. The memo counters are atomics because pricing workers
	// bump them concurrently; gcovRounds and prunedByBound are only
	// touched by gcov's sequential bookkeeping.
	fragComputed  atomic.Int64
	fragMemoHits  atomic.Int64
	coversPriced  atomic.Int64
	costMemoHits  atomic.Int64
	gcovRounds    int64
	prunedByBound int64

	// mu guards the memo maps and the parked error below.
	mu    sync.Mutex
	frags map[cover.Fragment]*fragEntry
	costs map[string]float64
	// err records the first fragment-reformulation failure. checkQuery
	// rules those out up front, so this is a belt-and-braces channel: frag
	// cannot return an error itself without contorting the search loops,
	// so the failure is parked here and surfaced by ChooseCover.
	err error
}

// fragEntry is the once-filled memo slot of one fragment: the map under
// s.mu only stores the slot, and the slot's sync.Once fills it outside
// the lock, so two workers never compute the same fragment twice and a
// slow fragment never blocks memo lookups of other fragments.
type fragEntry struct {
	once sync.Once
	info *fragInfo
}

// fragInfo caches everything the search needs about one fragment.
type fragInfo struct {
	cq        bgp.CQ
	ref       *reformulate.Reformulation
	numCQs    int64
	stats     cost.ArmStats // raw statistics-derived estimates
	corr      cost.ArmStats // feedback-corrected estimates (== stats without a loop)
	key       string        // canonical key of cq ("" without a loop)
	aloneCost float64       // corrected cost of the fragment evaluated by itself
}

func newSearcher(a *Answerer, q bgp.CQ) (*searcher, error) {
	g, err := cover.NewGraph(q)
	if err != nil {
		return nil, err
	}
	s := &searcher{
		a:      a,
		q:      q,
		g:      g,
		final:  a.raw.Stats().CQCard(q),
		par:    a.parallelism(),
		params: a.opts.Params,
		scanF:  1,
		frags:  make(map[cover.Fragment]*fragEntry),
		costs:  make(map[string]float64),
		start:  time.Now(),
		budget: a.opts.SearchBudget,
	}
	//lint:ignore lockguard construction: s is not shared until newSearcher returns
	s.finalCorr = s.final
	if fb := a.opts.Feedback; fb != nil {
		//lint:ignore lockguard construction: s is not shared until newSearcher returns
		s.fb = fb
		s.storeV = a.raw.Store().Version()
		//lint:ignore lockguard construction: s is not shared until newSearcher returns
		s.params = fb.Params(a.opts.Params)
		s.scanF = fb.ScanFactor()
		// The final-cardinality key lives in its own namespace: a
		// single-fragment cover's arm key is the same canonical string,
		// and sharing one correction entry between the arm estimate and
		// the (post-dedup) final estimate would make the factor chase
		// two different ratios.
		s.finalKey = "q\x00" + q.CanonicalKey()
		//lint:ignore lockguard construction: s is not shared until newSearcher returns
		s.finalCorr = fb.Correct(s.finalKey, s.storeV, s.final)
	}
	return s, nil
}

// corrected applies the feedback corrections to raw arm statistics: the
// per-pattern cardinality factor scales the result estimate, the global
// scan factor scales the scanned-tuples estimate. Identity without a
// feedback loop.
func (s *searcher) corrected(st cost.ArmStats, key string) cost.ArmStats {
	if s.fb == nil {
		return st
	}
	st.ResultTuples = s.fb.Correct(key, s.storeV, st.ResultTuples)
	st.ScanTuples *= s.scanF
	return st
}

func (s *searcher) expired() bool {
	if s.done != nil {
		select {
		case <-s.done:
			return true
		default:
		}
	}
	return s.budget > 0 && time.Since(s.start) > s.budget
}

// failure returns the parked fragment-reformulation error, if any.
func (s *searcher) failure() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// recordSpan reports the search-effort counters on the optimize span and
// bumps the trace-wide search.* totals. Only called after the search's
// pricing workers have finished; a nil span makes it a no-op.
func (s *searcher) recordSpan(sp *trace.Span) {
	if sp == nil {
		return
	}
	sp.SetInt("frags_reformulated", s.fragComputed.Load())
	sp.SetInt("frag_memo_hits", s.fragMemoHits.Load())
	sp.SetInt("covers_priced", s.coversPriced.Load())
	sp.SetInt("cost_memo_hits", s.costMemoHits.Load())
	if s.gcovRounds > 0 {
		sp.SetInt("gcov_rounds", s.gcovRounds)
		sp.SetInt("pruned_by_bound", s.prunedByBound)
	}
	reg := sp.Registry()
	reg.Counter("search.frags_reformulated").Add(s.fragComputed.Load())
	reg.Counter("search.covers_priced").Add(s.coversPriced.Load())
	reg.Counter("search.cost_memo_hits").Add(s.costMemoHits.Load())
}

// runParallel runs f(0..n-1) on up to s.par workers, sequentially when
// the searcher or the job list has no parallelism to exploit.
func (s *searcher) runParallel(n int, f func(int)) {
	workers := s.par
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

// frag returns the memoized fragment information, computing it on first
// use: the cover query (Definition 3.4), its factorized reformulation,
// and the arm statistics the cost model consumes.
func (s *searcher) frag(f cover.Fragment) *fragInfo {
	s.mu.Lock()
	e, ok := s.frags[f]
	if !ok {
		e = &fragEntry{}
		s.frags[f] = e
	}
	s.mu.Unlock()
	if ok {
		s.fragMemoHits.Add(1)
	}
	e.once.Do(func() {
		e.info = s.computeFrag(f)
	})
	return e.info
}

func (s *searcher) computeFrag(f cover.Fragment) *fragInfo {
	s.fragComputed.Add(1)
	cq := cover.Query(s.q, f)
	ref, err := reformulate.Reformulate(cq, s.a.sch)
	if err != nil {
		s.mu.Lock()
		if s.err == nil {
			s.err = err
		}
		s.mu.Unlock()
		return &fragInfo{cq: cq, ref: &reformulate.Reformulation{}}
	}
	info := &fragInfo{cq: cq, ref: ref, numCQs: ref.NumCQs()}
	info.stats = s.armStats(ref)
	if s.fb != nil {
		info.key = cq.CanonicalKey()
	}
	info.corr = s.corrected(info.stats, info.key)
	info.aloneCost = s.params.UCQ(info.corr)
	return info
}

// armStats derives the cost model's per-arm quantities from the
// factorized reformulation, without materializing the union.
//
// ScanTuples models what the engine actually retrieves to evaluate every
// member CQ of the arm. Evaluation is an index bind-join, so per member
// the most selective atom is scanned in full and every later atom is
// probed under bindings. Summed over the members of one instantiation
// block (slots ordered by increasing union size):
//
//   - first-atom scans: every member scans its own first alternative's
//     extent, Σ_{alt ∈ first slot} |alt| · Π_{other slots} #alts in total;
//   - probe work: the bind-join over the slot *unions*, charged once —
//     Σ over later slots of the running intermediate-result size, with
//     each slot's cardinality discounted by the distinct counts of the
//     variables already bound.
//
// ResultTuples is the block's join-of-unions cardinality estimate. The
// paper's formulas assume the sequential-scan cost shape of its host
// RDBMSs and let calibration absorb the constants; this estimate plays
// the same role for the index-native engine of this reproduction.
func (s *searcher) armStats(ref *reformulate.Reformulation) cost.ArmStats {
	st := s.a.raw.Stats()
	out := cost.ArmStats{Arms: ref.NumCQs()}
	for _, b := range ref.Blocks {
		arms := 1.0
		for _, alts := range b.Slots {
			arms *= float64(len(alts))
		}

		type slotInfo struct {
			alts     []bgp.Atom
			sum      float64            // Σ_alt |alt|
			distinct map[uint32]float64 // per shared variable
		}
		slots := make([]slotInfo, len(b.Slots))
		var buf []uint32
		for i, alts := range b.Slots {
			si := slotInfo{alts: alts, distinct: make(map[uint32]float64)}
			for _, alt := range alts {
				c := st.AtomCard(alt)
				si.sum += c
				buf = alt.Vars(buf[:0])
				for j, v := range buf {
					// Atoms carry at most three variables; a linear dup
					// scan beats a per-alternative map allocation.
					if !dupVarBefore(buf, j) {
						si.distinct[v] += st.DistinctForVar(alt, v)
					}
				}
			}
			slots[i] = si
		}
		order := make([]int, len(slots))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, c int) bool { return slots[order[a]].sum < slots[order[c]].sum })

		// First-atom scans, per member.
		first := slots[order[0]]
		if n := float64(len(first.alts)); n > 0 {
			out.ScanTuples += first.sum * (arms / n)
		}

		// Probe work over the slot unions.
		bound := make(map[uint32]float64) // var -> smallest distinct so far
		bindings := first.sum
		for v, d := range first.distinct {
			bound[v] = d
		}
		for _, idx := range order[1:] {
			sl := slots[idx]
			eff := sl.sum
			for v, d := range sl.distinct {
				if prev, ok := bound[v]; ok {
					if m := maxFloat(prev, d); m > 1 {
						eff /= m
					}
					bound[v] = minFloat(prev, d)
				} else {
					bound[v] = d
				}
			}
			out.ScanTuples += bindings * maxFloat(eff, 1)
			bindings *= maxFloat(eff, 0.001)
		}
		out.ResultTuples += st.JoinOfUnionsCard(b.Slots)
	}
	return out
}

// dupVarBefore reports whether vars[i] already occurs in vars[:i].
func dupVarBefore(vars []uint32, i int) bool {
	for j := 0; j < i; j++ {
		if vars[j] == vars[i] {
			return true
		}
	}
	return false
}

func maxFloat(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minFloat(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// coverCost prices one cover's induced JUCQ reformulation, memoized.
// Pricing is deterministic, so two workers racing on one cover store the
// same value and the memo stays consistent without a per-key latch.
func (s *searcher) coverCost(c cover.Cover) float64 {
	key := c.Key()
	s.mu.Lock()
	v, ok := s.costs[key]
	s.mu.Unlock()
	if ok {
		s.costMemoHits.Add(1)
		return v
	}
	s.coversPriced.Add(1)
	switch s.a.opts.Source {
	case EngineInternal:
		v = s.engineCost(c)
	default:
		arms := make([]cost.ArmStats, len(c))
		for i, f := range c {
			arms[i] = s.frag(f).corr
		}
		v = s.params.JUCQ(arms, s.finalCorr)
	}
	s.mu.Lock()
	s.costs[key] = v
	s.mu.Unlock()
	return v
}

// engineCost prices a cover with the engine's internal estimator (the
// EXPLAIN-style source of the paper's Figure 9). Covers whose member
// count exceeds the materialization bound are priced +Inf — the analogue
// of the paper's observation that the engine sometimes "failed to execute
// the explain" on huge reformulations.
func (s *searcher) engineCost(c cover.Cover) float64 {
	arms := make([]engine.ArmSource, len(c))
	var total int64
	for i, f := range c {
		info := s.frag(f)
		total += info.numCQs
		if total > int64(s.a.opts.MaxUCQMembers) {
			return math.Inf(1)
		}
		arms[i] = armSource(info.cq, info.ref)
	}
	return s.a.raw.EstimateArms(arms)
}

// ecov is the exhaustive search of Section 4.2: enumerate every valid
// minimal cover, price each, return the cheapest. The enumeration bound
// and the search budget reproduce the paper's ECov timeout on its largest
// query. With par > 1 the enumerated covers are priced by a worker pool
// as they stream out of the enumeration (the bounded job channel applies
// backpressure, so the MaxCovers bound and the expiry check keep their
// meaning); ties on cost resolve to the earliest-enumerated cover, which
// is exactly the cover the sequential scan keeps.
func (s *searcher) ecov() (best cover.Cover, explored int, exhaustive bool) {
	if s.par <= 1 {
		bestCost := math.Inf(1)
		timedOut := false
		enumerated := s.g.EnumerateMinimal(s.a.opts.MaxCovers, func(c cover.Cover) bool {
			v := s.coverCost(c)
			explored++
			if v < bestCost {
				best, bestCost = c, v
			}
			if s.expired() {
				timedOut = true
				return false
			}
			// A parked fragment failure fails the whole search in
			// ChooseCover; pricing the rest of the space is wasted work.
			if s.failure() != nil {
				return false
			}
			return true
		})
		if best == nil {
			best = cover.WholeQuery(len(s.q.Atoms))
		}
		return best, explored, enumerated && !timedOut
	}

	type job struct {
		idx int
		c   cover.Cover
	}
	type priced struct {
		idx int
		c   cover.Cover
		v   float64
	}
	jobs := make(chan job, s.par*2)
	out := make(chan priced, s.par*2)
	// aborted flips when the search must stop early — budget expiry or a
	// parked fragment failure. Workers then drain their remaining jobs
	// without pricing them, so the linear shutdown below (close jobs →
	// join workers → close out → join collector) finishes promptly and
	// leaves no goroutine behind even when the producer returns early
	// mid-stream.
	var aborted atomic.Bool
	var workers sync.WaitGroup
	for w := 0; w < s.par; w++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for j := range jobs {
				if aborted.Load() {
					continue
				}
				out <- priced{j.idx, j.c, s.coverCost(j.c)}
			}
		}()
	}
	done := make(chan struct{})
	bestIdx := -1
	bestCost := math.Inf(1)
	go func() {
		defer close(done)
		for p := range out {
			explored++
			if p.v < bestCost || (p.v == bestCost && bestIdx >= 0 && p.idx < bestIdx) {
				best, bestCost, bestIdx = p.c, p.v, p.idx
			}
		}
	}()
	timedOut := false
	n := 0
	enumerated := s.g.EnumerateMinimal(s.a.opts.MaxCovers, func(c cover.Cover) bool {
		jobs <- job{n, c}
		n++
		if s.expired() {
			timedOut = true
			aborted.Store(true)
			return false
		}
		if s.failure() != nil {
			aborted.Store(true)
			return false
		}
		return true
	})
	close(jobs)
	workers.Wait()
	close(out)
	<-done
	if best == nil {
		best = cover.WholeQuery(len(s.q.Atoms))
	}
	return best, explored, enumerated && !timedOut
}

// gcov is Algorithm 1: start from the one-triple-per-fragment cover,
// develop "add a joining triple to a fragment" moves, keep the move list
// sorted by the estimated cost of the resulting cover, and greedily apply
// the most promising move while it does not worsen the best cover found.
// With par > 1 one develop round applies and prices its moves on the
// worker pool, then replays the sequential bookkeeping — budget check
// before dedup check, explored counting only freshly priced covers, moves
// inserted in candidate order — so the move list, the explored count, and
// the chosen cover are identical to the sequential search.
func (s *searcher) gcov() (cover.Cover, int) {
	n := len(s.q.Atoms)
	c0 := cover.PerAtom(n)
	best, bestCost := c0, s.coverCost(c0)
	explored := 1
	analysed := map[string]bool{c0.Key(): true}

	type move struct {
		c cover.Cover
		v float64
	}
	var moves []move
	insert := func(m move) {
		i := sort.Search(len(moves), func(i int) bool { return moves[i].v >= m.v })
		moves = append(moves, move{})
		copy(moves[i+1:], moves[i:])
		moves[i] = m
	}
	maxCovers := s.a.opts.GCovMaxCovers
	develop := func(c cover.Cover) {
		s.gcovRounds++
		if s.par <= 1 {
			for fi, f := range c {
				for t := 0; t < n; t++ {
					if f.Has(t) || !s.g.Joins(t, f) {
						continue
					}
					if explored >= maxCovers {
						return
					}
					c2 := s.apply(c, fi, t)
					k := c2.Key()
					if analysed[k] {
						continue
					}
					analysed[k] = true
					v := s.coverCost(c2)
					explored++
					if v <= bestCost {
						insert(move{c2, v})
					} else {
						s.prunedByBound++
					}
				}
			}
			return
		}
		// Candidate moves in (fragment, triple) order — the order the
		// sequential scan prices them in.
		type cand struct{ fi, t int }
		var cands []cand
		for fi, f := range c {
			for t := 0; t < n; t++ {
				if f.Has(t) || !s.g.Joins(t, f) {
					continue
				}
				cands = append(cands, cand{fi, t})
			}
		}
		// Apply every move on the pool (apply only touches the concurrent
		// fragment memo), then replay the sequential per-candidate
		// bookkeeping: budget check before dedup check, explored counting
		// only freshly priced covers.
		applied := make([]cover.Cover, len(cands))
		s.runParallel(len(cands), func(i int) {
			applied[i] = s.apply(c, cands[i].fi, cands[i].t)
		})
		var fresh []cover.Cover
		for _, c2 := range applied {
			if explored+len(fresh) >= maxCovers {
				break
			}
			k := c2.Key()
			if analysed[k] {
				continue
			}
			analysed[k] = true
			fresh = append(fresh, c2)
		}
		costs := make([]float64, len(fresh))
		s.runParallel(len(fresh), func(i int) {
			costs[i] = s.coverCost(fresh[i])
		})
		for i, c2 := range fresh {
			explored++
			if costs[i] <= bestCost {
				insert(move{c2, costs[i]})
			} else {
				s.prunedByBound++
			}
		}
	}

	develop(c0)
	for len(moves) > 0 && explored < maxCovers && !s.expired() {
		m := moves[0]
		moves = moves[1:]
		if m.v <= bestCost {
			best, bestCost = m.c, m.v
		}
		develop(m.c)
	}
	return best, explored
}

// apply performs one GCov move: extend fragment fi with atom t, then
// restore cover validity — drop fragments included in another, and remove
// redundant fragments costliest-first (the cover's fragments are checked
// in decreasing cost order, as Section 4.3 describes).
func (s *searcher) apply(c cover.Cover, fi int, t int) cover.Cover {
	frags := append([]cover.Fragment(nil), c...)
	frags[fi] = frags[fi].With(t)

	// Drop fragments strictly included in another (keep one of equals).
	kept := frags[:0]
	for i, f := range frags {
		dominated := false
		for j, h := range frags {
			if i == j {
				continue
			}
			if h.ContainsAll(f) && (f != h || j < i) {
				dominated = true
				break
			}
		}
		if !dominated {
			kept = append(kept, f)
		}
	}

	if s.a.opts.NoRedundancyElimination {
		return cover.NewCover(kept...)
	}

	// Redundancy elimination, costliest fragments first.
	all := cover.Cover(kept).Union()
	sort.Slice(kept, func(i, j int) bool {
		return s.frag(kept[i]).aloneCost > s.frag(kept[j]).aloneCost
	})
	for i := 0; i < len(kept); {
		var others cover.Fragment
		for j, h := range kept {
			if j != i {
				others |= h
			}
		}
		if len(kept) > 1 && others == all {
			kept = append(kept[:i], kept[i+1:]...)
			continue
		}
		i++
	}
	return cover.NewCover(kept...)
}
