package core_test

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/naive"
	"repro/internal/testkit"
)

// The cover searches must be deterministic in the worker count: the
// chosen cover, the search effort, the estimated cost, and the final
// answer must be identical at Parallelism 1 and 8 for both ECov and GCov.
func TestParallelSearchMatchesSequential(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		e := testkit.Random(seed, 50)
		seq := answererFor(e, engine.Native, core.Options{Parallelism: 1})
		par := answererFor(e, engine.Native, core.Options{Parallelism: 8})
		rng := rand.New(rand.NewSource(seed + 5100))
		for qi := 0; qi < 3; qi++ {
			q := testkit.RandomQuery(e, rng)
			if !coverableQuery(q) {
				continue
			}
			for _, strat := range []core.Strategy{core.ECov, core.GCov} {
				wantC, wantRep, err := seq.ChooseCover(q, strat)
				if err != nil {
					t.Fatalf("seed %d %s sequential: %v", seed, strat, err)
				}
				gotC, gotRep, err := par.ChooseCover(q, strat)
				if err != nil {
					t.Fatalf("seed %d %s parallel: %v", seed, strat, err)
				}
				if gotC.Key() != wantC.Key() {
					t.Errorf("seed %d %s on %s: parallel cover %v, sequential %v",
						seed, strat, q, gotC, wantC)
				}
				if gotRep.CoversExplored != wantRep.CoversExplored {
					t.Errorf("seed %d %s: parallel explored %d covers, sequential %d",
						seed, strat, gotRep.CoversExplored, wantRep.CoversExplored)
				}
				if gotRep.Exhaustive != wantRep.Exhaustive {
					t.Errorf("seed %d %s: parallel exhaustive=%v, sequential %v",
						seed, strat, gotRep.Exhaustive, wantRep.Exhaustive)
				}
				if gotRep.EstimatedCost != wantRep.EstimatedCost {
					t.Errorf("seed %d %s: parallel cost %v, sequential %v",
						seed, strat, gotRep.EstimatedCost, wantRep.EstimatedCost)
				}
				if !reflect.DeepEqual(gotRep.FragmentCQs, wantRep.FragmentCQs) {
					t.Errorf("seed %d %s: parallel fragment CQs %v, sequential %v",
						seed, strat, gotRep.FragmentCQs, wantRep.FragmentCQs)
				}

				wantAns, err := seq.Answer(q, strat)
				if err != nil {
					t.Fatalf("seed %d %s sequential answer: %v", seed, strat, err)
				}
				gotAns, err := par.Answer(q, strat)
				if err != nil {
					t.Fatalf("seed %d %s parallel answer: %v", seed, strat, err)
				}
				if !naive.Equal(relRows(gotAns.Rel), relRows(wantAns.Rel)) {
					t.Errorf("seed %d %s: parallel answer differs from sequential", seed, strat)
				}
				if gotAns.Report.Metrics != wantAns.Report.Metrics {
					t.Errorf("seed %d %s: parallel metrics %+v, sequential %+v",
						seed, strat, gotAns.Report.Metrics, wantAns.Report.Metrics)
				}
			}
		}
	}
}

// Concurrent Answer calls on one shared parallel answerer exercise the
// searcher memos and the engine shards together under the race detector.
func TestParallelAnswerRace(t *testing.T) {
	e := testkit.Random(5, 60)
	a := answererFor(e, engine.Native, core.Options{Parallelism: 4})
	rng := rand.New(rand.NewSource(5500))
	var queries []bgp.CQ
	for len(queries) < 3 {
		q := testkit.RandomQuery(e, rng)
		if coverableQuery(q) {
			queries = append(queries, q)
		}
	}
	want := make(map[int]map[core.Strategy]naive.Rows)
	seq := answererFor(e, engine.Native, core.Options{Parallelism: 1})
	for i, q := range queries {
		want[i] = make(map[core.Strategy]naive.Rows)
		for _, strat := range []core.Strategy{core.ECov, core.GCov} {
			ans, err := seq.Answer(q, strat)
			if err != nil {
				t.Fatal(err)
			}
			want[i][strat] = relRows(ans.Rel)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i, q := range queries {
				strat := core.ECov
				if (w+i)%2 == 1 {
					strat = core.GCov
				}
				ans, err := a.Answer(q, strat)
				if err != nil {
					t.Errorf("concurrent %s: %v", strat, err)
					return
				}
				if !naive.Equal(relRows(ans.Rel), want[i][strat]) {
					t.Errorf("concurrent %s diverged from sequential answer", strat)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
