package core_test

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/engine"
	"repro/internal/naive"
	"repro/internal/reformulate"
	"repro/internal/schema"
	"repro/internal/stats"
	"repro/internal/testkit"
)

// answererFor builds an answerer (raw + saturated engines) for a fixture.
func answererFor(e *testkit.Example, prof engine.Profile, opts core.Options) *core.Answerer {
	raw := e.RawStore()
	sat := e.SaturatedStore()
	rawEng := engine.New(raw, stats.Collect(raw, e.Vocab), prof)
	satEng := engine.New(sat, stats.Collect(sat, e.Vocab), prof)
	return core.NewAnswerer(e.Closed, rawEng, satEng, opts)
}

func relRows(r *engine.Relation) naive.Rows {
	out := make(map[string]naive.Row)
	for _, row := range r.Rows {
		k := ""
		for _, v := range row {
			k += string([]byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)})
		}
		out[k] = naive.Row(row)
	}
	rows := make(naive.Rows, 0, len(out))
	for _, row := range out {
		rows = append(rows, row)
	}
	// Insertion sort: answer sets in the tests are small.
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0; j-- {
			less := false
			for k := range rows[j] {
				if rows[j][k] != rows[j-1][k] {
					less = rows[j][k] < rows[j-1][k]
					break
				}
			}
			if !less {
				break
			}
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
	return rows
}

// All five strategies must return the same answer set — the end-to-end
// statement of Theorem 3.1 plus saturation/reformulation equivalence —
// across random databases, queries and engine profiles.
func TestStrategiesAgree(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		e := testkit.Random(seed, 50)
		a := answererFor(e, engine.Native, core.Options{})
		rng := rand.New(rand.NewSource(seed + 2000))
		for qi := 0; qi < 4; qi++ {
			q := testkit.RandomQuery(e, rng)
			if !coverableQuery(q) {
				continue
			}
			var want naive.Rows
			for i, strat := range core.Strategies() {
				ans, err := a.Answer(q, strat)
				if err != nil {
					t.Fatalf("seed %d %s on %s: %v", seed, strat, q, err)
				}
				got := relRows(ans.Rel)
				if i == 0 {
					want = got
					continue
				}
				if !naive.Equal(got, want) {
					t.Errorf("seed %d: %s disagrees on %s:\n got %v\nwant %v",
						seed, strat, q, got, want)
				}
			}
		}
	}
}

// coverableQuery reports whether the query fits the cover framework:
// connected atoms, non-empty all-variable head.
func coverableQuery(q bgp.CQ) bool {
	if len(q.Head) == 0 {
		return false
	}
	for _, h := range q.Head {
		if !h.Var {
			return false
		}
	}
	g := mustGraph(q)
	whole := cover.WholeQuery(len(q.Atoms))
	return g.FragmentConnected(whole[0])
}

// Every enumerated cover of a query must produce the same answers as the
// UCQ reformulation (Theorem 3.1, checked over the whole space).
func TestEveryCoverEquivalent(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		e := testkit.Random(seed, 40)
		a := answererFor(e, engine.Native, core.Options{})
		rng := rand.New(rand.NewSource(seed + 3100))
		q := testkit.RandomQuery(e, rng)
		if !coverableQuery(q) || len(q.Atoms) < 2 {
			continue
		}
		wantAns, err := a.Answer(q, core.UCQ)
		if err != nil {
			t.Fatal(err)
		}
		want := relRows(wantAns.Rel)
		g := mustGraph(q)
		checked := 0
		g.EnumerateMinimal(50, func(c cover.Cover) bool {
			ans, err := a.EvaluateCover(q, c, core.Report{Strategy: "fixed", Cover: c})
			if err != nil {
				t.Errorf("seed %d cover %v: %v", seed, c, err)
				return false
			}
			if !naive.Equal(relRows(ans.Rel), want) {
				t.Errorf("seed %d: cover %v of %s gives different answers", seed, c, q)
				return false
			}
			checked++
			return true
		})
		if checked == 0 {
			t.Errorf("seed %d: no covers checked", seed)
		}
	}
}

// The motivating-example shape: grouping a selective triple with an
// unselective one must be estimated cheaper than SCQ when the data
// supports it — here we just require the chosen GCov cover to be valid
// and its estimated cost to be no worse than both fixed covers.
func TestGCovNeverWorseThanFixedCovers(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		e := testkit.Random(seed, 60)
		a := answererFor(e, engine.Native, core.Options{})
		rng := rand.New(rand.NewSource(seed + 4000))
		q := testkit.RandomQuery(e, rng)
		if !coverableQuery(q) {
			continue
		}
		_, ucqRep, err := a.ChooseCover(q, core.UCQ)
		if err != nil {
			t.Fatal(err)
		}
		_, scqRep, err := a.ChooseCover(q, core.SCQ)
		if err != nil {
			t.Fatal(err)
		}
		gc, gRep, err := a.ChooseCover(q, core.GCov)
		if err != nil {
			t.Fatal(err)
		}
		g := mustGraph(q)
		if !g.Valid(gc) {
			t.Errorf("seed %d: GCov chose invalid cover %v for %s", seed, gc, q)
		}
		// GCov starts from the SCQ cover, so it can never be worse than
		// SCQ under its own estimate; UCQ is in ECov's space but not
		// necessarily reachable by GCov moves, so only check SCQ.
		if gRep.EstimatedCost > scqRep.EstimatedCost+1e-6 {
			t.Errorf("seed %d: GCov cost %v worse than SCQ %v", seed, gRep.EstimatedCost, scqRep.EstimatedCost)
		}
		_ = ucqRep
	}
}

// ECov must never pick a cover with a higher estimate than GCov's (its
// space includes everything GCov reaches, minus the non-minimal covers;
// both include SCQ and UCQ).
func TestECovAtLeastAsGoodAsFixed(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		e := testkit.Random(seed, 60)
		a := answererFor(e, engine.Native, core.Options{})
		rng := rand.New(rand.NewSource(seed + 5000))
		q := testkit.RandomQuery(e, rng)
		if !coverableQuery(q) {
			continue
		}
		_, eRep, err := a.ChooseCover(q, core.ECov)
		if err != nil {
			t.Fatal(err)
		}
		if !eRep.Exhaustive {
			continue
		}
		for _, fixed := range []core.Strategy{core.UCQ, core.SCQ} {
			_, rep, err := a.ChooseCover(q, fixed)
			if err != nil {
				t.Fatal(err)
			}
			if eRep.EstimatedCost > rep.EstimatedCost+1e-6 {
				t.Errorf("seed %d: ECov cost %v worse than %s cost %v on %s",
					seed, eRep.EstimatedCost, fixed, rep.EstimatedCost, q)
			}
		}
	}
}

func TestSaturationRequiresStore(t *testing.T) {
	e := testkit.Paper()
	raw := e.RawStore()
	rawEng := engine.New(raw, stats.Collect(raw, e.Vocab), engine.Native)
	a := core.NewAnswerer(e.Closed, rawEng, nil, core.Options{})
	q := bgp.CQ{
		Head:  []bgp.Term{bgp.V(0)},
		Atoms: []bgp.Atom{{S: bgp.V(0), P: bgp.C(e.Vocab.Type), O: bgp.V(1)}},
	}
	if _, err := a.Answer(q, core.Saturation); !errors.Is(err, core.ErrNoSaturatedStore) {
		t.Errorf("err = %v, want ErrNoSaturatedStore", err)
	}
}

func TestBadQueriesRejected(t *testing.T) {
	e := testkit.Paper()
	a := answererFor(e, engine.Native, core.Options{})
	bad := []bgp.CQ{
		{},
		{Head: []bgp.Term{bgp.V(0)}}, // no atoms
		{Head: []bgp.Term{bgp.C(5)}, Atoms: []bgp.Atom{{S: bgp.V(0), P: bgp.V(1), O: bgp.V(2)}}},
	}
	for i, q := range bad {
		if _, _, err := a.ChooseCover(q, core.GCov); err == nil {
			t.Errorf("bad query %d accepted", i)
		}
	}
}

// Boolean (empty-head) queries are legal and answer {()} or {} under
// every strategy.
func TestBooleanQueries(t *testing.T) {
	e := testkit.Paper()
	a := answererFor(e, engine.Native, core.Options{})
	// "Is anything implicitly a Publication?" — true only by reasoning.
	yes := bgp.CQ{Atoms: []bgp.Atom{{S: bgp.V(0), P: bgp.C(e.Vocab.Type), O: bgp.C(e.ID("Publication"))}}}
	no := bgp.CQ{Atoms: []bgp.Atom{{S: bgp.V(0), P: bgp.C(e.ID("unusedProp")), O: bgp.V(1)}}}
	for _, strat := range core.Strategies() {
		ansYes, err := a.Answer(yes, strat)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if ansYes.Rel.Len() != 1 {
			t.Errorf("%s: boolean true query returned %d rows, want 1", strat, ansYes.Rel.Len())
		}
		ansNo, err := a.Answer(no, strat)
		if err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if ansNo.Rel.Len() != 0 {
			t.Errorf("%s: boolean false query returned %d rows, want 0", strat, ansNo.Rel.Len())
		}
	}
}

func TestReportFields(t *testing.T) {
	e := testkit.Paper()
	a := answererFor(e, engine.Native, core.Options{})
	q := bgp.CQ{
		Head: []bgp.Term{bgp.V(0)},
		Atoms: []bgp.Atom{
			{S: bgp.V(0), P: bgp.C(e.Vocab.Type), O: bgp.V(1)},
			{S: bgp.V(0), P: bgp.C(e.ID("writtenBy")), O: bgp.V(2)},
		},
	}
	ans, err := a.Answer(q, core.GCov)
	if err != nil {
		t.Fatal(err)
	}
	rep := ans.Report
	if rep.Strategy != core.GCov {
		t.Error("strategy not recorded")
	}
	if rep.Cover == nil || rep.CoversExplored < 1 {
		t.Error("cover search not reported")
	}
	if len(rep.FragmentCQs) != len(rep.Cover) {
		t.Error("per-fragment counts missing")
	}
	if rep.TotalCQs < 1 || rep.EstimatedCost <= 0 {
		t.Errorf("TotalCQs=%d EstimatedCost=%v", rep.TotalCQs, rep.EstimatedCost)
	}
}

// The engine-internal cost source must drive the search without changing
// answers.
func TestEngineInternalCostSource(t *testing.T) {
	e := testkit.Random(3, 50)
	own := answererFor(e, engine.Native, core.Options{Source: core.OwnModel})
	internal := answererFor(e, engine.Native, core.Options{Source: core.EngineInternal})
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 4; i++ {
		q := testkit.RandomQuery(e, rng)
		if !coverableQuery(q) {
			continue
		}
		a1, err := own.Answer(q, core.GCov)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := internal.Answer(q, core.GCov)
		if err != nil {
			t.Fatal(err)
		}
		if !naive.Equal(relRows(a1.Rel), relRows(a2.Rel)) {
			t.Errorf("cost sources changed the answers for %s", q)
		}
	}
}

func TestCalibrateProducesPositiveParams(t *testing.T) {
	e := testkit.Random(7, 200)
	raw := e.RawStore()
	eng := engine.New(raw, stats.Collect(raw, e.Vocab), engine.PostgresLike)
	p := core.Calibrate(eng)
	if p.CT <= 0 || p.CJ <= 0 || p.CM <= 0 || p.CL <= 0 || p.CDB <= 0 {
		t.Errorf("calibration produced non-positive constants: %s", p)
	}
	if p.NestedLoopArmJoin {
		t.Error("hash-join profile calibrated as nested-loop")
	}
	mysql := engine.New(raw, stats.Collect(raw, e.Vocab), engine.MySQLLike)
	if !core.Calibrate(mysql).NestedLoopArmJoin {
		t.Error("nested-loop profile not flagged")
	}
}

// The reformulation-count bookkeeping in reports must match the direct
// reformulation of each cover query.
func TestFragmentCQCountsMatch(t *testing.T) {
	e := testkit.Paper()
	a := answererFor(e, engine.Native, core.Options{})
	q := bgp.CQ{
		Head: []bgp.Term{bgp.V(0), bgp.V(1)},
		Atoms: []bgp.Atom{
			{S: bgp.V(0), P: bgp.C(e.Vocab.Type), O: bgp.V(1)},
			{S: bgp.V(0), P: bgp.C(e.ID("hasTitle")), O: bgp.V(2)},
		},
	}
	c, rep, err := a.ChooseCover(q, core.SCQ)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range c {
		sub := cover.Query(q, f)
		want := mustReformulate(sub, e.Closed).NumCQs()
		if rep.FragmentCQs[i] != want {
			t.Errorf("fragment %v: reported %d CQs, want %d", f, rep.FragmentCQs[i], want)
		}
	}
}

// mustGraph and mustReformulate wrap the error-returning APIs for test
// queries that are well-formed by construction.
func mustGraph(q bgp.CQ) *cover.Graph {
	g, err := cover.NewGraph(q)
	if err != nil {
		panic(err)
	}
	return g
}

func mustReformulate(q bgp.CQ, sch *schema.Closed) *reformulate.Reformulation {
	r, err := reformulate.Reformulate(q, sch)
	if err != nil {
		panic(err)
	}
	return r
}
