package core

import (
	"sort"
	"time"

	"repro/internal/bgp"
	"repro/internal/cost"
	"repro/internal/dict"
	"repro/internal/engine"
	"repro/internal/stats"
	"repro/internal/storage"
)

// Calibrate fits the cost-model constants for one engine by timing
// calibration queries against its store, the per-RDBMS step of the
// paper's Section 4.1 ("which we determine by running a set of simple
// calibration queries on the RDBMS being used"):
//
//   - single-pattern scans over the most frequent properties fit the
//     per-tuple scan+dedup rate (split between c_t and c_l);
//   - a two-arm JUCQ over the two most frequent properties fits the
//     arm-join and materialization rates (split between c_j and c_m);
//   - a tiny constant query fits the per-query overhead c_db.
//
// Costs are expressed in nanoseconds, so model values are comparable to
// wall-clock measurements. The NestedLoopArmJoin flag follows the
// engine's profile.
func Calibrate(eng *engine.Engine) cost.Params {
	// The cost model prices sequential work, so calibration measures the
	// engine running serially regardless of the engine's parallelism knob.
	// WithParallelism returns a pinned *copy*: the caller's engine keeps
	// its configured parallelism (and span), and only the local handle
	// used for the calibration measurements below is sequential.
	eng = eng.WithParallelism(1)
	p := cost.DefaultParams
	p.NestedLoopArmJoin = eng.Profile().ArmJoin == engine.NestedLoopJoin
	// The measurements below run against whatever representation the
	// store currently holds; record which, so ForRepresentation can
	// adjust the scan constant when the same Params later price the
	// other representation (e.g. a model calibrated against a flat
	// store handed to an answerer over a compressed frozen one).
	p.Provenance = "calibrated"
	p.Representation = "flat"
	if eng.Store().Footprint().Compressed {
		p.Representation = "frozen"
	}

	props := frequentProperties(eng, 3)
	if len(props) == 0 {
		return p
	}
	p.DecodeRatio = measureDecodeRatio(eng, props[0])

	// Scan rate: evaluate SELECT ?s ?o WHERE { ?s p ?o } per property.
	var scanNs, scanTuples float64
	for _, prop := range props {
		q := bgp.CQ{
			Head:  []bgp.Term{bgp.V(0), bgp.V(1)},
			Atoms: []bgp.Atom{{S: bgp.V(0), P: bgp.C(prop), O: bgp.V(1)}},
		}
		start := time.Now()
		_, m, err := eng.EvalCQ(q)
		if err != nil {
			continue
		}
		scanNs += float64(time.Since(start).Nanoseconds())
		scanTuples += float64(m.TuplesScanned)
	}
	if scanTuples > 0 {
		perTuple := scanNs / scanTuples
		// The scan query both reads and hashes every tuple; attribute
		// the rate evenly.
		p.CT = perTuple / 2
		p.CL = perTuple / 2
		p.CK = p.CL / 4
	}

	// Join and materialization rate: a two-arm JUCQ joined on the shared
	// subject variable.
	if len(props) >= 2 {
		armA := bgp.UCQ{Vars: []uint32{0}, CQs: []bgp.CQ{{
			Head:  []bgp.Term{bgp.V(0)},
			Atoms: []bgp.Atom{{S: bgp.V(0), P: bgp.C(props[0]), O: bgp.V(1)}},
		}}}
		armB := bgp.UCQ{Vars: []uint32{0}, CQs: []bgp.CQ{{
			Head:  []bgp.Term{bgp.V(0)},
			Atoms: []bgp.Atom{{S: bgp.V(0), P: bgp.C(props[1]), O: bgp.V(2)}},
		}}}
		j := bgp.JUCQ{Head: []uint32{0}, Arms: []bgp.UCQ{armA, armB}}
		start := time.Now()
		_, m, err := eng.EvalJUCQ(j)
		if err == nil {
			elapsed := float64(time.Since(start).Nanoseconds())
			scanPart := float64(m.TuplesScanned) * (p.CT + p.CL)
			joinWork := float64(m.RowsJoined + m.RowsMaterialized)
			if joinWork > 0 {
				rate := (elapsed - scanPart) / joinWork
				// The scan part is itself an estimate; when it swallows
				// the whole measurement, fall back to pricing join and
				// materialization like scans rather than making them
				// free (which would bias the search toward plans with
				// huge intermediate results).
				if rate < p.CT/2 {
					rate = p.CT
				}
				p.CJ = rate / 2
				p.CM = rate / 2
			}
		}
	}

	// Fixed overhead: the cheapest possible query, repeated.
	tiny := bgp.CQ{
		Head:  []bgp.Term{bgp.V(0)},
		Atoms: []bgp.Atom{{S: bgp.V(0), P: bgp.C(props[0]), O: bgp.V(1)}},
	}
	const reps = 5
	start := time.Now()
	for i := 0; i < reps; i++ {
		if _, _, err := eng.EvalCQ(tiny); err != nil {
			break
		}
	}
	perQuery := float64(time.Since(start).Nanoseconds()) / reps
	// The overhead is what is left after the modeled work; keep a floor
	// so c_db never goes negative on fast stores.
	st := eng.Stats()
	work := float64(st.Property(props[0]).Count) * (p.CT + p.CL)
	if overhead := perQuery - work; overhead > 1000 {
		p.CDB = overhead
	} else {
		p.CDB = 1000
	}
	return p
}

// measureDecodeRatio measures the per-tuple scan-cost ratio between the
// compressed block-columnar (frozen) representation and the flat one,
// by sampling triples of the most frequent property into two small
// stores — one built with compression forced on, one with it off — and
// timing full scans of both. The ratio lets ForRepresentation transfer
// a calibration across representations. Returns 0 (unmeasured) on
// stores too small for a stable measurement.
func measureDecodeRatio(eng *engine.Engine, prop dict.ID) float64 {
	const (
		minStore   = 4096 // below the compression threshold nothing freezes anyway
		maxSample  = 32768
		timingReps = 3
	)
	src := eng.Store()
	if src.Len() < minStore {
		return 0
	}
	sample := make([]storage.Triple, 0, maxSample)
	src.Each(func(t storage.Triple) bool {
		if t.P == prop {
			sample = append(sample, t)
		}
		return len(sample) < maxSample
	})
	if len(sample) < minStore {
		return 0
	}

	build := func(c storage.Compression) *storage.Store {
		b := storage.NewBuilder().WithCompression(c).WithParallelism(1)
		for _, t := range sample {
			b.Add(t)
		}
		return b.Build()
	}
	flat := build(storage.CompressionOff)
	frozen := build(storage.CompressionOn)
	if !frozen.Footprint().Compressed || flat.Footprint().Compressed {
		return 0
	}

	scan := func(s *storage.Store) time.Duration {
		var sink dict.ID
		start := time.Now()
		s.Each(func(t storage.Triple) bool {
			sink ^= t.S ^ t.P ^ t.O
			return true
		})
		d := time.Since(start)
		if sink == ^dict.ID(0) {
			// Impossible-in-practice check that keeps the scan from
			// being optimized away.
			return d + 1
		}
		return d
	}
	var flatNs, frozenNs int64
	// Alternate the representations so a transient slowdown hits both.
	for i := 0; i < timingReps; i++ {
		flatNs += scan(flat).Nanoseconds()
		frozenNs += scan(frozen).Nanoseconds()
	}
	if flatNs <= 0 || frozenNs <= 0 {
		return 0
	}
	ratio := float64(frozenNs) / float64(flatNs)
	// Clamp to a plausible band: decoding is never cheaper than the
	// flat walk by construction, and a huge ratio is measurement noise.
	if ratio < 1 {
		ratio = 1
	}
	if ratio > 16 {
		ratio = 16
	}
	return ratio
}

// frequentProperties returns up to k property IDs by decreasing triple
// count, skipping rdf:type-like giants is unnecessary — frequent
// properties make calibration measurements stable.
func frequentProperties(eng *engine.Engine, k int) []dict.ID {
	type ps struct {
		id dict.ID
		n  int
	}
	var all []ps
	eng.Stats().EachProperty(func(id dict.ID, s stats.PropStat) bool {
		all = append(all, ps{id, s.Count})
		return true
	})
	sort.Slice(all, func(i, j int) bool { return all[i].n > all[j].n })
	if len(all) > k {
		all = all[:k]
	}
	out := make([]dict.ID, len(all))
	for i, x := range all {
		out[i] = x.id
	}
	return out
}
