// Package core assembles the paper's contribution: reformulation-based
// query answering that selects, from the space of cover-based JUCQ
// reformulations, the one with the lowest estimated cost (Definition 3.5),
// using either the exhaustive ECov search (Section 4.2) or the greedy
// anytime GCov search (Algorithm 1, Section 4.3), and evaluates it through
// a relational engine profile. The classic UCQ reformulation, the SCQ
// reformulation of Thomazo et al., and saturation-based answering are
// provided as the comparison strategies of the paper's Section 5.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"repro/internal/bgp"
	"repro/internal/cost"
	"repro/internal/cover"
	"repro/internal/dict"
	"repro/internal/engine"
	"repro/internal/feedback"
	"repro/internal/plancache"
	"repro/internal/reformulate"
	"repro/internal/schema"
	"repro/internal/trace"
)

// Strategy selects how a query is answered.
type Strategy string

// The five strategies of the experimental comparison.
const (
	// Saturation evaluates the query directly against a saturated store.
	Saturation Strategy = "saturation"
	// UCQ evaluates the single-fragment cover: the whole query
	// reformulated into one (possibly enormous) union.
	UCQ Strategy = "ucq"
	// SCQ evaluates the one-atom-per-fragment cover: a join of per-triple
	// unions (Thomazo's semi-conjunctive queries).
	SCQ Strategy = "scq"
	// ECov evaluates the best cover found by exhaustive enumeration.
	ECov Strategy = "ecov"
	// GCov evaluates the best cover found by the greedy search.
	GCov Strategy = "gcov"
)

// Strategies lists all strategies in the order the paper's figures use.
func Strategies() []Strategy { return []Strategy{UCQ, SCQ, ECov, GCov, Saturation} }

// CostSource selects which cost estimate guides ECov and GCov.
type CostSource uint8

const (
	// OwnModel uses the paper's cost model (Section 4.1) over the
	// calibrated Params — the default.
	OwnModel CostSource = iota
	// EngineInternal asks the engine for its internal estimate of each
	// candidate plan, the paper's "Postgres EXPLAIN" alternative
	// (Figure 9). Much slower: every candidate must be priced by
	// streaming its member CQs through the engine's estimator.
	EngineInternal
)

// ErrNoSaturatedStore is returned when the Saturation strategy is
// requested on an answerer built without a saturated engine.
var ErrNoSaturatedStore = errors.New("core: no saturated store configured for saturation-based answering")

// Options tunes an Answerer.
type Options struct {
	// Params are the cost-model constants (calibrated per engine);
	// cost.DefaultParams when zero.
	Params cost.Params
	// Source selects the cost estimate guiding the search.
	Source CostSource
	// MaxCovers bounds ECov's enumeration; 0 means DefaultMaxCovers.
	// Hitting the bound marks the search non-exhaustive, reproducing the
	// paper's ECov timeout on its 10-atom DBLP query.
	MaxCovers int
	// GCovMaxCovers bounds the covers GCov prices; 0 means
	// DefaultGCovMaxCovers. Algorithm 1 admits equal-cost moves, so on
	// cost plateaus the frontier can wander; the bound keeps the greedy
	// search anytime, as Section 4.3's "one could easily change the stop
	// condition" remark anticipates.
	GCovMaxCovers int
	// SearchBudget bounds the optimization wall-clock time of ECov and
	// GCov; 0 means no limit.
	SearchBudget time.Duration
	// MaxUCQMembers bounds per-fragment reformulation materialization in
	// the EngineInternal cost source; 0 means DefaultMaxUCQMembers.
	MaxUCQMembers int
	// NoRedundancyElimination disables GCov's removal of redundant
	// fragments after each move — an ablation knob for measuring how
	// much that step of Algorithm 1 contributes.
	NoRedundancyElimination bool
	// Parallelism is the worker count for both engine evaluation and the
	// cover-search pricing pools. 0 means runtime.GOMAXPROCS(0); 1 runs
	// everything serially. Results are identical regardless of the value.
	Parallelism int
	// NoFactorized disables the engines' factorized answer
	// representation (union-of-products relations with lazy expansion) —
	// an ablation knob for measuring what factorization saves. Expanded
	// answers and metrics are identical either way; only the stored
	// footprint of large cross-product results changes.
	NoFactorized bool
	// NoSharedScan disables the engines' shared-scan layer (the
	// per-evaluation pattern-scan memo, merged member scans and
	// cross-member planning memos), reproducing scan-per-member
	// evaluation — an ablation knob for measuring what the layer
	// contributes. Answers and metrics are identical either way.
	NoSharedScan bool
	// Trace, when non-nil, is the span query answering records its stage
	// tree under: ChooseCover adds an "optimize" child carrying search
	// effort, EvaluateCover adds "reformulate" (with per-fragment
	// children) and "evaluate" (with the engine's operator tree). nil —
	// the default — disables tracing at zero cost.
	Trace *trace.Span
	// PlanCache, when non-nil, caches the answering artifacts (chosen
	// cover, per-fragment reformulations, fragment statistics) across
	// queries, keyed by the canonical query signature and validated
	// against the store version and schema stamp. A cache may be shared
	// by any number of answerers over the same store and schema; it is
	// safe for concurrent use. Answers are identical with and without a
	// cache — hits only skip the optimize and reformulate stages.
	PlanCache *plancache.Cache
	// Feedback, when non-nil, closes the estimate→observe→recalibrate
	// loop: every successful evaluation's observed cardinalities and
	// timings are folded into the loop, and cover pricing blends the
	// loop's learned corrections into Params. A loop may be shared by
	// any number of answerers over the same store and engine profile.
	// Feedback is strictly advisory: it perturbs only estimates, and
	// every cover computes the same answer set (Theorem 3.1), so
	// answers are identical with and without it.
	Feedback *feedback.Loop
}

// DefaultMaxCovers bounds ECov's enumeration when Options.MaxCovers is 0.
const DefaultMaxCovers = 100_000

// DefaultGCovMaxCovers bounds GCov's exploration when
// Options.GCovMaxCovers is 0 — generous next to the tens-to-hundreds of
// covers the paper's Figure 7 reports GCov visiting.
const DefaultGCovMaxCovers = 2_000

// DefaultMaxUCQMembers bounds EngineInternal pricing when
// Options.MaxUCQMembers is 0.
const DefaultMaxUCQMembers = 100_000

// Answerer answers BGP queries over one RDF database through one engine
// profile.
type Answerer struct {
	sch  *schema.Closed
	raw  *engine.Engine // over the non-saturated store
	sat  *engine.Engine // over the saturated store; may be nil
	opts Options
}

// NewAnswerer builds an answerer. raw evaluates reformulations against the
// non-saturated store (which must include the closed constraint triples);
// sat, if non-nil, evaluates the Saturation strategy against a saturated
// store.
func NewAnswerer(sch *schema.Closed, raw, sat *engine.Engine, opts Options) *Answerer {
	if opts.Params == (cost.Params{}) {
		opts.Params = cost.DefaultParams
	}
	// Adjust the constants for the representation they will price: a
	// model calibrated against a flat store underprices scans of the
	// compressed block-columnar representation (and vice versa) by the
	// measured decode ratio. A no-op when the representation matches or
	// was never measured.
	if raw != nil {
		opts.Params = opts.Params.ForRepresentation(raw.Store().Footprint().Compressed)
	}
	if opts.MaxCovers == 0 {
		opts.MaxCovers = DefaultMaxCovers
	}
	if opts.GCovMaxCovers == 0 {
		opts.GCovMaxCovers = DefaultGCovMaxCovers
	}
	if opts.MaxUCQMembers == 0 {
		opts.MaxUCQMembers = DefaultMaxUCQMembers
	}
	a := &Answerer{sch: sch, raw: raw, sat: sat, opts: opts}
	if raw != nil {
		a.raw = raw.WithParallelism(opts.Parallelism).WithSharedScan(!opts.NoSharedScan).WithFactorized(!opts.NoFactorized)
	}
	if sat != nil {
		a.sat = sat.WithParallelism(opts.Parallelism).WithSharedScan(!opts.NoSharedScan).WithFactorized(!opts.NoFactorized)
	}
	return a
}

// WithTrace returns a copy of the answerer whose queries record their
// lifecycle under sp (see Options.Trace). The engines and the store are
// shared; only the trace attachment differs, so harnesses can attach a
// fresh root per run without rebuilding the answerer.
func (a *Answerer) WithTrace(sp *trace.Span) *Answerer {
	a2 := *a
	a2.opts.Trace = sp
	return &a2
}

// parallelism resolves the worker count the cover searches price with.
func (a *Answerer) parallelism() int {
	if a.opts.Parallelism > 0 {
		return a.opts.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Raw returns the engine over the non-saturated store.
func (a *Answerer) Raw() *engine.Engine { return a.raw }

// Schema returns the closed schema.
func (a *Answerer) Schema() *schema.Closed { return a.sch }

// Report describes how a query was answered: the chosen cover, the search
// effort, the estimated cost, and the evaluation metrics — the quantities
// the paper's Tables 2–4 and Figures 7–8 report.
type Report struct {
	Strategy Strategy
	// Cover is the evaluated cover (nil for Saturation).
	Cover cover.Cover
	// FragmentCQs is |q_ref| per cover fragment.
	FragmentCQs []int64
	// TotalCQs is the summed number of member CQs across fragments.
	TotalCQs int64
	// EstimatedCost is the cost-model value of the evaluated plan.
	EstimatedCost float64
	// EstimatedRows is the model's (feedback-corrected, when a loop is
	// configured) final-cardinality estimate; 0 for Saturation.
	EstimatedRows float64
	// CoversExplored counts the covers the search priced (1 for the
	// fixed UCQ and SCQ covers; 0 for Saturation).
	CoversExplored int
	// Exhaustive reports whether ECov visited the whole space.
	Exhaustive bool
	// OptimizeTime is the time spent choosing the cover (reformulating
	// fragments, estimating costs, searching).
	OptimizeTime time.Duration
	// EvalTime is the time spent evaluating the chosen reformulation.
	EvalTime time.Duration
	// Metrics are the engine's evaluation counters.
	Metrics engine.Metrics
	// Cached reports that the plan came from a plan-cache hit: the
	// optimize and reformulate stages were skipped and OptimizeTime is
	// the (near-zero) lookup time.
	Cached bool
}

// Answer holds the answer relation and the report.
type Answer struct {
	Rel    *engine.Relation
	Report Report
}

// Answer answers q with the given strategy.
func (a *Answerer) Answer(q bgp.CQ, strategy Strategy) (*Answer, error) {
	return a.AnswerContext(context.Background(), q, strategy)
}

// AnswerContext answers q under ctx: once ctx is done — a per-request
// deadline expired, a client disconnected — the optimization search
// stops at its next budget check and the evaluation stops at its next
// cancellation poll (engine.WithContext), surfacing the typed
// engine.ErrCanceled. An uncancelable ctx (context.Background) costs the
// hot path nothing; answers under any ctx that never fires are identical
// to Answer's.
func (a *Answerer) AnswerContext(ctx context.Context, q bgp.CQ, strategy Strategy) (*Answer, error) {
	if strategy == Saturation {
		if a.sat == nil {
			return nil, ErrNoSaturatedStore
		}
		eng := engineFor(a.sat, ctx)
		var evalSp *trace.Span
		if a.opts.Trace != nil {
			evalSp = a.opts.Trace.Child("evaluate")
			evalSp.SetStr("strategy", string(Saturation))
			eng = eng.WithSpan(evalSp)
		}
		start := time.Now()
		rel, m, err := eng.EvalCQ(q)
		evalSp.End()
		if err != nil {
			return nil, err
		}
		return &Answer{Rel: rel, Report: Report{
			Strategy: Saturation,
			EvalTime: time.Since(start),
			Metrics:  m,
		}}, nil
	}

	if a.opts.PlanCache == nil {
		c, rep, s, err := a.chooseCover(ctx, q, strategy)
		if err != nil {
			return nil, err
		}
		// The searcher already reformulated every fragment of the chosen
		// cover while pricing it; evaluate those artifacts directly
		// instead of reformulating from scratch (Reformulate is
		// deterministic, so the answer is byte-identical).
		frags, err := a.fragsFromSearch(c, s, rep)
		if err != nil {
			return nil, err
		}
		return a.evaluateFrags(ctx, headVars(q), frags, rep, a.observationFor(s, rep, frags))
	}
	return a.answerWithCache(ctx, q, strategy)
}

// fragsFromSearch extracts the searcher's memoized fragment artifacts
// for the chosen cover, recording a "reformulate" span whose work
// happened during optimize (marked memoized) so traces keep their
// stage shape.
func (a *Answerer) fragsFromSearch(c cover.Cover, s *searcher, rep Report) ([]fragArtifact, error) {
	var refSp *trace.Span
	if a.opts.Trace != nil {
		refSp = a.opts.Trace.Child("reformulate")
		refSp.SetInt("fragments", int64(len(c)))
		refSp.SetInt("memoized", 1)
	}
	frags := make([]fragArtifact, len(c))
	for i, f := range c {
		info := s.frag(f)
		frags[i] = fragArtifact{cq: info.cq, ref: info.ref, stats: info.stats, key: info.key, hasStats: true}
		if refSp != nil {
			fragSp := refSp.Child(fmt.Sprintf("fragment[%d]", i))
			fragSp.SetInt("atoms", int64(len(info.cq.Atoms)))
			fragSp.SetInt("member_cqs", info.numCQs)
			fragSp.End()
		}
	}
	if refSp != nil {
		refSp.SetInt("total_cqs", rep.TotalCQs)
		refSp.End()
	}
	if err := s.failure(); err != nil {
		return nil, err
	}
	return frags, nil
}

// observationFor prepares the estimate side of a feedback observation
// from a completed cover search; evaluateFrags fills in the observed
// side. nil (no observation) without a feedback loop.
func (a *Answerer) observationFor(s *searcher, rep Report, frags []fragArtifact) *feedback.Observation {
	if a.opts.Feedback == nil {
		return nil
	}
	obs := &feedback.Observation{
		StoreVersion:  s.storeV,
		QueryKey:      s.finalKey,
		EstimatedCost: rep.EstimatedCost,
		EstimatedRows: rep.EstimatedRows,
		RawRows:       s.final,
		Arms:          make([]feedback.ArmObservation, len(frags)),
	}
	for i, fa := range frags {
		obs.Arms[i] = feedback.ArmObservation{Key: fa.key, Stats: fa.stats}
	}
	return obs
}

// engineFor attaches ctx to the engine when it is actually cancelable —
// context.Background().Done() is nil, so the common uncancelable path
// keeps the exact engine value (no copy, no poll).
func engineFor(e *engine.Engine, ctx context.Context) *engine.Engine {
	if ctx == nil || ctx.Done() == nil {
		return e
	}
	return e.WithContext(ctx)
}

// answerWithCache is the Answer path for answerers with a plan cache: a
// current entry skips straight to evaluation; otherwise the plan is
// computed once and installed, reusing the searcher's fragment
// reformulations so a miss costs no more than an uncached answer.
func (a *Answerer) answerWithCache(ctx context.Context, q bgp.CQ, strategy Strategy) (*Answer, error) {
	cache := a.opts.PlanCache
	fb := a.opts.Feedback
	reg := a.opts.Trace.Registry()
	// The validity stamps are read *before* planning: a mutation (or a
	// feedback drift event) racing the plan computation can only make
	// the recorded version too old (a spurious invalidation or re-price
	// later), never let a stale plan pass as current.
	storeV := a.raw.Store().Version()
	schemaS := a.sch.Stamp()
	fbV := fb.Version()
	key := plancache.Signature(string(strategy), q)

	start := time.Now()
	if e, out := cache.Get(key, storeV, schemaS); out == plancache.Hit {
		reg.Counter("plancache.hits").Add(1)
		// A hit must observe the *current* correction-factor version:
		// estimates priced before a drift event no longer describe what
		// the optimizer believes, so they are re-priced from the
		// entry's stored raw stats before being reported or observed
		// against. The plan itself (cover, reformulations) is reused
		// unchanged either way — only estimates move, so answers are
		// unaffected.
		if fb != nil && e.FeedbackVersion != fbV {
			e = a.repriceEntry(e, fb, fbV)
			reg.Counter("plancache.reprices").Add(1)
		}
		rep := Report{
			Strategy:       Strategy(e.Strategy),
			Cover:          e.Cover,
			FragmentCQs:    append([]int64(nil), e.FragmentCQs...),
			TotalCQs:       e.TotalCQs,
			EstimatedCost:  e.EstimatedCost,
			EstimatedRows:  e.EstimatedRows,
			CoversExplored: e.CoversExplored,
			Exhaustive:     e.Exhaustive,
			Cached:         true,
			OptimizeTime:   time.Since(start),
		}
		frags := make([]fragArtifact, len(e.Fragments))
		for i, f := range e.Fragments {
			frags[i] = fragArtifact{cq: f.CQ, ref: f.Ref, stats: f.Stats, key: f.Key, hasStats: true}
		}
		var obs *feedback.Observation
		if fb != nil {
			obs = &feedback.Observation{
				StoreVersion:  e.StoreVersion,
				QueryKey:      e.QueryKey,
				EstimatedCost: e.EstimatedCost,
				EstimatedRows: e.EstimatedRows,
				RawRows:       e.RawRows,
				Arms:          make([]feedback.ArmObservation, len(frags)),
			}
			for i, fa := range frags {
				obs.Arms[i] = feedback.ArmObservation{Key: fa.key, Stats: fa.stats}
			}
		}
		return a.evaluateFrags(ctx, e.Head, frags, rep, obs)
	} else if out == plancache.Stale {
		reg.Counter("plancache.invalidations").Add(1)
	}
	reg.Counter("plancache.misses").Add(1)

	c, rep, s, err := a.chooseCover(ctx, q, strategy)
	if err != nil {
		return nil, err
	}
	entry := &plancache.Entry{
		Key:             key,
		Strategy:        string(strategy),
		StoreVersion:    storeV,
		SchemaStamp:     schemaS,
		FeedbackVersion: fbV,
		Head:            headVars(q),
		Cover:           c,
		QueryKey:        s.finalKey,
		EstimatedCost:   rep.EstimatedCost,
		EstimatedRows:   rep.EstimatedRows,
		RawRows:         s.final,
		CoversExplored:  rep.CoversExplored,
		Exhaustive:      rep.Exhaustive,
		TotalCQs:        rep.TotalCQs,
		FragmentCQs:     append([]int64(nil), rep.FragmentCQs...),
	}
	// The searcher already reformulated every fragment of the chosen
	// cover while pricing it; reuse those artifacts for both the entry
	// and this evaluation instead of reformulating from scratch.
	frags := make([]fragArtifact, len(c))
	for i, f := range c {
		info := s.frag(f)
		frags[i] = fragArtifact{cq: info.cq, ref: info.ref, stats: info.stats, key: info.key, hasStats: true}
		entry.Fragments = append(entry.Fragments, plancache.Fragment{
			CQ:     info.cq,
			Ref:    info.ref,
			NumCQs: info.numCQs,
			Stats:  info.stats,
			Key:    info.key,
		})
	}
	if err := s.failure(); err != nil {
		return nil, err
	}
	ans, err := a.evaluateFrags(ctx, entry.Head, frags, rep, a.observationFor(s, rep, frags))
	if err != nil {
		return ans, err
	}
	cache.Put(entry)
	return ans, nil
}

// repriceEntry re-prices a cached plan under the current feedback
// corrections: cost and cardinality estimates are recomputed from the
// entry's stored *raw* fragment stats, and the refreshed entry —
// stamped with the feedback version read before re-pricing, so a drift
// event racing it triggers another re-price rather than being lost —
// replaces the old one in the cache.
func (a *Answerer) repriceEntry(e *plancache.Entry, fb *feedback.Loop, fbV uint64) *plancache.Entry {
	p := fb.Params(a.opts.Params)
	scan := fb.ScanFactor()
	arms := make([]cost.ArmStats, len(e.Fragments))
	for i, f := range e.Fragments {
		st := f.Stats
		st.ResultTuples = fb.Correct(f.Key, e.StoreVersion, st.ResultTuples)
		st.ScanTuples *= scan
		arms[i] = st
	}
	final := fb.Correct(e.QueryKey, e.StoreVersion, e.RawRows)
	ne := *e
	ne.FeedbackVersion = fbV
	ne.EstimatedCost = p.JUCQ(arms, final)
	ne.EstimatedRows = final
	a.opts.PlanCache.Reprice(&ne)
	return &ne
}

// ChooseCover runs only the optimization stage: it returns the cover the
// strategy would evaluate, with the search effort filled into the report.
func (a *Answerer) ChooseCover(q bgp.CQ, strategy Strategy) (cover.Cover, Report, error) {
	c, rep, _, err := a.chooseCover(context.Background(), q, strategy)
	return c, rep, err
}

// chooseCover is ChooseCover keeping the searcher, whose memoized
// fragment artifacts (reformulations, statistics) the caching answer
// path reuses. ctx bounds the search: a done context trips the same
// early-stop seam as the wall-clock budget, and the typed
// engine.ErrCanceled is surfaced instead of a silently truncated search.
func (a *Answerer) chooseCover(ctx context.Context, q bgp.CQ, strategy Strategy) (cover.Cover, Report, *searcher, error) {
	if err := checkQuery(q); err != nil {
		return nil, Report{}, nil, err
	}
	s, err := newSearcher(a, q)
	if err != nil {
		return nil, Report{}, nil, err
	}
	if ctx != nil {
		s.done = ctx.Done()
	}
	var sp *trace.Span
	if a.opts.Trace != nil {
		sp = a.opts.Trace.Child("optimize")
		sp.SetStr("strategy", string(strategy))
		defer sp.End()
	}
	start := time.Now()
	rep := Report{Strategy: strategy, Exhaustive: true}
	var c cover.Cover
	switch strategy {
	case UCQ:
		c = cover.WholeQuery(len(q.Atoms))
		rep.CoversExplored = 1
	case SCQ:
		c = cover.PerAtom(len(q.Atoms))
		rep.CoversExplored = 1
	case GCov:
		c, rep.CoversExplored = s.gcov()
	case ECov:
		c, rep.CoversExplored, rep.Exhaustive = s.ecov()
	default:
		return nil, Report{}, nil, fmt.Errorf("core: unknown strategy %q", strategy)
	}
	rep.Cover = c
	rep.EstimatedCost = s.coverCost(c)
	rep.EstimatedRows = s.finalCorr
	for _, f := range c {
		info := s.frag(f)
		rep.FragmentCQs = append(rep.FragmentCQs, info.numCQs)
		rep.TotalCQs += info.numCQs
	}
	if err := s.failure(); err != nil {
		return nil, Report{}, nil, err
	}
	// A context fired mid-search stopped it early (the expired() seam);
	// report the typed cancellation rather than a truncated search.
	if ctx != nil && ctx.Err() != nil {
		return nil, Report{}, nil, fmt.Errorf("%w (%v)", engine.ErrCanceled, ctx.Err())
	}
	rep.OptimizeTime = time.Since(start)
	if sp != nil {
		sp.SetInt("covers_explored", int64(rep.CoversExplored))
		sp.SetInt("fragments", int64(len(c)))
		sp.SetInt("total_cqs", rep.TotalCQs)
		if strategy == ECov && !rep.Exhaustive {
			sp.SetInt("truncated", 1)
		}
		s.recordSpan(sp)
	}
	return c, rep, s, nil
}

// EvaluateCover evaluates the cover-based JUCQ reformulation of q induced
// by cover c (Theorem 3.1) through the raw engine, completing the report.
func (a *Answerer) EvaluateCover(q bgp.CQ, c cover.Cover, rep Report) (*Answer, error) {
	return a.evaluateCover(context.Background(), q, c, rep)
}

// evaluateCover is EvaluateCover under a caller context.
func (a *Answerer) evaluateCover(ctx context.Context, q bgp.CQ, c cover.Cover, rep Report) (*Answer, error) {
	var refSp *trace.Span
	if a.opts.Trace != nil {
		refSp = a.opts.Trace.Child("reformulate")
		refSp.SetInt("fragments", int64(len(c)))
	}
	frags := make([]fragArtifact, len(c))
	for i, f := range c {
		cq := cover.Query(q, f)
		var fragSp *trace.Span
		if refSp != nil {
			fragSp = refSp.Child(fmt.Sprintf("fragment[%d]", i))
			fragSp.SetInt("atoms", int64(len(cq.Atoms)))
		}
		ref, err := reformulate.Reformulate(cq, a.sch)
		if err != nil {
			refSp.End()
			return &Answer{Report: rep}, err
		}
		frags[i] = fragArtifact{cq: cq, ref: ref}
		if fragSp != nil {
			fragSp.SetInt("member_cqs", ref.NumCQs())
			fragSp.End()
		}
	}
	if refSp != nil {
		refSp.SetInt("total_cqs", rep.TotalCQs)
		refSp.End()
	}
	return a.evaluateFrags(ctx, headVars(q), frags, rep, nil)
}

// fragArtifact pairs a cover fragment's subquery with its reformulation —
// the unit of work evaluateFrags turns into an engine arm, whatever
// produced it (a fresh Reformulate call, the searcher's memo, or a plan
// cache entry). When the artifact came from a search or cache entry it
// also carries the raw arm estimates and the fragment's canonical key,
// which the feedback loop pairs with the observed cardinalities.
type fragArtifact struct {
	cq       bgp.CQ
	ref      *reformulate.Reformulation
	stats    cost.ArmStats
	key      string
	hasStats bool
}

// headVars returns the head variable IDs of q (checkQuery enforces that
// heads are variables).
func headVars(q bgp.CQ) []uint32 {
	head := make([]uint32, len(q.Head))
	for i, h := range q.Head {
		head[i] = h.ID
	}
	return head
}

// evaluateFrags runs the evaluation stage over prepared fragment
// artifacts, completing the report. A cached plan (rep.Cached) marks its
// evaluate span so traces show the skipped stages. obs, when non-nil,
// is the estimate side of a feedback observation: the observed arm
// cardinalities, metrics and timing are filled in and the completed
// observation folded into the loop — but only on success, so a
// cancelled or failed evaluation never updates the coefficients.
func (a *Answerer) evaluateFrags(ctx context.Context, head []uint32, frags []fragArtifact, rep Report, obs *feedback.Observation) (*Answer, error) {
	arms := make([]engine.ArmSource, len(frags))
	for i, fa := range frags {
		arms[i] = armSource(fa.cq, fa.ref)
	}
	eng := engineFor(a.raw, ctx)
	fb := a.opts.Feedback
	var armRows []int64
	if fb != nil && obs != nil {
		// Each arm index is observed exactly once, so the callback can
		// write into the preallocated slice without synchronization.
		armRows = make([]int64, len(arms))
		eng = eng.WithArmObserver(func(i int, n int64) { armRows[i] = n })
	}
	var evalSp *trace.Span
	if a.opts.Trace != nil {
		evalSp = a.opts.Trace.Child("evaluate")
		evalSp.SetStr("strategy", string(rep.Strategy))
		if rep.Cached {
			evalSp.SetInt("cached", 1)
		}
		eng = eng.WithSpan(evalSp)
	}
	start := time.Now()
	rel, m, err := eng.EvalArms(head, arms)
	evalSp.End()
	rep.EvalTime = time.Since(start)
	rep.Metrics = m
	if err != nil {
		return &Answer{Report: rep}, err
	}
	if fb != nil && obs != nil {
		for i := range obs.Arms {
			if i < len(armRows) {
				obs.Arms[i].ActualRows = armRows[i]
			}
		}
		obs.ActualRows = int64(rel.Len())
		obs.Metrics = m
		obs.EvalNs = rep.EvalTime.Nanoseconds()
		a.annotateEstimates(evalSp, obs)
		fb.Observe(*obs)
		a.opts.Trace.Registry().Counter("feedback.observations").Add(1)
	}
	return &Answer{Rel: rel, Report: rep}, nil
}

// annotateEstimates records the optimizer's estimates as float attrs on
// the evaluate span and its arm children, next to the observed integer
// counters, so a rendered trace shows estimated vs observed side by
// side. The per-arm estimates are corrected with the factors in force
// before this observation folds in — i.e. what pricing used.
func (a *Answerer) annotateEstimates(evalSp *trace.Span, obs *feedback.Observation) {
	if evalSp == nil {
		return
	}
	evalSp.SetFloat("est_cost", obs.EstimatedCost)
	evalSp.SetFloat("est_rows", obs.EstimatedRows)
	fb := a.opts.Feedback
	scan := fb.ScanFactor()
	for i, ao := range obs.Arms {
		armSp := evalSp.Find(fmt.Sprintf("arm[%d]", i))
		if armSp == nil {
			continue
		}
		armSp.SetFloat("est_rows", fb.Correct(ao.Key, obs.StoreVersion, ao.Stats.ResultTuples))
		armSp.SetFloat("est_scan_tuples", ao.Stats.ScanTuples*scan)
	}
}

// ExplainPlan renders the engine's physical-plan description for the
// cover-based reformulation of q induced by cover c — the EXPLAIN
// counterpart of EvaluateCover. name, if non-nil, decodes dictionary
// constants for display.
func (a *Answerer) ExplainPlan(q bgp.CQ, c cover.Cover, name func(dict.ID) string) (string, error) {
	arms := make([]engine.ArmSource, len(c))
	for i, f := range c {
		cq := cover.Query(q, f)
		ref, err := reformulate.Reformulate(cq, a.sch)
		if err != nil {
			return "", err
		}
		arms[i] = armSource(cq, ref)
	}
	head := make([]uint32, len(q.Head))
	for i, h := range q.Head {
		head[i] = h.ID
	}
	return a.raw.ExplainArms(head, arms, name), nil
}

// armSource streams a fragment's factorized reformulation as an engine
// arm, without materializing the union.
func armSource(cq bgp.CQ, ref *reformulate.Reformulation) engine.ArmSource {
	n := ref.NumCQs()
	return engine.ArmSource{
		Vars:   ref.Vars,
		NumCQs: n,
		Leaves: n * int64(len(cq.Atoms)),
		Each:   ref.Each,
	}
}

func checkQuery(q bgp.CQ) error {
	if len(q.Atoms) == 0 {
		return errors.New("core: query has no atoms")
	}
	if len(q.Atoms) > cover.MaxAtoms {
		return fmt.Errorf("core: query has %d atoms; the cover search supports up to %d", len(q.Atoms), cover.MaxAtoms)
	}
	// An empty head is a boolean query (Section 2.2's x̄ = ∅ case): the
	// answer set is {()} or {}.
	for i, h := range q.Head {
		if !h.Var {
			return fmt.Errorf("core: head position %d is not a variable", i)
		}
	}
	return nil
}
