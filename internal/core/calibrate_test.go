package core_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/testkit"
)

// repStores builds the same fixture data as a flat store and as a
// compressed frozen one. The fixture is padded with one dominant
// property so it clears both the freeze threshold and the decode-ratio
// sample floor.
func repStores(t *testing.T) (*testkit.Example, *storage.Store, *storage.Store) {
	t.Helper()
	e := testkit.Random(5, 100)
	dense := e.ID("densePadding")
	for i := 0; i < 6000; i++ {
		e.Data = append(e.Data, storage.Triple{
			S: e.ID(fmt.Sprintf("padS%d", i%97)),
			P: dense,
			O: e.ID(fmt.Sprintf("padO%d", i)),
		})
	}
	build := func(c storage.Compression) *storage.Store {
		b := storage.NewBuilder().WithCompression(c)
		for _, tr := range e.Data {
			b.Add(tr)
		}
		for _, cs := range e.Closed.ConstraintTriples() {
			b.Add(storage.Triple{S: cs[0], P: cs[1], O: cs[2]})
		}
		return b.Build()
	}
	return e, build(storage.CompressionOff), build(storage.CompressionOn)
}

// Calibration must label the representation it measured and carry a
// sane measured decode ratio, so ForRepresentation can transfer the
// model between flat and frozen stores instead of reusing the flat scan
// constant verbatim on a store that pays block decoding on every scan.
func TestCalibrateRepresentationAware(t *testing.T) {
	e, flat, frozen := repStores(t)
	if flat.Footprint().Compressed || !frozen.Footprint().Compressed {
		t.Fatalf("fixture stores have wrong representations (flat %v, frozen %v)",
			flat.Footprint().Compressed, frozen.Footprint().Compressed)
	}

	flatP := core.Calibrate(engine.New(flat, stats.Collect(flat, e.Vocab), engine.Native))
	frozenP := core.Calibrate(engine.New(frozen, stats.Collect(frozen, e.Vocab), engine.Native))

	if flatP.Provenance != "calibrated" || frozenP.Provenance != "calibrated" {
		t.Errorf("provenance = %q / %q, want calibrated", flatP.Provenance, frozenP.Provenance)
	}
	if flatP.Representation != "flat" {
		t.Errorf("flat store calibrated as %q", flatP.Representation)
	}
	if frozenP.Representation != "frozen" {
		t.Errorf("frozen store calibrated as %q", frozenP.Representation)
	}
	for _, p := range []struct {
		name string
		r    float64
	}{{"flat", flatP.DecodeRatio}, {"frozen", frozenP.DecodeRatio}} {
		if p.r < 1 || p.r > 16 {
			t.Errorf("%s decode ratio %v outside the measured band [1, 16]", p.name, p.r)
		}
	}

	// Transferring a flat calibration to a frozen store scales the scan
	// constant up by the measured ratio; transferring it back recovers
	// the original within rounding.
	ported := flatP.ForRepresentation(true)
	if ported.Representation != "frozen" {
		t.Errorf("ported representation = %q, want frozen", ported.Representation)
	}
	if ported.CT < flatP.CT {
		t.Errorf("porting flat→frozen lowered CT: %v -> %v", flatP.CT, ported.CT)
	}
	back := ported.ForRepresentation(false)
	if !approxEq(back.CT, flatP.CT) {
		t.Errorf("flat→frozen→flat round trip changed CT: %v -> %v", flatP.CT, back.CT)
	}
	// Matching representation is a no-op.
	if same := flatP.ForRepresentation(false); same.CT != flatP.CT || same.Provenance != flatP.Provenance {
		t.Error("ForRepresentation must not touch a matching representation")
	}
}

func approxEq(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-9*(a+b)
}
