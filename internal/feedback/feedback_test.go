package feedback

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/cost"
	"repro/internal/engine"
)

// obsWith builds a minimal observation: one arm whose raw estimate is
// est while the engine observed actual rows.
func obsWith(key string, est float64, actual int64, storeV uint64) Observation {
	return Observation{
		StoreVersion:  storeV,
		QueryKey:      "q:" + key,
		RawRows:       est,
		EstimatedRows: est,
		ActualRows:    actual,
		Arms: []ArmObservation{{
			Key:        key,
			Stats:      cost.ArmStats{Arms: 1, ScanTuples: est * 2, ResultTuples: est},
			ActualRows: actual,
		}},
	}
}

func TestFactorConvergesToObservedRatio(t *testing.T) {
	l := New(Config{})
	// The estimate is consistently 10x too low: actual = 1000, est = 100.
	for i := 0; i < 12; i++ {
		o := obsWith("frag", 100, 1000, 7)
		o.Arms[0].ActualRows = 1000
		l.Observe(o)
	}
	f := l.Factor("frag", 7)
	if f < 5 || f > 10.5 {
		t.Errorf("Factor = %v, want near 10 after repeated 10x underestimates", f)
	}
	// The corrected estimate's relative error must have shrunk well
	// below the raw error of 0.9.
	if s := l.Snapshot(); s.MeanCardError > 0.2 {
		t.Errorf("EW card error = %v, want converged (< 0.2)", s.MeanCardError)
	}
}

// A raw estimate of zero is the worst case for a multiplicative
// correction; the shifted form must still converge on it.
func TestCorrectConvergesOnZeroEstimate(t *testing.T) {
	l := New(Config{})
	for i := 0; i < 12; i++ {
		l.Observe(obsWith("frag", 0, 40, 7))
	}
	if c := l.Correct("frag", 7, 0); c < 25 || c > 41 {
		t.Errorf("Correct(0) = %v, want near the observed 40", c)
	}
	// Stale versions and unknown keys return the estimate unchanged.
	if c := l.Correct("frag", 8, 0); c != 0 {
		t.Errorf("Correct at newer store version = %v, want the raw 0", c)
	}
	if c := l.Correct("unknown", 7, 123); c != 123 {
		t.Errorf("Correct of unknown key = %v, want the raw 123", c)
	}
	var nilLoop *Loop
	if c := nilLoop.Correct("frag", 7, 9); c != 9 {
		t.Errorf("nil loop Correct = %v, want 9", c)
	}
}

func TestFactorIgnoresStaleStoreVersion(t *testing.T) {
	l := New(Config{})
	l.Observe(obsWith("frag", 10, 1000, 3))
	if f := l.Factor("frag", 3); f <= 1 {
		t.Errorf("Factor at matching version = %v, want > 1", f)
	}
	if f := l.Factor("frag", 4); f != 1 {
		t.Errorf("Factor at newer store version = %v, want the neutral 1", f)
	}
	if f := l.Factor("unknown", 3); f != 1 {
		t.Errorf("Factor of unknown key = %v, want 1", f)
	}
	// A new observation at the newer version replaces the stale entry.
	l.Observe(obsWith("frag", 1000, 1000, 4))
	if f := l.Factor("frag", 3); f != 1 {
		t.Errorf("old version after refresh = %v, want 1", f)
	}
}

func TestDriftBumpsVersion(t *testing.T) {
	l := New(Config{})
	v0 := l.Version()
	// 10x off: far past the default 0.5 threshold.
	l.Observe(obsWith("frag", 100, 1000, 1))
	if l.Version() == v0 {
		t.Error("large-error observation must bump the drift version")
	}
	v1 := l.Version()
	// A dead-on observation (the correction has mostly converged after a
	// few more rounds) eventually stops bumping.
	for i := 0; i < 10; i++ {
		l.Observe(obsWith("frag", 100, 1000, 1))
	}
	vStable := l.Version()
	l.Observe(obsWith("frag", 100, 1000, 1))
	if l.Version() != vStable {
		t.Errorf("converged observations still drift: %d -> %d", vStable, l.Version())
	}
	if vStable < v1 {
		t.Error("version must be monotone")
	}
}

func TestParamsScaleTracksCostError(t *testing.T) {
	l := New(Config{})
	base := cost.DefaultParams
	// Cost consistently 8x underestimated.
	for i := 0; i < 20; i++ {
		p := l.Params(base)
		// Predicted cost under current params for a fixed workload.
		pred := p.JUCQ([]cost.ArmStats{{Arms: 1, ScanTuples: 1000, ResultTuples: 100}}, 100)
		o := obsWith("frag", 100, 100, 1)
		o.EstimatedCost = pred
		o.EvalNs = int64(8 * pred)
		o.Metrics = engine.Metrics{TuplesScanned: 2000, RowsJoined: 100, RowsMaterialized: 100, RowsDeduped: 10}
		l.Observe(o)
	}
	p := l.Params(base)
	if p.CT <= base.CT {
		t.Errorf("scan constant %v did not scale up under persistent cost underestimation (base %v)", p.CT, base.CT)
	}
	if p.Provenance != "default+feedback" {
		t.Errorf("Provenance = %q, want default+feedback", p.Provenance)
	}
	for _, v := range []float64{p.CDB, p.CT, p.CJ, p.CM, p.CL, p.CK} {
		if !(v > 0) || math.IsInf(v, 0) {
			t.Errorf("blended constant %v must stay positive and finite", v)
		}
	}
}

func TestCorrectionMapResetOnOverflow(t *testing.T) {
	l := New(Config{MaxCorrections: 8})
	for i := 0; i < 20; i++ {
		l.Observe(obsWith(fmt.Sprintf("frag%d", i), 10, 100, 1))
	}
	s := l.Snapshot()
	if s.Resets == 0 {
		t.Error("overflowing the correction map must reset it")
	}
	if s.Corrections > 2*8 {
		t.Errorf("%d live corrections exceed the configured bound's reach", s.Corrections)
	}
}

func TestNilLoopIsNeutral(t *testing.T) {
	var l *Loop
	if l.Factor("x", 1) != 1 || l.ScanFactor() != 1 || l.Version() != 0 {
		t.Error("nil loop must be fully neutral")
	}
	base := cost.DefaultParams
	if p := l.Params(base); p != base {
		t.Error("nil loop must return params unchanged")
	}
	l.Observe(Observation{}) // must not panic
	if s := l.Snapshot(); s != (Stats{}) {
		t.Error("nil loop snapshot must be zero")
	}
}

// Concurrent observers and readers under -race: no torn coefficients,
// and the factors remain finite.
func TestConcurrentObserveAndRead(t *testing.T) {
	l := New(Config{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := fmt.Sprintf("frag%d", w%3)
			for i := 0; i < 200; i++ {
				o := obsWith(key, 100, int64(100+w*100), 1)
				o.EstimatedCost = 1000
				o.EvalNs = 2000
				o.Metrics = engine.Metrics{TuplesScanned: 500, RowsJoined: 50, RowsDeduped: 5}
				l.Observe(o)
				f := l.Factor(key, 1)
				if math.IsNaN(f) || math.IsInf(f, 0) || f <= 0 {
					t.Errorf("Factor = %v mid-stress", f)
					return
				}
				p := l.Params(cost.DefaultParams)
				if math.IsNaN(p.CT) || p.CT <= 0 {
					t.Errorf("CT = %v mid-stress", p.CT)
					return
				}
				_ = l.Snapshot()
				_ = l.ScanFactor()
			}
		}(w)
	}
	wg.Wait()
	if s := l.Snapshot(); s.Observations != 8*200 {
		t.Errorf("observations = %d, want %d", s.Observations, 8*200)
	}
}

func TestRegressionSolveRejectsSingular(t *testing.T) {
	var r regression
	// Identical feature vectors: rank-deficient normal equations.
	for i := 0; i < 40; i++ {
		r.observe(0.97, [4]float64{1, 100, 100, 100}, 5000)
	}
	if _, ok := r.solve(); ok {
		t.Error("singular system must not solve")
	}
	// Diverse features: solvable, and roughly recovers the generator.
	var r2 regression
	for i := 0; i < 60; i++ {
		x := [4]float64{1, float64(100 + i*37%900), float64(50 + i*17%400), float64(10 + i*7%90)}
		y := 1000 + 3*x[1] + 5*x[2] + 7*x[3]
		r2.observe(1, x, y)
	}
	c, ok := r2.solve()
	if !ok {
		t.Fatal("well-conditioned system must solve")
	}
	if math.Abs(c[1]-3) > 0.5 || math.Abs(c[2]-5) > 0.5 || math.Abs(c[3]-7) > 0.5 {
		t.Errorf("recovered coefficients %v, want ≈ [1000 3 5 7]", c)
	}
}
