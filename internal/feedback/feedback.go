// Package feedback closes the paper's estimate → observe → recalibrate
// loop. The paper (Sec. 4.1) calibrates the cost constants c(·) once per
// engine and prices covers statically ever after; this package compares
// the optimizer's estimated ArmStats against the counters the engine
// actually observed, and maintains two online-updated corrections:
//
//   - per-pattern cardinality correction factors, keyed by the fragment
//     CQ's canonical key (the same key the stats memo and plan cache
//     use) and stamped with the store version they were observed
//     against, combined by an exponentially-weighted geometric mean;
//
//   - cost coefficients, fitted per engine profile by an
//     exponentially-weighted least-squares regression of observed
//     evaluation times over the observed stage counters (scan, join,
//     materialize, dedup), blended into the calibrated baseline with a
//     weight that grows with observation count, plus a global
//     log-scale integral correction that tracks systematic over/under
//     pricing even while the regression is still warming up.
//
// Feedback is strictly advisory: corrections perturb only the *pricing*
// of covers, never their evaluation, and Theorem 3.1 guarantees every
// cover computes the same answer set — so answers are identical with
// feedback on or off (enforced by tests in internal/core). The Loop's
// Version is bumped whenever an observation drifts past the configured
// threshold; the plan cache stores the version a cached plan was priced
// under, and hits with a stale version are re-priced before being
// reported, exactly like the store-version stamps keep answers exact
// under mutation.
package feedback

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/cost"
	"repro/internal/engine"
)

// Config tunes a Loop. The zero value selects the defaults.
type Config struct {
	// Alpha is the exponential weight of the newest observation in the
	// per-pattern cardinality corrections and the scan/cost scale
	// corrections (0 < Alpha ≤ 1; default 0.5).
	Alpha float64
	// Lambda is the forgetting factor of the coefficient regression
	// (0 < Lambda ≤ 1; default 0.97).
	Lambda float64
	// DriftThreshold is the relative error past which an observation
	// counts as drift and bumps Version, forcing cached plans to be
	// re-priced (default 0.5, i.e. 50% relative error).
	DriftThreshold float64
	// MinObservations gates the regression: fitted coefficients blend
	// in only after this many observations, and the blend weight is
	// obs/(obs+MinObservations), capped at 0.8 (default 16).
	MinObservations int64
	// MaxCorrections bounds the per-pattern correction map; on
	// overflow the map is reset (mirroring the bounded stats memo),
	// which only costs accuracy, never exactness (default 16384).
	MaxCorrections int
}

func (c Config) withDefaults() Config {
	if !(c.Alpha > 0 && c.Alpha <= 1) {
		c.Alpha = 0.5
	}
	if !(c.Lambda > 0 && c.Lambda <= 1) {
		c.Lambda = 0.97
	}
	if !(c.DriftThreshold > 0) {
		c.DriftThreshold = 0.5
	}
	if c.MinObservations <= 0 {
		c.MinObservations = 16
	}
	if c.MaxCorrections <= 0 {
		c.MaxCorrections = 1 << 14
	}
	return c
}

// ArmObservation pairs one UCQ arm's estimated stats with its observed
// result cardinality.
type ArmObservation struct {
	// Key is the fragment CQ's canonical key — the correction-factor
	// key, shared with the stats memo and plan-cache fragments.
	Key string
	// Stats is the *raw* (uncorrected) estimate the searcher computed.
	Stats cost.ArmStats
	// ActualRows is the arm's observed result cardinality.
	ActualRows int64
}

// Observation is one completed evaluation's estimate/actual pairing.
// Observations are only recorded for successful evaluations: a
// cancelled or failed query never updates coefficients, so there is no
// torn state to guard against on error paths.
type Observation struct {
	// StoreVersion is the store mutation version the estimates were
	// computed against; corrections are stamped with it.
	StoreVersion uint64
	// QueryKey is the canonical key of the whole query (final-result
	// cardinality correction).
	QueryKey string
	// EstimatedCost is the corrected cost the optimizer reported.
	EstimatedCost float64
	// EstimatedRows is the corrected final-cardinality estimate.
	EstimatedRows float64
	// RawRows is the uncorrected final-cardinality estimate.
	RawRows float64
	// Arms holds the per-arm estimate/actual pairs.
	Arms []ArmObservation
	// ActualRows is the observed final result cardinality.
	ActualRows int64
	// Metrics are the engine's observed counters for the evaluation.
	Metrics engine.Metrics
	// EvalNs is the observed evaluation wall time in nanoseconds.
	EvalNs int64
}

// correction is one per-pattern cardinality correction: an
// exponentially-weighted geometric mean of observed/estimated ratios,
// valid only for the store version it was observed against.
type correction struct {
	storeVersion uint64
	logF         float64 // log of the correction factor
	n            int64   // observations folded in
}

// Stats is a point-in-time snapshot of a Loop.
type Stats struct {
	Observations int64 // evaluations observed
	DriftEvents  int64 // observations whose relative error crossed the threshold
	Corrections  int   // live per-pattern correction entries
	Resets       int64 // correction-map overflow resets
	Version      uint64

	// MeanCardError and MeanCostError are exponentially-weighted means
	// of the relative cardinality / cost estimation error.
	MeanCardError float64
	MeanCostError float64

	// Cumulative error sums and counts, for computing per-epoch means
	// by differencing two snapshots (benchkit's warm-up sweep).
	CardErrorSum   float64
	CardErrorCount int64
	CostErrorSum   float64
	CostErrorCount int64
}

// regression is the 4-coefficient exponentially-weighted least-squares
// state: normal equations A·c = b with A = Σ λ^age · x·xᵀ and
// b = Σ λ^age · y·x over feature vectors
// x = [1, scanned, joined+materialized, deduped+result] and target
// y = observed evaluation nanoseconds.
type regression struct {
	a [4][4]float64
	b [4]float64
}

func (r *regression) observe(lambda float64, x [4]float64, y float64) {
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			r.a[i][j] = lambda*r.a[i][j] + x[i]*x[j]
		}
		r.b[i] = lambda*r.b[i] + y*x[i]
	}
}

// solve runs Gaussian elimination with partial pivoting, reporting
// failure for ill-conditioned systems (near-zero pivots).
func (r *regression) solve() ([4]float64, bool) {
	var a [4][5]float64
	maxDiag := 0.0
	for i := 0; i < 4; i++ {
		copy(a[i][:4], r.a[i][:])
		a[i][4] = r.b[i]
		if d := math.Abs(r.a[i][i]); d > maxDiag {
			maxDiag = d
		}
	}
	if maxDiag == 0 {
		return [4]float64{}, false
	}
	for col := 0; col < 4; col++ {
		pivot := col
		for row := col + 1; row < 4; row++ {
			if math.Abs(a[row][col]) > math.Abs(a[pivot][col]) {
				pivot = row
			}
		}
		a[col], a[pivot] = a[pivot], a[col]
		if math.Abs(a[col][col]) < 1e-9*maxDiag {
			return [4]float64{}, false
		}
		for row := col + 1; row < 4; row++ {
			f := a[row][col] / a[col][col]
			for k := col; k < 5; k++ {
				a[row][k] -= f * a[col][k]
			}
		}
	}
	var c [4]float64
	for i := 3; i >= 0; i-- {
		s := a[i][4]
		for k := i + 1; k < 4; k++ {
			s -= a[i][k] * c[k]
		}
		c[i] = s / a[i][i]
	}
	for _, v := range c {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return [4]float64{}, false
		}
	}
	return c, true
}

// Loop is the shared adaptive-cost state for one engine profile. It is
// safe for concurrent use: Observe folds a completed evaluation in
// under one mutex (so a reader never sees a half-applied update), and
// the read paths (Factor, ScanFactor, Params) take a read lock.
//
//lint:cache feedback
type Loop struct {
	cfg Config

	// version counts drift events; cached plans stamp the version they
	// were priced under and are re-priced when it moves (the same
	// version-stamp discipline the plan cache applies to store
	// mutations).
	version atomic.Uint64

	mu          sync.RWMutex
	corrections map[string]*correction
	reg         regression
	fit         [4]float64 // solved coefficients, valid when fitOK
	fitOK       bool
	fitObs      int64 // observations folded into the regression

	scanLog float64 // EW log of observed/estimated scanned tuples
	scanN   int64
	costLog float64 // integral log-scale correction of total cost

	observations int64
	driftEvents  int64
	resets       int64

	cardEW   float64 // EW mean relative cardinality error
	costEW   float64 // EW mean relative cost error
	cardSum  float64
	cardCnt  int64
	costSum  float64
	costCnt  int64
	firstErr bool // whether the EW error means have been seeded
}

// New returns a Loop with cfg's gaps filled by defaults.
func New(cfg Config) *Loop {
	return &Loop{
		cfg:         cfg.withDefaults(),
		corrections: make(map[string]*correction),
	}
}

// Version returns the current drift version. Plans priced under an
// older version must be re-priced before their estimates are reported.
func (l *Loop) Version() uint64 {
	if l == nil {
		return 0
	}
	return l.version.Load()
}

// Factor returns the cardinality correction factor for the fragment key
// at the given store version: observed/estimated (EW geometric mean),
// or 1 when nothing is known. A correction recorded against a different
// store version is ignored — the estimate it corrected no longer
// describes the data, so replaying it could not be trusted.
func (l *Loop) Factor(key string, storeVersion uint64) float64 {
	if l == nil {
		return 1
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	e := l.corrections[key]
	if e == nil || e.storeVersion != storeVersion {
		return 1
	}
	return math.Exp(e.logF)
}

// Correct applies the key's correction to a raw cardinality estimate.
// The factor acts on raw+1, not raw: corrections learn the ratio
// (actual+1)/(estimated+1), so a raw estimate of zero — which a bare
// multiplicative factor could never move — is still correctable, and
// for large estimates the shift is negligible. Unknown keys and stale
// store versions return the estimate unchanged.
func (l *Loop) Correct(key string, storeVersion uint64, raw float64) float64 {
	if l == nil {
		return raw
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	e := l.corrections[key]
	if e == nil || e.storeVersion != storeVersion {
		return raw
	}
	return applyShifted(raw, math.Exp(e.logF))
}

// applyShifted applies a (actual+1)/(estimated+1) ratio to a raw
// estimate, clamping the result to stay a cardinality.
func applyShifted(raw, factor float64) float64 {
	if !(raw >= 0) { // NaN or negative estimates correct to nothing
		raw = 0
	}
	c := (raw+1)*factor - 1
	if c < 0 {
		return 0
	}
	return c
}

// ScanFactor returns the global scanned-tuples correction factor
// (observed/estimated, EW geometric mean), or 1 when unwarmed.
func (l *Loop) ScanFactor() float64 {
	if l == nil {
		return 1
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	if l.scanN == 0 {
		return 1
	}
	return math.Exp(l.scanLog)
}

// Params blends the learned cost coefficients into base. The global
// log-scale correction multiplies every constant uniformly (a positive
// scale, so the relative order of covers under it alone is unchanged);
// once the regression has enough observations and solves to a sane
// model, its fitted constants blend in with weight obs/(obs+MinObs),
// capped at 0.8 so the calibrated baseline always keeps a voice.
func (l *Loop) Params(base cost.Params) cost.Params {
	if l == nil {
		return base
	}
	l.mu.RLock()
	defer l.mu.RUnlock()

	out := base
	scale := math.Exp(l.costLog)
	out.CDB *= scale
	out.CT *= scale
	out.CJ *= scale
	out.CM *= scale
	out.CL *= scale
	out.CK *= scale

	if l.fitOK && l.fitObs >= l.cfg.MinObservations {
		w := float64(l.fitObs) / float64(l.fitObs+l.cfg.MinObservations)
		if w > 0.8 {
			w = 0.8
		}
		blend := func(cur, fitted, floor, ceil float64) float64 {
			if fitted <= 0 || math.IsNaN(fitted) || math.IsInf(fitted, 0) {
				return cur
			}
			v := (1-w)*cur + w*fitted
			return math.Min(math.Max(v, floor), ceil)
		}
		// Coefficient lattice: the regression fits
		//   y ≈ c0 + c1·scanned + c2·(joined+materialized) + c3·(deduped+result)
		// and the model's constants map onto it as CDB ≈ c0,
		// CT+CJ ≈ c1 (every scanned tuple is charged both),
		// CJ+CM ≈ c2, CL ≈ c3. Fitted values are clamped to a wide
		// band around the baseline so one bad solve cannot launch the
		// model into pricing nonsense.
		out.CDB = blend(out.CDB, l.fit[0], math.Max(base.CDB/64, 1), math.Max(base.CDB*64, 1))
		scanJoin := base.CT + base.CJ
		half := blend(out.CT+out.CJ, l.fit[1], scanJoin/64, scanJoin*64) / 2
		out.CT, out.CJ = half, half
		out.CM = blend(out.CM, math.Max(l.fit[2]-out.CJ, l.fit[2]/4), base.CM/64, base.CM*64)
		out.CL = blend(out.CL, l.fit[3], base.CL/64, base.CL*64)
		out.CK = out.CL / 4
	}
	if base.Provenance != "" {
		out.Provenance = base.Provenance + "+feedback"
	} else {
		out.Provenance = "feedback"
	}
	return out
}

// clampRatio keeps log-space updates finite and bounded.
func clampRatio(actual, estimated float64) float64 {
	if !(estimated > 0) {
		estimated = 1e-9
	}
	if !(actual > 0) {
		actual = 1e-9
	}
	r := actual / estimated
	if r < 1e-4 {
		return 1e-4
	}
	if r > 1e4 {
		return 1e4
	}
	return r
}

// relErr is the symmetric-free relative error |actual-est| / max(actual, 1).
func relErr(estimated, actual float64) float64 {
	denom := math.Max(actual, 1)
	return math.Abs(actual-estimated) / denom
}

// Observe folds one completed evaluation into the loop: updates the
// per-pattern cardinality corrections, the scan and cost scale
// corrections, the coefficient regression, and the error statistics;
// bumps Version when any relative error crosses the drift threshold.
// All state mutates under one mutex, so concurrent observers and
// readers never see torn coefficients.
func (l *Loop) Observe(o Observation) {
	if l == nil {
		return
	}
	alpha := l.cfg.Alpha

	l.mu.Lock()
	defer l.mu.Unlock()

	l.observations++
	drift := false

	// Per-arm cardinality corrections. The error is measured against
	// the *corrected* estimate (the shifted factor applied to the raw
	// one): that is what the optimizer actually used, so convergence
	// shows up as this error shrinking even though updates target the
	// raw ratio. The learned ratio is (actual+1)/(estimated+1) — see
	// Correct — so zero estimates converge too.
	var cardErrSum float64
	var cardErrN int64
	record := func(key string, rawEst float64, actual int64, storeV uint64) {
		e := l.corrections[key]
		prevF := 1.0
		if e != nil && e.storeVersion == storeV {
			prevF = math.Exp(e.logF)
		}
		corrected := applyShifted(rawEst, prevF)
		err := relErr(corrected, float64(actual))
		cardErrSum += err
		cardErrN++
		if err > l.cfg.DriftThreshold {
			drift = true
		}

		if !(rawEst >= 0) {
			rawEst = 0
		}
		ratio := clampRatio(float64(actual)+1, rawEst+1)
		target := math.Log(ratio)
		if e == nil || e.storeVersion != storeV {
			if len(l.corrections) >= l.cfg.MaxCorrections {
				l.corrections = make(map[string]*correction)
				l.resets++
			}
			l.corrections[key] = &correction{storeVersion: storeV, logF: alpha * target, n: 1}
			return
		}
		e.logF = (1-alpha)*e.logF + alpha*target
		e.n++
	}
	for _, a := range o.Arms {
		if a.Key == "" {
			continue
		}
		record(a.Key, a.Stats.ResultTuples, a.ActualRows, o.StoreVersion)
	}
	if o.QueryKey != "" {
		record(o.QueryKey, o.RawRows, o.ActualRows, o.StoreVersion)
	}

	// Global scanned-tuples correction (raw estimate vs engine counter).
	var estScan float64
	for _, a := range o.Arms {
		estScan += a.Stats.ScanTuples
	}
	if estScan > 0 && o.Metrics.TuplesScanned > 0 {
		t := math.Log(clampRatio(float64(o.Metrics.TuplesScanned), estScan))
		l.scanLog = (1-alpha)*l.scanLog + alpha*t
		l.scanN++
	}

	// Cost corrections: integral log-scale against the corrected
	// estimate (self-correcting — the next estimate already includes
	// this scale, so the update drives the ratio to 1)...
	costErr := -1.0
	if o.EstimatedCost > 0 && o.EvalNs > 0 {
		costErr = relErr(o.EstimatedCost, float64(o.EvalNs))
		if costErr > l.cfg.DriftThreshold {
			drift = true
		}
		step := 0.3 * math.Log(clampRatio(float64(o.EvalNs), o.EstimatedCost))
		l.costLog += step
		const maxLog = 4.1588830833596715 // ln 64
		if l.costLog > maxLog {
			l.costLog = maxLog
		} else if l.costLog < -maxLog {
			l.costLog = -maxLog
		}
	}
	// ...and the coefficient regression over observed stage counters.
	if o.EvalNs > 0 {
		m := o.Metrics
		x := [4]float64{
			1,
			float64(m.TuplesScanned),
			float64(m.RowsJoined + m.RowsMaterialized),
			float64(m.RowsDeduped + o.ActualRows),
		}
		l.reg.observe(l.cfg.Lambda, x, float64(o.EvalNs))
		l.fitObs++
		if l.fitObs >= l.cfg.MinObservations {
			if c, ok := l.reg.solve(); ok {
				l.fit, l.fitOK = c, true
			}
		}
	}

	// Error statistics.
	if cardErrN > 0 {
		mean := cardErrSum / float64(cardErrN)
		l.cardSum += mean
		l.cardCnt++
		if !l.firstErr {
			l.cardEW = mean
		} else {
			l.cardEW = (1-alpha)*l.cardEW + alpha*mean
		}
	}
	if costErr >= 0 {
		l.costSum += costErr
		l.costCnt++
		if !l.firstErr {
			l.costEW = costErr
		} else {
			l.costEW = (1-alpha)*l.costEW + alpha*costErr
		}
	}
	l.firstErr = true

	if drift {
		l.driftEvents++
		l.version.Add(1)
	}
}

// Snapshot returns the loop's current statistics.
func (l *Loop) Snapshot() Stats {
	if l == nil {
		return Stats{}
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	return Stats{
		Observations:   l.observations,
		DriftEvents:    l.driftEvents,
		Corrections:    len(l.corrections),
		Resets:         l.resets,
		Version:        l.version.Load(),
		MeanCardError:  l.cardEW,
		MeanCostError:  l.costEW,
		CardErrorSum:   l.cardSum,
		CardErrorCount: l.cardCnt,
		CostErrorSum:   l.costSum,
		CostErrorCount: l.costCnt,
	}
}
