package engine_test

import (
	"math/rand"
	"testing"

	"repro/internal/bgp"
	"repro/internal/dict"
	"repro/internal/engine"
	"repro/internal/reformulate"
	"repro/internal/schema"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/testkit"
	"repro/internal/trace"
)

// The shared-scan layer (pattern-scan memo + merged member scans over a
// pinned snapshot) must be invisible in the results: byte-identical
// relations and identical metrics to the baseline scan-per-member path,
// on every profile, sequentially and in parallel, for UCQs and
// multi-arm JUCQs alike.
func TestSharedScanMatchesBaseline(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		e := testkit.Random(seed, 50)
		raw := e.RawStore()
		st := stats.Collect(raw, e.Vocab)
		rng := rand.New(rand.NewSource(seed + 177))
		q := testkit.RandomQuery(e, rng)
		if len(q.Atoms) < 2 || !connectedQuery(q) {
			continue
		}
		ref, err := reformulate.Reformulate(q, e.Closed)
		if err != nil {
			t.Fatal(err)
		}
		u, err := ref.UCQ(100000)
		if err != nil {
			t.Fatal(err)
		}
		head, arms := scqArms(t, e, q)
		for _, prof := range append(engine.Profiles(), engine.Native) {
			for _, par := range []int{1, 8} {
				shared := engine.New(raw, st, prof).WithParallelism(par)
				base := engine.New(raw, st, prof).WithParallelism(par).WithSharedScan(false)

				wantRel, wantM, err := base.EvalUCQ(u)
				if err != nil {
					t.Fatalf("seed %d %s par=%d: baseline UCQ: %v", seed, prof.Name, par, err)
				}
				gotRel, gotM, err := shared.EvalUCQ(u)
				if err != nil {
					t.Fatalf("seed %d %s par=%d: shared UCQ: %v", seed, prof.Name, par, err)
				}
				if !relEqual(gotRel, wantRel) {
					t.Errorf("seed %d %s par=%d: shared UCQ relation differs from baseline", seed, prof.Name, par)
				}
				if gotM != wantM {
					t.Errorf("seed %d %s par=%d: shared UCQ metrics = %+v, baseline = %+v", seed, prof.Name, par, gotM, wantM)
				}

				wantRel, wantM, err = base.EvalArms(head, arms)
				if err != nil {
					t.Fatalf("seed %d %s par=%d: baseline JUCQ: %v", seed, prof.Name, par, err)
				}
				gotRel, gotM, err = shared.EvalArms(head, arms)
				if err != nil {
					t.Fatalf("seed %d %s par=%d: shared JUCQ: %v", seed, prof.Name, par, err)
				}
				if !relEqual(gotRel, wantRel) {
					t.Errorf("seed %d %s par=%d: shared JUCQ relation differs from baseline", seed, prof.Name, par)
				}
				if gotM != wantM {
					t.Errorf("seed %d %s par=%d: shared JUCQ metrics = %+v, baseline = %+v", seed, prof.Name, par, gotM, wantM)
				}
			}
		}
	}
}

// A handcrafted UCQ whose members differ only in the class constant must
// light up the new trace counters deterministically: every member joins
// one merged-scan group, and the shared depth-1 scans hit the memo.
func TestSharedScanCountersObservable(t *testing.T) {
	const (
		typeID   = dict.ID(1)
		worksFor = dict.ID(2)
	)
	classes := []dict.ID{10, 11, 12, 13}
	b := storage.NewBuilder()
	for i := 0; i < 10; i++ {
		s := dict.ID(100 + i)
		for _, c := range classes {
			b.Add(storage.Triple{S: s, P: typeID, O: c})
		}
		b.Add(storage.Triple{S: s, P: worksFor, O: dict.ID(500 + i)})
	}
	raw := b.Build()
	st := stats.Collect(raw, schema.Vocab{})

	u := bgp.UCQ{Vars: []uint32{1, 2}}
	for _, c := range classes {
		u.CQs = append(u.CQs, bgp.CQ{
			Head: []bgp.Term{bgp.V(1), bgp.V(2)},
			Atoms: []bgp.Atom{
				{S: bgp.V(1), P: bgp.C(typeID), O: bgp.C(c)},
				{S: bgp.V(1), P: bgp.C(worksFor), O: bgp.V(2)},
			},
		})
	}

	sp := trace.New("sharedscan")
	eng := engine.New(raw, st, engine.Native).WithParallelism(1).WithSpan(sp)
	rel, _, err := eng.EvalUCQ(u)
	if err != nil {
		t.Fatal(err)
	}
	sp.End()
	// 10 subjects x 1 dept, identical across the 4 members after dedup.
	if rel.Len() != 10 {
		t.Fatalf("got %d rows, want 10", rel.Len())
	}

	snap := sp.Registry().Snapshot()
	if got := snap["merged_members"]; got != int64(len(classes)) {
		t.Errorf("merged_members = %d, want %d", got, len(classes))
	}
	// Entries install on a pattern's second scan: member 1 marks the 10
	// depth-1 (subject, worksFor) patterns seen, member 2 caches them,
	// members 3-4 replay them: 20 hits, 20 misses.
	if got := snap["scancache.misses"]; got != 20 {
		t.Errorf("scancache.misses = %d, want 20", got)
	}
	if got := snap["scancache.hits"]; got != 20 {
		t.Errorf("scancache.hits = %d, want 20", got)
	}
	if got := snap["snapshot_ranges"]; got <= 0 {
		t.Errorf("snapshot_ranges = %d, want > 0", got)
	}
}
