package engine

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/bgp"
	"repro/internal/dict"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/trace"
)

// ArmSource supplies the member CQs of one UCQ arm without requiring the
// union to be materialized first — reformulations with hundreds of
// thousands of members are streamed straight out of their factorized form.
type ArmSource struct {
	// Vars names the arm's head columns.
	Vars []uint32
	// NumCQs is the member count (used for reporting).
	NumCQs int64
	// Leaves is the scan-leaf count (members × atoms), used for the
	// plan-size admission check.
	Leaves int64
	// Each streams the member CQs; it must stop when f returns false.
	Each func(f func(bgp.CQ) bool) bool
}

// SourceFromUCQ wraps a materialized UCQ as an ArmSource.
func SourceFromUCQ(u bgp.UCQ) ArmSource {
	var leaves int64
	for _, cq := range u.CQs {
		leaves += int64(len(cq.Atoms))
	}
	return ArmSource{
		Vars:   u.Vars,
		NumCQs: int64(len(u.CQs)),
		Leaves: leaves,
		Each: func(f func(bgp.CQ) bool) bool {
			for _, cq := range u.CQs {
				if !f(cq) {
					return false
				}
			}
			return true
		},
	}
}

// EvalCQ evaluates a single conjunctive query.
func (e *Engine) EvalCQ(q bgp.CQ) (*Relation, Metrics, error) {
	vars := make([]uint32, len(q.Head))
	for i, h := range q.Head {
		if h.Var {
			vars[i] = h.ID
		}
	}
	u := bgp.UCQ{Vars: vars, CQs: []bgp.CQ{q}}
	return e.EvalUCQ(u)
}

// EvalUCQ evaluates a union of conjunctive queries under set semantics.
func (e *Engine) EvalUCQ(u bgp.UCQ) (*Relation, Metrics, error) {
	return e.EvalArms(u.Vars, []ArmSource{SourceFromUCQ(u)})
}

// EvalJUCQ evaluates a join of UCQs: arms are admission-checked,
// evaluated, joined with the profile's arm-join algorithm, projected on
// the head and deduplicated.
func (e *Engine) EvalJUCQ(j bgp.JUCQ) (*Relation, Metrics, error) {
	arms := make([]ArmSource, len(j.Arms))
	for i, arm := range j.Arms {
		arms[i] = SourceFromUCQ(arm)
	}
	return e.EvalArms(j.Head, arms)
}

// EvalArms is the general entry point: a join of streamed UCQ arms,
// projected on head. A single arm is a plain UCQ evaluation. When the
// engine carries a trace span (WithSpan), the evaluation records its
// operator tree and metrics under it.
func (e *Engine) EvalArms(head []uint32, arms []ArmSource) (*Relation, Metrics, error) {
	// Pin one immutable store snapshot for the whole evaluation: every
	// bind-join scan and planning-time stats probe below reads through
	// it, lock-free. This is what makes the recursive bind-join safe —
	// the old path nested store read locks inside scan callbacks, which
	// deadlocks as soon as a writer queues between the acquisitions —
	// and it gives all workers one consistent view under mutation.
	ctx := &evalCtx{
		prof:   e.prof,
		par:    e.Parallelism(),
		span:   e.span,
		snap:   e.store.Snapshot(),
		shared: !e.noShared,
		fact:   !e.noFact,
	}
	if e.ctx != nil {
		ctx.done, ctx.cctx = e.ctx.Done(), e.ctx
	}
	if evalSnapshotHook != nil {
		evalSnapshotHook(ctx.snap)
	}
	// Release runs after the deferred scanCache release below (LIFO), so
	// every cached range subslice borrowed from the snapshot's decoded
	// blocks is dropped before the snapshot returns them to the pool. By
	// then all evaluation workers have joined (evalArms returns only
	// after its wait groups), so no read is in flight.
	defer ctx.snap.Release()
	if ctx.shared {
		ctx.scans = newScanCache()
		defer ctx.scans.release()
	}
	rel, err := e.evalArms(ctx, head, arms)
	ctx.finishSpan(e.span, err)
	return rel, ctx.snapshot(), err
}

// evalSnapshotHook, when non-nil, observes the snapshot every evaluation
// pins — a test seam for asserting that cancellation (like every other
// exit path) releases the snapshot. nil outside tests; the production
// path pays one nil check per evaluation.
var evalSnapshotHook func(*storage.Snapshot)

// evalArms is EvalArms' body, with the metrics snapshot and the span
// bookkeeping hoisted into the wrapper so every return path stays a
// plain error return.
func (e *Engine) evalArms(ctx *evalCtx, head []uint32, arms []ArmSource) (*Relation, error) {
	// A context already canceled at admission fails before any work.
	if err := ctx.canceled(); err != nil {
		return nil, err
	}
	// Admission control: total plan size.
	var leaves int64
	for _, a := range arms {
		leaves += a.Leaves
	}
	if sp := ctx.span; sp != nil {
		sp.SetStr("profile", e.prof.Name)
		sp.SetInt("arms", int64(len(arms)))
		sp.SetInt("plan_leaves", leaves)
		sp.SetInt("workers", int64(ctx.par))
	}
	if e.prof.MaxPlanLeaves > 0 && leaves > e.prof.MaxPlanLeaves {
		return nil, fmt.Errorf("%w (%s: %d scan leaves)", ErrPlanTooComplex, e.prof.Name, leaves)
	}

	// Evaluate each arm into a materialized relation; independent arms
	// run concurrently when the engine has more than one worker.
	rels, err := e.evalAllArms(ctx, arms)
	if err != nil {
		return nil, err
	}
	// The largest-result arm is pipelined into the top join (the cost
	// model's assumption); every other arm is a materialized
	// intermediate.
	if len(rels) > 1 {
		largest := 0
		for i, r := range rels {
			if r.Len() > rels[largest].Len() {
				largest = i
			}
		}
		for i, r := range rels {
			if i != largest {
				ctx.rowsMaterialized.Add(int64(r.Len()))
			}
		}
	}

	// Join the arms, smallest first, always picking a connected arm so
	// no cartesian product is formed (covers guarantee one exists).
	order := make([]int, len(rels))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return rels[order[a]].Len() < rels[order[b]].Len() })

	cur := rels[order[0]]
	used := map[int]bool{order[0]: true}
	for len(used) < len(rels) {
		next := -1
		for _, i := range order {
			if used[i] {
				continue
			}
			if sharesVars(cur.Vars, rels[i].Vars) {
				next = i
				break
			}
		}
		if next == -1 { // disconnected: fall back to the smallest remaining
			for _, i := range order {
				if !used[i] {
					next = i
					break
				}
			}
		}
		used[next] = true
		joined, err := joinRelations(ctx, cur, rels[next], e.prof.ArmJoin)
		if err != nil {
			return nil, err
		}
		cur = joined
	}

	// Final projection on the head, with duplicate elimination.
	pos := cur.colIndex()
	cols := make([]int, len(head))
	for i, v := range head {
		c, ok := pos[v]
		if !ok {
			return nil, fmt.Errorf("engine: head variable ?v%d not produced by any arm", v)
		}
		cols[i] = c
	}
	out, err := projectDistinct(ctx, cur, cols, head)
	if err != nil {
		return nil, err
	}
	if sp := ctx.span; sp != nil {
		sp.SetInt("rows_out", int64(out.Len()))
		if f := out.Factorized(); f != nil {
			sp.SetInt("factorized", 1)
			sp.SetInt("components", int64(f.Components()))
			sp.SetInt("stored_rows", f.StoredRows())
			sp.SetInt("logical_rows", f.LogicalRows())
		}
	}
	return out, nil
}

// projectDistinct projects cur on cols with duplicate elimination — the
// final operator of every plan. The output relation is charged against
// the materialization budget like any other intermediate (the dedup set
// grows in lockstep with out.Rows, and checkRows guards the appends), so
// ErrMemoryBudget cannot be bypassed at the last operator. With more than
// one worker the input is split into contiguous chunks deduplicated
// locally and re-deduplicated in chunk order, which keeps the output rows
// in exactly the sequential first-occurrence order.
func projectDistinct(ctx *evalCtx, cur *Relation, cols []int, head []uint32) (*Relation, error) {
	sp := ctx.span.Child("project")
	if sp != nil {
		sp.SetInt("rows_in", int64(cur.Len()))
		defer sp.End()
	}
	if cur.fact != nil && cur.Rows == nil {
		return projectDistinctFactorized(ctx, sp, cur, cols, head)
	}
	if ctx.par > 1 && len(cur.Rows) >= parallelRowThreshold {
		return projectDistinctParallel(ctx, sp, cur, cols, head)
	}
	out := &Relation{Vars: head}
	dedup := newDedupSet(ctx)
	var arena rowArena
	for _, row := range cur.Rows {
		proj := arena.alloc(len(cols))
		for i, c := range cols {
			proj[i] = row[c]
		}
		fresh, err := dedup.addOwned(proj)
		if err != nil {
			return nil, err
		}
		if fresh {
			out.Rows = append(out.Rows, proj)
		} else {
			arena.release(proj)
		}
	}
	if sp != nil {
		sp.SetInt("rows_out", int64(out.Len()))
		sp.SetInt("dedup_hits", dedup.hits)
		sp.SetInt("arena_chunks", int64(arena.chunks))
	}
	return out, nil
}

func sharesVars(a, b []uint32) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}

// mergeWindow is how many member CQs the sequential arm loop gathers
// before planning them together: merged-scan groups form within one
// window. The window only scopes scan *planning* — members are still
// evaluated strictly in stream order with their own join orders — so
// its size affects sharing opportunity, never results or metrics.
const mergeWindow = 256

// evalArm evaluates one UCQ arm. With one worker, member CQs are
// gathered into windows, planned together (shared and merged scans) and
// bind-joined in stream order into a shared duplicate-elimination set;
// with more workers, the members are sharded over a worker pool (see
// evalArmSharded) with a deterministic merge.
func (e *Engine) evalArm(ctx *evalCtx, sp *trace.Span, arm ArmSource) (*Relation, error) {
	if sp != nil {
		sp.SetInt("members", arm.NumCQs)
		defer sp.End()
	}
	// The factorized path intercepts before the parallelism dispatch:
	// whether an arm factorizes depends on its member plans alone, never
	// on the worker count, so serial and parallel evaluations stay
	// byte-identical. An arm that does not decompose reports handled ==
	// false and falls through unchanged.
	if ctx.fact {
		rel, handled, err := e.evalArmFactorized(ctx, sp, arm)
		if handled || err != nil {
			return rel, err
		}
	}
	if ctx.par > 1 {
		return e.evalArmSharded(ctx, sp, arm)
	}
	out := &Relation{Vars: arm.Vars}
	dedup := newDedupSet(ctx)
	sc := newArmScratch()
	defer sc.release()
	var failure error
	window := make([]bgp.CQ, 0, mergeWindow)
	flush := func() bool {
		if len(window) == 0 {
			return true
		}
		_, err := e.evalMemberRun(ctx, sc, window, dedup, out)
		window = window[:0]
		if err != nil {
			failure = err
			return false
		}
		return true
	}
	arm.Each(func(cq bgp.CQ) bool {
		window = append(window, cq)
		if len(window) == mergeWindow {
			return flush()
		}
		return true
	})
	if failure == nil {
		flush()
	}
	if failure != nil {
		return nil, failure
	}
	if sp != nil {
		sp.SetInt("rows_out", int64(out.Len()))
		sp.SetInt("dedup_hits", dedup.hits)
		sp.SetInt("arena_chunks", int64(dedup.arena.chunks))
	}
	return out, nil
}

// memberPlan is one member CQ prepared for evaluation: its join order,
// its depth-0 scan pattern, and — when a merged scan located it — the
// pre-resolved sorted subrange its depth-0 scan replays.
type memberPlan struct {
	cq    bgp.CQ
	order []int
	pat0  storage.Pattern
	pre   []storage.Triple
	preOK bool
}

// distKey keys the per-arm DistinctForVar memo.
type distKey struct {
	a bgp.Atom
	v uint32
}

// armScratch is the per-worker evaluation state of one arm: the row
// arena, the planning memos (join orders per member key, per-atom
// cardinalities and per-variable distinct counts shared across the
// arm's near-identical members), the merge-planning buffers, and the
// reusable bind-join buffers. One scratch is owned by one goroutine —
// the sequential arm loop or a single shard worker — so none of it
// needs locking.
type armScratch struct {
	arena  rowArena
	orders map[string][]int
	cards  map[bgp.Atom]float64
	dist   map[distKey]float64
	plans  []memberPlan
	bind   map[uint32]dict.ID
	row    []dict.ID
	newly  [][]uint32

	// planMergedScans scratch, reused window after window.
	mergeBy map[mergeKey]int
	groups  []mergeGroup
	bySize  []int
	claimed []bool
	members []int
	consts  []dict.ID
	ranges  [][]storage.Triple

	// orderKey scratch: the byte key under construction and the
	// first-appearance variable numbering of the member being keyed.
	keyBuf []byte
	rename []uint32

	// In-place sorters for planMergedScans: values here rather than
	// sort.SliceStable closures so sorting a window allocates nothing.
	gsort groupSorter
	msort memberSorter

	// probes adapts the scratch's shared cardinality memos to
	// greedyOrder, re-pointed at the current snapshot per call.
	probes statProbes

	// greedy is greedyOrder's working state, reused member after member
	// on the shared path (the baseline and planning paths pay per call).
	greedy greedyState

	// shapeSeen is a tag table over member shape hashes: an order is
	// only installed in the orders cache on its shape's second
	// occurrence. Reformulation dedups members, so most shapes appear
	// once per arm — installing those would pay a string and map insert
	// per member for entries that can never be hit again. A collision
	// only installs an entry early or late, never a wrong order.
	shapeSeen [shapeSeenSlots]uint32
}

// shapeSeenSlots sizes the order-cache admission tag table (4 KB).
const shapeSeenSlots = 1 << 10

// armScratchPool recycles arm scratches across evaluations: the map
// buckets and the capacities of every bookkeeping buffer survive, so a
// steady-state planning window allocates nothing.
var armScratchPool = sync.Pool{New: func() any {
	return &armScratch{
		orders:  make(map[string][]int),
		cards:   make(map[bgp.Atom]float64),
		dist:    make(map[distKey]float64),
		bind:    make(map[uint32]dict.ID),
		mergeBy: make(map[mergeKey]int),
	}
}}

func newArmScratch() *armScratch { return armScratchPool.Get().(*armScratch) }

// release returns the scratch to the pool, dropping everything that
// must not carry across evaluations: the row arena (its chunks are
// referenced by the relation just produced), the planning memos (stale
// against the next evaluation's snapshot) and every retained member or
// snapshot slice. Only the owning goroutine may call it, after the
// produced rows were copied or handed off.
func (sc *armScratch) release() {
	sc.arena = rowArena{}
	clear(sc.orders)
	clear(sc.cards)
	clear(sc.dist)
	clear(sc.bind)
	clear(sc.plans[:cap(sc.plans)])
	sc.plans = sc.plans[:0]
	clear(sc.ranges[:cap(sc.ranges)])
	sc.shapeSeen = [shapeSeenSlots]uint32{}
	sc.gsort, sc.msort, sc.probes = groupSorter{}, memberSorter{}, statProbes{}
	clear(sc.greedy.bound)
	armScratchPool.Put(sc)
}

// evalMemberRun plans and evaluates a window of member CQs in order,
// returning how many members were started (for shard accounting) and
// the first failure. Planning may merge the depth-0 scans of members
// differing in one constant; evaluation order, per-member join orders
// and all per-tuple accounting are exactly those of member-at-a-time
// evaluation.
func (e *Engine) evalMemberRun(ctx *evalCtx, sc *armScratch, cqs []bgp.CQ, dedup *dedupSet, out *Relation) (int, error) {
	plans := sc.plans[:0]
	for _, cq := range cqs {
		p := memberPlan{cq: cq, order: e.memberOrder(ctx, sc, cq)}
		if len(p.order) > 0 {
			p.pat0 = atomPattern(cq.Atoms[p.order[0]])
		}
		plans = append(plans, p)
	}
	sc.plans = plans
	if ctx.shared && len(plans) > 1 {
		e.planMergedScans(ctx, sc, plans)
	}
	for i := range plans {
		ctx.unionArms.Add(1)
		if err := e.evalMember(ctx, sc, &plans[i], dedup, out); err != nil {
			return i + 1, err
		}
	}
	return len(plans), nil
}

// mergeKey identifies one family of depth-0 patterns that differ only
// in the constant at position vpos.
type mergeKey struct {
	masked storage.Pattern
	vpos   int
}

// mergeGroup is one candidate family of a merge-planning window; the
// idxs slices are retained in the arm scratch and reused.
type mergeGroup struct {
	key  mergeKey
	idxs []int
}

// groupSorter stably orders a window's candidate groups largest-first.
type groupSorter struct {
	bySize []int
	groups []mergeGroup
}

func (s *groupSorter) Len() int { return len(s.bySize) }
func (s *groupSorter) Less(a, b int) bool {
	return len(s.groups[s.bySize[a]].idxs) > len(s.groups[s.bySize[b]].idxs)
}
func (s *groupSorter) Swap(a, b int) { s.bySize[a], s.bySize[b] = s.bySize[b], s.bySize[a] }

// memberSorter stably orders one group's members by the constant at the
// group's varying position, as MultiRange requires.
type memberSorter struct {
	members []int
	plans   []memberPlan
	vpos    int
}

func (s *memberSorter) Len() int { return len(s.members) }
func (s *memberSorter) Less(a, b int) bool {
	return patPos(s.plans[s.members[a]].pat0, s.vpos) < patPos(s.plans[s.members[b]].pat0, s.vpos)
}
func (s *memberSorter) Swap(a, b int) { s.members[a], s.members[b] = s.members[b], s.members[a] }

// planMergedScans groups the window's members by "depth-0 pattern equal
// up to one constant position" and asks the snapshot to locate every
// group's subranges in a single pass over the covering index range
// (MultiRange) — the shared-scan answer to reformulations whose members
// differ in one class or property constant. Each member keeps its own
// subrange, join order and evaluation slot, so only the range-locating
// work is shared. Groups are formed greedily, largest first, with
// first-encounter order breaking ties, which keeps the merged_members
// counter deterministic. All bookkeeping lives in the arm scratch, so a
// steady-state window allocates nothing.
func (e *Engine) planMergedScans(ctx *evalCtx, sc *armScratch, plans []memberPlan) {
	clear(sc.mergeBy)
	groups := sc.groups[:0]
	for i := range plans {
		if len(plans[i].order) == 0 {
			continue
		}
		pat := plans[i].pat0
		for pos := 0; pos < 3; pos++ {
			if patPos(pat, pos) == dict.None {
				continue
			}
			k := mergeKey{masked: maskPos(pat, pos), vpos: pos}
			gi, ok := sc.mergeBy[k]
			if !ok {
				gi = len(groups)
				sc.mergeBy[k] = gi
				if gi < cap(groups) {
					groups = groups[:gi+1]
					groups[gi] = mergeGroup{key: k, idxs: groups[gi].idxs[:0]}
				} else {
					groups = append(groups, mergeGroup{key: k})
				}
			}
			groups[gi].idxs = append(groups[gi].idxs, i)
		}
	}
	sc.groups = groups
	bySize := sc.bySize[:0]
	for i := range groups {
		bySize = append(bySize, i)
	}
	sc.bySize = bySize
	sc.gsort = groupSorter{bySize: bySize, groups: groups}
	sort.Stable(&sc.gsort)
	claimed := sc.claimed[:0]
	for range plans {
		claimed = append(claimed, false)
	}
	sc.claimed = claimed
	for _, gi := range bySize {
		g := groups[gi]
		members := sc.members[:0]
		for _, i := range g.idxs {
			if !claimed[i] {
				members = append(members, i)
			}
		}
		sc.members = members
		if len(members) < 2 {
			continue
		}
		sc.msort = memberSorter{members: members, plans: plans, vpos: g.key.vpos}
		sort.Stable(&sc.msort)
		consts := sc.consts[:0]
		for _, i := range members {
			consts = append(consts, patPos(plans[i].pat0, g.key.vpos))
		}
		sc.consts = consts
		ranges, ok := ctx.snap.MultiRange(g.key.masked, g.key.vpos, consts, sc.ranges)
		if !ok {
			continue
		}
		sc.ranges = ranges
		for k, i := range members {
			plans[i].pre, plans[i].preOK = ranges[k], true
			claimed[i] = true
		}
		ctx.mergedMembers.Add(int64(len(members)))
		ctx.snapRanges.Add(int64(len(members)))
	}
}

// atomPattern returns the scan pattern of an atom with no bindings —
// its constant positions (the depth-0 pattern of a bind-join).
func atomPattern(a bgp.Atom) storage.Pattern {
	var pat storage.Pattern
	if !a.S.Var {
		pat.S = a.S.Const()
	}
	if !a.P.Var {
		pat.P = a.P.Const()
	}
	if !a.O.Var {
		pat.O = a.O.Const()
	}
	return pat
}

// patPos returns position pos (0=S, 1=P, 2=O) of the pattern.
func patPos(p storage.Pattern, pos int) dict.ID {
	switch pos {
	case 0:
		return p.S
	case 1:
		return p.P
	default:
		return p.O
	}
}

// maskPos returns p with position pos unbound.
func maskPos(p storage.Pattern, pos int) storage.Pattern {
	switch pos {
	case 0:
		p.S = dict.None
	case 1:
		p.P = dict.None
	default:
		p.O = dict.None
	}
	return p
}

// evalMember evaluates one planned member CQ by an index bind-join in
// its chosen atom order, emitting projected head rows. Fresh rows are
// copied out of the shared row buffer into the dedup set's arena (the
// set stores and returns the copy, so emission is one copy total). The
// depth-0 scan replays the plan's pre-located merged range when one
// exists; every other scan goes through the evaluation's scan memo.
// Either way the triples consumed — and hence every metric — are those
// of a plain snapshot scan.
func (e *Engine) evalMember(ctx *evalCtx, sc *armScratch, p *memberPlan, dedup *dedupSet, out *Relation) error {
	cq, order := p.cq, p.order
	bind := sc.bind // empty here; fully unwound before every return below
	if cap(sc.row) < len(cq.Head) {
		sc.row = make([]dict.ID, len(cq.Head))
	}
	row := sc.row[:len(cq.Head)]
	for len(sc.newly) < len(order) {
		sc.newly = append(sc.newly, nil)
	}
	newlyStack := sc.newly
	var rec func(depth int) error
	rec = func(depth int) error {
		if depth == len(order) {
			for i, h := range cq.Head {
				if h.Var {
					row[i] = bind[h.ID]
				} else {
					row[i] = h.Const()
				}
			}
			stored, fresh, err := dedup.add(row)
			if err != nil {
				return err
			}
			if fresh {
				out.Rows = append(out.Rows, stored)
			}
			return nil
		}
		a := cq.Atoms[order[depth]]
		pat := storage.Pattern{}
		term := func(t bgp.Term) dict.ID {
			if !t.Var {
				return t.Const()
			}
			return bind[t.ID] // dict.None when unbound
		}
		pat.S, pat.P, pat.O = term(a.S), term(a.P), term(a.O)

		var failure error
		scan := func(tr storage.Triple) bool {
			ctx.tuplesScanned.Add(1)
			if err := ctx.charge(1); err != nil {
				failure = err
				return false
			}
			vals := [3]dict.ID{tr.S, tr.P, tr.O}
			terms := a.Positions()
			newly := newlyStack[depth][:0]
			ok := true
			for i, t := range terms {
				if !t.Var {
					continue
				}
				if v, bound := bind[t.ID]; bound {
					if v != vals[i] {
						ok = false
						break
					}
				} else {
					bind[t.ID] = vals[i]
					newly = append(newly, t.ID)
				}
			}
			newlyStack[depth] = newly
			if ok {
				if err := rec(depth + 1); err != nil {
					failure = err
				}
			}
			for _, v := range newly {
				delete(bind, v)
			}
			return failure == nil
		}
		if depth == 0 && p.preOK {
			ctx.snap.ScanRange(p.pre, pat, scan)
		} else {
			ctx.scanPattern(pat, scan)
		}
		return failure
	}
	return rec(0)
}

// memberOrder returns the evaluation join order for one member CQ,
// cached in the arm scratch under the member's structural key (members
// identical up to variable renaming share an entry, installed on the
// shape's second occurrence) and computed with the scratch's shared
// cardinality memos over the pinned snapshot.
//
// With the shared-scan layer off, the cross-member memos are off too:
// every member is ordered independently with per-call probe memos only,
// reproducing the pre-refactor scan-per-member planning cost. The
// chosen order is the same either way (the probes are identical;
// TestMemberOrderAgreesWithJoinOrder guards it), so results and metrics
// do not depend on the flag.
func (e *Engine) memberOrder(ctx *evalCtx, sc *armScratch, cq bgp.CQ) []int {
	if e.prof.DisableJoinOrdering {
		return identityOrder(len(cq.Atoms))
	}
	if !ctx.shared {
		// Pre-refactor planning per member: the probe memos are cleared
		// before each member so no statistics carry over (every member
		// re-pays its own probes) and greedyOrder builds fresh working
		// state for the call rather than reusing the scratch's. The
		// chosen order is identical to the shared path's — only the
		// planning work is repeated.
		clear(sc.cards)
		clear(sc.dist)
		sc.probes = statProbes{st: e.st, src: ctx.snap, cards: sc.cards, dist: sc.dist}
		return greedyOrder(cq, &sc.probes, nil)
	}
	key := sc.orderKey(cq)
	if o, ok := sc.orders[string(key)]; ok {
		return o
	}
	sc.probes = statProbes{st: e.st, src: ctx.snap, cards: sc.cards, dist: sc.dist}
	o := greedyOrder(cq, &sc.probes, &sc.greedy)
	if sc.seenShape(key) {
		sc.orders[string(key)] = o
	}
	return o
}

// seenShape records the shape key and reports whether it was recorded
// before — the order cache's second-occurrence admission check.
func (sc *armScratch) seenShape(key []byte) bool {
	h := uint64(14695981039346656037)
	for _, b := range key {
		h = (h ^ uint64(b)) * 1099511628211
	}
	slot := h & (shapeSeenSlots - 1)
	tag := uint32(h>>32) | 1
	if sc.shapeSeen[slot] == tag {
		return true
	}
	sc.shapeSeen[slot] = tag
	return false
}

// statProbes supplies greedyOrder's statistics, memoized — a concrete
// struct rather than a closure pair so that ordering a member allocates
// no closure objects. src selects the count source: the pinned snapshot
// on the evaluation path, nil for the live store on the planning path.
type statProbes struct {
	st    *stats.Stats
	src   stats.CountSource
	cards map[bgp.Atom]float64
	dist  map[distKey]float64
}

func (p *statProbes) card(a bgp.Atom) float64 {
	c, ok := p.cards[a]
	if !ok {
		if p.src != nil {
			c = p.st.AtomCardOn(p.src, a)
		} else {
			c = p.st.AtomCard(a)
		}
		p.cards[a] = c
	}
	return c
}

func (p *statProbes) distinct(a bgp.Atom, v uint32) float64 {
	k := distKey{a: a, v: v}
	d, ok := p.dist[k]
	if !ok {
		if p.src != nil {
			d = p.st.DistinctForVarOn(p.src, a, v)
		} else {
			d = p.st.DistinctForVar(a, v)
		}
		p.dist[k] = d
	}
	return d
}

// orderKey renders cq's renaming-invariant structural key — the same
// equivalence classes as bgp.CQ.Key — into the scratch key buffer and
// returns it. Byte-level rather than string-level so the order-cache
// probe in memberOrder allocates nothing (a map lookup keyed by
// string(bytes) does not copy); only installing a new entry pays for the
// string. The buffer is invalidated by the next call. The encoding is
// positional: a head-length prefix, then five bytes per term (a var/const
// tag and a little-endian ID, with variables renumbered in order of first
// appearance), so equal keys always denote members equal up to renaming.
func (sc *armScratch) orderKey(cq bgp.CQ) []byte {
	buf := append(sc.keyBuf[:0], byte(len(cq.Head)))
	rn := sc.rename[:0]
	for _, t := range cq.Head {
		buf, rn = appendTermKey(buf, rn, t)
	}
	for _, a := range cq.Atoms {
		buf, rn = appendTermKey(buf, rn, a.S)
		buf, rn = appendTermKey(buf, rn, a.P)
		buf, rn = appendTermKey(buf, rn, a.O)
	}
	sc.keyBuf, sc.rename = buf, rn
	return buf
}

// appendTermKey appends one term of an orderKey: a plain function rather
// than a closure over the buffers so nothing escapes to the heap.
func appendTermKey(buf []byte, rn []uint32, t bgp.Term) ([]byte, []uint32) {
	tag, id := byte('#'), t.ID
	if t.Var {
		n := -1
		for i, v := range rn {
			if v == t.ID {
				n = i
				break
			}
		}
		if n < 0 {
			n = len(rn)
			rn = append(rn, t.ID)
		}
		tag, id = '?', uint32(n)
	}
	return append(buf, tag, byte(id), byte(id>>8), byte(id>>16), byte(id>>24)), rn
}

// joinOrder picks the static atom order of one CQ against the live
// store — the planning-path entry point (estimation, explanation). The
// evaluation path goes through memberOrder, which adds the per-arm
// memoization and reads statistics through the pinned snapshot.
func (e *Engine) joinOrder(cq bgp.CQ) []int {
	if e.prof.DisableJoinOrdering {
		return identityOrder(len(cq.Atoms))
	}
	// Memoize the stats probes for the greedy rounds below: without
	// this, every round re-prices every remaining atom, turning n atoms
	// into O(n²) AtomCard calls through the stats mutex.
	pr := statProbes{
		st:    e.st,
		cards: make(map[bgp.Atom]float64, len(cq.Atoms)),
		dist:  make(map[distKey]float64, len(cq.Atoms)),
	}
	return greedyOrder(cq, &pr, nil)
}

func identityOrder(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return order
}

// greedyState is greedyOrder's per-call working state: which atoms were
// already placed, which variables they bound, and a variable scratch.
// Reusable across calls (greedyOrder resets it), so the shared path
// hands in the one kept in its arm scratch; a nil state makes
// greedyOrder allocate a fresh one for the call.
type greedyState struct {
	used  []bool
	bound map[uint32]bool
	buf   []uint32
}

func (g *greedyState) reset(n int) {
	g.used = g.used[:0]
	for i := 0; i < n; i++ {
		g.used = append(g.used, false)
	}
	if g.bound == nil {
		g.bound = make(map[uint32]bool)
	} else {
		clear(g.bound)
	}
}

func (g *greedyState) est(cq bgp.CQ, pr *statProbes, i int) float64 {
	a := cq.Atoms[i]
	c := pr.card(a)
	g.buf = a.Vars(g.buf[:0])
	for j, v := range g.buf {
		if !g.bound[v] || dupBefore(g.buf, j) {
			continue
		}
		if d := pr.distinct(a, v); d > 1 {
			c /= d
		}
	}
	return c
}

func (g *greedyState) connected(cq bgp.CQ, i int) bool {
	g.buf = cq.Atoms[i].Vars(g.buf[:0])
	for _, v := range g.buf {
		if g.bound[v] {
			return true
		}
	}
	return false
}

// greedyOrder picks a static atom order greedily: start from the atom
// with the smallest estimated cardinality, then repeatedly take the
// connected atom whose bound-variable-discounted estimate is smallest,
// falling back to disconnected atoms only when no connected one
// remains. pr supplies the statistics; its probes are pure for the
// duration of the call, so memoization never changes the chosen order,
// and neither does reusing gs — it is fully reset per call.
func greedyOrder(cq bgp.CQ, pr *statProbes, gs *greedyState) []int {
	n := len(cq.Atoms)
	order := make([]int, 0, n)
	var local greedyState // stack-allocated when the caller passes nil
	if gs == nil {
		gs = &local
	}
	gs.reset(n)

	for len(order) < n {
		best, bestEst := -1, 0.0
		bestConn := false
		for i := 0; i < n; i++ {
			if gs.used[i] {
				continue
			}
			conn := len(order) == 0 || gs.connected(cq, i)
			c := gs.est(cq, pr, i)
			if best == -1 || (conn && !bestConn) || (conn == bestConn && c < bestEst) {
				best, bestEst, bestConn = i, c, conn
			}
		}
		order = append(order, best)
		gs.used[best] = true
		gs.buf = cq.Atoms[best].Vars(gs.buf[:0])
		for _, v := range gs.buf {
			gs.bound[v] = true
		}
	}
	return order
}

// dupBefore reports whether vars[i] already occurs in vars[:i] — the
// allocation-free replacement for the per-atom "seen" map in the hot
// ordering and estimation loops (atoms have at most three variables).
func dupBefore(vars []uint32, i int) bool {
	for j := 0; j < i; j++ {
		if vars[j] == vars[i] {
			return true
		}
	}
	return false
}
