package engine

import (
	"fmt"
	"sort"

	"repro/internal/bgp"
	"repro/internal/dict"
	"repro/internal/storage"
	"repro/internal/trace"
)

// ArmSource supplies the member CQs of one UCQ arm without requiring the
// union to be materialized first — reformulations with hundreds of
// thousands of members are streamed straight out of their factorized form.
type ArmSource struct {
	// Vars names the arm's head columns.
	Vars []uint32
	// NumCQs is the member count (used for reporting).
	NumCQs int64
	// Leaves is the scan-leaf count (members × atoms), used for the
	// plan-size admission check.
	Leaves int64
	// Each streams the member CQs; it must stop when f returns false.
	Each func(f func(bgp.CQ) bool) bool
}

// SourceFromUCQ wraps a materialized UCQ as an ArmSource.
func SourceFromUCQ(u bgp.UCQ) ArmSource {
	var leaves int64
	for _, cq := range u.CQs {
		leaves += int64(len(cq.Atoms))
	}
	return ArmSource{
		Vars:   u.Vars,
		NumCQs: int64(len(u.CQs)),
		Leaves: leaves,
		Each: func(f func(bgp.CQ) bool) bool {
			for _, cq := range u.CQs {
				if !f(cq) {
					return false
				}
			}
			return true
		},
	}
}

// EvalCQ evaluates a single conjunctive query.
func (e *Engine) EvalCQ(q bgp.CQ) (*Relation, Metrics, error) {
	vars := make([]uint32, len(q.Head))
	for i, h := range q.Head {
		if h.Var {
			vars[i] = h.ID
		}
	}
	u := bgp.UCQ{Vars: vars, CQs: []bgp.CQ{q}}
	return e.EvalUCQ(u)
}

// EvalUCQ evaluates a union of conjunctive queries under set semantics.
func (e *Engine) EvalUCQ(u bgp.UCQ) (*Relation, Metrics, error) {
	return e.EvalArms(u.Vars, []ArmSource{SourceFromUCQ(u)})
}

// EvalJUCQ evaluates a join of UCQs: arms are admission-checked,
// evaluated, joined with the profile's arm-join algorithm, projected on
// the head and deduplicated.
func (e *Engine) EvalJUCQ(j bgp.JUCQ) (*Relation, Metrics, error) {
	arms := make([]ArmSource, len(j.Arms))
	for i, arm := range j.Arms {
		arms[i] = SourceFromUCQ(arm)
	}
	return e.EvalArms(j.Head, arms)
}

// EvalArms is the general entry point: a join of streamed UCQ arms,
// projected on head. A single arm is a plain UCQ evaluation. When the
// engine carries a trace span (WithSpan), the evaluation records its
// operator tree and metrics under it.
func (e *Engine) EvalArms(head []uint32, arms []ArmSource) (*Relation, Metrics, error) {
	ctx := &evalCtx{prof: e.prof, par: e.Parallelism(), span: e.span}
	rel, err := e.evalArms(ctx, head, arms)
	ctx.finishSpan(e.span, err)
	return rel, ctx.snapshot(), err
}

// evalArms is EvalArms' body, with the metrics snapshot and the span
// bookkeeping hoisted into the wrapper so every return path stays a
// plain error return.
func (e *Engine) evalArms(ctx *evalCtx, head []uint32, arms []ArmSource) (*Relation, error) {
	// Admission control: total plan size.
	var leaves int64
	for _, a := range arms {
		leaves += a.Leaves
	}
	if sp := ctx.span; sp != nil {
		sp.SetStr("profile", e.prof.Name)
		sp.SetInt("arms", int64(len(arms)))
		sp.SetInt("plan_leaves", leaves)
		sp.SetInt("workers", int64(ctx.par))
	}
	if e.prof.MaxPlanLeaves > 0 && leaves > e.prof.MaxPlanLeaves {
		return nil, fmt.Errorf("%w (%s: %d scan leaves)", ErrPlanTooComplex, e.prof.Name, leaves)
	}

	// Evaluate each arm into a materialized relation; independent arms
	// run concurrently when the engine has more than one worker.
	rels, err := e.evalAllArms(ctx, arms)
	if err != nil {
		return nil, err
	}
	// The largest-result arm is pipelined into the top join (the cost
	// model's assumption); every other arm is a materialized
	// intermediate.
	if len(rels) > 1 {
		largest := 0
		for i, r := range rels {
			if r.Len() > rels[largest].Len() {
				largest = i
			}
		}
		for i, r := range rels {
			if i != largest {
				ctx.rowsMaterialized.Add(int64(r.Len()))
			}
		}
	}

	// Join the arms, smallest first, always picking a connected arm so
	// no cartesian product is formed (covers guarantee one exists).
	order := make([]int, len(rels))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return rels[order[a]].Len() < rels[order[b]].Len() })

	cur := rels[order[0]]
	used := map[int]bool{order[0]: true}
	for len(used) < len(rels) {
		next := -1
		for _, i := range order {
			if used[i] {
				continue
			}
			if sharesVars(cur.Vars, rels[i].Vars) {
				next = i
				break
			}
		}
		if next == -1 { // disconnected: fall back to the smallest remaining
			for _, i := range order {
				if !used[i] {
					next = i
					break
				}
			}
		}
		used[next] = true
		joined, err := joinRelations(ctx, cur, rels[next], e.prof.ArmJoin)
		if err != nil {
			return nil, err
		}
		cur = joined
	}

	// Final projection on the head, with duplicate elimination.
	pos := cur.colIndex()
	cols := make([]int, len(head))
	for i, v := range head {
		c, ok := pos[v]
		if !ok {
			return nil, fmt.Errorf("engine: head variable ?v%d not produced by any arm", v)
		}
		cols[i] = c
	}
	out, err := projectDistinct(ctx, cur, cols, head)
	if err != nil {
		return nil, err
	}
	if sp := ctx.span; sp != nil {
		sp.SetInt("rows_out", int64(out.Len()))
	}
	return out, nil
}

// projectDistinct projects cur on cols with duplicate elimination — the
// final operator of every plan. The output relation is charged against
// the materialization budget like any other intermediate (the dedup set
// grows in lockstep with out.Rows, and checkRows guards the appends), so
// ErrMemoryBudget cannot be bypassed at the last operator. With more than
// one worker the input is split into contiguous chunks deduplicated
// locally and re-deduplicated in chunk order, which keeps the output rows
// in exactly the sequential first-occurrence order.
func projectDistinct(ctx *evalCtx, cur *Relation, cols []int, head []uint32) (*Relation, error) {
	sp := ctx.span.Child("project")
	if sp != nil {
		sp.SetInt("rows_in", int64(cur.Len()))
		defer sp.End()
	}
	if ctx.par > 1 && len(cur.Rows) >= parallelRowThreshold {
		return projectDistinctParallel(ctx, sp, cur, cols, head)
	}
	out := &Relation{Vars: head}
	dedup := newDedupSet(ctx)
	var arena rowArena
	for _, row := range cur.Rows {
		proj := arena.alloc(len(cols))
		for i, c := range cols {
			proj[i] = row[c]
		}
		fresh, err := dedup.add(proj)
		if err != nil {
			return nil, err
		}
		if fresh {
			out.Rows = append(out.Rows, proj)
			if err := ctx.checkRows(len(out.Rows)); err != nil {
				return nil, err
			}
		} else {
			arena.release(proj)
		}
	}
	if sp != nil {
		sp.SetInt("rows_out", int64(out.Len()))
		sp.SetInt("dedup_hits", dedup.hits)
		sp.SetInt("arena_chunks", int64(arena.chunks))
	}
	return out, nil
}

func sharesVars(a, b []uint32) bool {
	for _, x := range a {
		for _, y := range b {
			if x == y {
				return true
			}
		}
	}
	return false
}

// evalArm evaluates one UCQ arm. With one worker, every member CQ is
// bind-joined against the store and its head rows flow into a shared
// duplicate-elimination set; with more, the members are sharded over a
// worker pool (see evalArmSharded) with a deterministic merge.
func (e *Engine) evalArm(ctx *evalCtx, sp *trace.Span, arm ArmSource) (*Relation, error) {
	if sp != nil {
		sp.SetInt("members", arm.NumCQs)
		defer sp.End()
	}
	if ctx.par > 1 {
		return e.evalArmSharded(ctx, sp, arm)
	}
	out := &Relation{Vars: arm.Vars}
	dedup := newDedupSet(ctx)
	var arena rowArena
	var failure error
	arm.Each(func(cq bgp.CQ) bool {
		ctx.unionArms.Add(1)
		if err := e.evalMember(ctx, cq, dedup, out, &arena); err != nil {
			failure = err
			return false
		}
		return true
	})
	if failure != nil {
		return nil, failure
	}
	if sp != nil {
		sp.SetInt("rows_out", int64(out.Len()))
		sp.SetInt("dedup_hits", dedup.hits)
		sp.SetInt("arena_chunks", int64(arena.chunks))
	}
	return out, nil
}

// evalMember evaluates one member CQ by an index bind-join in a greedily
// chosen atom order, emitting projected head rows. Fresh rows are copied
// out of the shared row buffer through the arena.
func (e *Engine) evalMember(ctx *evalCtx, cq bgp.CQ, dedup *dedupSet, out *Relation, arena *rowArena) error {
	order := e.joinOrder(cq)
	bind := make(map[uint32]dict.ID)
	row := make([]dict.ID, len(cq.Head))
	newlyStack := make([][]uint32, len(order))
	var rec func(depth int) error
	rec = func(depth int) error {
		if depth == len(order) {
			for i, h := range cq.Head {
				if h.Var {
					row[i] = bind[h.ID]
				} else {
					row[i] = h.Const()
				}
			}
			fresh, err := dedup.add(row)
			if err != nil {
				return err
			}
			if fresh {
				out.Rows = append(out.Rows, arena.copy(row))
			}
			return nil
		}
		a := cq.Atoms[order[depth]]
		pat := storage.Pattern{}
		term := func(t bgp.Term) dict.ID {
			if !t.Var {
				return t.Const()
			}
			return bind[t.ID] // dict.None when unbound
		}
		pat.S, pat.P, pat.O = term(a.S), term(a.P), term(a.O)

		var failure error
		e.store.Scan(pat, func(tr storage.Triple) bool {
			ctx.tuplesScanned.Add(1)
			if err := ctx.charge(1); err != nil {
				failure = err
				return false
			}
			vals := [3]dict.ID{tr.S, tr.P, tr.O}
			terms := a.Positions()
			newly := newlyStack[depth][:0]
			ok := true
			for i, t := range terms {
				if !t.Var {
					continue
				}
				if v, bound := bind[t.ID]; bound {
					if v != vals[i] {
						ok = false
						break
					}
				} else {
					bind[t.ID] = vals[i]
					newly = append(newly, t.ID)
				}
			}
			newlyStack[depth] = newly
			if ok {
				if err := rec(depth + 1); err != nil {
					failure = err
				}
			}
			for _, v := range newly {
				delete(bind, v)
			}
			return failure == nil
		})
		return failure
	}
	return rec(0)
}

// joinOrder picks a static atom order greedily: start from the atom with
// the smallest estimated cardinality, then repeatedly take the connected
// atom whose bound-variable-discounted estimate is smallest, falling back
// to disconnected atoms only when no connected one remains.
func (e *Engine) joinOrder(cq bgp.CQ) []int {
	n := len(cq.Atoms)
	if e.prof.DisableJoinOrdering {
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		return order
	}
	order := make([]int, 0, n)
	usedAtoms := make([]bool, n)
	bound := make(map[uint32]bool)
	var buf []uint32 // scratch, reused across atoms and rounds

	est := func(i int) float64 {
		a := cq.Atoms[i]
		card := e.st.AtomCard(a)
		buf = a.Vars(buf[:0])
		for j, v := range buf {
			if !bound[v] || dupBefore(buf, j) {
				continue
			}
			if d := e.st.DistinctForVar(a, v); d > 1 {
				card /= d
			}
		}
		return card
	}
	connected := func(i int) bool {
		buf = cq.Atoms[i].Vars(buf[:0])
		for _, v := range buf {
			if bound[v] {
				return true
			}
		}
		return false
	}

	for len(order) < n {
		best, bestEst := -1, 0.0
		bestConn := false
		for i := 0; i < n; i++ {
			if usedAtoms[i] {
				continue
			}
			conn := len(order) == 0 || connected(i)
			c := est(i)
			if best == -1 || (conn && !bestConn) || (conn == bestConn && c < bestEst) {
				best, bestEst, bestConn = i, c, conn
			}
		}
		order = append(order, best)
		usedAtoms[best] = true
		buf = cq.Atoms[best].Vars(buf[:0])
		for _, v := range buf {
			bound[v] = true
		}
	}
	return order
}

// dupBefore reports whether vars[i] already occurs in vars[:i] — the
// allocation-free replacement for the per-atom "seen" map in the hot
// ordering and estimation loops (atoms have at most three variables).
func dupBefore(vars []uint32, i int) bool {
	for j := 0; j < i; j++ {
		if vars[j] == vars[i] {
			return true
		}
	}
	return false
}
