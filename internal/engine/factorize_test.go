package engine_test

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/bgp"
	"repro/internal/engine"
	"repro/internal/naive"
	"repro/internal/stats"
	"repro/internal/testkit"
)

// errClass maps an evaluation error to its sentinel, so differential
// checks compare failure *kinds* (the flat and factorized paths agree on
// which budget a query blows, not on the instant it blows).
func errClass(err error) error {
	for _, sentinel := range []error{
		engine.ErrPlanTooComplex, engine.ErrMemoryBudget,
		engine.ErrWorkBudget, engine.ErrCanceled,
	} {
		if errors.Is(err, sentinel) {
			return sentinel
		}
	}
	return err
}

// checkDifferential evaluates q under both representations and every
// parallelism and asserts the factorized results expand to byte-identical
// rows with identical metrics (or fail with the same sentinel).
func checkDifferential(t *testing.T, eng *engine.Engine, q bgp.CQ, label string) {
	t.Helper()
	flatRel, flatMet, flatErr := eng.WithFactorized(false).WithParallelism(1).EvalCQ(q)
	for _, par := range []int{1, 4} {
		factRel, factMet, factErr := eng.WithFactorized(true).WithParallelism(par).EvalCQ(q)
		if (flatErr == nil) != (factErr == nil) {
			t.Fatalf("%s par=%d: flat err=%v fact err=%v", label, par, flatErr, factErr)
		}
		if flatErr != nil {
			if errClass(flatErr) != errClass(factErr) {
				t.Fatalf("%s par=%d: error class differs: flat %v fact %v", label, par, flatErr, factErr)
			}
			continue
		}
		if factMet != flatMet {
			t.Errorf("%s par=%d: metrics differ:\n fact %+v\n flat %+v", label, par, factMet, flatMet)
		}
		if !relEqual(factRel, flatRel) {
			t.Fatalf("%s par=%d: expanded rows differ from flat evaluation", label, par)
		}
	}
}

// disconnectedQuery builds a cross-product query: k independent single-atom
// components, each binding one head variable.
func disconnectedQuery(e *testkit.Example, rng *rand.Rand, k int) bgp.CQ {
	q := bgp.CQ{}
	for i := 0; i < k; i++ {
		v := bgp.V(uint32(i))
		var a bgp.Atom
		if rng.Intn(2) == 0 {
			cs := e.Closed.Classes()
			a = bgp.Atom{S: v, P: bgp.C(e.Vocab.Type), O: bgp.C(cs[rng.Intn(len(cs))])}
		} else {
			ps := e.Closed.Properties()
			a = bgp.Atom{S: v, P: bgp.C(ps[rng.Intn(len(ps))]), O: bgp.V(uint32(100 + i))}
		}
		q.Atoms = append(q.Atoms, a)
		q.Head = append(q.Head, v)
	}
	return q
}

// Factorized evaluation must be indistinguishable from flat evaluation —
// expanded rows, order, and metrics — on random connected and
// disconnected CQ shapes, serial and parallel.
func TestFactorizedDifferentialCQ(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		e := testkit.Random(seed, 80)
		raw := e.RawStore()
		st := stats.Collect(raw, e.Vocab)
		for _, prof := range []engine.Profile{engine.Native, engine.PostgresLike} {
			eng := engine.New(raw, st, prof)
			rng := rand.New(rand.NewSource(seed * 31))
			for i := 0; i < 6; i++ {
				q := testkit.RandomQuery(e, rng)
				checkDifferential(t, eng, q, prof.Name)
			}
			for k := 2; k <= 4; k++ {
				checkDifferential(t, eng, disconnectedQuery(e, rng, k), prof.Name)
			}
		}
	}
}

// A factorized product must still agree with the naive evaluator, not
// just with the flat engine.
func TestFactorizedMatchesNaive(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		e := testkit.Random(seed, 60)
		raw := e.RawStore()
		eng := engine.New(raw, stats.Collect(raw, e.Vocab), engine.Native)
		rng := rand.New(rand.NewSource(seed))
		q := disconnectedQuery(e, rng, 2+int(seed%3))
		rel, _, err := eng.EvalCQ(q)
		if err != nil {
			t.Fatal(err)
		}
		if !naive.Equal(toRows(rel), naive.EvalCQ(raw, q)) {
			t.Errorf("seed %d: factorized answers differ from naive", seed)
		}
	}
}

// UCQ arms whose members share a disconnected tail factorize across the
// union; members that break the pattern must fall back without changing
// anything observable.
func TestFactorizedDifferentialUCQ(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		e := testkit.Random(seed, 80)
		raw := e.RawStore()
		eng := engine.New(raw, stats.Collect(raw, e.Vocab), engine.Native)
		rng := rand.New(rand.NewSource(seed * 7))
		cs := e.Closed.Classes()
		ps := e.Closed.Properties()

		// Members identical except in the outer factor (the mergeable
		// pattern), plus — on odd seeds — a pattern-breaking member that
		// forces the mid-stream fallback.
		tail := bgp.Atom{S: bgp.V(1), P: bgp.C(ps[rng.Intn(len(ps))]), O: bgp.V(2)}
		u := bgp.UCQ{Vars: []uint32{0, 1}}
		for i := 0; i < 3; i++ {
			u.CQs = append(u.CQs, bgp.CQ{
				Head:  []bgp.Term{bgp.V(0), bgp.V(1)},
				Atoms: []bgp.Atom{{S: bgp.V(0), P: bgp.C(e.Vocab.Type), O: bgp.C(cs[i%len(cs)])}, tail},
			})
		}
		if seed%2 == 1 {
			u.CQs = append(u.CQs, bgp.CQ{
				Head:  []bgp.Term{bgp.V(0), bgp.V(1)},
				Atoms: []bgp.Atom{{S: bgp.V(0), P: bgp.C(ps[0]), O: bgp.V(1)}},
			})
		}

		flatRel, flatMet, flatErr := eng.WithFactorized(false).WithParallelism(1).EvalUCQ(u)
		for _, par := range []int{1, 4} {
			factRel, factMet, factErr := eng.WithFactorized(true).WithParallelism(par).EvalUCQ(u)
			if (flatErr == nil) != (factErr == nil) || (flatErr != nil && errClass(flatErr) != errClass(factErr)) {
				t.Fatalf("seed %d par=%d: flat err=%v fact err=%v", seed, par, flatErr, factErr)
			}
			if flatErr != nil {
				continue
			}
			if factMet != flatMet {
				t.Errorf("seed %d par=%d: metrics differ:\n fact %+v\n flat %+v", seed, par, factMet, flatMet)
			}
			if !relEqual(factRel, flatRel) {
				t.Fatalf("seed %d par=%d: UCQ rows differ", seed, par)
			}
		}
	}
}

// Disconnected JUCQ arms meet in a cartesian arm join; the factorized
// path must compose the product without changing rows or metrics.
func TestFactorizedDifferentialCartesianArms(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		e := testkit.Random(seed, 80)
		raw := e.RawStore()
		eng := engine.New(raw, stats.Collect(raw, e.Vocab), engine.Native)
		cs := e.Closed.Classes()
		ps := e.Closed.Properties()
		j := bgp.JUCQ{
			Head: []uint32{0, 1},
			Arms: []bgp.UCQ{
				{Vars: []uint32{0}, CQs: []bgp.CQ{{
					Head:  []bgp.Term{bgp.V(0)},
					Atoms: []bgp.Atom{{S: bgp.V(0), P: bgp.C(e.Vocab.Type), O: bgp.C(cs[0])}},
				}}},
				{Vars: []uint32{1}, CQs: []bgp.CQ{{
					Head:  []bgp.Term{bgp.V(1)},
					Atoms: []bgp.Atom{{S: bgp.V(1), P: bgp.C(ps[0]), O: bgp.V(2)}},
				}}},
			},
		}
		flatRel, flatMet, flatErr := eng.WithFactorized(false).WithParallelism(1).EvalJUCQ(j)
		factRel, factMet, factErr := eng.WithFactorized(true).WithParallelism(1).EvalJUCQ(j)
		if (flatErr == nil) != (factErr == nil) {
			t.Fatalf("seed %d: flat err=%v fact err=%v", seed, flatErr, factErr)
		}
		if flatErr != nil {
			continue
		}
		if factMet != flatMet {
			t.Errorf("seed %d: metrics differ:\n fact %+v\n flat %+v", seed, factMet, flatMet)
		}
		if !relEqual(factRel, flatRel) {
			t.Fatalf("seed %d: cartesian arm join rows differ", seed)
		}
	}
}

// Budget errors must keep their class under factorization: a query that
// blows the work budget flat blows the work budget factorized, same for
// the materialization budget.
func TestFactorizedBudgetErrors(t *testing.T) {
	e := testkit.Random(3, 120)
	raw := e.RawStore()
	st := stats.Collect(raw, e.Vocab)
	rng := rand.New(rand.NewSource(11))
	q := disconnectedQuery(e, rng, 4)
	for _, prof := range []engine.Profile{
		{Name: "tinywork", WorkBudget: 50, ArmJoin: engine.HashJoin},
		{Name: "tinymem", MaxMaterializedRows: 5, ArmJoin: engine.HashJoin},
	} {
		eng := engine.New(raw, st, prof)
		_, _, flatErr := eng.WithFactorized(false).WithParallelism(1).EvalCQ(q)
		_, _, factErr := eng.WithFactorized(true).WithParallelism(1).EvalCQ(q)
		if errClass(flatErr) != errClass(factErr) {
			t.Errorf("%s: flat err %v, fact err %v", prof.Name, flatErr, factErr)
		}
		if flatErr == nil {
			t.Errorf("%s: expected the tight budget to fire", prof.Name)
		}
	}
}

// The factorized paths must be race-free under concurrent evaluations
// sharing one engine (run with -race in CI).
func TestFactorizedParallelStress(t *testing.T) {
	e := testkit.Random(5, 100)
	raw := e.RawStore()
	eng := engine.New(raw, stats.Collect(raw, e.Vocab), engine.Native).WithParallelism(4)
	rng := rand.New(rand.NewSource(9))
	q := disconnectedQuery(e, rng, 3)
	want, _, err := eng.EvalCQ(q)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				rel, _, err := eng.EvalCQ(q)
				if err != nil {
					t.Error(err)
					return
				}
				if !relEqual(rel, want) {
					t.Error("concurrent factorized evaluation diverged")
					return
				}
			}
		}()
	}
	wg.Wait()
}

// FuzzFactorizedExpansion drives the differential check from fuzzed
// seeds: any store/query shape the generator can reach must keep the
// factorized and flat paths indistinguishable.
func FuzzFactorizedExpansion(f *testing.F) {
	f.Add(int64(1), int64(2))
	f.Add(int64(7), int64(13))
	f.Add(int64(42), int64(99))
	f.Fuzz(func(t *testing.T, storeSeed, querySeed int64) {
		e := testkit.Random(storeSeed%64, 60)
		raw := e.RawStore()
		eng := engine.New(raw, stats.Collect(raw, e.Vocab), engine.Native)
		rng := rand.New(rand.NewSource(querySeed))
		var q bgp.CQ
		if querySeed%2 == 0 {
			q = testkit.RandomQuery(e, rng)
		} else {
			q = disconnectedQuery(e, rng, 2+int(uint64(querySeed)%3))
		}
		checkDifferential(t, eng, q, "fuzz")
	})
}
