package engine

import (
	"repro/internal/dict"
)

// Relation is a materialized set of answer rows. Vars names the columns;
// rows have set semantics (duplicate elimination happens at build time).
type Relation struct {
	Vars []uint32
	Rows [][]dict.ID
}

// Arity returns the number of columns.
func (r *Relation) Arity() int { return len(r.Vars) }

// Len returns the number of rows.
func (r *Relation) Len() int { return len(r.Rows) }

// colIndex returns the column position of each variable.
func (r *Relation) colIndex() map[uint32]int {
	m := make(map[uint32]int, len(r.Vars))
	for i, v := range r.Vars {
		m[v] = i
	}
	return m
}

// rowKey packs a row into a map key.
func rowKey(row []dict.ID) string {
	b := make([]byte, len(row)*4)
	for i, v := range row {
		b[i*4] = byte(v)
		b[i*4+1] = byte(v >> 8)
		b[i*4+2] = byte(v >> 16)
		b[i*4+3] = byte(v >> 24)
	}
	return string(b)
}

// keyOf packs selected columns of a row into a map key.
func keyOf(row []dict.ID, cols []int) string {
	b := make([]byte, len(cols)*4)
	for i, c := range cols {
		v := row[c]
		b[i*4] = byte(v)
		b[i*4+1] = byte(v >> 8)
		b[i*4+2] = byte(v >> 16)
		b[i*4+3] = byte(v >> 24)
	}
	return string(b)
}

// dedupSet is a streaming duplicate-elimination set with budget checks.
type dedupSet struct {
	seen map[string]struct{}
	ctx  *evalCtx
}

func newDedupSet(ctx *evalCtx) *dedupSet {
	return &dedupSet{seen: make(map[string]struct{}), ctx: ctx}
}

// add reports whether the row was new; it charges one work unit per row
// and enforces the materialization budget on the set size.
func (d *dedupSet) add(row []dict.ID) (bool, error) {
	if err := d.ctx.charge(1); err != nil {
		return false, err
	}
	k := rowKey(row)
	if _, dup := d.seen[k]; dup {
		d.ctx.metrics.RowsDeduped++
		return false, nil
	}
	d.seen[k] = struct{}{}
	if err := d.ctx.checkRows(len(d.seen)); err != nil {
		return false, err
	}
	return true, nil
}
