package engine

import (
	"math"

	"repro/internal/dict"
)

// Relation is a materialized set of answer rows. Vars names the columns;
// rows have set semantics (duplicate elimination happens at build time).
//
// A Relation is either flat (Rows holds every row) or factorized: the
// row set is a cross-product of per-component row groups (see FRelation)
// and Rows stays nil until Materialize expands it. Factorized relations
// behave identically to flat ones through Len, Cursor, Each and
// Materialize; only the storage differs. Code that reads Rows directly
// must call Materialize first unless it knows the relation is flat.
type Relation struct {
	Vars []uint32
	Rows [][]dict.ID

	// fact, when non-nil, is the union-of-products payload. It stays
	// attached after Materialize so observability code can still report
	// the stored size next to the logical one.
	fact *FRelation
	// pos memoizes colIndex. Relations are built by one goroutine and
	// only shared once complete, so the lazy build needs no locking;
	// see colIndex.
	pos map[uint32]int
}

// Arity returns the number of columns.
func (r *Relation) Arity() int { return len(r.Vars) }

// Len returns the number of logical rows: for a factorized relation the
// expanded cardinality, without expanding.
func (r *Relation) Len() int {
	if r.Rows == nil && r.fact != nil {
		return clampInt(r.fact.logical)
	}
	return len(r.Rows)
}

// Factorized returns the relation's union-of-products payload, or nil
// for a flat relation.
func (r *Relation) Factorized() *FRelation { return r.fact }

// StoredBytes returns the resident size of the row data in bytes: the
// factorized component rows (plus the row template) for a factorized
// relation, the flat rows otherwise. Used by the benchmarks to report
// bytes per answer.
func (r *Relation) StoredBytes() int64 {
	if r.fact != nil {
		n := int64(len(r.fact.template))
		for _, c := range r.fact.comps {
			n += int64(len(c.rows)) * int64(len(c.cols))
		}
		return n * 4
	}
	return int64(len(r.Rows)) * int64(r.Arity()) * 4
}

// colIndex returns the column position of each variable, built once on
// first use and memoized. Relations are constructed and indexed during
// the single-goroutine join/projection phase of an evaluation (parallel
// workers never call colIndex), so the unsynchronized lazy build is safe.
func (r *Relation) colIndex() map[uint32]int {
	if r.pos == nil {
		r.pos = make(map[uint32]int, len(r.Vars))
		for i, v := range r.Vars {
			r.pos[v] = i
		}
	}
	return r.pos
}

// Cursor returns an iterator over the relation's rows in their canonical
// order (for a factorized relation, the order flat evaluation would have
// produced). The returned row is only valid until the next Next call and
// must not be modified.
func (r *Relation) Cursor() *Cursor { return &Cursor{rel: r} }

// Each calls f for every row in canonical order, stopping early when f
// returns false. The row passed to f follows the Cursor aliasing rules.
func (r *Relation) Each(f func(row []dict.ID) bool) {
	c := r.Cursor()
	for row, ok := c.Next(); ok; row, ok = c.Next() {
		if !f(row) {
			return
		}
	}
}

// Materialize expands the relation into flat rows, at most once: the
// expansion is cached in Rows and returned. For an already-flat relation
// it returns Rows unchanged. Expansion order is the canonical flat
// order, so materializing a factorized relation yields byte-identical
// rows to flat evaluation. Not safe for concurrent use.
func (r *Relation) Materialize() [][]dict.ID {
	if r.Rows != nil || r.fact == nil {
		return r.Rows
	}
	rows := make([][]dict.ID, 0, clampInt(r.fact.logical))
	var arena rowArena
	c := r.Cursor()
	for row, ok := c.Next(); ok; row, ok = c.Next() {
		rows = append(rows, arena.copy(row))
	}
	r.Rows = rows
	return rows
}

// FRelation is the factorized payload of a Relation: a cross-product of
// per-component column groups over a constant row template. Component i
// fills template positions comps[i].cols from its distinct sub-rows; the
// expanded row set is the product of the component row groups, enumerated
// with the first component outermost.
type FRelation struct {
	// template is the row skeleton (one value per relation column);
	// positions owned by no component are constants shared by all rows.
	template []dict.ID
	comps    []component
	// logical is the expanded cardinality (saturating product of the
	// component row counts).
	logical int64
}

// component is one independent column group of a factorized relation.
type component struct {
	cols []int
	rows [][]dict.ID
}

// Components returns the number of column groups.
func (f *FRelation) Components() int { return len(f.comps) }

// StoredRows returns the summed component row counts — the rows actually
// resident, next to LogicalRows.
func (f *FRelation) StoredRows() int64 {
	var n int64
	for _, c := range f.comps {
		n += int64(len(c.rows))
	}
	return n
}

// LogicalRows returns the expanded cardinality.
func (f *FRelation) LogicalRows() int64 { return f.logical }

// Cursor iterates a Relation without materializing it. For a factorized
// relation it runs an odometer over the component row groups, reusing
// one scratch row.
type Cursor struct {
	rel     *Relation
	i       int   // next flat row
	idx     []int // per-component odometer
	row     []dict.ID
	started bool
	done    bool
}

// Next returns the next row, or false when the iteration is complete.
// The returned slice is reused by subsequent calls (factorized) or
// aliases relation storage (flat); callers must copy to retain it.
func (c *Cursor) Next() ([]dict.ID, bool) {
	r := c.rel
	if r.Rows != nil || r.fact == nil {
		if c.i >= len(r.Rows) {
			return nil, false
		}
		row := r.Rows[c.i]
		c.i++
		return row, true
	}
	f := r.fact
	if c.done || f.logical == 0 {
		return nil, false
	}
	if !c.started {
		c.started = true
		c.row = append([]dict.ID(nil), f.template...)
		c.idx = make([]int, len(f.comps))
		for k := range f.comps {
			c.fill(k)
		}
		return c.row, true
	}
	for k := len(f.comps) - 1; k >= 0; k-- {
		c.idx[k]++
		if c.idx[k] < len(f.comps[k].rows) {
			c.fill(k)
			return c.row, true
		}
		c.idx[k] = 0
		c.fill(k)
	}
	c.done = true
	return nil, false
}

// fill copies component k's current sub-row into the scratch row.
func (c *Cursor) fill(k int) {
	comp := &c.rel.fact.comps[k]
	sub := comp.rows[c.idx[k]]
	for j, col := range comp.cols {
		c.row[col] = sub[j]
	}
}

// clampInt converts a saturating int64 count to int.
func clampInt(n int64) int {
	if n > math.MaxInt32 && uint64(math.MaxInt) == uint64(math.MaxInt32) {
		return math.MaxInt32
	}
	if n > int64(math.MaxInt) {
		return math.MaxInt
	}
	return int(n)
}

// satMul multiplies two non-negative counts, saturating at MaxInt64.
func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > math.MaxInt64/b {
		return math.MaxInt64
	}
	return a * b
}

// hashRow mixes a row's packed dict.IDs into a 64-bit hash,
// xxhash-style: one multiply-rotate-multiply round per element and an
// avalanche finish. Deterministic across runs (no per-process seed) so
// set iteration orders — which the deterministic merges rely on — never
// depend on the hash anyway; only probe sequences do.
func hashRow(row []dict.ID) uint64 {
	h := uint64(0x165667B19E3779F9) + uint64(len(row))*8
	for _, v := range row {
		h ^= uint64(v) * 0x9E3779B185EBCA87
		h = (h<<27 | h>>37) * 0xC2B2AE3D27D4EB4F
	}
	h ^= h >> 33
	h *= 0xC2B2AE3D27D4EB4F
	h ^= h >> 29
	return h
}

// hashCols is hashRow over selected columns.
func hashCols(row []dict.ID, cols []int) uint64 {
	h := uint64(0x165667B19E3779F9) + uint64(len(cols))*8
	for _, c := range cols {
		h ^= uint64(row[c]) * 0x9E3779B185EBCA87
		h = (h<<27 | h>>37) * 0xC2B2AE3D27D4EB4F
	}
	h ^= h >> 33
	h *= 0xC2B2AE3D27D4EB4F
	h ^= h >> 29
	return h
}

func rowEq(a, b []dict.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// rowSet is a tombstone-free open-addressing hash set of rows: slots
// hold 1-based indices into the insertion-ordered rows slice, the table
// grows by powers of two at 7/8 load, and equality compares the stored
// rows (no packed string keys, so admission allocates nothing beyond
// the row storage the caller provides). rows doubles as the set's
// first-occurrence-ordered content.
type rowSet struct {
	tbl  []uint32
	rows [][]dict.ID
}

// rowSetMinSlots is the initial table size (power of two).
const rowSetMinSlots = 16

// add inserts row if absent, storing the slice as given, and reports
// whether it was inserted. The caller must pass storage that stays
// valid and unmodified for the set's lifetime.
func (s *rowSet) add(row []dict.ID) bool {
	s.reserve()
	slot, found := s.find(row)
	if found {
		return false
	}
	s.rows = append(s.rows, row)
	s.tbl[slot] = uint32(len(s.rows))
	return true
}

// has reports whether row is in the set.
func (s *rowSet) has(row []dict.ID) bool {
	if s.tbl == nil {
		return false
	}
	_, found := s.find(row)
	return found
}

// len returns the number of distinct rows.
func (s *rowSet) len() int { return len(s.rows) }

// reserve grows the table before an insertion would push the load
// factor past 7/8, so a later insertAt never invalidates a found slot.
func (s *rowSet) reserve() {
	if s.tbl == nil {
		s.tbl = make([]uint32, rowSetMinSlots)
		return
	}
	if (len(s.rows)+1)*8 > len(s.tbl)*7 {
		old := s.tbl
		s.tbl = make([]uint32, len(old)*2)
		for _, ref := range old {
			if ref == 0 {
				continue
			}
			mask := uint64(len(s.tbl) - 1)
			i := hashRow(s.rows[ref-1]) & mask
			for s.tbl[i] != 0 {
				i = (i + 1) & mask
			}
			s.tbl[i] = ref
		}
	}
}

// find probes for row, returning the slot it occupies (found) or the
// empty slot it would be inserted into.
func (s *rowSet) find(row []dict.ID) (uint64, bool) {
	mask := uint64(len(s.tbl) - 1)
	i := hashRow(row) & mask
	for {
		ref := s.tbl[i]
		if ref == 0 {
			return i, false
		}
		if rowEq(s.rows[ref-1], row) {
			return i, true
		}
		i = (i + 1) & mask
	}
}

// dedupSet is a streaming duplicate-elimination set with budget checks,
// an open-addressing rowSet over arena-backed rows. A set is used by one
// goroutine at a time; concurrent shards each hold their own set and
// merge deterministically (see evalArmSharded).
type dedupSet struct {
	set rowSet
	ctx *evalCtx
	// arena owns the copies admitted through add; rows stay valid for
	// the set's (and the produced relation's) lifetime.
	arena rowArena
	// hits counts the duplicates this set dropped — the set's share of
	// the context-wide rowsDeduped total, read by trace instrumentation
	// after the owning goroutine is done with the set.
	hits int64
}

func newDedupSet(ctx *evalCtx) *dedupSet {
	return &dedupSet{ctx: ctx}
}

// size returns the number of distinct rows admitted so far.
func (d *dedupSet) size() int { return d.set.len() }

// add admits row, charging one work unit and enforcing the
// materialization budget on the set size. A fresh row is copied into
// the set's arena and the stored copy returned (callers append it to
// their output instead of copying again); a duplicate returns
// fresh=false and row is not retained.
func (d *dedupSet) add(row []dict.ID) (stored []dict.ID, fresh bool, err error) {
	if err := d.ctx.charge(1); err != nil {
		return nil, false, err
	}
	d.set.reserve()
	slot, found := d.set.find(row)
	if found {
		d.hits++
		d.ctx.rowsDeduped.Add(1)
		return nil, false, nil
	}
	cp := d.arena.copy(row)
	d.set.rows = append(d.set.rows, cp)
	d.set.tbl[slot] = uint32(len(d.set.rows))
	if err := d.ctx.checkRows(d.set.len()); err != nil {
		return nil, false, err
	}
	return cp, true, nil
}

// addOwned is add for rows the caller already owns stable storage for
// (projection outputs): a fresh row is stored as-is, a duplicate left
// to the caller to release.
func (d *dedupSet) addOwned(row []dict.ID) (bool, error) {
	if err := d.ctx.charge(1); err != nil {
		return false, err
	}
	if !d.set.add(row) {
		d.hits++
		d.ctx.rowsDeduped.Add(1)
		return false, nil
	}
	return true, d.ctx.checkRows(d.set.len())
}

// addMerged is addOwned without the work charge: the row was already
// charged by the shard-local set that admitted it, so the deterministic
// merge only restores global set semantics (counting the cross-shard
// duplicates it drops) and enforces the materialization budget on the
// true union size — which shard-local sets, each smaller than the
// union, cannot see. This keeps the accumulated Work and RowsDeduped
// totals of a parallel evaluation identical to the sequential ones.
func (d *dedupSet) addMerged(row []dict.ID) (bool, error) {
	if !d.set.add(row) {
		d.hits++
		d.ctx.rowsDeduped.Add(1)
		return false, nil
	}
	return true, d.ctx.checkRows(d.set.len())
}

// seed installs a row that was already charged and admitted under the
// factorized accounting (see evalArmFactorized's fallback): no work
// charge, no dedup counting, no budget check. The rows of an expanded
// product are distinct by construction.
func (d *dedupSet) seed(row []dict.ID) {
	d.set.add(row)
}

// rowArena allocates row copies out of chunked backing arrays, replacing
// the per-row make in the hot emit paths. Rows handed out stay valid for
// the arena's lifetime; only the most recent allocation can be released.
type rowArena struct {
	buf []dict.ID
	// chunks counts the backing arrays allocated, a cheap proxy for the
	// arena's memory footprint reported on trace spans.
	chunks int
}

// arenaChunk is the backing-array size, in dict.ID values.
const arenaChunk = 4096

// alloc returns a zeroed row of n columns.
func (a *rowArena) alloc(n int) []dict.ID {
	if n == 0 {
		return nil
	}
	if len(a.buf)+n > cap(a.buf) {
		size := arenaChunk
		if n > size {
			size = n
		}
		a.buf = make([]dict.ID, 0, size)
		a.chunks++
	}
	start := len(a.buf)
	a.buf = a.buf[:start+n]
	row := a.buf[start : start+n : start+n]
	for i := range row {
		row[i] = 0
	}
	return row
}

// copy returns an arena-backed copy of row.
func (a *rowArena) copy(row []dict.ID) []dict.ID {
	out := a.alloc(len(row))
	copy(out, row)
	return out
}

// release returns the most recent allocation to the arena (a no-op for
// any other slice); duplicate rows dropped right after projection reuse
// their space.
func (a *rowArena) release(row []dict.ID) {
	if n := len(a.buf); len(row) > 0 && n >= len(row) && &a.buf[n-len(row)] == &row[0] {
		a.buf = a.buf[:n-len(row)]
	}
}
