package engine

import (
	"repro/internal/dict"
)

// Relation is a materialized set of answer rows. Vars names the columns;
// rows have set semantics (duplicate elimination happens at build time).
type Relation struct {
	Vars []uint32
	Rows [][]dict.ID
}

// Arity returns the number of columns.
func (r *Relation) Arity() int { return len(r.Vars) }

// Len returns the number of rows.
func (r *Relation) Len() int { return len(r.Rows) }

// colIndex returns the column position of each variable.
func (r *Relation) colIndex() map[uint32]int {
	m := make(map[uint32]int, len(r.Vars))
	for i, v := range r.Vars {
		m[v] = i
	}
	return m
}

// rowKey packs a row into a map key.
func rowKey(row []dict.ID) string {
	b := make([]byte, len(row)*4)
	for i, v := range row {
		b[i*4] = byte(v)
		b[i*4+1] = byte(v >> 8)
		b[i*4+2] = byte(v >> 16)
		b[i*4+3] = byte(v >> 24)
	}
	return string(b)
}

// keyOf packs selected columns of a row into a map key.
func keyOf(row []dict.ID, cols []int) string {
	b := make([]byte, len(cols)*4)
	for i, c := range cols {
		v := row[c]
		b[i*4] = byte(v)
		b[i*4+1] = byte(v >> 8)
		b[i*4+2] = byte(v >> 16)
		b[i*4+3] = byte(v >> 24)
	}
	return string(b)
}

// dedupSet is a streaming duplicate-elimination set with budget checks.
// A set is used by one goroutine at a time; concurrent shards each hold
// their own set and merge deterministically (see evalArmSharded).
type dedupSet struct {
	seen map[string]struct{}
	ctx  *evalCtx
	// hits counts the duplicates this set dropped — the set's share of
	// the context-wide rowsDeduped total, read by trace instrumentation
	// after the owning goroutine is done with the set.
	hits int64
}

func newDedupSet(ctx *evalCtx) *dedupSet {
	return &dedupSet{seen: make(map[string]struct{}), ctx: ctx}
}

// add reports whether the row was new; it charges one work unit per row
// and enforces the materialization budget on the set size.
func (d *dedupSet) add(row []dict.ID) (bool, error) {
	if err := d.ctx.charge(1); err != nil {
		return false, err
	}
	k := rowKey(row)
	if _, dup := d.seen[k]; dup {
		d.hits++
		d.ctx.rowsDeduped.Add(1)
		return false, nil
	}
	d.seen[k] = struct{}{}
	if err := d.ctx.checkRows(len(d.seen)); err != nil {
		return false, err
	}
	return true, nil
}

// addMerged is add without the work charge: the row was already charged
// by the shard-local set that admitted it, so the deterministic merge
// only restores global set semantics (counting the cross-shard duplicates
// it drops) and enforces the materialization budget on the true union
// size — which shard-local sets, each smaller than the union, cannot see.
// This keeps the accumulated Work and RowsDeduped totals of a parallel
// evaluation identical to the sequential ones.
func (d *dedupSet) addMerged(row []dict.ID) (bool, error) {
	k := rowKey(row)
	if _, dup := d.seen[k]; dup {
		d.hits++
		d.ctx.rowsDeduped.Add(1)
		return false, nil
	}
	d.seen[k] = struct{}{}
	if err := d.ctx.checkRows(len(d.seen)); err != nil {
		return false, err
	}
	return true, nil
}

// rowArena allocates row copies out of chunked backing arrays, replacing
// the per-row make in the hot emit paths. Rows handed out stay valid for
// the arena's lifetime; only the most recent allocation can be released.
type rowArena struct {
	buf []dict.ID
	// chunks counts the backing arrays allocated, a cheap proxy for the
	// arena's memory footprint reported on trace spans.
	chunks int
}

// arenaChunk is the backing-array size, in dict.ID values.
const arenaChunk = 4096

// alloc returns a zeroed row of n columns.
func (a *rowArena) alloc(n int) []dict.ID {
	if n == 0 {
		return nil
	}
	if len(a.buf)+n > cap(a.buf) {
		size := arenaChunk
		if n > size {
			size = n
		}
		a.buf = make([]dict.ID, 0, size)
		a.chunks++
	}
	start := len(a.buf)
	a.buf = a.buf[:start+n]
	row := a.buf[start : start+n : start+n]
	for i := range row {
		row[i] = 0
	}
	return row
}

// copy returns an arena-backed copy of row.
func (a *rowArena) copy(row []dict.ID) []dict.ID {
	out := a.alloc(len(row))
	copy(out, row)
	return out
}

// release returns the most recent allocation to the arena (a no-op for
// any other slice); duplicate rows dropped right after projection reuse
// their space.
func (a *rowArena) release(row []dict.ID) {
	if n := len(a.buf); len(row) > 0 && n >= len(row) && &a.buf[n-len(row)] == &row[0] {
		a.buf = a.buf[:n-len(row)]
	}
}
