package engine

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/bgp"
	"repro/internal/dict"
	"repro/internal/schema"
	"repro/internal/stats"
	"repro/internal/storage"
)

func TestScanCacheBasics(t *testing.T) {
	c := newScanCache()
	p := storage.Pattern{S: 1}
	if _, ok := c.get(p); ok {
		t.Fatalf("empty cache reported a hit")
	}

	// A cached empty result (nil slice) is distinguishable from a miss.
	c.put(p, nil)
	if ts, ok := c.get(p); !ok || ts != nil {
		t.Fatalf("cached-empty get = (%v, %v), want (nil, true)", ts, ok)
	}

	q := storage.Pattern{S: 2, P: 3}
	want := []storage.Triple{{S: 2, P: 3, O: 4}, {S: 2, P: 3, O: 5}}
	c.put(q, want)
	if ts, ok := c.get(q); !ok || !reflect.DeepEqual(ts, want) {
		t.Fatalf("get = (%v, %v), want (%v, true)", ts, ok, want)
	}

	// First writer wins; a duplicate put neither replaces the entry nor
	// leaks an entry count.
	before := c.entries.Load()
	c.put(q, []storage.Triple{{S: 9, P: 9, O: 9}})
	if c.entries.Load() != before {
		t.Fatalf("duplicate put changed the entry count: %d -> %d", before, c.entries.Load())
	}
	if ts, _ := c.get(q); !reflect.DeepEqual(ts, want) {
		t.Fatalf("duplicate put replaced the entry")
	}
}

// release must fully reset the recycled cache: the entry budget, every
// seen-once tag mark, and the shard maps. A stale seen mark only shifts
// when a pattern gets cached, but a stale map entry would replay
// triples from another evaluation's snapshot — and the tag-table reset
// must go through the slots' atomic Store API, not a wholesale clear()
// (the atomicmix analyzer enforces the latter; this test the former).
func TestScanCacheReleaseResets(t *testing.T) {
	c := newScanCache()
	p := storage.Pattern{S: 5, P: 6}
	if c.seenBefore(p) {
		t.Fatalf("fresh cache reports pattern already seen")
	}
	if !c.seenBefore(p) {
		t.Fatalf("second scan of the pattern not reported seen")
	}
	c.put(p, []storage.Triple{{S: 5, P: 6, O: 7}})
	if c.entries.Load() == 0 {
		t.Fatalf("put did not account an entry")
	}

	c.release()
	if got := c.entries.Load(); got != 0 {
		t.Fatalf("released cache keeps entry count %d", got)
	}
	for i := range c.seen {
		if c.seen[i].Load() != 0 {
			t.Fatalf("released cache keeps seen mark in slot %d", i)
		}
	}
	if _, ok := c.get(p); ok {
		t.Fatalf("released cache still serves a cached entry")
	}
	if c.seenBefore(p) {
		t.Fatalf("released cache still reports the pattern seen")
	}
	// The probe above re-marked its slot on the now-pooled cache (release
	// already returned it); scrub the table directly rather than calling
	// release again, which would put the same cache into the pool twice
	// and hand one copy to a test while another test still mutates it.
	for i := range c.seen {
		c.seen[i].Store(0)
	}
}

func TestScanCacheEntryCap(t *testing.T) {
	c := newScanCache()
	c.entries.Store(maxScanCacheEntries)
	if !c.full() {
		t.Fatalf("cache at capacity not reported full")
	}
	p := storage.Pattern{S: 7}
	c.put(p, []storage.Triple{{S: 7, P: 1, O: 1}})
	if _, ok := c.get(p); ok {
		t.Fatalf("put succeeded beyond the entry cap")
	}
	if c.entries.Load() != maxScanCacheEntries {
		t.Fatalf("rejected put leaked an entry count: %d", c.entries.Load())
	}
}

// scanPattern must deliver the exact Scan sequence on every path: cold
// (materialize-and-replay or exact range), warm (memo walk), and with
// early termination by the consumer.
func TestScanPatternMatchesSnapshotScan(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	b := storage.NewBuilder()
	for i := 0; i < 300; i++ {
		b.Add(storage.Triple{
			S: dict.ID(rng.Intn(40) + 1),
			P: dict.ID(rng.Intn(8) + 1),
			O: dict.ID(rng.Intn(40) + 1),
		})
	}
	st := b.Build()
	// Mutate so some patterns lose the zero-copy exact-range path and
	// exercise materialize-and-replay.
	st.Add(storage.Triple{S: 1, P: 1, O: 1})
	st.Remove(storage.Triple{S: 2, P: 2, O: 2})

	ctx := &evalCtx{snap: st.Snapshot(), shared: true, scans: newScanCache()}
	patterns := []storage.Pattern{
		{}, {S: 1}, {P: 3}, {O: 5}, {S: 1, P: 1}, {P: 2, O: 2}, {S: 3, O: 7},
	}
	collect := func(scan func(storage.Pattern, func(storage.Triple) bool), p storage.Pattern) []storage.Triple {
		var out []storage.Triple
		scan(p, func(tr storage.Triple) bool { out = append(out, tr); return true })
		return out
	}
	for round := 0; round < 2; round++ { // round 0 cold, round 1 from the memo
		for _, p := range patterns {
			want := collect(ctx.snap.Scan, p)
			got := collect(ctx.scanPattern, p)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("round %d pattern %+v: scanPattern %v, snapshot scan %v", round, p, got, want)
			}
			// Early termination after the first triple.
			n := 0
			ctx.scanPattern(p, func(storage.Triple) bool { n++; return false })
			if len(want) > 0 && n != 1 {
				t.Fatalf("pattern %+v: early-terminated scan delivered %d triples", p, n)
			}
		}
	}
	if ctx.scanHits.Load() == 0 || ctx.scanMisses.Load() == 0 {
		t.Fatalf("hit/miss counters did not move: hits=%d misses=%d",
			ctx.scanHits.Load(), ctx.scanMisses.Load())
	}
}

// memberOrder is joinOrder plus caching (per-arm order cache keyed by
// the member's renaming-invariant shape, cardinality memos shared across
// members, probes through the snapshot). The chosen orders must agree —
// the shared-vs-baseline equality tests cannot catch a divergence here,
// because both configurations evaluate through memberOrder.
func TestMemberOrderAgreesWithJoinOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	b := storage.NewBuilder()
	for i := 0; i < 500; i++ {
		b.Add(storage.Triple{
			S: dict.ID(rng.Intn(60) + 1),
			P: dict.ID(rng.Intn(10) + 1),
			O: dict.ID(rng.Intn(60) + 1),
		})
	}
	raw := b.Build()
	e := New(raw, stats.Collect(raw, schema.Vocab{}), Native)
	shared := &evalCtx{snap: raw.Snapshot(), shared: true}
	base := &evalCtx{snap: raw.Snapshot()}
	sc := newArmScratch()
	baseSc := newArmScratch()

	term := func() bgp.Term {
		if rng.Intn(2) == 0 {
			return bgp.V(uint32(rng.Intn(4) + 1))
		}
		return bgp.C(dict.ID(rng.Intn(60) + 1))
	}
	for qi := 0; qi < 200; qi++ {
		n := rng.Intn(4) + 1
		cq := bgp.CQ{Head: []bgp.Term{bgp.V(1)}}
		for i := 0; i < n; i++ {
			cq.Atoms = append(cq.Atoms, bgp.Atom{
				S: term(),
				P: bgp.C(dict.ID(rng.Intn(10) + 1)),
				O: term(),
			})
		}
		want := e.joinOrder(cq)
		got := e.memberOrder(shared, sc, cq)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d (%v): memberOrder %v, joinOrder %v", qi, cq.Atoms, got, want)
		}
		// The cached second call must return the same order.
		if again := e.memberOrder(shared, sc, cq); !reflect.DeepEqual(again, want) {
			t.Fatalf("query %d: cached memberOrder %v, want %v", qi, again, want)
		}
		// The uncached baseline branch must agree too.
		if b := e.memberOrder(base, baseSc, cq); !reflect.DeepEqual(b, want) {
			t.Fatalf("query %d: baseline memberOrder %v, want %v", qi, b, want)
		}
	}
}
