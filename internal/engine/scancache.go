package engine

import (
	"sync"
	"sync/atomic"

	"repro/internal/storage"
)

// scanCache is the per-evaluation pattern-scan memo: triple pattern →
// the exact triple sequence Scan yields for it on the pinned snapshot.
// Reformulation members are near-identical, so the bind-join re-issues
// the same patterns member after member (and, at inner depths, binding
// after binding); the memo turns every repeat into a slice walk with no
// index lookup. Entries are shared read-only across members, arms and
// shard workers of one evaluation and die with it, so mutation safety
// is inherited from the snapshot's immutability.
//
//lint:cache scancache
type scanCache struct {
	// entries counts cached patterns across all shards; inserts stop at
	// maxScanCacheEntries (repeats of cached patterns still hit).
	entries atomic.Int64
	// seen is a fixed tag table marking patterns scanned once: most
	// distinct patterns of an evaluation are never scanned again (the
	// repeats concentrate on a few), so entries are only installed on a
	// pattern's second scan. A collision merely overwrites a mark or
	// pre-marks a pattern — caching happens one scan early or late,
	// never incorrectly.
	seen   [scanSeenSlots]atomic.Uint32
	shards [scanCacheShards]scanShard
}

type scanShard struct {
	mu sync.RWMutex
	m  map[storage.Pattern][]storage.Triple
}

const (
	// scanCacheShards spreads concurrent shard workers over independent
	// locks; must be a power of two.
	scanCacheShards = 8
	// scanSeenSlots sizes the seen-once tag table; must be a power of
	// two. 8K slots cost 32KB per evaluation.
	scanSeenSlots = 1 << 13
	// maxScanCacheEntries bounds the number of cached patterns per
	// evaluation — beyond it, scans stream without materializing.
	maxScanCacheEntries = 1 << 15
	// maxScanCacheRows bounds a single materialized entry; larger scan
	// results are streamed and not cached (zero-copy exact ranges are
	// exempt: they cost only a slice header regardless of length).
	maxScanCacheRows = 4096
)

// scanCachePool recycles evaluation scan memos: the shard maps keep
// their buckets across evaluations, so steady-state cache installs
// allocate (almost) nothing.
var scanCachePool = sync.Pool{New: func() any { return new(scanCache) }}

func newScanCache() *scanCache { return scanCachePool.Get().(*scanCache) }

// release clears the cache — dropping every snapshot-pinned slice it
// retains — and returns it to the pool. The caller must have joined
// every worker of the owning evaluation first; EvalArms does.
func (c *scanCache) release() {
	c.entries.Store(0)
	// Reset the tag table slot by slot through the atomic API. A plain
	// clear() would be a non-atomic wholesale store racing any Load on
	// the slots — benign today only because release runs after the
	// worker join, but the atomicmix analyzer (rightly) bans relying on
	// that, and Store costs the same on a quiesced cache.
	for i := range c.seen {
		c.seen[i].Store(0)
	}
	for i := range c.shards {
		clear(c.shards[i].m)
	}
	scanCachePool.Put(c)
}

func patternHash(p storage.Pattern) uint64 {
	return uint64(p.S)*0x9E3779B1 ^ uint64(p.P)*0x85EBCA77 ^ uint64(p.O)*0xC2B2AE3D
}

func (c *scanCache) shard(p storage.Pattern) *scanShard {
	return &c.shards[patternHash(p)&(scanCacheShards-1)]
}

// seenBefore reports whether the pattern was (probably) scanned before
// in this evaluation, marking it seen otherwise. Safe for concurrent
// shard workers: a racing pair both read unseen, both stream uncached,
// and the pattern is cached on a later scan.
func (c *scanCache) seenBefore(p storage.Pattern) bool {
	h := patternHash(p)
	slot := &c.seen[(h>>3)&(scanSeenSlots-1)]
	tag := uint32(h>>32) | 1
	if slot.Load() == tag {
		return true
	}
	slot.Store(tag)
	return false
}

// get returns the cached triple sequence for the pattern. ok
// distinguishes a cached empty result (nil slice) from a miss.
func (c *scanCache) get(p storage.Pattern) ([]storage.Triple, bool) {
	sh := c.shard(p)
	sh.mu.RLock()
	//lint:ignore versionstamp per-evaluation memo pinned to one snapshot (EvalArms pins ctx.snap); entries die with the evaluation and cannot span store versions
	ts, ok := sh.m[p]
	sh.mu.RUnlock()
	return ts, ok
}

// full reports whether the entry budget is exhausted — callers skip
// materializing results they would not be able to cache.
func (c *scanCache) full() bool { return c.entries.Load() >= maxScanCacheEntries }

// put caches the triple sequence for the pattern. The first writer
// wins; a concurrent duplicate (two workers scanning the same pattern)
// computed the identical sequence anyway and is dropped.
func (c *scanCache) put(p storage.Pattern, ts []storage.Triple) {
	if c.entries.Add(1) > maxScanCacheEntries {
		c.entries.Add(-1)
		return
	}
	sh := c.shard(p)
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = make(map[storage.Pattern][]storage.Triple, 64)
	}
	//lint:ignore versionstamp per-evaluation memo pinned to one snapshot; duplicate probe of an unversioned entry that dies with the evaluation
	if _, dup := sh.m[p]; dup {
		sh.mu.Unlock()
		c.entries.Add(-1)
		return
	}
	//lint:ignore versionstamp per-evaluation memo pinned to one snapshot; entries are released before the next evaluation and cannot go stale
	sh.m[p] = ts
	sh.mu.Unlock()
}

// scanPattern is the engine's scan entry point during evaluation: every
// bind-join scan goes through it. It reads from the evaluation's pinned
// snapshot — never the live store, so no lock is held and scans nest
// freely — and, with the shared-scan layer on, consults the pattern
// memo first. The triple sequence delivered to f is byte-identical to
// snap.Scan(p, f) in every case; only the locating work is shared.
func (c *evalCtx) scanPattern(p storage.Pattern, f func(storage.Triple) bool) {
	if !c.shared {
		c.snap.Scan(p, f)
		return
	}
	if ts, ok := c.scans.get(p); ok {
		c.scanHits.Add(1)
		for _, t := range ts {
			if !f(t) {
				return
			}
		}
		return
	}
	c.scanMisses.Add(1)
	repeat := c.scans.seenBefore(p)
	if ts, ok := c.snap.Range(p); ok {
		// Exact zero-copy range: the subslice header is free to walk, and
		// worth a cache entry once the pattern has shown up twice.
		c.snapRanges.Add(1)
		if repeat {
			c.scans.put(p, ts)
		}
		for _, t := range ts {
			if !f(t) {
				return
			}
		}
		return
	}
	if !repeat || c.scans.full() {
		c.snap.Scan(p, f)
		return
	}
	// Materialize-and-replay, abandoning the buffer if the result
	// outgrows the per-entry cap: buffered triples are flushed to f and
	// the rest of the scan streams straight through.
	var buf []storage.Triple
	overflow := false
	stopped := false
	c.snap.Scan(p, func(t storage.Triple) bool {
		if overflow {
			if !f(t) {
				stopped = true
				return false
			}
			return true
		}
		buf = append(buf, t)
		if len(buf) > maxScanCacheRows {
			overflow = true
			for _, bt := range buf {
				if !f(bt) {
					stopped = true
					return false
				}
			}
			buf = nil
		}
		return true
	})
	if overflow || stopped {
		return
	}
	c.scans.put(p, buf)
	for _, t := range buf {
		if !f(t) {
			return
		}
	}
}
