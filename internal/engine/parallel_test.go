package engine_test

import (
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/bgp"
	"repro/internal/engine"
	"repro/internal/reformulate"
	"repro/internal/stats"
	"repro/internal/testkit"
)

// relEqual reports whether two relations are byte-identical: same column
// order and same rows in the same order.
func relEqual(a, b *engine.Relation) bool {
	ar, br := a.Materialize(), b.Materialize()
	if !reflect.DeepEqual(a.Vars, b.Vars) || len(ar) != len(br) {
		return false
	}
	for i := range ar {
		if !reflect.DeepEqual(ar[i], br[i]) {
			return false
		}
	}
	return true
}

// scqArms builds the per-atom (SCQ) reformulated arms of q — a multi-arm
// JUCQ workload with non-trivial unions per arm.
func scqArms(t *testing.T, e *testkit.Example, q bgp.CQ) ([]uint32, []engine.ArmSource) {
	t.Helper()
	head := headVars(q)
	var arms []engine.ArmSource
	for i := range q.Atoms {
		sub := coverQuery(q, []int{i}, head)
		ref, err := reformulate.Reformulate(sub, e.Closed)
		if err != nil {
			t.Fatal(err)
		}
		u, err := ref.UCQ(100000)
		if err != nil {
			t.Fatal(err)
		}
		arms = append(arms, engine.SourceFromUCQ(u))
	}
	return head, arms
}

// Parallel evaluation must return byte-identical relations and identical
// metrics to sequential evaluation, on every profile, for single-arm UCQs
// and multi-arm JUCQs alike.
func TestParallelMatchesSequential(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		e := testkit.Random(seed, 50)
		raw := e.RawStore()
		st := stats.Collect(raw, e.Vocab)
		rng := rand.New(rand.NewSource(seed + 77))
		q := testkit.RandomQuery(e, rng)
		if len(q.Atoms) < 2 || !connectedQuery(q) {
			continue
		}
		ref, err := reformulate.Reformulate(q, e.Closed)
		if err != nil {
			t.Fatal(err)
		}
		u, err := ref.UCQ(100000)
		if err != nil {
			t.Fatal(err)
		}
		head, arms := scqArms(t, e, q)
		for _, prof := range append(engine.Profiles(), engine.Native) {
			seq := engine.New(raw, st, prof).WithParallelism(1)
			par := engine.New(raw, st, prof).WithParallelism(8)

			wantRel, wantM, err := seq.EvalUCQ(u)
			if err != nil {
				t.Fatalf("seed %d %s: sequential UCQ: %v", seed, prof.Name, err)
			}
			gotRel, gotM, err := par.EvalUCQ(u)
			if err != nil {
				t.Fatalf("seed %d %s: parallel UCQ: %v", seed, prof.Name, err)
			}
			if !relEqual(gotRel, wantRel) {
				t.Errorf("seed %d %s: parallel UCQ relation differs from sequential", seed, prof.Name)
			}
			if gotM != wantM {
				t.Errorf("seed %d %s: parallel UCQ metrics = %+v, sequential = %+v", seed, prof.Name, gotM, wantM)
			}

			wantRel, wantM, err = seq.EvalArms(head, arms)
			if err != nil {
				t.Fatalf("seed %d %s: sequential JUCQ: %v", seed, prof.Name, err)
			}
			gotRel, gotM, err = par.EvalArms(head, arms)
			if err != nil {
				t.Fatalf("seed %d %s: parallel JUCQ: %v", seed, prof.Name, err)
			}
			if !relEqual(gotRel, wantRel) {
				t.Errorf("seed %d %s: parallel JUCQ relation differs from sequential", seed, prof.Name)
			}
			if gotM != wantM {
				t.Errorf("seed %d %s: parallel JUCQ metrics = %+v, sequential = %+v", seed, prof.Name, gotM, wantM)
			}
		}
	}
}

// The typed budget errors must fire identically under parallel and
// sequential evaluation when a budget is clearly exceeded.
func TestParallelBudgetErrorsMatchSequential(t *testing.T) {
	e := testkit.Paper()
	raw := e.RawStore()
	st := stats.Collect(raw, e.Vocab)
	q := bgp.CQ{
		Head:  []bgp.Term{bgp.V(0), bgp.V(2)},
		Atoms: []bgp.Atom{{S: bgp.V(0), P: bgp.V(1), O: bgp.V(2)}},
	}
	cases := []struct {
		name string
		prof engine.Profile
		want error
	}{
		{"work", engine.Profile{Name: "w", WorkBudget: 2, ArmJoin: engine.HashJoin}, engine.ErrWorkBudget},
		{"memory", engine.Profile{Name: "m", MaxMaterializedRows: 1, ArmJoin: engine.HashJoin}, engine.ErrMemoryBudget},
		{"plan", engine.Profile{Name: "p", MaxPlanLeaves: 1, ArmJoin: engine.HashJoin}, engine.ErrPlanTooComplex},
	}
	planQ := bgp.CQ{
		Head: []bgp.Term{bgp.V(0)},
		Atoms: []bgp.Atom{
			{S: bgp.V(0), P: bgp.V(1), O: bgp.V(2)},
			{S: bgp.V(0), P: bgp.V(3), O: bgp.V(4)},
		},
	}
	for _, tc := range cases {
		for _, par := range []int{1, 8} {
			eng := engine.New(raw, st, tc.prof).WithParallelism(par)
			in := q
			if errors.Is(tc.want, engine.ErrPlanTooComplex) {
				in = planQ
			}
			_, _, err := eng.EvalCQ(in)
			if !errors.Is(err, tc.want) {
				t.Errorf("%s (parallelism %d): err = %v, want %v", tc.name, par, err, tc.want)
			}
		}
	}
}

// Concurrent evaluations on one shared engine, each itself parallel, must
// be race-free and agree with the sequential answer (run with -race; the
// schedule is the test).
func TestParallelEvalRace(t *testing.T) {
	e := testkit.Random(3, 60)
	raw := e.RawStore()
	st := stats.Collect(raw, e.Vocab)
	rng := rand.New(rand.NewSource(99))
	var q bgp.CQ
	for {
		q = testkit.RandomQuery(e, rng)
		if len(q.Atoms) >= 2 && connectedQuery(q) {
			break
		}
	}
	head, arms := scqArms(t, e, q)
	want, _, err := engine.New(raw, st, engine.Native).WithParallelism(1).EvalArms(head, arms)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(raw, st, engine.Native).WithParallelism(4)
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				got, _, err := eng.EvalArms(head, arms)
				if err != nil {
					t.Errorf("parallel eval: %v", err)
					return
				}
				if !relEqual(got, want) {
					t.Error("parallel eval diverged from sequential under concurrency")
					return
				}
			}
		}()
	}
	wg.Wait()
}

// fullScanArm streams n copies of a full-scan member CQ — a synthetic
// arm whose evaluation cost is easy to push over any budget.
func fullScanArm(n int) engine.ArmSource {
	member := bgp.CQ{
		Head:  []bgp.Term{bgp.V(0), bgp.V(2)},
		Atoms: []bgp.Atom{{S: bgp.V(0), P: bgp.V(1), O: bgp.V(2)}},
	}
	return engine.ArmSource{
		Vars:   []uint32{0, 2},
		NumCQs: int64(n),
		Leaves: int64(n),
		Each: func(f func(bgp.CQ) bool) bool {
			for i := 0; i < n; i++ {
				if !f(member) {
					return false
				}
			}
			return true
		},
	}
}

// A failing member CQ must surface exactly one typed error — never a
// hang, never a nil error with a nil relation — at every worker count,
// for single-arm and multi-arm evaluations alike. The failure is
// injected through tight budgets, the only way a member evaluation can
// fail (budget errors are the engine's typed failures).
func TestParallelMemberFailureSurfacesTypedError(t *testing.T) {
	e := testkit.Random(5, 80)
	raw := e.RawStore()
	st := stats.Collect(raw, e.Vocab)
	cases := []struct {
		name string
		prof engine.Profile
		want error
	}{
		{"work-budget", engine.Profile{Name: "w", WorkBudget: 500, ArmJoin: engine.HashJoin}, engine.ErrWorkBudget},
		{"memory-budget", engine.Profile{Name: "m", MaxMaterializedRows: 3, ArmJoin: engine.HashJoin}, engine.ErrMemoryBudget},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 2, 4, 8, 16} {
			eng := engine.New(raw, st, tc.prof).WithParallelism(workers)

			rel, _, err := eng.EvalArms([]uint32{0, 2}, []engine.ArmSource{fullScanArm(200)})
			if !errors.Is(err, tc.want) {
				t.Fatalf("%s (workers=%d): single-arm err = %v, want %v", tc.name, workers, err, tc.want)
			}
			if rel != nil {
				t.Errorf("%s (workers=%d): single-arm relation = %v rows, want nil on error", tc.name, workers, rel.Len())
			}

			rel, _, err = eng.EvalArms([]uint32{0}, []engine.ArmSource{fullScanArm(100), fullScanArm(100)})
			if !errors.Is(err, tc.want) {
				t.Fatalf("%s (workers=%d): multi-arm err = %v, want %v", tc.name, workers, err, tc.want)
			}
			if rel != nil {
				t.Errorf("%s (workers=%d): multi-arm relation = %v rows, want nil on error", tc.name, workers, rel.Len())
			}
		}
	}
}

// A failure must not depend on where in the member stream it fires: the
// worker count must never change *which* typed error surfaces when only
// one budget is breachable.
func TestParallelFailureIsWorkerCountIndependent(t *testing.T) {
	e := testkit.Random(9, 60)
	raw := e.RawStore()
	st := stats.Collect(raw, e.Vocab)
	prof := engine.Profile{Name: "tight", WorkBudget: 1000, ArmJoin: engine.HashJoin}
	want, _, errSeq := engine.New(raw, st, prof).WithParallelism(1).EvalArms(
		[]uint32{0, 2}, []engine.ArmSource{fullScanArm(300)})
	if errSeq == nil || want != nil {
		t.Fatalf("sequential run: rel=%v err=%v, want nil rel and a budget error", want, errSeq)
	}
	for _, workers := range []int{2, 4, 8, 16} {
		_, _, err := engine.New(raw, st, prof).WithParallelism(workers).EvalArms(
			[]uint32{0, 2}, []engine.ArmSource{fullScanArm(300)})
		if !errors.Is(err, engine.ErrWorkBudget) {
			t.Errorf("workers=%d: err = %v, want %v", workers, err, engine.ErrWorkBudget)
		}
	}
}
