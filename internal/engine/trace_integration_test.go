package engine_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/bgp"
	"repro/internal/engine"
	"repro/internal/stats"
	"repro/internal/testkit"
	"repro/internal/trace"
)

// WithSpan must record the evaluation's operator tree — arm, join and
// project spans with row counters — and the engine.* registry totals,
// while leaving the answer identical to an untraced run.
func TestEvalRecordsSpanTree(t *testing.T) {
	e := testkit.Paper()
	raw := e.RawStore()
	st := stats.Collect(raw, e.Vocab)
	q := bgp.CQ{
		Head:  []bgp.Term{bgp.V(0), bgp.V(1)},
		Atoms: []bgp.Atom{{S: bgp.V(0), P: bgp.C(e.Vocab.Type), O: bgp.V(1)}},
	}

	plain := engine.New(raw, st, engine.Native).WithParallelism(1)
	want, wantM, err := plain.EvalCQ(q)
	if err != nil {
		t.Fatal(err)
	}

	root := trace.New("evaluate")
	got, gotM, err := plain.WithSpan(root).EvalCQ(q)
	root.End()
	if err != nil {
		t.Fatal(err)
	}
	if !relEqual(got, want) || gotM != wantM {
		t.Fatal("traced evaluation diverged from untraced")
	}

	if sp := root.Find("arm[0]"); sp == nil {
		t.Error("no arm[0] span recorded")
	} else if v, ok := sp.IntAttr("rows_out"); !ok || v != int64(want.Len()) {
		t.Errorf("arm[0] rows_out = %d, %v; want %d", v, ok, want.Len())
	}
	if root.Find("project") == nil {
		t.Error("no project span recorded")
	}
	if v, ok := root.IntAttr("rows_out"); !ok || v != int64(want.Len()) {
		t.Errorf("root rows_out = %d, %v; want %d", v, ok, want.Len())
	}
	if v, ok := root.IntAttr("tuples_scanned"); !ok || v != wantM.TuplesScanned {
		t.Errorf("root tuples_scanned = %d, %v; want %d", v, ok, wantM.TuplesScanned)
	}
	if got := root.Counter("engine.evals").Value(); got != 1 {
		t.Errorf("engine.evals counter = %d, want 1", got)
	}
	if got := root.Counter("engine.tuples_scanned").Value(); got != wantM.TuplesScanned {
		t.Errorf("engine.tuples_scanned counter = %d, want %d", got, wantM.TuplesScanned)
	}

	var buf bytes.Buffer
	if err := root.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, needle := range []string{"evaluate", "arm[0]", "project", "rows_out="} {
		if !strings.Contains(out, needle) {
			t.Errorf("rendered trace missing %q:\n%s", needle, out)
		}
	}
}

// Parallel evaluation must record per-shard spans under the arm span
// and still return the sequential answer.
func TestParallelEvalRecordsShardSpans(t *testing.T) {
	e := testkit.Random(4, 70)
	raw := e.RawStore()
	st := stats.Collect(raw, e.Vocab)

	eng := engine.New(raw, st, engine.Native).WithParallelism(4)
	root := trace.New("evaluate")
	_, _, err := eng.WithSpan(root).EvalArms([]uint32{0, 2}, []engine.ArmSource{fullScanArm(100)})
	root.End()
	if err != nil {
		t.Fatal(err)
	}
	arm := root.Find("arm[0]")
	if arm == nil {
		t.Fatal("no arm[0] span recorded")
	}
	if arm.Find("shard[0]") == nil {
		t.Error("no shard[0] span under the arm")
	}
	merge := arm.Find("merge")
	if merge == nil {
		t.Fatal("no merge span under the arm")
	}
	if v, ok := merge.IntAttr("batches"); !ok || v <= 0 {
		t.Errorf("merge batches = %d, %v; want > 0", v, ok)
	}
	// The shard members must add up to the arm's member count.
	var members int64
	for _, c := range arm.Children() {
		if strings.HasPrefix(c.Name(), "shard[") {
			v, _ := c.IntAttr("members")
			members += v
		}
	}
	if members != 100 {
		t.Errorf("shard members sum = %d, want 100", members)
	}
}

// A traced failing evaluation must record the error on the span and
// count it in the registry.
func TestTraceRecordsError(t *testing.T) {
	e := testkit.Random(5, 80)
	raw := e.RawStore()
	st := stats.Collect(raw, e.Vocab)
	prof := engine.Profile{Name: "tight", WorkBudget: 100, ArmJoin: engine.HashJoin}

	root := trace.New("evaluate")
	_, _, err := engine.New(raw, st, prof).WithSpan(root).EvalArms(
		[]uint32{0, 2}, []engine.ArmSource{fullScanArm(50)})
	root.End()
	if err == nil {
		t.Fatal("expected a budget error")
	}
	if got := root.Counter("engine.errors").Value(); got != 1 {
		t.Errorf("engine.errors counter = %d, want 1", got)
	}
}
