package engine_test

import (
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/reformulate"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/testkit"
)

// rebuildCompressed copies a store into the compressed block-columnar
// representation with deliberately small blocks, so engine scans cross
// many block boundaries.
func rebuildCompressed(src *storage.Store) *storage.Store {
	b := storage.NewBuilder(src.Orders()...).
		WithCompression(storage.CompressionOn).
		WithBlockSize(32)
	src.Each(func(t storage.Triple) bool {
		b.Add(t)
		return true
	})
	return b.Build()
}

// The compressed frozen representation must be invisible to the engine:
// byte-identical relations to evaluation over the flat representation,
// for UCQs and multi-arm JUCQs, sequentially and in parallel, with and
// without the shared-scan layer.
func TestCompressedStoreMatchesFlat(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		e := testkit.Random(seed, 50)
		raw := e.RawStore()
		comp := rebuildCompressed(raw)
		if fp := comp.Footprint(); !fp.Compressed {
			t.Fatalf("seed %d: rebuild is not compressed", seed)
		}
		flatStats := stats.Collect(raw, e.Vocab)
		compStats := stats.Collect(comp, e.Vocab)

		rng := rand.New(rand.NewSource(seed + 771))
		q := testkit.RandomQuery(e, rng)
		if len(q.Atoms) < 2 || !connectedQuery(q) {
			continue
		}
		ref, err := reformulate.Reformulate(q, e.Closed)
		if err != nil {
			t.Fatal(err)
		}
		u, err := ref.UCQ(100000)
		if err != nil {
			t.Fatal(err)
		}
		head, arms := scqArms(t, e, q)
		for _, sharedScan := range []bool{true, false} {
			for _, par := range []int{1, 8} {
				flatEng := engine.New(raw, flatStats, engine.Native).WithParallelism(par).WithSharedScan(sharedScan)
				compEng := engine.New(comp, compStats, engine.Native).WithParallelism(par).WithSharedScan(sharedScan)

				wantRel, _, err := flatEng.EvalUCQ(u)
				if err != nil {
					t.Fatalf("seed %d shared=%v par=%d: flat UCQ: %v", seed, sharedScan, par, err)
				}
				gotRel, _, err := compEng.EvalUCQ(u)
				if err != nil {
					t.Fatalf("seed %d shared=%v par=%d: compressed UCQ: %v", seed, sharedScan, par, err)
				}
				if !relEqual(gotRel, wantRel) {
					t.Errorf("seed %d shared=%v par=%d: compressed UCQ relation differs from flat", seed, sharedScan, par)
				}

				wantRel, _, err = flatEng.EvalArms(head, arms)
				if err != nil {
					t.Fatalf("seed %d shared=%v par=%d: flat JUCQ: %v", seed, sharedScan, par, err)
				}
				gotRel, _, err = compEng.EvalArms(head, arms)
				if err != nil {
					t.Fatalf("seed %d shared=%v par=%d: compressed JUCQ: %v", seed, sharedScan, par, err)
				}
				if !relEqual(gotRel, wantRel) {
					t.Errorf("seed %d shared=%v par=%d: compressed JUCQ relation differs from flat", seed, sharedScan, par)
				}
			}
		}
	}
}

// Repeated evaluations over one compressed store must stay stable while
// snapshots are released between them — the pooled decode buffers cycle
// through the pool without corrupting later reads.
func TestCompressedRepeatedEvaluationStable(t *testing.T) {
	e := testkit.Random(3, 60)
	comp := rebuildCompressed(e.RawStore())
	st := stats.Collect(comp, e.Vocab)
	rng := rand.New(rand.NewSource(99))
	q := testkit.RandomQuery(e, rng)
	ref, err := reformulate.Reformulate(q, e.Closed)
	if err != nil {
		t.Fatal(err)
	}
	u, err := ref.UCQ(100000)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(comp, st, engine.Native)
	first, _, err := eng.EvalUCQ(u)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, _, err := eng.EvalUCQ(u)
		if err != nil {
			t.Fatal(err)
		}
		if !relEqual(again, first) {
			t.Fatalf("evaluation %d differs from the first", i)
		}
	}
}
