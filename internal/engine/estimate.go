package engine

import (
	"repro/internal/bgp"
)

// EstimateArms is the engine's *internal* cost estimate for a join of UCQ
// arms — the counterpart of asking Postgres for an EXPLAIN of the
// cover-based reformulation, which the paper uses as the alternative cost
// source in its Figure 9 comparison. It prices the physical plan the
// engine would actually run: bind-joins per member CQ in the greedy atom
// order (each level's scans multiplied by the estimated bindings arriving
// from the previous level), duplicate elimination per arm, and the
// arm-join algorithm of the profile (nested-loop arm joins are priced
// quadratically, which is what makes the internal estimate engine-aware
// in a way the paper's generic cost model is not).
func (e *Engine) EstimateArms(arms []ArmSource) float64 {
	total := 0.0
	sizes := make([]float64, len(arms))
	for i, arm := range arms {
		armCost, armCard := 0.0, 0.0
		arm.Each(func(cq bgp.CQ) bool {
			c, card := e.estimateMember(cq)
			armCost += c
			armCard += card
			return true
		})
		// Duplicate elimination over the arm's result.
		total += armCost + armCard
		sizes[i] = armCard
	}
	// Arm joins: sizes combine pairwise in increasing order.
	if len(sizes) > 1 {
		cur := sizes[0]
		for _, s := range sizes[1:] {
			switch e.prof.ArmJoin {
			case NestedLoopJoin:
				total += cur * s
			case MergeJoin:
				total += cur*log2(cur) + s*log2(s)
			default:
				total += cur + s
			}
			// Output estimate: optimistic containment join.
			if s < cur {
				cur = s
			}
		}
		total += cur // final projection/dedup
	}
	return total
}

// estimateMember prices one member CQ's bind-join: the first atom is a
// full pattern scan; each later atom is probed once per estimated binding
// of the prefix, at its bound-discounted cardinality.
func (e *Engine) estimateMember(cq bgp.CQ) (cost, card float64) {
	order := e.joinOrder(cq)
	bound := make(map[uint32]bool)
	bindings := 1.0
	cost = 0.0
	var buf []uint32 // scratch, reused across atoms
	for _, idx := range order {
		a := cq.Atoms[idx]
		per := e.st.AtomCard(a)
		buf = a.Vars(buf[:0])
		for j, v := range buf {
			if bound[v] && !dupBefore(buf, j) {
				if d := e.st.DistinctForVar(a, v); d > 1 {
					per /= d
				}
			}
		}
		cost += bindings * maxf(per, 1)
		bindings *= maxf(per, 0.001)
		for _, v := range buf {
			bound[v] = true
		}
	}
	return cost, bindings
}

func log2(x float64) float64 {
	if x < 2 {
		return 1
	}
	n := 0.0
	for x >= 2 {
		x /= 2
		n++
	}
	return n
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
