package engine

import (
	"math"

	"repro/internal/bgp"
	"repro/internal/dict"
	"repro/internal/storage"
	"repro/internal/trace"
)

// This file is the factorized answer path (WithFactorized): when a
// member plan's join order splits into variable-disjoint segments, the
// arm's answer is a cross-product of per-segment sub-relations and is
// kept in that form (see FRelation) instead of being expanded.
//
// The contract is strict flat equivalence: Materialize/Cursor enumerate
// exactly the rows flat evaluation would have produced, in its
// first-occurrence order, and Metrics and budget errors are those of
// flat evaluation. The order part rests on the product structure — flat
// bind-join enumeration of disjoint segments is an odometer over the
// per-segment binding sequences, so first-occurrence dedup of the
// product equals the product of per-segment first-occurrence dedups,
// enumerated first-segment-major. For multi-member unions this holds
// when members differ only in the outermost segment (with identical
// heads): their products share the inner factors, so the union is
// (union of segment-0 sub-rows) × (inner factors), still in flat
// first-occurrence order. Members breaking the pattern trigger a
// fallback that expands the accumulator (already fully charged) into a
// pre-seeded flat dedup set and continues on the ordinary flat path.
//
// The metrics part is accounted by replay: each segment is scanned once
// for real (charging per tuple, exactly like evalMember), and the scans
// flat evaluation would repeat per outer binding are charged in bulk —
// segment i costs (Π_{j<i} B_j) × T_i tuples flat, of which one T_i was
// paid for real on the segment's first evaluation. Emissions (Π B_i per
// member), duplicate counts and the materialization check on the
// logical distinct-row count follow the same scheme; see evalFactMember.

// factPlan is the decomposition shared by an arm's factorized members:
// the first member's segment structure and how head positions map onto
// it.
type factPlan struct {
	// segs holds each segment's atom indices in evaluation order;
	// atoms holds the corresponding atoms (for pattern-matching
	// subsequent members against segment shapes).
	segs  [][]int
	atoms [][]bgp.Atom
	// cols holds the head positions owned by each segment; positions
	// owned by none are constants in template.
	cols     [][]int
	template []dict.ID
	head     []bgp.Term
}

// factAccComp accumulates one segment's factor across an arm's members:
// the distinct projected sub-rows in flat first-occurrence order, and —
// for inner segments, which are shared by every matching member — the
// binding and tuple counts of the one real evaluation, replayed for
// later members.
type factAccComp struct {
	set       rowSet
	evaluated bool
	b, t      int64
}

// factAcc is the factorized union under construction for one arm.
type factAcc struct {
	plan  factPlan
	comps []factAccComp
	arena rowArena
	// hits counts the synthetic duplicate emissions (flat's dedup hits),
	// reported on the arm span.
	hits int64
}

// evalArmFactorized evaluates one arm in factorized form if its first
// member's join order decomposes into variable-disjoint segments.
// handled == false means the arm does not factorize and the caller must
// evaluate it on the ordinary path (the member stream was only peeked,
// and ArmSource.Each restarts from the beginning). Once handled, the
// result — factorized, degenerate-flat, or flat after a mid-stream
// fallback — is byte-equivalent to flat evaluation with identical
// metrics and budget behaviour.
func (e *Engine) evalArmFactorized(ctx *evalCtx, sp *trace.Span, arm ArmSource) (*Relation, bool, error) {
	var first bgp.CQ
	got := false
	arm.Each(func(cq bgp.CQ) bool { first, got = cq, true; return false })
	if !got {
		return nil, false, nil
	}
	sc := newArmScratch()
	defer sc.release()
	order := e.memberOrder(ctx, sc, first)
	segs := segmentize(first, order)
	if segs == nil {
		return nil, false, nil
	}
	cols, template, ok := headPlan(first, segs)
	if !ok {
		return nil, false, nil
	}
	acc := &factAcc{
		plan:  factPlan{segs: segs, cols: cols, template: template, head: first.Head},
		comps: make([]factAccComp, len(segs)),
	}
	acc.plan.atoms = make([][]bgp.Atom, len(segs))
	for i, s := range segs {
		for _, ai := range s {
			acc.plan.atoms[i] = append(acc.plan.atoms[i], first.Atoms[ai])
		}
	}

	var failure error
	var flat *Relation // non-nil once a mismatching member forced the fallback
	var dedup *dedupSet
	window := make([]bgp.CQ, 0, mergeWindow)
	flush := func() bool {
		if len(window) == 0 {
			return true
		}
		_, err := e.evalMemberRun(ctx, sc, window, dedup, flat)
		window = window[:0]
		if err != nil {
			failure = err
			return false
		}
		return true
	}
	memberIdx := 0
	arm.Each(func(cq bgp.CQ) bool {
		memberIdx++
		if flat != nil {
			window = append(window, cq)
			if len(window) == mergeWindow {
				return flush()
			}
			return true
		}
		msegs := segs
		if memberIdx > 1 {
			var match bool
			msegs, match = e.factMatch(ctx, sc, acc, cq)
			if !match {
				// Fallback: expand the accumulator — every row of it was
				// already admitted and charged under the factorized
				// accounting — into a pre-seeded flat set, and continue
				// exactly as the sequential flat path would.
				flat = &Relation{Vars: arm.Vars}
				dedup = newDedupSet(ctx)
				acc.expandInto(flat, dedup)
				window = append(window, cq)
				return true
			}
		}
		ctx.unionArms.Add(1)
		if err := e.evalFactMember(ctx, sc, acc, cq, msegs); err != nil {
			failure = err
			return false
		}
		return true
	})
	if failure == nil && flat != nil {
		flush()
	}
	if failure != nil {
		return nil, true, failure
	}
	out := flat
	if out == nil {
		out = acc.buildRelation(arm.Vars)
	}
	if sp != nil {
		hits := acc.hits
		if dedup != nil {
			hits += dedup.hits
		}
		sp.SetInt("rows_out", int64(out.Len()))
		sp.SetInt("dedup_hits", hits)
		sp.SetInt("arena_chunks", int64(acc.arena.chunks))
		if f := out.Factorized(); f != nil {
			sp.SetInt("factorized", 1)
			sp.SetInt("components", int64(f.Components()))
			sp.SetInt("stored_rows", f.StoredRows())
			sp.SetInt("logical_rows", f.LogicalRows())
		}
	}
	return out, true, nil
}

// segmentize splits a member's join order into maximal runs of
// variable-connected atoms and returns them only when they form two or
// more globally variable-disjoint segments — the decomposition rule.
// Greedy ordering is component-contiguous so the run split suffices; an
// ablation order (DisableJoinOrdering) may interleave components, which
// the pairwise check rejects, falling back to flat evaluation.
func segmentize(cq bgp.CQ, order []int) [][]int {
	if len(order) < 2 {
		return nil
	}
	var segs [][]int
	var segVars [][]uint32
	var buf []uint32
	for _, ai := range order {
		buf = cq.Atoms[ai].Vars(buf[:0])
		if n := len(segs); n > 0 && sharesVars(buf, segVars[n-1]) {
			segs[n-1] = append(segs[n-1], ai)
			segVars[n-1] = mergeVars(segVars[n-1], buf)
			continue
		}
		segs = append(segs, []int{ai})
		segVars = append(segVars, append([]uint32(nil), buf...))
	}
	if len(segs) < 2 {
		return nil
	}
	for i := range segVars {
		for j := i + 1; j < len(segVars); j++ {
			if sharesVars(segVars[i], segVars[j]) {
				return nil
			}
		}
	}
	return segs
}

// mergeVars appends the members of add missing from vars.
func mergeVars(vars, add []uint32) []uint32 {
	for _, v := range add {
		seen := false
		for _, w := range vars {
			if w == v {
				seen = true
				break
			}
		}
		if !seen {
			vars = append(vars, v)
		}
	}
	return vars
}

// headPlan maps each head position to the segment binding its variable
// (cols) or to its constant (template). ok is false when a head
// variable is bound by no segment — such members cannot be evaluated in
// factorized form (flat evaluation reports the error).
func headPlan(cq bgp.CQ, segs [][]int) (cols [][]int, template []dict.ID, ok bool) {
	template = make([]dict.ID, len(cq.Head))
	cols = make([][]int, len(segs))
	for i, h := range cq.Head {
		if !h.Var {
			template[i] = h.Const()
			continue
		}
		owner := -1
	scan:
		for s, atoms := range segs {
			for _, ai := range atoms {
				if cq.Atoms[ai].HasVar(h.ID) {
					owner = s
					break scan
				}
			}
		}
		if owner < 0 {
			return nil, nil, false
		}
		cols[owner] = append(cols[owner], i)
	}
	return cols, template, true
}

// factMatch reports whether cq fits the accumulator's pattern: the same
// segment count with identical inner segments (atom-for-atom, in the
// same evaluation order), an identical head, and the same head-position
// ownership. Only the outermost segment may differ — the property that
// makes the union of member products a single product of the unioned
// outer factor with the shared inner factors.
func (e *Engine) factMatch(ctx *evalCtx, sc *armScratch, acc *factAcc, cq bgp.CQ) ([][]int, bool) {
	plan := &acc.plan
	if len(cq.Head) != len(plan.head) {
		return nil, false
	}
	for i, h := range cq.Head {
		if h != plan.head[i] {
			return nil, false
		}
	}
	order := e.memberOrder(ctx, sc, cq)
	segs := segmentize(cq, order)
	if len(segs) != len(plan.segs) {
		return nil, false
	}
	for i := 1; i < len(segs); i++ {
		if len(segs[i]) != len(plan.atoms[i]) {
			return nil, false
		}
		for j, ai := range segs[i] {
			if cq.Atoms[ai] != plan.atoms[i][j] {
				return nil, false
			}
		}
	}
	cols, template, ok := headPlan(cq, segs)
	if !ok {
		return nil, false
	}
	for i := range cols {
		if !intsEqual(cols[i], plan.cols[i]) {
			return nil, false
		}
	}
	for i := range template {
		if template[i] != plan.template[i] {
			return nil, false
		}
	}
	return segs, true
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}

// evalFactMember folds one member into the accumulator, charging
// exactly what flat evaluation of the member charges:
//
//   - segment scans: each segment is bind-joined once for real (one
//     work unit and one tuplesScanned per tuple, like evalMember); the
//     repeats flat performs — segment i runs once per binding of the
//     segments before it — are charged in bulk as replay. Segments are
//     reached lazily in nesting order, so a segment whose outer product
//     is empty costs nothing, exactly like flat.
//   - emissions: flat emits Π B_i rows into the dedup set, one work
//     unit each; charged in bulk. The set's growth is newD₀ × Π_{i>0} D_i
//     (inner factors are fixed by the time any member completes), the
//     rest are duplicate hits, and the materialization budget is checked
//     against the logical distinct count.
//
// Inner segments commit their distinct sub-rows as soon as they are
// evaluated (identical for every matching member); the outer segment's
// sub-rows are staged and committed only if the member emits — flat
// never surfaces outer bindings of a member whose inner product is
// empty.
func (e *Engine) evalFactMember(ctx *evalCtx, sc *armScratch, acc *factAcc, cq bgp.CQ, segs [][]int) error {
	plan := &acc.plan
	prefix := int64(1) // flat's multiplicity for the current segment: Π B_j, j < i
	var replay int64   // tuple scans flat performs beyond our single real pass
	var staged [][]dict.ID
	for i := range segs {
		if prefix == 0 {
			break
		}
		comp := &acc.comps[i]
		if i > 0 && comp.evaluated {
			replay = satAdd(replay, satMul(prefix, comp.t))
			prefix = satMul(prefix, comp.b)
			continue
		}
		cols := plan.cols[i]
		var sub []dict.ID
		if len(cols) > 0 {
			sub = make([]dict.ID, len(cols))
		}
		var b int64
		emit := func(row []dict.ID) {
			b++
			if len(cols) == 0 {
				return
			}
			if i == 0 {
				staged = append(staged, acc.arena.copy(row))
			} else if !comp.set.has(row) {
				comp.set.add(acc.arena.copy(row))
			}
		}
		t, err := e.evalSegment(ctx, sc, cq, segs[i], cols, sub, emit)
		if err != nil {
			return err
		}
		if i > 0 {
			comp.evaluated, comp.b, comp.t = true, b, t
			if len(cols) == 0 && b > 0 {
				comp.set.add(nil) // a column-less factor is one (empty) sub-row
			}
		}
		replay = satAdd(replay, satMul(prefix-1, t))
		prefix = satMul(prefix, b)
	}
	emitted := prefix
	ctx.tuplesScanned.Add(replay)
	if emitted == 0 {
		return ctx.charge(replay)
	}
	var newOuter int64
	if len(plan.cols[0]) == 0 {
		if acc.comps[0].set.add(nil) {
			newOuter = 1
		}
	} else {
		for _, sub := range staged {
			if acc.comps[0].set.add(sub) {
				newOuter++
			} else {
				acc.arena.release(sub)
			}
		}
	}
	innerD := int64(1)
	for i := 1; i < len(acc.comps); i++ {
		innerD = satMul(innerD, int64(acc.comps[i].set.len()))
	}
	growth := satMul(newOuter, innerD)
	if err := ctx.charge(satAdd(replay, emitted)); err != nil {
		return err
	}
	hits := emitted - growth
	acc.hits += hits
	ctx.rowsDeduped.Add(hits)
	size := satMul(int64(acc.comps[0].set.len()), innerD)
	return ctx.checkRows(clampInt(size))
}

// evalSegment bind-joins one segment's atoms in order over the pinned
// snapshot, exactly like evalMember's recursion (same per-tuple charge
// and tuplesScanned accounting, same shared-scan memo), and calls emit
// with the binding projected on the segment's head columns. It returns
// the tuples scanned; emit observes the binding count. The projected
// row aliases a scratch buffer valid only during the call.
func (e *Engine) evalSegment(ctx *evalCtx, sc *armScratch, cq bgp.CQ, atoms []int, cols []int, sub []dict.ID, emit func([]dict.ID)) (int64, error) {
	bind := sc.bind // empty here; fully unwound before every return below
	for len(sc.newly) < len(atoms) {
		sc.newly = append(sc.newly, nil)
	}
	newlyStack := sc.newly
	var tuples int64
	var rec func(depth int) error
	rec = func(depth int) error {
		if depth == len(atoms) {
			for j, c := range cols {
				sub[j] = bind[cq.Head[c].ID]
			}
			emit(sub)
			return nil
		}
		a := cq.Atoms[atoms[depth]]
		pat := storage.Pattern{}
		term := func(t bgp.Term) dict.ID {
			if !t.Var {
				return t.Const()
			}
			return bind[t.ID] // dict.None when unbound
		}
		pat.S, pat.P, pat.O = term(a.S), term(a.P), term(a.O)

		var failure error
		scan := func(tr storage.Triple) bool {
			tuples++
			ctx.tuplesScanned.Add(1)
			if err := ctx.charge(1); err != nil {
				failure = err
				return false
			}
			vals := [3]dict.ID{tr.S, tr.P, tr.O}
			terms := a.Positions()
			newly := newlyStack[depth][:0]
			ok := true
			for i, t := range terms {
				if !t.Var {
					continue
				}
				if v, bound := bind[t.ID]; bound {
					if v != vals[i] {
						ok = false
						break
					}
				} else {
					bind[t.ID] = vals[i]
					newly = append(newly, t.ID)
				}
			}
			newlyStack[depth] = newly
			if ok {
				if err := rec(depth + 1); err != nil {
					failure = err
				}
			}
			for _, v := range newly {
				delete(bind, v)
			}
			return failure == nil
		}
		ctx.scanPattern(pat, scan)
		return failure
	}
	err := rec(0)
	return tuples, err
}

// buildRelation freezes the accumulator into the arm's relation: a
// factorized relation when at least two segments carry head columns, a
// small flat relation otherwise (the product then has one varying
// factor, so factorizing stores nothing). Expansion of the degenerate
// case is free of charges — every row was admitted above.
func (acc *factAcc) buildRelation(vars []uint32) *Relation {
	logical := int64(1)
	for i := range acc.comps {
		logical = satMul(logical, int64(acc.comps[i].set.len()))
	}
	out := &Relation{Vars: vars}
	if logical == 0 {
		return out
	}
	var comps []component
	for i := range acc.comps {
		if len(acc.plan.cols[i]) == 0 {
			continue
		}
		comps = append(comps, component{cols: acc.plan.cols[i], rows: acc.comps[i].set.rows})
	}
	out.fact = &FRelation{
		template: append([]dict.ID(nil), acc.plan.template...),
		comps:    comps,
		logical:  logical,
	}
	if len(comps) < 2 {
		out.Materialize()
		out.fact = nil
	}
	return out
}

// expandInto expands the accumulator into a flat relation seeding a
// dedup set — the fallback when a member breaks the factorization
// pattern. No charges: every expanded row was already charged as a
// fresh admission when its member was folded in.
func (acc *factAcc) expandInto(out *Relation, dedup *dedupSet) {
	rel := acc.buildRelation(out.Vars)
	for _, row := range rel.Materialize() {
		dedup.seed(row)
		out.Rows = append(out.Rows, row)
	}
}

// projectDistinctFactorized is projectDistinct over a factorized input,
// without expanding it: template positions and dropped components fall
// away, each kept component's sub-rows are projected and deduplicated
// independently (flat first-occurrence dedup of a product is the
// product of the per-factor dedups), and the charges are the bulk
// equivalents of the flat loop — one work unit per logical input row,
// the duplicate count, and the materialization check on the logical
// output count.
func projectDistinctFactorized(ctx *evalCtx, sp *trace.Span, cur *Relation, cols []int, head []uint32) (*Relation, error) {
	f := cur.fact
	owner := make([]int, len(cur.Vars))
	sub := make([]int, len(cur.Vars))
	for i := range owner {
		owner[i] = -1
	}
	for ci := range f.comps {
		for j, c := range f.comps[ci].cols {
			owner[c], sub[c] = ci, j
		}
	}
	template := make([]dict.ID, len(head))
	sel := make([][]int, len(f.comps))  // per component: source sub-row indices
	outc := make([][]int, len(f.comps)) // per component: output positions
	for outPos, c := range cols {
		if owner[c] < 0 {
			template[outPos] = f.template[c]
			continue
		}
		sel[owner[c]] = append(sel[owner[c]], sub[c])
		outc[owner[c]] = append(outc[owner[c]], outPos)
	}

	logical := f.logical
	if logical == 0 {
		return &Relation{Vars: head}, nil
	}
	var comps []component
	var arena rowArena
	distinct := int64(1)
	for ci := range f.comps {
		if len(sel[ci]) == 0 {
			continue // multiplicity-only component: projected away
		}
		var set rowSet
		for _, row := range f.comps[ci].rows {
			proj := arena.alloc(len(sel[ci]))
			for k, s := range sel[ci] {
				proj[k] = row[s]
			}
			if !set.add(proj) {
				arena.release(proj)
			}
		}
		comps = append(comps, component{cols: outc[ci], rows: set.rows})
		distinct = satMul(distinct, int64(set.len()))
	}
	if err := ctx.charge(logical); err != nil {
		return nil, err
	}
	ctx.rowsDeduped.Add(logical - distinct)
	if err := ctx.checkRows(clampInt(distinct)); err != nil {
		return nil, err
	}
	out := &Relation{Vars: head, fact: &FRelation{
		template: template,
		comps:    comps,
		logical:  distinct,
	}}
	if len(comps) < 2 {
		out.Materialize()
		out.fact = nil
	}
	if sp != nil {
		sp.SetInt("rows_out", int64(out.Len()))
		sp.SetInt("dedup_hits", logical-distinct)
		sp.SetInt("arena_chunks", int64(arena.chunks))
		if ff := out.fact; ff != nil {
			sp.SetInt("factorized", 1)
			sp.SetInt("components", int64(ff.Components()))
			sp.SetInt("stored_rows", ff.StoredRows())
			sp.SetInt("logical_rows", ff.LogicalRows())
		}
	}
	return out, nil
}

// satAdd adds two non-negative counts, saturating at MaxInt64.
func satAdd(a, b int64) int64 {
	if a > math.MaxInt64-b {
		return math.MaxInt64
	}
	return a + b
}
