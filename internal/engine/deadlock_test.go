package engine_test

import (
	"sync"
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/dict"
	"repro/internal/engine"
	"repro/internal/schema"
	"repro/internal/stats"
	"repro/internal/storage"
)

// Before snapshot pinning, the recursive bind-join nested store read
// locks: the depth-1 scan re-entered Store.Scan inside the depth-0 scan
// callback, and a writer queued between the two acquisitions deadlocked
// both (the documented RWMutex nesting hazard). This regression test
// races a hot mutator against evaluations whose join has at least two
// levels, under a watchdog: on the old nested-RLock path it hangs and
// the watchdog fires; with evaluations pinned to a snapshot it finishes
// (and -race confirms the snapshot view is data-race-free under
// concurrent Add/Remove).
func TestNestedScansSurviveConcurrentMutator(t *testing.T) {
	const (
		typeID   = dict.ID(1)
		worksFor = dict.ID(2)
		profID   = dict.ID(3)
	)
	b := storage.NewBuilder()
	for i := 0; i < 200; i++ {
		person := dict.ID(100 + i)
		dept := dict.ID(1000 + i%10)
		b.Add(storage.Triple{S: person, P: worksFor, O: dept})
		if i%2 == 0 {
			b.Add(storage.Triple{S: person, P: typeID, O: profID})
		}
	}
	raw := b.Build()
	st := stats.Collect(raw, schema.Vocab{})
	q := bgp.CQ{
		Head: []bgp.Term{bgp.V(1), bgp.V(2)},
		Atoms: []bgp.Atom{
			{S: bgp.V(1), P: bgp.C(worksFor), O: bgp.V(2)},
			{S: bgp.V(1), P: bgp.C(typeID), O: bgp.C(profID)},
		},
	}

	for _, par := range []int{1, 4} {
		eng := engine.New(raw, st, engine.Native).WithParallelism(par)

		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			synthetic := storage.Triple{S: 9999, P: worksFor, O: 8888}
			real := storage.Triple{S: 100, P: typeID, O: profID}
			for {
				select {
				case <-stop:
					return
				default:
				}
				raw.Add(synthetic)
				raw.Remove(synthetic)
				raw.Remove(real)
				raw.Add(real)
			}
		}()

		done := make(chan error, 1)
		go func() {
			for i := 0; i < 100; i++ {
				if _, _, err := eng.EvalCQ(q); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()

		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("par=%d: evaluation under mutation failed: %v", par, err)
			}
		case <-time.After(60 * time.Second):
			t.Fatalf("par=%d: deadlock: bind-join scans starved by a concurrent writer", par)
		}
		close(stop)
		wg.Wait()
	}
}
