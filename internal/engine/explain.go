package engine

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bgp"
	"repro/internal/dict"
)

// ExplainArms renders a human-readable description of the physical plan
// EvalArms would run for the given head and arms: per-arm member counts,
// scan leaves and estimated cardinalities, the sample bind-join order of
// each arm's first member, the arm-join order and algorithm, and the
// final projection — the engine's answer to an RDBMS EXPLAIN. name, if
// non-nil, renders dictionary constants (callers holding the dictionary
// pass a decoder; the engine itself only knows IDs).
func (e *Engine) ExplainArms(head []uint32, arms []ArmSource, name func(dict.ID) string) string {
	if name == nil {
		name = func(id dict.ID) string { return fmt.Sprintf("#%d", id) }
	}
	renderAtom := func(a bgp.Atom) string {
		term := func(t bgp.Term) string {
			if t.Var {
				return fmt.Sprintf("?v%d", t.ID)
			}
			return name(t.Const())
		}
		return term(a.S) + " " + term(a.P) + " " + term(a.O)
	}
	return e.explainArms(head, arms, renderAtom)
}

func (e *Engine) explainArms(head []uint32, arms []ArmSource, renderAtom func(bgp.Atom) string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "JUCQ plan (profile %s, %s arm joins)\n", e.prof.Name, e.prof.ArmJoin)

	var leaves int64
	for _, a := range arms {
		leaves += a.Leaves
	}
	if e.prof.MaxPlanLeaves > 0 && leaves > e.prof.MaxPlanLeaves {
		fmt.Fprintf(&b, "  REJECTED: %d scan leaves exceed the profile limit of %d\n",
			leaves, e.prof.MaxPlanLeaves)
		return b.String()
	}

	type armInfo struct {
		idx  int
		card float64
	}
	infos := make([]armInfo, len(arms))
	for i, arm := range arms {
		var card float64
		var sample bgp.CQ
		first := true
		arm.Each(func(cq bgp.CQ) bool {
			if first {
				sample = cq
				first = false
			}
			_, c := e.estimateMember(cq)
			card += c
			return true
		})
		infos[i] = armInfo{idx: i, card: card}

		fmt.Fprintf(&b, "  arm %d: vars %s, %d member CQs, %d scan leaves, est. %.0f rows\n",
			i+1, varList(arm.Vars), arm.NumCQs, arm.Leaves, card)
		if !first {
			order := e.joinOrder(sample)
			parts := make([]string, len(order))
			for j, idx := range order {
				parts[j] = renderAtom(sample.Atoms[idx])
			}
			fmt.Fprintf(&b, "    sample member bind-join order: %s\n", strings.Join(parts, "  ->  "))
		}
	}

	if len(arms) > 1 {
		// Mirror EvalArms's smallest-first, connected-next ordering,
		// using estimated instead of actual cardinalities.
		order := make([]int, len(infos))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, c int) bool { return infos[order[a]].card < infos[order[c]].card })
		used := map[int]bool{order[0]: true}
		joinSeq := []string{fmt.Sprintf("arm %d", order[0]+1)}
		curVars := arms[order[0]].Vars
		for len(used) < len(arms) {
			next := -1
			for _, i := range order {
				if !used[i] {
					if sharesVars(curVars, arms[i].Vars) {
						next = i
						break
					}
					if next == -1 {
						next = i
					}
				}
			}
			used[next] = true
			curVars = append(curVars, arms[next].Vars...)
			joinSeq = append(joinSeq, fmt.Sprintf("arm %d", next+1))
		}
		fmt.Fprintf(&b, "  arm join order (estimated): %s\n", strings.Join(joinSeq, " ⨝ "))
		if e.prof.ArmJoin == NestedLoopJoin {
			fmt.Fprintf(&b, "  note: nested-loop arm joins; cost is quadratic in arm sizes\n")
		}
	}
	fmt.Fprintf(&b, "  project on %s, eliminate duplicates\n", varList(head))
	fmt.Fprintf(&b, "  estimated cost: %.4g\n", e.EstimateArms(arms))
	return b.String()
}

func varList(vars []uint32) string {
	parts := make([]string, len(vars))
	for i, v := range vars {
		parts[i] = fmt.Sprintf("?v%d", v)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
