package engine

import (
	"sort"

	"repro/internal/dict"
	"repro/internal/trace"
)

// joinRelations joins two materialized relations on their shared
// variables using the requested algorithm. When the relations share no
// variable the result is the cartesian product (covers are built so this
// does not happen for cover-based reformulations, but the operator is
// total); cartesian products are where factorization pays, so that case
// is routed to cartesianJoin, which composes factorized inputs without
// expanding them. Connected joins expand factorized inputs first — their
// expansion was already charged when the factorized relation was built.
// The output schema is left's columns followed by right-only columns.
func joinRelations(ctx *evalCtx, left, right *Relation, algo JoinAlgorithm) (*Relation, error) {
	sp := ctx.span.Child("join")
	if sp != nil {
		sp.SetStr("algo", algo.String())
		sp.SetInt("left_rows", int64(left.Len()))
		sp.SetInt("right_rows", int64(right.Len()))
		defer sp.End()
	}
	lpos := left.colIndex()
	var lcols, rcols []int
	for i, v := range right.Vars {
		if c, ok := lpos[v]; ok {
			lcols = append(lcols, c)
			rcols = append(rcols, i)
		}
	}
	outVars := append([]uint32(nil), left.Vars...)
	var rightOnly []int
	for i, v := range right.Vars {
		if _, shared := lpos[v]; !shared {
			outVars = append(outVars, v)
			rightOnly = append(rightOnly, i)
		}
	}
	if len(lcols) == 0 {
		return cartesianJoin(ctx, sp, left, right, outVars, rightOnly)
	}
	left.Materialize()
	right.Materialize()
	out := &Relation{Vars: outVars}
	var arena rowArena
	emit := func(lr, rr []dict.ID) error {
		row := arena.alloc(len(outVars))
		n := copy(row, lr)
		for _, i := range rightOnly {
			row[n] = rr[i]
			n++
		}
		out.Rows = append(out.Rows, row)
		ctx.rowsJoined.Add(1)
		if err := ctx.charge(1); err != nil {
			return err
		}
		return ctx.checkRows(len(out.Rows))
	}

	var err error
	switch algo {
	case HashJoin:
		err = hashJoin(ctx, left, right, lcols, rcols, emit)
	case MergeJoin:
		err = mergeJoin(ctx, left, right, lcols, rcols, emit)
	case NestedLoopJoin:
		err = nestedLoopJoin(ctx, left, right, lcols, rcols, emit)
	default:
		err = hashJoin(ctx, left, right, lcols, rcols, emit)
	}
	if err != nil {
		return nil, err
	}
	if sp != nil {
		sp.SetInt("rows_out", int64(out.Len()))
		sp.SetInt("arena_chunks", int64(arena.chunks))
	}
	return out, nil
}

// cartesianJoin is the no-shared-variable case of joinRelations. The
// row order and accounting are canonical across join algorithms — a
// left-major nested loop charging one comparison and one emission per
// output pair — so that the factorized path can mirror the flat path
// exactly. With factorization on, the product is not expanded at all:
// the inputs' components are concatenated (a flat input becomes one
// component) and the pairing charges are applied in bulk against the
// same budgets the flat loop would hit, truncated at the
// materialization limit the flat loop would have stopped at.
func cartesianJoin(ctx *evalCtx, sp *trace.Span, left, right *Relation, outVars []uint32, rightOnly []int) (*Relation, error) {
	if sp != nil {
		sp.SetStr("algo", "cartesian")
	}
	if !ctx.fact {
		left.Materialize()
		right.Materialize()
		out := &Relation{Vars: outVars}
		var arena rowArena
		for _, lr := range left.Rows {
			for _, rr := range right.Rows {
				if err := ctx.charge(1); err != nil {
					return nil, err
				}
				row := arena.alloc(len(outVars))
				n := copy(row, lr)
				for _, i := range rightOnly {
					row[n] = rr[i]
					n++
				}
				out.Rows = append(out.Rows, row)
				ctx.rowsJoined.Add(1)
				if err := ctx.charge(1); err != nil {
					return nil, err
				}
				if err := ctx.checkRows(len(out.Rows)); err != nil {
					return nil, err
				}
			}
		}
		if sp != nil {
			sp.SetInt("rows_out", int64(out.Len()))
			sp.SetInt("arena_chunks", int64(arena.chunks))
		}
		return out, nil
	}

	logical := satMul(int64(left.Len()), int64(right.Len()))
	if logical == 0 {
		return &Relation{Vars: outVars}, nil
	}
	// Bulk-apply the flat loop's charges: 2 work per pair (comparison +
	// emission) and one joined row each. If the product overruns the
	// materialization budget, the flat loop would have stopped at row
	// mb+1 having charged exactly that many pairs.
	mb := int64(ctx.prof.MaxMaterializedRows)
	if mb > 0 && logical > mb {
		ctx.rowsJoined.Add(mb + 1)
		if err := ctx.charge(2 * (mb + 1)); err != nil {
			return nil, err
		}
		return nil, ctx.checkRows(int(mb + 1))
	}
	ctx.rowsJoined.Add(logical)
	if err := ctx.charge(2 * logical); err != nil {
		return nil, err
	}
	template := make([]dict.ID, len(outVars))
	comps := appendComponents(nil, template, left, 0)
	comps = appendComponents(comps, template, right, left.Arity())
	out := &Relation{Vars: outVars, fact: &FRelation{
		template: template,
		comps:    comps,
		logical:  logical,
	}}
	if len(comps) < 2 {
		// Degenerate product (a zero-arity side): nothing to factorize.
		out.Materialize()
		out.fact = nil
	}
	if sp != nil {
		sp.SetInt("rows_out", int64(out.Len()))
		if f := out.fact; f != nil {
			sp.SetInt("factorized", 1)
			sp.SetInt("components", int64(f.Components()))
			sp.SetInt("stored_rows", f.StoredRows())
			sp.SetInt("logical_rows", f.LogicalRows())
		}
	}
	return out, nil
}

// appendComponents appends r's column groups shifted to start at offset:
// a factorized input contributes its components (and its constant
// template positions), a flat input becomes a single component sharing
// the flat rows. Zero-arity inputs contribute nothing (their single
// empty row is multiplicity only, already folded into the product
// cardinality).
func appendComponents(comps []component, template []dict.ID, r *Relation, offset int) []component {
	if f := r.fact; f != nil && r.Rows == nil {
		for _, c := range f.comps {
			cols := make([]int, len(c.cols))
			for i, col := range c.cols {
				cols[i] = col + offset
			}
			comps = append(comps, component{cols: cols, rows: c.rows})
		}
		copy(template[offset:], f.template)
		return comps
	}
	if r.Arity() == 0 {
		return comps
	}
	cols := make([]int, r.Arity())
	for i := range cols {
		cols[i] = offset + i
	}
	return append(comps, component{cols: cols, rows: r.Rows})
}

// hashJoin builds a hash table on the smaller input and probes with the
// larger; work is linear in both inputs plus the output.
func hashJoin(ctx *evalCtx, left, right *Relation, lcols, rcols []int, emit func(lr, rr []dict.ID) error) error {
	build, probe := left, right
	bcols, pcols := lcols, rcols
	swapped := false
	if right.Len() < left.Len() {
		build, probe = right, left
		bcols, pcols = rcols, lcols
		swapped = true
	}
	var table joinTable
	table.cols = bcols
	for _, row := range build.Rows {
		if err := ctx.charge(1); err != nil {
			return err
		}
		table.add(row)
	}
	for _, prow := range probe.Rows {
		if err := ctx.charge(1); err != nil {
			return err
		}
		for _, brow := range table.lookup(prow, pcols) {
			// emit expects (left row, right row); when the build side is
			// the right relation, the probe rows are the left ones.
			lr, rr := brow, prow
			if swapped {
				lr, rr = prow, brow
			}
			if err := emit(lr, rr); err != nil {
				return err
			}
		}
	}
	return nil
}

// joinTable is hashJoin's build table: an open-addressing multimap from
// join-key values to row groups, keyed by the uint64 hash of the key
// columns and compared against each group's first row — no packed
// string keys, so building the table allocates only the group slices.
type joinTable struct {
	tbl    []uint32 // 1-based indices into groups; 0 = empty
	groups []joinGroup
	cols   []int // build-side key columns
}

type joinGroup struct {
	rows [][]dict.ID
}

// add appends row to its key group, creating the group if absent.
func (t *joinTable) add(row []dict.ID) {
	if t.tbl == nil {
		t.tbl = make([]uint32, rowSetMinSlots)
	} else if (len(t.groups)+1)*8 > len(t.tbl)*7 {
		old := t.tbl
		t.tbl = make([]uint32, len(old)*2)
		for _, ref := range old {
			if ref == 0 {
				continue
			}
			mask := uint64(len(t.tbl) - 1)
			i := hashCols(t.groups[ref-1].rows[0], t.cols) & mask
			for t.tbl[i] != 0 {
				i = (i + 1) & mask
			}
			t.tbl[i] = ref
		}
	}
	mask := uint64(len(t.tbl) - 1)
	i := hashCols(row, t.cols) & mask
	for {
		ref := t.tbl[i]
		if ref == 0 {
			t.groups = append(t.groups, joinGroup{rows: [][]dict.ID{row}})
			t.tbl[i] = uint32(len(t.groups))
			return
		}
		g := &t.groups[ref-1]
		if keyEqual(g.rows[0], t.cols, row, t.cols) {
			g.rows = append(g.rows, row)
			return
		}
		i = (i + 1) & mask
	}
}

// lookup returns the group of build rows whose key columns equal row's
// probe columns, or nil.
func (t *joinTable) lookup(row []dict.ID, pcols []int) [][]dict.ID {
	if t.tbl == nil {
		return nil
	}
	mask := uint64(len(t.tbl) - 1)
	i := hashCols(row, pcols) & mask
	for {
		ref := t.tbl[i]
		if ref == 0 {
			return nil
		}
		g := &t.groups[ref-1]
		if keyEqual(g.rows[0], t.cols, row, pcols) {
			return g.rows
		}
		i = (i + 1) & mask
	}
}

// keyEqual compares a's acols values to b's bcols values positionally.
func keyEqual(a []dict.ID, acols []int, b []dict.ID, bcols []int) bool {
	for k := range acols {
		if a[acols[k]] != b[bcols[k]] {
			return false
		}
	}
	return true
}

// mergeJoin sorts both inputs on the join key and merges runs of equal
// keys; work is n·log n for the sorts plus the merge and output.
func mergeJoin(ctx *evalCtx, left, right *Relation, lcols, rcols []int, emit func(lr, rr []dict.ID) error) error {
	lrows := append([][]dict.ID(nil), left.Rows...)
	rrows := append([][]dict.ID(nil), right.Rows...)
	// Charge the sort effort up front: n * ceil(log2 n) comparisons.
	if err := ctx.charge(sortCost(len(lrows)) + sortCost(len(rrows))); err != nil {
		return err
	}
	sort.Slice(lrows, func(i, j int) bool { return lessOn(lrows[i], lrows[j], lcols) })
	sort.Slice(rrows, func(i, j int) bool { return lessOn(rrows[i], rrows[j], rcols) })

	i, j := 0, 0
	for i < len(lrows) && j < len(rrows) {
		if err := ctx.charge(1); err != nil {
			return err
		}
		c := compareOn(lrows[i], lcols, rrows[j], rcols)
		switch {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			// Find the equal-key runs on both sides.
			i2 := i
			for i2 < len(lrows) && compareOn(lrows[i2], lcols, rrows[j], rcols) == 0 {
				i2++
			}
			j2 := j
			for j2 < len(rrows) && compareOn(lrows[i], lcols, rrows[j2], rcols) == 0 {
				j2++
			}
			for a := i; a < i2; a++ {
				for b := j; b < j2; b++ {
					if err := emit(lrows[a], rrows[b]); err != nil {
						return err
					}
				}
			}
			i, j = i2, j2
		}
	}
	return nil
}

// nestedLoopJoin compares every pair of rows; work is |left|·|right| —
// the behaviour of an engine without hash joins on unindexed
// intermediates, and the reason SCQ reformulations collapse on the
// MySQL-like profile.
func nestedLoopJoin(ctx *evalCtx, left, right *Relation, lcols, rcols []int, emit func(lr, rr []dict.ID) error) error {
	for _, lr := range left.Rows {
		for _, rr := range right.Rows {
			if err := ctx.charge(1); err != nil {
				return err
			}
			match := true
			for k := range lcols {
				if lr[lcols[k]] != rr[rcols[k]] {
					match = false
					break
				}
			}
			if match {
				if err := emit(lr, rr); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func lessOn(a, b []dict.ID, cols []int) bool {
	for _, c := range cols {
		if a[c] != b[c] {
			return a[c] < b[c]
		}
	}
	return false
}

func compareOn(a []dict.ID, acols []int, b []dict.ID, bcols []int) int {
	for k := range acols {
		av, bv := a[acols[k]], b[bcols[k]]
		if av != bv {
			if av < bv {
				return -1
			}
			return 1
		}
	}
	return 0
}

// sortCost approximates n·ceil(log2 n) comparisons.
func sortCost(n int) int64 {
	if n < 2 {
		return int64(n)
	}
	log := 0
	for m := n - 1; m > 0; m >>= 1 {
		log++
	}
	return int64(n) * int64(log)
}
