package engine

import (
	"sort"

	"repro/internal/dict"
)

// joinRelations joins two materialized relations on their shared
// variables using the requested algorithm. When the relations share no
// variable the result is the cartesian product (covers are built so this
// does not happen for cover-based reformulations, but the operator is
// total). The output schema is left's columns followed by right-only
// columns.
func joinRelations(ctx *evalCtx, left, right *Relation, algo JoinAlgorithm) (*Relation, error) {
	sp := ctx.span.Child("join")
	if sp != nil {
		sp.SetStr("algo", algo.String())
		sp.SetInt("left_rows", int64(left.Len()))
		sp.SetInt("right_rows", int64(right.Len()))
		defer sp.End()
	}
	lpos := left.colIndex()
	var lcols, rcols []int
	for i, v := range right.Vars {
		if c, ok := lpos[v]; ok {
			lcols = append(lcols, c)
			rcols = append(rcols, i)
		}
	}
	outVars := append([]uint32(nil), left.Vars...)
	var rightOnly []int
	for i, v := range right.Vars {
		if _, shared := lpos[v]; !shared {
			outVars = append(outVars, v)
			rightOnly = append(rightOnly, i)
		}
	}
	out := &Relation{Vars: outVars}
	var arena rowArena
	emit := func(lr, rr []dict.ID) error {
		row := arena.alloc(len(outVars))
		n := copy(row, lr)
		for _, i := range rightOnly {
			row[n] = rr[i]
			n++
		}
		out.Rows = append(out.Rows, row)
		ctx.rowsJoined.Add(1)
		if err := ctx.charge(1); err != nil {
			return err
		}
		return ctx.checkRows(len(out.Rows))
	}

	var err error
	switch algo {
	case HashJoin:
		err = hashJoin(ctx, left, right, lcols, rcols, emit)
	case MergeJoin:
		err = mergeJoin(ctx, left, right, lcols, rcols, emit)
	case NestedLoopJoin:
		err = nestedLoopJoin(ctx, left, right, lcols, rcols, emit)
	default:
		err = hashJoin(ctx, left, right, lcols, rcols, emit)
	}
	if err != nil {
		return nil, err
	}
	if sp != nil {
		sp.SetInt("rows_out", int64(out.Len()))
		sp.SetInt("arena_chunks", int64(arena.chunks))
	}
	return out, nil
}

// hashJoin builds a hash table on the smaller input and probes with the
// larger; work is linear in both inputs plus the output.
func hashJoin(ctx *evalCtx, left, right *Relation, lcols, rcols []int, emit func(lr, rr []dict.ID) error) error {
	build, probe := left, right
	bcols, pcols := lcols, rcols
	swapped := false
	if right.Len() < left.Len() {
		build, probe = right, left
		bcols, pcols = rcols, lcols
		swapped = true
	}
	table := make(map[string][][]dict.ID, build.Len())
	for _, row := range build.Rows {
		if err := ctx.charge(1); err != nil {
			return err
		}
		k := keyOf(row, bcols)
		table[k] = append(table[k], row)
	}
	for _, prow := range probe.Rows {
		if err := ctx.charge(1); err != nil {
			return err
		}
		for _, brow := range table[keyOf(prow, pcols)] {
			// emit expects (left row, right row); when the build side is
			// the right relation, the probe rows are the left ones.
			lr, rr := brow, prow
			if swapped {
				lr, rr = prow, brow
			}
			if err := emit(lr, rr); err != nil {
				return err
			}
		}
	}
	return nil
}

// mergeJoin sorts both inputs on the join key and merges runs of equal
// keys; work is n·log n for the sorts plus the merge and output.
func mergeJoin(ctx *evalCtx, left, right *Relation, lcols, rcols []int, emit func(lr, rr []dict.ID) error) error {
	lrows := append([][]dict.ID(nil), left.Rows...)
	rrows := append([][]dict.ID(nil), right.Rows...)
	// Charge the sort effort up front: n * ceil(log2 n) comparisons.
	if err := ctx.charge(sortCost(len(lrows)) + sortCost(len(rrows))); err != nil {
		return err
	}
	sort.Slice(lrows, func(i, j int) bool { return lessOn(lrows[i], lrows[j], lcols) })
	sort.Slice(rrows, func(i, j int) bool { return lessOn(rrows[i], rrows[j], rcols) })

	i, j := 0, 0
	for i < len(lrows) && j < len(rrows) {
		if err := ctx.charge(1); err != nil {
			return err
		}
		c := compareOn(lrows[i], lcols, rrows[j], rcols)
		switch {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			// Find the equal-key runs on both sides.
			i2 := i
			for i2 < len(lrows) && compareOn(lrows[i2], lcols, rrows[j], rcols) == 0 {
				i2++
			}
			j2 := j
			for j2 < len(rrows) && compareOn(lrows[i], lcols, rrows[j2], rcols) == 0 {
				j2++
			}
			for a := i; a < i2; a++ {
				for b := j; b < j2; b++ {
					if err := emit(lrows[a], rrows[b]); err != nil {
						return err
					}
				}
			}
			i, j = i2, j2
		}
	}
	return nil
}

// nestedLoopJoin compares every pair of rows; work is |left|·|right| —
// the behaviour of an engine without hash joins on unindexed
// intermediates, and the reason SCQ reformulations collapse on the
// MySQL-like profile.
func nestedLoopJoin(ctx *evalCtx, left, right *Relation, lcols, rcols []int, emit func(lr, rr []dict.ID) error) error {
	for _, lr := range left.Rows {
		for _, rr := range right.Rows {
			if err := ctx.charge(1); err != nil {
				return err
			}
			match := true
			for k := range lcols {
				if lr[lcols[k]] != rr[rcols[k]] {
					match = false
					break
				}
			}
			if match {
				if err := emit(lr, rr); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func lessOn(a, b []dict.ID, cols []int) bool {
	for _, c := range cols {
		if a[c] != b[c] {
			return a[c] < b[c]
		}
	}
	return false
}

func compareOn(a []dict.ID, acols []int, b []dict.ID, bcols []int) int {
	for k := range acols {
		av, bv := a[acols[k]], b[bcols[k]]
		if av != bv {
			if av < bv {
				return -1
			}
			return 1
		}
	}
	return 0
}

// sortCost approximates n·ceil(log2 n) comparisons.
func sortCost(n int) int64 {
	if n < 2 {
		return int64(n)
	}
	log := 0
	for m := n - 1; m > 0; m >>= 1 {
		log++
	}
	return int64(n) * int64(log)
}
