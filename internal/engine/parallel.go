package engine

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/bgp"
	"repro/internal/dict"
	"repro/internal/trace"
)

// This file is the engine's parallelism layer. Two independent axes of
// the JUCQ shape are exploited:
//
//   - arms of one JUCQ are independent subqueries, evaluated concurrently
//     (evalAllArms);
//   - member CQs of one UCQ arm are independent scans under set
//     semantics, sharded over a worker pool (evalArmSharded).
//
// Parallel evaluation returns byte-identical relations to sequential
// evaluation: each shard deduplicates locally in member order, and the
// shard outputs are re-deduplicated in global member order, so every row
// appears exactly where the first member producing it would have emitted
// it sequentially. Budgets live in shared atomics (see evalCtx), so the
// typed budget errors still fire on the *total* spent; on the success
// path the accumulated metrics are identical to the sequential ones
// (shard-local sets charge exactly the rows sequential dedup charges, and
// the merge charges nothing — see dedupSet.addMerged).

// memberBatch is the number of member CQs dispatched to a shard at once;
// batches round-robin over the shards so the merge order is a function of
// the member index alone.
const memberBatch = 32

// parallelRowThreshold is the input size below which the final projection
// stays sequential — goroutine handoff costs more than the projection.
const parallelRowThreshold = 4096

// evalAllArms materializes every arm. Arms run concurrently when the
// context has more than one worker; the first failure in arm order is
// reported, which is the failure sequential evaluation surfaces (arms
// before it succeeded, so sequential evaluation would have reached it).
func (e *Engine) evalAllArms(ctx *evalCtx, arms []ArmSource) ([]*Relation, error) {
	// armSpan names the arm's span eagerly: Child and Sprintf run only on
	// a live trace, so the disabled path stays allocation-free.
	armSpan := func(i int) *trace.Span {
		if ctx.span == nil {
			return nil
		}
		return ctx.span.Child(fmt.Sprintf("arm[%d]", i))
	}
	rels := make([]*Relation, len(arms))
	if ctx.par <= 1 || len(arms) < 2 {
		for i, a := range arms {
			rel, err := e.evalArm(ctx, armSpan(i), a)
			if err != nil {
				return nil, err
			}
			rels[i] = rel
			if e.armObs != nil {
				e.armObs(i, int64(rel.Len()))
			}
		}
		return rels, nil
	}
	// Create the arm spans before dispatching so their order under the
	// parent is the arm order, independent of goroutine scheduling.
	spans := make([]*trace.Span, len(arms))
	for i := range arms {
		spans[i] = armSpan(i)
	}
	errs := make([]error, len(arms))
	var wg sync.WaitGroup
	for i := range arms {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rels[i], errs[i] = e.evalArm(ctx, spans[i], arms[i])
			if e.armObs != nil && errs[i] == nil {
				e.armObs(i, int64(rels[i].Len()))
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rels, nil
}

// shardResult is one shard's share of an arm evaluation: the locally
// fresh rows of every batch the shard processed, in dispatch order.
type shardResult struct {
	batches  [][][]dict.ID // batches[k] is the rows of global batch k*shards+s
	err      error
	errBatch int // global index of the batch err occurred in
}

// evalArmSharded evaluates one arm's member CQs on ctx.par workers. The
// producer streams members into fixed-size batches, round-robin over the
// shards; every shard bind-joins its members against its own dedup set
// and buffers the locally fresh rows per batch; the merge then walks the
// batches in global order through one final set. See the file comment for
// why the result (and the success-path metrics) are exactly sequential.
func (e *Engine) evalArmSharded(ctx *evalCtx, sp *trace.Span, arm ArmSource) (*Relation, error) {
	shards := ctx.par
	type batch struct {
		idx int
		cqs []bgp.CQ
	}
	chans := make([]chan batch, shards)
	results := make([]*shardResult, shards)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		chans[s] = make(chan batch, 2)
		res := &shardResult{errBatch: -1}
		results[s] = res
		var shardSp *trace.Span
		if sp != nil {
			shardSp = sp.Child(fmt.Sprintf("shard[%d]", s))
		}
		wg.Add(1)
		go func(in chan batch, res *shardResult, shardSp *trace.Span) {
			defer wg.Done()
			dedup := newDedupSet(ctx)
			sc := newArmScratch()
			defer sc.release()
			var members, rows int64
			for b := range in {
				if res.err != nil {
					continue // drain after a failure
				}
				out := &Relation{Vars: arm.Vars}
				// Each batch is planned as one window: merged scans form
				// within it, and the scan memo is shared with every other
				// shard through the evaluation context.
				n, err := e.evalMemberRun(ctx, sc, b.cqs, dedup, out)
				members += int64(n)
				if err != nil {
					res.err, res.errBatch = err, b.idx
					failed.Store(true)
					continue
				}
				rows += int64(len(out.Rows))
				res.batches = append(res.batches, out.Rows)
			}
			if shardSp != nil {
				shardSp.SetInt("members", members)
				shardSp.SetInt("rows_out", rows)
				shardSp.SetInt("dedup_hits", dedup.hits)
				shardSp.SetInt("arena_chunks", int64(dedup.arena.chunks))
				shardSp.End()
			}
		}(chans[s], res, shardSp)
	}

	// Producer: the member stream is chunked into batches dispatched
	// round-robin, so batch k belongs to shard k mod shards.
	nextBatch := 0
	pending := make([]bgp.CQ, 0, memberBatch)
	flush := func() {
		chans[nextBatch%shards] <- batch{idx: nextBatch, cqs: pending}
		nextBatch++
		pending = make([]bgp.CQ, 0, memberBatch)
	}
	arm.Each(func(cq bgp.CQ) bool {
		if failed.Load() {
			return false
		}
		pending = append(pending, cq)
		if len(pending) == memberBatch {
			flush()
		}
		return true
	})
	if len(pending) > 0 {
		flush()
	}
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()

	// Report the failure of the earliest batch in global member order:
	// the failure whose members sequential evaluation reaches first.
	var firstErr error
	firstBatch := -1
	for _, res := range results {
		if res.err != nil && (firstBatch == -1 || res.errBatch < firstBatch) {
			firstErr, firstBatch = res.err, res.errBatch
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}

	// Deterministic merge: batches in global order, one shared set.
	var mergeSp *trace.Span
	if sp != nil {
		mergeSp = sp.Child("merge")
		mergeSp.SetInt("batches", int64(nextBatch))
		defer mergeSp.End()
	}
	out := &Relation{Vars: arm.Vars}
	merge := newDedupSet(ctx)
	for b := 0; b < nextBatch; b++ {
		for _, row := range results[b%shards].batches[b/shards] {
			fresh, err := merge.addMerged(row)
			if err != nil {
				return nil, err
			}
			if fresh {
				out.Rows = append(out.Rows, row)
			}
		}
	}
	if mergeSp != nil {
		mergeSp.SetInt("rows_out", int64(out.Len()))
		mergeSp.SetInt("dedup_hits", merge.hits)
	}
	return out, nil
}

// projectDistinctParallel is projectDistinct on ctx.par workers: the
// input rows are split into contiguous chunks, projected and deduplicated
// locally, and the chunk outputs re-deduplicated in chunk order — the
// same local-set-then-ordered-merge scheme as evalArmSharded, with the
// same byte-identical-output and identical-metrics guarantees.
func projectDistinctParallel(ctx *evalCtx, sp *trace.Span, cur *Relation, cols []int, head []uint32) (*Relation, error) {
	workers := ctx.par
	chunk := (len(cur.Rows) + workers - 1) / workers
	type chunkResult struct {
		rows [][]dict.ID
		err  error
	}
	results := make([]chunkResult, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if lo >= len(cur.Rows) {
			break
		}
		if hi > len(cur.Rows) {
			hi = len(cur.Rows)
		}
		var chunkSp *trace.Span
		if sp != nil {
			chunkSp = sp.Child(fmt.Sprintf("chunk[%d]", w))
			chunkSp.SetInt("rows_in", int64(hi-lo))
		}
		wg.Add(1)
		go func(w, lo, hi int, chunkSp *trace.Span) {
			defer wg.Done()
			dedup := newDedupSet(ctx)
			var arena rowArena
			var rows [][]dict.ID
			defer func() {
				if chunkSp != nil {
					chunkSp.SetInt("rows_out", int64(len(rows)))
					chunkSp.SetInt("dedup_hits", dedup.hits)
					chunkSp.SetInt("arena_chunks", int64(arena.chunks))
					chunkSp.End()
				}
			}()
			for _, row := range cur.Rows[lo:hi] {
				proj := arena.alloc(len(cols))
				for i, c := range cols {
					proj[i] = row[c]
				}
				fresh, err := dedup.addOwned(proj)
				if err != nil {
					results[w].err = err
					return
				}
				if fresh {
					rows = append(rows, proj)
				} else {
					arena.release(proj)
				}
			}
			results[w].rows = rows
		}(w, lo, hi, chunkSp)
	}
	wg.Wait()
	for _, res := range results {
		if res.err != nil {
			return nil, res.err
		}
	}
	out := &Relation{Vars: head}
	merge := newDedupSet(ctx)
	for _, res := range results {
		for _, row := range res.rows {
			fresh, err := merge.addMerged(row)
			if err != nil {
				return nil, err
			}
			if fresh {
				out.Rows = append(out.Rows, row)
				if err := ctx.checkRows(len(out.Rows)); err != nil {
					return nil, err
				}
			}
		}
	}
	if sp != nil {
		sp.SetInt("rows_out", int64(out.Len()))
		sp.SetInt("merge_dedup_hits", merge.hits)
	}
	return out, nil
}
