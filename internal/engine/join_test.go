package engine

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/dict"
)

// joinCase builds two relations sharing variable 1 (and optionally 2).
func relOf(vars []uint32, rows ...[]dict.ID) *Relation {
	return &Relation{Vars: vars, Rows: rows}
}

func runJoin(t *testing.T, algo JoinAlgorithm, l, r *Relation) *Relation {
	t.Helper()
	ctx := &evalCtx{prof: Profile{Name: "test"}}
	out, err := joinRelations(ctx, l, r, algo)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func sortedRows(rel *Relation) [][]dict.ID {
	rows := append([][]dict.ID(nil), rel.Rows...)
	sort.Slice(rows, func(i, j int) bool {
		for k := range rows[i] {
			if rows[i][k] != rows[j][k] {
				return rows[i][k] < rows[j][k]
			}
		}
		return false
	})
	return rows
}

func rowsEqual(a, b [][]dict.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// All three algorithms must produce identical results on random inputs,
// including duplicate keys and empty sides.
func TestJoinAlgorithmsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		nl, nr := rng.Intn(30), rng.Intn(30)
		l := &Relation{Vars: []uint32{0, 1}}
		for i := 0; i < nl; i++ {
			l.Rows = append(l.Rows, []dict.ID{dict.ID(rng.Intn(10)), dict.ID(rng.Intn(5))})
		}
		r := &Relation{Vars: []uint32{1, 2}}
		for i := 0; i < nr; i++ {
			r.Rows = append(r.Rows, []dict.ID{dict.ID(rng.Intn(5)), dict.ID(rng.Intn(10))})
		}
		hash := sortedRows(runJoin(t, HashJoin, l, r))
		merge := sortedRows(runJoin(t, MergeJoin, l, r))
		nested := sortedRows(runJoin(t, NestedLoopJoin, l, r))
		if !rowsEqual(hash, merge) {
			t.Fatalf("trial %d: hash and merge disagree (%d vs %d rows)", trial, len(hash), len(merge))
		}
		if !rowsEqual(hash, nested) {
			t.Fatalf("trial %d: hash and nested-loop disagree (%d vs %d rows)", trial, len(hash), len(nested))
		}
	}
}

func TestJoinSchemaAndValues(t *testing.T) {
	l := relOf([]uint32{0, 1}, []dict.ID{10, 1}, []dict.ID{11, 2})
	r := relOf([]uint32{1, 2}, []dict.ID{1, 100}, []dict.ID{1, 101}, []dict.ID{3, 102})
	out := runJoin(t, HashJoin, l, r)
	if len(out.Vars) != 3 || out.Vars[0] != 0 || out.Vars[1] != 1 || out.Vars[2] != 2 {
		t.Fatalf("output schema = %v", out.Vars)
	}
	got := sortedRows(out)
	want := [][]dict.ID{{10, 1, 100}, {10, 1, 101}}
	if !rowsEqual(got, want) {
		t.Errorf("join rows = %v, want %v", got, want)
	}
}

func TestJoinNoSharedVarsIsCartesian(t *testing.T) {
	l := relOf([]uint32{0}, []dict.ID{1}, []dict.ID{2})
	r := relOf([]uint32{1}, []dict.ID{7}, []dict.ID{8})
	out := runJoin(t, HashJoin, l, r)
	if len(out.Rows) != 4 {
		t.Errorf("cartesian product has %d rows, want 4", len(out.Rows))
	}
}

func TestJoinMultiColumnKey(t *testing.T) {
	l := relOf([]uint32{0, 1, 2}, []dict.ID{1, 2, 9}, []dict.ID{1, 3, 9})
	r := relOf([]uint32{0, 1, 3}, []dict.ID{1, 2, 50}, []dict.ID{1, 9, 51})
	for _, algo := range []JoinAlgorithm{HashJoin, MergeJoin, NestedLoopJoin} {
		out := runJoin(t, algo, l, r)
		if len(out.Rows) != 1 {
			t.Errorf("%s: %d rows, want 1 (two-column key)", algo, len(out.Rows))
			continue
		}
		row := out.Rows[0]
		if row[0] != 1 || row[1] != 2 || row[2] != 9 || row[3] != 50 {
			t.Errorf("%s: row = %v", algo, row)
		}
	}
}

func TestJoinEmptySides(t *testing.T) {
	l := relOf([]uint32{0, 1})
	r := relOf([]uint32{1, 2}, []dict.ID{1, 2})
	for _, algo := range []JoinAlgorithm{HashJoin, MergeJoin, NestedLoopJoin} {
		if out := runJoin(t, algo, l, r); len(out.Rows) != 0 {
			t.Errorf("%s: empty left joined to %d rows", algo, len(out.Rows))
		}
		if out := runJoin(t, algo, r, l); len(out.Rows) != 0 {
			t.Errorf("%s: empty right joined to %d rows", algo, len(out.Rows))
		}
	}
}

func TestJoinBudgetEnforced(t *testing.T) {
	l := relOf([]uint32{0}, []dict.ID{1})
	r := relOf([]uint32{0}, []dict.ID{1})
	ctx := &evalCtx{prof: Profile{Name: "t", WorkBudget: 1}}
	// The nested loop charges per comparison; a budget of 1 must trip on
	// output emission.
	if _, err := joinRelations(ctx, l, r, NestedLoopJoin); err == nil {
		t.Error("work budget not enforced in join")
	}
}

func TestSortCost(t *testing.T) {
	if sortCost(0) != 0 || sortCost(1) != 1 {
		t.Error("trivial sort costs wrong")
	}
	if sortCost(8) != 8*3 {
		t.Errorf("sortCost(8) = %d, want 24", sortCost(8))
	}
}
