package engine_test

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bgp"
	"repro/internal/engine"
	"repro/internal/naive"
	"repro/internal/reformulate"
	"repro/internal/schema"
	"repro/internal/stats"
	"repro/internal/testkit"
)

func newEngine(e *testkit.Example, prof engine.Profile) *engine.Engine {
	st := e.RawStore()
	return engine.New(st, stats.Collect(st, e.Vocab), prof)
}

func toRows(r *engine.Relation) naive.Rows {
	rows := r.Materialize()
	out := make(naive.Rows, 0, len(rows))
	for _, row := range rows {
		out = append(out, naive.Row(row))
	}
	// The naive rows are sorted; sort ours the same way via round trip.
	set := make(map[string]naive.Row, len(out))
	for _, row := range out {
		set[keyString(row)] = row
	}
	sorted := make(naive.Rows, 0, len(set))
	for _, row := range set {
		sorted = append(sorted, row)
	}
	sortRows(sorted)
	return sorted
}

func keyString(r naive.Row) string {
	b := make([]byte, len(r)*4)
	for i, v := range r {
		b[i*4], b[i*4+1], b[i*4+2], b[i*4+3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	}
	return string(b)
}

func sortRows(rows naive.Rows) {
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && lessRow(rows[j], rows[j-1]); j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
}

func lessRow(a, b naive.Row) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// The engine must agree with the naive evaluator on random CQs, for every
// profile (different join algorithms must not change answers).
func TestEngineMatchesNaiveCQ(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		e := testkit.Random(seed, 60)
		raw := e.RawStore()
		rng := rand.New(rand.NewSource(seed + 500))
		for _, prof := range append(engine.Profiles(), engine.Native) {
			eng := engine.New(raw, stats.Collect(raw, e.Vocab), prof)
			for i := 0; i < 5; i++ {
				q := testkit.RandomQuery(e, rand.New(rand.NewSource(seed*100+int64(i))))
				rel, _, err := eng.EvalCQ(q)
				if err != nil {
					t.Fatalf("seed %d profile %s: %v", seed, prof.Name, err)
				}
				got := toRows(rel)
				want := naive.EvalCQ(raw, q)
				if !naive.Equal(got, want) {
					t.Errorf("seed %d profile %s query %s:\n got %v\nwant %v", seed, prof.Name, q, got, want)
				}
			}
			_ = rng
		}
	}
}

// UCQ evaluation must agree with the naive union semantics.
func TestEngineMatchesNaiveUCQ(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		e := testkit.Random(seed, 50)
		raw := e.RawStore()
		eng := engine.New(raw, stats.Collect(raw, e.Vocab), engine.Native)
		rng := rand.New(rand.NewSource(seed + 900))
		q := testkit.RandomQuery(e, rng)
		r := mustReformulate(q, e.Closed)
		u, err := r.UCQ(100000)
		if err != nil {
			t.Fatal(err)
		}
		rel, _, err := eng.EvalUCQ(u)
		if err != nil {
			t.Fatal(err)
		}
		if !naive.Equal(toRows(rel), naive.EvalUCQ(raw, u)) {
			t.Errorf("seed %d: UCQ answers differ from naive", seed)
		}
	}
}

// JUCQ evaluation must agree with naive JUCQ semantics across all join
// algorithms.
func TestEngineMatchesNaiveJUCQ(t *testing.T) {
	e := testkit.Paper()
	raw := e.RawStore()
	// Arms: (x type y) and (x writtenBy z), joined on x.
	j := bgp.JUCQ{
		Head: []uint32{0, 1},
		Arms: []bgp.UCQ{
			{Vars: []uint32{0, 1}, CQs: []bgp.CQ{{
				Head:  []bgp.Term{bgp.V(0), bgp.V(1)},
				Atoms: []bgp.Atom{{S: bgp.V(0), P: bgp.C(e.Vocab.Type), O: bgp.V(1)}},
			}}},
			{Vars: []uint32{0}, CQs: []bgp.CQ{{
				Head:  []bgp.Term{bgp.V(0)},
				Atoms: []bgp.Atom{{S: bgp.V(0), P: bgp.C(e.ID("writtenBy")), O: bgp.V(2)}},
			}}},
		},
	}
	want := naive.EvalJUCQ(raw, j)
	for _, prof := range append(engine.Profiles(), engine.Native) {
		eng := engine.New(raw, stats.Collect(raw, e.Vocab), prof)
		rel, _, err := eng.EvalJUCQ(j)
		if err != nil {
			t.Fatalf("profile %s: %v", prof.Name, err)
		}
		if !naive.Equal(toRows(rel), want) {
			t.Errorf("profile %s: JUCQ answers differ: got %v want %v", prof.Name, toRows(rel), want)
		}
	}
}

// Random JUCQs: split a random query's reformulation into per-atom arms
// (the SCQ shape) and compare against the whole-query UCQ answer — the
// cover-based equivalence of Theorem 3.1 at engine level.
func TestEngineSCQEquivalentToUCQ(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		e := testkit.Random(seed, 40)
		raw := e.RawStore()
		eng := engine.New(raw, stats.Collect(raw, e.Vocab), engine.Native)
		rng := rand.New(rand.NewSource(seed + 321))
		q := testkit.RandomQuery(e, rng)
		if len(q.Atoms) < 2 || !connectedQuery(q) {
			continue
		}
		full := mustReformulate(q, e.Closed)
		fullUCQ, err := full.UCQ(100000)
		if err != nil {
			t.Fatal(err)
		}
		wantRel, _, err := eng.EvalUCQ(fullUCQ)
		if err != nil {
			t.Fatal(err)
		}
		want := toRows(wantRel)

		// SCQ: one arm per atom; arm head = distinguished vars in the
		// atom plus vars shared with other atoms.
		head := headVars(q)
		var arms []bgp.UCQ
		for i, a := range q.Atoms {
			sub := coverQuery(q, []int{i}, head)
			ru := mustReformulate(sub, e.Closed)
			u, err := ru.UCQ(100000)
			if err != nil {
				t.Fatal(err)
			}
			arms = append(arms, u)
			_ = a
		}
		j := bgp.JUCQ{Head: head, Arms: arms}
		if err := j.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		gotRel, _, err := eng.EvalArms(j.Head, sources(arms))
		if err != nil {
			t.Fatal(err)
		}
		if !naive.Equal(toRows(gotRel), want) {
			t.Errorf("seed %d: SCQ != UCQ for %s:\n got %v\nwant %v", seed, q, toRows(gotRel), want)
		}
	}
}

func sources(arms []bgp.UCQ) []engine.ArmSource {
	out := make([]engine.ArmSource, len(arms))
	for i, a := range arms {
		out[i] = engine.SourceFromUCQ(a)
	}
	return out
}

func headVars(q bgp.CQ) []uint32 {
	var out []uint32
	for _, h := range q.Head {
		out = append(out, h.ID)
	}
	return out
}

// coverQuery builds the cover query of the given atom indexes: head = the
// query's distinguished vars occurring in the fragment plus vars shared
// with atoms outside it (Definition 3.4).
func coverQuery(q bgp.CQ, idxs []int, distinguished []uint32) bgp.CQ {
	in := make(map[int]bool)
	for _, i := range idxs {
		in[i] = true
	}
	inVars := make(map[uint32]bool)
	outVars := make(map[uint32]bool)
	var buf []uint32
	for i, a := range q.Atoms {
		buf = a.Vars(buf[:0])
		for _, v := range buf {
			if in[i] {
				inVars[v] = true
			} else {
				outVars[v] = true
			}
		}
	}
	isDist := make(map[uint32]bool)
	for _, v := range distinguished {
		isDist[v] = true
	}
	var head []bgp.Term
	seen := make(map[uint32]bool)
	for v := range inVars {
		if (isDist[v] || outVars[v]) && !seen[v] {
			seen[v] = true
			head = append(head, bgp.V(v))
		}
	}
	sub := bgp.CQ{Head: head}
	for _, i := range idxs {
		sub.Atoms = append(sub.Atoms, q.Atoms[i])
	}
	return sub
}

// connectedQuery reports whether the query's atoms form one connected
// component under shared variables (SCQ covers require it).
func connectedQuery(q bgp.CQ) bool {
	n := len(q.Atoms)
	if n == 0 {
		return false
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for j := 0; j < n; j++ {
			if !seen[j] && q.Atoms[i].SharesVar(q.Atoms[j]) {
				seen[j] = true
				count++
				stack = append(stack, j)
			}
		}
	}
	// Also require every atom to have at least one variable at all, and
	// every arm head to be non-empty (cover queries with empty heads are
	// boolean and not exercised here).
	if count != n {
		return false
	}
	for i := range q.Atoms {
		var buf []uint32
		if len(q.Atoms[i].Vars(buf)) == 0 {
			return false
		}
	}
	return true
}

// Failure injection: each profile limit must trip with its typed error.
func TestPlanTooComplex(t *testing.T) {
	e := testkit.Paper()
	prof := engine.Profile{Name: "tiny", MaxPlanLeaves: 2, ArmJoin: engine.HashJoin}
	eng := newEngine(e, prof)
	q := bgp.CQ{
		Head: []bgp.Term{bgp.V(0)},
		Atoms: []bgp.Atom{
			{S: bgp.V(0), P: bgp.C(e.ID("writtenBy")), O: bgp.V(1)},
			{S: bgp.V(0), P: bgp.C(e.ID("hasTitle")), O: bgp.V(2)},
			{S: bgp.V(0), P: bgp.C(e.ID("publishedIn")), O: bgp.V(3)},
		},
	}
	_, _, err := eng.EvalCQ(q)
	if !errors.Is(err, engine.ErrPlanTooComplex) {
		t.Errorf("err = %v, want ErrPlanTooComplex", err)
	}
}

func TestWorkBudgetExceeded(t *testing.T) {
	e := testkit.Paper()
	prof := engine.Profile{Name: "tiny", WorkBudget: 2, ArmJoin: engine.HashJoin}
	eng := newEngine(e, prof)
	q := bgp.CQ{
		Head:  []bgp.Term{bgp.V(0)},
		Atoms: []bgp.Atom{{S: bgp.V(0), P: bgp.V(1), O: bgp.V(2)}},
	}
	_, _, err := eng.EvalCQ(q)
	if !errors.Is(err, engine.ErrWorkBudget) {
		t.Errorf("err = %v, want ErrWorkBudget", err)
	}
}

func TestMemoryBudgetExceeded(t *testing.T) {
	e := testkit.Paper()
	prof := engine.Profile{Name: "tiny", MaxMaterializedRows: 1, ArmJoin: engine.HashJoin}
	eng := newEngine(e, prof)
	q := bgp.CQ{
		Head:  []bgp.Term{bgp.V(0), bgp.V(2)},
		Atoms: []bgp.Atom{{S: bgp.V(0), P: bgp.V(1), O: bgp.V(2)}},
	}
	_, _, err := eng.EvalCQ(q)
	if !errors.Is(err, engine.ErrMemoryBudget) {
		t.Errorf("err = %v, want ErrMemoryBudget", err)
	}
}

// Metrics must be populated: scans, arms and dedup counted.
func TestMetrics(t *testing.T) {
	e := testkit.Paper()
	eng := newEngine(e, engine.Native)
	q := bgp.CQ{
		Head:  []bgp.Term{bgp.V(0)},
		Atoms: []bgp.Atom{{S: bgp.V(0), P: bgp.V(1), O: bgp.V(2)}},
	}
	_, m, err := eng.EvalCQ(q)
	if err != nil {
		t.Fatal(err)
	}
	if m.TuplesScanned == 0 {
		t.Error("TuplesScanned = 0")
	}
	if m.UnionArms != 1 {
		t.Errorf("UnionArms = %d, want 1", m.UnionArms)
	}
	if m.RowsDeduped == 0 {
		t.Error("projection to one column should have deduplicated rows")
	}
}

func TestExplainArms(t *testing.T) {
	e := testkit.Paper()
	eng := newEngine(e, engine.Native)
	arms := []engine.ArmSource{
		engine.SourceFromUCQ(bgp.UCQ{Vars: []uint32{0, 1}, CQs: []bgp.CQ{{
			Head:  []bgp.Term{bgp.V(0), bgp.V(1)},
			Atoms: []bgp.Atom{{S: bgp.V(0), P: bgp.C(e.Vocab.Type), O: bgp.V(1)}},
		}}}),
		engine.SourceFromUCQ(bgp.UCQ{Vars: []uint32{0}, CQs: []bgp.CQ{{
			Head:  []bgp.Term{bgp.V(0)},
			Atoms: []bgp.Atom{{S: bgp.V(0), P: bgp.C(e.ID("writtenBy")), O: bgp.V(2)}},
		}}}),
	}
	out := eng.ExplainArms([]uint32{0, 1}, arms, nil)
	for _, want := range []string{"JUCQ plan", "arm 1", "arm 2", "bind-join order", "arm join order", "estimated cost"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
	// A rejected plan must say so.
	small := newEngine(e, engine.Profile{Name: "t", MaxPlanLeaves: 1, ArmJoin: engine.HashJoin})
	if out := small.ExplainArms([]uint32{0, 1}, arms, nil); !strings.Contains(out, "REJECTED") {
		t.Errorf("rejected plan not flagged:\n%s", out)
	}
}

func TestEstimateArmsOrdersStrategies(t *testing.T) {
	// On the paper example, a single-arm plan over one selective atom
	// must be estimated cheaper than a plan scanning everything.
	e := testkit.Paper()
	raw := e.RawStore()
	eng := engine.New(raw, stats.Collect(raw, e.Vocab), engine.Native)
	selective := bgp.UCQ{Vars: []uint32{0}, CQs: []bgp.CQ{{
		Head:  []bgp.Term{bgp.V(0)},
		Atoms: []bgp.Atom{{S: bgp.V(0), P: bgp.C(e.ID("hasTitle")), O: bgp.V(1)}},
	}}}
	everything := bgp.UCQ{Vars: []uint32{0}, CQs: []bgp.CQ{{
		Head:  []bgp.Term{bgp.V(0)},
		Atoms: []bgp.Atom{{S: bgp.V(0), P: bgp.V(1), O: bgp.V(2)}},
	}}}
	cheap := eng.EstimateArms([]engine.ArmSource{engine.SourceFromUCQ(selective)})
	costly := eng.EstimateArms([]engine.ArmSource{engine.SourceFromUCQ(everything)})
	if cheap >= costly {
		t.Errorf("estimate(selective)=%v >= estimate(everything)=%v", cheap, costly)
	}
}

// mustReformulate wraps the error-returning API for test queries that
// are well-formed by construction.
func mustReformulate(q bgp.CQ, sch *schema.Closed) *reformulate.Reformulation {
	r, err := reformulate.Reformulate(q, sch)
	if err != nil {
		panic(err)
	}
	return r
}
