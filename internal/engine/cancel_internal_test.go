package engine

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/bgp"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/testkit"
)

// wideArm streams n copies of a full-scan member CQ — enough repeated
// work that a deadline in the low milliseconds always expires mid-flight.
func wideArm(n int) ArmSource {
	member := bgp.CQ{
		Head:  []bgp.Term{bgp.V(0), bgp.V(2)},
		Atoms: []bgp.Atom{{S: bgp.V(0), P: bgp.V(1), O: bgp.V(2)}},
	}
	return ArmSource{
		Vars:   []uint32{0, 2},
		NumCQs: int64(n),
		Leaves: int64(n),
		Each: func(f func(bgp.CQ) bool) bool {
			for i := 0; i < n; i++ {
				if !f(member) {
					return false
				}
			}
			return true
		},
	}
}

// A context canceled before admission must fail with the typed
// ErrCanceled without scanning anything, and still release the pinned
// snapshot, at every worker count.
func TestPreCanceledContextFailsBeforeWork(t *testing.T) {
	e := testkit.Random(21, 60)
	raw := e.RawStore()
	st := stats.Collect(raw, e.Vocab)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 8} {
		var snap *storage.Snapshot
		evalSnapshotHook = func(sn *storage.Snapshot) { snap = sn }
		eng := New(raw, st, Native).WithParallelism(workers).WithContext(ctx)
		rel, m, err := eng.EvalArms([]uint32{0, 2}, []ArmSource{wideArm(100)})
		evalSnapshotHook = nil
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("workers=%d: err = %v, want %v", workers, err, ErrCanceled)
		}
		if rel != nil {
			t.Errorf("workers=%d: relation = %d rows, want nil on cancellation", workers, rel.Len())
		}
		if m.TuplesScanned != 0 {
			t.Errorf("workers=%d: scanned %d tuples before admission check", workers, m.TuplesScanned)
		}
		if snap == nil || !snap.Released() {
			t.Errorf("workers=%d: snapshot not released on the pre-canceled path", workers)
		}
	}
}

// A deadline expiring mid-evaluation must stop the evaluation early
// (strictly less work than the uncancelled run), surface ErrCanceled, and
// release the snapshot — sequentially and across a sharded worker pool.
func TestDeadlineStopsEvaluationEarly(t *testing.T) {
	e := testkit.Random(22, 80)
	raw := e.RawStore()
	st := stats.Collect(raw, e.Vocab)
	const members = 200_000
	for _, workers := range []int{1, 8} {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
		var snap *storage.Snapshot
		evalSnapshotHook = func(sn *storage.Snapshot) { snap = sn }
		eng := New(raw, st, Native).WithParallelism(workers).WithContext(ctx)
		rel, m, err := eng.EvalArms([]uint32{0, 2}, []ArmSource{wideArm(members)})
		evalSnapshotHook = nil
		cancel()
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("workers=%d: err = %v, want %v", workers, err, ErrCanceled)
		}
		if rel != nil {
			t.Errorf("workers=%d: relation = %d rows, want nil on cancellation", workers, rel.Len())
		}
		// Each member scans the whole 80+-triple store; finishing all
		// members would charge far more than this. Stopping early is the
		// point of the seam.
		fullWork := int64(members) * int64(raw.Len())
		if m.Work >= fullWork {
			t.Errorf("workers=%d: work = %d, evaluation did not stop early (full ≈ %d)", workers, m.Work, fullWork)
		}
		if snap == nil || !snap.Released() {
			t.Errorf("workers=%d: snapshot not released on the cancellation path", workers)
		}
	}
}

// An engine carrying an uncancelable context must behave exactly like one
// carrying none: same rows, same metrics (the done channel of
// context.Background is nil, so the poll stays disabled).
func TestBackgroundContextIsFree(t *testing.T) {
	e := testkit.Random(23, 60)
	raw := e.RawStore()
	st := stats.Collect(raw, e.Vocab)
	arm := wideArm(50)
	plain, pm, err := New(raw, st, Native).WithParallelism(1).EvalArms([]uint32{0, 2}, []ArmSource{arm})
	if err != nil {
		t.Fatal(err)
	}
	bg, bm, err := New(raw, st, Native).WithParallelism(1).WithContext(context.Background()).
		EvalArms([]uint32{0, 2}, []ArmSource{arm})
	if err != nil {
		t.Fatal(err)
	}
	if pm != bm {
		t.Errorf("metrics with background context %+v differ from plain %+v", bm, pm)
	}
	if plain.Len() != bg.Len() {
		t.Errorf("rows with background context = %d, plain = %d", bg.Len(), plain.Len())
	}
}
