// Package engine is the query evaluation engine the reformulated queries
// are handed to — the role PostgreSQL, DB2 and MySQL play in the paper's
// experiments (Section 5.1). It evaluates CQs by index bind-joins over the
// triple store (greedy join ordering, statistics-driven), UCQs by
// evaluating members under a shared duplicate-elimination set, and JUCQs
// by materializing the arm results and joining them with a
// profile-selected algorithm.
//
// Engine *profiles* reproduce the paper's observation that well-established
// engines differ sharply in their ability to process reformulated queries:
//
//   - a maximum plan size (union fan-in × atoms), whose violation emulates
//     DB2's "stack depth limit exceeded" on the 318,096-member UCQ of the
//     paper's Motivating Example 2;
//   - a materialization budget, whose violation emulates the I/O
//     exceptions the paper reports when an engine fails to materialize an
//     intermediary result;
//   - a work budget, whose violation emulates the paper's 2-hour timeout;
//   - the join algorithm available for combining arm results: hash and
//     sort-merge for the Postgres- and DB2-like profiles, nested loops
//     only for the MySQL-5.6-like profile (hash joins arrived in MySQL
//     8.0.18), which is what makes SCQ-style reformulations pathological
//     there.
//
// All failures are typed sentinel errors so the benchmark harness can
// report "missing bars" exactly as the paper's figures do.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"

	"repro/internal/bgp"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/trace"
)

// Typed failures, mirroring the failure modes of Section 5's experiments.
var (
	// ErrPlanTooComplex reports a query whose physical plan exceeds the
	// profile's plan-size limit (the DB2-like stack overflow).
	ErrPlanTooComplex = errors.New("engine: query plan exceeds the profile's plan-size limit")
	// ErrMemoryBudget reports an intermediate result too large to
	// materialize under the profile's memory budget.
	ErrMemoryBudget = errors.New("engine: intermediate result exceeds the profile's materialization budget")
	// ErrWorkBudget reports an evaluation that exceeded the profile's
	// work budget (the experiment timeout).
	ErrWorkBudget = errors.New("engine: evaluation exceeded the profile's work budget")
	// ErrCanceled reports an evaluation interrupted by its context
	// (WithContext): the caller's deadline expired or the request was
	// canceled mid-flight. Unlike the budget errors it is not a property
	// of the query — retrying under a fresh context may succeed.
	ErrCanceled = errors.New("engine: evaluation canceled by the caller's context")
)

// JoinAlgorithm selects how materialized arm relations are joined.
type JoinAlgorithm uint8

const (
	// HashJoin builds a hash table on the smaller input. Linear in the
	// inputs and the output.
	HashJoin JoinAlgorithm = iota
	// MergeJoin sorts both inputs on the join key and merges.
	MergeJoin
	// NestedLoopJoin compares every pair of rows; quadratic, the only
	// choice on engines without hash joins for unindexed intermediates.
	NestedLoopJoin
)

// String names the algorithm.
func (a JoinAlgorithm) String() string {
	switch a {
	case HashJoin:
		return "hash"
	case MergeJoin:
		return "merge"
	case NestedLoopJoin:
		return "nested-loop"
	default:
		return fmt.Sprintf("JoinAlgorithm(%d)", uint8(a))
	}
}

// Profile is an engine personality: the resource limits and operator
// repertoire that distinguish the three RDBMSs of the paper's study.
// A zero limit means "unlimited".
type Profile struct {
	Name string
	// MaxPlanLeaves bounds the physical plan size, measured in scan
	// leaves (union arms × atoms per arm, summed over JUCQ arms).
	MaxPlanLeaves int64
	// MaxMaterializedRows bounds every materialized intermediate
	// (arm results, duplicate-elimination sets, join outputs).
	MaxMaterializedRows int
	// WorkBudget bounds total work units (tuples scanned, rows compared,
	// hashed or emitted) for one query; exceeding it is the timeout.
	WorkBudget int64
	// ArmJoin is the algorithm used to join materialized arm relations.
	ArmJoin JoinAlgorithm
	// DisableJoinOrdering evaluates member CQs in textual atom order
	// instead of the greedy statistics-driven order — an ablation knob,
	// not a realistic engine behaviour.
	DisableJoinOrdering bool
}

// The three profiles of the experimental study. The limits are scaled to
// this reproduction's dataset sizes (about 10^5–10^7 triples) the same way
// the originals' limits related to the paper's 10^6–10^8: low enough that
// the pathological reformulations fail, high enough that reasonable ones
// run.
var (
	// DB2Like fails first on plan size: large UCQs blow its stack.
	DB2Like = Profile{
		Name:                "db2like",
		MaxPlanLeaves:       8_000,
		MaxMaterializedRows: 6_000_000,
		WorkBudget:          3_000_000_000,
		ArmJoin:             MergeJoin,
	}
	// PostgresLike accepts bigger plans but has a tighter memory budget
	// for materialized intermediates.
	PostgresLike = Profile{
		Name:                "postgreslike",
		MaxPlanLeaves:       120_000,
		MaxMaterializedRows: 4_000_000,
		WorkBudget:          3_000_000_000,
		ArmJoin:             HashJoin,
	}
	// MySQLLike tolerates huge unions but joins intermediates with
	// nested loops only, so large-arm SCQ plans time out while the
	// small-arm covers GCov selects still fit the budget.
	MySQLLike = Profile{
		Name:                "mysqllike",
		MaxPlanLeaves:       600_000,
		MaxMaterializedRows: 8_000_000,
		WorkBudget:          4_000_000_000,
		ArmJoin:             NestedLoopJoin,
	}
	// Native is an unconstrained profile with the best operators — used
	// as the Virtuoso-like native RDF engine in the saturation
	// comparison, and for correctness tests.
	Native = Profile{Name: "native", ArmJoin: HashJoin}
)

// Profiles lists the three RDBMS-like profiles in the order the paper's
// figures show them.
func Profiles() []Profile { return []Profile{DB2Like, PostgresLike, MySQLLike} }

// Metrics accumulates observable work for one evaluation; the cost-model
// calibration fits its counters against wall-clock time.
type Metrics struct {
	TuplesScanned    int64 // tuples read from store indexes
	RowsMaterialized int64 // rows written to materialized intermediates
	RowsJoined       int64 // rows emitted by arm joins
	RowsDeduped      int64 // rows dropped by duplicate elimination
	UnionArms        int64 // member CQs evaluated
	Work             int64 // total charged work units
}

// Engine evaluates encoded queries against one store under one profile.
// It is safe for concurrent use; each evaluation carries its own context.
type Engine struct {
	store *storage.Store
	st    *stats.Stats
	prof  Profile
	// par is the configured worker count for one evaluation; 0 means
	// runtime.GOMAXPROCS(0), 1 means strictly sequential evaluation.
	par int
	// span, when non-nil, is the trace span evaluations record their
	// operator tree under (see WithSpan). nil — the default — disables
	// tracing: the evaluation hot path then pays one nil check per
	// instrumentation point and allocates nothing for tracing.
	span *trace.Span
	// noShared disables the shared-scan layer (pattern-scan memo and
	// merged member scans); see WithSharedScan. Snapshot pinning stays
	// on either way.
	noShared bool
	// ctx, when non-nil, can interrupt evaluations mid-flight (see
	// WithContext). nil — the default — means evaluations run to
	// completion or budget exhaustion; the hot path then pays nothing
	// for cancellation beyond one nil check per budget charge.
	ctx context.Context
	// armObs, when non-nil, is called once per evaluated arm with its
	// observed result cardinality (see WithArmObserver).
	armObs func(arm int, rows int64)
	// noFact disables factorized answer relations (see WithFactorized).
	noFact bool
}

// New returns an engine over the store with the given statistics and
// profile.
func New(store *storage.Store, st *stats.Stats, prof Profile) *Engine {
	return &Engine{store: store, st: st, prof: prof}
}

// WithParallelism returns a copy of the engine whose evaluations use n
// workers: member CQs of one arm are sharded over n dedup sets, and
// independent JUCQ arms are evaluated concurrently. n = 1 is the strictly
// sequential evaluation the paper's reproduction benchmarks assume;
// n <= 0 restores the default, runtime.GOMAXPROCS(0). Results are
// identical for every n (set semantics with a deterministic merge order).
func (e *Engine) WithParallelism(n int) *Engine {
	e2 := *e
	if n < 0 {
		n = 0
	}
	e2.par = n
	return &e2
}

// WithSpan returns a copy of the engine whose evaluations record their
// operator tree (per-arm, per-shard, join and projection spans with row
// and dedup counters) as children of sp, and accumulate engine.* totals
// into sp's counter registry. A nil sp returns an engine with tracing
// disabled — the zero-overhead default.
func (e *Engine) WithSpan(sp *trace.Span) *Engine {
	e2 := *e
	e2.span = sp
	return &e2
}

// WithContext returns a copy of the engine whose evaluations stop early
// with ErrCanceled once ctx is done. Cancellation shares the budget seam:
// the shared atomic work counter every scanned tuple and deduplicated row
// already charges doubles as the poll clock, and the context's done
// channel is polled only when a charge crosses a cancelCheckWork
// boundary — about once per 4096 work units, from whichever worker lands
// the crossing charge. Workers of a parallel evaluation all charge the
// one counter, so a cancellation surfaces on every shard within one poll
// interval and the evaluation unwinds through the ordinary error path:
// pools drain, the snapshot is released, and the typed error reports the
// context's cause. A ctx that can never be canceled (context.Background)
// leaves the poll disabled entirely.
func (e *Engine) WithContext(ctx context.Context) *Engine {
	e2 := *e
	e2.ctx = ctx
	return &e2
}

// WithSharedScan returns a copy of the engine with the shared-scan
// layer enabled (the default) or disabled. The layer comprises the
// per-evaluation pattern-scan memo, the merged evaluation of member CQs
// differing in one constant, and the cross-member planning memos (join
// orders and cardinality probes shared across an arm); disabling it
// reproduces the pre-refactor scan-per-member evaluation — the baseline
// the ablation benchmarks compare against. Results and Metrics are
// identical either way — the layer shares scan-locating and planning
// work, never the per-tuple accounting. Snapshot pinning is not
// affected: every evaluation reads through an immutable snapshot
// regardless, which is what makes nested bind-join scans safe under
// concurrent store mutation.
func (e *Engine) WithSharedScan(on bool) *Engine {
	e2 := *e
	e2.noShared = !on
	return &e2
}

// WithArmObserver returns a copy of the engine that calls f once per
// evaluated UCQ arm with the arm's index and observed result row count.
// The adaptive cost model uses this to compare estimated against actual
// arm cardinalities without allocating a trace tree. f may be called
// concurrently for distinct arm indices (parallel arm evaluation), but
// never twice for the same index, so writing into a caller-owned slice
// indexed by arm is race-free. A nil f disables observation.
func (e *Engine) WithArmObserver(f func(arm int, rows int64)) *Engine {
	e2 := *e
	e2.armObs = f
	return &e2
}

// WithFactorized returns a copy of the engine with factorized answer
// relations enabled (the default) or disabled. When enabled, an arm
// whose member plans decompose into variable-disjoint components — and
// any cartesian arm join — produces a factorized Relation (a
// cross-product of per-component row groups) instead of expanding the
// product. Results are identical either way: Len, Cursor, Each and
// Materialize report and enumerate the logical rows in the flat
// first-occurrence order, and every budget and metric is charged on the
// logical expanded cardinality, so disabling the representation changes
// memory footprint only.
func (e *Engine) WithFactorized(on bool) *Engine {
	e2 := *e
	e2.noFact = !on
	return &e2
}

// SharedScan reports whether the shared-scan layer is enabled.
func (e *Engine) SharedScan() bool { return !e.noShared }

// Factorized reports whether factorized answer relations are enabled.
func (e *Engine) Factorized() bool { return !e.noFact }

// Parallelism returns the resolved worker count of one evaluation.
func (e *Engine) Parallelism() int {
	if e.par > 0 {
		return e.par
	}
	return runtime.GOMAXPROCS(0)
}

// Profile returns the engine's profile.
func (e *Engine) Profile() Profile { return e.prof }

// Stats returns the statistics the engine plans with.
func (e *Engine) Stats() *stats.Stats { return e.st }

// Store returns the underlying triple store.
func (e *Engine) Store() *storage.Store { return e.store }

// evalCtx tracks budgets and metrics for one evaluation. Counters are
// atomics so that arm workers and member shards charge one shared budget:
// the typed budget errors fire when the *total* spent by all workers
// exceeds the profile limit, independent of goroutine interleaving. With
// a single worker the accumulated values are exactly the sequential ones.
type evalCtx struct {
	prof Profile
	par  int // resolved worker count; <= 1 evaluates sequentially
	// span is the evaluation's trace span (nil = tracing off). Operator
	// code creates children of it; per-row work never touches it.
	span *trace.Span
	// snap is the immutable store view every scan and stats probe of
	// this evaluation reads through, pinned once at the top of EvalArms.
	// No lock is held while reading it, so bind-joins nest freely and
	// concurrent store mutations cannot deadlock or skew the evaluation
	// mid-flight.
	snap *storage.Snapshot
	// scans is the shared pattern-scan memo (nil when shared is false).
	scans *scanCache
	// shared enables the scan memo and merged member scans.
	shared bool
	// fact enables factorized answer relations (see WithFactorized).
	fact bool
	// done is the cancellation signal of the evaluation's context, nil
	// when the engine has no cancelable context: charge then skips the
	// poll entirely, keeping the uncancellable path zero-cost. cctx is
	// the context itself, read only to report the cancellation cause.
	done <-chan struct{}
	cctx context.Context

	tuplesScanned    atomic.Int64
	rowsMaterialized atomic.Int64
	rowsJoined       atomic.Int64
	rowsDeduped      atomic.Int64
	unionArms        atomic.Int64
	work             atomic.Int64

	// Shared-scan observability (trace-only; deliberately not part of
	// Metrics, so the shared and baseline paths stay Metrics-identical).
	scanHits      atomic.Int64 // scans served from the pattern memo
	scanMisses    atomic.Int64 // scans that had to locate their range
	mergedMembers atomic.Int64 // members evaluated under a merged scan
	snapRanges    atomic.Int64 // scans resolved to zero-copy snapshot ranges
}

// snapshot returns the metrics accumulated so far. Only call after the
// workers of the evaluation have finished (or for a sequential context).
func (c *evalCtx) snapshot() Metrics {
	return Metrics{
		TuplesScanned:    c.tuplesScanned.Load(),
		RowsMaterialized: c.rowsMaterialized.Load(),
		RowsJoined:       c.rowsJoined.Load(),
		RowsDeduped:      c.rowsDeduped.Load(),
		UnionArms:        c.unionArms.Load(),
		Work:             c.work.Load(),
	}
}

// finishSpan records the evaluation's accumulated metrics and budget
// consumption on the trace span and bumps the trace-wide engine.*
// counters. Called once per evaluation, after every worker has finished;
// a nil span makes it a no-op.
func (c *evalCtx) finishSpan(sp *trace.Span, err error) {
	if sp == nil {
		return
	}
	m := c.snapshot()
	sp.SetInt("tuples_scanned", m.TuplesScanned)
	sp.SetInt("rows_materialized", m.RowsMaterialized)
	sp.SetInt("rows_joined", m.RowsJoined)
	sp.SetInt("dedup_hits", m.RowsDeduped)
	sp.SetInt("union_arms", m.UnionArms)
	sp.SetInt("work", m.Work)
	sp.SetInt("scan_cache_hits", c.scanHits.Load())
	sp.SetInt("scan_cache_misses", c.scanMisses.Load())
	sp.SetInt("merged_members", c.mergedMembers.Load())
	sp.SetInt("snapshot_ranges", c.snapRanges.Load())
	if c.snap != nil {
		sp.SetInt("snapshot_version", int64(c.snap.Version()))
	}
	if c.prof.WorkBudget > 0 {
		sp.SetInt("work_budget", c.prof.WorkBudget)
	}
	if err != nil {
		sp.SetStr("error", err.Error())
	}
	reg := sp.Registry()
	reg.Counter("engine.evals").Add(1)
	reg.Counter("engine.tuples_scanned").Add(m.TuplesScanned)
	reg.Counter("engine.rows_materialized").Add(m.RowsMaterialized)
	reg.Counter("engine.rows_joined").Add(m.RowsJoined)
	reg.Counter("engine.dedup_hits").Add(m.RowsDeduped)
	reg.Counter("engine.union_arms").Add(m.UnionArms)
	reg.Counter("engine.work").Add(m.Work)
	reg.Counter("scancache.hits").Add(c.scanHits.Load())
	reg.Counter("scancache.misses").Add(c.scanMisses.Load())
	reg.Counter("merged_members").Add(c.mergedMembers.Load())
	reg.Counter("snapshot_ranges").Add(c.snapRanges.Load())
	if err != nil {
		reg.Counter("engine.errors").Add(1)
	}
}

// cancelCheckShift spaces the cancellation polls on the work counter:
// the done channel is polled when a charge crosses a multiple of
// 2^cancelCheckShift (4096) work units. One work unit is one scanned
// tuple or one deduplicated row, so even the cheapest evaluations poll
// within microseconds of real work, while the per-tuple cost stays one
// predictable branch on the counter value.
const cancelCheckShift = 12

// charge adds n work units, failing when the budget is exhausted or —
// on poll boundaries — when the evaluation's context has been canceled.
func (c *evalCtx) charge(n int64) error {
	w := c.work.Add(n)
	if c.prof.WorkBudget > 0 && w > c.prof.WorkBudget {
		return fmt.Errorf("%w (%s: %d units)", ErrWorkBudget, c.prof.Name, w)
	}
	if c.done != nil && (w>>cancelCheckShift) != ((w-n)>>cancelCheckShift) {
		return c.canceled()
	}
	return nil
}

// canceled polls the evaluation's cancellation signal without blocking,
// returning the typed ErrCanceled (with the context's own error as the
// cause) once the context is done. A context-free evaluation returns nil
// after one nil check.
func (c *evalCtx) canceled() error {
	if c.done == nil {
		return nil
	}
	select {
	case <-c.done:
		return fmt.Errorf("%w (%v)", ErrCanceled, c.cctx.Err())
	default:
		return nil
	}
}

// checkRows fails when a materialized intermediate exceeds the budget.
func (c *evalCtx) checkRows(n int) error {
	if c.prof.MaxMaterializedRows > 0 && n > c.prof.MaxMaterializedRows {
		return fmt.Errorf("%w (%s: %d rows)", ErrMemoryBudget, c.prof.Name, n)
	}
	return nil
}

// planLeaves returns the scan-leaf count of a JUCQ plan.
func planLeaves(j bgp.JUCQ) int64 {
	var n int64
	for _, arm := range j.Arms {
		for _, cq := range arm.CQs {
			n += int64(len(cq.Atoms))
		}
	}
	return n
}
