// Package turtle reads the Turtle RDF syntax — the subset that covers
// common published data: @prefix / PREFIX directives, prefixed names,
// the 'a' keyword, predicate lists (';'), object lists (','), IRIs,
// blank node labels, and literals with language tags or datatypes.
// Collections, anonymous blank nodes ('[]') and multi-line literals are
// not supported; N-Triples input is accepted (it is a Turtle subset).
package turtle

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"unicode"

	"repro/internal/rdf"
)

// Reader parses Turtle from an input stream.
type Reader struct {
	r    *bufio.Reader
	line int

	prefixes map[string]string
	base     string

	// Statement state for ';' and ',' abbreviations.
	subject   rdf.Term
	property  rdf.Term
	queue     []rdf.Triple
	havePred  bool
	haveSubj  bool
	inStmt    bool
	pendingOK bool
}

// NewReader returns a Reader over r with the rdf:, rdfs: and xsd:
// prefixes predeclared.
func NewReader(r io.Reader) *Reader {
	return &Reader{
		r: bufio.NewReaderSize(r, 64*1024),
		prefixes: map[string]string{
			"rdf":  rdf.RDFNamespace,
			"rdfs": rdf.RDFSNamespace,
			"xsd":  rdf.XSDNamespace,
		},
	}
}

// ReadAll parses every triple in the stream.
func (r *Reader) ReadAll() ([]rdf.Triple, error) {
	var out []rdf.Triple
	for {
		t, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
}

// Read returns the next triple, io.EOF at end of input, or an annotated
// parse error.
func (r *Reader) Read() (rdf.Triple, error) {
	for {
		if len(r.queue) > 0 {
			t := r.queue[0]
			r.queue = r.queue[1:]
			return t, nil
		}
		if err := r.step(); err != nil {
			return rdf.Triple{}, err
		}
	}
}

// step consumes input until at least one triple is queued or EOF.
func (r *Reader) step() error {
	if err := r.skipWS(); err != nil {
		return err
	}
	// Directive?
	if !r.inStmt {
		if ok, err := r.tryDirective(); err != nil || ok {
			return err
		}
		subj, err := r.term(false)
		if err != nil {
			return r.fail(err)
		}
		r.subject = subj
		r.inStmt = true
		r.havePred = false
	}
	if !r.havePred {
		if err := r.skipWS(); err != nil {
			return r.fail(err)
		}
		pred, err := r.term(true)
		if err != nil {
			return r.fail(err)
		}
		r.property = pred
		r.havePred = true
	}
	if err := r.skipWS(); err != nil {
		return r.fail(err)
	}
	obj, err := r.term(false)
	if err != nil {
		return r.fail(err)
	}
	t := rdf.Triple{S: r.subject, P: r.property, O: obj}
	if err := t.Validate(); err != nil {
		return r.fail(err)
	}
	r.queue = append(r.queue, t)

	// Punctuation decides what follows.
	if err := r.skipWS(); err != nil && err != io.EOF {
		return r.fail(err)
	}
	c, err := r.r.ReadByte()
	if err == io.EOF {
		return r.fail(fmt.Errorf("unexpected end of input after object"))
	}
	if err != nil {
		return err
	}
	switch c {
	case '.':
		r.inStmt = false
	case ';':
		r.havePred = false
	case ',':
		// same subject and property; next object follows
	default:
		return r.fail(fmt.Errorf("expected '.', ';' or ',' after object, got %q", c))
	}
	return nil
}

func (r *Reader) fail(err error) error {
	if err == io.EOF {
		return fmt.Errorf("turtle: line %d: unexpected end of input", r.line+1)
	}
	return fmt.Errorf("turtle: line %d: %w", r.line+1, err)
}

// skipWS consumes whitespace and comments.
func (r *Reader) skipWS() error {
	for {
		c, err := r.r.ReadByte()
		if err != nil {
			return err
		}
		switch {
		case c == '\n':
			r.line++
		case c == ' ' || c == '\t' || c == '\r':
		case c == '#':
			if _, err := r.r.ReadString('\n'); err != nil {
				return err
			}
			r.line++
		default:
			return r.r.UnreadByte()
		}
	}
}

// tryDirective consumes an @prefix/@base (or SPARQL-style PREFIX/BASE)
// directive if one starts here.
func (r *Reader) tryDirective() (bool, error) {
	peek, err := r.r.Peek(7)
	if err != nil && len(peek) == 0 {
		return false, err
	}
	p := strings.ToLower(string(peek))
	switch {
	case strings.HasPrefix(p, "@prefix") || strings.HasPrefix(p, "prefix "):
		r.discard(6)
		if p[0] == '@' {
			r.discard(1)
		}
		if err := r.skipWS(); err != nil {
			return true, r.fail(err)
		}
		name, err := r.readUntil(':')
		if err != nil {
			return true, r.fail(err)
		}
		if err := r.skipWS(); err != nil {
			return true, r.fail(err)
		}
		iri, err := r.readIRIRef()
		if err != nil {
			return true, r.fail(err)
		}
		r.prefixes[strings.TrimSpace(name)] = iri
		return true, r.consumeOptionalDot(p[0] == '@')
	case strings.HasPrefix(p, "@base") || strings.HasPrefix(p, "base "):
		r.discard(4)
		if p[0] == '@' {
			r.discard(1)
		}
		if err := r.skipWS(); err != nil {
			return true, r.fail(err)
		}
		iri, err := r.readIRIRef()
		if err != nil {
			return true, r.fail(err)
		}
		r.base = iri
		return true, r.consumeOptionalDot(p[0] == '@')
	}
	return false, nil
}

func (r *Reader) discard(n int) {
	for i := 0; i < n; i++ {
		if _, err := r.r.ReadByte(); err != nil {
			return // at EOF there is nothing left to discard
		}
	}
}

func (r *Reader) consumeOptionalDot(required bool) error {
	if err := r.skipWS(); err != nil && err != io.EOF {
		return err
	}
	c, err := r.r.ReadByte()
	if err == io.EOF {
		if required {
			return r.fail(fmt.Errorf("@-directive missing final '.'"))
		}
		return nil
	}
	if err != nil {
		return err
	}
	if c != '.' {
		r.r.UnreadByte()
		if required {
			return r.fail(fmt.Errorf("@-directive missing final '.'"))
		}
	}
	return nil
}

func (r *Reader) readUntil(stop byte) (string, error) {
	var b strings.Builder
	for {
		c, err := r.r.ReadByte()
		if err != nil {
			return "", err
		}
		if c == stop {
			return b.String(), nil
		}
		b.WriteByte(c)
	}
}

func (r *Reader) readIRIRef() (string, error) {
	c, err := r.r.ReadByte()
	if err != nil {
		return "", err
	}
	if c != '<' {
		return "", fmt.Errorf("expected '<', got %q", c)
	}
	iri, err := r.readUntil('>')
	if err != nil {
		return "", err
	}
	if r.base != "" && !strings.Contains(iri, "://") {
		return r.base + iri, nil
	}
	return iri, nil
}

// term parses one RDF term; propertyPos enables the 'a' keyword.
func (r *Reader) term(propertyPos bool) (rdf.Term, error) {
	c, err := r.r.ReadByte()
	if err != nil {
		return rdf.Term{}, err
	}
	switch {
	case c == '<':
		r.r.UnreadByte()
		iri, err := r.readIRIRef()
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewIRI(iri), nil
	case c == '"':
		return r.literal()
	case c == '_':
		colon, err := r.r.ReadByte()
		if err != nil || colon != ':' {
			return rdf.Term{}, fmt.Errorf("malformed blank node")
		}
		label := r.readName()
		if label == "" {
			return rdf.Term{}, fmt.Errorf("empty blank node label")
		}
		return rdf.NewBlank(label), nil
	case c >= '0' && c <= '9' || c == '-' || c == '+':
		r.r.UnreadByte()
		return r.number()
	case c == 'a' && propertyPos:
		// 'a' only when followed by a separator.
		next, err := r.r.Peek(1)
		if err == nil && (next[0] == ' ' || next[0] == '\t' || next[0] == '<' || next[0] == '_') {
			return rdf.Type, nil
		}
		fallthrough
	default:
		r.r.UnreadByte()
		return r.prefixedName()
	}
}

func (r *Reader) readName() string {
	var b strings.Builder
	for {
		c, err := r.r.ReadByte()
		if err != nil {
			return b.String()
		}
		if c == '_' || c == '-' || c >= '0' && c <= '9' || unicode.IsLetter(rune(c)) {
			b.WriteByte(c)
			continue
		}
		r.r.UnreadByte()
		return b.String()
	}
}

func (r *Reader) prefixedName() (rdf.Term, error) {
	prefix := r.readName()
	c, err := r.r.ReadByte()
	if err != nil || c != ':' {
		return rdf.Term{}, fmt.Errorf("expected prefixed name near %q", prefix)
	}
	local := r.readName()
	ns, ok := r.prefixes[prefix]
	if !ok {
		return rdf.Term{}, fmt.Errorf("undeclared prefix %q", prefix)
	}
	return rdf.NewIRI(ns + local), nil
}

func (r *Reader) literal() (rdf.Term, error) {
	var b strings.Builder
	for {
		c, err := r.r.ReadByte()
		if err != nil {
			return rdf.Term{}, fmt.Errorf("unterminated literal")
		}
		switch c {
		case '\\':
			esc, err := r.r.ReadByte()
			if err != nil {
				return rdf.Term{}, fmt.Errorf("dangling escape")
			}
			switch esc {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			default:
				return rdf.Term{}, fmt.Errorf("unsupported escape \\%c", esc)
			}
		case '"':
			lex := b.String()
			next, err := r.r.Peek(2)
			if err == nil && next[0] == '@' {
				r.discard(1)
				lang := r.readName()
				return rdf.NewLangLiteral(lex, lang), nil
			}
			if err == nil && len(next) == 2 && next[0] == '^' && next[1] == '^' {
				r.discard(2)
				c, err := r.r.ReadByte()
				if err != nil {
					return rdf.Term{}, fmt.Errorf("missing datatype")
				}
				if c == '<' {
					r.r.UnreadByte()
					dt, err := r.readIRIRef()
					if err != nil {
						return rdf.Term{}, err
					}
					return rdf.NewTypedLiteral(lex, dt), nil
				}
				r.r.UnreadByte()
				dt, err := r.prefixedName()
				if err != nil {
					return rdf.Term{}, err
				}
				return rdf.NewTypedLiteral(lex, dt.Value), nil
			}
			return rdf.NewLiteral(lex), nil
		default:
			b.WriteByte(c)
		}
	}
}

func (r *Reader) number() (rdf.Term, error) {
	var b strings.Builder
	dot := false
	for {
		c, err := r.r.ReadByte()
		if err != nil {
			break
		}
		if c >= '0' && c <= '9' || c == '-' || c == '+' && b.Len() == 0 {
			b.WriteByte(c)
			continue
		}
		if c == '.' {
			// A dot followed by a digit is a decimal point; otherwise it
			// terminates the statement.
			next, err := r.r.Peek(1)
			if err == nil && next[0] >= '0' && next[0] <= '9' && !dot {
				dot = true
				b.WriteByte(c)
				continue
			}
		}
		r.r.UnreadByte()
		break
	}
	if b.Len() == 0 {
		return rdf.Term{}, fmt.Errorf("malformed number")
	}
	dt := rdf.XSDInteger
	if dot {
		dt = rdf.XSDNamespace + "decimal"
	}
	return rdf.NewTypedLiteral(b.String(), dt), nil
}
