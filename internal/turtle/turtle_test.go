package turtle

import (
	"strings"
	"testing"

	"repro/internal/rdf"
)

func parse(t *testing.T, src string) []rdf.Triple {
	t.Helper()
	ts, err := NewReader(strings.NewReader(src)).ReadAll()
	if err != nil {
		t.Fatalf("parse error: %v\nsource:\n%s", err, src)
	}
	return ts
}

func TestBasicStatement(t *testing.T) {
	ts := parse(t, `<http://x/s> <http://x/p> <http://x/o> .`)
	if len(ts) != 1 {
		t.Fatalf("%d triples", len(ts))
	}
	want := rdf.NewTriple(rdf.NewIRI("http://x/s"), rdf.NewIRI("http://x/p"), rdf.NewIRI("http://x/o"))
	if ts[0] != want {
		t.Errorf("got %v", ts[0])
	}
}

func TestPrefixes(t *testing.T) {
	ts := parse(t, `
		@prefix ex: <http://example.org/> .
		PREFIX ub: <http://univ.example/>
		ex:s ub:p ex:o .
	`)
	if len(ts) != 1 {
		t.Fatalf("%d triples", len(ts))
	}
	if ts[0].S.Value != "http://example.org/s" || ts[0].P.Value != "http://univ.example/p" {
		t.Errorf("prefix resolution wrong: %v", ts[0])
	}
}

func TestPredicateAndObjectLists(t *testing.T) {
	ts := parse(t, `
		@prefix ex: <http://x/> .
		ex:s ex:p ex:a , ex:b ;
		     ex:q ex:c ;
		     a ex:Class .
	`)
	if len(ts) != 4 {
		t.Fatalf("%d triples, want 4:\n%v", len(ts), ts)
	}
	for _, tr := range ts {
		if tr.S.Value != "http://x/s" {
			t.Errorf("subject changed: %v", tr)
		}
	}
	if ts[0].O.Value != "http://x/a" || ts[1].O.Value != "http://x/b" {
		t.Errorf("object list wrong: %v %v", ts[0], ts[1])
	}
	if ts[3].P != rdf.Type {
		t.Errorf("'a' not resolved: %v", ts[3])
	}
}

func TestLiterals(t *testing.T) {
	ts := parse(t, `
		@prefix ex: <http://x/> .
		ex:s ex:title "Game of Thrones" ;
		     ex:year 1996 ;
		     ex:rating 4.5 ;
		     ex:label "bonjour"@fr ;
		     ex:count "7"^^xsd:integer ;
		     ex:note "say \"hi\"\n" .
	`)
	if len(ts) != 6 {
		t.Fatalf("%d triples, want 6", len(ts))
	}
	if ts[0].O != rdf.NewLiteral("Game of Thrones") {
		t.Errorf("plain literal: %v", ts[0].O)
	}
	if ts[1].O != rdf.NewTypedLiteral("1996", rdf.XSDInteger) {
		t.Errorf("integer: %v", ts[1].O)
	}
	if ts[2].O != rdf.NewTypedLiteral("4.5", rdf.XSDNamespace+"decimal") {
		t.Errorf("decimal: %v", ts[2].O)
	}
	if ts[3].O != rdf.NewLangLiteral("bonjour", "fr") {
		t.Errorf("lang literal: %v", ts[3].O)
	}
	if ts[4].O != rdf.NewTypedLiteral("7", rdf.XSDInteger) {
		t.Errorf("typed literal: %v", ts[4].O)
	}
	if ts[5].O != rdf.NewLiteral("say \"hi\"\n") {
		t.Errorf("escapes: %q", ts[5].O.Value)
	}
}

func TestBlankNodes(t *testing.T) {
	ts := parse(t, `
		@prefix ex: <http://x/> .
		_:b1 ex:p ex:o .
		ex:s ex:q _:b1 .
	`)
	if len(ts) != 2 {
		t.Fatalf("%d triples", len(ts))
	}
	if !ts[0].S.IsBlank() || ts[0].S.Value != "b1" {
		t.Errorf("blank subject: %v", ts[0].S)
	}
	if !ts[1].O.IsBlank() {
		t.Errorf("blank object: %v", ts[1].O)
	}
}

func TestComments(t *testing.T) {
	ts := parse(t, `
		# a leading comment
		@prefix ex: <http://x/> . # trailing
		ex:s ex:p ex:o . # done
	`)
	if len(ts) != 1 {
		t.Fatalf("%d triples", len(ts))
	}
}

func TestBase(t *testing.T) {
	ts := parse(t, `
		@base <http://base.example/> .
		<s> <p> <o> .
	`)
	if ts[0].S.Value != "http://base.example/s" {
		t.Errorf("base not applied: %v", ts[0].S)
	}
}

// N-Triples is a Turtle subset; our own writer's output must parse.
func TestAcceptsNTriples(t *testing.T) {
	src := `<http://x/s> <http://x/p> "v"^^<http://www.w3.org/2001/XMLSchema#string> .
_:b <http://x/q> "w"@en .
`
	ts := parse(t, src)
	if len(ts) != 2 {
		t.Fatalf("%d triples", len(ts))
	}
}

func TestErrors(t *testing.T) {
	bad := []string{
		`<http://x/s> <http://x/p>`,              // missing object and dot
		`<http://x/s> <http://x/p> <http://x/o>`, // missing dot
		`ex:s ex:p ex:o .`,                       // undeclared prefix
		`@prefix ex: <http://x/>`,                // @-directive missing dot
		`<http://x/s> <http://x/p> "unterminated .`,
		`"lit" <http://x/p> <http://x/o> .`, // literal subject
	}
	for _, src := range bad {
		if _, err := NewReader(strings.NewReader(src)).ReadAll(); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestMultipleStatements(t *testing.T) {
	ts := parse(t, `
		@prefix ex: <http://x/> .
		ex:a ex:p ex:b .
		ex:b ex:p ex:c .
		ex:c ex:p "end" .
	`)
	if len(ts) != 3 {
		t.Fatalf("%d triples", len(ts))
	}
}
