package rdf

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTermCanonical(t *testing.T) {
	cases := []struct {
		term Term
		want string
	}{
		{NewIRI("http://example.org/a"), "<http://example.org/a>"},
		{NewBlank("b1"), "_:b1"},
		{NewLiteral("hello"), `"hello"`},
		{NewLangLiteral("bonjour", "fr"), `"bonjour"@fr`},
		{NewTypedLiteral("42", XSDInteger), `"42"^^<http://www.w3.org/2001/XMLSchema#integer>`},
		{NewLiteral(`say "hi"` + "\n"), `"say \"hi\"\n"`},
	}
	for _, c := range cases {
		if got := c.term.Canonical(); got != c.want {
			t.Errorf("Canonical(%#v) = %q, want %q", c.term, got, c.want)
		}
	}
}

func TestTermKinds(t *testing.T) {
	if !NewIRI("x").IsIRI() || NewIRI("x").IsLiteral() || NewIRI("x").IsBlank() {
		t.Error("IRI kind predicates wrong")
	}
	if !NewLiteral("x").IsLiteral() {
		t.Error("literal kind predicate wrong")
	}
	if !NewBlank("x").IsBlank() {
		t.Error("blank kind predicate wrong")
	}
	if !(Term{}).IsZero() || NewIRI("x").IsZero() {
		t.Error("IsZero wrong")
	}
}

func TestTermKindString(t *testing.T) {
	if IRI.String() != "iri" || Literal.String() != "literal" || Blank.String() != "blank" {
		t.Error("TermKind.String wrong")
	}
	if !strings.Contains(TermKind(9).String(), "9") {
		t.Error("unknown kind should include the numeric value")
	}
}

// Distinct literals must have distinct canonical forms: canonicalization
// is the dictionary key, so a collision would silently merge values.
func TestCanonicalInjective(t *testing.T) {
	f := func(a, b string, langA, langB bool) bool {
		ta, tb := NewLiteral(a), NewLiteral(b)
		if langA {
			ta = NewLangLiteral(a, "en")
		}
		if langB {
			tb = NewLangLiteral(b, "en")
		}
		if ta == tb {
			return true
		}
		return ta.Canonical() != tb.Canonical()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// A literal and an IRI with related spellings must never collide.
func TestCanonicalKindsDisjoint(t *testing.T) {
	f := func(s string) bool {
		return NewIRI(s).Canonical() != NewLiteral(s).Canonical() &&
			NewIRI(s).Canonical() != NewBlank(s).Canonical() &&
			NewLiteral(s).Canonical() != NewBlank(s).Canonical()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTripleValidate(t *testing.T) {
	good := NewTriple(NewIRI("s"), NewIRI("p"), NewLiteral("o"))
	if err := good.Validate(); err != nil {
		t.Errorf("valid triple rejected: %v", err)
	}
	blankSubject := NewTriple(NewBlank("b"), NewIRI("p"), NewIRI("o"))
	if err := blankSubject.Validate(); err != nil {
		t.Errorf("blank subject should be valid: %v", err)
	}
	litSubject := NewTriple(NewLiteral("x"), NewIRI("p"), NewIRI("o"))
	if litSubject.Validate() == nil {
		t.Error("literal subject should be invalid")
	}
	varProp := NewTriple(NewIRI("s"), NewBlank("p"), NewIRI("o"))
	if varProp.Validate() == nil {
		t.Error("blank property should be invalid")
	}
	zero := Triple{}
	if zero.Validate() == nil {
		t.Error("zero triple should be invalid")
	}
}

func TestVocab(t *testing.T) {
	if Type.Value != RDFNamespace+"type" {
		t.Errorf("rdf:type = %q", Type.Value)
	}
	for _, p := range []Term{SubClassOf, SubPropertyOf, Domain, Range} {
		if !IsSchemaProperty(p) {
			t.Errorf("%v should be a schema property", p)
		}
	}
	if IsSchemaProperty(Type) {
		t.Error("rdf:type is not a schema (constraint) property")
	}
	tr := NewTriple(NewIRI("a"), SubClassOf, NewIRI("b"))
	if !IsSchemaTriple(tr) {
		t.Error("subClassOf triple should be a schema triple")
	}
}

func TestGraphSetSemantics(t *testing.T) {
	g := NewGraph()
	tr := NewTriple(NewIRI("s"), NewIRI("p"), NewIRI("o"))
	if !g.Add(tr) {
		t.Error("first Add should report insertion")
	}
	if g.Add(tr) {
		t.Error("second Add should report duplicate")
	}
	if g.Len() != 1 {
		t.Errorf("Len = %d, want 1", g.Len())
	}
	if !g.Contains(tr) {
		t.Error("Contains should find the triple")
	}
	if !g.Remove(tr) || g.Remove(tr) {
		t.Error("Remove semantics wrong")
	}
	if g.Len() != 0 {
		t.Errorf("Len after remove = %d, want 0", g.Len())
	}
}

func TestGraphPartitions(t *testing.T) {
	g := NewGraph()
	data := NewTriple(NewIRI("s"), NewIRI("p"), NewIRI("o"))
	sch := NewTriple(NewIRI("c1"), SubClassOf, NewIRI("c2"))
	g.AddAll([]Triple{data, sch})
	if got := g.DataTriples(); len(got) != 1 || got[0] != data {
		t.Errorf("DataTriples = %v", got)
	}
	if got := g.SchemaTriples(); len(got) != 1 || got[0] != sch {
		t.Errorf("SchemaTriples = %v", got)
	}
}

func TestGraphTriplesSorted(t *testing.T) {
	g := NewGraph()
	for _, s := range []string{"c", "a", "b"} {
		g.Add(NewTriple(NewIRI(s), NewIRI("p"), NewIRI("o")))
	}
	ts := g.Triples()
	for i := 1; i < len(ts); i++ {
		if ts[i-1].S.Value > ts[i].S.Value {
			t.Fatalf("Triples not sorted: %v", ts)
		}
	}
}

func TestGraphEachEarlyStop(t *testing.T) {
	g := NewGraph()
	for _, s := range []string{"a", "b", "c"} {
		g.Add(NewTriple(NewIRI(s), NewIRI("p"), NewIRI("o")))
	}
	n := 0
	g.Each(func(Triple) bool { n++; return false })
	if n != 1 {
		t.Errorf("Each visited %d triples after early stop, want 1", n)
	}
}
