// Package rdf defines the RDF data model used throughout the repository:
// terms (IRIs, literals, blank nodes), triples, and the RDF/RDFS vocabulary
// of the database fragment of RDF (Goasdoué, Manolescu, Roatiş, EDBT 2013),
// which is the fragment the reproduced paper operates on.
//
// The package is deliberately small and value-oriented: a Term is a plain
// comparable struct, so terms can be used as map keys, and a Triple is three
// Terms. Everything above this layer (dictionary encoding, storage, query
// answering) works on integer-encoded triples; this package is the "surface"
// representation used for parsing, generation and display.
package rdf

import (
	"fmt"
	"strings"
)

// TermKind discriminates the three kinds of RDF terms.
type TermKind uint8

const (
	// IRI identifies a resource by a Uniform Resource Identifier.
	IRI TermKind = iota
	// Literal is a (possibly typed or language-tagged) constant value.
	Literal
	// Blank is a blank node: an unknown IRI or literal token. Blank nodes
	// are conceptually close to the variables of incomplete relational
	// databases (V-tables), as the paper recalls in Section 2.1.
	Blank
)

// String returns a human-readable name for the kind.
func (k TermKind) String() string {
	switch k {
	case IRI:
		return "iri"
	case Literal:
		return "literal"
	case Blank:
		return "blank"
	default:
		return fmt.Sprintf("TermKind(%d)", uint8(k))
	}
}

// Term is an RDF term: an IRI, a literal or a blank node.
//
// For an IRI, Value holds the full IRI text. For a literal, Value holds the
// lexical form, Datatype the (optional) datatype IRI and Lang the (optional)
// language tag; at most one of Datatype and Lang is set. For a blank node,
// Value holds the local label (without the "_:" prefix).
//
// Term is comparable and can be used as a map key.
type Term struct {
	Kind     TermKind
	Value    string
	Datatype string
	Lang     string
}

// NewIRI returns an IRI term.
func NewIRI(iri string) Term { return Term{Kind: IRI, Value: iri} }

// NewLiteral returns a plain (untyped, untagged) literal term.
func NewLiteral(lexical string) Term { return Term{Kind: Literal, Value: lexical} }

// NewTypedLiteral returns a literal with a datatype IRI.
func NewTypedLiteral(lexical, datatype string) Term {
	return Term{Kind: Literal, Value: lexical, Datatype: datatype}
}

// NewLangLiteral returns a literal with a language tag.
func NewLangLiteral(lexical, lang string) Term {
	return Term{Kind: Literal, Value: lexical, Lang: lang}
}

// NewBlank returns a blank node with the given label (no "_:" prefix).
func NewBlank(label string) Term { return Term{Kind: Blank, Value: label} }

// IsIRI reports whether the term is an IRI.
func (t Term) IsIRI() bool { return t.Kind == IRI }

// IsLiteral reports whether the term is a literal.
func (t Term) IsLiteral() bool { return t.Kind == Literal }

// IsBlank reports whether the term is a blank node.
func (t Term) IsBlank() bool { return t.Kind == Blank }

// IsZero reports whether the term is the zero Term, which is not a valid
// RDF term and is used as "absent" in a few internal APIs.
func (t Term) IsZero() bool { return t == Term{} }

// Canonical returns the canonical N-Triples spelling of the term. It is
// used as the dictionary key, so two terms are dictionary-equal exactly
// when their canonical forms coincide.
func (t Term) Canonical() string {
	switch t.Kind {
	case IRI:
		return "<" + t.Value + ">"
	case Blank:
		return "_:" + t.Value
	case Literal:
		var b strings.Builder
		b.Grow(len(t.Value) + len(t.Datatype) + len(t.Lang) + 8)
		b.WriteByte('"')
		escapeLiteral(&b, t.Value)
		b.WriteByte('"')
		if t.Lang != "" {
			b.WriteByte('@')
			b.WriteString(t.Lang)
		} else if t.Datatype != "" {
			b.WriteString("^^<")
			b.WriteString(t.Datatype)
			b.WriteByte('>')
		}
		return b.String()
	default:
		return fmt.Sprintf("!invalid-term(%d)", uint8(t.Kind))
	}
}

// String returns Canonical; Terms print in N-Triples syntax.
func (t Term) String() string { return t.Canonical() }

// escapeLiteral writes s with N-Triples string escapes applied.
func escapeLiteral(b *strings.Builder, s string) {
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
}

// Triple is an RDF triple: subject s has property P with value O.
// Well-formedness (per the RDF specification, and checked by Validate):
// the subject is an IRI or blank node, the property is an IRI, and the
// object is any term.
type Triple struct {
	S, P, O Term
}

// NewTriple returns the triple (s, p, o).
func NewTriple(s, p, o Term) Triple { return Triple{S: s, P: p, O: o} }

// Validate reports whether the triple is well-formed per the RDF
// specification, returning a descriptive error when it is not.
func (t Triple) Validate() error {
	switch t.S.Kind {
	case IRI, Blank:
	default:
		return fmt.Errorf("rdf: triple subject must be IRI or blank node, got %s %q", t.S.Kind, t.S.Value)
	}
	if t.P.Kind != IRI {
		return fmt.Errorf("rdf: triple property must be IRI, got %s %q", t.P.Kind, t.P.Value)
	}
	if t.S.IsZero() || t.P.IsZero() || t.O.IsZero() {
		return fmt.Errorf("rdf: triple has a zero term: %v", t)
	}
	return nil
}

// String renders the triple in N-Triples syntax (without the final dot).
func (t Triple) String() string {
	return t.S.Canonical() + " " + t.P.Canonical() + " " + t.O.Canonical()
}
