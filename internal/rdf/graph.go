package rdf

import "sort"

// Graph is an in-memory set of RDF triples at the surface (string) level.
// It is used by parsers, generators and tests; the query-answering stack
// works on the dictionary-encoded storage.Store instead.
//
// Graph has set semantics: adding a triple twice stores it once.
type Graph struct {
	set map[Triple]struct{}
}

// NewGraph returns an empty graph.
func NewGraph() *Graph { return &Graph{set: make(map[Triple]struct{})} }

// Add inserts the triple, reporting whether it was absent before the call.
func (g *Graph) Add(t Triple) bool {
	if _, ok := g.set[t]; ok {
		return false
	}
	g.set[t] = struct{}{}
	return true
}

// AddAll inserts every triple of ts.
func (g *Graph) AddAll(ts []Triple) {
	for _, t := range ts {
		g.Add(t)
	}
}

// Remove deletes the triple, reporting whether it was present.
func (g *Graph) Remove(t Triple) bool {
	if _, ok := g.set[t]; !ok {
		return false
	}
	delete(g.set, t)
	return true
}

// Contains reports whether the triple is in the graph.
func (g *Graph) Contains(t Triple) bool {
	_, ok := g.set[t]
	return ok
}

// Len returns the number of triples in the graph.
func (g *Graph) Len() int { return len(g.set) }

// Triples returns the graph's triples in a deterministic (sorted) order,
// convenient for tests and serialization.
func (g *Graph) Triples() []Triple {
	out := make([]Triple, 0, len(g.set))
	for t := range g.set {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.S != b.S {
			return a.S.Canonical() < b.S.Canonical()
		}
		if a.P != b.P {
			return a.P.Canonical() < b.P.Canonical()
		}
		return a.O.Canonical() < b.O.Canonical()
	})
	return out
}

// Each calls f on every triple in unspecified order, stopping early if f
// returns false.
func (g *Graph) Each(f func(Triple) bool) {
	for t := range g.set {
		if !f(t) {
			return
		}
	}
}

// SchemaTriples returns the schema-level (RDFS constraint) triples.
func (g *Graph) SchemaTriples() []Triple {
	var out []Triple
	for t := range g.set {
		if IsSchemaTriple(t) {
			out = append(out, t)
		}
	}
	sortTriples(out)
	return out
}

// DataTriples returns the data-level (assertion) triples.
func (g *Graph) DataTriples() []Triple {
	var out []Triple
	for t := range g.set {
		if !IsSchemaTriple(t) {
			out = append(out, t)
		}
	}
	sortTriples(out)
	return out
}

func sortTriples(ts []Triple) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		if a.S != b.S {
			return a.S.Canonical() < b.S.Canonical()
		}
		if a.P != b.P {
			return a.P.Canonical() < b.P.Canonical()
		}
		return a.O.Canonical() < b.O.Canonical()
	})
}
