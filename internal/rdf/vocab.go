package rdf

// Namespaces of the RDF and RDFS vocabularies, plus the common XSD
// namespace for typed literals.
const (
	RDFNamespace  = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
	RDFSNamespace = "http://www.w3.org/2000/01/rdf-schema#"
	XSDNamespace  = "http://www.w3.org/2001/XMLSchema#"
)

// The built-in properties of the database fragment of RDF: rdf:type for
// class membership assertions, and the four RDF Schema constraint
// properties of the paper's Figure 2.
var (
	// Type is rdf:type: "s rdf:type o" states that resource s belongs to
	// class o (relational notation o(s)).
	Type = NewIRI(RDFNamespace + "type")

	// SubClassOf is rdfs:subClassOf: "s rdfs:subClassOf o" states the
	// inclusion constraint s ⊑ o between classes.
	SubClassOf = NewIRI(RDFSNamespace + "subClassOf")

	// SubPropertyOf is rdfs:subPropertyOf: "s rdfs:subPropertyOf o" states
	// the inclusion constraint s ⊑ o between properties.
	SubPropertyOf = NewIRI(RDFSNamespace + "subPropertyOf")

	// Domain is rdfs:domain: "p rdfs:domain c" states that the first
	// attribute of property p is typed by class c (Π_domain(p) ⊑ c).
	Domain = NewIRI(RDFSNamespace + "domain")

	// Range is rdfs:range: "p rdfs:range c" states that the second
	// attribute of property p is typed by class c (Π_range(p) ⊑ c).
	Range = NewIRI(RDFSNamespace + "range")
)

// Common XSD datatype IRIs used by the workload generators.
var (
	XSDString  = XSDNamespace + "string"
	XSDInteger = XSDNamespace + "integer"
	XSDGYear   = XSDNamespace + "gYear"
)

// IsSchemaProperty reports whether p is one of the four RDFS constraint
// properties. Triples whose property is a schema property are schema-level
// statements (constraints); all other triples are data-level statements
// (class or property assertions).
func IsSchemaProperty(p Term) bool {
	return p == SubClassOf || p == SubPropertyOf || p == Domain || p == Range
}

// IsSchemaTriple reports whether t is a schema-level (constraint) triple.
func IsSchemaTriple(t Triple) bool { return IsSchemaProperty(t.P) }
