package sparql

import (
	"fmt"
	"strings"
	"unicode"

	"repro/internal/rdf"
)

// Parse parses a BGP query in the supported SPARQL subset:
//
//	query    := prefix* "SELECT" ("*" | var+) "WHERE" "{" triples "}"
//	prefix   := "PREFIX" name ":" iriref
//	triples  := pattern ("." pattern)* "."?
//	pattern  := node node node
//	node     := var | iriref | prefixed-name | literal | blank | "a"
//
// "a" abbreviates rdf:type, as in SPARQL. The rdf:, rdfs: and xsd:
// prefixes are predeclared. Keywords are case-insensitive.
func Parse(text string) (*Query, error) {
	toks, err := tokenize(text)
	if err != nil {
		return nil, err
	}
	p := &qparser{toks: toks, q: &Query{Prefixes: map[string]string{
		"rdf":  rdf.RDFNamespace,
		"rdfs": rdf.RDFSNamespace,
		"xsd":  rdf.XSDNamespace,
	}}}
	if err := p.parse(); err != nil {
		return nil, err
	}
	if err := p.q.Validate(); err != nil {
		return nil, err
	}
	return p.q, nil
}

type tokKind uint8

const (
	tokWord  tokKind = iota // bare word or prefixed name (incl. keywords)
	tokVar                  // ?name
	tokIRI                  // <...>
	tokLit                  // literal with suffixes, stored as parsed term
	tokPunct                // { } . * :
)

type token struct {
	kind tokKind
	text string
	term rdf.Term // for tokLit
	pos  int
}

func tokenize(s string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '#':
			for i < len(s) && s[i] != '\n' {
				i++
			}
		case c == '?' || c == '$':
			start := i + 1
			j := start
			for j < len(s) && isNameByte(s[j]) {
				j++
			}
			if j == start {
				return nil, fmt.Errorf("sparql: empty variable name at offset %d", i)
			}
			toks = append(toks, token{kind: tokVar, text: s[start:j], pos: i})
			i = j
		case c == '<':
			end := strings.IndexByte(s[i:], '>')
			if end < 0 {
				return nil, fmt.Errorf("sparql: unterminated IRI at offset %d", i)
			}
			toks = append(toks, token{kind: tokIRI, text: s[i+1 : i+end], pos: i})
			i += end + 1
		case c == '"':
			term, n, err := scanLiteral(s[i:])
			if err != nil {
				return nil, fmt.Errorf("sparql: at offset %d: %w", i, err)
			}
			toks = append(toks, token{kind: tokLit, term: term, pos: i})
			i += n
		case c == '{' || c == '}' || c == '.' || c == '*':
			toks = append(toks, token{kind: tokPunct, text: string(c), pos: i})
			i++
		case c == '_' && i+1 < len(s) && s[i+1] == ':':
			start := i
			j := i + 2
			for j < len(s) && isNameByte(s[j]) {
				j++
			}
			toks = append(toks, token{kind: tokWord, text: s[start:j], pos: i})
			i = j
		case isDigit(c) || (c == '-' && i+1 < len(s) && isDigit(s[i+1])):
			j := i + 1
			for j < len(s) && (isDigit(s[j]) || s[j] == '.') && !(s[j] == '.' && (j+1 >= len(s) || !isDigit(s[j+1]))) {
				j++
			}
			lex := s[i:j]
			dt := rdf.XSDInteger
			if strings.Contains(lex, ".") {
				dt = rdf.XSDNamespace + "decimal"
			}
			toks = append(toks, token{kind: tokLit, term: rdf.NewTypedLiteral(lex, dt), pos: i})
			i = j
		case isNameStart(c):
			j := i
			for j < len(s) && (isNameByte(s[j]) || s[j] == ':') {
				j++
			}
			toks = append(toks, token{kind: tokWord, text: s[i:j], pos: i})
			i = j
		default:
			return nil, fmt.Errorf("sparql: unexpected character %q at offset %d", c, i)
		}
	}
	return toks, nil
}

func scanLiteral(s string) (rdf.Term, int, error) {
	var b strings.Builder
	i := 1 // opening quote
	for i < len(s) {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return rdf.Term{}, 0, fmt.Errorf("dangling escape in literal")
			}
			switch s[i+1] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			default:
				return rdf.Term{}, 0, fmt.Errorf("unsupported escape \\%c in literal", s[i+1])
			}
			i += 2
		case '"':
			i++
			lex := b.String()
			if i < len(s) && s[i] == '@' {
				j := i + 1
				for j < len(s) && (isNameByte(s[j]) || s[j] == '-') {
					j++
				}
				return rdf.NewLangLiteral(lex, s[i+1:j]), j, nil
			}
			if strings.HasPrefix(s[i:], "^^<") {
				end := strings.IndexByte(s[i+3:], '>')
				if end < 0 {
					return rdf.Term{}, 0, fmt.Errorf("unterminated datatype IRI")
				}
				return rdf.NewTypedLiteral(lex, s[i+3:i+3+end]), i + 3 + end + 1, nil
			}
			return rdf.NewLiteral(lex), i, nil
		default:
			b.WriteByte(s[i])
			i++
		}
	}
	return rdf.Term{}, 0, fmt.Errorf("unterminated literal")
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isNameStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}
func isNameByte(c byte) bool {
	return c == '_' || c == '-' || isDigit(c) || unicode.IsLetter(rune(c))
}

type qparser struct {
	toks []token
	i    int
	q    *Query
}

func (p *qparser) peek() (token, bool) {
	if p.i < len(p.toks) {
		return p.toks[p.i], true
	}
	return token{}, false
}

func (p *qparser) next() (token, bool) {
	t, ok := p.peek()
	if ok {
		p.i++
	}
	return t, ok
}

func (p *qparser) expectWord(kw string) error {
	t, ok := p.next()
	if !ok || t.kind != tokWord || !strings.EqualFold(t.text, kw) {
		return fmt.Errorf("sparql: expected %q near offset %d", kw, t.pos)
	}
	return nil
}

func (p *qparser) expectPunct(s string) error {
	t, ok := p.next()
	if !ok || t.kind != tokPunct || t.text != s {
		return fmt.Errorf("sparql: expected %q near offset %d", s, t.pos)
	}
	return nil
}

func (p *qparser) parse() error {
	for {
		t, ok := p.peek()
		if !ok {
			return fmt.Errorf("sparql: empty query")
		}
		if t.kind == tokWord && strings.EqualFold(t.text, "PREFIX") {
			p.i++
			if err := p.parsePrefix(); err != nil {
				return err
			}
			continue
		}
		break
	}
	star := false
	if t, ok := p.peek(); ok && t.kind == tokWord && strings.EqualFold(t.text, "ASK") {
		p.i++
		p.q.Ask = true
	} else {
		if err := p.expectWord("SELECT"); err != nil {
			return err
		}
		for {
			t, ok := p.peek()
			if !ok {
				return fmt.Errorf("sparql: unexpected end after SELECT")
			}
			if t.kind == tokVar {
				p.q.Select = append(p.q.Select, Var(t.text))
				p.i++
				continue
			}
			if t.kind == tokPunct && t.text == "*" {
				star = true
				p.i++
				continue
			}
			break
		}
		if !star && len(p.q.Select) == 0 {
			return fmt.Errorf("sparql: SELECT clause names no variables")
		}
	}
	if err := p.expectWord("WHERE"); err != nil {
		return err
	}
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	for {
		t, ok := p.peek()
		if !ok {
			return fmt.Errorf("sparql: unterminated WHERE block")
		}
		if t.kind == tokPunct && t.text == "}" {
			p.i++
			break
		}
		if t.kind == tokPunct && t.text == "." {
			p.i++
			continue
		}
		tp, err := p.parsePattern()
		if err != nil {
			return err
		}
		p.q.Where = append(p.q.Where, tp)
	}
	if star {
		p.q.Select = p.q.Vars()
	}
	if t, ok := p.peek(); ok {
		return fmt.Errorf("sparql: trailing content near offset %d", t.pos)
	}
	return nil
}

func (p *qparser) parsePrefix() error {
	t, ok := p.next()
	if !ok || t.kind != tokWord {
		return fmt.Errorf("sparql: expected prefix name after PREFIX")
	}
	name := strings.TrimSuffix(t.text, ":")
	iri, ok := p.next()
	if !ok || iri.kind != tokIRI {
		return fmt.Errorf("sparql: expected IRI after PREFIX %s:", name)
	}
	p.q.Prefixes[name] = iri.text
	return nil
}

func (p *qparser) parsePattern() (TriplePattern, error) {
	s, err := p.parseNode(false)
	if err != nil {
		return TriplePattern{}, err
	}
	pr, err := p.parseNode(true)
	if err != nil {
		return TriplePattern{}, err
	}
	o, err := p.parseNode(false)
	if err != nil {
		return TriplePattern{}, err
	}
	return TriplePattern{S: s, P: pr, O: o}, nil
}

func (p *qparser) parseNode(propertyPos bool) (Node, error) {
	t, ok := p.next()
	if !ok {
		return Node{}, fmt.Errorf("sparql: unexpected end of pattern")
	}
	switch t.kind {
	case tokVar:
		return VarNode(Var(t.text)), nil
	case tokIRI:
		return TermNode(rdf.NewIRI(t.text)), nil
	case tokLit:
		return TermNode(t.term), nil
	case tokWord:
		if propertyPos && t.text == "a" {
			return TermNode(rdf.Type), nil
		}
		if strings.HasPrefix(t.text, "_:") {
			return TermNode(rdf.NewBlank(t.text[2:])), nil
		}
		if prefix, local, found := strings.Cut(t.text, ":"); found {
			ns, ok := p.q.Prefixes[prefix]
			if !ok {
				return Node{}, fmt.Errorf("sparql: undeclared prefix %q near offset %d", prefix, t.pos)
			}
			return TermNode(rdf.NewIRI(ns + local)), nil
		}
		return Node{}, fmt.Errorf("sparql: unexpected word %q near offset %d", t.text, t.pos)
	default:
		return Node{}, fmt.Errorf("sparql: unexpected token %q near offset %d", t.text, t.pos)
	}
}
