package sparql

import (
	"strings"
	"testing"

	"repro/internal/dict"
	"repro/internal/rdf"
)

func TestParseBasic(t *testing.T) {
	q, err := Parse(`
		PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
		SELECT ?x ?y WHERE {
			?x rdf:type ?y .
			?x ub:memberOf <http://www.Department0.University0.edu> .
		}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Select) != 2 || q.Select[0] != "x" || q.Select[1] != "y" {
		t.Errorf("Select = %v", q.Select)
	}
	if len(q.Where) != 2 {
		t.Fatalf("Where has %d patterns", len(q.Where))
	}
	if q.Where[0].P.Term != rdf.Type {
		t.Errorf("rdf:type not resolved: %v", q.Where[0].P)
	}
	if q.Where[1].P.Term.Value != "http://swat.cse.lehigh.edu/onto/univ-bench.owl#memberOf" {
		t.Errorf("prefixed name not resolved: %v", q.Where[1].P)
	}
	if q.Where[1].O.Term.Value != "http://www.Department0.University0.edu" {
		t.Errorf("IRI object wrong: %v", q.Where[1].O)
	}
}

func TestParseAKeyword(t *testing.T) {
	q := MustParse(`SELECT ?x WHERE { ?x a <http://x/C> . }`)
	if q.Where[0].P.Term != rdf.Type {
		t.Error("'a' did not resolve to rdf:type")
	}
}

func TestParseSelectStar(t *testing.T) {
	q := MustParse(`SELECT * WHERE { ?a <http://x/p> ?b . ?b <http://x/q> ?c }`)
	if len(q.Select) != 3 || q.Select[0] != "a" || q.Select[1] != "b" || q.Select[2] != "c" {
		t.Errorf("SELECT * expanded to %v", q.Select)
	}
}

func TestParseLiterals(t *testing.T) {
	q := MustParse(`SELECT ?x WHERE {
		?x <http://x/year> 1996 .
		?x <http://x/title> "Game of Thrones" .
		?x <http://x/note> "bonjour"@fr .
		?x <http://x/count> "7"^^<http://www.w3.org/2001/XMLSchema#integer> .
	}`)
	if got := q.Where[0].O.Term; got != rdf.NewTypedLiteral("1996", rdf.XSDInteger) {
		t.Errorf("integer literal = %v", got)
	}
	if got := q.Where[1].O.Term; got != rdf.NewLiteral("Game of Thrones") {
		t.Errorf("string literal = %v", got)
	}
	if got := q.Where[2].O.Term; got != rdf.NewLangLiteral("bonjour", "fr") {
		t.Errorf("lang literal = %v", got)
	}
	if got := q.Where[3].O.Term; got != rdf.NewTypedLiteral("7", rdf.XSDInteger) {
		t.Errorf("typed literal = %v", got)
	}
}

func TestParseAsk(t *testing.T) {
	q := MustParse(`ASK WHERE { ?x rdf:type <http://x/C> . }`)
	if !q.Ask || len(q.Select) != 0 {
		t.Errorf("ASK not recognized: %+v", q)
	}
	// Round trip.
	q2 := MustParse(q.String())
	if !q2.Ask {
		t.Error("ASK lost in serialization round trip")
	}
	// Encoded form has an empty head.
	d := dict.New()
	enc, err := Encode(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc.CQ.Head) != 0 {
		t.Errorf("ASK query head = %v, want empty", enc.CQ.Head)
	}
}

func TestParseBlankNode(t *testing.T) {
	q := MustParse(`SELECT ?x WHERE { ?x <http://x/p> _:b1 . _:b1 <http://x/q> ?y }`)
	if !q.Where[0].O.Term.IsBlank() {
		t.Error("blank node object not parsed")
	}
}

func TestParseComments(t *testing.T) {
	q := MustParse("SELECT ?x WHERE { # inline comment\n ?x <http://x/p> ?y . }")
	if len(q.Where) != 1 {
		t.Error("comment broke parsing")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELECT WHERE { ?x <p> ?y }`,             // no vars, no star
		`SELECT ?x WHERE { ?x <http://x/p> }`,    // incomplete pattern
		`SELECT ?x WHERE { ?x <http://x/p> ?y `,  // unterminated block
		`SELECT ?z WHERE { ?x <http://x/p> ?y }`, // head var not in body
		`SELECT ?x WHERE { ?x und:p ?y }`,        // undeclared prefix
		`SELECT ?x WHERE { ?x <http://x/p> ?y } trailing`,
		`SELECT ?x WHERE { }`, // empty BGP
	}
	for _, text := range bad {
		if _, err := Parse(text); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", text)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	src := `PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
SELECT ?x ?y WHERE {
  ?x rdf:type ?y .
  ?x ub:memberOf <http://www.Department0.University0.edu> .
  ?x ub:name "Alice" .
}`
	q1 := MustParse(src)
	q2 := MustParse(q1.String())
	if len(q1.Where) != len(q2.Where) {
		t.Fatalf("round trip changed pattern count: %d vs %d", len(q1.Where), len(q2.Where))
	}
	for i := range q1.Where {
		if q1.Where[i] != q2.Where[i] {
			t.Errorf("pattern %d changed: %v vs %v", i, q1.Where[i], q2.Where[i])
		}
	}
	if strings.Join(varsToStrings(q1.Select), ",") != strings.Join(varsToStrings(q2.Select), ",") {
		t.Errorf("head changed: %v vs %v", q1.Select, q2.Select)
	}
}

func varsToStrings(vs []Var) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = string(v)
	}
	return out
}

func TestEncode(t *testing.T) {
	d := dict.New()
	q := MustParse(`SELECT ?x ?y WHERE { ?x rdf:type ?y . ?x <http://x/p> "v" . }`)
	enc, err := Encode(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc.CQ.Head) != 2 || !enc.CQ.Head[0].Var || !enc.CQ.Head[1].Var {
		t.Fatalf("head = %v", enc.CQ.Head)
	}
	if enc.CQ.Head[0].ID != 0 || enc.CQ.Head[1].ID != 1 {
		t.Errorf("head variables not numbered in head order: %v", enc.CQ.Head)
	}
	if enc.NameOf(0) != "x" || enc.NameOf(1) != "y" {
		t.Errorf("VarNames = %v", enc.VarNames)
	}
	// Constants must decode back through the dictionary.
	typeAtom := enc.CQ.Atoms[0]
	if typeAtom.P.Var {
		t.Fatal("rdf:type encoded as a variable")
	}
	if d.Term(typeAtom.P.Const()) != rdf.Type {
		t.Error("rdf:type round trip failed")
	}
}

func TestEncodeBlankNodesBecomeVariables(t *testing.T) {
	d := dict.New()
	q := MustParse(`SELECT ?x WHERE { ?x <http://x/p> _:b . _:b <http://x/q> ?x }`)
	enc, err := Encode(q, d)
	if err != nil {
		t.Fatal(err)
	}
	o := enc.CQ.Atoms[0].O
	s := enc.CQ.Atoms[1].S
	if !o.Var || !s.Var {
		t.Fatal("blank node not encoded as a variable")
	}
	if o.ID != s.ID {
		t.Error("the same blank node got two different variables")
	}
	if o.ID == enc.CQ.Head[0].ID {
		t.Error("blank node variable collides with a distinguished variable")
	}
}

func TestEncodeSharedVariableIDs(t *testing.T) {
	d := dict.New()
	q := MustParse(`SELECT ?x WHERE { ?x <http://x/p> ?y . ?y <http://x/q> ?x }`)
	enc, err := Encode(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if enc.CQ.Atoms[0].S.ID != enc.CQ.Atoms[1].O.ID {
		t.Error("?x got two IDs")
	}
	if enc.CQ.Atoms[0].O.ID != enc.CQ.Atoms[1].S.ID {
		t.Error("?y got two IDs")
	}
}

func TestNameOfFresh(t *testing.T) {
	enc := Encoded{VarNames: []Var{"x"}}
	if enc.NameOf(0) != "x" {
		t.Error("NameOf(0) wrong")
	}
	if enc.NameOf(7) != "fresh7" {
		t.Errorf("NameOf(7) = %q", enc.NameOf(7))
	}
}

func TestVarsOrder(t *testing.T) {
	q := MustParse(`SELECT ?b WHERE { ?a <http://x/p> ?b . ?c <http://x/q> ?a }`)
	vars := q.Vars()
	want := []Var{"a", "b", "c"}
	if len(vars) != 3 {
		t.Fatalf("Vars = %v", vars)
	}
	for i := range want {
		if vars[i] != want[i] {
			t.Errorf("Vars[%d] = %v, want %v", i, vars[i], want[i])
		}
	}
}

// MustParse is the test-only convenience the production API deliberately
// does not provide: parse or panic.
func MustParse(text string) *Query {
	q, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return q
}
