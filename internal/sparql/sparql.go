// Package sparql implements the conjunctive subset of SPARQL the paper
// works with: Basic Graph Pattern (BGP) queries of the form
//
//	PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
//	SELECT ?x ?y WHERE {
//	  ?x rdf:type ?y .
//	  ?x ub:memberOf <http://www.Department0.University0.edu> .
//	}
//
// i.e. the q(x̄) :- t1, …, tα conjunctive queries of Section 2.2. The
// package provides the surface AST, a parser, a serializer, and the
// encoder that turns a surface query into the dictionary-encoded bgp.CQ
// the rest of the stack operates on. Blank nodes in queries are replaced
// by fresh non-distinguished variables, as query evaluation treats the
// two identically (Section 2.2).
package sparql

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bgp"
	"repro/internal/dict"
	"repro/internal/rdf"
)

// Var is a SPARQL variable name, without the leading '?'.
type Var string

// Node is one position of a surface triple pattern: either a variable
// (Var non-empty) or a constant term.
type Node struct {
	Var  Var
	Term rdf.Term
}

// IsVar reports whether the node is a variable.
func (n Node) IsVar() bool { return n.Var != "" }

// VarNode returns a variable node.
func VarNode(v Var) Node { return Node{Var: v} }

// TermNode returns a constant node.
func TermNode(t rdf.Term) Node { return Node{Term: t} }

// TriplePattern is a surface triple pattern.
type TriplePattern struct {
	S, P, O Node
}

// Query is a parsed BGP query.
type Query struct {
	// Select lists the distinguished variables in head order. A parsed
	// "SELECT *" expands to every variable in order of first appearance.
	// Empty for ASK queries.
	Select []Var
	// Ask marks a boolean query (the x̄ = ∅ case of Section 2.2): the
	// answer is whether any assignment satisfies the BGP.
	Ask bool
	// Where is the BGP: the conjunction of triple patterns.
	Where []TriplePattern
	// Prefixes records the PREFIX declarations seen at parse time, for
	// round-trip serialization.
	Prefixes map[string]string
}

// Vars returns every variable of the BGP in order of first appearance.
func (q *Query) Vars() []Var {
	var out []Var
	seen := make(map[Var]bool)
	add := func(n Node) {
		if n.IsVar() && !seen[n.Var] {
			seen[n.Var] = true
			out = append(out, n.Var)
		}
	}
	for _, tp := range q.Where {
		add(tp.S)
		add(tp.P)
		add(tp.O)
	}
	return out
}

// Validate checks that the query is a well-formed BGP query: at least one
// triple pattern, and every distinguished variable occurs in the body.
func (q *Query) Validate() error {
	if len(q.Where) == 0 {
		return fmt.Errorf("sparql: query has no triple patterns")
	}
	if q.Ask && len(q.Select) > 0 {
		return fmt.Errorf("sparql: ASK query cannot have distinguished variables")
	}
	body := make(map[Var]bool)
	for _, v := range q.Vars() {
		body[v] = true
	}
	for _, v := range q.Select {
		if !body[v] {
			return fmt.Errorf("sparql: distinguished variable ?%s does not occur in the query body", v)
		}
	}
	return nil
}

// String serializes the query back to SPARQL text.
func (q *Query) String() string {
	var b strings.Builder
	prefixes := make([]string, 0, len(q.Prefixes))
	for p := range q.Prefixes {
		prefixes = append(prefixes, p)
	}
	sort.Strings(prefixes)
	for _, p := range prefixes {
		fmt.Fprintf(&b, "PREFIX %s: <%s>\n", p, q.Prefixes[p])
	}
	if q.Ask {
		b.WriteString("ASK")
	} else {
		b.WriteString("SELECT")
		if len(q.Select) == 0 {
			b.WriteString(" *")
		}
		for _, v := range q.Select {
			b.WriteString(" ?")
			b.WriteString(string(v))
		}
	}
	b.WriteString(" WHERE {\n")
	for _, tp := range q.Where {
		b.WriteString("  ")
		b.WriteString(q.nodeString(tp.S))
		b.WriteByte(' ')
		b.WriteString(q.nodeString(tp.P))
		b.WriteByte(' ')
		b.WriteString(q.nodeString(tp.O))
		b.WriteString(" .\n")
	}
	b.WriteString("}")
	return b.String()
}

func (q *Query) nodeString(n Node) string {
	if n.IsVar() {
		return "?" + string(n.Var)
	}
	if n.Term.IsIRI() {
		for p, ns := range q.Prefixes {
			if rest, ok := strings.CutPrefix(n.Term.Value, ns); ok && !strings.ContainsAny(rest, "/#") {
				return p + ":" + rest
			}
		}
	}
	return n.Term.Canonical()
}

// Encoded is a dictionary-encoded query together with the mapping from
// variable numbers back to surface names.
type Encoded struct {
	CQ       bgp.CQ
	VarNames []Var // VarNames[i] is the surface name of variable i
}

// NameOf returns the surface name of encoded variable v, or a generated
// name for fresh variables introduced after encoding.
func (e Encoded) NameOf(v uint32) Var {
	if int(v) < len(e.VarNames) {
		return e.VarNames[v]
	}
	return Var(fmt.Sprintf("fresh%d", v))
}

// Encode turns the query into a bgp.CQ over d, assigning variable numbers
// in order of first appearance (distinguished variables first, in head
// order, so head positions are stable) and dictionary codes to constants.
// Blank-node constants become fresh non-distinguished variables.
func Encode(q *Query, d *dict.Dict) (Encoded, error) {
	if err := q.Validate(); err != nil {
		return Encoded{}, err
	}
	varID := make(map[Var]uint32)
	var names []Var
	intern := func(v Var) uint32 {
		id, ok := varID[v]
		if !ok {
			id = uint32(len(names))
			varID[v] = id
			names = append(names, v)
		}
		return id
	}
	for _, v := range q.Select {
		intern(v)
	}
	blankVar := make(map[string]uint32)
	node := func(n Node) bgp.Term {
		if n.IsVar() {
			return bgp.V(intern(n.Var))
		}
		if n.Term.IsBlank() {
			id, ok := blankVar[n.Term.Value]
			if !ok {
				v := Var("_b_" + n.Term.Value)
				id = intern(v)
				blankVar[n.Term.Value] = id
			}
			return bgp.V(id)
		}
		return bgp.C(d.Encode(n.Term))
	}
	cq := bgp.CQ{}
	for _, tp := range q.Where {
		cq.Atoms = append(cq.Atoms, bgp.Atom{S: node(tp.S), P: node(tp.P), O: node(tp.O)})
	}
	for _, v := range q.Select {
		cq.Head = append(cq.Head, bgp.V(varID[v]))
	}
	return Encoded{CQ: cq, VarNames: names}, nil
}
