// Package analyze provides static query analysis under RDFS constraints.
// Its central notion is the paper's footnote 3 (Section 5.1): a query
// triple is *redundant* when it can be inferred from the query's other
// triples based on the RDFS constraints — e.g. asking for "x a Person"
// alongside "x hasSocialSecurityNumber y" when only people have such
// numbers. The paper designs its benchmark queries so that no triple is
// redundant; this package checks that property (and is used by the test
// suite to verify this reproduction's query sets meet it).
package analyze

import (
	"repro/internal/bgp"
	"repro/internal/dict"
	"repro/internal/saturate"
	"repro/internal/schema"
	"repro/internal/storage"
)

// frozenBase maps query variables into a dictionary ID range that cannot
// collide with real constants (dictionary IDs grow from 1; queries never
// carry billions of constants).
//
//lint:ignore dictid deliberate sentinel base far outside any ID the dictionary can assign
const frozenBase dict.ID = 1 << 30

// RedundantAtoms returns the indexes of the atoms of q that are entailed
// by the query's remaining atoms under the closed schema — atoms whose
// removal leaves the query equivalent. The check is the
// canonical-instance chase: the other atoms are frozen into facts
// (variables become fresh constants), saturated with the schema, and the
// candidate atom is matched against the result. Only the candidate's
// *exclusive non-distinguished* variables are existentials: a variable
// that is distinguished (in the head) or shared with another atom is
// pinned, since its binding contributes to the answers. The check is
// sound (a reported atom is always redundant); like any
// homomorphism-free containment test it may miss redundancies that
// require remapping shared variables.
func RedundantAtoms(q bgp.CQ, sch *schema.Closed) []int {
	distinguished := make(map[uint32]bool)
	for _, h := range q.Head {
		if h.Var {
			distinguished[h.ID] = true
		}
	}
	var out []int
	for i := range q.Atoms {
		rest := make([]bgp.Atom, 0, len(q.Atoms)-1)
		for j, a := range q.Atoms {
			if j != i {
				rest = append(rest, a)
			}
		}
		if Entails(rest, q.Atoms[i], distinguished, sch) {
			out = append(out, i)
		}
	}
	return out
}

// Entails reports whether the conjunction of atoms entails the candidate
// atom under the closed schema, by the frozen-instance chase described on
// RedundantAtoms. Variables in pinned (and variables the candidate shares
// with atoms) are treated as fixed constants; the candidate's remaining
// variables are existentials.
func Entails(atoms []bgp.Atom, candidate bgp.Atom, pinned map[uint32]bool, sch *schema.Closed) bool {
	freeze := func(t bgp.Term) dict.ID {
		if t.Var {
			return frozenBase + dict.ID(t.ID)
		}
		return t.Const()
	}
	facts := make([]storage.Triple, 0, len(atoms))
	for _, a := range atoms {
		facts = append(facts, storage.Triple{S: freeze(a.S), P: freeze(a.P), O: freeze(a.O)})
	}
	st, _ := saturate.Store(facts, sch)

	// Candidate positions: pinned variables, variables appearing in the
	// other atoms, and constants are fixed; exclusive variables are
	// existentials (wildcards, with repeated-variable equality).
	shared := make(map[uint32]bool, len(pinned))
	for v, ok := range pinned {
		if ok {
			shared[v] = true
		}
	}
	var buf []uint32
	for _, a := range atoms {
		buf = a.Vars(buf[:0])
		for _, v := range buf {
			shared[v] = true
		}
	}
	fix := func(t bgp.Term) dict.ID {
		if t.Var && !shared[t.ID] {
			return dict.None // existential
		}
		return freeze(t)
	}
	pat := storage.Pattern{S: fix(candidate.S), P: fix(candidate.P), O: fix(candidate.O)}

	// Equality constraints between existential positions with the same
	// variable.
	type pos uint8
	var exVars []uint32
	var exPos []pos
	record := func(t bgp.Term, p pos) {
		if t.Var && !shared[t.ID] {
			exVars = append(exVars, t.ID)
			exPos = append(exPos, p)
		}
	}
	record(candidate.S, 0)
	record(candidate.P, 1)
	record(candidate.O, 2)

	found := false
	st.Scan(pat, func(tr storage.Triple) bool {
		vals := [3]dict.ID{tr.S, tr.P, tr.O}
		bound := make(map[uint32]dict.ID, len(exVars))
		ok := true
		for k, v := range exVars {
			val := vals[exPos[k]]
			if prev, seen := bound[v]; seen && prev != val {
				ok = false
				break
			}
			bound[v] = val
		}
		if ok {
			found = true
			return false
		}
		return true
	})
	return found
}
