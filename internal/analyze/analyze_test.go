package analyze_test

import (
	"testing"

	"repro/internal/analyze"
	"repro/internal/benchkit"
	"repro/internal/bgp"
	"repro/internal/dict"
	"repro/internal/rdf"
	"repro/internal/schema"
	"repro/internal/testkit"
)

// The paper's footnote-3 example: "when looking for x such that x is a
// person and x has a social security number, if we know that only people
// have such numbers, the triple 'x is a person' is redundant".
func TestPaperFootnoteExample(t *testing.T) {
	d := dict.New()
	vocab := schema.EncodeVocab(d)
	sch := schema.New(vocab)
	person := d.Encode(rdf.NewIRI("http://x/Person"))
	hasSSN := d.Encode(rdf.NewIRI("http://x/hasSSN"))
	sch.AddDomain(hasSSN, person)
	closed := sch.Close()

	q := bgp.CQ{
		Head: []bgp.Term{bgp.V(0)},
		Atoms: []bgp.Atom{
			{S: bgp.V(0), P: bgp.C(vocab.Type), O: bgp.C(person)}, // redundant
			{S: bgp.V(0), P: bgp.C(hasSSN), O: bgp.V(1)},
		},
	}
	red := analyze.RedundantAtoms(q, closed)
	if len(red) != 1 || red[0] != 0 {
		t.Errorf("RedundantAtoms = %v, want [0]", red)
	}
}

func TestSubclassRedundancy(t *testing.T) {
	e := testkit.Paper()
	book, pub := e.ID("Book"), e.ID("Publication")
	// (x type Publication) is implied by (x type Book).
	q := bgp.CQ{
		Head: []bgp.Term{bgp.V(0)},
		Atoms: []bgp.Atom{
			{S: bgp.V(0), P: bgp.C(e.Vocab.Type), O: bgp.C(book)},
			{S: bgp.V(0), P: bgp.C(e.Vocab.Type), O: bgp.C(pub)}, // redundant
		},
	}
	red := analyze.RedundantAtoms(q, e.Closed)
	if len(red) != 1 || red[0] != 1 {
		t.Errorf("RedundantAtoms = %v, want [1]", red)
	}
}

func TestSubpropertyRedundancy(t *testing.T) {
	e := testkit.Paper()
	writtenBy, hasAuthor := e.ID("writtenBy"), e.ID("hasAuthor")
	q := bgp.CQ{
		Head: []bgp.Term{bgp.V(0)},
		Atoms: []bgp.Atom{
			{S: bgp.V(0), P: bgp.C(writtenBy), O: bgp.V(1)},
			{S: bgp.V(0), P: bgp.C(hasAuthor), O: bgp.V(1)}, // redundant
		},
	}
	red := analyze.RedundantAtoms(q, e.Closed)
	if len(red) != 1 || red[0] != 1 {
		t.Errorf("RedundantAtoms = %v, want [1]", red)
	}
	// But with a *different* object variable appearing elsewhere, the
	// hasAuthor atom is NOT redundant (it constrains a shared variable).
	q2 := bgp.CQ{
		Head: []bgp.Term{bgp.V(0), bgp.V(2)},
		Atoms: []bgp.Atom{
			{S: bgp.V(0), P: bgp.C(writtenBy), O: bgp.V(1)},
			{S: bgp.V(0), P: bgp.C(hasAuthor), O: bgp.V(2)},
			{S: bgp.V(2), P: bgp.C(e.ID("hasName")), O: bgp.V(3)},
		},
	}
	if red := analyze.RedundantAtoms(q2, e.Closed); len(red) != 0 {
		t.Errorf("constraining atom reported redundant: %v", red)
	}
}

func TestRangeRedundancy(t *testing.T) {
	e := testkit.Paper()
	q := bgp.CQ{
		Head: []bgp.Term{bgp.V(1)},
		Atoms: []bgp.Atom{
			{S: bgp.V(0), P: bgp.C(e.ID("writtenBy")), O: bgp.V(1)},
			{S: bgp.V(1), P: bgp.C(e.Vocab.Type), O: bgp.C(e.ID("Person"))}, // redundant: range
		},
	}
	red := analyze.RedundantAtoms(q, e.Closed)
	if len(red) != 1 || red[0] != 1 {
		t.Errorf("RedundantAtoms = %v, want [1]", red)
	}
}

func TestNoFalsePositives(t *testing.T) {
	e := testkit.Paper()
	q := bgp.CQ{
		Head: []bgp.Term{bgp.V(0)},
		Atoms: []bgp.Atom{
			{S: bgp.V(0), P: bgp.C(e.ID("hasTitle")), O: bgp.V(1)},
			{S: bgp.V(0), P: bgp.C(e.ID("publishedIn")), O: bgp.V(2)},
		},
	}
	if red := analyze.RedundantAtoms(q, e.Closed); len(red) != 0 {
		t.Errorf("independent atoms reported redundant: %v", red)
	}
}

// The paper designs its benchmark queries so that no triple is redundant
// (Section 5.1 criterion (iv)); ours must satisfy the same criterion.
func TestBenchmarkQueriesHaveNoRedundantTriples(t *testing.T) {
	lubmDB, err := benchkit.BuildLUBM(benchkit.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	dblpDB, err := benchkit.BuildDBLP(benchkit.ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	for _, db := range []*benchkit.Database{lubmDB, dblpDB} {
		for i, spec := range db.Specs {
			red := analyze.RedundantAtoms(db.Encoded[i], db.Closed)
			if len(red) != 0 {
				t.Errorf("%s %s has redundant triples %v", db.Name, spec.Name, red)
			}
		}
	}
}
