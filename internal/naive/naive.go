// Package naive is the executable specification of query evaluation: a
// direct transcription of the evaluation semantics of Section 2.2 of the
// paper (total assignments from query variables to database values), with
// no indexes beyond the store's pattern scans, no join reordering and no
// cost model. It exists to differential-test the optimized engine and the
// reformulation algorithms — every fast path in this repository must agree
// with this package — and as a readable reference for what the answers
// *mean*.
package naive

import (
	"sort"

	"repro/internal/bgp"
	"repro/internal/dict"
	"repro/internal/storage"
)

// Row is one answer tuple: the values of the head terms, in head order.
type Row []dict.ID

// Rows is an answer set under set semantics, sorted lexicographically for
// deterministic comparison.
type Rows []Row

// EvalCQ evaluates a conjunctive query against the store by backtracking
// over total assignments (Section 2.2's μ), returning the deduplicated,
// sorted answer set.
func EvalCQ(st *storage.Store, q bgp.CQ) Rows {
	set := make(map[string]Row)
	bind := make(map[uint32]dict.ID)
	evalAtoms(st, q.Atoms, bind, func() {
		row := make(Row, len(q.Head))
		for i, h := range q.Head {
			if h.Var {
				row[i] = bind[h.ID]
			} else {
				row[i] = h.Const()
			}
		}
		set[rowKey(row)] = row
	})
	return collect(set)
}

// EvalUCQ evaluates a union of conjunctive queries under set semantics.
func EvalUCQ(st *storage.Store, u bgp.UCQ) Rows {
	set := make(map[string]Row)
	for _, cq := range u.CQs {
		for _, row := range EvalCQ(st, cq) {
			set[rowKey(row)] = row
		}
	}
	return collect(set)
}

// EvalJUCQ evaluates a join of UCQs: each arm is evaluated as a set, arms
// are joined pairwise on their shared variables, and the result is
// projected on the JUCQ head.
func EvalJUCQ(st *storage.Store, j bgp.JUCQ) Rows {
	if len(j.Arms) == 0 {
		return nil
	}
	type rel struct {
		vars []uint32
		rows Rows
	}
	cur := rel{vars: j.Arms[0].Vars, rows: EvalUCQ(st, j.Arms[0])}
	for _, arm := range j.Arms[1:] {
		right := rel{vars: arm.Vars, rows: EvalUCQ(st, arm)}
		// Positions of the shared variables in each side.
		var li, ri []int
		rpos := make(map[uint32]int)
		for i, v := range right.vars {
			rpos[v] = i
		}
		seen := make(map[uint32]bool)
		for i, v := range cur.vars {
			if p, ok := rpos[v]; ok && !seen[v] {
				seen[v] = true
				li = append(li, i)
				ri = append(ri, p)
			}
		}
		// Output schema: left vars then right-only vars.
		outVars := append([]uint32(nil), cur.vars...)
		var rightOnly []int
		for i, v := range right.vars {
			if !containsVar(cur.vars, v) {
				outVars = append(outVars, v)
				rightOnly = append(rightOnly, i)
			}
		}
		joined := make(map[string]Row)
		for _, lr := range cur.rows {
			for _, rr := range right.rows {
				ok := true
				for k := range li {
					if lr[li[k]] != rr[ri[k]] {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				row := make(Row, 0, len(outVars))
				row = append(row, lr...)
				for _, i := range rightOnly {
					row = append(row, rr[i])
				}
				joined[rowKey(row)] = row
			}
		}
		cur = rel{vars: outVars, rows: collect(joined)}
	}
	// Project on the head.
	pos := make(map[uint32]int)
	for i, v := range cur.vars {
		pos[v] = i
	}
	set := make(map[string]Row, len(cur.rows))
	for _, r := range cur.rows {
		row := make(Row, len(j.Head))
		for i, v := range j.Head {
			row[i] = r[pos[v]]
		}
		set[rowKey(row)] = row
	}
	return collect(set)
}

func containsVar(vs []uint32, v uint32) bool {
	for _, x := range vs {
		if x == v {
			return true
		}
	}
	return false
}

// evalAtoms backtracks over the atoms left to match, calling emit once per
// total assignment.
func evalAtoms(st *storage.Store, atoms []bgp.Atom, bind map[uint32]dict.ID, emit func()) {
	if len(atoms) == 0 {
		emit()
		return
	}
	a := atoms[0]
	pat := storage.Pattern{}
	fix := func(t bgp.Term) dict.ID {
		if !t.Var {
			return t.Const()
		}
		return bind[t.ID] // dict.None when unbound
	}
	pat.S, pat.P, pat.O = fix(a.S), fix(a.P), fix(a.O)
	st.Scan(pat, func(tr storage.Triple) bool {
		vals := [3]dict.ID{tr.S, tr.P, tr.O}
		terms := a.Positions()
		var newly []uint32
		ok := true
		for i, t := range terms {
			if !t.Var {
				continue
			}
			if v, bound := bind[t.ID]; bound {
				if v != vals[i] {
					ok = false
					break
				}
			} else {
				bind[t.ID] = vals[i]
				newly = append(newly, t.ID)
			}
		}
		if ok {
			evalAtoms(st, atoms[1:], bind, emit)
		}
		for _, v := range newly {
			delete(bind, v)
		}
		return true
	})
}

func rowKey(r Row) string {
	b := make([]byte, 0, len(r)*4)
	for _, v := range r {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}

func collect(set map[string]Row) Rows {
	out := make(Rows, 0, len(set))
	for _, r := range set {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return lessRow(out[i], out[j]) })
	return out
}

func lessRow(a, b Row) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// Equal reports whether two answer sets (as returned by the Eval
// functions: sorted, deduplicated) are identical.
func Equal(a, b Rows) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}
