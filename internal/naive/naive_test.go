package naive

import (
	"testing"

	"repro/internal/bgp"
	"repro/internal/dict"
	"repro/internal/storage"
)

func store(ts ...storage.Triple) *storage.Store {
	b := storage.NewBuilder()
	for _, t := range ts {
		b.Add(t)
	}
	return b.Build()
}

func TestEvalCQSingleAtom(t *testing.T) {
	st := store(
		storage.Triple{S: 1, P: 10, O: 2},
		storage.Triple{S: 1, P: 10, O: 3},
		storage.Triple{S: 4, P: 11, O: 5},
	)
	q := bgp.CQ{
		Head:  []bgp.Term{bgp.V(0)},
		Atoms: []bgp.Atom{{S: bgp.V(1), P: bgp.C(10), O: bgp.V(0)}},
	}
	got := EvalCQ(st, q)
	want := Rows{{2}, {3}}
	if !Equal(got, want) {
		t.Errorf("EvalCQ = %v, want %v", got, want)
	}
}

func TestEvalCQJoin(t *testing.T) {
	st := store(
		storage.Triple{S: 1, P: 10, O: 2},
		storage.Triple{S: 2, P: 11, O: 3},
		storage.Triple{S: 2, P: 11, O: 4},
		storage.Triple{S: 5, P: 10, O: 6}, // 6 has no p11 edge
	)
	q := bgp.CQ{
		Head: []bgp.Term{bgp.V(0), bgp.V(2)},
		Atoms: []bgp.Atom{
			{S: bgp.V(0), P: bgp.C(10), O: bgp.V(1)},
			{S: bgp.V(1), P: bgp.C(11), O: bgp.V(2)},
		},
	}
	got := EvalCQ(st, q)
	want := Rows{{1, 3}, {1, 4}}
	if !Equal(got, want) {
		t.Errorf("EvalCQ = %v, want %v", got, want)
	}
}

func TestEvalCQRepeatedVariable(t *testing.T) {
	st := store(
		storage.Triple{S: 1, P: 10, O: 1}, // self loop
		storage.Triple{S: 1, P: 10, O: 2},
	)
	q := bgp.CQ{
		Head:  []bgp.Term{bgp.V(0)},
		Atoms: []bgp.Atom{{S: bgp.V(0), P: bgp.C(10), O: bgp.V(0)}},
	}
	got := EvalCQ(st, q)
	want := Rows{{1}}
	if !Equal(got, want) {
		t.Errorf("repeated-variable EvalCQ = %v, want %v", got, want)
	}
}

func TestEvalCQConstantHead(t *testing.T) {
	st := store(storage.Triple{S: 1, P: 10, O: 2})
	q := bgp.CQ{
		Head:  []bgp.Term{bgp.V(0), bgp.C(dict.ID(42))},
		Atoms: []bgp.Atom{{S: bgp.V(0), P: bgp.C(10), O: bgp.V(1)}},
	}
	got := EvalCQ(st, q)
	want := Rows{{1, 42}}
	if !Equal(got, want) {
		t.Errorf("constant-head EvalCQ = %v, want %v", got, want)
	}
}

func TestEvalCQSetSemantics(t *testing.T) {
	st := store(
		storage.Triple{S: 1, P: 10, O: 2},
		storage.Triple{S: 1, P: 10, O: 3},
	)
	// Projecting away the object should collapse the two matches.
	q := bgp.CQ{
		Head:  []bgp.Term{bgp.V(0)},
		Atoms: []bgp.Atom{{S: bgp.V(0), P: bgp.C(10), O: bgp.V(1)}},
	}
	got := EvalCQ(st, q)
	if len(got) != 1 {
		t.Errorf("set semantics violated: %v", got)
	}
}

func TestEvalUCQ(t *testing.T) {
	st := store(
		storage.Triple{S: 1, P: 10, O: 2},
		storage.Triple{S: 3, P: 11, O: 4},
	)
	u := bgp.UCQ{
		Vars: []uint32{0},
		CQs: []bgp.CQ{
			{Head: []bgp.Term{bgp.V(0)}, Atoms: []bgp.Atom{{S: bgp.V(0), P: bgp.C(10), O: bgp.V(1)}}},
			{Head: []bgp.Term{bgp.V(0)}, Atoms: []bgp.Atom{{S: bgp.V(0), P: bgp.C(11), O: bgp.V(1)}}},
			// Overlapping member: duplicates must collapse.
			{Head: []bgp.Term{bgp.V(0)}, Atoms: []bgp.Atom{{S: bgp.V(0), P: bgp.V(2), O: bgp.V(1)}}},
		},
	}
	got := EvalUCQ(st, u)
	want := Rows{{1}, {3}}
	if !Equal(got, want) {
		t.Errorf("EvalUCQ = %v, want %v", got, want)
	}
}

func TestEvalJUCQ(t *testing.T) {
	st := store(
		storage.Triple{S: 1, P: 10, O: 2},
		storage.Triple{S: 2, P: 11, O: 3},
		storage.Triple{S: 7, P: 10, O: 8}, // no continuation
	)
	j := bgp.JUCQ{
		Head: []uint32{0, 2},
		Arms: []bgp.UCQ{
			{Vars: []uint32{0, 1}, CQs: []bgp.CQ{{
				Head:  []bgp.Term{bgp.V(0), bgp.V(1)},
				Atoms: []bgp.Atom{{S: bgp.V(0), P: bgp.C(10), O: bgp.V(1)}},
			}}},
			{Vars: []uint32{1, 2}, CQs: []bgp.CQ{{
				Head:  []bgp.Term{bgp.V(1), bgp.V(2)},
				Atoms: []bgp.Atom{{S: bgp.V(1), P: bgp.C(11), O: bgp.V(2)}},
			}}},
		},
	}
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
	got := EvalJUCQ(st, j)
	want := Rows{{1, 3}}
	if !Equal(got, want) {
		t.Errorf("EvalJUCQ = %v, want %v", got, want)
	}
}

// A JUCQ whose single arm is the whole query must equal plain CQ
// evaluation.
func TestEvalJUCQSingleArm(t *testing.T) {
	st := store(
		storage.Triple{S: 1, P: 10, O: 2},
		storage.Triple{S: 2, P: 11, O: 3},
	)
	cq := bgp.CQ{
		Head: []bgp.Term{bgp.V(0)},
		Atoms: []bgp.Atom{
			{S: bgp.V(0), P: bgp.C(10), O: bgp.V(1)},
			{S: bgp.V(1), P: bgp.C(11), O: bgp.V(2)},
		},
	}
	j := bgp.JUCQ{Head: []uint32{0}, Arms: []bgp.UCQ{{Vars: []uint32{0}, CQs: []bgp.CQ{cq}}}}
	if !Equal(EvalJUCQ(st, j), EvalCQ(st, cq)) {
		t.Error("single-arm JUCQ differs from CQ evaluation")
	}
}

func TestEqual(t *testing.T) {
	a := Rows{{1, 2}, {3, 4}}
	b := Rows{{1, 2}, {3, 4}}
	c := Rows{{1, 2}, {3, 5}}
	if !Equal(a, b) || Equal(a, c) || Equal(a, Rows{{1, 2}}) {
		t.Error("Equal is wrong")
	}
}
