package ntriples

import (
	"bytes"
	"io"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/rdf"
)

func TestParseLine(t *testing.T) {
	cases := []struct {
		line string
		want rdf.Triple
	}{
		{
			`<http://x/s> <http://x/p> <http://x/o> .`,
			rdf.NewTriple(rdf.NewIRI("http://x/s"), rdf.NewIRI("http://x/p"), rdf.NewIRI("http://x/o")),
		},
		{
			`_:b1 <http://x/p> "hello" .`,
			rdf.NewTriple(rdf.NewBlank("b1"), rdf.NewIRI("http://x/p"), rdf.NewLiteral("hello")),
		},
		{
			`<http://x/s> <http://x/p> "bonjour"@fr .`,
			rdf.NewTriple(rdf.NewIRI("http://x/s"), rdf.NewIRI("http://x/p"), rdf.NewLangLiteral("bonjour", "fr")),
		},
		{
			`<http://x/s> <http://x/p> "42"^^<http://www.w3.org/2001/XMLSchema#integer> .`,
			rdf.NewTriple(rdf.NewIRI("http://x/s"), rdf.NewIRI("http://x/p"), rdf.NewTypedLiteral("42", rdf.XSDInteger)),
		},
		{
			`<http://x/s> <http://x/p> "line\nbreak \"q\"" .`,
			rdf.NewTriple(rdf.NewIRI("http://x/s"), rdf.NewIRI("http://x/p"), rdf.NewLiteral("line\nbreak \"q\"")),
		},
		{
			`<http://x/s> <http://x/p> _:obj`,
			rdf.NewTriple(rdf.NewIRI("http://x/s"), rdf.NewIRI("http://x/p"), rdf.NewBlank("obj")),
		},
	}
	for _, c := range cases {
		got, err := ParseLine(c.line)
		if err != nil {
			t.Errorf("ParseLine(%q): %v", c.line, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseLine(%q) = %v, want %v", c.line, got, c.want)
		}
	}
}

func TestParseLineErrors(t *testing.T) {
	bad := []string{
		``,
		`<http://x/s>`,
		`<http://x/s> <http://x/p>`,
		`"lit" <http://x/p> <http://x/o> .`, // literal subject
		`<http://x/s> _:b <http://x/o> .`,   // blank property
		`<http://x/s> <http://x/p> "unterminated`,
		`<http://x/s <http://x/p> <http://x/o> .`,
		`<http://x/s> <http://x/p> <http://x/o> . extra`,
	}
	for _, line := range bad {
		if _, err := ParseLine(line); err == nil {
			t.Errorf("ParseLine(%q) succeeded, want error", line)
		}
	}
}

func TestReaderSkipsCommentsAndBlanks(t *testing.T) {
	in := "# comment\n\n<http://x/s> <http://x/p> <http://x/o> .\n  \n# another\n"
	r := NewReader(strings.NewReader(in))
	ts, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 1 {
		t.Fatalf("got %d triples, want 1", len(ts))
	}
}

func TestReaderErrorHasLineNumber(t *testing.T) {
	in := "<http://x/s> <http://x/p> <http://x/o> .\nbroken line\n"
	r := NewReader(strings.NewReader(in))
	if _, err := r.Read(); err != nil {
		t.Fatal(err)
	}
	_, err := r.Read()
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("want line-2 error, got %v", err)
	}
}

func TestReaderEOF(t *testing.T) {
	r := NewReader(strings.NewReader(""))
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("want io.EOF, got %v", err)
	}
}

// Write-then-read must reproduce every triple exactly, across random term
// shapes including escapes.
func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pieces := []string{"plain", "with space", "quote\"inside", "back\\slash", "new\nline", "tab\there", ""}
	randTerm := func(object bool) rdf.Term {
		switch rng.Intn(3) {
		case 0:
			return rdf.NewIRI("http://example.org/r" + pieces[rng.Intn(2)][:0] + "x")
		case 1:
			if !object {
				return rdf.NewBlank("b")
			}
			s := pieces[rng.Intn(len(pieces))]
			switch rng.Intn(3) {
			case 0:
				return rdf.NewLiteral(s)
			case 1:
				return rdf.NewLangLiteral(s, "en")
			default:
				return rdf.NewTypedLiteral(s, rdf.XSDString)
			}
		default:
			return rdf.NewBlank("b")
		}
	}
	var triples []rdf.Triple
	for i := 0; i < 200; i++ {
		tr := rdf.Triple{S: randTerm(false), P: rdf.NewIRI("http://x/p"), O: randTerm(true)}
		if tr.Validate() != nil {
			continue
		}
		triples = append(triples, tr)
	}

	var buf bytes.Buffer
	if err := NewWriter(&buf).WriteAll(triples); err != nil {
		t.Fatal(err)
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(triples) {
		t.Fatalf("round trip: got %d triples, want %d", len(got), len(triples))
	}
	for i := range got {
		if got[i] != triples[i] {
			t.Errorf("triple %d: got %v, want %v", i, got[i], triples[i])
		}
	}
}
