// Package ntriples reads and writes the N-Triples line-based RDF syntax,
// the interchange format the command-line tools use to load and dump
// datasets. The subset supported is what the workload generators emit and
// what public RDF dumps commonly use: IRIs, blank nodes, and literals with
// optional language tag or datatype; comments and blank lines are skipped.
package ntriples

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/rdf"
)

// Reader parses N-Triples from an input stream.
type Reader struct {
	scan *bufio.Scanner
	line int
}

// NewReader returns a Reader over r. Lines up to 1 MiB are supported.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &Reader{scan: sc}
}

// Read returns the next triple, io.EOF at end of input, or a parse error
// annotated with the line number.
func (r *Reader) Read() (rdf.Triple, error) {
	for r.scan.Scan() {
		r.line++
		line := strings.TrimSpace(r.scan.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		t, err := ParseLine(line)
		if err != nil {
			return rdf.Triple{}, fmt.Errorf("ntriples: line %d: %w", r.line, err)
		}
		return t, nil
	}
	if err := r.scan.Err(); err != nil {
		return rdf.Triple{}, err
	}
	return rdf.Triple{}, io.EOF
}

// ReadAll reads every remaining triple.
func (r *Reader) ReadAll() ([]rdf.Triple, error) {
	var out []rdf.Triple
	for {
		t, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
}

// ParseLine parses one N-Triples statement (with or without the final dot).
func ParseLine(line string) (rdf.Triple, error) {
	p := &parser{s: line}
	s, err := p.term()
	if err != nil {
		return rdf.Triple{}, fmt.Errorf("subject: %w", err)
	}
	pr, err := p.term()
	if err != nil {
		return rdf.Triple{}, fmt.Errorf("property: %w", err)
	}
	o, err := p.term()
	if err != nil {
		return rdf.Triple{}, fmt.Errorf("object: %w", err)
	}
	p.ws()
	if p.i < len(p.s) && p.s[p.i] == '.' {
		p.i++
	}
	p.ws()
	if p.i < len(p.s) {
		return rdf.Triple{}, fmt.Errorf("trailing content %q", p.s[p.i:])
	}
	t := rdf.Triple{S: s, P: pr, O: o}
	if err := t.Validate(); err != nil {
		return rdf.Triple{}, err
	}
	return t, nil
}

type parser struct {
	s string
	i int
}

func (p *parser) ws() {
	for p.i < len(p.s) && (p.s[p.i] == ' ' || p.s[p.i] == '\t') {
		p.i++
	}
}

func (p *parser) term() (rdf.Term, error) {
	p.ws()
	if p.i >= len(p.s) {
		return rdf.Term{}, fmt.Errorf("unexpected end of line")
	}
	switch p.s[p.i] {
	case '<':
		end := strings.IndexByte(p.s[p.i:], '>')
		if end < 0 {
			return rdf.Term{}, fmt.Errorf("unterminated IRI")
		}
		iri := p.s[p.i+1 : p.i+end]
		p.i += end + 1
		return rdf.NewIRI(iri), nil
	case '_':
		if p.i+1 >= len(p.s) || p.s[p.i+1] != ':' {
			return rdf.Term{}, fmt.Errorf("malformed blank node")
		}
		start := p.i + 2
		j := start
		for j < len(p.s) && !isSpaceOrDot(p.s[j]) {
			j++
		}
		label := p.s[start:j]
		if label == "" {
			return rdf.Term{}, fmt.Errorf("empty blank node label")
		}
		p.i = j
		return rdf.NewBlank(label), nil
	case '"':
		return p.literal()
	default:
		return rdf.Term{}, fmt.Errorf("unexpected character %q", p.s[p.i])
	}
}

func isSpaceOrDot(b byte) bool { return b == ' ' || b == '\t' || b == '.' }

func (p *parser) literal() (rdf.Term, error) {
	var b strings.Builder
	p.i++ // opening quote
	for p.i < len(p.s) {
		c := p.s[p.i]
		switch c {
		case '\\':
			if p.i+1 >= len(p.s) {
				return rdf.Term{}, fmt.Errorf("dangling escape")
			}
			p.i++
			switch p.s[p.i] {
			case 'n':
				b.WriteByte('\n')
			case 'r':
				b.WriteByte('\r')
			case 't':
				b.WriteByte('\t')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			default:
				return rdf.Term{}, fmt.Errorf("unsupported escape \\%c", p.s[p.i])
			}
			p.i++
		case '"':
			p.i++
			lex := b.String()
			// Optional @lang or ^^<datatype> suffix.
			if p.i < len(p.s) && p.s[p.i] == '@' {
				start := p.i + 1
				j := start
				for j < len(p.s) && !isSpaceOrDot(p.s[j]) {
					j++
				}
				p.i = j
				return rdf.NewLangLiteral(lex, p.s[start:j]), nil
			}
			if strings.HasPrefix(p.s[p.i:], "^^<") {
				start := p.i + 3
				end := strings.IndexByte(p.s[start:], '>')
				if end < 0 {
					return rdf.Term{}, fmt.Errorf("unterminated datatype IRI")
				}
				p.i = start + end + 1
				return rdf.NewTypedLiteral(lex, p.s[start:start+end]), nil
			}
			return rdf.NewLiteral(lex), nil
		default:
			b.WriteByte(c)
			p.i++
		}
	}
	return rdf.Term{}, fmt.Errorf("unterminated literal")
}

// Writer serializes triples as N-Triples.
type Writer struct {
	w *bufio.Writer
}

// NewWriter returns a Writer on w; call Flush when done.
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriter(w)} }

// Write emits one triple as a statement line.
func (w *Writer) Write(t rdf.Triple) error {
	if _, err := w.w.WriteString(t.S.Canonical()); err != nil {
		return err
	}
	w.w.WriteByte(' ')
	w.w.WriteString(t.P.Canonical())
	w.w.WriteByte(' ')
	w.w.WriteString(t.O.Canonical())
	_, err := w.w.WriteString(" .\n")
	return err
}

// WriteAll emits every triple, then flushes.
func (w *Writer) WriteAll(ts []rdf.Triple) error {
	for _, t := range ts {
		if err := w.Write(t); err != nil {
			return err
		}
	}
	return w.Flush()
}

// Flush flushes buffered output.
func (w *Writer) Flush() error { return w.w.Flush() }
