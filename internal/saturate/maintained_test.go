package saturate_test

import (
	"math/rand"
	"testing"

	"repro/internal/saturate"
	"repro/internal/storage"
	"repro/internal/testkit"
)

// The maintained store must equal bulk saturation of the current explicit
// set after any sequence of additions and removals — the delete-and-
// rederive invariant, property-tested over random databases and random
// update sequences.
func TestMaintainedMatchesBulk(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		e := testkit.Random(seed, 40)
		rng := rand.New(rand.NewSource(seed * 31))

		explicit := append([]storage.Triple(nil), e.Data...)
		m := saturate.NewMaintained(explicit, e.Closed)

		present := make(map[storage.Triple]bool)
		for _, tr := range explicit {
			present[tr] = true
		}
		var live []storage.Triple
		for tr := range present {
			live = append(live, tr)
		}

		for step := 0; step < 30; step++ {
			if rng.Intn(2) == 0 && len(live) > 0 {
				// Remove a random explicit triple.
				i := rng.Intn(len(live))
				tr := live[i]
				live = append(live[:i], live[i+1:]...)
				delete(present, tr)
				m.Remove(tr)
			} else {
				// Add a (possibly duplicate) data triple from a fresh
				// random draw over the same vocabulary.
				extra := testkit.Random(seed, 5).Data
				tr := extra[rng.Intn(len(extra))]
				if !present[tr] {
					present[tr] = true
					live = append(live, tr)
				}
				m.Add(tr)
			}

			// Compare against bulk saturation of the current explicit set.
			cur := make([]storage.Triple, 0, len(present))
			for tr := range present {
				cur = append(cur, tr)
			}
			want, _ := saturate.Store(cur, e.Closed)
			got := m.Store()
			if got.Len() != want.Len() {
				t.Fatalf("seed %d step %d: maintained store has %d triples, bulk %d",
					seed, step, got.Len(), want.Len())
			}
			for _, tr := range want.Triples() {
				if !got.Contains(tr) {
					t.Fatalf("seed %d step %d: maintained store missing %v", seed, step, tr)
				}
			}
		}
	}
}

func TestMaintainedRemoveKeepsSharedConsequences(t *testing.T) {
	e := testkit.Paper()
	writtenBy := e.ID("writtenBy")
	book := e.ID("Book")
	doi1 := e.ID("doi1")
	doi2 := e.ID("doi2")
	other := e.ID("other")

	// Two explicit writtenBy triples both imply doi1's typing? No — use
	// two triples whose consequences overlap: doi1 writtenBy b and
	// doi1 writtenBy c both imply (doi1 type Book).
	t1 := storage.Triple{S: doi1, P: writtenBy, O: doi2}
	t2 := storage.Triple{S: doi1, P: writtenBy, O: other}
	m := saturate.NewMaintained([]storage.Triple{t1, t2}, e.Closed)

	typeBook := storage.Triple{S: doi1, P: e.Vocab.Type, O: book}
	if !m.Store().Contains(typeBook) {
		t.Fatal("domain typing not derived")
	}
	m.Remove(t1)
	if !m.Store().Contains(typeBook) {
		t.Error("shared consequence lost although t2 still derives it")
	}
	m.Remove(t2)
	if m.Store().Contains(typeBook) {
		t.Error("consequence survived with no remaining derivation")
	}
}

func TestMaintainedRemoveExplicitThatIsAlsoDerived(t *testing.T) {
	e := testkit.Paper()
	doi1 := e.ID("doi1")
	hasAuthor := e.ID("hasAuthor")
	writtenBy := e.ID("writtenBy")
	b := e.ID("someone")

	// hasAuthor is both asserted and derivable from writtenBy; removing
	// the assertion must keep the triple (still implied).
	base := storage.Triple{S: doi1, P: writtenBy, O: b}
	asserted := storage.Triple{S: doi1, P: hasAuthor, O: b}
	m := saturate.NewMaintained([]storage.Triple{base, asserted}, e.Closed)

	m.Remove(asserted)
	if !m.Store().Contains(asserted) {
		t.Error("triple removed although still derivable from writtenBy")
	}
	m.Remove(base)
	if m.Store().Contains(asserted) {
		t.Error("triple survived with no derivation and no assertion")
	}
}

func TestMaintainedRemoveAbsent(t *testing.T) {
	e := testkit.Paper()
	m := saturate.NewMaintained(e.Data, e.Closed)
	ghost := storage.Triple{S: 999, P: 998, O: 997}
	if n := m.Remove(ghost); n != 0 {
		t.Errorf("removing an absent triple changed %d triples", n)
	}
	// Removing an *implicit* triple is a no-op too: only explicit
	// triples can be retracted.
	implicit := storage.Triple{S: e.Data[1].O, P: e.Vocab.Type, O: e.ID("Person")}
	if !m.Store().Contains(implicit) {
		t.Fatal("expected implicit typing")
	}
	if n := m.Remove(implicit); n != 0 {
		t.Errorf("removing an implicit triple changed %d triples", n)
	}
}

func TestMaintainedAddDuplicate(t *testing.T) {
	e := testkit.Paper()
	m := saturate.NewMaintained(e.Data, e.Closed)
	if n := m.Add(e.Data[0]); n != 0 {
		t.Errorf("re-adding an explicit triple changed %d triples", n)
	}
}
