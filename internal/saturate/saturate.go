// Package saturate implements saturation-based reasoning (the paper's
// Section 2.1 and the comparison baseline of Section 5.3): all implicit
// triples entailed by the RDFS constraints are precomputed and made
// explicit, after which query answering is plain query evaluation.
//
// Because the schema handed in is already closed (transitive inclusion
// orders, domain/range propagated through superproperties and
// superclasses), a single pass over the data triples derives every
// implicit data triple:
//
//	(s, rdf:type, c)  ⟹  (s, rdf:type, c')  for every c ⊑ c'
//	(s, p, o)         ⟹  (s, p', o)         for every p ⊑ p'
//	(s, p, o)         ⟹  (s, rdf:type, c)   for every c in the closed domain of p
//	(s, p, o)         ⟹  (o, rdf:type, c)   for every c in the closed range of p
//
// The fixpoint property — saturating a saturated store adds nothing — is
// checked by the package's tests.
package saturate

import (
	"repro/internal/schema"
	"repro/internal/storage"
)

// Derived calls emit for every implicit triple immediately entailed by t
// under the closed schema. It does not emit t itself. Duplicates may be
// emitted; callers deduplicate (the storage builder does).
func Derived(t storage.Triple, sch *schema.Closed, emit func(storage.Triple)) {
	v := sch.Vocab()
	switch {
	case t.P == v.Type:
		for _, c := range sch.SuperClassesOf(t.O) {
			emit(storage.Triple{S: t.S, P: v.Type, O: c})
		}
	case v.IsConstraintProperty(t.P):
		// Constraint triples are closed by the schema layer, not here.
	default:
		for _, p := range sch.SuperPropertiesOf(t.P) {
			emit(storage.Triple{S: t.S, P: p, O: t.O})
		}
		for _, c := range sch.DomainOf(t.P) {
			emit(storage.Triple{S: t.S, P: v.Type, O: c})
		}
		for _, c := range sch.RangeOf(t.P) {
			emit(storage.Triple{S: t.O, P: v.Type, O: c})
		}
	}
}

// Result reports what a saturation run produced.
type Result struct {
	Explicit int // input triples
	Implicit int // derived triples that were not already explicit
}

// Seq is a callback iterator over triples: it calls yield for each
// triple and stops early if yield returns false. storage.Store.Each
// satisfies it, which is how saturation is seeded from an existing store
// without materializing an O(store) slice first.
type Seq = func(yield func(storage.Triple) bool)

// Store builds a saturated store from the given data triples: the input
// triples plus every implicit triple, deduplicated and indexed with the
// given orders (storage.DefaultOrders if empty).
func Store(data []storage.Triple, sch *schema.Closed, orders ...storage.Order) (*storage.Store, Result) {
	st, _ := StoreFrom(sliceSeq(data), sch, orders...)
	return st, Result{Explicit: len(data), Implicit: st.Len() - countDistinct(data)}
}

// StoreFrom is Store over a streamed triple source. The source must
// yield distinct triples (a store's Each does) — Result.Explicit counts
// the triples yielded.
func StoreFrom(each Seq, sch *schema.Closed, orders ...storage.Order) (*storage.Store, Result) {
	b := storage.NewBuilder(orders...)
	n := 0
	each(func(t storage.Triple) bool {
		n++
		b.Add(t)
		Derived(t, sch, b.Add)
		return true
	})
	st := b.Build()
	return st, Result{Explicit: n, Implicit: st.Len() - n}
}

// sliceSeq adapts a triple slice to a Seq.
func sliceSeq(ts []storage.Triple) Seq {
	return func(yield func(storage.Triple) bool) {
		for _, t := range ts {
			if !yield(t) {
				return
			}
		}
	}
}

// countDistinct returns the number of distinct triples in ts without
// disturbing the caller's slice.
func countDistinct(ts []storage.Triple) int {
	set := make(map[storage.Triple]struct{}, len(ts))
	for _, t := range ts {
		set[t] = struct{}{}
	}
	return len(set)
}

// Add inserts triple t and all its implicit consequences into an existing
// saturated store, keeping it saturated — the incremental maintenance the
// paper contrasts with reformulation's update robustness. It returns the
// number of triples actually added.
func Add(st *storage.Store, t storage.Triple, sch *schema.Closed) int {
	added := 0
	if st.Add(t) {
		added++
	}
	Derived(t, sch, func(d storage.Triple) {
		if st.Add(d) {
			added++
		}
	})
	return added
}
