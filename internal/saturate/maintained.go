package saturate

import (
	"repro/internal/schema"
	"repro/internal/storage"
)

// Maintained is a saturated store kept consistent under both insertions
// and deletions of explicit triples — the saturation-maintenance cost
// that the paper's introduction contrasts with reformulation's update
// robustness. Insertions derive forward; deletions use delete-and-
// rederive: the deleted triple's consequences are candidates for removal,
// and a candidate survives only if it is still explicit or still derivable
// from a remaining explicit triple.
//
// Because the schema is closed, every implicit triple is derivable in one
// step from some explicit triple, so rederivation checks are bounded
// index probes on the explicit store rather than a recursive fixpoint.
type Maintained struct {
	sch      *schema.Closed
	explicit *storage.Store // the asserted triples only
	sat      *storage.Store // explicit plus implicit
}

// NewMaintained builds the maintained saturation of the explicit triples.
func NewMaintained(explicit []storage.Triple, sch *schema.Closed, orders ...storage.Order) *Maintained {
	return NewMaintainedFrom(sliceSeq(explicit), sch, orders...)
}

// NewMaintainedFrom is NewMaintained over a streamed triple source,
// which is iterated twice (once for the explicit store, once for the
// saturation) and so must be re-iterable — a store's Each is.
func NewMaintainedFrom(each Seq, sch *schema.Closed, orders ...storage.Order) *Maintained {
	eb := storage.NewBuilder(orders...)
	each(func(t storage.Triple) bool {
		eb.Add(t)
		return true
	})
	sat, _ := StoreFrom(each, sch, orders...)
	return &Maintained{sch: sch, explicit: eb.Build(), sat: sat}
}

// Store returns the saturated store (valid until the next update).
func (m *Maintained) Store() *storage.Store { return m.sat }

// Explicit returns the store of asserted triples.
func (m *Maintained) Explicit() *storage.Store { return m.explicit }

// Add asserts a triple, maintaining the saturation forward; it returns
// the number of triples the saturated store gained.
func (m *Maintained) Add(t storage.Triple) int {
	if !m.explicit.Add(t) {
		return 0
	}
	return Add(m.sat, t, m.sch)
}

// Remove retracts an explicit triple, shrinking the saturation by every
// consequence that is no longer derivable. It returns the number of
// triples the saturated store lost, or 0 if t was not explicit.
func (m *Maintained) Remove(t storage.Triple) int {
	if !m.explicit.Remove(t) {
		return 0
	}
	removed := 0
	// t itself survives only if still derivable (it may also be implied
	// by other explicit triples).
	if !m.derivable(t) {
		m.sat.Remove(t)
		removed++
	}
	// Over-deletion candidates: t's direct consequences.
	Derived(t, m.sch, func(c storage.Triple) {
		if m.explicit.Contains(c) || m.derivable(c) {
			return
		}
		if m.sat.Remove(c) {
			removed++
		}
	})
	return removed
}

// derivable reports whether the triple follows from the remaining
// explicit triples (or is one of them).
func (m *Maintained) derivable(t storage.Triple) bool {
	if m.explicit.Contains(t) {
		return true
	}
	v := m.sch.Vocab()
	if t.P == v.Type {
		// (s, τ, C) holds if s has an explicit type C' ⊑ C, an explicit
		// property with C in its closed domain, or appears as the
		// object of a property with C in its closed range.
		for _, sub := range m.sch.SubClassesOf(t.O) {
			if m.explicit.Contains(storage.Triple{S: t.S, P: v.Type, O: sub}) {
				return true
			}
		}
		for _, p := range m.sch.PropertiesWithDomain(t.O) {
			if m.explicit.Count(storage.Pattern{S: t.S, P: p}) > 0 {
				return true
			}
		}
		for _, p := range m.sch.PropertiesWithRange(t.O) {
			if m.explicit.Count(storage.Pattern{P: p, O: t.S}) > 0 {
				return true
			}
		}
		return false
	}
	// (s, p, o) holds if some explicit subproperty triple implies it.
	for _, sub := range m.sch.SubPropertiesOf(t.P) {
		if m.explicit.Contains(storage.Triple{S: t.S, P: sub, O: t.O}) {
			return true
		}
	}
	return false
}
