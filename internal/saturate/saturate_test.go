package saturate_test

import (
	"testing"

	"repro/internal/saturate"
	"repro/internal/storage"
	"repro/internal/testkit"
)

// storeTriples returns the triple set of a store.
func storeTriples(st *storage.Store) map[storage.Triple]struct{} {
	out := make(map[storage.Triple]struct{}, st.Len())
	for _, t := range st.Triples() {
		out[t] = struct{}{}
	}
	return out
}

// The one-pass saturation over the closed schema must agree exactly with
// the brute-force fixpoint over the direct entailment rules, on the
// paper's example and on random databases.
func TestSaturationMatchesFixpoint(t *testing.T) {
	examples := []*testkit.Example{testkit.Paper()}
	for seed := int64(0); seed < 30; seed++ {
		examples = append(examples, testkit.Random(seed, 60))
	}
	for i, e := range examples {
		data := append([]storage.Triple(nil), e.Data...)
		for _, c := range e.Closed.ConstraintTriples() {
			data = append(data, storage.Triple{S: c[0], P: c[1], O: c[2]})
		}
		got, _ := saturate.Store(data, e.Closed)
		want := e.SaturatedStore()
		gotSet, wantSet := storeTriples(got), storeTriples(want)
		for tr := range wantSet {
			if _, ok := gotSet[tr]; !ok {
				t.Errorf("example %d: saturation missing %v", i, tr)
			}
		}
		for tr := range gotSet {
			if _, ok := wantSet[tr]; !ok {
				t.Errorf("example %d: saturation has extra triple %v", i, tr)
			}
		}
		if t.Failed() {
			t.Fatalf("example %d: saturation disagrees with the fixpoint (got %d, want %d triples)",
				i, got.Len(), want.Len())
		}
	}
}

// Saturating a saturated store must be a no-op.
func TestSaturationIdempotent(t *testing.T) {
	e := testkit.Paper()
	first, _ := saturate.Store(e.Data, e.Closed)
	second, res := saturate.Store(first.Triples(), e.Closed)
	if second.Len() != first.Len() {
		t.Errorf("second saturation changed size: %d -> %d", first.Len(), second.Len())
	}
	if res.Implicit != 0 {
		t.Errorf("second saturation claims %d implicit triples", res.Implicit)
	}
}

// The paper's Example 2/Figure 3: the dashed (implicit) edges must appear.
func TestPaperExampleImplicitTriples(t *testing.T) {
	e := testkit.Paper()
	st, res := saturate.Store(e.Data, e.Closed)

	doi1 := e.ID("doi1")
	vocabType := e.Vocab.Type
	if res.Implicit < 3 {
		t.Errorf("expected at least 3 implicit triples, got %d", res.Implicit)
	}
	if !st.Contains(storage.Triple{S: doi1, P: vocabType, O: e.ID("Publication")}) {
		t.Error("missing implicit: doi1 rdf:type Publication")
	}
	// doi1 hasAuthor _:b1 — look the blank node up through the data.
	b1 := e.Data[1].O
	if !st.Contains(storage.Triple{S: doi1, P: e.ID("hasAuthor"), O: b1}) {
		t.Error("missing implicit: doi1 hasAuthor _:b1")
	}
	if !st.Contains(storage.Triple{S: b1, P: vocabType, O: e.ID("Person")}) {
		t.Error("missing implicit: _:b1 rdf:type Person")
	}
	if !st.Contains(storage.Triple{S: doi1, P: vocabType, O: e.ID("Book")}) {
		t.Error("explicit triple lost by saturation")
	}
}

// Incremental Add must keep the store saturated: adding triple-by-triple
// must converge to the same store as bulk saturation.
func TestIncrementalAdd(t *testing.T) {
	e := testkit.Paper()
	bulk, _ := saturate.Store(e.Data, e.Closed)

	incr := storage.NewBuilder().Build()
	total := 0
	for _, tr := range e.Data {
		total += saturate.Add(incr, tr, e.Closed)
	}
	if incr.Len() != bulk.Len() {
		t.Errorf("incremental store has %d triples, bulk %d", incr.Len(), bulk.Len())
	}
	if total != incr.Len() {
		t.Errorf("Add reported %d insertions, store has %d", total, incr.Len())
	}
	bulkSet := storeTriples(bulk)
	for _, tr := range incr.Triples() {
		if _, ok := bulkSet[tr]; !ok {
			t.Errorf("incremental store has extra triple %v", tr)
		}
	}
}
