package schema

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/dict"
	"repro/internal/rdf"
)

func newFixture(t *testing.T) (*dict.Dict, Vocab, *Schema, func(string) dict.ID) {
	t.Helper()
	d := dict.New()
	v := EncodeVocab(d)
	s := New(v)
	id := func(local string) dict.ID { return d.Encode(rdf.NewIRI("http://x/" + local)) }
	return d, v, s, id
}

func hasID(ids []dict.ID, want dict.ID) bool {
	for _, id := range ids {
		if id == want {
			return true
		}
	}
	return false
}

func TestSubClassTransitivity(t *testing.T) {
	_, _, s, id := newFixture(t)
	a, b, c := id("A"), id("B"), id("C")
	s.AddSubClass(a, b)
	s.AddSubClass(b, c)
	cl := s.Close()

	if !hasID(cl.SuperClassesOf(a), b) || !hasID(cl.SuperClassesOf(a), c) {
		t.Errorf("SuperClassesOf(A) = %v, want B and C", cl.SuperClassesOf(a))
	}
	if !hasID(cl.SubClassesOf(c), a) || !hasID(cl.SubClassesOf(c), b) {
		t.Errorf("SubClassesOf(C) = %v, want A and B", cl.SubClassesOf(c))
	}
	if hasID(cl.SubClassesOf(c), c) {
		t.Error("a class must not list itself as a strict subclass")
	}
}

func TestSubClassCycleTolerated(t *testing.T) {
	_, _, s, id := newFixture(t)
	a, b := id("A"), id("B")
	s.AddSubClass(a, b)
	s.AddSubClass(b, a)
	cl := s.Close()
	if !hasID(cl.SuperClassesOf(a), b) {
		t.Error("cycle lost the A ⊑ B edge")
	}
	if hasID(cl.SuperClassesOf(a), a) {
		t.Error("cycle must not make A a strict superclass of itself")
	}
}

func TestSubPropertyTransitivity(t *testing.T) {
	_, _, s, id := newFixture(t)
	p, q, r := id("p"), id("q"), id("r")
	s.AddSubProperty(p, q)
	s.AddSubProperty(q, r)
	cl := s.Close()
	if !hasID(cl.SuperPropertiesOf(p), r) {
		t.Errorf("SuperPropertiesOf(p) = %v, want r", cl.SuperPropertiesOf(p))
	}
	if !hasID(cl.SubPropertiesOf(r), p) {
		t.Errorf("SubPropertiesOf(r) = %v, want p", cl.SubPropertiesOf(r))
	}
}

// The paper's Example 2 schema: writtenBy ⊑ hasAuthor with domain Book and
// range Person, Book ⊑ Publication. The closure must give writtenBy the
// domain Publication too, and hasAuthor's (absent) domain must not leak.
func TestDomainRangePropagation(t *testing.T) {
	_, _, s, id := newFixture(t)
	book, publication, person := id("Book"), id("Publication"), id("Person")
	writtenBy, hasAuthor := id("writtenBy"), id("hasAuthor")
	s.AddSubClass(book, publication)
	s.AddSubProperty(writtenBy, hasAuthor)
	s.AddDomain(writtenBy, book)
	s.AddRange(writtenBy, person)
	cl := s.Close()

	if !hasID(cl.DomainOf(writtenBy), book) || !hasID(cl.DomainOf(writtenBy), publication) {
		t.Errorf("DomainOf(writtenBy) = %v, want Book and Publication", cl.DomainOf(writtenBy))
	}
	if !hasID(cl.RangeOf(writtenBy), person) {
		t.Errorf("RangeOf(writtenBy) = %v, want Person", cl.RangeOf(writtenBy))
	}
	if len(cl.DomainOf(hasAuthor)) != 0 {
		t.Errorf("hasAuthor inherited a domain downward: %v", cl.DomainOf(hasAuthor))
	}
	// Inverse indexes: Book's domain properties include writtenBy only;
	// Publication's too (via closure).
	if !hasID(cl.PropertiesWithDomain(book), writtenBy) {
		t.Errorf("PropertiesWithDomain(Book) = %v", cl.PropertiesWithDomain(book))
	}
	if !hasID(cl.PropertiesWithDomain(publication), writtenBy) {
		t.Errorf("PropertiesWithDomain(Publication) = %v", cl.PropertiesWithDomain(publication))
	}
	if !hasID(cl.PropertiesWithRange(person), writtenBy) {
		t.Errorf("PropertiesWithRange(Person) = %v", cl.PropertiesWithRange(person))
	}
}

// Domain constraints inherited from superproperties: p ⊑ q and q has
// domain C implies p has domain C.
func TestDomainInheritedFromSuperProperty(t *testing.T) {
	_, _, s, id := newFixture(t)
	p, q, c := id("p"), id("q"), id("C")
	s.AddSubProperty(p, q)
	s.AddDomain(q, c)
	cl := s.Close()
	if !hasID(cl.DomainOf(p), c) {
		t.Errorf("DomainOf(p) = %v, want C (inherited from q)", cl.DomainOf(p))
	}
	if !hasID(cl.PropertiesWithDomain(c), p) || !hasID(cl.PropertiesWithDomain(c), q) {
		t.Errorf("PropertiesWithDomain(C) = %v, want p and q", cl.PropertiesWithDomain(c))
	}
}

func TestClassesAndProperties(t *testing.T) {
	_, _, s, id := newFixture(t)
	a, b, c := id("A"), id("B"), id("C")
	p, q := id("p"), id("q")
	s.AddSubClass(a, b)
	s.AddDomain(p, c)
	s.AddSubProperty(p, q)
	cl := s.Close()
	for _, want := range []dict.ID{a, b, c} {
		if !hasID(cl.Classes(), want) {
			t.Errorf("Classes() = %v missing %d", cl.Classes(), want)
		}
	}
	for _, want := range []dict.ID{p, q} {
		if !hasID(cl.Properties(), want) {
			t.Errorf("Properties() = %v missing %d", cl.Properties(), want)
		}
	}
	if hasID(cl.Classes(), p) {
		t.Error("property listed among classes")
	}
}

func TestAddTriple(t *testing.T) {
	_, v, s, id := newFixture(t)
	a, b, p := id("A"), id("B"), id("p")
	if !s.AddTriple(a, v.SubClassOf, b) {
		t.Error("subClassOf triple not recognized")
	}
	if !s.AddTriple(p, v.Domain, a) {
		t.Error("domain triple not recognized")
	}
	if s.AddTriple(a, p, b) {
		t.Error("data triple wrongly consumed by the schema")
	}
	cl := s.Close()
	if !hasID(cl.SuperClassesOf(a), b) {
		t.Error("AddTriple did not record the constraint")
	}
}

func TestConstraintTriples(t *testing.T) {
	_, v, s, id := newFixture(t)
	a, b, c := id("A"), id("B"), id("C")
	p := id("p")
	s.AddSubClass(a, b)
	s.AddSubClass(b, c)
	s.AddDomain(p, a)
	cl := s.Close()

	got := make(map[[3]dict.ID]bool)
	for _, tr := range cl.ConstraintTriples() {
		got[tr] = true
	}
	for _, want := range [][3]dict.ID{
		{a, v.SubClassOf, b},
		{a, v.SubClassOf, c}, // transitive
		{b, v.SubClassOf, c},
		{p, v.Domain, a},
		{p, v.Domain, b}, // propagated through A ⊑ B
		{p, v.Domain, c},
	} {
		if !got[want] {
			t.Errorf("ConstraintTriples missing %v", want)
		}
	}
}

func TestVocabIsConstraintProperty(t *testing.T) {
	d := dict.New()
	v := EncodeVocab(d)
	for _, id := range []dict.ID{v.SubClassOf, v.SubPropertyOf, v.Domain, v.Range} {
		if !v.IsConstraintProperty(id) {
			t.Errorf("IsConstraintProperty(%d) = false", id)
		}
	}
	if v.IsConstraintProperty(v.Type) {
		t.Error("rdf:type misclassified as constraint property")
	}
}

func TestAddOnceIdempotent(t *testing.T) {
	_, _, s, id := newFixture(t)
	a, b := id("A"), id("B")
	s.AddSubClass(a, b)
	s.AddSubClass(a, b)
	cl := s.Close()
	if n := len(cl.SuperClassesOf(a)); n != 1 {
		t.Errorf("duplicate AddSubClass produced %d superclasses", n)
	}
}

// The DFS-based closure must agree with a Floyd–Warshall reference on
// random (possibly cyclic) subclass graphs, and the closed domain must
// equal the set defined by its three derivation rules.
func TestClosureMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		_, _, s, id := newFixture(t)
		const nC, nP = 8, 5
		classes := make([]dict.ID, nC)
		props := make([]dict.ID, nP)
		for i := range classes {
			classes[i] = id(fmt.Sprintf("C%d", i))
		}
		for i := range props {
			props[i] = id(fmt.Sprintf("p%d", i))
		}
		// Random edges, cycles allowed.
		subC := make([][]bool, nC)
		for i := range subC {
			subC[i] = make([]bool, nC)
		}
		for k := 0; k < 10; k++ {
			i, j := rng.Intn(nC), rng.Intn(nC)
			if i != j {
				subC[i][j] = true
				s.AddSubClass(classes[i], classes[j])
			}
		}
		subP := make([][]bool, nP)
		for i := range subP {
			subP[i] = make([]bool, nP)
		}
		for k := 0; k < 5; k++ {
			i, j := rng.Intn(nP), rng.Intn(nP)
			if i != j {
				subP[i][j] = true
				s.AddSubProperty(props[i], props[j])
			}
		}
		dom := make([][]bool, nP) // prop -> direct domain classes
		for i := range dom {
			dom[i] = make([]bool, nC)
		}
		for k := 0; k < 4; k++ {
			p, c := rng.Intn(nP), rng.Intn(nC)
			dom[p][c] = true
			s.AddDomain(props[p], classes[c])
		}
		cl := s.Close()

		// Floyd–Warshall transitive closure of the subclass graph.
		reach := make([][]bool, nC)
		for i := range reach {
			reach[i] = append([]bool(nil), subC[i]...)
		}
		for k := 0; k < nC; k++ {
			for i := 0; i < nC; i++ {
				for j := 0; j < nC; j++ {
					if reach[i][k] && reach[k][j] {
						reach[i][j] = true
					}
				}
			}
		}
		reachP := make([][]bool, nP)
		for i := range reachP {
			reachP[i] = append([]bool(nil), subP[i]...)
		}
		for k := 0; k < nP; k++ {
			for i := 0; i < nP; i++ {
				for j := 0; j < nP; j++ {
					if reachP[i][k] && reachP[k][j] {
						reachP[i][j] = true
					}
				}
			}
		}

		for i := 0; i < nC; i++ {
			got := make(map[dict.ID]bool)
			for _, sup := range cl.SuperClassesOf(classes[i]) {
				got[sup] = true
			}
			for j := 0; j < nC; j++ {
				want := reach[i][j] && i != j
				if got[classes[j]] != want {
					t.Fatalf("trial %d: super(%d,%d) = %v, want %v", trial, i, j, got[classes[j]], want)
				}
			}
		}
		// Closed domain: c in domainOf(p) iff exists p' with p ⊑* p'
		// (reflexive) and a direct domain c0 of p' with c0 ⊑* c (reflexive).
		for p := 0; p < nP; p++ {
			got := make(map[dict.ID]bool)
			for _, c := range cl.DomainOf(props[p]) {
				got[c] = true
			}
			for c := 0; c < nC; c++ {
				want := false
				for p2 := 0; p2 < nP; p2++ {
					if p2 != p && !reachP[p][p2] {
						continue
					}
					for c0 := 0; c0 < nC; c0++ {
						if dom[p2][c0] && (c0 == c || reach[c0][c]) {
							want = true
						}
					}
				}
				if got[classes[c]] != want {
					t.Fatalf("trial %d: domain(p%d, C%d) = %v, want %v", trial, p, c, got[classes[c]], want)
				}
			}
		}
	}
}

func TestEmptySchema(t *testing.T) {
	_, _, s, _ := newFixture(t)
	cl := s.Close()
	if len(cl.Classes()) != 0 || len(cl.Properties()) != 0 {
		t.Error("empty schema should have no classes or properties")
	}
	if len(cl.ConstraintTriples()) != 0 {
		t.Error("empty schema should emit no constraint triples")
	}
}
