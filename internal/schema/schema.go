// Package schema stores the RDF Schema constraints of an RDF database and
// computes their closure. The database fragment of RDF restricts entailment
// to the four RDFS constraint kinds of the paper's Figure 2:
//
//	s rdfs:subClassOf    o   — class inclusion       s ⊑ o
//	s rdfs:subPropertyOf o   — property inclusion    s ⊑ o
//	s rdfs:domain        o   — Π_domain(s) ⊑ o
//	s rdfs:range         o   — Π_range(s)  ⊑ o
//
// As in the paper's experimental setting (Section 5.1), constraints are kept
// in memory, and both the saturation and reformulation algorithms work on
// the *closed* schema: the transitive closure of the two inclusion orders,
// with domain and range constraints propagated up both superproperties
// (p ⊑ p' and p' has domain c imply p has domain c) and superclasses
// (p has domain c and c ⊑ c' imply p has domain c').
package schema

import (
	"sort"

	"repro/internal/dict"
	"repro/internal/rdf"
)

// Vocab holds the dictionary IDs of the built-in properties a schema needs
// to recognize and emit constraint triples.
type Vocab struct {
	Type, SubClassOf, SubPropertyOf, Domain, Range dict.ID
}

// EncodeVocab encodes the built-in vocabulary into d.
func EncodeVocab(d *dict.Dict) Vocab {
	return Vocab{
		Type:          d.Encode(rdf.Type),
		SubClassOf:    d.Encode(rdf.SubClassOf),
		SubPropertyOf: d.Encode(rdf.SubPropertyOf),
		Domain:        d.Encode(rdf.Domain),
		Range:         d.Encode(rdf.Range),
	}
}

// IsConstraintProperty reports whether p is one of the four RDFS
// constraint properties of the vocabulary.
func (v Vocab) IsConstraintProperty(p dict.ID) bool {
	return p == v.SubClassOf || p == v.SubPropertyOf || p == v.Domain || p == v.Range
}

// Schema is a mutable store of direct (asserted) RDFS constraints over
// dictionary IDs. Call Close to obtain the closed form used by the
// reasoning algorithms.
type Schema struct {
	vocab Vocab

	subClass map[dict.ID][]dict.ID // class -> direct superclasses
	subProp  map[dict.ID][]dict.ID // property -> direct superproperties
	domain   map[dict.ID][]dict.ID // property -> direct domain classes
	rng      map[dict.ID][]dict.ID // property -> direct range classes
}

// New returns an empty schema using the given vocabulary.
func New(vocab Vocab) *Schema {
	return &Schema{
		vocab:    vocab,
		subClass: make(map[dict.ID][]dict.ID),
		subProp:  make(map[dict.ID][]dict.ID),
		domain:   make(map[dict.ID][]dict.ID),
		rng:      make(map[dict.ID][]dict.ID),
	}
}

// Vocab returns the schema's vocabulary IDs.
func (s *Schema) Vocab() Vocab { return s.vocab }

// AddSubClass asserts sub rdfs:subClassOf super.
func (s *Schema) AddSubClass(sub, super dict.ID) { s.subClass[sub] = addOnce(s.subClass[sub], super) }

// AddSubProperty asserts sub rdfs:subPropertyOf super.
func (s *Schema) AddSubProperty(sub, super dict.ID) { s.subProp[sub] = addOnce(s.subProp[sub], super) }

// AddDomain asserts p rdfs:domain c.
func (s *Schema) AddDomain(p, c dict.ID) { s.domain[p] = addOnce(s.domain[p], c) }

// AddRange asserts p rdfs:range c.
func (s *Schema) AddRange(p, c dict.ID) { s.rng[p] = addOnce(s.rng[p], c) }

// AddTriple records the triple if it is a constraint triple, reporting
// whether it was one. Data triples are left to the storage layer.
func (s *Schema) AddTriple(sub, p, o dict.ID) bool {
	switch p {
	case s.vocab.SubClassOf:
		s.AddSubClass(sub, o)
	case s.vocab.SubPropertyOf:
		s.AddSubProperty(sub, o)
	case s.vocab.Domain:
		s.AddDomain(sub, o)
	case s.vocab.Range:
		s.AddRange(sub, o)
	default:
		return false
	}
	return true
}

func addOnce(list []dict.ID, id dict.ID) []dict.ID {
	for _, x := range list {
		if x == id {
			return list
		}
	}
	return append(list, id)
}

// Closed is the closure of a Schema. All slices are sorted, so iteration
// over the closure is deterministic. The "strict" closures exclude the
// element itself unless an inclusion cycle makes it a genuine strict
// sub/super of itself, which we normalize away (c is never listed among
// its own subclasses).
type Closed struct {
	vocab Vocab

	subClassesOf   map[dict.ID][]dict.ID // c -> all c1 ⊑ c, c1 ≠ c
	superClassesOf map[dict.ID][]dict.ID // c -> all c2 with c ⊑ c2, c2 ≠ c
	subPropsOf     map[dict.ID][]dict.ID
	superPropsOf   map[dict.ID][]dict.ID

	domainOf map[dict.ID][]dict.ID // p -> closed domain classes
	rangeOf  map[dict.ID][]dict.ID // p -> closed range classes

	domainIndex map[dict.ID][]dict.ID // c -> properties p with c in domainOf(p)
	rangeIndex  map[dict.ID][]dict.ID // c -> properties p with c in rangeOf(p)

	classes    []dict.ID // every class mentioned by some constraint
	properties []dict.ID // every property mentioned by some constraint

	stamp uint64 // content hash of the closure; see Stamp
}

// Stamp returns a content hash of the closed schema: FNV-1a over the
// vocabulary IDs and every closed constraint triple in deterministic
// order. Two Closed values with equal stamps entail the same
// reformulations, which is what lets version-stamped plan caches treat
// the stamp as "the schema": equality of stamps is equality of the only
// schema facts reformulation consults.
func (c *Closed) Stamp() uint64 { return c.stamp }

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvMix(h uint64, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= (v >> (8 * uint(i))) & 0xff
		h *= fnvPrime64
	}
	return h
}

// Close computes the closure of the schema.
func (s *Schema) Close() *Closed {
	c := &Closed{
		vocab:          s.vocab,
		subClassesOf:   make(map[dict.ID][]dict.ID),
		superClassesOf: make(map[dict.ID][]dict.ID),
		subPropsOf:     make(map[dict.ID][]dict.ID),
		superPropsOf:   make(map[dict.ID][]dict.ID),
		domainOf:       make(map[dict.ID][]dict.ID),
		rangeOf:        make(map[dict.ID][]dict.ID),
		domainIndex:    make(map[dict.ID][]dict.ID),
		rangeIndex:     make(map[dict.ID][]dict.ID),
	}

	classSet := make(map[dict.ID]struct{})
	propSet := make(map[dict.ID]struct{})
	for sub, supers := range s.subClass {
		classSet[sub] = struct{}{}
		for _, sup := range supers {
			classSet[sup] = struct{}{}
		}
	}
	for sub, supers := range s.subProp {
		propSet[sub] = struct{}{}
		for _, sup := range supers {
			propSet[sup] = struct{}{}
		}
	}
	for p, cs := range s.domain {
		propSet[p] = struct{}{}
		for _, cl := range cs {
			classSet[cl] = struct{}{}
		}
	}
	for p, cs := range s.rng {
		propSet[p] = struct{}{}
		for _, cl := range cs {
			classSet[cl] = struct{}{}
		}
	}
	c.classes = sortedIDs(classSet)
	c.properties = sortedIDs(propSet)

	// Transitive closures of the two inclusion orders (cycle-tolerant).
	up := func(edges map[dict.ID][]dict.ID, start dict.ID) []dict.ID {
		seen := map[dict.ID]struct{}{start: {}}
		stack := []dict.ID{start}
		var out []dict.ID
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, next := range edges[cur] {
				if _, ok := seen[next]; ok {
					continue
				}
				seen[next] = struct{}{}
				out = append(out, next)
				stack = append(stack, next)
			}
		}
		sortIDs(out)
		return out
	}
	for _, cl := range c.classes {
		c.superClassesOf[cl] = up(s.subClass, cl)
	}
	for _, p := range c.properties {
		c.superPropsOf[p] = up(s.subProp, p)
	}
	invert(c.superClassesOf, c.subClassesOf)
	invert(c.superPropsOf, c.subPropsOf)

	// Closed domain/range: for property p, take the direct domains of p
	// and of every superproperty of p, then close upward through the
	// class hierarchy.
	closeTyping := func(direct map[dict.ID][]dict.ID, out map[dict.ID][]dict.ID, index map[dict.ID][]dict.ID) {
		for _, p := range c.properties {
			set := make(map[dict.ID]struct{})
			collect := func(prop dict.ID) {
				for _, cl := range direct[prop] {
					set[cl] = struct{}{}
					for _, sup := range c.superClassesOf[cl] {
						set[sup] = struct{}{}
					}
				}
			}
			collect(p)
			for _, sup := range c.superPropsOf[p] {
				collect(sup)
			}
			if len(set) == 0 {
				continue
			}
			out[p] = sortedIDs(set)
			for cl := range set {
				index[cl] = append(index[cl], p)
			}
		}
		for cl := range index {
			sortIDs(index[cl])
		}
	}
	closeTyping(s.domain, c.domainOf, c.domainIndex)
	closeTyping(s.rng, c.rangeOf, c.rangeIndex)

	h := uint64(fnvOffset64)
	for _, id := range []dict.ID{s.vocab.Type, s.vocab.SubClassOf, s.vocab.SubPropertyOf, s.vocab.Domain, s.vocab.Range} {
		h = fnvMix(h, uint64(id))
	}
	for _, t := range c.ConstraintTriples() {
		h = fnvMix(h, uint64(t[0]))
		h = fnvMix(h, uint64(t[1]))
		h = fnvMix(h, uint64(t[2]))
	}
	c.stamp = h
	return c
}

func invert(src, dst map[dict.ID][]dict.ID) {
	for from, tos := range src {
		for _, to := range tos {
			dst[to] = append(dst[to], from)
		}
	}
	for k := range dst {
		sortIDs(dst[k])
	}
}

func sortedIDs(set map[dict.ID]struct{}) []dict.ID {
	out := make([]dict.ID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sortIDs(out)
	return out
}

func sortIDs(ids []dict.ID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// Vocab returns the closed schema's vocabulary IDs.
func (c *Closed) Vocab() Vocab { return c.vocab }

// Classes returns every class mentioned by some constraint, sorted.
func (c *Closed) Classes() []dict.ID { return c.classes }

// Properties returns every property mentioned by some constraint, sorted.
func (c *Closed) Properties() []dict.ID { return c.properties }

// SubClassesOf returns all strict subclasses of class cl (closed).
func (c *Closed) SubClassesOf(cl dict.ID) []dict.ID { return c.subClassesOf[cl] }

// SuperClassesOf returns all strict superclasses of class cl (closed).
func (c *Closed) SuperClassesOf(cl dict.ID) []dict.ID { return c.superClassesOf[cl] }

// SubPropertiesOf returns all strict subproperties of property p (closed).
func (c *Closed) SubPropertiesOf(p dict.ID) []dict.ID { return c.subPropsOf[p] }

// SuperPropertiesOf returns all strict superproperties of property p (closed).
func (c *Closed) SuperPropertiesOf(p dict.ID) []dict.ID { return c.superPropsOf[p] }

// DomainOf returns the closed domain classes of property p.
func (c *Closed) DomainOf(p dict.ID) []dict.ID { return c.domainOf[p] }

// RangeOf returns the closed range classes of property p.
func (c *Closed) RangeOf(p dict.ID) []dict.ID { return c.rangeOf[p] }

// PropertiesWithDomain returns the properties whose closed domain includes
// class cl — exactly the properties that can make a subject an implicit
// instance of cl.
func (c *Closed) PropertiesWithDomain(cl dict.ID) []dict.ID { return c.domainIndex[cl] }

// PropertiesWithRange returns the properties whose closed range includes cl.
func (c *Closed) PropertiesWithRange(cl dict.ID) []dict.ID { return c.rangeIndex[cl] }

// ConstraintTriples returns every constraint triple of the closure as
// encoded (s, p, o) ID triples: all closed subclass and subproperty pairs
// and all closed domain and range assignments. Loading these into the data
// store makes schema-level query atoms answerable by plain evaluation, the
// hybrid the paper attributes to Urbani et al. (constraints saturated,
// data left alone).
func (c *Closed) ConstraintTriples() [][3]dict.ID {
	var out [][3]dict.ID
	emit := func(m map[dict.ID][]dict.ID, prop dict.ID) {
		keys := make([]dict.ID, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sortIDs(keys)
		for _, k := range keys {
			for _, v := range m[k] {
				out = append(out, [3]dict.ID{k, prop, v})
			}
		}
	}
	emit(c.superClassesOf, c.vocab.SubClassOf)
	emit(c.superPropsOf, c.vocab.SubPropertyOf)
	emit(c.domainOf, c.vocab.Domain)
	emit(c.rangeOf, c.vocab.Range)
	return out
}
