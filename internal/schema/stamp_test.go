package schema

import (
	"testing"

	"repro/internal/dict"
	"repro/internal/rdf"
)

func stampVocab(t *testing.T) (*dict.Dict, Vocab) {
	t.Helper()
	d := dict.New()
	return d, EncodeVocab(d)
}

func TestStampEqualForEqualContent(t *testing.T) {
	d, v := stampVocab(t)
	a, b := d.Encode(rdf.NewIRI("urn:A")), d.Encode(rdf.NewIRI("urn:B"))
	p := d.Encode(rdf.NewIRI("urn:p"))

	mk := func(order []int) *Closed {
		s := New(v)
		// Same facts asserted in different orders must close identically.
		ops := []func(){
			func() { s.AddSubClass(a, b) },
			func() { s.AddDomain(p, a) },
			func() { s.AddRange(p, b) },
		}
		for _, i := range order {
			ops[i]()
		}
		return s.Close()
	}
	s1 := mk([]int{0, 1, 2})
	s2 := mk([]int{2, 0, 1})
	if s1.Stamp() == 0 {
		t.Fatal("stamp is zero")
	}
	if s1.Stamp() != s2.Stamp() {
		t.Fatalf("equal schemas have different stamps: %#x vs %#x", s1.Stamp(), s2.Stamp())
	}
}

func TestStampChangesWithContent(t *testing.T) {
	d, v := stampVocab(t)
	a, b, c := d.Encode(rdf.NewIRI("urn:A")), d.Encode(rdf.NewIRI("urn:B")), d.Encode(rdf.NewIRI("urn:C"))

	s := New(v)
	s.AddSubClass(a, b)
	base := s.Close().Stamp()

	s.AddSubClass(b, c)
	if got := s.Close().Stamp(); got == base {
		t.Fatal("adding a constraint did not change the stamp")
	}

	empty := New(v)
	if empty.Close().Stamp() == base {
		t.Fatal("empty schema shares a stamp with a non-empty one")
	}
}
