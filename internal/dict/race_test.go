package dict

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/rdf"
)

// Concurrent encoders racing on overlapping term sets must agree on the
// assigned IDs, and readers must always see a consistent dictionary.
// Run with -race; the test is about the schedule, not the assertions.
func TestDictConcurrentEncode(t *testing.T) {
	d := New()
	const workers = 8
	const terms = 200

	var wg sync.WaitGroup
	ids := make([][]ID, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ids[w] = make([]ID, terms)
			for i := 0; i < terms; i++ {
				// Half the terms are shared across workers, half private.
				var term rdf.Term
				if i%2 == 0 {
					term = rdf.NewIRI(fmt.Sprintf("http://x/shared/%d", i))
				} else {
					term = rdf.NewIRI(fmt.Sprintf("http://x/w%d/%d", w, i))
				}
				ids[w][i] = d.Encode(term)
			}
		}(w)
	}
	wg.Wait()

	for i := 0; i < terms; i += 2 {
		want := ids[0][i]
		for w := 1; w < workers; w++ {
			if ids[w][i] != want {
				t.Fatalf("shared term %d: worker %d got ID %d, worker 0 got %d", i, w, ids[w][i], want)
			}
		}
	}
}

// Readers (Term, Lookup, Len) racing with writers (Encode) must never
// observe torn state.
func TestDictConcurrentReadWrite(t *testing.T) {
	d := New()
	seed := make([]ID, 50)
	for i := range seed {
		seed[i] = d.Encode(rdf.NewIRI(fmt.Sprintf("http://x/seed/%d", i)))
	}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := i % len(seed)
				if got := d.Term(seed[k]); got.Value == "" {
					t.Errorf("Term(%d) returned empty term", seed[k])
					return
				}
				if _, ok := d.Lookup(rdf.NewIRI(fmt.Sprintf("http://x/seed/%d", k))); !ok {
					t.Errorf("Lookup lost seed term %d", k)
					return
				}
				if d.Len() < len(seed) {
					t.Error("Len shrank below the seed set")
					return
				}
			}
		}()
	}

	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 500; i++ {
				d.Encode(rdf.NewIRI(fmt.Sprintf("http://x/new/w%d/%d", w, i)))
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	if want := len(seed) + 4*500; d.Len() != want {
		t.Errorf("Len = %d, want %d", d.Len(), want)
	}
}
