package dict

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/rdf"
)

func TestEncodeLookupRoundTrip(t *testing.T) {
	d := New()
	a := rdf.NewIRI("http://example.org/a")
	b := rdf.NewLiteral("hello")

	ida := d.Encode(a)
	idb := d.Encode(b)
	if ida == None || idb == None {
		t.Fatal("Encode returned the reserved None ID")
	}
	if ida == idb {
		t.Fatal("distinct terms got the same ID")
	}
	if again := d.Encode(a); again != ida {
		t.Errorf("re-encoding gave %d, want %d", again, ida)
	}
	if got := d.Term(ida); got != a {
		t.Errorf("Term(%d) = %v, want %v", ida, got, a)
	}
	if got, ok := d.Lookup(b); !ok || got != idb {
		t.Errorf("Lookup = (%d,%v)", got, ok)
	}
	if _, ok := d.Lookup(rdf.NewIRI("http://absent")); ok {
		t.Error("Lookup found an absent term")
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
}

func TestTermPanicsOnUnassigned(t *testing.T) {
	d := New()
	d.Encode(rdf.NewIRI("x"))
	for _, id := range []ID{None, 99} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Term(%d) did not panic", id)
				}
			}()
			d.Term(id)
		}()
	}
}

func TestEncodeTriple(t *testing.T) {
	d := New()
	tr := rdf.NewTriple(rdf.NewIRI("s"), rdf.NewIRI("p"), rdf.NewLiteral("o"))
	s, p, o := d.EncodeTriple(tr)
	if got := d.DecodeTriple(s, p, o); got != tr {
		t.Errorf("DecodeTriple = %v, want %v", got, tr)
	}
}

// Encoding is injective and stable: equal terms share an ID, distinct
// terms never do, and decoding returns the original term.
func TestEncodeProperty(t *testing.T) {
	d := New()
	f := func(values []string) bool {
		ids := make(map[ID]rdf.Term)
		for _, v := range values {
			term := rdf.NewLiteral(v)
			id := d.Encode(term)
			if prev, ok := ids[id]; ok && prev != term {
				return false
			}
			ids[id] = term
			if d.Term(id) != term {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConcurrentEncode(t *testing.T) {
	d := New()
	const goroutines = 8
	const perG = 500
	var wg sync.WaitGroup
	results := make([][]ID, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g] = make([]ID, perG)
			for i := 0; i < perG; i++ {
				// All goroutines encode the same value sequence, racing
				// on assignment.
				results[g][i] = d.Encode(rdf.NewIRI(fmt.Sprintf("http://x/%d", i)))
			}
		}(g)
	}
	wg.Wait()
	if d.Len() != perG {
		t.Fatalf("Len = %d, want %d", d.Len(), perG)
	}
	for g := 1; g < goroutines; g++ {
		for i := 0; i < perG; i++ {
			if results[g][i] != results[0][i] {
				t.Fatalf("goroutine %d got ID %d for value %d, goroutine 0 got %d",
					g, results[g][i], i, results[0][i])
			}
		}
	}
}

func TestNewWithCapacity(t *testing.T) {
	d := NewWithCapacity(100)
	if d.Len() != 0 {
		t.Error("fresh dictionary not empty")
	}
	if id := d.Encode(rdf.NewIRI("a")); id != 1 {
		t.Errorf("first ID = %d, want 1", id)
	}
}
