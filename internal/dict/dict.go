// Package dict implements the dictionary encoding used by the storage
// layer: every distinct RDF value (URI or literal, in its canonical
// N-Triples spelling) is mapped to a unique integer ID, and triples are
// stored over IDs. The paper stores the same dictionary as a separate
// relational table indexed both by code and by value (Section 5.1); here
// it is an in-memory two-way map.
//
// ID 0 is reserved and never assigned; encoded query patterns use it as
// the wildcard ("any value") marker.
package dict

import (
	"fmt"
	"sync"

	"repro/internal/rdf"
)

// ID is a dictionary code for one RDF value. The zero ID is never
// assigned to a value; it denotes "no value" (a wildcard in patterns).
type ID uint32

// None is the reserved, never-assigned ID.
const None ID = 0

// Dict is a two-way dictionary between RDF terms and IDs. It is safe for
// concurrent use: lookups take a read lock and encoding takes a write
// lock only when a new value must be assigned.
type Dict struct {
	mu      sync.RWMutex
	byValue map[string]ID
	terms   []rdf.Term // terms[i] is the term with ID i+1
}

// New returns an empty dictionary.
func New() *Dict {
	return &Dict{byValue: make(map[string]ID)}
}

// NewWithCapacity returns an empty dictionary sized for about n values.
func NewWithCapacity(n int) *Dict {
	return &Dict{
		byValue: make(map[string]ID, n),
		terms:   make([]rdf.Term, 0, n),
	}
}

// Encode returns the ID for the term, assigning a fresh one if the term
// has not been seen before.
func (d *Dict) Encode(t rdf.Term) ID {
	key := t.Canonical()
	d.mu.RLock()
	id, ok := d.byValue[key]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.byValue[key]; ok {
		return id
	}
	d.terms = append(d.terms, t)
	id = ID(len(d.terms)) // IDs start at 1
	d.byValue[key] = id
	return id
}

// Lookup returns the ID for the term if it is already in the dictionary.
func (d *Dict) Lookup(t rdf.Term) (ID, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	id, ok := d.byValue[t.Canonical()]
	return id, ok
}

// Term returns the term for a previously assigned ID. It panics on an
// ID that was never assigned (including None), since that always
// indicates a bug in the caller.
func (d *Dict) Term(id ID) rdf.Term {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id == None || int(id) > len(d.terms) {
		//lint:ignore panicfree documented invariant accessor: an unassigned ID is a caller bug, not a recoverable condition
		panic(fmt.Sprintf("dict: Term called with unassigned ID %d (dictionary size %d)", id, len(d.terms)))
	}
	return d.terms[id-1]
}

// Value returns the canonical spelling of the term for the ID.
func (d *Dict) Value(id ID) string { return d.Term(id).Canonical() }

// Len returns the number of distinct values in the dictionary.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.terms)
}

// EncodeTriple encodes the three terms of t.
func (d *Dict) EncodeTriple(t rdf.Triple) (s, p, o ID) {
	return d.Encode(t.S), d.Encode(t.P), d.Encode(t.O)
}

// DecodeTriple rebuilds a surface triple from encoded IDs.
func (d *Dict) DecodeTriple(s, p, o ID) rdf.Triple {
	return rdf.Triple{S: d.Term(s), P: d.Term(p), O: d.Term(o)}
}
