package server_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/engine"
	"repro/internal/rdf"
	"repro/internal/server"
)

func iri(local string) rdf.Term { return rdf.NewIRI("http://example.org/" + local) }

const (
	qPub = `PREFIX ex: <http://example.org/>
		SELECT ?x WHERE { ?x <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> ex:Publication }`
	qAuthors = `PREFIX ex: <http://example.org/>
		SELECT ?x ?name WHERE { ?x ex:hasAuthor ?a . ?a ex:hasName ?name }`
)

// bookStore builds the paper's book schema with `books` book instances;
// both qPub and qAuthors need reasoning over it (Book subclass-of
// Publication, writtenBy subproperty-of hasAuthor, domain of writtenBy).
func bookStore(t testing.TB, books int) *repro.Store {
	t.Helper()
	st := repro.NewStore()
	add := func(tr rdf.Triple) {
		t.Helper()
		if err := st.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	add(rdf.NewTriple(iri("Book"), rdf.SubClassOf, iri("Publication")))
	add(rdf.NewTriple(iri("writtenBy"), rdf.SubPropertyOf, iri("hasAuthor")))
	add(rdf.NewTriple(iri("writtenBy"), rdf.Domain, iri("Book")))
	add(rdf.NewTriple(iri("writtenBy"), rdf.Range, iri("Person")))
	for i := 0; i < books; i++ {
		b := iri(fmt.Sprintf("book%d", i))
		a := iri(fmt.Sprintf("author%d", i%7))
		if i%2 == 0 {
			add(rdf.NewTriple(b, rdf.Type, iri("Book")))
		}
		add(rdf.NewTriple(b, iri("writtenBy"), a))
		add(rdf.NewTriple(a, iri("hasName"), rdf.NewLiteral(fmt.Sprintf("name%d", i%7))))
	}
	st.Freeze()
	return st
}

// denseStore builds a complete directed p-graph over n nodes: a chained
// join over it is expensive enough to hold a request slot for a while.
func denseStore(t testing.TB, n int) *repro.Store {
	t.Helper()
	st := repro.NewStore()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if err := st.Add(rdf.NewTriple(iri(fmt.Sprintf("n%d", i)), iri("p"), iri(fmt.Sprintf("n%d", j)))); err != nil {
				t.Fatal(err)
			}
		}
	}
	st.Freeze()
	return st
}

const (
	// qChain over denseStore(90) runs for roughly a quarter second —
	// long enough that a millisecond deadline reliably interrupts it
	// even though a saturated scheduler delays the deadline timer by up
	// to ~10ms (the runtime's forced-preemption interval).
	qChain = `PREFIX ex: <http://example.org/>
	SELECT ?a WHERE { ?a ex:p ?b . ?b ex:p ?c . ?c ex:p ?d }`
	qEdge = `PREFIX ex: <http://example.org/>
	SELECT ?a WHERE { ?a ex:p ?b }`
)

func newTestServer(t testing.TB, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postJSONE is the goroutine-safe request helper: errors are returned,
// not reported to t.
func postJSONE(url string, body any) (int, []byte, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return 0, nil, err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		return 0, nil, err
	}
	out, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	return resp.StatusCode, out, err
}

func postJSON(t testing.TB, url string, body any) (int, []byte) {
	t.Helper()
	code, out, err := postJSONE(url, body)
	if err != nil {
		t.Fatal(err)
	}
	return code, out
}

// queryRowsE posts a query and returns its sorted answer set.
func queryRowsE(url, query, strategy string) ([]string, error) {
	code, body, err := postJSONE(url+"/query", server.QueryRequest{Query: query, Strategy: strategy})
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("POST /query = %d: %s", code, body)
	}
	var res server.QueryResponse
	if err := json.Unmarshal(body, &res); err != nil {
		return nil, err
	}
	return sortedRows(res.Rows), nil
}

func queryRows(t testing.TB, url, query, strategy string) []string {
	t.Helper()
	rows, err := queryRowsE(url, query, strategy)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func sortedRows(rows [][]string) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = strings.Join(r, "\t")
	}
	sort.Strings(out)
	return out
}

// directRows answers the query through the library (no HTTP) and
// canonicalizes the answer set the same way the server does.
func directRows(t testing.TB, a *repro.Answerer, query string, strategy repro.Strategy) []string {
	t.Helper()
	res, err := a.Query(query, strategy)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([][]string, res.NumRows())
	for i, row := range res.Rows() {
		out := make([]string, len(row))
		for j, term := range row {
			out[j] = term.Canonical()
		}
		rows[i] = out
	}
	return sortedRows(rows)
}

// The HTTP answer must be byte-identical (as a sorted answer set) to the
// direct library answer, for every strategy the server accepts.
func TestQueryMatchesDirectEvaluation(t *testing.T) {
	st := bookStore(t, 40)
	_, ts := newTestServer(t, server.Config{Store: st})
	direct := bookStore(t, 40).NewAnswerer(repro.Native, repro.Options{})
	for _, strat := range []string{"ucq", "scq", "ecov", "gcov"} {
		for _, q := range []string{qPub, qAuthors} {
			got := queryRows(t, ts.URL, q, strat)
			want := directRows(t, direct, q, repro.Strategy(strat))
			if len(want) == 0 {
				t.Fatalf("%s: empty direct answer — bad fixture", strat)
			}
			if strings.Join(got, "\n") != strings.Join(want, "\n") {
				t.Errorf("%s: HTTP answer differs from direct evaluation\n got: %v\nwant: %v", strat, got, want)
			}
		}
	}
}

// Concurrent queries racing /update (add and remove of noise triples
// that no query matches) and /compact must still answer byte-identically
// to direct evaluation over the unmutated data.
func TestConcurrentQueriesRaceMutations(t *testing.T) {
	st := bookStore(t, 60)
	_, ts := newTestServer(t, server.Config{Store: st, MaxInflight: 64})
	direct := bookStore(t, 60).NewAnswerer(repro.Native, repro.Options{})
	want := map[string]string{
		qPub:     strings.Join(directRows(t, direct, qPub, repro.GCov), "\n"),
		qAuthors: strings.Join(directRows(t, direct, qAuthors, repro.GCov), "\n"),
	}

	const (
		readers   = 8
		mutators  = 3
		perWorker = 25
	)
	var wg sync.WaitGroup
	errc := make(chan error, readers+mutators)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				q := qPub
				if (r+i)%2 == 0 {
					q = qAuthors
				}
				rows, err := queryRowsE(ts.URL, q, "gcov")
				if err != nil {
					errc <- fmt.Errorf("reader %d iter %d: %w", r, i, err)
					return
				}
				if got := strings.Join(rows, "\n"); got != want[q] {
					errc <- fmt.Errorf("reader %d iter %d: answer diverged under mutation", r, i)
					return
				}
			}
		}(r)
	}
	for m := 0; m < mutators; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				nt := fmt.Sprintf("<http://example.org/junk%d-%d> <http://example.org/noise> <http://example.org/x> .\n", m, i)
				resp, err := http.Post(ts.URL+"/update?op=add", "application/n-triples", strings.NewReader(nt))
				if err != nil {
					errc <- err
					return
				}
				if err := resp.Body.Close(); err != nil {
					errc <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("mutator %d: add = %d", m, resp.StatusCode)
					return
				}
				op := "remove"
				if i%5 == 4 {
					op = "add" // leave some noise behind
				}
				if i%7 == 6 {
					resp, err := http.Post(ts.URL+"/compact", "application/json", nil)
					if err != nil {
						errc <- err
						return
					}
					if err := resp.Body.Close(); err != nil {
						errc <- err
						return
					}
				}
				resp, err = http.Post(ts.URL+"/update?op="+op, "application/n-triples", strings.NewReader(nt))
				if err != nil {
					errc <- err
					return
				}
				if err := resp.Body.Close(); err != nil {
					errc <- err
					return
				}
			}
		}(m)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// Updates must be visible to subsequent queries: adding a book grows the
// publication answer, removing it shrinks it back.
func TestUpdateChangesAnswers(t *testing.T) {
	st := bookStore(t, 10)
	_, ts := newTestServer(t, server.Config{Store: st})
	before := queryRows(t, ts.URL, qPub, "gcov")

	nt := "<http://example.org/newbook> <http://example.org/writtenBy> <http://example.org/author0> .\n"
	resp, err := http.Post(ts.URL+"/update?op=add", "application/n-triples", strings.NewReader(nt))
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	after := queryRows(t, ts.URL, qPub, "gcov")
	if len(after) != len(before)+1 {
		t.Fatalf("after add: %d publications, want %d", len(after), len(before)+1)
	}

	resp, err = http.Post(ts.URL+"/update?op=remove", "application/n-triples", strings.NewReader(nt))
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	final := queryRows(t, ts.URL, qPub, "gcov")
	if len(final) != len(before) {
		t.Fatalf("after remove: %d publications, want %d", len(final), len(before))
	}
}

// A request whose deadline has expired must be answered 504 with the
// typed "canceled" error name, leave no goroutines behind, and leave the
// server fully able to answer the next query.
func TestDeadlineReturns504AndLeaksNothing(t *testing.T) {
	st := denseStore(t, 90)
	_, ts := newTestServer(t, server.Config{Store: st})

	baseline := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		code, body := postJSON(t, ts.URL+"/query", server.QueryRequest{Query: qChain, TimeoutMS: 1})
		if code != http.StatusGatewayTimeout {
			t.Fatalf("iter %d: status = %d (%s), want 504", i, code, body)
		}
		var er server.ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil {
			t.Fatal(err)
		}
		if er.Error != "canceled" {
			t.Fatalf("iter %d: error name = %q, want \"canceled\"", i, er.Error)
		}
	}

	// The server must still answer an uncanceled query afterwards.
	if rows := queryRows(t, ts.URL, qEdge, "gcov"); len(rows) == 0 {
		t.Error("no rows from the edge query after cancellations")
	}

	// Canceled evaluations must not leave goroutines behind. Allow the
	// HTTP client/server keep-alive machinery a moment to settle.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+5 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines = %d, baseline = %d: canceled evaluations leaked", n, baseline)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Repeating the same queries must climb the shared plan cache's hit
// rate, visible through /statz.
func TestPlanCacheHitRateClimbs(t *testing.T) {
	st := bookStore(t, 30)
	s, ts := newTestServer(t, server.Config{Store: st, MaxInflight: 32})

	const workers, iters = 6, 20
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				q := qPub
				if (w+i)%2 == 0 {
					q = qAuthors
				}
				if _, err := queryRowsE(ts.URL, q, "gcov"); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	stats := s.CacheStats()
	if stats.Hits == 0 {
		t.Fatalf("no plan cache hits after %d repeated queries: %+v", workers*iters, stats)
	}
	if rate := stats.HitRate(); rate < 0.5 {
		t.Errorf("hit rate = %.2f after heavy repetition, want >= 0.5 (%+v)", rate, stats)
	}

	var statz server.StatzResponse
	resp, err := http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&statz); err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if statz.Cache.Hits != stats.Hits || statz.Cache.HitRate == 0 {
		t.Errorf("statz cache section %+v does not reflect cache stats %+v", statz.Cache, stats)
	}
	if statz.Served == 0 || statz.Triples == 0 {
		t.Errorf("statz = %+v: served and triples must be non-zero", statz)
	}
}

// Budget errors must surface as typed names and distinct statuses, and
// the underlying library errors must stay errors.Is-matchable.
func TestBudgetErrorStatusMapping(t *testing.T) {
	st := bookStore(t, 40)
	profiles := map[string]repro.Profile{
		"tinywork": {Name: "tinywork", WorkBudget: 2, ArmJoin: engine.HashJoin},
		"tinymem":  {Name: "tinymem", MaxMaterializedRows: 1, ArmJoin: engine.HashJoin},
		"tinyplan": {Name: "tinyplan", MaxPlanLeaves: 1, ArmJoin: engine.HashJoin},
	}
	_, ts := newTestServer(t, server.Config{Store: st, Profiles: profiles})

	cases := []struct {
		profile  string
		status   int
		name     string
		sentinel error
	}{
		{"tinywork", http.StatusServiceUnavailable, "work_budget", repro.ErrWorkBudget},
		{"tinymem", http.StatusRequestEntityTooLarge, "memory_budget", repro.ErrMemoryBudget},
		{"tinyplan", http.StatusRequestEntityTooLarge, "plan_too_complex", repro.ErrPlanTooComplex},
	}
	for _, tc := range cases {
		code, body := postJSON(t, ts.URL+"/query", server.QueryRequest{Query: qPub, Strategy: "ucq", Profile: tc.profile})
		if code != tc.status {
			t.Errorf("%s: status = %d (%s), want %d", tc.profile, code, body, tc.status)
		}
		var er server.ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil {
			t.Fatal(err)
		}
		if er.Error != tc.name {
			t.Errorf("%s: error name = %q, want %q", tc.profile, er.Error, tc.name)
		}

		// The same failure through the library must match the sentinel.
		a := bookStore(t, 40).NewAnswerer(profiles[tc.profile], repro.Options{})
		if _, err := a.Query(qPub, repro.UCQ); !errors.Is(err, tc.sentinel) {
			t.Errorf("%s: library err = %v, want errors.Is %v", tc.profile, err, tc.sentinel)
		}
	}
}

// Unknown strategy and profile names must be rejected with 400 and a
// message listing the valid names; malformed queries with 400.
func TestBadRequestsRejected(t *testing.T) {
	st := bookStore(t, 5)
	_, ts := newTestServer(t, server.Config{Store: st})

	code, body := postJSON(t, ts.URL+"/query", server.QueryRequest{Query: qPub, Strategy: "bogus"})
	if code != http.StatusBadRequest || !strings.Contains(string(body), "gcov") {
		t.Errorf("unknown strategy: %d %s — want 400 listing valid strategies", code, body)
	}
	code, body = postJSON(t, ts.URL+"/query", server.QueryRequest{Query: qPub, Profile: "bogus"})
	if code != http.StatusBadRequest || !strings.Contains(string(body), "native") {
		t.Errorf("unknown profile: %d %s — want 400 listing valid profiles", code, body)
	}
	code, body = postJSON(t, ts.URL+"/query", server.QueryRequest{Query: "NOT SPARQL"})
	if code != http.StatusBadRequest {
		t.Errorf("malformed query: %d %s — want 400", code, body)
	}
}

// With MaxInflight 1, a query arriving while the single slot is held
// must be rejected 429 with the typed "overloaded" error, and the slot
// holder must still complete with 200.
func TestOverloadSheds429(t *testing.T) {
	st := denseStore(t, 90)
	_, ts := newTestServer(t, server.Config{Store: st, MaxInflight: 1})

	type result struct {
		code int
		body []byte
		err  error
	}
	slow := make(chan result, 1)
	go func() {
		code, body, err := postJSONE(ts.URL+"/query", server.QueryRequest{Query: qChain, TimeoutMS: 30_000})
		slow <- result{code, body, err}
	}()

	// Wait until the slow query holds the slot (statz bypasses admission).
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/statz")
		if err != nil {
			t.Fatal(err)
		}
		var statz server.StatzResponse
		err = json.NewDecoder(resp.Body).Decode(&statz)
		if cerr := resp.Body.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			t.Fatal(err)
		}
		if statz.Inflight >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slow query never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}

	code, body := postJSON(t, ts.URL+"/query", server.QueryRequest{Query: qEdge})
	if code != http.StatusTooManyRequests {
		t.Errorf("second query while slot held: %d (%s), want 429", code, body)
	}
	var er server.ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Error != "overloaded" {
		t.Errorf("error name = %q, want \"overloaded\"", er.Error)
	}

	res := <-slow
	if res.err != nil {
		t.Fatal(res.err)
	}
	if res.code != http.StatusOK {
		t.Errorf("slot-holding query: %d (%s), want 200", res.code, res.body)
	}
}

// Graceful shutdown must drain: a query in flight when Shutdown is
// called completes with 200.
func TestGracefulShutdownDrains(t *testing.T) {
	st := denseStore(t, 90)
	s, err := server.New(server.Config{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())

	type result struct {
		code int
		body []byte
	}
	done := make(chan result, 1)
	go func() {
		code, body, err := postJSONE(hs.URL+"/query", server.QueryRequest{Query: qChain, TimeoutMS: 30_000})
		if err != nil {
			done <- result{0, []byte(err.Error())}
			return
		}
		done <- result{code, body}
	}()
	time.Sleep(30 * time.Millisecond) // let the query get in flight
	closed := make(chan struct{})
	go func() {
		hs.Close() // blocks until in-flight requests finish
		close(closed)
	}()

	select {
	case res := <-done:
		if res.code != http.StatusOK {
			t.Fatalf("in-flight query during shutdown: %d %s", res.code, res.body)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("in-flight query did not complete under shutdown")
	}
	<-closed
}

// Every profile's feedback loop observes served queries and surfaces its
// drift counters through /statz; answers are unchanged by the loop, and
// NoFeedback removes the section entirely.
func TestFeedbackStatzReportsObservations(t *testing.T) {
	st := bookStore(t, 30)
	s, ts := newTestServer(t, server.Config{Store: st})
	stOff := bookStore(t, 30)
	_, tsOff := newTestServer(t, server.Config{Store: stOff, NoFeedback: true})

	var want []string
	for i := 0; i < 5; i++ {
		rows := queryRows(t, ts.URL, qAuthors, "gcov")
		offRows := queryRows(t, tsOff.URL, qAuthors, "gcov")
		if i == 0 {
			want = rows
		}
		for _, got := range [][]string{rows, offRows} {
			if len(got) != len(want) {
				t.Fatalf("answer drifted across feedback modes: %d rows, want %d", len(got), len(want))
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("answer drifted across feedback modes at row %d: %q vs %q", j, got[j], want[j])
				}
			}
		}
	}

	fs := s.FeedbackStats("native")
	if fs.Observations == 0 {
		t.Errorf("native loop observed nothing after %d queries", 5)
	}

	var statz server.StatzResponse
	resp, err := http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&statz); err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	fb, ok := statz.Feedback["native"]
	if !ok {
		t.Fatalf("statz feedback section missing the native profile: %+v", statz.Feedback)
	}
	if fb.Observations == 0 {
		t.Errorf("statz native loop shows zero observations: %+v", fb)
	}

	resp, err = http.Get(tsOff.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	var statzOff server.StatzResponse
	if err := json.NewDecoder(resp.Body).Decode(&statzOff); err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	if statzOff.Feedback != nil {
		t.Errorf("NoFeedback server still reports a feedback section: %+v", statzOff.Feedback)
	}
	if s.FeedbackStats("no-such-profile") != (repro.FeedbackStats{}) {
		t.Error("unknown profile must snapshot to zero")
	}
}

// A response-byte cap must reject oversized answers with 413 and the
// stable response_too_large code, before any partial body reaches the
// client; a generous cap must stream the exact same answer a capless
// server returns, complete with every response field.
func TestMaxResponseBytesCaps(t *testing.T) {
	st := bookStore(t, 40)
	_, capped := newTestServer(t, server.Config{Store: st, MaxResponseBytes: 128})
	code, body := postJSON(t, capped.URL+"/query", server.QueryRequest{Query: qAuthors, Strategy: "ucq"})
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("capped POST /query = %d, want 413: %s", code, body)
	}
	var er server.ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("413 body is not an ErrorResponse: %v: %s", err, body)
	}
	if er.Error != "response_too_large" {
		t.Fatalf("413 error code = %q, want response_too_large", er.Error)
	}

	// The capped server is not wedged: the rejection released its slot.
	code, body = postJSON(t, capped.URL+"/query", server.QueryRequest{Query: qAuthors, Strategy: "ucq"})
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("second capped POST /query = %d, want 413: %s", code, body)
	}

	_, roomy := newTestServer(t, server.Config{Store: st, MaxResponseBytes: 1 << 20})
	code, body = postJSON(t, roomy.URL+"/query", server.QueryRequest{Query: qAuthors, Strategy: "ucq"})
	if code != http.StatusOK {
		t.Fatalf("roomy POST /query = %d: %s", code, body)
	}
	var res server.QueryResponse
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("streamed response is not a QueryResponse: %v", err)
	}
	if len(res.Vars) != 2 || res.Strategy != "ucq" || res.Profile == "" || res.ElapsedMS < 0 {
		t.Fatalf("streamed response lost fields: %+v", res)
	}
	got := sortedRows(res.Rows)
	want := directRows(t, bookStore(t, 40).NewAnswerer(repro.Native, repro.Options{}), qAuthors, "ucq")
	if len(want) == 0 {
		t.Fatal("empty direct answer — bad fixture")
	}
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Fatalf("streamed answer differs from direct evaluation\n got: %v\nwant: %v", got, want)
	}
}
