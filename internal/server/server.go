// Package server exposes a repro.Store as an HTTP/JSON query service.
//
// Each query request is admitted through a bounded in-flight semaphore
// (excess load is rejected with 429 rather than queued without bound),
// pins a storage snapshot for the duration of its evaluation, shares one
// global plan cache across all requests and engine profiles, and runs
// under a per-request deadline: when the deadline expires or the client
// disconnects, the evaluation stops early with repro.ErrCanceled, the
// snapshot is released, and the request is answered with 504.
//
// Mutations (POST /update, POST /compact) are serialized by a mutex but
// run concurrently with queries: in-flight evaluations keep answering
// against the snapshot they pinned, so answers are always those of some
// consistent store state.
//
// Each profile's answerer owns a feedback loop (disable with
// Config.NoFeedback) that recalibrates cost estimates from observed
// evaluations; GET /statz reports each loop's drift counters. The plan
// cache stays shared across profiles, so a plan inserted under one
// profile's feedback version may be re-priced on a hit from another —
// re-pricing is cheap and feedback advisory, so this thrash affects
// only estimate freshness, never answers.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/ntriples"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

// Config describes a Server.
type Config struct {
	// Store is the database to serve. Required; frozen on New.
	Store *repro.Store
	// Options are the base evaluation options for every profile's
	// answerer. The Trace, PlanCache and Feedback fields are ignored —
	// the server owns all three (per-run spans, one shared cache, one
	// feedback loop per profile).
	Options repro.Options
	// NoFeedback disables the adaptive cost model. By default every
	// profile's answerer feeds observed cardinalities and timings back
	// into its own feedback loop (per profile, because the loops learn
	// cost constants that are specific to an engine profile's operators).
	// Feedback is advisory — answers are identical either way.
	NoFeedback bool
	// CacheCap is the shared plan cache's capacity in entries
	// (0 = the cache's default).
	CacheCap int
	// MaxInflight bounds concurrently evaluating queries; requests
	// beyond it are rejected with 429. 0 = 4 x GOMAXPROCS.
	MaxInflight int
	// DefaultTimeout is the per-request deadline when the request does
	// not name one (0 = 30s).
	DefaultTimeout time.Duration
	// MaxTimeout caps the deadline a request may ask for
	// (0 = 4 x DefaultTimeout).
	MaxTimeout time.Duration
	// MaxResponseBytes caps the encoded size of a query response body.
	// Answers are streamed from the (possibly factorized) result one row
	// at a time, so a query whose *expanded* answer set exceeds the cap
	// is rejected with 413 response_too_large as soon as the cap is hit,
	// without ever materializing the rest. 0 = unlimited.
	MaxResponseBytes int64
	// Profiles extends or overrides the built-in engine profiles by
	// name — tests inject tiny-budget profiles this way.
	Profiles map[string]repro.Profile
	// DefaultProfile names the profile used when a request names none
	// (default "native").
	DefaultProfile string
	// DefaultStrategy names the strategy used when a request names none
	// (default "gcov").
	DefaultStrategy string
}

// Server answers SPARQL BGP queries over HTTP. Create with New, serve
// its Handler.
type Server struct {
	store           *repro.Store
	cache           *repro.PlanCache
	answerers       map[string]*repro.Answerer
	loops           map[string]*repro.FeedbackLoop // per profile; nil when disabled
	profileNames    []string                       // sorted, for error messages
	sem             chan struct{}
	defaultProfile  string
	defaultStrategy string
	defaultTimeout  time.Duration
	maxTimeout      time.Duration
	maxRespBytes    int64

	mu sync.Mutex // serializes store mutations (update, compact)

	served   atomic.Int64
	rejected atomic.Int64

	mux *http.ServeMux
}

// New builds a Server over cfg.Store (freezing it if needed) with one
// answerer per engine profile, all sharing one plan cache.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, errors.New("server: Config.Store is required")
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 4 * runtime.GOMAXPROCS(0)
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 30 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 4 * cfg.DefaultTimeout
	}
	if cfg.DefaultProfile == "" {
		cfg.DefaultProfile = repro.Native.Name
	}
	if cfg.DefaultStrategy == "" {
		cfg.DefaultStrategy = string(repro.GCov)
	}

	profiles := make(map[string]repro.Profile)
	for _, name := range repro.ProfileNames() {
		p, _ := repro.ProfileByName(name)
		profiles[name] = p
	}
	for name, p := range cfg.Profiles {
		profiles[name] = p
	}
	if _, ok := profiles[cfg.DefaultProfile]; !ok {
		return nil, fmt.Errorf("server: unknown default profile %q", cfg.DefaultProfile)
	}
	if _, ok := repro.StrategyByName(cfg.DefaultStrategy); !ok {
		return nil, fmt.Errorf("server: unknown default strategy %q", cfg.DefaultStrategy)
	}

	s := &Server{
		store:           cfg.Store,
		cache:           repro.NewPlanCache(cfg.CacheCap),
		answerers:       make(map[string]*repro.Answerer, len(profiles)),
		sem:             make(chan struct{}, cfg.MaxInflight),
		defaultProfile:  cfg.DefaultProfile,
		defaultStrategy: cfg.DefaultStrategy,
		defaultTimeout:  cfg.DefaultTimeout,
		maxTimeout:      cfg.MaxTimeout,
		maxRespBytes:    cfg.MaxResponseBytes,
	}
	opts := cfg.Options
	opts.Trace = nil
	opts.PlanCache = s.cache
	if !cfg.NoFeedback {
		s.loops = make(map[string]*repro.FeedbackLoop, len(profiles))
	}
	for name, p := range profiles {
		popts := opts
		if s.loops != nil {
			s.loops[name] = repro.NewFeedbackLoop()
			popts.Feedback = s.loops[name]
		} else {
			popts.Feedback = nil
		}
		s.answerers[name] = cfg.Store.NewAnswerer(p, popts)
		s.profileNames = append(s.profileNames, name)
	}
	sort.Strings(s.profileNames)

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /query", s.handleQuery)
	s.mux.HandleFunc("POST /update", s.handleUpdate)
	s.mux.HandleFunc("POST /compact", s.handleCompact)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /statz", s.handleStatz)
	return s, nil
}

// Handler returns the HTTP handler — mount it on an http.Server or
// httptest.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// CacheStats returns a snapshot of the shared plan cache's counters.
func (s *Server) CacheStats() repro.PlanCacheStats { return s.cache.Snapshot() }

// FeedbackStats returns a snapshot of the named profile's feedback loop,
// or a zero snapshot when feedback is disabled or the profile unknown.
func (s *Server) FeedbackStats(profile string) repro.FeedbackStats {
	return s.loops[profile].Snapshot()
}

// QueryRequest is the body of POST /query.
type QueryRequest struct {
	// Query is the SPARQL BGP query text. Required.
	Query string `json:"query"`
	// Strategy is the answering strategy name; empty uses the server
	// default.
	Strategy string `json:"strategy,omitempty"`
	// Profile is the engine profile name; empty uses the server default.
	Profile string `json:"profile,omitempty"`
	// TimeoutMS overrides the per-request deadline, capped by the
	// server's maximum; 0 uses the server default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// QueryResponse is the body of a successful POST /query.
type QueryResponse struct {
	Vars      []string   `json:"vars"`
	Rows      [][]string `json:"rows"`
	Strategy  string     `json:"strategy"`
	Profile   string     `json:"profile"`
	ElapsedMS float64    `json:"elapsed_ms"`
}

// ErrorResponse is the body of every non-2xx answer: a stable typed
// error name plus a human-readable message.
type ErrorResponse struct {
	Error   string `json:"error"`
	Message string `json:"message"`
}

// statusFor maps an evaluation error to its HTTP status and stable typed
// name. Resource-limit rejections are the client's query asking for more
// than the profile allows (413); a work budget exhausted mid-flight is
// closer to server load shedding (503); a canceled context is the
// request deadline (504).
func statusFor(err error) (int, string) {
	switch {
	case errors.Is(err, repro.ErrCanceled):
		return http.StatusGatewayTimeout, "canceled"
	case errors.Is(err, repro.ErrWorkBudget):
		return http.StatusServiceUnavailable, "work_budget"
	case errors.Is(err, repro.ErrMemoryBudget):
		return http.StatusRequestEntityTooLarge, "memory_budget"
	case errors.Is(err, repro.ErrPlanTooComplex):
		return http.StatusRequestEntityTooLarge, "plan_too_complex"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	default:
		s.rejected.Add(1)
		writeJSON(w, http.StatusTooManyRequests, ErrorResponse{
			Error:   "overloaded",
			Message: fmt.Sprintf("too many in-flight queries (limit %d)", cap(s.sem)),
		})
		return
	}

	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "bad_request", Message: err.Error()})
		return
	}
	if req.Strategy == "" {
		req.Strategy = s.defaultStrategy
	}
	strat, ok := repro.StrategyByName(req.Strategy)
	if !ok {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{
			Error:   "unknown_strategy",
			Message: fmt.Sprintf("unknown strategy %q (valid: %s)", req.Strategy, strings.Join(repro.StrategyNames(), ", ")),
		})
		return
	}
	if req.Profile == "" {
		req.Profile = s.defaultProfile
	}
	a, ok := s.answerers[req.Profile]
	if !ok {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{
			Error:   "unknown_profile",
			Message: fmt.Sprintf("unknown profile %q (valid: %s)", req.Profile, strings.Join(s.profileNames, ", ")),
		})
		return
	}
	q, err := sparql.Parse(req.Query)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "bad_query", Message: err.Error()})
		return
	}

	timeout := s.defaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.maxTimeout {
		timeout = s.maxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	start := time.Now()
	res, err := a.QueryParsedContext(ctx, q, strat)
	if err != nil {
		code, name := statusFor(err)
		writeJSON(w, code, ErrorResponse{Error: name, Message: err.Error()})
		return
	}
	s.served.Add(1)
	var buf bytes.Buffer
	elapsed := float64(time.Since(start)) / float64(time.Millisecond)
	if err := encodeQueryResponse(&buf, res, req.Strategy, req.Profile, elapsed, s.maxRespBytes); err != nil {
		writeJSON(w, http.StatusRequestEntityTooLarge, ErrorResponse{
			Error:   "response_too_large",
			Message: fmt.Sprintf("encoded response exceeds the %d-byte limit", s.maxRespBytes),
		})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write(buf.Bytes()); err != nil {
		return // client went away; nothing left to tell it
	}
}

// errResponseTooLarge aborts response encoding at the size cap.
var errResponseTooLarge = errors.New("server: encoded response exceeds the size limit")

// encodeQueryResponse writes the QueryResponse JSON into buf by
// streaming the answer rows through the result's cursor: a factorized
// result is expanded and decoded one row at a time, so the only full
// copy of a large cross-product answer ever built is the response body
// itself — and with limit > 0 not even that: encoding stops with
// errResponseTooLarge the moment the body outgrows the cap, before any
// header is written.
func encodeQueryResponse(buf *bytes.Buffer, res *repro.Result, strategy, profile string, elapsedMS float64, limit int64) error {
	field := func(v any) {
		data, err := json.Marshal(v)
		if err != nil {
			return // cannot happen for strings, []string, float64
		}
		buf.Write(data)
	}
	buf.WriteString(`{"vars":`)
	field(res.Vars)
	buf.WriteString(`,"rows":[`)
	first, over := true, false
	res.Each(func(row []rdf.Term) bool {
		if !first {
			buf.WriteByte(',')
		}
		first = false
		out := make([]string, len(row))
		for j, term := range row {
			out[j] = term.Canonical()
		}
		field(out)
		if limit > 0 && int64(buf.Len()) > limit {
			over = true
			return false
		}
		return true
	})
	if over {
		return errResponseTooLarge
	}
	buf.WriteString(`],"strategy":`)
	field(strategy)
	buf.WriteString(`,"profile":`)
	field(profile)
	buf.WriteString(`,"elapsed_ms":`)
	field(elapsedMS)
	buf.WriteByte('}')
	if limit > 0 && int64(buf.Len()) > limit {
		return errResponseTooLarge
	}
	return nil
}

// UpdateResponse is the body of a successful POST /update.
type UpdateResponse struct {
	Added   int `json:"added,omitempty"`
	Removed int `json:"removed,omitempty"`
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	op := r.URL.Query().Get("op")
	if op == "" {
		op = "add"
	}
	switch op {
	case "add":
		s.mu.Lock()
		n, err := s.store.LoadNTriples(r.Body)
		s.mu.Unlock()
		if err != nil {
			writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "bad_update", Message: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, UpdateResponse{Added: n})
	case "remove":
		rd := ntriples.NewReader(r.Body)
		n := 0
		s.mu.Lock()
		for {
			t, err := rd.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				s.mu.Unlock()
				writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "bad_update", Message: err.Error()})
				return
			}
			removed, err := s.store.Remove(t)
			if err != nil {
				s.mu.Unlock()
				writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "bad_update", Message: err.Error()})
				return
			}
			if removed {
				n++
			}
		}
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, UpdateResponse{Removed: n})
	default:
		writeJSON(w, http.StatusBadRequest, ErrorResponse{
			Error:   "bad_op",
			Message: fmt.Sprintf("unknown op %q (valid: add, remove)", op),
		})
	}
}

func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	s.store.Compact()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// StatzResponse is the body of GET /statz.
type StatzResponse struct {
	Triples  int        `json:"triples"`
	Inflight int        `json:"inflight"`
	Served   int64      `json:"served"`
	Rejected int64      `json:"rejected"`
	Cache    CacheStatz `json:"cache"`
	// Feedback reports each profile's adaptive-cost loop, keyed by
	// profile name; absent when the server runs with NoFeedback.
	Feedback map[string]FeedbackStatz `json:"feedback,omitempty"`
}

// CacheStatz reports the shared plan cache's counters.
type CacheStatz struct {
	Entries       int     `json:"entries"`
	Hits          int64   `json:"hits"`
	Misses        int64   `json:"misses"`
	Invalidations int64   `json:"invalidations"`
	Evictions     int64   `json:"evictions"`
	Reprices      int64   `json:"reprices"`
	HitRate       float64 `json:"hit_rate"`
}

// FeedbackStatz reports one profile's adaptive-cost loop: how many
// evaluations it has observed, how often the estimates drifted past the
// re-pricing threshold, and the exponentially-weighted mean relative
// errors of the (corrected) cardinality and cost estimates.
type FeedbackStatz struct {
	Observations  int64   `json:"observations"`
	DriftEvents   int64   `json:"drift_events"`
	Corrections   int     `json:"corrections"`
	Version       uint64  `json:"version"`
	MeanCardError float64 `json:"mean_card_error"`
	MeanCostError float64 `json:"mean_cost_error"`
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	st := s.cache.Snapshot()
	resp := StatzResponse{
		Triples:  s.store.NumTriples(),
		Inflight: len(s.sem),
		Served:   s.served.Load(),
		Rejected: s.rejected.Load(),
		Cache: CacheStatz{
			Entries:       s.cache.Len(),
			Hits:          st.Hits,
			Misses:        st.Misses,
			Invalidations: st.Invalidations,
			Evictions:     st.Evictions,
			Reprices:      st.Reprices,
			HitRate:       st.HitRate(),
		},
	}
	if s.loops != nil {
		resp.Feedback = make(map[string]FeedbackStatz, len(s.loops))
		for name, l := range s.loops {
			fs := l.Snapshot()
			resp.Feedback[name] = FeedbackStatz{
				Observations:  fs.Observations,
				DriftEvents:   fs.DriftEvents,
				Corrections:   fs.Corrections,
				Version:       fs.Version,
				MeanCardError: fs.MeanCardError,
				MeanCostError: fs.MeanCostError,
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// writeJSON answers with a JSON body. A marshal failure of our own
// response types cannot happen; a write failure means the client went
// away and there is no one left to tell.
func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if _, err := w.Write(data); err != nil {
		return
	}
}
