package reformulate_test

import (
	"testing"

	"repro/internal/bgp"
	"repro/internal/dict"
	"repro/internal/rdf"
	"repro/internal/reformulate"
	"repro/internal/schema"
)

// Two expansions that coincide only after variable renaming (and atom
// reordering) must collapse to one UCQ member. With q(x) :- (x type C),
// (x type C) and a property p with domain C, expanding the first atom
// yields ((x p ?f0), (x type C)) and expanding the second yields
// ((x type C), (x p ?f1)): the same query up to renaming ?f0/?f1 and
// swapping the atoms, but with distinct raw bgp.CQ.Key values — the
// pre-fix dedup kept both.
func TestUCQDedupUpToRenaming(t *testing.T) {
	d := dict.New()
	vocab := schema.EncodeVocab(d)
	cls := d.Encode(rdf.NewIRI("urn:C"))
	p := d.Encode(rdf.NewIRI("urn:p"))
	s := schema.New(vocab)
	s.AddDomain(p, cls)
	closed := s.Close()

	atom := bgp.Atom{S: bgp.V(0), P: bgp.C(vocab.Type), O: bgp.C(cls)}
	q := bgp.CQ{Head: []bgp.Term{bgp.V(0)}, Atoms: []bgp.Atom{atom, atom}}
	r, err := reformulate.Reformulate(q, closed)
	if err != nil {
		t.Fatal(err)
	}

	rawKeys := make(map[string]struct{})
	canonKeys := make(map[string]struct{})
	r.Each(func(cq bgp.CQ) bool {
		rawKeys[cq.Key()] = struct{}{}
		canonKeys[cq.CanonicalKey()] = struct{}{}
		return true
	})
	if len(canonKeys) >= len(rawKeys) {
		t.Fatalf("precondition failed: want members that coincide only after renaming (raw %d, canonical %d)",
			len(rawKeys), len(canonKeys))
	}

	u, err := r.UCQ(0)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(u.CQs); got != len(canonKeys) {
		t.Errorf("UCQ kept %d members, want %d canonical-distinct (raw-distinct would be %d)",
			got, len(canonKeys), len(rawKeys))
	}
	// Honest sizing: the backing array must not be silently pinned at the
	// duplicate-counting NumCQs size.
	if n := r.NumCQs(); int64(cap(u.CQs)) >= n && n > int64(2*len(u.CQs)) {
		t.Errorf("UCQ capacity %d sized by raw member count %d", cap(u.CQs), n)
	}
	// Every surviving member must still be pairwise distinct canonically.
	seen := make(map[string]struct{})
	for _, cq := range u.CQs {
		k := cq.CanonicalKey()
		if _, dup := seen[k]; dup {
			t.Fatalf("duplicate canonical member survived: %v", cq)
		}
		seen[k] = struct{}{}
	}
}
