// Package reformulate implements the CQ-to-UCQ query reformulation
// algorithm of the database fragment of RDF (Reformulate, introduced by
// Goasdoué, Manolescu and Roatiş and recalled in Section 2.3 of the
// reproduced paper): given a conjunctive query q and the closed RDFS
// schema of a database, it produces the union of conjunctive queries whose
// evaluation against the *non-saturated* database returns q's complete
// answer set, q(db∞) = q_ref(db).
//
// The 13 reformulation rules fall into two groups, which the
// implementation exploits to keep the (often huge) output in factorized
// form:
//
//  1. Variable-instantiation rules. A variable in class position (the
//     object of an rdf:type atom) is bound to each class of the schema; a
//     variable in property position is bound to each schema property and
//     to rdf:type. Each binding is a query-wide substitution; the
//     unbound original is kept (it matches explicit triples, including
//     ones using values outside the schema). Binding a property variable
//     to rdf:type can place another variable in class position, so
//     instantiation iterates to fixpoint.
//
//  2. Atom-expansion rules, applied on the closed schema after
//     instantiation. With τ = rdf:type, ≼sc / ≼sp the closed class /
//     property inclusions, and ←d / ←r the closed domain / range typing:
//
//     (s, τ, c)  ⇒  (s, τ, c′)        for every c′ ≼sc c
//     (s, τ, c)  ⇒  (s, p, fresh)     for every p ←d c
//     (s, τ, c)  ⇒  (fresh, p, s)     for every p ←r c
//     (s, p, o)  ⇒  (s, p′, o)        for every p′ ≼sp p
//
//     Because the schema is closed, one expansion step is complete: a
//     subproperty of a property whose domain is a subclass of c is already
//     listed by ←d c. Schema-level atoms (rdfs:subClassOf etc.) need no
//     expansion: the closed constraint triples are loaded into the store,
//     the mixed-saturation arrangement the paper describes for
//     schema-only saturation.
//
// Crucially for this paper, expansion alternatives of different atoms are
// independent once instantiation has been applied, so a reformulation is a
// set of "blocks" (one per instantiation), each a cross product of
// per-atom alternative lists. |q_ref| and the cost-model quantities can be
// computed from this factorized form without materializing the union —
// which is what makes pricing a 300,000-CQ reformulation feasible — while
// Each and UCQ stream or materialize the members on demand.
package reformulate

import (
	"errors"
	"fmt"

	"repro/internal/bgp"
	"repro/internal/dict"
	"repro/internal/schema"
)

// ErrTooLarge is returned by UCQ when the reformulation has more member
// CQs than the requested limit (or than fits in an int).
var ErrTooLarge = errors.New("reformulate: union of conjunctive queries exceeds the materialization limit")

// Block is one variable instantiation of the query: the substituted head
// and, per original atom, the list of expansion alternatives. Every member
// CQ of the block picks one alternative per slot.
type Block struct {
	Head  []bgp.Term
	Slots [][]bgp.Atom
}

// Size returns the number of member CQs of the block.
func (b Block) Size() int64 {
	n := int64(1)
	for _, alts := range b.Slots {
		n *= int64(len(alts))
		if n <= 0 {
			return -1 // overflow; treated as "too large" by callers
		}
	}
	return n
}

// Reformulation is the factorized CQ-to-UCQ reformulation of a query.
type Reformulation struct {
	// Query is the input conjunctive query.
	Query bgp.CQ
	// Vars names the head columns; Vars[i] is the variable of the
	// original query's i-th head term.
	Vars []uint32
	// Blocks holds one entry per variable instantiation.
	Blocks []Block
}

// Reformulate computes the reformulation of q with respect to the closed
// schema. Every head term of q must be a variable (cover queries and
// user queries always satisfy this; reformulated members may not); a
// constant head position is reported as an error.
func Reformulate(q bgp.CQ, sch *schema.Closed) (*Reformulation, error) {
	r := &Reformulation{Query: q}
	for i, h := range q.Head {
		if !h.Var {
			return nil, fmt.Errorf("reformulate: head position %d of input query is not a variable: %s", i, q)
		}
		r.Vars = append(r.Vars, h.ID)
	}
	maxVar, _ := q.MaxVar()
	freshBase := maxVar + 1

	for _, inst := range instantiate(q, sch) {
		blk := Block{Head: inst.Head, Slots: make([][]bgp.Atom, len(inst.Atoms))}
		for i, a := range inst.Atoms {
			blk.Slots[i] = expandAtom(a, sch, freshBase+uint32(i))
		}
		r.Blocks = append(r.Blocks, blk)
	}
	return r, nil
}

// NumCQs returns the number of member CQs (|q_ref| in the paper's Table 4
// notation), or -1 if the count overflows int64.
func (r *Reformulation) NumCQs() int64 {
	var n int64
	for _, b := range r.Blocks {
		s := b.Size()
		if s < 0 {
			return -1
		}
		n += s
		if n < 0 {
			return -1
		}
	}
	return n
}

// Each streams every member CQ to f in a deterministic order, stopping
// early (and returning false) if f returns false.
func (r *Reformulation) Each(f func(bgp.CQ) bool) bool {
	for _, b := range r.Blocks {
		idx := make([]int, len(b.Slots))
		for {
			cq := bgp.CQ{Head: b.Head, Atoms: make([]bgp.Atom, len(b.Slots))}
			for i, alts := range b.Slots {
				cq.Atoms[i] = alts[idx[i]]
			}
			if !f(cq) {
				return false
			}
			// Advance the mixed-radix counter.
			i := len(idx) - 1
			for i >= 0 {
				idx[i]++
				if idx[i] < len(b.Slots[i]) {
					break
				}
				idx[i] = 0
				i--
			}
			if i < 0 {
				break
			}
		}
	}
	return true
}

// UCQ materializes the reformulation as a UCQ, deduplicating members that
// coincide up to variable renaming and atom reordering (the canonical key
// also used by the plan cache; the raw bgp.CQ.Key is order-sensitive, so
// two expansions that instantiate the same atoms through different slots
// used to survive dedup). It returns ErrTooLarge if the member count
// exceeds limit (limit <= 0 means no limit).
func (r *Reformulation) UCQ(limit int) (bgp.UCQ, error) {
	n := r.NumCQs()
	if n < 0 || (limit > 0 && n > int64(limit)) {
		return bgp.UCQ{}, fmt.Errorf("%w: %d members, limit %d", ErrTooLarge, n, limit)
	}
	// n counts duplicates, so it only bounds the members the union keeps;
	// sizing the slice and map by it would pin memory for CQs that dedup
	// away. Let append grow them to the honest size.
	u := bgp.UCQ{Vars: r.Vars}
	seen := make(map[string]struct{})
	r.Each(func(cq bgp.CQ) bool {
		k := cq.CanonicalKey()
		if _, dup := seen[k]; dup {
			return true
		}
		seen[k] = struct{}{}
		u.CQs = append(u.CQs, cq)
		return true
	})
	return u, nil
}

// instantiation is a variable instantiation of the query: the original
// query with some class- and property-position variables bound to schema
// values.
type instantiation struct {
	Head  []bgp.Term
	Atoms []bgp.Atom
}

type posKind uint8

const (
	classPos posKind = iota
	propPos
)

type decision struct {
	v    uint32
	kind posKind
}

// instantiate enumerates the variable instantiations of q: the cross
// product of, per class-position variable, "keep" plus each schema class,
// and per property-position variable, "keep" plus each schema property
// plus rdf:type. Binding a property variable to rdf:type can surface new
// class-position variables, which the worklist then revisits.
func instantiate(q bgp.CQ, sch *schema.Closed) []instantiation {
	start := instState{
		inst:    instantiation{Head: append([]bgp.Term(nil), q.Head...), Atoms: append([]bgp.Atom(nil), q.Atoms...)},
		decided: map[decision]bool{},
	}
	var done []instantiation
	stack := []instState{start}
	vocab := sch.Vocab()
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		d, ok := nextDecision(cur.inst.Atoms, cur.decided, vocab)
		if !ok {
			done = append(done, cur.inst)
			continue
		}

		// Option 1: keep the variable unbound.
		kept := instState{inst: cur.inst, decided: copyDecided(cur.decided)}
		kept.decided[d] = true
		stack = append(stack, kept)

		// Option 2..n: bind it to each applicable schema value.
		var values []dict.ID
		switch d.kind {
		case classPos:
			values = sch.Classes()
		case propPos:
			values = append(append(values, sch.Properties()...), vocab.Type)
		}
		for _, val := range values {
			stack = append(stack, cur.bind(d.v, bgp.C(val)))
		}
	}
	return done
}

// instState is one node of the instantiation search: a partially
// substituted query plus the positions already decided.
type instState struct {
	inst    instantiation
	decided map[decision]bool
}

// bind returns the state with variable v replaced by repl everywhere.
func (s instState) bind(v uint32, repl bgp.Term) instState {
	out := instState{
		inst: instantiation{
			Head:  make([]bgp.Term, len(s.inst.Head)),
			Atoms: make([]bgp.Atom, len(s.inst.Atoms)),
		},
		decided: copyDecided(s.decided),
	}
	for i, h := range s.inst.Head {
		if h.Var && h.ID == v {
			out.inst.Head[i] = repl
		} else {
			out.inst.Head[i] = h
		}
	}
	for i, a := range s.inst.Atoms {
		out.inst.Atoms[i] = a.Subst(v, repl)
	}
	return out
}

func copyDecided(m map[decision]bool) map[decision]bool {
	out := make(map[decision]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// nextDecision finds an undecided class- or property-position variable.
func nextDecision(atoms []bgp.Atom, decided map[decision]bool, vocab schema.Vocab) (decision, bool) {
	for _, a := range atoms {
		if a.P.Var {
			d := decision{v: a.P.ID, kind: propPos}
			if !decided[d] {
				return d, true
			}
		} else if a.P.Const() == vocab.Type && a.O.Var {
			d := decision{v: a.O.ID, kind: classPos}
			if !decided[d] {
				return d, true
			}
		}
	}
	return decision{}, false
}

// expandAtom returns the expansion alternatives of one (post-instantiation)
// atom: the atom itself plus the rule applications described in the package
// comment. freshVar is the variable number to use for the existential
// variable the domain/range rules introduce; it is unique per atom slot.
func expandAtom(a bgp.Atom, sch *schema.Closed, freshVar uint32) []bgp.Atom {
	out := []bgp.Atom{a}
	if a.P.Var {
		return out // property variables were handled by instantiation
	}
	vocab := sch.Vocab()
	p := a.P.Const()
	switch {
	case p == vocab.Type:
		if a.O.Var {
			return out // class variable kept unbound: explicit matches only
		}
		c := a.O.Const()
		for _, sub := range sch.SubClassesOf(c) {
			out = append(out, bgp.Atom{S: a.S, P: a.P, O: bgp.C(sub)})
		}
		for _, prop := range sch.PropertiesWithDomain(c) {
			out = append(out, bgp.Atom{S: a.S, P: bgp.C(prop), O: bgp.V(freshVar)})
		}
		for _, prop := range sch.PropertiesWithRange(c) {
			out = append(out, bgp.Atom{S: bgp.V(freshVar), P: bgp.C(prop), O: a.S})
		}
	case vocab.IsConstraintProperty(p):
		// Schema-level atom: answered against the closed constraint
		// triples loaded in the store.
	default:
		for _, sub := range sch.SubPropertiesOf(p) {
			out = append(out, bgp.Atom{S: a.S, P: bgp.C(sub), O: a.O})
		}
	}
	return out
}
