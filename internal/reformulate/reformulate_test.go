package reformulate_test

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bgp"
	"repro/internal/naive"
	"repro/internal/rdf"
	"repro/internal/reformulate"
	"repro/internal/schema"
	"repro/internal/testkit"
)

// Example 4 of the paper: q(x, y) :- x rdf:type y over the book database.
// The paper lists 11 reformulations; our rule set produces the 8 of them
// that are sound under standard RDFS entailment. The paper's items (3),
// (7) and (10) — e.g. q(x, Book) :- x hasAuthor z — generalize writtenBy
// to its *super*property hasAuthor, but an explicit hasAuthor triple does
// not entail that its subject is a Book (only writtenBy carries that
// domain), so those members can return non-certain answers on databases
// with explicit hasAuthor assertions. Dropping them loses no answers:
// TestReformulationEquivalentToSaturation checks exact agreement with
// saturation, and TestReformulationSound checks every member is certain.
func TestPaperExample4(t *testing.T) {
	e := testkit.Paper()
	q := bgp.CQ{
		Head:  []bgp.Term{bgp.V(0), bgp.V(1)},
		Atoms: []bgp.Atom{{S: bgp.V(0), P: bgp.C(e.Vocab.Type), O: bgp.V(1)}},
	}
	r := mustReformulate(q, e.Closed)
	if n := r.NumCQs(); n != 8 {
		var all []string
		r.Each(func(cq bgp.CQ) bool { all = append(all, cq.String()); return true })
		t.Fatalf("NumCQs = %d, want 8 (the sound subset of the paper's items (0)-(10)):\n%s",
			n, strings.Join(all, "\n"))
	}
	u, err := r.UCQ(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	// The answer over the raw store equals q over the saturated store.
	got := naive.EvalUCQ(e.RawStore(), u)
	want := naive.EvalCQ(e.SaturatedStore(), q)
	if !naive.Equal(got, want) {
		t.Errorf("reformulation answers %v, saturation answers %v", got, want)
	}
	// Example 3's expected answer: doi1 must be a Publication.
	doi1, pub := e.ID("doi1"), e.ID("Publication")
	found := false
	for _, row := range got {
		if row[0] == doi1 && row[1] == pub {
			found = true
		}
	}
	if !found {
		t.Error("doi1 rdf:type Publication not answered through reformulation")
	}
}

// Example 3 of the paper: names of authors of things connected to "1996".
// Evaluating q directly on the raw graph gives nothing; its reformulation
// must find George R. R. Martin through writtenBy ⊑ hasAuthor.
func TestPaperExample3(t *testing.T) {
	e := testkit.Paper()
	hasAuthor, hasName := e.ID("hasAuthor"), e.ID("hasName")
	// q(x3) :- x1 hasAuthor x2, x2 hasName x3, x1 x4 "1996"
	lit1996, ok := e.Dict.Lookup(rdf.NewLiteral("1996"))
	if !ok {
		t.Fatal("1996 literal not in dictionary")
	}
	q := bgp.CQ{
		Head: []bgp.Term{bgp.V(2)},
		Atoms: []bgp.Atom{
			{S: bgp.V(0), P: bgp.C(hasAuthor), O: bgp.V(1)},
			{S: bgp.V(1), P: bgp.C(hasName), O: bgp.V(2)},
			{S: bgp.V(0), P: bgp.V(3), O: bgp.C(lit1996)},
		},
	}
	raw := e.RawStore()
	if got := naive.EvalCQ(raw, q); len(got) != 0 {
		t.Fatalf("direct evaluation should be empty, got %v", got)
	}
	r := mustReformulate(q, e.Closed)
	u, err := r.UCQ(0)
	if err != nil {
		t.Fatal(err)
	}
	got := naive.EvalUCQ(raw, u)
	name, ok := e.Dict.Lookup(rdf.NewLiteral("George R. R. Martin"))
	if !ok {
		t.Fatal("author name not in dictionary")
	}
	if len(got) != 1 || got[0][0] != name {
		t.Errorf("reformulated answer = %v, want the author's name (%d)", got, name)
	}
}

// The central invariant of reformulation-based query answering
// (Section 2.3): q_ref evaluated on the raw database equals q evaluated
// on the saturated database — across random schemas, data and queries.
func TestReformulationEquivalentToSaturation(t *testing.T) {
	const seeds = 40
	const queriesPerDB = 8
	for seed := int64(0); seed < seeds; seed++ {
		e := testkit.Random(seed, 50)
		raw := e.RawStore()
		sat := e.SaturatedStore()
		rng := rand.New(rand.NewSource(seed * 1000))
		for i := 0; i < queriesPerDB; i++ {
			q := testkit.RandomQuery(e, rng)
			r := mustReformulate(q, e.Closed)
			u, err := r.UCQ(200000)
			if err != nil {
				t.Fatalf("seed %d query %d (%s): %v", seed, i, q, err)
			}
			got := naive.EvalUCQ(raw, u)
			want := naive.EvalCQ(sat, q)
			if !naive.Equal(got, want) {
				t.Errorf("seed %d query %d:\n  q = %s\n  |q_ref| = %d\n  reformulation: %v\n  saturation:    %v",
					seed, i, q, r.NumCQs(), got, want)
			}
		}
	}
}

// Reformulation must be sound even before completeness: every member CQ's
// answers are certain answers (a subset of the saturated evaluation).
func TestReformulationSound(t *testing.T) {
	for seed := int64(100); seed < 110; seed++ {
		e := testkit.Random(seed, 40)
		raw := e.RawStore()
		sat := e.SaturatedStore()
		rng := rand.New(rand.NewSource(seed))
		q := testkit.RandomQuery(e, rng)
		want := naive.EvalCQ(sat, q)
		inWant := make(map[string]bool)
		for _, row := range want {
			inWant[rowString(row)] = true
		}
		r := mustReformulate(q, e.Closed)
		r.Each(func(cq bgp.CQ) bool {
			for _, row := range naive.EvalCQ(raw, cq) {
				if !inWant[rowString(row)] {
					t.Errorf("seed %d: member %s yields non-certain answer %v", seed, cq, row)
					return false
				}
			}
			return true
		})
	}
}

func rowString(r naive.Row) string {
	var b strings.Builder
	for _, v := range r {
		b.WriteByte(byte(v))
		b.WriteByte(byte(v >> 8))
		b.WriteByte(byte(v >> 16))
		b.WriteByte(byte(v >> 24))
	}
	return b.String()
}

// NumCQs must equal the number of CQs streamed by Each and materialized
// by UCQ (up to key-level duplicates, which UCQ may remove).
func TestCountsConsistent(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		e := testkit.Random(seed, 30)
		rng := rand.New(rand.NewSource(seed + 77))
		q := testkit.RandomQuery(e, rng)
		r := mustReformulate(q, e.Closed)
		n := r.NumCQs()
		var streamed int64
		r.Each(func(bgp.CQ) bool { streamed++; return true })
		if streamed != n {
			t.Errorf("seed %d: NumCQs = %d but Each streamed %d", seed, n, streamed)
		}
		u, err := r.UCQ(0)
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(u.CQs)) > n {
			t.Errorf("seed %d: UCQ has %d members, more than NumCQs %d", seed, len(u.CQs), n)
		}
	}
}

// The materialization limit must be enforced.
func TestUCQLimit(t *testing.T) {
	e := testkit.Paper()
	q := bgp.CQ{
		Head:  []bgp.Term{bgp.V(0), bgp.V(1)},
		Atoms: []bgp.Atom{{S: bgp.V(0), P: bgp.C(e.Vocab.Type), O: bgp.V(1)}},
	}
	r := mustReformulate(q, e.Closed)
	if _, err := r.UCQ(3); !errors.Is(err, reformulate.ErrTooLarge) {
		t.Errorf("UCQ(3) error = %v, want ErrTooLarge", err)
	}
	if _, err := r.UCQ(11); err != nil {
		t.Errorf("UCQ(11) failed: %v", err)
	}
}

// Fresh variables introduced by domain/range expansion must be unique per
// atom slot and never collide with the query's own variables — otherwise
// two independent existentials would be forced equal.
func TestFreshVariablesDistinct(t *testing.T) {
	e := testkit.Paper()
	book := e.ID("Book")
	// Two type atoms over the same class: both expand with fresh vars.
	q := bgp.CQ{
		Head: []bgp.Term{bgp.V(0), bgp.V(1)},
		Atoms: []bgp.Atom{
			{S: bgp.V(0), P: bgp.C(e.Vocab.Type), O: bgp.C(book)},
			{S: bgp.V(1), P: bgp.C(e.Vocab.Type), O: bgp.C(book)},
		},
	}
	maxVar, _ := q.MaxVar()
	r := mustReformulate(q, e.Closed)
	r.Each(func(cq bgp.CQ) bool {
		// Collect fresh vars (IDs above the original max) per atom.
		perAtom := make([]map[uint32]bool, len(cq.Atoms))
		for i, a := range cq.Atoms {
			perAtom[i] = make(map[uint32]bool)
			var buf []uint32
			for _, v := range a.Vars(buf) {
				if v > maxVar {
					perAtom[i][v] = true
				}
			}
		}
		for i := range perAtom {
			for j := i + 1; j < len(perAtom); j++ {
				for v := range perAtom[i] {
					if perAtom[j][v] {
						t.Errorf("fresh variable ?v%d shared between atoms %d and %d in %s", v, i, j, cq)
						return false
					}
				}
			}
		}
		return true
	})
}

// Property-position variables are instantiated with every schema property
// plus rdf:type, and the unbound original is kept.
func TestPropertyVariableInstantiation(t *testing.T) {
	e := testkit.Paper()
	q := bgp.CQ{
		Head:  []bgp.Term{bgp.V(0)},
		Atoms: []bgp.Atom{{S: bgp.V(0), P: bgp.V(1), O: bgp.V(2)}},
	}
	r := mustReformulate(q, e.Closed)
	sawUnbound, sawType := false, false
	props := make(map[uint32]bool)
	r.Each(func(cq bgp.CQ) bool {
		p := cq.Atoms[0].P
		switch {
		case p.Var:
			sawUnbound = true
		case p.Const() == e.Vocab.Type:
			sawType = true
		default:
			props[p.ID] = true
		}
		return true
	})
	if !sawUnbound {
		t.Error("unbound original lost")
	}
	if !sawType {
		t.Error("rdf:type instantiation missing")
	}
	if len(props) < len(e.Closed.Properties()) {
		t.Errorf("only %d properties instantiated, schema has %d", len(props), len(e.Closed.Properties()))
	}
}

// Reformulating a query whose constants are outside the schema must
// return just the original query.
func TestNoConstraintsNoExpansion(t *testing.T) {
	e := testkit.Paper()
	p := e.ID("unrelatedProperty")
	q := bgp.CQ{
		Head:  []bgp.Term{bgp.V(0)},
		Atoms: []bgp.Atom{{S: bgp.V(0), P: bgp.C(p), O: bgp.V(1)}},
	}
	r := mustReformulate(q, e.Closed)
	if n := r.NumCQs(); n != 1 {
		t.Errorf("NumCQs = %d, want 1", n)
	}
}

// Head variables instantiated to schema constants must show up as
// constants in member heads (Example 4's q(x, Book)).
func TestHeadInstantiation(t *testing.T) {
	e := testkit.Paper()
	book := e.ID("Book")
	q := bgp.CQ{
		Head:  []bgp.Term{bgp.V(0), bgp.V(1)},
		Atoms: []bgp.Atom{{S: bgp.V(0), P: bgp.C(e.Vocab.Type), O: bgp.V(1)}},
	}
	r := mustReformulate(q, e.Closed)
	found := false
	r.Each(func(cq bgp.CQ) bool {
		if !cq.Head[1].Var && cq.Head[1].Const() == book {
			found = true
			return false
		}
		return true
	})
	if !found {
		t.Error("no member CQ has Book as its second head term")
	}
}

// mustReformulate wraps the error-returning API for test queries that
// are well-formed by construction.
func mustReformulate(q bgp.CQ, sch *schema.Closed) *reformulate.Reformulation {
	r, err := reformulate.Reformulate(q, sch)
	if err != nil {
		panic(err)
	}
	return r
}

// A constant in the head violates the CQ form of Section 2.2 and must
// surface as an error, not a panic.
func TestReformulateConstantHead(t *testing.T) {
	e := testkit.Paper()
	q := bgp.CQ{
		Head:  []bgp.Term{bgp.C(e.Vocab.Type)},
		Atoms: []bgp.Atom{{S: bgp.V(0), P: bgp.C(e.Vocab.Type), O: bgp.V(1)}},
	}
	if _, err := reformulate.Reformulate(q, e.Closed); err == nil {
		t.Fatal("Reformulate accepted a constant head term")
	}
}
