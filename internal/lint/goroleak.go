package lint

// goroleak targets the goroutine-leak class PR 3 fixed by hand in the
// ECov pool: goroutines launched inside a loop multiply, so each one
// must be joinable (WaitGroup Add/Done pairing) or abortable (a select
// that can be released by a channel, or a range over a channel that the
// producer closes). A loop-launched goroutine with neither can
// accumulate without bound and outlive the query that spawned it.
//
// Two rules:
//
//  1. A `go` statement lexically inside a for/range loop must launch a
//     closure that (a) calls Done on some WaitGroup, (b) contains a
//     select statement (abort-channel pattern), or (c) ranges over a
//     channel (drains until close). Launching a named function in a
//     loop is reported too: the analyzer cannot see its body, so the
//     call site must either wrap it in a compliant closure or carry a
//     justified //lint:ignore.
//
//  2. Any closure launched with `go` that calls wg.Done() must be
//     preceded by a wg.Add(...) on the same WaitGroup on EVERY path
//     from function entry to the `go` statement (a must-dataflow
//     check). Done without a guaranteed Add panics the WaitGroup or —
//     worse — lets Wait return early.

import (
	"go/ast"
	"go/types"
)

var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc: "report loop-launched goroutines without WaitGroup pairing or an abort " +
		"channel, and WaitGroup.Done goroutines not preceded by Add on every path",
	Run: runGoroLeak,
}

func runGoroLeak(pass *Pass) {
	for _, fb := range funcBodies(pass.Pkg) {
		checkFuncGoroutines(pass, fb.body)
	}
}

func checkFuncGoroutines(pass *Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo()

	// Collect the go statements of this body (not of nested closures)
	// with their loop-nesting context.
	type goSite struct {
		stmt   *ast.GoStmt
		inLoop bool
	}
	var sites []goSite
	var walk func(n ast.Node, inLoop bool)
	walk = func(n ast.Node, inLoop bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				return false // separate function, separate analysis
			case *ast.ForStmt:
				walk(m.Body, true)
				return false
			case *ast.RangeStmt:
				walk(m.Body, true)
				return false
			case *ast.GoStmt:
				sites = append(sites, goSite{stmt: m, inLoop: inLoop})
				// Do not descend: a nested `go` inside the closure
				// belongs to the closure's own analysis.
				return false
			}
			return true
		})
	}
	walk(body, false)
	if len(sites) == 0 {
		return
	}

	// Must-dataflow: fact i = "Add was called on WaitGroup path
	// addKeys[i] on every path to here".
	var addKeys []string
	addID := make(map[string]int)
	internAdd := func(key string) int {
		if id, ok := addID[key]; ok {
			return id
		}
		id := len(addKeys)
		addID[key] = id
		addKeys = append(addKeys, key)
		return id
	}
	wgCall := func(n ast.Node, method string) (string, bool) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return "", false
		}
		recv, name, ok := methodCall(call)
		if !ok || name != method {
			return "", false
		}
		tv, ok := info.Types[recv]
		if !ok || !namedIn(tv.Type, "sync", "WaitGroup") {
			return "", false
		}
		return pathKey(info, recv), true
	}
	// Pre-intern the Add sites so Transfer never mutates the tables.
	inspectShallow(body, func(n ast.Node) bool {
		if key, ok := wgCall(n, "Add"); ok && key != "" {
			internAdd(key)
		}
		return true
	})

	transfer := func(n ast.Node, fs *FactSet) {
		inspectShallow(n, func(m ast.Node) bool {
			if key, ok := wgCall(m, "Add"); ok && key != "" {
				if id, known := addID[key]; known {
					fs.Add(id)
				}
			}
			return true
		})
	}
	g := pass.CFG(body)
	flow := solve(g, &Problem{Join: JoinIntersect, Transfer: transfer})

	// addBefore[goStmt] = set of WaitGroup keys guaranteed Added before
	// the statement runs, from the converged must-facts.
	addBefore := make(map[*ast.GoStmt]map[string]bool)
	flow.Walk(func(n ast.Node, before *FactSet) {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return
		}
		keys := make(map[string]bool)
		for id, key := range addKeys {
			if before.Has(id) {
				keys[key] = true
			}
		}
		addBefore[gs] = keys
	})

	for _, site := range sites {
		fl, isClosure := ast.Unparen(site.stmt.Call.Fun).(*ast.FuncLit)
		if !isClosure {
			if site.inLoop {
				pass.Reportf(site.stmt.Pos(), "goroutine launched in a loop calls a named function; the analyzer cannot prove it is joinable — wrap it in a closure with WaitGroup pairing or an abort channel")
			}
			continue
		}
		doneKeys, hasSelect, rangesChan := closureJoinability(info, fl)
		if len(doneKeys) > 0 {
			// Rule 2: every Done needs an Add guaranteed before launch.
			guaranteed := addBefore[site.stmt]
			for key, text := range doneKeys {
				if key == "" || !guaranteed[key] {
					pass.Reportf(site.stmt.Pos(), "goroutine calls %s.Done() but no %s.Add() is guaranteed on every path before the go statement",
						text, text)
				}
			}
			continue
		}
		if site.inLoop && !hasSelect && !rangesChan {
			pass.Reportf(site.stmt.Pos(), "goroutine launched in a loop has no WaitGroup.Done, abort-channel select, or channel range; it can leak")
		}
	}
}

// closureJoinability inspects a go'd closure body for the three
// joinability signals: WaitGroup.Done calls (keyed by WaitGroup path,
// mapped to source text), a select statement, or a range over a
// channel. Nested closures launched inside are their own problem and
// are not descended into.
func closureJoinability(info *types.Info, fl *ast.FuncLit) (doneKeys map[string]string, hasSelect, rangesChan bool) {
	doneKeys = make(map[string]string)
	inspectShallow(fl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if recv, name, ok := methodCall(n); ok && name == "Done" {
				if tv, ok := info.Types[recv]; ok && namedIn(tv.Type, "sync", "WaitGroup") {
					doneKeys[pathKey(info, recv)] = pathText(recv)
				}
			}
		case *ast.SelectStmt:
			hasSelect = true
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					rangesChan = true
				}
			}
		}
		return true
	})
	return doneKeys, hasSelect, rangesChan
}
