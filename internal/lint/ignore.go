package lint

import (
	"go/token"
	"strings"
)

// directive is one //lint:ignore comment.
type directive struct {
	pos      token.Position
	analyzer string // analyzer name, or "*" for all
	reason   string
	bad      bool // malformed: missing analyzer or reason
}

const directivePrefix = "//lint:ignore"

// collectDirectives gathers every //lint:ignore directive of the
// package.
func collectDirectives(pkg *Package) []directive {
	var out []directive
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, directivePrefix)
				if !ok {
					continue
				}
				// "//lint:ignoreX" is not a directive.
				if text != "" && text[0] != ' ' && text[0] != '\t' {
					continue
				}
				d := directive{pos: pkg.Fset.Position(c.Pos())}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					d.bad = true
				} else {
					d.analyzer = fields[0]
					d.reason = strings.Join(fields[1:], " ")
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// suppresses reports whether the directive applies to the diagnostic:
// same file, matching analyzer (or "*"), and placed on the diagnostic's
// line or the line directly above it.
func (d directive) suppresses(diag Diagnostic) bool {
	if d.bad || d.pos.Filename != diag.Pos.Filename {
		return false
	}
	if d.analyzer != "*" && d.analyzer != diag.Analyzer {
		return false
	}
	return d.pos.Line == diag.Pos.Line || d.pos.Line == diag.Pos.Line-1
}

// filterSuppressed drops diagnostics covered by a well-formed directive.
func filterSuppressed(diags []Diagnostic, dirs []directive) []Diagnostic {
	if len(dirs) == 0 {
		return diags
	}
	var out []Diagnostic
	for _, diag := range diags {
		suppressed := false
		for _, d := range dirs {
			if d.suppresses(diag) {
				suppressed = true
				break
			}
		}
		if !suppressed {
			out = append(out, diag)
		}
	}
	return out
}

// malformedDirectives reports directives missing an analyzer name or a
// reason; an unexplained suppression is as suspect as the finding it
// hides.
func malformedDirectives(dirs []directive) []Diagnostic {
	var out []Diagnostic
	for _, d := range dirs {
		if d.bad {
			out = append(out, Diagnostic{
				Pos:      d.pos,
				Analyzer: "ignore",
				Message:  "malformed directive: want //lint:ignore <analyzer> <reason>",
			})
		}
	}
	return out
}
