package lint

import (
	"fmt"
	"go/token"
	"strings"
)

// directive is one //lint:ignore comment.
type directive struct {
	pos      token.Position
	analyzer string // analyzer name, or "*" for all
	reason   string
	bad      bool // malformed: missing analyzer or reason
}

const directivePrefix = "//lint:ignore"

// collectDirectives gathers every //lint:ignore directive of the
// package.
func collectDirectives(pkg *Package) []directive {
	var out []directive
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, directivePrefix)
				if !ok {
					continue
				}
				// "//lint:ignoreX" is not a directive.
				if text != "" && text[0] != ' ' && text[0] != '\t' {
					continue
				}
				d := directive{pos: pkg.Fset.Position(c.Pos())}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					d.bad = true
				} else {
					d.analyzer = fields[0]
					d.reason = strings.Join(fields[1:], " ")
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// suppresses reports whether the directive applies to the diagnostic:
// same file, matching analyzer (or "*"), and placed on the diagnostic's
// line or the line directly above it.
func (d directive) suppresses(diag Diagnostic) bool {
	if d.bad || d.pos.Filename != diag.Pos.Filename {
		return false
	}
	if d.analyzer != "*" && d.analyzer != diag.Analyzer {
		return false
	}
	return d.pos.Line == diag.Pos.Line || d.pos.Line == diag.Pos.Line-1
}

// filterSuppressed drops diagnostics covered by a well-formed
// directive, marking every directive that suppressed at least one
// finding in used (indexed like dirs) so the driver can report the
// stale ones.
func filterSuppressed(diags []Diagnostic, dirs []directive, used []bool) []Diagnostic {
	if len(dirs) == 0 {
		return diags
	}
	var out []Diagnostic
	for _, diag := range diags {
		suppressed := false
		for i, d := range dirs {
			if d.suppresses(diag) {
				suppressed = true
				used[i] = true
				// Keep scanning: overlapping directives each count as
				// used, so neither is falsely reported stale.
			}
		}
		if !suppressed {
			out = append(out, diag)
		}
	}
	return out
}

// staleDirectives reports well-formed directives that suppressed
// nothing: once the code they excused is fixed or gone, a lingering
// ignore is a trap for the next edit. Only directives naming an
// analyzer in the run set are judged (a directive for an analyzer that
// did not run is silent, not stale); "*" directives are judged against
// whatever did run, so callers should enable stale reporting only for
// full-suite runs.
func staleDirectives(dirs []directive, used []bool, runset map[string]bool) []Diagnostic {
	var out []Diagnostic
	for i, d := range dirs {
		if d.bad || used[i] {
			continue
		}
		if d.analyzer != "*" && !runset[d.analyzer] {
			continue
		}
		out = append(out, Diagnostic{
			Pos:      d.pos,
			Analyzer: "ignore",
			Message:  fmt.Sprintf("stale directive: no %s finding is suppressed here; remove it", d.analyzer),
		})
	}
	return out
}

// malformedDirectives reports directives missing an analyzer name or a
// reason; an unexplained suppression is as suspect as the finding it
// hides.
func malformedDirectives(dirs []directive) []Diagnostic {
	var out []Diagnostic
	for _, d := range dirs {
		if d.bad {
			out = append(out, Diagnostic{
				Pos:      d.pos,
				Analyzer: "ignore",
				Message:  "malformed directive: want //lint:ignore <analyzer> <reason>",
			})
		}
	}
	return out
}
