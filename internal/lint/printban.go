package lint

import (
	"go/ast"
)

// bannedPrinters are the console-printing functions library code must
// not call: output belongs to an injected io.Writer so that callers
// (CLIs, benchmarks, services) own their streams.
var bannedPrinters = map[string]bool{
	"fmt.Print":   true,
	"fmt.Printf":  true,
	"fmt.Println": true,
	"log.Print":   true,
	"log.Printf":  true,
	"log.Println": true,
	"log.Fatal":   true,
	"log.Fatalf":  true,
	"log.Fatalln": true,
	"log.Panic":   true,
	"log.Panicf":  true,
	"log.Panicln": true,
}

// PrintBan reports direct console output from internal packages.
var PrintBan = &Analyzer{
	Name: "printban",
	Doc:  "forbid fmt.Print*/log.Print* in internal packages; write to injected writers",
	Run: func(pass *Pass) {
		if !isInternal(pass.Pkg) {
			return
		}
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name := funcFullName(pass.TypesInfo(), call); bannedPrinters[name] {
					pass.Reportf(call.Pos(), "%s in library code; write to an injected io.Writer", name)
				}
				return true
			})
		}
	},
}
