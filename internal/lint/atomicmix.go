package lint

// atomicmix enforces the all-or-nothing rule of sync/atomic: once a
// word is accessed atomically anywhere, every access must be atomic.
// Mixed access is a data race even when it "works" — the race detector
// only catches the interleavings a test happens to schedule, while this
// analyzer catches the pattern statically. Three shapes are banned:
//
//  1. A variable or field passed by address to a sync/atomic function
//     (atomic.AddInt64(&x, 1)) that is also read or written directly
//     elsewhere in the package.
//  2. clear() over a slice or array whose elements are sync/atomic
//     types — a wholesale non-atomic store racing any concurrent
//     Load/Store on the elements (vet's copylocks misses this one).
//  3. Wholesale assignment to an lvalue whose type is (or is an array
//     of) a sync/atomic type — overwriting atomics non-atomically.
//
// Plain single-goroutine code that never touches sync/atomic is
// untouched; the rule activates per variable, on first atomic use.

import (
	"go/ast"
	"go/token"
	"go/types"
)

var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc: "report non-atomic reads/writes of variables that are accessed through " +
		"sync/atomic elsewhere (mixed access is a data race)",
	Run: runAtomicMix,
}

func runAtomicMix(pass *Pass) {
	info := pass.TypesInfo()

	// Pass 1: collect every variable object whose address escapes into
	// a sync/atomic call, and remember those use sites as sanctioned.
	atomicVars := make(map[*types.Var]ast.Expr) // object -> one atomic use (for the message)
	sanctioned := make(map[ast.Expr]bool)       // operand exprs inside atomic calls
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicFunc(info, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				if v := varOf(info, un.X); v != nil {
					if _, seen := atomicVars[v]; !seen {
						atomicVars[v] = un.X
					}
					sanctioned[ast.Unparen(un.X)] = true
				}
			}
			return true
		})
	}

	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				// Construction initializes fields before any reader can
				// hold the address; keyed initialization is sanctioned.
				for _, el := range n.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						sanctioned[ast.Unparen(kv.Key)] = true
					}
				}
			case *ast.Ident:
				if sanctioned[n] || info.Defs[n] != nil {
					return false // declaration or sanctioned use, not an access
				}
				v := varOf(info, n)
				if v == nil || v.IsField() {
					// A bare ident never denotes a field access; field
					// reads arrive as SelectorExpr below.
					return true
				}
				if _, tracked := atomicVars[v]; !tracked {
					return true
				}
				pass.Reportf(n.Pos(), "%s is accessed with sync/atomic elsewhere; this non-atomic access races with it",
					n.Name)
				return false
			case *ast.SelectorExpr:
				if sanctioned[n] {
					return false
				}
				v := varOf(info, n)
				if v == nil {
					return true
				}
				if _, tracked := atomicVars[v]; !tracked {
					return true
				}
				// &x to re-feed another atomic call was sanctioned in
				// pass 1; any other appearance is a mixed access.
				name := pathText(n)
				if name == "" {
					name = v.Name()
				}
				pass.Reportf(n.Pos(), "%s is accessed with sync/atomic elsewhere; this non-atomic access races with it",
					name)
				return false
			case *ast.CallExpr:
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "clear" && info.Uses[id] != nil {
					if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && len(n.Args) == 1 {
						if t, ok := info.Types[n.Args[0]]; ok && elemContainsAtomic(t.Type) {
							pass.Reportf(n.Pos(), "clear() stores zeros non-atomically into sync/atomic values; use an element-wise Store loop")
						}
					}
				}
			case *ast.AssignStmt:
				if n.Tok != token.ASSIGN {
					return true // := defines fresh storage no reader can hold yet
				}
				for _, lhs := range n.Lhs {
					if t, ok := info.Types[lhs]; ok && containsAtomic(t.Type) {
						pass.Reportf(lhs.Pos(), "wholesale assignment overwrites a sync/atomic value non-atomically; use Store")
					}
				}
			}
			return true
		})
	}
}

// varOf resolves an ident or selector to the variable (or field) object
// it denotes, or nil. Field objects are shared across instances, which
// makes the mixed-access rule per-field: atomically touching t1.n and
// plainly touching t2.n of the same struct type is still a finding,
// because the discipline is a property of the field, not the instance.
func varOf(info *types.Info, e ast.Expr) *types.Var {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok {
			return v
		}
		if v, ok := info.Defs[e].(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			if v, ok := sel.Obj().(*types.Var); ok && v.IsField() {
				return v
			}
			return nil
		}
		// Package-qualified var (pkg.V).
		if v, ok := info.Uses[e.Sel].(*types.Var); ok {
			return v
		}
	}
	return nil
}

// isAtomicFunc reports whether the call is to a function in sync/atomic
// (the free functions; the typed atomics are method-based and enforce
// themselves).
func isAtomicFunc(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	return fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// isAtomicType reports whether t is one of sync/atomic's typed values.
func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// containsAtomic reports whether t is an atomic type or an array
// (nested arbitrarily) of one.
func containsAtomic(t types.Type) bool {
	if isAtomicType(t) {
		return true
	}
	if arr, ok := t.Underlying().(*types.Array); ok {
		return containsAtomic(arr.Elem())
	}
	return false
}

// elemContainsAtomic reports whether a clear()-able value (slice or
// map) has elements holding atomics.
func elemContainsAtomic(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return containsAtomic(u.Elem())
	case *types.Map:
		return containsAtomic(u.Elem())
	}
	return false
}
