// Package goroleak is a lint fixture: goroutines launched in loops must
// be joinable or abortable.
package goroleak

import "sync"

func work() {}

// FanOut launches unjoinable goroutines in a loop.
func FanOut(jobs []int) {
	for range jobs {
		go func() {
			work()
		}()
	}
}

// FanOutJoined pairs a per-iteration Add with a deferred Done.
func FanOutJoined(jobs []int) {
	var wg sync.WaitGroup
	for range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// AddUpFront hoists one Add call before the loop.
func AddUpFront(jobs []int) {
	var wg sync.WaitGroup
	wg.Add(len(jobs))
	for range jobs {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// MissingAdd calls Done in the goroutine, but Add only happens on one
// path to the launch.
func MissingAdd(jobs []int, ready bool) {
	var wg sync.WaitGroup
	if ready {
		wg.Add(len(jobs))
	}
	for range jobs {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// Abortable can always be released through the abort channel.
func Abortable(jobs []int, abort <-chan struct{}) {
	for range jobs {
		go func() {
			select {
			case <-abort:
			}
		}()
	}
}

// Drainer ranges over a channel the producer closes.
func Drainer(outs []chan int) {
	for _, ch := range outs {
		go func() {
			for range ch {
			}
		}()
	}
}

// Named launches a function the analyzer cannot see into.
func Named(jobs []int) {
	for range jobs {
		go work()
	}
}

// NamedJustified is the same launch with a written justification.
func NamedJustified(jobs []int) {
	for range jobs {
		//lint:ignore goroleak fixture: work returns immediately; bounded by the test
		go work()
	}
}

// SingleShot is not in a loop; launching one goroutine is fine.
func SingleShot() {
	go func() {
		work()
	}()
}
