// Package lockguard is a lint fixture: writes to mutex-guarded state.
package lockguard

import "sync"

// Counter holds guarded state: Add locks mu around n, which is what
// establishes the inferred guard.
type Counter struct {
	mu sync.Mutex
	n  int
}

// Add increments under the lock.
func (c *Counter) Add() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// Reset writes the guarded field without locking.
func (c *Counter) Reset() {
	c.n = 0
}

// resetLocked runs with the caller's lock held, by convention.
func (c *Counter) resetLocked() {
	c.n = 0
}

var (
	tableMu sync.Mutex
	table   = map[string]int{}
)

// Put writes the package-level map under its lock.
func Put(k string, v int) {
	tableMu.Lock()
	defer tableMu.Unlock()
	table[k] = v
}

// Drop deletes from the guarded map without the lock.
func Drop(k string) {
	delete(table, k)
}
