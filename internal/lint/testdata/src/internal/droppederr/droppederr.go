// Package droppederr is a lint fixture: discarded error values.
package droppederr

import (
	"errors"
	"fmt"
	"strings"
)

func step() error { return errors.New("boom") }

func pair() (int, error) { return 0, errors.New("boom") }

// Drops exercises every discard form the analyzer flags.
func Drops() int {
	step()
	go step()
	defer step()
	_ = step()
	n, _ := pair()
	var _ = step()
	return n
}

// Exempt callees may discard their error results.
func Exempt() string {
	var b strings.Builder
	fmt.Fprintf(&b, "x")
	b.WriteString("y")
	return b.String()
}

// Handled errors are not findings.
func Handled() error {
	if err := step(); err != nil {
		return err
	}
	return nil
}
