// Package dictid is a lint fixture: hand-written dictionary codes.
package dictid

import "fixture/internal/dict"

// frozen is a hand-written ID in a typed constant declaration.
const frozen dict.ID = 42

// magic is an untyped constant a conversion smuggles into ID space.
const magic = 9000

// Vals exercises the literal and conversion forms.
func Vals(n int) []dict.ID {
	var out []dict.ID
	out = append(out, frozen)
	out = append(out, 7)
	out = append(out, dict.ID(9))
	out = append(out, dict.ID(magic))
	out = append(out, dict.None)
	out = append(out, 0)
	out = append(out, dict.ID(n))
	return out
}

//lint:ignore dictid fixture: deliberate sentinel
const allowed dict.ID = 99

// Use keeps the suppressed constant referenced.
func Use() dict.ID { return allowed }
