// Package panicfree is a lint fixture: library code that panics.
package panicfree

import "fmt"

// Bad panics on invalid input instead of returning an error.
func Bad(x int) int {
	if x < 0 {
		panic("negative input")
	}
	return x
}

// Wrapped panics with a formatted message.
func Wrapped(err error) {
	panic(fmt.Sprintf("failed: %v", err))
}

// Allowed documents an invariant helper and suppresses the finding.
func Allowed() {
	//lint:ignore panicfree fixture: documented invariant helper
	panic("unreachable")
}
