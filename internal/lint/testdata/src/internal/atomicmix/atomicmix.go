// Package atomicmix is a lint fixture: mixed atomic and plain access to
// the same words.
package atomicmix

import "sync/atomic"

// counter is updated through sync/atomic somewhere, so every access
// must go through the API.
var counter int64

// Bump updates atomically; this is what puts counter under the rule.
func Bump() { atomic.AddInt64(&counter, 1) }

// Peek reads the same word non-atomically.
func Peek() int64 { return counter }

// PeekAtomic reads through the API.
func PeekAtomic() int64 { return atomic.LoadInt64(&counter) }

// gauge mixes one atomic field with one plain field.
type gauge struct {
	hot  int64
	cold int64 // never touched atomically; plain access is fine
}

// Inc puts the hot field under the atomic rule.
func (g *gauge) Inc() { atomic.AddInt64(&g.hot, 1) }

// Read mixes: hot is atomic elsewhere, cold never was.
func (g *gauge) Read() int64 {
	return g.hot + g.cold
}

// table holds typed atomics behind a slice.
type table struct {
	slots []atomic.Uint32
}

// Reset zeroes the slots wholesale — a non-atomic store racing any
// concurrent Load.
func (t *table) Reset() { clear(t.slots) }

// ResetAtomic stores zero slot by slot.
func (t *table) ResetAtomic() {
	for i := range t.slots {
		t.slots[i].Store(0)
	}
}

// marks holds typed atomics in an array.
type marks struct {
	m [4]atomic.Uint32
}

// Zero overwrites the whole array non-atomically.
func (mk *marks) Zero() {
	mk.m = [4]atomic.Uint32{}
}

// quiesced is reset while no reader can exist.
type quiesced struct {
	tags []atomic.Uint32
}

// reset is justified: callers join every worker first.
func (q *quiesced) reset() {
	//lint:ignore atomicmix fixture: all workers joined; no concurrent access remains
	clear(q.tags)
}
