// Package tracezero is a lint fixture: allocating arguments to methods
// on possibly-nil spans.
package tracezero

import (
	"fmt"

	"fixture/internal/trace"
)

type ctx struct {
	span *trace.Span
}

// Unguarded formats an argument for a possibly-nil span.
func Unguarded(c *ctx, i int) {
	c.span.SetStr("arm", fmt.Sprintf("arm[%d]", i))
}

// Guarded proves the receiver non-nil first.
func Guarded(c *ctx, i int) {
	if c.span != nil {
		c.span.SetStr("arm", fmt.Sprintf("arm[%d]", i))
	}
}

// EarlyReturn uses the guard-and-return idiom.
func EarlyReturn(c *ctx, i int) *trace.Span {
	if c.span == nil {
		return nil
	}
	return c.span.Child(fmt.Sprintf("arm[%d]", i))
}

// Constant arguments never allocate, guarded or not.
func Constant(c *ctx) {
	c.span.SetStr("phase", "optimize")
	c.span.SetStr("k", "a"+"b") // constant-folded concat is free
}

// Concat is flagged for non-constant string concatenation too.
func Concat(c *ctx, name string) {
	c.span.SetStr("name", "arm:"+name)
}

// Reassigned loses the proof when the receiver path changes.
func Reassigned(c *ctx, other *trace.Span, i int) {
	if c.span != nil {
		c.span = other
		c.span.SetStr("arm", fmt.Sprintf("arm[%d]", i))
	}
}

// CompoundCond is conservatively unproven through &&; hoisting the nil
// check into its own if would satisfy the analyzer, the directive
// documents why this fixture keeps the compound form.
func CompoundCond(c *ctx, on bool, i int) {
	if c.span != nil && on {
		//lint:ignore tracezero fixture: nil check is present but folded into a compound condition
		c.span.SetStr("arm", fmt.Sprintf("arm[%d]", i))
	}
}
