// Package dict is a lint fixture standing in for the real dictionary
// package: the dictid analyzer matches the ID type by package and type
// name, and exempts the dict package itself.
package dict

// ID is a dictionary code.
type ID uint32

// None is the zero wildcard.
const None ID = 0
