// Package deferunlock is a lint fixture: locks that escape the function
// on some path.
package deferunlock

import (
	"errors"
	"sync"
)

var errFail = errors.New("fail")

// Box holds state guarded by an RWMutex.
type Box struct {
	mu sync.RWMutex
	n  int
}

// LeakOnError forgets the unlock on the error path.
func (b *Box) LeakOnError(fail bool) error {
	b.mu.Lock()
	if fail {
		return errFail // leaks the lock
	}
	b.mu.Unlock()
	return nil
}

// Deferred is the canonical safe shape.
func (b *Box) Deferred() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n++
}

// DeferClosure releases through a deferred closure.
func (b *Box) DeferClosure() {
	b.mu.Lock()
	defer func() { b.mu.Unlock() }()
	b.n++
}

// BranchComplete unlocks inline on every path.
func (b *Box) BranchComplete(fail bool) error {
	b.mu.Lock()
	if fail {
		b.mu.Unlock()
		return errFail
	}
	b.n++
	b.mu.Unlock()
	return nil
}

// ReadLeak leaks the read lock on the panic path; deferred unlocks
// would run, inline ones do not.
func (b *Box) ReadLeak() int {
	b.mu.RLock()
	if b.n < 0 {
		panic("negative")
	}
	n := b.n
	b.mu.RUnlock()
	return n
}

// DoubleChecked is the read-then-upgrade idiom; both acquisitions are
// path-complete.
func (b *Box) DoubleChecked() int {
	b.mu.RLock()
	n := b.n
	b.mu.RUnlock()
	if n != 0 {
		return n
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n = 42
	return b.n
}

// WrongMode releases the write lock with the read-side call; the write
// lock never dies.
func (b *Box) WrongMode() {
	b.mu.Lock()
	b.n++
	b.mu.RUnlock()
}

// Handoff intentionally returns holding the lock; the caller releases.
func (b *Box) Handoff() *Box {
	//lint:ignore deferunlock fixture: lock handoff — the caller unlocks
	b.mu.Lock()
	return b
}
