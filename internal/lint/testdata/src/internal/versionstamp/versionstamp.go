// Package versionstamp is a lint fixture: cross-query caches must read
// a version stamp when populated and compare one when hit.
package versionstamp

import "sync"

// Source hands out the current mutation version.
type Source struct{ current uint64 }

// Version returns the current mutation version.
func (s *Source) Version() uint64 { return s.current }

func observe(uint64) {}

// entry is one cached result with its stamp.
type entry struct {
	rows  []int
	stamp uint64
}

// stamped is a pre-stamped value; the stamp travels inside it.
type stamped struct {
	rows    []int
	Version uint64
}

// memo is the annotated cache under test.
//
//lint:cache memo
type memo struct {
	mu       sync.Mutex
	entries  map[string]entry
	prebuilt map[string]*stamped
}

// PutUnstamped populates the cache without reading any version.
func (m *memo) PutUnstamped(key string, rows []int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.entries[key] = entry{rows: rows}
}

// PutStamped reads the source version before populating.
func (m *memo) PutStamped(src *Source, key string, rows []int) {
	v := src.Version()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.entries[key] = entry{rows: rows, stamp: v}
}

// PutConditional observes the version on only one path to the write.
func (m *memo) PutConditional(src *Source, key string, rows []int, fresh bool) {
	if fresh {
		observe(src.Version())
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.entries[key] = entry{rows: rows}
}

// Install stores a pre-stamped value: the parameter type carries a
// version field, so the function is exempt.
func (m *memo) Install(key string, e *stamped) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.prebuilt[key] = e
}

// GetUnchecked serves a hit without comparing versions.
func (m *memo) GetUnchecked(key string) ([]int, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[key]
	return e.rows, ok
}

// GetChecked validates the stamp against the source.
func (m *memo) GetChecked(src *Source, key string) ([]int, bool) {
	v := src.Version()
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[key]
	if !ok || e.stamp != v {
		return nil, false
	}
	return e.rows, true
}

// Evict is maintenance, not a hit path.
func (m *memo) Evict(key string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.entries, key)
}

// Len is maintenance too.
func (m *memo) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// scratch is annotated but lives for one request only.
//
//lint:cache scratch
type scratch struct {
	m map[string][]int
}

// get hits without validation; justified because the cache dies before
// any mutation can happen.
func (s *scratch) get(key string) []int {
	//lint:ignore versionstamp fixture: per-request cache; entries die before any mutation
	return s.m[key]
}

// plain is NOT annotated; no rules apply to it.
type plain struct{ m map[string]int }

func (p *plain) bump(key string, n int) {
	p.m[key] = n
}
