// Package ignore is a lint fixture for directive handling.
package ignore

// Suppressed carries a justified directive on the line above.
func Suppressed() {
	//lint:ignore panicfree fixture: justified
	panic("suppressed")
}

// SameLine carries the directive on the offending line.
func SameLine() {
	panic("suppressed") //lint:ignore panicfree fixture: same line
}

// Wildcard suppresses every analyzer at the line.
func Wildcard() {
	//lint:ignore * fixture: wildcard
	panic("suppressed")
}

// WrongAnalyzer names a different analyzer, so the panic still fires.
func WrongAnalyzer() {
	//lint:ignore droppederr fixture: wrong analyzer
	panic("reported")
}

// Unjustified is malformed (no reason) and suppresses nothing.
func Unjustified() {
	//lint:ignore panicfree
	panic("reported")
}
