// Package trace is the fixture stand-in for the repository's trace
// package: a nil *Span is the disabled tracer and every method is
// nil-safe, which is exactly what makes eagerly-evaluated allocating
// arguments a trap.
package trace

// Span is one trace span; nil means tracing is off.
type Span struct {
	name  string
	attrs map[string]string
}

// Child opens a sub-span; on a nil receiver it returns nil.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{name: name, attrs: map[string]string{}}
}

// SetStr records a string attribute; no-op on nil.
func (s *Span) SetStr(k, v string) {
	if s == nil {
		return
	}
	s.attrs[k] = v
}
