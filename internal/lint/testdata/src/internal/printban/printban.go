// Package printban is a lint fixture: console output from library code.
package printban

import (
	"fmt"
	"io"
	"log"
)

// Report prints straight to the console.
func Report(n int) {
	fmt.Println("count:", n)
	log.Printf("n=%d", n)
}

// WriteReport writes to an injected writer, which is allowed.
func WriteReport(w io.Writer, n int) {
	fmt.Fprintf(w, "count: %d\n", n)
}
