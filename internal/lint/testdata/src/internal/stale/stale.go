// Package stale is a lint fixture for stale-directive reporting: a
// well-formed ignore that suppresses nothing is itself a finding.
package stale

// Live suppresses a real finding; the directive is used, not stale.
func Live() {
	//lint:ignore panicfree fixture: justified
	panic("suppressed")
}

// Dead keeps a directive whose finding was fixed long ago.
func Dead() {
	//lint:ignore panicfree fixture: the panic was removed but the directive lingered
}

// DeadWildcard suppresses nothing for any analyzer.
func DeadWildcard() {
	//lint:ignore * fixture: nothing fires here
}
