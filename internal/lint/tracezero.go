package lint

// tracezero protects the zero-allocation-when-off invariant of the
// trace package: a nil *trace.Span is the disabled tracer, and every
// Span method is nil-safe — but Go evaluates arguments before the call,
// so `sp.SetStr("arm", fmt.Sprintf("arm[%d]", i))` allocates and
// formats even when sp is nil and the call itself is a no-op. On the
// hot path (per-arm, per-binding) that turns "tracing off" into a
// steady allocation tax.
//
// The analyzer flags method calls on a possibly-nil *Span whose
// arguments allocate — a fmt.Sprint/Sprintf/Sprintln call or a
// non-constant string concatenation — unless the receiver is proven
// non-nil at the call by a must-dataflow over the function's CFG. The
// proof facts come from branch conditions: the true edge of `sp != nil`
// (and the false edge of `sp == nil`, covering the early-return guard
// idiom) generate "sp is non-nil", and any assignment to the receiver
// path (or a prefix of it) kills the fact. Compound conditions
// (`sp != nil && verbose`) conservatively prove nothing.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

var TraceZero = &Analyzer{
	Name: "tracezero",
	Doc: "report allocating arguments (fmt.Sprintf, string concat) to methods on a " +
		"possibly-nil *trace.Span; guard with a nil check to keep disabled tracing zero-alloc",
	Run: runTraceZero,
}

func runTraceZero(pass *Pass) {
	for _, fb := range funcBodies(pass.Pkg) {
		checkFuncTrace(pass, fb.body)
	}
}

// spanReceiver returns the receiver expression of a method call on a
// *Span from a package named "trace", or nil.
func spanReceiver(info *types.Info, call *ast.CallExpr) ast.Expr {
	recv, _, ok := methodCall(call)
	if !ok {
		return nil
	}
	tv, ok := info.Types[recv]
	if !ok {
		return nil
	}
	if _, isPtr := tv.Type.Underlying().(*types.Pointer); !isPtr {
		return nil // value receivers cannot be nil
	}
	if !namedIn(tv.Type, "trace", "Span") {
		return nil
	}
	return recv
}

// allocatingArg returns a short description of the first allocating
// sub-expression of the argument list: a fmt.Sprint* call or a
// non-constant string concatenation. Constant-folded concats ("a"+"b")
// are free and exempt.
func allocatingArg(info *types.Info, call *ast.CallExpr) string {
	desc := ""
	for _, arg := range call.Args {
		inspectShallow(arg, func(n ast.Node) bool {
			if desc != "" {
				return false
			}
			switch n := n.(type) {
			case *ast.CallExpr:
				if name := funcFullName(info, n); strings.HasPrefix(name, "fmt.Sprint") {
					desc = name
					return false
				}
			case *ast.BinaryExpr:
				if n.Op != token.ADD {
					return true
				}
				tv, ok := info.Types[n]
				if !ok {
					return true
				}
				if b, isBasic := tv.Type.Underlying().(*types.Basic); !isBasic || b.Info()&types.IsString == 0 {
					return true
				}
				if tv.Value == nil { // not constant-folded
					desc = "string concatenation"
					return false
				}
			}
			return true
		})
		if desc != "" {
			break
		}
	}
	return desc
}

func checkFuncTrace(pass *Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo()

	// Find the flagged candidate calls first; most functions have none
	// and skip the dataflow entirely.
	type candidate struct {
		call *ast.CallExpr
		recv ast.Expr
		key  string
		what string
	}
	var cands []candidate
	inspectShallow(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recv := spanReceiver(info, call)
		if recv == nil {
			return true
		}
		what := allocatingArg(info, call)
		if what == "" {
			return true
		}
		cands = append(cands, candidate{call: call, recv: recv, key: pathKey(info, recv), what: what})
		return true
	})
	if len(cands) == 0 {
		return
	}

	// Must-dataflow: fact i = "path nonNilKeys[i] is non-nil here".
	var nonNilKeys []string
	keyID := make(map[string]int)
	intern := func(key string) int {
		if id, ok := keyID[key]; ok {
			return id
		}
		id := len(nonNilKeys)
		keyID[key] = id
		nonNilKeys = append(nonNilKeys, key)
		return id
	}
	for _, c := range cands {
		if c.key != "" {
			intern(c.key)
		}
	}
	// Pre-intern guard paths from every nil-comparison condition so the
	// edge filter never mutates the tables.
	ast.Inspect(body, func(n ast.Node) bool {
		if path, _, ok := nilCheck(info, n); ok && path != "" {
			intern(path)
		}
		return true
	})

	transfer := func(n ast.Node, fs *FactSet) {
		inspectShallow(n, func(m ast.Node) bool {
			as, ok := m.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, lhs := range as.Lhs {
				w := pathKey(info, lhs)
				if w == "" {
					continue
				}
				for id, key := range nonNilKeys {
					if pathInvalidates(w, key) {
						fs.Remove(id)
					}
				}
			}
			return true
		})
	}
	edgeFilter := func(e Edge, fs *FactSet) {
		if e.Cond == nil {
			return
		}
		path, eq, ok := nilCheck(info, e.Cond)
		if !ok || path == "" {
			return
		}
		// `p != nil` proves non-nil on the true edge; `p == nil`
		// proves it on the false edge.
		if eq == e.Negated {
			if id, known := keyID[path]; known {
				fs.Add(id)
			}
		}
	}

	g := pass.CFG(body)
	flow := solve(g, &Problem{Join: JoinIntersect, Transfer: transfer, EdgeFilter: edgeFilter})

	proven := make(map[*ast.CallExpr]bool)
	flow.Walk(func(n ast.Node, before *FactSet) {
		inspectShallow(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, c := range cands {
				if c.call == call && c.key != "" {
					if id, known := keyID[c.key]; known && before.Has(id) {
						proven[call] = true
					}
				}
			}
			return true
		})
	})

	for _, c := range cands {
		if proven[c.call] {
			continue
		}
		recvText := pathText(c.recv)
		if recvText == "" {
			recvText = "the span"
		}
		pass.Reportf(c.call.Pos(), "%s argument is evaluated even when %s is nil; guard the call with a nil check to keep disabled tracing allocation-free",
			c.what, recvText)
	}
}

// nilCheck decomposes a `<path> == nil` / `nil == <path>` (eq=true) or
// `<path> != nil` (eq=false) comparison; ok is false for anything else.
func nilCheck(info *types.Info, n ast.Node) (path string, eq bool, ok bool) {
	be, isBin := n.(*ast.BinaryExpr)
	if !isBin || (be.Op != token.EQL && be.Op != token.NEQ) {
		return "", false, false
	}
	operand := ast.Expr(nil)
	if isNilIdent(info, be.Y) {
		operand = be.X
	} else if isNilIdent(info, be.X) {
		operand = be.Y
	} else {
		return "", false, false
	}
	return pathKey(info, operand), be.Op == token.EQL, true
}

// isNilIdent reports whether the expression is the predeclared nil.
func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}
