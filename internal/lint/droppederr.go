package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// droppedErrExempt lists callees whose error results may be discarded:
// fmt print errors are the underlying writer's and surface at
// Flush/Close time (the repository's table renderers rely on exactly
// that) or are stdout's and unactionable; bufio.Writer write errors are
// sticky and re-surface at Flush; bufio.Reader.UnreadByte fails only on
// API misuse; and strings.Builder / bytes.Buffer writes are documented
// never to fail.
func droppedErrExempt(name string) bool {
	switch name {
	case "fmt.Print", "fmt.Printf", "fmt.Println",
		"fmt.Fprint", "fmt.Fprintf", "fmt.Fprintln",
		"(*bufio.Writer).Write", "(*bufio.Writer).WriteByte",
		"(*bufio.Writer).WriteString", "(*bufio.Writer).WriteRune",
		"(*bufio.Reader).UnreadByte":
		return true
	}
	return strings.HasPrefix(name, "(*strings.Builder).") ||
		strings.HasPrefix(name, "(*bytes.Buffer).")
}

// DroppedErr reports discarded error values: bare call statements (also
// behind go/defer) whose results include an error, and assignments of
// an error to the blank identifier. A harness that drops an error can
// present a failed run as a paper-matching result, so every discard
// must be explicit and justified via //lint:ignore droppederr.
var DroppedErr = &Analyzer{
	Name: "droppederr",
	Doc:  "forbid discarding error values via bare calls or blank assignment",
	Run:  droppedErrRun,
}

func droppedErrRun(pass *Pass) {
	info := pass.TypesInfo()
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				droppedErrCheckCall(pass, stmt.X)
			case *ast.GoStmt:
				droppedErrCheckCall(pass, stmt.Call)
			case *ast.DeferStmt:
				droppedErrCheckCall(pass, stmt.Call)
			case *ast.AssignStmt:
				droppedErrCheckAssign(pass, stmt)
			case *ast.ValueSpec:
				for i, name := range stmt.Names {
					if name.Name != "_" {
						continue
					}
					if t := blankSpecType(info, stmt, i); t != nil && isErrorType(t) {
						pass.Reportf(name.Pos(), "error value discarded via blank identifier")
					}
				}
			}
			return true
		})
	}
}

// droppedErrCheckCall flags a statement-position call that produces an
// unhandled error.
func droppedErrCheckCall(pass *Pass, x ast.Expr) {
	call, ok := ast.Unparen(x).(*ast.CallExpr)
	if !ok || isConversion(pass.TypesInfo(), call) {
		return
	}
	tv, ok := pass.TypesInfo().Types[call]
	if !ok || !resultHasError(tv.Type) {
		return
	}
	name := funcFullName(pass.TypesInfo(), call)
	if droppedErrExempt(name) {
		return
	}
	if name == "" {
		name = "call"
	}
	pass.Reportf(call.Pos(), "result of %s includes an error that is discarded", name)
}

// droppedErrCheckAssign flags blank-identifier positions that receive an
// error.
func droppedErrCheckAssign(pass *Pass, stmt *ast.AssignStmt) {
	info := pass.TypesInfo()
	for i, lhs := range stmt.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		var t types.Type
		switch {
		case len(stmt.Rhs) == len(stmt.Lhs):
			if tv, ok := info.Types[stmt.Rhs[i]]; ok {
				t = tv.Type
			}
		case len(stmt.Rhs) == 1:
			// Multi-value call, channel receive, map index or type
			// assertion on the right.
			if tv, ok := info.Types[stmt.Rhs[0]]; ok {
				if tuple, ok := tv.Type.(*types.Tuple); ok && i < tuple.Len() {
					t = tuple.At(i).Type()
				}
			}
		}
		if t != nil && isErrorType(t) {
			if call, ok := ast.Unparen(stmt.Rhs[len(stmt.Rhs)-1]).(*ast.CallExpr); ok {
				if droppedErrExempt(funcFullName(info, call)) {
					continue
				}
			}
			pass.Reportf(id.Pos(), "error value discarded via blank identifier")
		}
	}
}

// blankSpecType resolves the type a blank name receives in a var spec.
func blankSpecType(info *types.Info, spec *ast.ValueSpec, i int) types.Type {
	switch {
	case len(spec.Values) == len(spec.Names):
		if tv, ok := info.Types[spec.Values[i]]; ok {
			return tv.Type
		}
	case len(spec.Values) == 1:
		if tv, ok := info.Types[spec.Values[0]]; ok {
			if tuple, ok := tv.Type.(*types.Tuple); ok && i < tuple.Len() {
				return tuple.At(i).Type()
			}
		}
	}
	return nil
}

// isErrorType reports whether t is exactly the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// resultHasError reports whether a call-result type includes an error.
func resultHasError(t types.Type) bool {
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}
