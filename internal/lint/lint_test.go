package lint_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/lint"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// The fixture module is loaded once and shared across the golden tests:
// the loader memoizes packages (and the standard library) per instance.
var (
	fixtureOnce   sync.Once
	fixtureLoader *lint.Loader
	fixtureErr    error
)

func fixture(t *testing.T) *lint.Loader {
	t.Helper()
	fixtureOnce.Do(func() {
		fixtureLoader, fixtureErr = lint.NewLoader(filepath.Join("testdata", "src"))
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return fixtureLoader
}

// runFixture runs one analyzer (or all, for "*") over one fixture
// package and returns the formatted diagnostics with paths relative to
// the fixture module root.
func runFixture(t *testing.T, analyzer, pattern string) []string {
	t.Helper()
	l := fixture(t)
	pkgs, err := l.Load(pattern)
	if err != nil {
		t.Fatal(err)
	}
	analyzers := lint.All()
	if analyzer != "*" {
		var unknown []string
		analyzers, unknown = lint.ByName([]string{analyzer})
		if len(unknown) > 0 {
			t.Fatalf("unknown analyzer %v", unknown)
		}
	}
	return lint.Format(lint.Run(pkgs, analyzers), l.Root())
}

func checkGolden(t *testing.T, name string, got []string) {
	t.Helper()
	text := strings.Join(got, "\n")
	if len(got) > 0 {
		text += "\n"
	}
	golden := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(golden, []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if text != string(want) {
		t.Errorf("%s diagnostics differ\ngot:\n%s\nwant:\n%s", name, text, want)
	}
}

// Each analyzer must keep firing on its fixture package even after the
// repository itself is lint-clean — the golden files pin the exact
// findings, positions and messages.
func TestAnalyzerFixtures(t *testing.T) {
	cases := []struct {
		analyzer string
		pattern  string
	}{
		{"panicfree", "./internal/panicfree"},
		{"droppederr", "./internal/droppederr"},
		{"dictid", "./internal/dictid"},
		{"lockguard", "./internal/lockguard"},
		{"printban", "./internal/printban"},
	}
	for _, c := range cases {
		t.Run(c.analyzer, func(t *testing.T) {
			checkGolden(t, c.analyzer, runFixture(t, c.analyzer, c.pattern))
		})
	}
}

// Directive handling: justified same-line and line-above suppressions
// hold, wildcard suppressions hold, a directive naming another analyzer
// does not suppress, and a directive without a reason is itself a
// finding.
func TestIgnoreDirectives(t *testing.T) {
	checkGolden(t, "ignore", runFixture(t, "*", "./internal/ignore"))
}

// The dict fixture package defines the ID type; the analyzer must stay
// silent inside it (the dictionary assigns IDs from integers by design).
func TestDictPackageExempt(t *testing.T) {
	if got := runFixture(t, "dictid", "./internal/dict"); len(got) != 0 {
		t.Errorf("dictid fired inside the dict package:\n%s", strings.Join(got, "\n"))
	}
}

// The repository must stay clean under its own linter: any new finding
// is either a bug to fix or a deliberate exception to justify with a
// //lint:ignore directive.
func TestRepositoryIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	l, err := lint.NewLoader(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if diags := lint.Run(pkgs, lint.All()); len(diags) > 0 {
		t.Errorf("repository has %d lint findings:\n%s",
			len(diags), strings.Join(lint.Format(diags, l.Root()), "\n"))
	}
}
