package lint_test

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/lint"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// The fixture module is loaded once and shared across the golden tests:
// the loader memoizes packages (and the standard library) per instance.
var (
	fixtureOnce   sync.Once
	fixtureLoader *lint.Loader
	fixtureErr    error
)

func fixture(t *testing.T) *lint.Loader {
	t.Helper()
	fixtureOnce.Do(func() {
		fixtureLoader, fixtureErr = lint.NewLoader(filepath.Join("testdata", "src"))
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return fixtureLoader
}

// runFixture runs one analyzer (or all, for "*") over one fixture
// package and returns the formatted diagnostics with paths relative to
// the fixture module root.
func runFixture(t *testing.T, analyzer, pattern string) []string {
	t.Helper()
	l := fixture(t)
	pkgs, err := l.Load(pattern)
	if err != nil {
		t.Fatal(err)
	}
	analyzers := lint.All()
	if analyzer != "*" {
		var unknown []string
		analyzers, unknown = lint.ByName([]string{analyzer})
		if len(unknown) > 0 {
			t.Fatalf("unknown analyzer %v", unknown)
		}
	}
	return lint.Format(lint.Run(pkgs, analyzers), l.Root())
}

func checkGolden(t *testing.T, name string, got []string) {
	t.Helper()
	text := strings.Join(got, "\n")
	if len(got) > 0 {
		text += "\n"
	}
	golden := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.WriteFile(golden, []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if text != string(want) {
		t.Errorf("%s diagnostics differ\ngot:\n%s\nwant:\n%s", name, text, want)
	}
}

// Each analyzer must keep firing on its fixture package even after the
// repository itself is lint-clean — the golden files pin the exact
// findings, positions and messages.
func TestAnalyzerFixtures(t *testing.T) {
	cases := []struct {
		analyzer string
		pattern  string
	}{
		{"panicfree", "./internal/panicfree"},
		{"droppederr", "./internal/droppederr"},
		{"dictid", "./internal/dictid"},
		{"lockguard", "./internal/lockguard"},
		{"printban", "./internal/printban"},
		{"deferunlock", "./internal/deferunlock"},
		{"atomicmix", "./internal/atomicmix"},
		{"goroleak", "./internal/goroleak"},
		{"versionstamp", "./internal/versionstamp"},
		{"tracezero", "./internal/tracezero"},
	}
	for _, c := range cases {
		t.Run(c.analyzer, func(t *testing.T) {
			checkGolden(t, c.analyzer, runFixture(t, c.analyzer, c.pattern))
		})
	}
}

// Directive handling: justified same-line and line-above suppressions
// hold, wildcard suppressions hold, a directive naming another analyzer
// does not suppress, and a directive without a reason is itself a
// finding.
func TestIgnoreDirectives(t *testing.T) {
	checkGolden(t, "ignore", runFixture(t, "*", "./internal/ignore"))
}

// The dict fixture package defines the ID type; the analyzer must stay
// silent inside it (the dictionary assigns IDs from integers by design).
func TestDictPackageExempt(t *testing.T) {
	if got := runFixture(t, "dictid", "./internal/dict"); len(got) != 0 {
		t.Errorf("dictid fired inside the dict package:\n%s", strings.Join(got, "\n"))
	}
}

// Stale-directive reporting under the full suite: the used directive is
// silent, the dead named directive and the dead wildcard are findings.
func TestStaleDirectives(t *testing.T) {
	l := fixture(t)
	pkgs, err := l.Load("./internal/stale")
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.RunWith(pkgs, lint.All(), lint.Options{ReportStale: true})
	checkGolden(t, "stale", lint.Format(diags, l.Root()))
}

// Under a subset run, a directive naming an analyzer outside the run
// set is silent — only full-suite runs can judge it (or a wildcard).
func TestStaleDirectivesSubsetRun(t *testing.T) {
	l := fixture(t)
	pkgs, err := l.Load("./internal/stale")
	if err != nil {
		t.Fatal(err)
	}
	subset, unknown := lint.ByName([]string{"droppederr"})
	if len(unknown) > 0 {
		t.Fatalf("unknown analyzers: %v", unknown)
	}
	diags := lint.RunWith(pkgs, subset, lint.Options{ReportStale: true})
	for _, d := range diags {
		if strings.Contains(d.Message, "no panicfree finding") {
			t.Errorf("panicfree directive judged stale under a droppederr-only run: %s", d)
		}
	}
}

// FormatJSON must emit one well-formed object per finding with every
// field populated — CI archives this output as an artifact and other
// tooling parses it line by line.
func TestFormatJSON(t *testing.T) {
	l := fixture(t)
	pkgs, err := l.Load("./internal/panicfree")
	if err != nil {
		t.Fatal(err)
	}
	analyzers, unknown := lint.ByName([]string{"panicfree"})
	if len(unknown) > 0 {
		t.Fatalf("unknown analyzers: %v", unknown)
	}
	diags := lint.Run(pkgs, analyzers)
	if len(diags) == 0 {
		t.Fatal("panicfree fixture produced no findings")
	}
	for _, line := range lint.FormatJSON(diags, l.Root()) {
		var d struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			t.Fatalf("unparseable JSONL line %q: %v", line, err)
		}
		if d.File == "" || d.Line == 0 || d.Column == 0 || d.Analyzer != "panicfree" || d.Message == "" {
			t.Errorf("incomplete JSON diagnostic: %s", line)
		}
		if filepath.IsAbs(d.File) {
			t.Errorf("file not relativized to the module root: %s", d.File)
		}
	}
}

// The loader must be safe for concurrent use: overlapping Load calls on
// one loader share memoized package state, and concurrent RunWith
// passes share per-package CFG memos. check.sh runs this under -race.
func TestLoaderConcurrentStress(t *testing.T) {
	l, err := lint.NewLoader(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	patterns := [][]string{
		{"./..."},
		{"./internal/lockguard", "./internal/deferunlock"},
		{"./internal/tracezero"},
		{"./internal/goroleak", "./internal/atomicmix", "./internal/versionstamp"},
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pkgs, err := l.Load(patterns[i%len(patterns)]...)
			if err != nil {
				t.Errorf("concurrent load %d: %v", i, err)
				return
			}
			if len(pkgs) == 0 {
				t.Errorf("concurrent load %d returned no packages", i)
				return
			}
			// Analyze as well: exercises the shared CFG memo under race.
			lint.RunWith(pkgs, lint.All(), lint.Options{Workers: 4})
		}(i)
	}
	wg.Wait()
}

// The repository must stay clean under its own linter: any new finding
// is either a bug to fix or a deliberate exception to justify with a
// //lint:ignore directive.
func TestRepositoryIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module")
	}
	l, err := lint.NewLoader(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	// ReportStale: every //lint:ignore in the repository must still be
	// suppressing a live finding — dead directives rot into traps.
	diags := lint.RunWith(pkgs, lint.All(), lint.Options{ReportStale: true})
	if len(diags) > 0 {
		t.Errorf("repository has %d lint findings:\n%s",
			len(diags), strings.Join(lint.Format(diags, l.Root()), "\n"))
	}
}
