package lint

// This file is the dataflow layer on top of the CFG: a forward
// worklist solver over small interned fact sets. An analyzer defines a
// problem by giving a transfer function (applied node by node inside a
// block) and, optionally, an edge filter that refines facts along
// branch edges (the piece nil-check guards need). Facts are opaque to
// the solver — analyzers intern whatever values identify their facts
// (a lock site, a guarded expression path) and get back dense IDs that
// the solver tracks in per-block bitsets.
//
// Two join modes cover the analyzers here:
//
//   - JoinUnion ("may"): a fact holds at a point if it holds on ANY
//     path there. deferunlock uses it — a lock that MAY still be held
//     at exit is a finding.
//   - JoinIntersect ("must"): a fact holds only if it holds on EVERY
//     path. tracezero and versionstamp use it — a guard or a version
//     read only counts if no path dodges it. Unreached blocks start at
//     TOP (all facts) so intersection over-approximates until real
//     inputs arrive; the worklist converges because transfer and join
//     are monotone and the fact space is finite.

import "go/ast"

// JoinMode selects how facts merge where paths meet.
type JoinMode uint8

const (
	JoinUnion     JoinMode = iota // fact holds on some path
	JoinIntersect                 // fact holds on every path
)

// FactSet is a bitset over interned fact IDs.
type FactSet struct {
	bits []uint64
	// top marks the lattice TOP element of a must-analysis: the state
	// of a block no path has reached yet, which intersects as identity.
	top bool
}

// Has reports whether fact id is in the set.
func (fs *FactSet) Has(id int) bool {
	if fs.top {
		return true
	}
	w := id >> 6
	return w < len(fs.bits) && fs.bits[w]&(1<<(uint(id)&63)) != 0
}

// Add inserts fact id.
func (fs *FactSet) Add(id int) {
	if fs.top {
		return
	}
	w := id >> 6
	for len(fs.bits) <= w {
		fs.bits = append(fs.bits, 0)
	}
	fs.bits[w] |= 1 << (uint(id) & 63)
}

// Remove deletes fact id. Removing from TOP is not meaningful for the
// analyzers here (they never kill before the state is reached), so TOP
// absorbs it.
func (fs *FactSet) Remove(id int) {
	if fs.top {
		return
	}
	w := id >> 6
	if w < len(fs.bits) {
		fs.bits[w] &^= 1 << (uint(id) & 63)
	}
}

// Empty reports whether the set holds no facts (TOP is never empty).
func (fs *FactSet) Empty() bool {
	if fs.top {
		return false
	}
	for _, w := range fs.bits {
		if w != 0 {
			return false
		}
	}
	return true
}

// clone returns an independent copy.
func (fs *FactSet) clone() *FactSet {
	c := &FactSet{top: fs.top}
	if len(fs.bits) > 0 {
		c.bits = append([]uint64(nil), fs.bits...)
	}
	return c
}

// join merges other into fs under the given mode, reporting change.
func (fs *FactSet) join(other *FactSet, mode JoinMode) bool {
	if mode == JoinUnion {
		changed := false
		for len(fs.bits) < len(other.bits) {
			fs.bits = append(fs.bits, 0)
		}
		for i, w := range other.bits {
			if nw := fs.bits[i] | w; nw != fs.bits[i] {
				fs.bits[i] = nw
				changed = true
			}
		}
		return changed
	}
	// Intersection: TOP is identity.
	if other.top {
		return false
	}
	if fs.top {
		fs.top = false
		fs.bits = append(fs.bits[:0], other.bits...)
		return true
	}
	changed := false
	for i := range fs.bits {
		var w uint64
		if i < len(other.bits) {
			w = other.bits[i]
		}
		if nw := fs.bits[i] & w; nw != fs.bits[i] {
			fs.bits[i] = nw
			changed = true
		}
	}
	return changed
}

// Problem defines a forward dataflow problem over one CFG.
type Problem struct {
	Join JoinMode
	// Transfer applies one node's effect to the running fact set.
	Transfer func(n ast.Node, fs *FactSet)
	// EdgeFilter, when non-nil, refines the fact set propagated along a
	// branch edge (after the source block's transfer). It may add or
	// remove facts based on the edge condition.
	EdgeFilter func(e Edge, fs *FactSet)
}

// Flow holds the solved per-block states of one problem on one CFG.
type Flow struct {
	cfg  *CFG
	prob *Problem
	// in[i] is the fact set at entry of block i, after convergence.
	in []*FactSet
}

// solve runs the worklist to a fixed point.
func solve(g *CFG, prob *Problem) *Flow {
	f := &Flow{cfg: g, prob: prob, in: make([]*FactSet, len(g.Blocks))}
	for i := range f.in {
		f.in[i] = &FactSet{top: prob.Join == JoinIntersect}
	}
	// Entry starts empty in both modes: no fact holds before the
	// function begins.
	f.in[g.Entry.Index] = &FactSet{}

	// Iterate in block-creation order, which the builder emits roughly
	// topologically; the worklist handles back edges.
	work := make([]*Block, 0, len(g.Blocks))
	inWork := make([]bool, len(g.Blocks))
	push := func(b *Block) {
		if !inWork[b.Index] {
			inWork[b.Index] = true
			work = append(work, b)
		}
	}
	push(g.Entry)
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		inWork[b.Index] = false
		out := f.in[b.Index].clone()
		for _, n := range b.Nodes {
			prob.Transfer(n, out)
		}
		for _, e := range b.Succs {
			cur := out
			if prob.EdgeFilter != nil {
				cur = out.clone()
				prob.EdgeFilter(e, cur)
			}
			if f.in[e.To.Index].join(cur, prob.Join) {
				push(e.To)
			}
		}
	}
	return f
}

// At returns the converged fact set at the entry of the block.
func (f *Flow) At(b *Block) *FactSet { return f.in[b.Index] }

// Walk replays the transfer function over every live block, calling
// visit with each node and the fact state holding immediately BEFORE
// that node executes. Reporting passes use it to ask "was the guard
// fact present when this call ran".
func (f *Flow) Walk(visit func(n ast.Node, before *FactSet)) {
	for _, b := range f.cfg.Blocks {
		if !b.Live {
			continue
		}
		fs := f.in[b.Index].clone()
		for _, n := range b.Nodes {
			visit(n, fs)
			f.prob.Transfer(n, fs)
		}
	}
}

// ExitFacts returns the converged fact set at the synthetic exit block
// — what a may-analysis reports as "still possible at return/panic".
func (f *Flow) ExitFacts() *FactSet { return f.in[f.cfg.Exit.Index] }
