package lint

import (
	"go/ast"
	"go/types"
)

// PanicFree reports panic calls in library (internal/*) packages.
// Library code must return errors: a panic crossing a package boundary
// turns a malformed query or a storage edge case into a process crash,
// which the query-serving north star cannot afford. Deliberate
// invariant helpers (accessors whose misuse is always a caller bug,
// documented as panicking) carry a //lint:ignore panicfree directive
// with the justification.
var PanicFree = &Analyzer{
	Name: "panicfree",
	Doc:  "forbid panic in internal packages; library code returns errors",
	Run: func(pass *Pass) {
		if !isInternal(pass.Pkg) {
			return
		}
		builtin := types.Universe.Lookup("panic")
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok || pass.TypesInfo().Uses[id] != builtin {
					return true
				}
				pass.Reportf(call.Pos(), "panic in library code; return an error instead")
				return true
			})
		}
	},
}
