package lint

// versionstamp machine-checks the cache-coherence discipline PR 4
// established after fixing stale-result bugs by hand: every artifact
// that outlives a single query evaluation (plan-cache entries,
// statistics memos, scan-cache rows) is stamped with the store mutation
// version it was computed against, and every hit validates the stamp.
// The reformulation engine's exactness guarantee (the paper's Sec. 3
// certain-answer semantics) silently breaks if any of these caches
// serves results from an older database state, so the discipline is
// promoted from convention to machine-checked invariant.
//
// Cache types opt in with an annotation on their type declaration:
//
//	//lint:cache <name>
//	type Cache struct { ... }
//
// The analyzer finds the map-typed storage fields reachable from the
// annotated struct (through same-package named structs, arrays, slices
// and pointers — e.g. Cache → shards [16]shard → shard.m) and checks,
// within the package:
//
//   - WRITERS: a function that stores into a cache map (m[k] = v) must
//     observe a version stamp on every path to the store — a call to a
//     method named Version, or a read of a variable/field/selector
//     whose name contains "version" or "stamp" (case-insensitive).
//     A function taking a parameter whose struct type itself declares a
//     version/stamp field is exempt: the stamp travels inside the
//     value (plancache.Put receives a pre-stamped *Entry).
//   - READERS: a function that looks a cache map up (v := m[k]) must
//     compare versions somewhere — an ==/!= whose operand mentions a
//     version/stamp name or calls a Version method. delete(), len()
//     and range are maintenance, not hit paths, and are exempt.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

var VersionStamp = &Analyzer{
	Name: "versionstamp",
	Doc: "report //lint:cache annotated cache writes that do not observe a " +
		"version stamp on every path, and cache hits that never compare one",
	Run: runVersionStamp,
}

const cacheDirective = "//lint:cache"

func runVersionStamp(pass *Pass) {
	info := pass.TypesInfo()

	// Collect annotated cache types and their reachable map fields.
	storage := make(map[*types.Var]string) // map-typed field -> cache name
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts := spec.(*ast.TypeSpec)
				name, ok := cacheAnnotation(gd.Doc, ts.Doc)
				if !ok {
					continue
				}
				if name == "" {
					name = ts.Name.Name
				}
				obj, ok := info.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				collectCacheMaps(obj.Type(), name, storage, make(map[types.Type]bool))
			}
		}
	}
	if len(storage) == 0 {
		return
	}

	for _, fb := range funcBodies(pass.Pkg) {
		checkCacheAccess(pass, fb, storage)
	}
}

// cacheAnnotation extracts the cache name from a //lint:cache directive
// in either the GenDecl or TypeSpec doc comment.
func cacheAnnotation(docs ...*ast.CommentGroup) (name string, ok bool) {
	for _, doc := range docs {
		if doc == nil {
			continue
		}
		for _, c := range doc.List {
			rest, found := strings.CutPrefix(c.Text, cacheDirective)
			if !found || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
				continue
			}
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// collectCacheMaps walks the type graph under an annotated cache type,
// registering every map-typed struct field reachable through
// same-package named types, pointers, arrays and slices.
func collectCacheMaps(t types.Type, cache string, storage map[*types.Var]string, seen map[types.Type]bool) {
	if seen[t] {
		return
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			ft := f.Type()
			if _, isMap := ft.Underlying().(*types.Map); isMap {
				storage[f] = cache
				continue
			}
			collectCacheMaps(ft, cache, storage, seen)
		}
	case *types.Pointer:
		collectCacheMaps(u.Elem(), cache, storage, seen)
	case *types.Array:
		collectCacheMaps(u.Elem(), cache, storage, seen)
	case *types.Slice:
		collectCacheMaps(u.Elem(), cache, storage, seen)
	}
}

// versionish reports whether a name smells like a version stamp.
func versionish(name string) bool {
	l := strings.ToLower(name)
	return strings.Contains(l, "version") || strings.Contains(l, "stamp")
}

// cacheFieldOf resolves the base of an index expression to an annotated
// cache map field.
func cacheFieldOf(info *types.Info, storage map[*types.Var]string, base ast.Expr) (string, bool) {
	sel, ok := ast.Unparen(base).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	selection, ok := info.Selections[sel]
	if !ok {
		return "", false
	}
	v, ok := selection.Obj().(*types.Var)
	if !ok {
		return "", false
	}
	cache, tracked := storage[v]
	return cache, tracked
}

// mentionsVersion reports whether the node reads a version-ish name or
// calls a method named Version.
func mentionsVersion(e ast.Node) bool {
	found := false
	inspectShallow(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if versionish(n.Name) {
				found = true
			}
		case *ast.CallExpr:
			if _, name, ok := methodCall(n); ok && name == "Version" {
				found = true
			}
		}
		return !found
	})
	return found
}

// hasStampedParam reports whether the function signature carries a
// parameter whose (pointer-stripped) struct type declares a version-ish
// field — the pre-stamped-value escape hatch.
func hasStampedParam(info *types.Info, fb funcBody) bool {
	var ftype *ast.FuncType
	if fb.lit != nil {
		ftype = fb.lit.Type
	} else {
		ftype = fb.decl.Type
	}
	if ftype.Params == nil {
		return false
	}
	for _, field := range ftype.Params.List {
		tv, ok := info.Types[field.Type]
		if !ok {
			continue
		}
		t := tv.Type
		if ptr, ok := t.Underlying().(*types.Pointer); ok {
			t = ptr.Elem()
		}
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if versionish(st.Field(i).Name()) {
				return true
			}
		}
	}
	return false
}

// checkCacheAccess applies the writer and reader rules to one function.
func checkCacheAccess(pass *Pass, fb funcBody, storage map[*types.Var]string) {
	info := pass.TypesInfo()
	body := fb.body

	// Find the cache writes (index expressions on the LHS of an
	// assignment) and cache reads (any other index expression) over
	// annotated map fields.
	type site struct {
		pos   token.Pos
		cache string
	}
	var writes, reads []site
	lhsIndex := make(map[*ast.IndexExpr]bool)
	inspectShallow(body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					lhsIndex[ix] = true
				}
			}
		}
		return true
	})
	inspectShallow(body, func(n ast.Node) bool {
		ix, ok := n.(*ast.IndexExpr)
		if !ok {
			return true
		}
		cache, tracked := cacheFieldOf(info, storage, ix.X)
		if !tracked {
			return true
		}
		if lhsIndex[ix] {
			writes = append(writes, site{pos: ix.Pos(), cache: cache})
		} else {
			reads = append(reads, site{pos: ix.Pos(), cache: cache})
		}
		return true
	})
	if len(writes) == 0 && len(reads) == 0 {
		return
	}

	// The pre-stamped-value escape hatch exempts the whole function:
	// both the write and the lookup that precedes an insert-or-replace
	// are part of installing a value that carries its own stamp.
	if hasStampedParam(info, fb) {
		return
	}

	// WRITER rule: version observed on every path to the write.
	if len(writes) > 0 {
		const versionFact = 0
		transfer := func(n ast.Node, fs *FactSet) {
			if mentionsVersion(n) {
				fs.Add(versionFact)
			}
		}
		g := pass.CFG(body)
		flow := solve(g, &Problem{Join: JoinIntersect, Transfer: transfer})
		reported := make(map[token.Pos]bool)
		flow.Walk(func(n ast.Node, before *FactSet) {
			// Version reads inside the same statement as the write
			// count (the transfer applies whole-node), so check the
			// state AFTER this node, not before.
			after := before.clone()
			transfer(n, after)
			inspectShallow(n, func(m ast.Node) bool {
				ix, ok := m.(*ast.IndexExpr)
				if !ok {
					return true
				}
				cache, tracked := cacheFieldOf(info, storage, ix.X)
				if !tracked || !lhsIndex[ix] || reported[ix.Pos()] {
					return true
				}
				if !after.Has(versionFact) {
					reported[ix.Pos()] = true
					pass.Reportf(ix.Pos(), "write to //lint:cache %q does not observe a version stamp on every path; read Version() (or a version/stamp field) before populating the entry",
						cache)
				}
				return true
			})
		})
	}

	// READER rule: a version comparison somewhere in the function.
	if len(reads) > 0 {
		comparesVersion := false
		inspectShallow(body, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if mentionsVersion(be.X) || mentionsVersion(be.Y) {
				comparesVersion = true
			}
			return !comparesVersion
		})
		if !comparesVersion {
			for _, r := range reads {
				pass.Reportf(r.pos, "hit path reads //lint:cache %q but the function never compares a version stamp; stale entries can leak across mutations",
					r.cache)
			}
		}
	}
}
