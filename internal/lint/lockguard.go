package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockGuard is a heuristic lock-discipline check. It infers which state
// a mutex guards — a struct field (or package-level variable) is
// considered guarded by a sibling sync.Mutex/sync.RWMutex if some
// function both locks that mutex and touches the field — and then
// reports any function that *writes* guarded state without taking the
// write lock.
//
// The analysis is deliberately method-granular, not flow-sensitive: a
// function that locks anywhere in its body is trusted for its writes.
// Reads without the lock are not reported (immutable-after-build fields
// are pervasive and legal under this repository's publication
// discipline). Helpers that run with the lock already held by their
// caller must carry a "Locked" name suffix or a //lint:ignore lockguard
// directive explaining the transfer of responsibility.
var LockGuard = &Analyzer{
	Name: "lockguard",
	Doc:  "report unlocked writes to state inferred to be mutex-guarded",
	Run:  lockGuardRun,
}

// isMutexType reports whether t is sync.Mutex, sync.RWMutex, or a
// pointer to one.
func isMutexType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// funcFacts summarizes one function body for the lock analysis.
type funcFacts struct {
	decl    *ast.FuncDecl
	locked  map[*types.Var]bool // mutexes write-locked anywhere in the body
	rlocked map[*types.Var]bool // mutexes read-locked anywhere in the body
	reads   map[*types.Var]bool // candidate objects read
	writes  map[*types.Var][]token.Pos
}

func lockGuardRun(pass *Pass) {
	info := pass.TypesInfo()

	// Candidate mutexes: struct fields and package-level variables of
	// mutex type declared in this package. candidateOf maps each
	// non-mutex struct field to the mutexes of its struct, and each
	// package-level variable to the package-level mutexes.
	structMutexes := make(map[*types.Var][]*types.Var) // field -> sibling mutex fields
	var pkgMutexes []*types.Var
	var pkgVars []*types.Var

	scope := pass.Pkg.Types.Scope()
	for _, name := range scope.Names() {
		obj := scope.Lookup(name)
		switch o := obj.(type) {
		case *types.TypeName:
			st, ok := o.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			var mus []*types.Var
			for i := 0; i < st.NumFields(); i++ {
				if f := st.Field(i); isMutexType(f.Type()) {
					mus = append(mus, f)
				}
			}
			if len(mus) == 0 {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				if f := st.Field(i); !isMutexType(f.Type()) {
					structMutexes[f] = mus
				}
			}
		case *types.Var:
			if isMutexType(o.Type()) {
				pkgMutexes = append(pkgMutexes, o)
			} else {
				pkgVars = append(pkgVars, o)
			}
		}
	}
	if len(structMutexes) == 0 && len(pkgMutexes) == 0 {
		return
	}
	pkgVarCandidate := make(map[*types.Var]bool, len(pkgVars))
	if len(pkgMutexes) > 0 {
		for _, v := range pkgVars {
			pkgVarCandidate[v] = true
		}
	}
	isCandidate := func(v *types.Var) bool {
		_, isField := structMutexes[v]
		return isField || pkgVarCandidate[v]
	}

	// Summarize every function of the package.
	var facts []*funcFacts
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			facts = append(facts, summarizeFunc(info, fd, isCandidate))
		}
	}

	// Guard inference: an object is guarded by mutex M if some function
	// holds M (either mode) while — at method granularity — touching it.
	guardedBy := make(map[*types.Var]map[*types.Var]bool) // object -> mutexes
	mark := func(obj, mu *types.Var) {
		// A struct field can only be guarded by a sibling mutex; a
		// package variable only by a package-level mutex.
		valid := false
		for _, sib := range structMutexes[obj] {
			if sib == mu {
				valid = true
			}
		}
		if pkgVarCandidate[obj] {
			for _, pm := range pkgMutexes {
				if pm == mu {
					valid = true
				}
			}
		}
		if !valid {
			return
		}
		if guardedBy[obj] == nil {
			guardedBy[obj] = make(map[*types.Var]bool)
		}
		guardedBy[obj][mu] = true
	}
	for _, ff := range facts {
		for mu := range ff.locked {
			for obj := range ff.reads {
				mark(obj, mu)
			}
			for obj := range ff.writes {
				mark(obj, mu)
			}
		}
		for mu := range ff.rlocked {
			for obj := range ff.reads {
				mark(obj, mu)
			}
			for obj := range ff.writes {
				mark(obj, mu)
			}
		}
	}

	// Violations: writes to guarded objects without the write lock.
	for _, ff := range facts {
		if strings.HasSuffix(ff.decl.Name.Name, "Locked") {
			continue // runs with the caller's lock held, by convention
		}
		for obj, positions := range ff.writes {
			mus := guardedBy[obj]
			if len(mus) == 0 {
				continue
			}
			missing := ""
			for mu := range mus {
				if !ff.locked[mu] {
					missing = mu.Name()
					break
				}
			}
			if missing == "" {
				continue
			}
			for _, pos := range positions {
				pass.Reportf(pos, "write to %s without holding %s (inferred to guard it)", obj.Name(), missing)
			}
		}
	}
}

// summarizeFunc records the locking calls, candidate-object reads and
// candidate-object writes of one function body (including closures).
func summarizeFunc(info *types.Info, fd *ast.FuncDecl, isCandidate func(*types.Var) bool) *funcFacts {
	ff := &funcFacts{
		decl:    fd,
		locked:  make(map[*types.Var]bool),
		rlocked: make(map[*types.Var]bool),
		reads:   make(map[*types.Var]bool),
		writes:  make(map[*types.Var][]token.Pos),
	}

	// resolve maps an expression to the candidate object it denotes:
	// a field selector (x.f) or a package-level variable identifier.
	resolve := func(e ast.Expr) *types.Var {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
				if v, ok := sel.Obj().(*types.Var); ok && isCandidate(v) {
					return v
				}
			}
			if v, ok := info.Uses[x.Sel].(*types.Var); ok && isCandidate(v) {
				return v // package-qualified variable
			}
		case *ast.Ident:
			if v, ok := info.Uses[x].(*types.Var); ok && isCandidate(v) {
				return v
			}
		}
		return nil
	}
	// writeRoot unwraps index/star expressions so that s.m[k] = v and
	// *s.p = v count as writes to s.m and s.p.
	var writeRoot func(e ast.Expr) ast.Expr
	writeRoot = func(e ast.Expr) ast.Expr {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			return writeRoot(x.X)
		case *ast.StarExpr:
			return writeRoot(x.X)
		case *ast.SliceExpr:
			return writeRoot(x.X)
		default:
			return x
		}
	}
	markWrite := func(e ast.Expr) {
		if v := resolve(writeRoot(e)); v != nil {
			ff.writes[v] = append(ff.writes[v], e.Pos())
		}
	}

	// mutexOf resolves the receiver of a .Lock/.RLock call to a mutex
	// variable: a field (x.mu), a package-level var (mu), or either
	// behind an address-of.
	mutexOf := func(e ast.Expr) *types.Var {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
				if v, ok := sel.Obj().(*types.Var); ok && isMutexType(v.Type()) {
					return v
				}
			}
			if v, ok := info.Uses[x.Sel].(*types.Var); ok && isMutexType(v.Type()) {
				return v
			}
		case *ast.Ident:
			if v, ok := info.Uses[x].(*types.Var); ok && isMutexType(v.Type()) {
				return v
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				return nil
			}
		}
		return nil
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				markWrite(lhs)
			}
		case *ast.IncDecStmt:
			markWrite(s.X)
		case *ast.UnaryExpr:
			if s.Op == token.AND {
				markWrite(s.X) // taking the address may alias a write
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(s.Fun).(*ast.Ident); ok &&
				info.Uses[id] == types.Universe.Lookup("delete") && len(s.Args) > 0 {
				markWrite(s.Args[0])
			}
			if sel, ok := ast.Unparen(s.Fun).(*ast.SelectorExpr); ok {
				if mu := mutexOf(sel.X); mu != nil {
					switch sel.Sel.Name {
					case "Lock":
						ff.locked[mu] = true
					case "RLock":
						ff.rlocked[mu] = true
					}
				}
			}
		case *ast.SelectorExpr:
			if v := resolve(s); v != nil {
				ff.reads[v] = true
			}
		case *ast.Ident:
			if v := resolve(s); v != nil {
				ff.reads[v] = true
			}
		}
		return true
	})
	return ff
}
