package lint

// All returns every analyzer of the suite, in the order findings are
// conventionally reported: the AST pattern analyzers from PR 1 first,
// then the flow-sensitive (CFG/dataflow) analyzers.
func All() []*Analyzer {
	return []*Analyzer{
		PanicFree, DroppedErr, DictID, LockGuard, PrintBan,
		DeferUnlock, AtomicMix, GoroLeak, VersionStamp, TraceZero,
	}
}

// ByName resolves analyzer names ("panicfree,dictid"); unknown names
// are reported by the caller.
func ByName(names []string) (out []*Analyzer, unknown []string) {
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	for _, n := range names {
		if a, ok := byName[n]; ok {
			out = append(out, a)
		} else {
			unknown = append(unknown, n)
		}
	}
	return out, unknown
}
