package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// DictID keeps dictionary codes and plain integers apart: an untyped
// integer literal must not flow into a dict.ID position, and a
// conversion to dict.ID must not be applied to an integer constant.
// Dictionary IDs are assigned by the dictionary; a hand-written ID is
// either a test fixture (tests are not linted) or a bug waiting for a
// dataset where the magic number means something else. The literal 0 is
// exempt: it is dict.None, the documented wildcard.
var DictID = &Analyzer{
	Name: "dictid",
	Doc:  "forbid integer literals and integer constants in dict.ID positions",
	Run:  dictIDRun,
}

// isDictIDType reports whether t is the dictionary ID type (a named
// type ID declared in a package named dict — matching both the real
// repro/internal/dict and test fixtures).
func isDictIDType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "ID" && obj.Pkg() != nil && obj.Pkg().Name() == "dict"
}

// declaredDictID reports whether the expression denotes an object whose
// declared type is dict.ID.
func declaredDictID(info *types.Info, e ast.Expr) bool {
	var obj types.Object
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj = info.Uses[x]
	case *ast.SelectorExpr:
		obj = info.Uses[x.Sel]
	}
	return obj != nil && isDictIDType(obj.Type())
}

func dictIDRun(pass *Pass) {
	// The dict package itself defines the boundary (None, Encode's
	// ID(len(...))) and is exempt.
	if pass.Pkg.Types.Name() == "dict" {
		return
	}
	info := pass.TypesInfo()
	reported := make(map[token.Pos]bool)
	report := func(pos token.Pos, format string, args ...any) {
		if !reported[pos] {
			reported[pos] = true
			pass.Reportf(pos, format, args...)
		}
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.ValueSpec:
				// const/var declarations with an explicit dict.ID type
				// and constant initializers (const frozen dict.ID = 42).
				if e.Type == nil {
					return true
				}
				tv, ok := info.Types[e.Type]
				if !ok || !isDictIDType(tv.Type) {
					return true
				}
				for _, v := range e.Values {
					vt, ok := info.Types[v]
					if !ok || vt.Value == nil || constant.Sign(vt.Value) == 0 {
						continue
					}
					report(v.Pos(), "integer constant %s declared as dict.ID; IDs come from the dictionary", vt.Value)
				}
			case *ast.BasicLit:
				// An integer literal whose contextual type is dict.ID.
				if e.Kind != token.INT {
					return true
				}
				tv, ok := info.Types[e]
				if !ok || !isDictIDType(tv.Type) {
					return true
				}
				if tv.Value != nil && constant.Sign(tv.Value) == 0 {
					return true // 0 is dict.None, the wildcard
				}
				report(e.Pos(), "integer literal %s used as dict.ID; IDs come from the dictionary", e.Value)
			case *ast.CallExpr:
				// A conversion dict.ID(c) of an integer constant whose
				// own type is not already dict.ID.
				if !isConversion(info, e) || len(e.Args) != 1 {
					return true
				}
				tv, ok := info.Types[ast.Unparen(e.Fun)]
				if !ok || !isDictIDType(tv.Type) {
					return true
				}
				arg := ast.Unparen(e.Args[0])
				atv, ok := info.Types[arg]
				if !ok || atv.Value == nil || constant.Sign(atv.Value) == 0 {
					return true
				}
				// The recorded type of an untyped constant operand is the
				// conversion target itself, so consult the declaration:
				// re-converting a constant declared as dict.ID is fine.
				if declaredDictID(info, arg) {
					return true
				}
				report(arg.Pos(), "integer constant %s converted to dict.ID; IDs come from the dictionary", atv.Value)
			}
			return true
		})
	}
}
