package lint

// Shared helpers for the flow-sensitive analyzers: rendering ident /
// selector chains ("ctx.span", "s.mu") into stable keys that dataflow
// facts can be interned under, and walking statement subtrees without
// crossing into nested function literals (a closure body has its own
// CFG and is analyzed as its own function).

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// pathKey renders an ident/selector chain as a stable fact key. The
// root identifier is keyed by its types.Object identity, so two
// same-named variables in different scopes never alias a fact, and the
// trailing field names are appended literally ("0xc0000a1b2c.span").
// Expressions that are not plain chains (index, call, dereference
// results) return "": the analyzers treat them conservatively.
func pathKey(info *types.Info, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if obj == nil {
			return ""
		}
		return fmt.Sprintf("%p", obj)
	case *ast.SelectorExpr:
		base := pathKey(info, e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	}
	return ""
}

// pathText renders an ident/selector chain as source text for
// diagnostics ("ctx.span"); non-chain expressions render as "".
func pathText(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := pathText(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	}
	return ""
}

// pathInvalidates reports whether writing to the path with key w
// invalidates a fact about the path with key f: the same path, a
// prefix of it (writing ctx clobbers ctx.span), or an extension
// (writing ctx.span clobbers a fact about ctx only if the fact is
// about ctx.span itself — extensions do not invalidate shorter paths).
func pathInvalidates(w, f string) bool {
	return w == f || strings.HasPrefix(f, w+".")
}

// inspectShallow walks the subtree of n in source order, calling visit
// for every node but never descending into the body of a function
// literal (the literal node itself is visited). visit returns false to
// prune the walk below a node.
func inspectShallow(n ast.Node, visit func(ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if !visit(n) {
			return false
		}
		if fl, ok := n.(*ast.FuncLit); ok {
			visit(fl.Type)
			return false
		}
		return true
	})
}

// funcBodies returns every function body of the package — declarations
// and function literals — each paired with the position its diagnostic
// context starts at. Function literal bodies are separate entries and
// are NOT reachable through their enclosing entry's walk, mirroring the
// CFG builder's treatment of closures as opaque values.
type funcBody struct {
	// decl is the enclosing declaration (for receiver/parameter
	// context); nil for a function literal at package level (impossible
	// in practice) and set to the lexically enclosing declaration for
	// nested literals.
	decl *ast.FuncDecl
	// lit is the function literal, nil for a declaration's own body.
	lit  *ast.FuncLit
	body *ast.BlockStmt
}

func funcBodies(pkg *Package) []funcBody {
	var out []funcBody
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			out = append(out, funcBody{decl: fd, body: fd.Body})
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					out = append(out, funcBody{decl: fd, lit: fl, body: fl.Body})
				}
				return true
			})
		}
	}
	return out
}

// namedIn reports whether t (after stripping one pointer) is a named
// type with the given name declared in a package whose base name
// matches pkgName.
func namedIn(t types.Type, pkgName, typeName string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Name() == pkgName
}

// methodCall decomposes a call of the form <recv>.<name>(...) and
// returns the receiver expression and method name; ok is false for
// plain function calls.
func methodCall(call *ast.CallExpr) (recv ast.Expr, name string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	return sel.X, sel.Sel.Name, true
}
