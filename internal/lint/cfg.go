package lint

// This file is the control-flow layer of the flow-sensitive analyzers:
// a per-function control-flow graph built from the go/ast statement
// tree alone (no SSA, no extra dependencies). Each basic block holds
// the AST nodes that execute in it, in execution order; edges carry the
// branch condition they are taken under so dataflow clients can refine
// facts along the true/false arms of a nil check.
//
// The builder is deliberately statement-granular rather than
// expression-granular: short-circuit operators inside a condition are
// not decomposed into sub-blocks, and function literals are opaque
// nodes of the block that creates them (analyzers build separate CFGs
// for their bodies). That keeps the graph small and the transfer
// functions simple while still distinguishing everything the analyzers
// here need: which statements run under which branch, which paths reach
// a return or a panic, and what order locks, defers and cache writes
// happen in.

import (
	"go/ast"
	"go/token"
)

// Block is one basic block: a maximal straight-line node sequence.
type Block struct {
	// Index is the block's position in CFG.Blocks (dataflow uses it to
	// key per-block state).
	Index int
	// Nodes are the statements and conditions of the block in execution
	// order. A branch condition (if/for) is the last node of its block.
	Nodes []ast.Node
	// Succs are the outgoing edges in source order; a conditional
	// block's true edge precedes its false edge.
	Succs []Edge
	// Live reports whether the block is reachable from the entry.
	Live bool
}

// Edge is one control transfer between blocks.
type Edge struct {
	To *Block
	// Cond is the branch condition the edge depends on (nil for an
	// unconditional transfer); Negated marks the edge taken when Cond
	// evaluates to false.
	Cond    ast.Expr
	Negated bool
	// Exit marks an edge into the synthetic exit block, and Kind says
	// why control leaves the function along it.
	Exit bool
	Kind ExitKind
}

// ExitKind classifies an edge into the exit block.
type ExitKind uint8

const (
	// ExitFall is the implicit return at the end of the body.
	ExitFall ExitKind = iota
	// ExitReturn is an explicit return statement.
	ExitReturn
	// ExitPanic is a call to panic (deferred functions still run).
	ExitPanic
)

// CFG is the control-flow graph of one function body.
type CFG struct {
	// Blocks lists every block, entry first; unreachable blocks are
	// kept (with Live=false) so node lookups never fail.
	Blocks []*Block
	// Entry is the block the function starts in.
	Entry *Block
	// Exit is the synthetic block every return, panic and fall-through
	// converges to. It holds no nodes.
	Exit *Block
}

// buildCFG constructs the CFG of one function body.
func buildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{}
	b.graph = &CFG{}
	b.graph.Entry = b.newBlock()
	b.graph.Exit = b.newBlock()
	b.cur = b.graph.Entry
	b.stmtList(body.List)
	// Fall off the end of the body: an implicit return.
	b.edgeTo(b.graph.Exit, Edge{Exit: true, Kind: ExitFall})
	b.patchGotos()
	b.markLive()
	return b.graph
}

// loopFrame tracks the jump targets of one enclosing loop or switch for
// break/continue resolution.
type loopFrame struct {
	label     string
	breakTo   *Block
	continueTo *Block // nil for switch/select frames (continue skips them)
}

type cfgBuilder struct {
	graph  *CFG
	cur    *Block // nil after a terminator until a new block starts
	frames []loopFrame
	// labels maps label names to their statement's entry block; gotos
	// seen before their label are patched at the end.
	labels       map[string]*Block
	pendingGotos []pendingGoto
	// pendingLabel carries a just-seen label to the next loop/switch
	// frame so labeled break/continue resolve to it.
	pendingLabel string
}

type pendingGoto struct {
	from  *Block
	label string
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.graph.Blocks)}
	b.graph.Blocks = append(b.graph.Blocks, blk)
	return blk
}

// edgeTo adds an edge from the current block (when one is open) and
// leaves the current block terminated.
func (b *cfgBuilder) edgeTo(to *Block, e Edge) {
	if b.cur == nil {
		return
	}
	e.To = to
	b.cur.Succs = append(b.cur.Succs, e)
	b.cur = nil
}

// branch adds a conditional edge pair from the current block.
func (b *cfgBuilder) branch(cond ast.Expr, onTrue, onFalse *Block) {
	if b.cur == nil {
		return
	}
	b.cur.Succs = append(b.cur.Succs,
		Edge{To: onTrue, Cond: cond},
		Edge{To: onFalse, Cond: cond, Negated: true})
	b.cur = nil
}

// startBlock opens blk as the current block, linking from the previous
// current block when it is still open.
func (b *cfgBuilder) startBlock(blk *Block) {
	if b.cur != nil {
		b.edgeTo(blk, Edge{})
	}
	b.cur = blk
}

// add appends a node to the current block, opening a fresh (unreachable
// until linked) block if the previous one was terminated.
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		thenB := b.newBlock()
		join := b.newBlock()
		elseB := join
		if s.Else != nil {
			elseB = b.newBlock()
		}
		b.branch(s.Cond, thenB, elseB)
		b.cur = thenB
		b.stmtList(s.Body.List)
		b.edgeTo(join, Edge{})
		if s.Else != nil {
			b.cur = elseB
			b.stmt(s.Else)
			b.edgeTo(join, Edge{})
		}
		b.cur = join

	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock()
		body := b.newBlock()
		post := b.newBlock()
		exit := b.newBlock()
		b.startBlock(head)
		if s.Cond != nil {
			b.add(s.Cond)
			b.branch(s.Cond, body, exit)
		} else {
			b.edgeTo(body, Edge{})
		}
		b.pushFrame(loopFrame{breakTo: exit, continueTo: post})
		b.cur = body
		b.stmtList(s.Body.List)
		b.edgeTo(post, Edge{})
		b.popFrame()
		b.cur = post
		if s.Post != nil {
			b.add(s.Post)
		}
		b.edgeTo(head, Edge{})
		b.cur = exit

	case *ast.RangeStmt:
		// The range expression is evaluated once; each iteration then
		// branches between body and exit (no condition expression
		// exists to attach, so both edges are unconditional).
		b.add(s.X)
		if s.Key != nil || s.Value != nil {
			b.add(s) // the per-iteration key/value assignment
		}
		head := b.newBlock()
		body := b.newBlock()
		exit := b.newBlock()
		b.startBlock(head)
		if b.cur != nil {
			b.cur.Succs = append(b.cur.Succs, Edge{To: body}, Edge{To: exit})
			b.cur = nil
		}
		b.pushFrame(loopFrame{breakTo: exit, continueTo: head})
		b.cur = body
		b.stmtList(s.Body.List)
		b.edgeTo(head, Edge{})
		b.popFrame()
		b.cur = exit

	case *ast.SwitchStmt:
		b.switchLike(s.Init, s.Tag, s.Body)

	case *ast.TypeSwitchStmt:
		b.switchLike(s.Init, nil, s.Body)
		// The assign of a type switch is re-evaluated per case; node
		// granularity does not matter to the current analyzers, so it
		// rides with the tag position via s.Assign below.

	case *ast.SelectStmt:
		join := b.newBlock()
		entry := b.cur
		if entry == nil {
			entry = b.newBlock()
			b.cur = entry
		}
		for _, cl := range s.Body.List {
			comm := cl.(*ast.CommClause)
			caseB := b.newBlock()
			entry.Succs = append(entry.Succs, Edge{To: caseB})
			b.cur = caseB
			if comm.Comm != nil {
				b.add(comm.Comm)
			}
			b.pushFrame(loopFrame{breakTo: join})
			b.stmtList(comm.Body)
			b.popFrame()
			b.edgeTo(join, Edge{})
		}
		b.cur = nil
		b.cur = join

	case *ast.LabeledStmt:
		target := b.newBlock()
		b.startBlock(target)
		if b.labels == nil {
			b.labels = make(map[string]*Block)
		}
		b.labels[s.Label.Name] = target
		// A labeled loop/switch needs the label on its frame so that
		// `break L` / `continue L` resolve to it.
		b.labeledStmt(s.Label.Name, s.Stmt)

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if t := b.frameTarget(s, false); t != nil {
				b.add(s)
				b.edgeTo(t, Edge{})
			}
		case token.CONTINUE:
			if t := b.frameTarget(s, true); t != nil {
				b.add(s)
				b.edgeTo(t, Edge{})
			}
		case token.GOTO:
			b.add(s)
			if b.cur != nil {
				b.pendingGotos = append(b.pendingGotos, pendingGoto{from: b.cur, label: s.Label.Name})
				b.cur = nil
			}
		case token.FALLTHROUGH:
			// Handled structurally by switchLike; nothing to record.
			b.add(s)
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.edgeTo(b.graph.Exit, Edge{Exit: true, Kind: ExitReturn})

	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			b.edgeTo(b.graph.Exit, Edge{Exit: true, Kind: ExitPanic})
		}

	default:
		// Assignments, declarations, sends, go, defer, incdec, empty:
		// straight-line nodes.
		b.add(s)
	}
}

// labeledStmt compiles the statement under a label, arranging for
// labeled break/continue to resolve.
func (b *cfgBuilder) labeledStmt(label string, s ast.Stmt) {
	b.pendingLabel = label
	b.stmt(s)
	b.pendingLabel = ""
}

// pushFrame records a loop/switch frame, attaching any pending label.
func (b *cfgBuilder) pushFrame(f loopFrame) {
	f.label = b.pendingLabel
	b.pendingLabel = ""
	b.frames = append(b.frames, f)
}

func (b *cfgBuilder) popFrame() { b.frames = b.frames[:len(b.frames)-1] }

// frameTarget resolves the destination of a break/continue, optionally
// labeled. Unresolvable jumps (malformed code) leave the statement as a
// plain node.
func (b *cfgBuilder) frameTarget(s *ast.BranchStmt, isContinue bool) *Block {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := b.frames[i]
		if s.Label != nil && f.label != s.Label.Name {
			continue
		}
		if isContinue {
			if f.continueTo == nil {
				continue // switch/select frame: continue targets the loop outside
			}
			return f.continueTo
		}
		return f.breakTo
	}
	return nil
}

// switchLike compiles switch and type-switch statements: the tag block
// branches to every case (conditions are not decomposed per case), each
// case body joins the common successor, and fallthrough chains to the
// next case body.
func (b *cfgBuilder) switchLike(init ast.Stmt, tag ast.Expr, body *ast.BlockStmt) {
	if init != nil {
		b.add(init)
	}
	if tag != nil {
		b.add(tag)
	}
	join := b.newBlock()
	entry := b.cur
	if entry == nil {
		entry = b.newBlock()
		b.cur = entry
	}
	// First pass: create case blocks so fallthrough can link forward.
	clauses := make([]*ast.CaseClause, 0, len(body.List))
	caseBlocks := make([]*Block, 0, len(body.List))
	hasDefault := false
	for _, cl := range body.List {
		cc := cl.(*ast.CaseClause)
		clauses = append(clauses, cc)
		caseBlocks = append(caseBlocks, b.newBlock())
		if cc.List == nil {
			hasDefault = true
		}
	}
	for _, cb := range caseBlocks {
		entry.Succs = append(entry.Succs, Edge{To: cb})
	}
	if !hasDefault {
		entry.Succs = append(entry.Succs, Edge{To: join})
	}
	b.cur = nil
	for i, cc := range clauses {
		b.cur = caseBlocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		b.pushFrame(loopFrame{breakTo: join})
		b.stmtList(cc.Body)
		b.popFrame()
		if b.cur != nil {
			if fallsThrough(cc.Body) && i+1 < len(caseBlocks) {
				b.edgeTo(caseBlocks[i+1], Edge{})
			} else {
				b.edgeTo(join, Edge{})
			}
		}
	}
	b.cur = join
}

// fallsThrough reports whether a case body ends in a fallthrough.
func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

// patchGotos links goto statements to their label blocks.
func (b *cfgBuilder) patchGotos() {
	for _, g := range b.pendingGotos {
		if target, ok := b.labels[g.label]; ok {
			g.from.Succs = append(g.from.Succs, Edge{To: target})
		}
	}
}

// markLive flags every block reachable from the entry.
func (b *cfgBuilder) markLive() {
	var visit func(blk *Block)
	visit = func(blk *Block) {
		if blk.Live {
			return
		}
		blk.Live = true
		for _, e := range blk.Succs {
			visit(e.To)
		}
	}
	visit(b.graph.Entry)
}

// isPanicCall reports whether the expression is a call to the built-in
// panic. Resolution by name is deliberate: the builder has no type
// information, and a shadowed panic in this repository would itself be
// a lint finding.
func isPanicCall(x ast.Expr) bool {
	call, ok := ast.Unparen(x).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}
