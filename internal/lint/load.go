package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path ("repro/internal/bgp").
	Path string
	// Dir is the absolute directory holding the package sources.
	Dir string
	// Fset resolves the positions of Files.
	Fset *token.FileSet
	// Files are the parsed non-test sources, in filename order.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds the type-checker facts the analyzers consume.
	Info *types.Info

	// cfgs memoizes per-function control-flow graphs across the
	// analyzers of a run (see Pass.CFG). Guarded by cfgMu so analyzer
	// passes over the same package may run from different goroutines.
	cfgMu sync.Mutex
	cfgs  map[*ast.BlockStmt]*CFG
}

// Loader loads and type-checks the packages of one module from source.
// Imports within the module are resolved to its directories; all other
// imports (the standard library) go through go/importer's source
// importer, so the loader works in a zero-dependency module without any
// export data installed. A Loader is safe for concurrent use: Load
// fans packages out over a bounded worker pool, and concurrent loads of
// the same package coalesce onto one in-flight slot.
type Loader struct {
	fset   *token.FileSet
	root   string // absolute module root
	module string // module path from go.mod
	// Workers bounds the package-loading pool (0 means GOMAXPROCS).
	// Set it before the first Load call.
	Workers int

	std   types.Importer
	stdMu sync.Mutex // the source importer is not documented goroutine-safe

	mu     sync.Mutex
	states map[string]*loadState // by import path
}

// loadState is one package's in-flight or completed load. The first
// goroutine to claim a path performs the load and closes done; everyone
// else waits on done and reads the outcome.
type loadState struct {
	done chan struct{}
	pkg  *Package
	err  error
}

// NewLoader returns a loader for the module rooted at root (the
// directory containing go.mod).
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	module, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:   fset,
		root:   abs,
		module: module,
		std:    importer.ForCompiler(fset, "source", nil),
		states: make(map[string]*loadState),
	}, nil
}

// Root returns the absolute module root directory.
func (l *Loader) Root() string { return l.root }

// Module returns the module path.
func (l *Loader) Module() string { return l.module }

// modulePath extracts the module path from a go.mod file.
func modulePath(file string) (string, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return "", fmt.Errorf("lint: reading module file: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", file)
}

// workers resolves the configured pool size.
func (l *Loader) workers() int {
	if l.Workers > 0 {
		return l.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Load resolves the patterns ("./...", "./internal/bgp", "internal/...")
// against the module root and returns the matched packages,
// type-checked, in import-path order. Directories without non-test Go
// files are skipped silently, as the go tool does. Matched packages
// load concurrently on a pool of l.Workers goroutines; shared
// dependencies are loaded once, by whichever worker claims them first.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		pat = strings.TrimPrefix(pat, "./")
		if pat == "" {
			pat = "."
		}
		if rest, ok := strings.CutSuffix(pat, "/..."); ok || pat == "..." {
			base := l.root
			if ok && rest != "" && rest != "." {
				base = filepath.Join(l.root, filepath.FromSlash(rest))
			}
			if err := walkPackageDirs(base, add); err != nil {
				return nil, err
			}
			continue
		}
		add(filepath.Join(l.root, filepath.FromSlash(pat)))
	}

	loaded := make([]*Package, len(dirs)) // nil for dirs without Go files
	errs := make([]error, len(dirs))
	sem := make(chan struct{}, l.workers())
	var wg sync.WaitGroup
	for i, dir := range dirs {
		wg.Add(1)
		go func(i int, dir string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			files, err := goFiles(dir)
			if err != nil {
				errs[i] = err
				return
			}
			if len(files) == 0 {
				return
			}
			loaded[i], errs[i] = l.loadDir(dir, nil)
		}(i, dir)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var pkgs []*Package
	for _, pkg := range loaded {
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// walkPackageDirs calls add for every candidate package directory under
// base, skipping testdata, vendor, hidden and underscore directories.
func walkPackageDirs(base string, add func(string)) error {
	return filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != base && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		add(path)
		return nil
	})
}

// goFiles lists the non-test Go files of a directory.
func goFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	sort.Strings(files)
	return files, nil
}

// importPathFor maps a directory under the module root to its import
// path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil {
		return "", err
	}
	rel = filepath.ToSlash(rel)
	if rel == "." {
		return l.module, nil
	}
	if strings.HasPrefix(rel, "../") {
		return "", fmt.Errorf("lint: directory %s is outside module root %s", dir, l.root)
	}
	return l.module + "/" + rel, nil
}

// loadDir parses and type-checks the package in dir, memoized by import
// path. chain is the stack of import paths being loaded by this call
// tree, used to turn same-chain cycles into errors instead of waiting
// on ourselves. (A cycle split across two workers is not detected — it
// cannot occur in a module that compiles, and the go build step that
// precedes lint in CI rejects it first.)
func (l *Loader) loadDir(dir string, chain []string) (*Package, error) {
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	st, inFlight := l.states[path]
	if !inFlight {
		st = &loadState{done: make(chan struct{})}
		l.states[path] = st
	}
	l.mu.Unlock()
	if inFlight {
		for _, p := range chain {
			if p == path {
				return nil, fmt.Errorf("lint: import cycle through %s", path)
			}
		}
		<-st.done
		return st.pkg, st.err
	}
	st.pkg, st.err = l.typeCheckDir(dir, path, append(chain, path))
	close(st.done)
	return st.pkg, st.err
}

// typeCheckDir does the actual parse + type-check of one package.
func (l *Loader) typeCheckDir(dir, path string, chain []string) (*Package, error) {
	names, err := goFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: &chainImporter{l: l, chain: chain}}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}

// importStd resolves a standard-library import, serialized because the
// source importer mutates shared caches.
func (l *Loader) importStd(path string) (*types.Package, error) {
	l.stdMu.Lock()
	defer l.stdMu.Unlock()
	return l.std.Import(path)
}

// chainImporter adapts the loader to types.Importer for one package's
// type-check, carrying that load's import chain for cycle detection:
// module-local import paths load from the module tree, everything else
// from the standard-library source importer.
type chainImporter struct {
	l     *Loader
	chain []string
}

func (ci *chainImporter) Import(path string) (*types.Package, error) {
	l := ci.l
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		dir := l.root
		if rest, ok := strings.CutPrefix(path, l.module+"/"); ok {
			dir = filepath.Join(l.root, filepath.FromSlash(rest))
		}
		pkg, err := l.loadDir(dir, ci.chain)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.importStd(path)
}
