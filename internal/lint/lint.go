// Package lint is a vet-style static-analysis driver built only on the
// Go standard library (go/parser, go/ast, go/types). It loads the
// packages of this module from source, type-checks them against a
// source-level importer, and runs a set of domain analyzers that
// machine-check the repository's internal invariants: no panics
// escaping library code, no silently dropped errors, no raw integers
// flowing into dictionary-ID positions, no unlocked writes to
// mutex-guarded state, and no direct console output from library
// packages.
//
// Findings can be suppressed at the offending line (or the line above
// it) with a justification:
//
//	//lint:ignore <analyzer> <reason>
//
// A directive without a reason is itself reported. The cmd/lint binary
// runs the full suite over ./... and exits non-zero on findings, which
// makes the suite enforceable from scripts/check.sh and CI exactly like
// go vet.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the conventional vet format.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one check. Run inspects the package of the pass and
// reports findings through pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in output and in ignore directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run performs the analysis on one package.
	Run func(*Pass)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    *[]Diagnostic
}

// Fset returns the file set the package positions resolve against.
func (p *Pass) Fset() *token.FileSet { return p.Pkg.Fset }

// TypesInfo returns the type-checker results for the package.
func (p *Pass) TypesInfo() *types.Info { return p.Pkg.Info }

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Funcs returns every function and method declaration of the package
// that has a body, in file and source order.
func (p *Pass) Funcs() []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}

// CFG returns the control-flow graph of a function (or function
// literal) body, memoized on the package so every flow-sensitive
// analyzer of a run shares one graph per function.
func (p *Pass) CFG(body *ast.BlockStmt) *CFG {
	pkg := p.Pkg
	pkg.cfgMu.Lock()
	defer pkg.cfgMu.Unlock()
	if g, ok := pkg.cfgs[body]; ok {
		return g
	}
	g := buildCFG(body)
	if pkg.cfgs == nil {
		pkg.cfgs = make(map[*ast.BlockStmt]*CFG)
	}
	pkg.cfgs[body] = g
	return g
}

// Options configures a driver run.
type Options struct {
	// Workers bounds the number of packages analyzed concurrently
	// (0 means GOMAXPROCS). Analyzers over one package always run
	// sequentially, in registry order.
	Workers int
	// ReportStale reports well-formed //lint:ignore directives that
	// suppressed no finding — dead suppressions hiding nothing are as
	// suspect as unexplained ones. Enable it only when running the full
	// analyzer suite: under a subset, a directive naming an analyzer
	// outside the run set is silent, not stale, and is skipped, but a
	// "*" directive cannot be told apart, so it is only checked when
	// this flag is set.
	ReportStale bool
}

// Run applies every analyzer to every package, drops findings that are
// suppressed by well-formed ignore directives, reports malformed
// directives, and returns the surviving diagnostics sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return RunWith(pkgs, analyzers, Options{})
}

// RunWith is Run with explicit options. Packages are analyzed in
// parallel on a bounded pool; the result is deterministic regardless of
// worker count.
func RunWith(pkgs []*Package, analyzers []*Analyzer, opts Options) []Diagnostic {
	runset := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		runset[a.Name] = true
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	perPkg := make([][]Diagnostic, len(pkgs))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, pkg := range pkgs {
		wg.Add(1)
		go func(i int, pkg *Package) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			dirs := collectDirectives(pkg)
			var pkgDiags []Diagnostic
			for _, a := range analyzers {
				pass := &Pass{Analyzer: a, Pkg: pkg, diags: &pkgDiags}
				a.Run(pass)
			}
			used := make([]bool, len(dirs))
			kept := filterSuppressed(pkgDiags, dirs, used)
			kept = append(kept, malformedDirectives(dirs)...)
			if opts.ReportStale {
				kept = append(kept, staleDirectives(dirs, used, runset)...)
			}
			perPkg[i] = kept
		}(i, pkg)
	}
	wg.Wait()
	var diags []Diagnostic
	for _, d := range perPkg {
		diags = append(diags, d...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// Format renders the diagnostics with filenames relative to base (when
// possible), one per line.
func Format(diags []Diagnostic, base string) []string {
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = relativize(d, base).String()
	}
	return out
}

// jsonDiagnostic is the machine-readable shape of one diagnostic, one
// object per output line (JSONL), stable for CI annotation tooling.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// FormatJSON renders the diagnostics as one JSON object per line, with
// filenames relative to base when possible.
func FormatJSON(diags []Diagnostic, base string) []string {
	out := make([]string, len(diags))
	for i, d := range diags {
		d = relativize(d, base)
		b, err := json.Marshal(jsonDiagnostic{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
		if err != nil {
			// A diagnostic is strings and ints; marshaling cannot fail.
			b = []byte(fmt.Sprintf("{%q:%q}", "error", err.Error()))
		}
		out[i] = string(b)
	}
	return out
}

// relativize rewrites the diagnostic's filename relative to base when it
// lies under it.
func relativize(d Diagnostic, base string) Diagnostic {
	if rel, err := filepath.Rel(base, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		d.Pos.Filename = rel
	}
	return d
}

// isInternal reports whether the package is library code subject to the
// strict analyzers (panicfree, printban): any package under an
// internal/ directory of the module.
func isInternal(pkg *Package) bool {
	return strings.Contains(pkg.Path+"/", "/internal/") ||
		strings.HasPrefix(pkg.Path, "internal/")
}

// funcFullName returns the types.Func full name ("fmt.Fprintf",
// "(*strings.Builder).WriteString") for the callee of the call, or ""
// when the callee cannot be resolved to a declared function.
func funcFullName(info *types.Info, call *ast.CallExpr) string {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	if f, ok := obj.(*types.Func); ok {
		return f.FullName()
	}
	return ""
}

// isConversion reports whether the call expression is a type conversion.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}
