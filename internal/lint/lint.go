// Package lint is a vet-style static-analysis driver built only on the
// Go standard library (go/parser, go/ast, go/types). It loads the
// packages of this module from source, type-checks them against a
// source-level importer, and runs a set of domain analyzers that
// machine-check the repository's internal invariants: no panics
// escaping library code, no silently dropped errors, no raw integers
// flowing into dictionary-ID positions, no unlocked writes to
// mutex-guarded state, and no direct console output from library
// packages.
//
// Findings can be suppressed at the offending line (or the line above
// it) with a justification:
//
//	//lint:ignore <analyzer> <reason>
//
// A directive without a reason is itself reported. The cmd/lint binary
// runs the full suite over ./... and exits non-zero on findings, which
// makes the suite enforceable from scripts/check.sh and CI exactly like
// go vet.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the conventional vet format.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one check. Run inspects the package of the pass and
// reports findings through pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in output and in ignore directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run performs the analysis on one package.
	Run func(*Pass)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	diags    *[]Diagnostic
}

// Fset returns the file set the package positions resolve against.
func (p *Pass) Fset() *token.FileSet { return p.Pkg.Fset }

// TypesInfo returns the type-checker results for the package.
func (p *Pass) TypesInfo() *types.Info { return p.Pkg.Info }

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies every analyzer to every package, drops findings that are
// suppressed by well-formed ignore directives, reports malformed
// directives, and returns the surviving diagnostics sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		dirs := collectDirectives(pkg)
		var pkgDiags []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, diags: &pkgDiags}
			a.Run(pass)
		}
		diags = append(diags, filterSuppressed(pkgDiags, dirs)...)
		diags = append(diags, malformedDirectives(dirs)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// Format renders the diagnostics with filenames relative to base (when
// possible), one per line.
func Format(diags []Diagnostic, base string) []string {
	out := make([]string, len(diags))
	for i, d := range diags {
		if rel, err := filepath.Rel(base, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			d.Pos.Filename = rel
		}
		out[i] = d.String()
	}
	return out
}

// isInternal reports whether the package is library code subject to the
// strict analyzers (panicfree, printban): any package under an
// internal/ directory of the module.
func isInternal(pkg *Package) bool {
	return strings.Contains(pkg.Path+"/", "/internal/") ||
		strings.HasPrefix(pkg.Path, "internal/")
}

// funcFullName returns the types.Func full name ("fmt.Fprintf",
// "(*strings.Builder).WriteString") for the callee of the call, or ""
// when the callee cannot be resolved to a declared function.
func funcFullName(info *types.Info, call *ast.CallExpr) string {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	if f, ok := obj.(*types.Func); ok {
		return f.FullName()
	}
	return ""
}

// isConversion reports whether the call expression is a type conversion.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}
