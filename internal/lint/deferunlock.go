package lint

// deferunlock is the first CFG-backed analyzer: every sync.Mutex /
// sync.RWMutex Lock or RLock must be released on every path out of the
// function — either by a defer registered on that path or by an inline
// Unlock/RUnlock on each way to return (explicit, implicit, or panic).
// The lockguard analyzer (PR 1) checks that guarded state is only
// written under a lock; this one checks the dual: an acquired lock
// cannot leak past the function. A leaked read-lock is as fatal as a
// leaked write-lock here — the store's Compact and Freeze take the
// write side and would stall forever.
//
// The analysis is a may-analysis (JoinUnion): a fact "lock L acquired
// at P is still held" is generated at the Lock call and killed by an
// Unlock on the same mutex path or by registering a deferred unlock
// (including a deferred closure whose body unlocks it). Any fact that
// reaches the synthetic exit block means some path leaks the lock, and
// the Lock site is reported once.

import (
	"go/ast"
	"go/token"
)

var DeferUnlock = &Analyzer{
	Name: "deferunlock",
	Doc: "report Lock/RLock calls not released on every path to return or panic, " +
		"by defer or by inline unlocks",
	Run: runDeferUnlock,
}

// lockFact is one interned "lock acquired here" fact.
type lockFact struct {
	key  string // mutex pathKey + mode suffix
	text string // mutex source text for the message
	read bool
	pos  token.Pos
}

func runDeferUnlock(pass *Pass) {
	for _, fb := range funcBodies(pass.Pkg) {
		checkFuncLocks(pass, fb.body)
	}
}

func checkFuncLocks(pass *Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo()

	// Interned facts of this function; byMutex maps a mutex path+mode
	// to every lock site on it so an unlock kills all of them.
	var facts []lockFact
	byMutex := make(map[string][]int)

	intern := func(call *ast.CallExpr, recv ast.Expr, read bool) int {
		key := pathKey(info, recv)
		if key == "" {
			return -1
		}
		if read {
			key += "#r"
		} else {
			key += "#w"
		}
		id := len(facts)
		facts = append(facts, lockFact{key: key, text: pathText(recv), read: read, pos: call.Pos()})
		byMutex[key] = append(byMutex[key], id)
		return id
	}

	// lockOp classifies a call as a lock or unlock on a mutex path.
	lockOp := func(n ast.Node) (call *ast.CallExpr, recv ast.Expr, name string, ok bool) {
		c, isCall := n.(*ast.CallExpr)
		if !isCall {
			return nil, nil, "", false
		}
		r, m, isMethod := methodCall(c)
		if !isMethod {
			return nil, nil, "", false
		}
		switch m {
		case "Lock", "RLock", "Unlock", "RUnlock":
		default:
			return nil, nil, "", false
		}
		tv, okType := info.Types[r]
		if !okType || !isMutexType(tv.Type) {
			return nil, nil, "", false
		}
		return c, r, m, true
	}

	killAll := func(fs *FactSet, key string) {
		for _, id := range byMutex[key] {
			fs.Remove(id)
		}
	}

	// applyUnlocks kills facts for every unlock call in the subtree
	// (used for deferred closures, whose body runs at exit).
	applyUnlocks := func(n ast.Node, fs *FactSet) {
		inspectShallow(n, func(m ast.Node) bool {
			if _, recv, name, ok := lockOp(m); ok {
				switch name {
				case "Unlock":
					killAll(fs, pathKey(info, recv)+"#w")
				case "RUnlock":
					killAll(fs, pathKey(info, recv)+"#r")
				}
			}
			return true
		})
	}

	// Pre-intern every lock site in source order so fact IDs are stable
	// across the two transfer passes (solve, then Walk for reporting —
	// reporting is not needed here, but pre-interning keeps Transfer
	// pure: interning inside Transfer would alias IDs across re-runs of
	// the same block by the worklist).
	interned := make(map[*ast.CallExpr]int)
	inspectShallow(body, func(n ast.Node) bool {
		if call, recv, name, ok := lockOp(n); ok && (name == "Lock" || name == "RLock") {
			interned[call] = intern(call, recv, name == "RLock")
		}
		return true
	})
	if len(facts) == 0 {
		return
	}

	transfer := func(n ast.Node, fs *FactSet) {
		// A defer runs at function exit on every outcome; registering
		// one on a path discharges the obligation for that path.
		if d, ok := n.(*ast.DeferStmt); ok {
			if _, recv, name, ok := lockOp(d.Call); ok {
				switch name {
				case "Unlock":
					killAll(fs, pathKey(info, recv)+"#w")
				case "RUnlock":
					killAll(fs, pathKey(info, recv)+"#r")
				}
				return
			}
			if fl, ok := d.Call.Fun.(*ast.FuncLit); ok {
				applyUnlocks(fl.Body, fs)
			}
			return
		}
		inspectShallow(n, func(m ast.Node) bool {
			call, recv, name, ok := lockOp(m)
			if !ok {
				return true
			}
			switch name {
			case "Lock", "RLock":
				if id, known := interned[call]; known && id >= 0 {
					fs.Add(id)
				}
			case "Unlock":
				killAll(fs, pathKey(info, recv)+"#w")
			case "RUnlock":
				killAll(fs, pathKey(info, recv)+"#r")
			}
			return true
		})
	}

	g := pass.CFG(body)
	flow := solve(g, &Problem{Join: JoinUnion, Transfer: transfer})
	exit := flow.ExitFacts()
	for id, f := range facts {
		if !exit.Has(id) {
			continue
		}
		op, un := "Lock", "Unlock"
		if f.read {
			op, un = "RLock", "RUnlock"
		}
		pass.Reportf(f.pos, "%s.%s() is not released on every path out of the function; add defer %s.%s() or unlock on each path",
			f.text, op, f.text, un)
	}
}
