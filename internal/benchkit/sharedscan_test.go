package benchkit

import (
	"io"
	"testing"

	"repro/internal/core"
)

// The sweep's own assertions are the strict-equality test of the
// shared-scan layer over the full LUBM and DBLP workloads: for every
// query it requires identical rows AND identical engine metrics between
// the shared and baseline paths, sequential and parallel, and
// byte-identical relations on a re-answer. Any divergence surfaces as
// an error here.
func TestSharedScanSweepLUBM(t *testing.T) {
	db := tinyLUBM(t)
	for _, strat := range []core.Strategy{core.UCQ, core.GCov} {
		if err := db.SharedScanSweep(io.Discard, nil, strat, 1); err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
	}
}

func TestSharedScanSweepDBLP(t *testing.T) {
	db := tinyDBLP(t)
	for _, strat := range []core.Strategy{core.UCQ, core.GCov} {
		if err := db.SharedScanSweep(io.Discard, nil, strat, 1); err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
	}
}
