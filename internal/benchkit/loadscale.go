// The bulk-load / storage-scale axis of the benchmark suite: how fast a
// workload loads into each index representation and how many resident
// bytes per triple each costs — the numbers that justify the compressed
// block-columnar store at 10–100x the query-bench scale. cmd/benchall
// runs this via -loadscales/-loadjson and scripts/bench.sh embeds the
// result in the committed BENCH_*.json files.

package benchkit

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"text/tabwriter"
	"time"

	"repro/internal/storage"
)

// LoadReport is the bulk-load and footprint measurement of one workload
// at one scale: the compressed parallel loader against the flat serial
// baseline, over the identical triple stream.
type LoadReport struct {
	Workload    string `json:"workload"`
	Scale       string `json:"scale"`
	Triples     int    `json:"triples"` // raw store, incl. closed constraint triples
	Parallelism int    `json:"parallelism"`

	LoadSeconds   float64 `json:"load_seconds"` // compressed, parallel bulk load
	TriplesPerSec float64 `json:"triples_per_sec"`

	FlatLoadSeconds   float64 `json:"flat_load_seconds"` // flat, serial baseline
	FlatTriplesPerSec float64 `json:"flat_triples_per_sec"`

	CompressedBytes    int     `json:"compressed_bytes"` // payload + fence directory
	CompressedBlocks   int     `json:"compressed_blocks"`
	BytesPerTriple     float64 `json:"bytes_per_triple"` // compressed, summed over orders
	FlatBytes          int     `json:"flat_bytes"`
	FlatBytesPerTriple float64 `json:"flat_bytes_per_triple"`

	// Verified is true when the two representations answered
	// identically: equal length, equal content hash over a full streamed
	// pass, and equal counts for every pattern shape of sampled triples.
	Verified bool `json:"verified"`
}

// LoadSweep is a set of load measurements across scales.
type LoadSweep struct {
	Workload string       `json:"workload"`
	Runs     []LoadReport `json:"runs"`
}

// MeasureLoad loads the LUBM workload at the given scale into both
// index representations, timing feed+Build for each, and cross-checks
// the results. par is the loader parallelism for the compressed build
// (0 = GOMAXPROCS); the flat baseline always builds serially.
func MeasureLoad(sc Scale, par int) (LoadReport, error) {
	db, err := BuildLUBM(sc)
	if err != nil {
		return LoadReport{}, err
	}
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	rebuild := func(c storage.Compression, par int) (*storage.Store, float64) {
		start := time.Now()
		b := storage.NewBuilder().WithCompression(c).WithParallelism(par)
		db.Raw.Each(func(t storage.Triple) bool {
			b.Add(t)
			return true
		})
		st := b.Build()
		return st, time.Since(start).Seconds()
	}
	flat, flatSecs := rebuild(storage.CompressionOff, 1)
	comp, compSecs := rebuild(storage.CompressionOn, par)

	n := comp.Len()
	ffp, cfp := flat.Footprint(), comp.Footprint()
	rep := LoadReport{
		Workload:    "LUBM",
		Scale:       sc.Name,
		Triples:     n,
		Parallelism: par,

		LoadSeconds:   compSecs,
		TriplesPerSec: float64(n) / compSecs,

		FlatLoadSeconds:   flatSecs,
		FlatTriplesPerSec: float64(n) / flatSecs,

		CompressedBytes:    cfp.IndexBytes(),
		CompressedBlocks:   cfp.Blocks,
		BytesPerTriple:     cfp.BytesPerTriple(),
		FlatBytes:          ffp.IndexBytes(),
		FlatBytesPerTriple: ffp.BytesPerTriple(),

		Verified: equalStores(flat, comp),
	}
	return rep, nil
}

// MeasureLoadScales measures the named scales in order.
func MeasureLoadScales(names []string, par int) (LoadSweep, error) {
	sweep := LoadSweep{Workload: "LUBM"}
	for _, name := range names {
		rep, err := MeasureLoad(ScaleByName(name), par)
		if err != nil {
			return sweep, err
		}
		sweep.Runs = append(sweep.Runs, rep)
	}
	return sweep, nil
}

// WriteJSON writes the sweep as indented JSON.
func (ls LoadSweep) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(ls)
}

// WriteText renders the sweep as a table.
func (ls LoadSweep) WriteText(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "scale\ttriples\tload s\ttriples/s\tB/triple\tflat B/triple\tratio\tverified\n")
	for _, r := range ls.Runs {
		ratio := 0.0
		if r.CompressedBytes > 0 {
			ratio = float64(r.FlatBytes) / float64(r.CompressedBytes)
		}
		fmt.Fprintf(tw, "%s\t%d\t%.2f\t%.0f\t%.2f\t%.2f\t%.1fx\t%v\n",
			r.Scale, r.Triples, r.LoadSeconds, r.TriplesPerSec,
			r.BytesPerTriple, r.FlatBytesPerTriple, ratio, r.Verified)
	}
	return tw.Flush()
}

// equalStores cross-checks two stores built from the same stream: equal
// length, equal FNV-1a hash over a full streamed pass (order-sensitive,
// both stream in SPO order), and equal counts for every bound-position
// combination of sampled triples.
func equalStores(a, b *storage.Store) bool {
	if a.Len() != b.Len() {
		return false
	}
	if storeHash(a) != storeHash(b) {
		return false
	}
	ok := true
	i := 0
	a.Each(func(t storage.Triple) bool {
		i++
		if i%997 != 0 {
			return true
		}
		for mask := 0; mask < 8; mask++ {
			p := storage.Pattern{}
			if mask&1 != 0 {
				p.S = t.S
			}
			if mask&2 != 0 {
				p.P = t.P
			}
			if mask&4 != 0 {
				p.O = t.O
			}
			if a.Count(p) != b.Count(p) {
				ok = false
				return false
			}
		}
		return true
	})
	return ok
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// storeHash hashes the full triple stream of the store (FNV-1a over the
// ID words, the same mixing the schema stamp uses).
func storeHash(s *storage.Store) uint64 {
	h := uint64(fnvOffset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= fnvPrime64
			v >>= 8
		}
	}
	s.Each(func(t storage.Triple) bool {
		mix(uint64(t.S))
		mix(uint64(t.P))
		mix(uint64(t.O))
		return true
	})
	return h
}
