package benchkit

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/engine"
	"repro/internal/reformulate"
	"repro/internal/stats"
	"repro/internal/storage"
)

// AblationIndexSet compares the paper's six-permutation index layout with
// the minimal three-index layout: store build time and query evaluation
// on a subset of the workload (A1 in DESIGN.md).
func (db *Database) AblationIndexSet(w io.Writer, queryNames ...string) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "layout\tbuild ms\t")
	for _, n := range queryNames {
		fmt.Fprintf(tw, "%s ms\t", n)
	}
	fmt.Fprintln(tw)

	for _, layout := range []struct {
		name   string
		orders []storage.Order
	}{
		{"3 indexes (SPO,POS,OSP)", storage.DefaultOrders},
		{"6 indexes (paper)", storage.AllOrders},
	} {
		start := time.Now()
		b := storage.NewBuilder(layout.orders...)
		db.Raw.Each(func(t storage.Triple) bool {
			b.Add(t)
			return true
		})
		st := b.Build()
		build := time.Since(start)
		eng := engine.New(st, stats.Collect(st, db.Vocab), engine.Native)
		a := core.NewAnswerer(db.Closed, eng, nil, core.Options{})

		fmt.Fprintf(tw, "%s\t%.1f\t", layout.name, ms(build))
		for _, n := range queryNames {
			qi := db.QueryIndex(n)
			if qi < 0 {
				fmt.Fprintf(tw, "?\t")
				continue
			}
			out := timeAnswer(a, db, qi, core.GCov)
			fmt.Fprintf(tw, "%.1f\t", out)
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

func timeAnswer(a *core.Answerer, db *Database, qi int, s core.Strategy) float64 {
	ans, err := a.Answer(db.Encoded[qi], s)
	if err != nil {
		return -1
	}
	return ms(ans.Report.EvalTime)
}

// AblationJoinOrdering compares greedy statistics-driven join ordering
// inside member CQs against textual atom order (A2).
func (db *Database) AblationJoinOrdering(w io.Writer, queryNames ...string) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "ordering\t")
	for _, n := range queryNames {
		fmt.Fprintf(tw, "%s ms\t", n)
	}
	fmt.Fprintln(tw)
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"greedy (default)", false}, {"textual order", true}} {
		prof := engine.Native
		prof.Name = "native-" + mode.name
		prof.DisableJoinOrdering = mode.disable
		a := db.Answerer(prof, core.Options{Params: db.calibrated(engine.Native)})
		fmt.Fprintf(tw, "%s\t", mode.name)
		for _, n := range queryNames {
			qi := db.QueryIndex(n)
			fmt.Fprintf(tw, "%.1f\t", timeAnswer(a, db, qi, core.GCov))
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// AblationGCovRedundancy compares GCov with and without the
// redundant-fragment elimination step of Algorithm 1 (A3): covers
// explored, chosen-cover cost and evaluation time.
func (db *Database) AblationGCovRedundancy(w io.Writer, queryNames ...string) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "query\twith elim: covers/cost/ms\twithout: covers/cost/ms\n")
	withElim := db.Answerer(engine.Native, core.Options{})
	withoutElim := db.Answerer(engine.Native, core.Options{NoRedundancyElimination: true})
	for _, n := range queryNames {
		qi := db.QueryIndex(n)
		fmt.Fprintf(tw, "%s", n)
		for _, a := range []*core.Answerer{withElim, withoutElim} {
			out := db.Run(a, qi, core.GCov)
			if out.Failed() {
				fmt.Fprintf(tw, "\t%s", failureLabel(out.Err))
				continue
			}
			fmt.Fprintf(tw, "\t%d/%.3g/%.1f", out.Report.CoversExplored, out.Report.EstimatedCost, ms(out.Evaluate))
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// AblationArmJoin evaluates the SCQ reformulation of the given queries
// under each arm-join algorithm (A4) — the isolated mechanism behind the
// MySQL-like profile's SCQ collapse.
func (db *Database) AblationArmJoin(w io.Writer, queryNames ...string) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "arm join\t")
	for _, n := range queryNames {
		fmt.Fprintf(tw, "%s ms\t", n)
	}
	fmt.Fprintln(tw)
	for _, algo := range []engine.JoinAlgorithm{engine.HashJoin, engine.MergeJoin, engine.NestedLoopJoin} {
		prof := engine.Profile{Name: "ablate-" + algo.String(), ArmJoin: algo,
			WorkBudget: engine.MySQLLike.WorkBudget}
		a := db.Answerer(prof, core.Options{})
		fmt.Fprintf(tw, "%s\t", algo)
		for _, n := range queryNames {
			qi := db.QueryIndex(n)
			out := db.Run(a, qi, core.SCQ)
			if out.Failed() {
				fmt.Fprintf(tw, "%s\t", failureLabel(out.Err))
			} else {
				fmt.Fprintf(tw, "%.1f\t", ms(out.Evaluate))
			}
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// AblationFactorizedReformulation compares the factorized reformulation
// representation against materializing the full UCQ (A5): the count/cost
// quantities GCov needs are available in microseconds from the factorized
// form, while materialization grows with |q_ref|.
func (db *Database) AblationFactorizedReformulation(w io.Writer, queryNames ...string) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "query\t|q_ref|\tfactorized ms\tmaterialized ms\n")
	for _, n := range queryNames {
		qi := db.QueryIndex(n)
		q := db.Encoded[qi]
		whole := cover.Query(q, cover.WholeQuery(len(q.Atoms))[0])

		start := time.Now()
		ref, err := reformulate.Reformulate(whole, db.Closed)
		if err != nil {
			return fmt.Errorf("benchkit: reformulating %s: %w", n, err)
		}
		nCQs := ref.NumCQs()
		factorized := time.Since(start)

		start = time.Now()
		_, err = ref.UCQ(0)
		materialized := time.Since(start)
		matLabel := fmt.Sprintf("%.2f", ms(materialized))
		if err != nil {
			matLabel = "too large"
		}
		fmt.Fprintf(tw, "%s\t%d\t%.2f\t%s\n", n, nCQs, ms(factorized), matLabel)
	}
	return tw.Flush()
}
