package benchkit

import (
	"errors"
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/bgp"
	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/engine"
	"repro/internal/reformulate"
)

// atomQuery returns the single-atom query of atom i of q, with every
// variable of the atom distinguished (the paper's per-triple "#answers").
func atomQuery(q bgp.CQ, i int) bgp.CQ {
	a := q.Atoms[i]
	var head []bgp.Term
	seen := map[uint32]bool{}
	for _, t := range []bgp.Term{a.S, a.P, a.O} {
		if t.Var && !seen[t.ID] {
			seen[t.ID] = true
			head = append(head, t)
		}
	}
	return bgp.CQ{Head: head, Atoms: []bgp.Atom{a}}
}

// TripleCharacteristics renders the per-triple table of a motivating
// query (the paper's Tables 1 and 3): per triple, the number of answers,
// the number of reformulations, and the number of answers of the
// reformulated triple.
func (db *Database) TripleCharacteristics(w io.Writer, queryName string) error {
	qi := db.QueryIndex(queryName)
	if qi < 0 {
		return fmt.Errorf("benchkit: unknown query %q", queryName)
	}
	q := db.Encoded[qi]
	eng := engine.New(db.Raw, db.RawStats, engine.Native)

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Triple\t#answers\t#reformulations\t#answers after reformulation\n")
	for i := range q.Atoms {
		aq := atomQuery(q, i)
		direct, _, err := eng.EvalCQ(aq)
		if err != nil {
			return err
		}
		ref, err := reformulate.Reformulate(aq, db.Closed)
		if err != nil {
			return err
		}
		u, err := ref.UCQ(0)
		if err != nil {
			return err
		}
		refd, _, err := eng.EvalUCQ(u)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "(t%d)\t%d\t%d\t%d\n", i+1, direct.Len(), ref.NumCQs(), refd.Len())
	}
	return tw.Flush()
}

// CoverSweep renders the paper's Table 2: every cover of the query, its
// total number of reformulations, and its execution time.
func (db *Database) CoverSweep(w io.Writer, queryName string, prof engine.Profile) error {
	qi := db.QueryIndex(queryName)
	if qi < 0 {
		return fmt.Errorf("benchkit: unknown query %q", queryName)
	}
	q := db.Encoded[qi]
	a := db.Answerer(prof, core.Options{})
	g, err := cover.NewGraph(q)
	if err != nil {
		return err
	}

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Cover\t#reformulations\texec time (ms)\n")
	var sweepErr error
	g.EnumerateMinimal(64, func(c cover.Cover) bool {
		var total int64
		for _, f := range c {
			sub := cover.Query(q, f)
			ref, err := reformulate.Reformulate(sub, db.Closed)
			if err != nil {
				sweepErr = fmt.Errorf("benchkit: reformulating fragment %s of %s: %w", f, queryName, err)
				return false
			}
			total += ref.NumCQs()
		}
		ans, err := a.EvaluateCover(q, c, core.Report{Strategy: "fixed", Cover: c})
		if err != nil {
			// Engine-level failures are the point of the table (the
			// paper's missing bars), so they are rows, not errors.
			fmt.Fprintf(tw, "%s\t%d\t%s\n", c, total, failureLabel(err))
			return true
		}
		fmt.Fprintf(tw, "%s\t%d\t%.1f\n", c, total, ms(ans.Report.EvalTime))
		return true
	})
	if err := tw.Flush(); err != nil {
		return err
	}
	return sweepErr
}

// QueryCharacteristics renders the paper's Table 4 for this database:
// per query, the UCQ reformulation size |q_ref| and the answer count.
func (db *Database) QueryCharacteristics(w io.Writer) error {
	a := db.Answerer(engine.Native, core.Options{})
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s q\t|q_ref|\tq(db) (%d triples)\n", db.Name, db.Raw.Len())
	for i, spec := range db.Specs {
		sub := cover.Query(db.Encoded[i], cover.WholeQuery(len(db.Encoded[i].Atoms))[0])
		ref, err := reformulate.Reformulate(sub, db.Closed)
		if err != nil {
			return fmt.Errorf("benchkit: reformulating %s: %w", spec.Name, err)
		}
		refSize := ref.NumCQs()
		out := db.Run(a, i, core.GCov)
		if out.Failed() {
			fmt.Fprintf(tw, "%s\t%d\t%s\n", spec.Name, refSize, failureLabel(out.Err))
			continue
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\n", spec.Name, refSize, out.Rows)
	}
	return tw.Flush()
}

// failureLabel classifies a failure the way the paper's figures mark
// missing bars.
func failureLabel(err error) string {
	switch {
	case errors.Is(err, engine.ErrPlanTooComplex):
		return "FAIL(plan)"
	case errors.Is(err, engine.ErrMemoryBudget):
		return "FAIL(mem)"
	case errors.Is(err, engine.ErrWorkBudget):
		return "FAIL(timeout)"
	case err != nil:
		return "FAIL"
	default:
		return ""
	}
}
