package benchkit

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
)

// ParallelismSweep times the GCov-chosen JUCQ per query at each worker
// count on the native profile, splitting the time the paper's way
// (optimize = cover search, evaluate = reformulation evaluation), with a
// speedup column of the widest configuration over the serial one.
// Parallel evaluation is answer-identical to serial evaluation, so the
// sweep varies only the wall clock, never the rows.
func (db *Database) ParallelismSweep(w io.Writer, workers []int, warm int) error {
	if len(workers) == 0 {
		workers = []int{1, 2, 4, 8}
	}
	// Drop duplicate worker counts (e.g. GOMAXPROCS(0) == a fixed entry).
	seen := make(map[int]bool)
	uniq := workers[:0:0]
	for _, p := range workers {
		if !seen[p] {
			seen[p] = true
			uniq = append(uniq, p)
		}
	}
	workers = uniq
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "query")
	for _, p := range workers {
		fmt.Fprintf(tw, "\topt p=%d\teval p=%d", p, p)
	}
	fmt.Fprintf(tw, "\tspeedup\n")
	for qi, spec := range db.Specs {
		fmt.Fprintf(tw, "%s", spec.Name)
		var base, widest time.Duration
		failed := false
		for i, p := range workers {
			a := db.Answerer(engine.Native, core.Options{
				SearchBudget: 30 * time.Second,
				Parallelism:  p,
			})
			out := db.RunAveraged(a, qi, core.GCov, warm)
			if out.Failed() {
				fmt.Fprintf(tw, "\t%s\t", failureLabel(out.Err))
				failed = true
				continue
			}
			fmt.Fprintf(tw, "\t%.2f\t%.2f", ms(out.Optimize), ms(out.Evaluate))
			total := out.Optimize + out.Evaluate
			if i == 0 {
				base = total
			}
			widest = total
		}
		if failed || widest <= 0 {
			fmt.Fprintf(tw, "\t-\n")
		} else {
			fmt.Fprintf(tw, "\t%.2fx\n", float64(base)/float64(widest))
		}
	}
	return tw.Flush()
}
