package benchkit

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/lubm"
	"repro/internal/storage"
)

// mediumSlice is a slice of the medium scale (same full-size LUBM
// config, fewer universities) sized so the CI smoke test below loads a
// genuinely multi-block dataset in about a second.
var mediumSlice = Scale{Name: "medium-slice", LUBMUnivs: 2, LUBMConfig: lubm.Default(), DBLPPubs: 500}

func TestMeasureLoadTiny(t *testing.T) {
	rep, err := MeasureLoad(ScaleTiny, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Workload != "LUBM" || rep.Scale != "tiny" {
		t.Errorf("labels wrong: %+v", rep)
	}
	if rep.Triples == 0 || rep.TriplesPerSec <= 0 || rep.FlatTriplesPerSec <= 0 {
		t.Errorf("throughput not filled: %+v", rep)
	}
	if rep.CompressedBytes <= 0 || rep.CompressedBlocks <= 0 || rep.BytesPerTriple <= 0 {
		t.Errorf("footprint not filled: %+v", rep)
	}
	if !rep.Verified {
		t.Error("flat and compressed stores differ")
	}
}

func TestLoadSweepOutput(t *testing.T) {
	sweep, err := MeasureLoadScales([]string{"tiny"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	var jsonBuf bytes.Buffer
	if err := sweep.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	var back LoadSweep
	if err := json.Unmarshal(jsonBuf.Bytes(), &back); err != nil {
		t.Fatalf("sweep JSON does not round-trip: %v", err)
	}
	if len(back.Runs) != 1 || back.Runs[0].Scale != "tiny" {
		t.Errorf("round-tripped sweep wrong: %+v", back)
	}
	var textBuf bytes.Buffer
	if err := sweep.WriteText(&textBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(textBuf.String(), "B/triple") || !strings.Contains(textBuf.String(), "tiny") {
		t.Errorf("text table missing columns:\n%s", textBuf.String())
	}
}

// The CI smoke test: even in -short mode, load a medium-scale LUBM
// slice (full-size university config) through the compressed parallel
// bulk loader, cross-check it against the flat representation, and
// answer a query over it. This is the cheapest end-to-end proof that
// the block-columnar path holds up beyond the tiny test profile.
func TestMediumSliceLoadSmoke(t *testing.T) {
	db, err := BuildLUBM(mediumSlice)
	if err != nil {
		t.Fatal(err)
	}
	if db.Raw.Len() < 100_000 {
		t.Fatalf("medium slice too small to be meaningful: %d triples", db.Raw.Len())
	}

	b := storage.NewBuilder().WithCompression(storage.CompressionOn).WithParallelism(4)
	db.Raw.Each(func(tr storage.Triple) bool {
		b.Add(tr)
		return true
	})
	comp := b.Build()
	fp := comp.Footprint()
	if !fp.Compressed || fp.Blocks == 0 {
		t.Fatalf("slice did not build compressed: %+v", fp)
	}
	if fp.BytesPerTriple() >= 12 {
		t.Errorf("compressed footprint %.2f B/triple is no better than one flat order", fp.BytesPerTriple())
	}
	if !equalStores(db.Raw, comp) {
		t.Fatal("compressed slice differs from the raw store")
	}

	a := db.Answerer(engine.Native, core.Options{})
	out := db.Run(a, db.QueryIndex("Q01"), core.GCov)
	if out.Failed() {
		t.Fatalf("Q01 over the medium slice failed: %v", out.Err)
	}
	if out.Rows == 0 {
		t.Error("Q01 over the medium slice returned no rows")
	}
}
