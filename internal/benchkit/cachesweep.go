package benchkit

import (
	"fmt"
	"io"
	"reflect"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/plancache"
	"repro/internal/rdf"
	"repro/internal/storage"
)

// CacheSweep measures the plan cache on this database: for each named
// query it reports the cold answer time, the warm (cached) time averaged
// over warm repeats, and the time of a re-answer after a store mutation
// (which invalidates the entry and forces a re-plan against the fresh
// statistics). Rows are asserted identical across cold and warm runs, and
// the mutated run is asserted *not* to be served from the cache. Empty
// queryNames sweeps the whole workload.
func (db *Database) CacheSweep(w io.Writer, queryNames []string, warm int) error {
	if warm < 1 {
		warm = 3
	}
	if len(queryNames) == 0 {
		for _, s := range db.Specs {
			queryNames = append(queryNames, s.Name)
		}
	}
	pc := plancache.New(0)
	a := db.Answerer(engine.Native, core.Options{PlanCache: pc})

	// The mutation is a synthetic triple over a property no workload query
	// touches: it changes the store version (invalidating every entry)
	// without disturbing the workload's answers once removed.
	synthetic := storage.Triple{
		S: db.Dict.Encode(rdf.NewIRI("urn:benchkit:cache-sweep-subject")),
		P: db.Dict.Encode(rdf.NewIRI("urn:benchkit:cache-sweep-property")),
		O: db.Dict.Encode(rdf.NewIRI("urn:benchkit:cache-sweep-object")),
	}

	fmt.Fprintf(w, "%s: plan cache sweep (strategy gcov, %d warm runs)\n\n", db.Name, warm)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Query\tRows\tCold\tWarm (cached)\tAfter mutation\n")
	for _, name := range queryNames {
		qi := db.QueryIndex(name)
		if qi < 0 {
			return fmt.Errorf("benchkit: unknown query %q", name)
		}
		q := db.Encoded[qi]

		coldStart := time.Now()
		cold, err := a.Answer(q, core.GCov)
		if err != nil {
			return fmt.Errorf("benchkit: %s cold: %w", name, err)
		}
		coldTime := time.Since(coldStart)
		if cold.Report.Cached {
			return fmt.Errorf("benchkit: %s cold run served from the cache", name)
		}

		var warmTime time.Duration
		for i := 0; i < warm; i++ {
			start := time.Now()
			w2, err := a.Answer(q, core.GCov)
			if err != nil {
				return fmt.Errorf("benchkit: %s warm: %w", name, err)
			}
			warmTime += time.Since(start)
			if !w2.Report.Cached {
				return fmt.Errorf("benchkit: %s warm run %d missed the cache", name, i+1)
			}
			if !reflect.DeepEqual(w2.Rel.Materialize(), cold.Rel.Materialize()) {
				return fmt.Errorf("benchkit: %s cached answer differs from cold answer", name)
			}
		}
		warmTime /= time.Duration(warm)

		// Mutate, re-answer (must re-plan), then restore the content.
		db.Raw.Add(synthetic)
		mutStart := time.Now()
		mut, err := a.Answer(q, core.GCov)
		mutTime := time.Since(mutStart)
		db.Raw.Remove(synthetic)
		if err != nil {
			return fmt.Errorf("benchkit: %s post-mutation: %w", name, err)
		}
		if mut.Report.Cached {
			return fmt.Errorf("benchkit: %s answered from a stale plan after mutation", name)
		}

		fmt.Fprintf(tw, "%s\t%d\t%v\t%v\t%v\n", name, cold.Rel.Len(),
			coldTime.Round(time.Microsecond), warmTime.Round(time.Microsecond),
			mutTime.Round(time.Microsecond))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	st := pc.Snapshot()
	fmt.Fprintf(w, "\ncache: %d hits / %d lookups (%.0f%% hit rate), %d invalidations, %d entries\n",
		st.Hits, st.Lookups(), 100*st.HitRate(), st.Invalidations, pc.Len())
	return nil
}
