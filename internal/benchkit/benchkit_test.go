package benchkit

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
)

func tinyLUBM(t *testing.T) *Database {
	t.Helper()
	db, err := BuildLUBM(ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func tinyDBLP(t *testing.T) *Database {
	t.Helper()
	db, err := BuildDBLP(ScaleTiny)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestBuildLUBMMemoized(t *testing.T) {
	a := tinyLUBM(t)
	b := tinyLUBM(t)
	if a != b {
		t.Error("BuildLUBM not memoized")
	}
	if len(a.Specs) != 28 || len(a.Encoded) != 28 {
		t.Errorf("LUBM workload has %d specs, %d encoded", len(a.Specs), len(a.Encoded))
	}
	if a.Raw.Len() == 0 || a.Sat.Len() <= a.Raw.Len() {
		t.Errorf("store sizes wrong: raw %d, sat %d", a.Raw.Len(), a.Sat.Len())
	}
}

func TestBuildDBLP(t *testing.T) {
	db := tinyDBLP(t)
	if len(db.Specs) != 10 {
		t.Errorf("DBLP workload has %d specs", len(db.Specs))
	}
}

func TestQueryIndex(t *testing.T) {
	db := tinyLUBM(t)
	if db.QueryIndex("Q01") != 0 || db.QueryIndex("Q28") != 27 {
		t.Error("QueryIndex wrong")
	}
	if db.QueryIndex("nope") != -1 {
		t.Error("unknown query should be -1")
	}
}

func TestRunOutcome(t *testing.T) {
	db := tinyLUBM(t)
	a := db.Answerer(engine.Native, core.Options{})
	out := db.Run(a, db.QueryIndex("Q03"), core.GCov)
	if out.Failed() {
		t.Fatalf("Q03 failed: %v", out.Err)
	}
	if out.Rows == 0 || out.Total == 0 {
		t.Errorf("outcome not filled: %+v", out)
	}
	// A failing run must be reported as such.
	small := engine.Profile{Name: "t", MaxPlanLeaves: 5, ArmJoin: engine.HashJoin}
	fa := db.Answerer(small, core.Options{})
	fout := db.Run(fa, db.QueryIndex("Q02"), core.UCQ)
	if !fout.Failed() {
		t.Error("Q02 UCQ on a 5-leaf profile should fail")
	}
}

func TestRunAveraged(t *testing.T) {
	db := tinyLUBM(t)
	a := db.Answerer(engine.Native, core.Options{})
	out := db.RunAveraged(a, db.QueryIndex("Q05"), core.GCov, 3)
	if out.Failed() || out.Rows == 0 {
		t.Fatalf("averaged run failed: %+v", out)
	}
	if out.Evaluate <= 0 || out.Total <= 0 {
		t.Errorf("averaged timings not positive: %+v", out)
	}
	// Failures propagate.
	small := engine.Profile{Name: "t", MaxPlanLeaves: 5, ArmJoin: engine.HashJoin}
	fa := db.Answerer(small, core.Options{})
	if fout := db.RunAveraged(fa, db.QueryIndex("Q02"), core.UCQ, 3); !fout.Failed() {
		t.Error("failure not propagated by RunAveraged")
	}
}

func TestTripleCharacteristicsReport(t *testing.T) {
	db := tinyLUBM(t)
	var buf bytes.Buffer
	if err := db.TripleCharacteristics(&buf, "Q01"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "(t1)") || !strings.Contains(out, "(t3)") {
		t.Errorf("report missing triples:\n%s", out)
	}
	if err := db.TripleCharacteristics(&buf, "nope"); err == nil {
		t.Error("unknown query accepted")
	}
}

func TestCoverSweepReport(t *testing.T) {
	db := tinyLUBM(t)
	var buf bytes.Buffer
	if err := db.CoverSweep(&buf, "Q01", engine.Native); err != nil {
		t.Fatal(err)
	}
	// Q01 has 3 pairwise-joining atoms: exactly 8 covers plus header.
	lines := strings.Count(strings.TrimSpace(buf.String()), "\n")
	if lines != 8 {
		t.Errorf("cover sweep has %d data lines, want 8:\n%s", lines, buf.String())
	}
}

func TestQueryCharacteristicsReport(t *testing.T) {
	db := tinyLUBM(t)
	var buf bytes.Buffer
	if err := db.QueryCharacteristics(&buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Q01", "Q14", "Q28"} {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("report missing %s", name)
		}
	}
}

func TestStrategyMatrixReport(t *testing.T) {
	db := tinyDBLP(t)
	var buf bytes.Buffer
	if err := db.StrategyMatrix(&buf, []engine.Profile{engine.PostgresLike}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "postgreslike/ucq") {
		t.Errorf("matrix header missing:\n%s", out)
	}
	// Q10's UCQ (nearly 2M members at full scale; large even here) must
	// fail on the profile — the paper's missing bar.
	if !strings.Contains(out, "FAIL") {
		t.Errorf("expected at least one failure marker:\n%s", out)
	}
}

func TestSearchEffortReport(t *testing.T) {
	db := tinyLUBM(t)
	var buf bytes.Buffer
	if err := db.SearchEffort(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ecov covers") {
		t.Errorf("missing header:\n%s", buf.String())
	}
}

func TestCostSourceComparisonReport(t *testing.T) {
	db := tinyLUBM(t)
	var buf bytes.Buffer
	if err := db.CostSourceComparison(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "gcov(engine)") {
		t.Errorf("missing header:\n%s", buf.String())
	}
}

func TestSaturationComparisonReport(t *testing.T) {
	db := tinyLUBM(t)
	var buf bytes.Buffer
	if err := db.SaturationComparison(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "saturation(native)") {
		t.Errorf("missing header:\n%s", buf.String())
	}
}

func TestAblationReports(t *testing.T) {
	db := tinyLUBM(t)
	cases := []func(*bytes.Buffer) error{
		func(b *bytes.Buffer) error { return db.AblationIndexSet(b, "Q01") },
		func(b *bytes.Buffer) error { return db.AblationJoinOrdering(b, "Q01") },
		func(b *bytes.Buffer) error { return db.AblationGCovRedundancy(b, "Q01") },
		func(b *bytes.Buffer) error { return db.AblationArmJoin(b, "Q05") },
		func(b *bytes.Buffer) error { return db.AblationFactorizedReformulation(b, "Q01") },
	}
	for i, f := range cases {
		var buf bytes.Buffer
		if err := f(&buf); err != nil {
			t.Errorf("ablation %d: %v", i, err)
		}
		if buf.Len() == 0 {
			t.Errorf("ablation %d produced no output", i)
		}
	}
}

func TestScaleByName(t *testing.T) {
	if ScaleByName("tiny").Name != "tiny" || ScaleByName("medium").Name != "medium" {
		t.Error("named scales wrong")
	}
	if ScaleByName("").Name != "small" || ScaleByName("bogus").Name != "small" {
		t.Error("default scale wrong")
	}
}
