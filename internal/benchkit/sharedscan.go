package benchkit

import (
	"fmt"
	"io"
	"reflect"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/trace"
)

// SharedScanSweep measures the shared-scan layer (snapshot-pinned scans
// with the pattern-scan memo and merged member scans) on this database:
// for each named query it answers with the layer on and off, sequential
// and parallel, asserting that rows AND engine metrics are strictly
// identical in every configuration — the layer shares scan-locating
// work, never the per-tuple accounting — and reports the evaluation
// times alongside the scan-cache and merge counters of a traced run.
// Empty queryNames sweeps the whole workload.
func (db *Database) SharedScanSweep(w io.Writer, queryNames []string, strat core.Strategy, warm int) error {
	if warm < 1 {
		warm = 3
	}
	if strat == "" {
		strat = core.UCQ
	}
	if len(queryNames) == 0 {
		for _, s := range db.Specs {
			queryNames = append(queryNames, s.Name)
		}
	}
	shared := db.Answerer(engine.Native, core.Options{Parallelism: 1})
	baseline := db.Answerer(engine.Native, core.Options{Parallelism: 1, NoSharedScan: true})
	sharedPar := db.Answerer(engine.Native, core.Options{})

	fmt.Fprintf(w, "%s: shared-scan sweep (strategy %s, %d warm runs)\n\n", db.Name, strat, warm)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Query\tRows\tShared\tBaseline\tSpeedup\tCache hit-rate\tMerged members\n")
	for _, name := range queryNames {
		qi := db.QueryIndex(name)
		if qi < 0 {
			return fmt.Errorf("benchkit: unknown query %q", name)
		}

		on := db.RunAveraged(shared, qi, strat, warm)
		off := db.RunAveraged(baseline, qi, strat, warm)
		if on.Failed() != off.Failed() {
			return fmt.Errorf("benchkit: %s: shared err=%v, baseline err=%v", name, on.Err, off.Err)
		}
		if on.Failed() {
			fmt.Fprintf(tw, "%s\t-\t%v\t%v\t-\t-\t-\n", name, on.Err, off.Err)
			continue
		}
		if on.Rows != off.Rows {
			return fmt.Errorf("benchkit: %s: shared returned %d rows, baseline %d", name, on.Rows, off.Rows)
		}
		if on.Report.Metrics != off.Report.Metrics {
			return fmt.Errorf("benchkit: %s: metrics diverge: shared %+v, baseline %+v",
				name, on.Report.Metrics, off.Report.Metrics)
		}
		par := db.Run(sharedPar, qi, strat)
		if par.Failed() {
			return fmt.Errorf("benchkit: %s parallel: %w", name, par.Err)
		}
		if par.Rows != on.Rows || par.Report.Metrics != on.Report.Metrics {
			return fmt.Errorf("benchkit: %s: parallel shared run diverges (rows %d vs %d)",
				name, par.Rows, on.Rows)
		}

		// Byte-identical relations: the reports above compare counts and
		// metrics; this compares the actual rows in order.
		q := db.Encoded[qi]
		ansOn, err := shared.Answer(q, strat)
		if err != nil {
			return fmt.Errorf("benchkit: %s shared re-run: %w", name, err)
		}
		ansOff, err := baseline.Answer(q, strat)
		if err != nil {
			return fmt.Errorf("benchkit: %s baseline re-run: %w", name, err)
		}
		if !reflect.DeepEqual(ansOn.Rel.Materialize(), ansOff.Rel.Materialize()) {
			return fmt.Errorf("benchkit: %s: shared and baseline rows differ", name)
		}

		hits, misses, merged, err := db.sharedScanCounters(qi, strat)
		if err != nil {
			return err
		}
		rate := 0.0
		if hits+misses > 0 {
			rate = float64(hits) / float64(hits+misses)
		}
		speedup := float64(off.Evaluate) / float64(maxDuration(on.Evaluate, time.Nanosecond))
		fmt.Fprintf(tw, "%s\t%d\t%v\t%v\t%.2fx\t%.0f%%\t%d\n",
			name, on.Rows,
			on.Evaluate.Round(time.Microsecond), off.Evaluate.Round(time.Microsecond),
			speedup, 100*rate, merged)
	}
	return tw.Flush()
}

// sharedScanCounters answers the query once under a trace and returns
// the evaluation's scancache.hits, scancache.misses and merged_members
// registry counters.
func (db *Database) sharedScanCounters(qi int, strat core.Strategy) (hits, misses, merged int64, err error) {
	sp := trace.New("sharedscan")
	a := db.Answerer(engine.Native, core.Options{Parallelism: 1, Trace: sp})
	if _, err = a.Answer(db.Encoded[qi], strat); err != nil {
		return 0, 0, 0, fmt.Errorf("benchkit: traced run: %w", err)
	}
	sp.End()
	snap := sp.Registry().Snapshot()
	return snap["scancache.hits"], snap["scancache.misses"], snap["merged_members"], nil
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
